// Quickstart: build a tiny database, write a workload in SQL, and ask the
// compression-aware advisor for a physical design under a storage budget.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "engine/advisor_engine.h"
#include "query/sql_parser.h"

using namespace capd;

int main() {
  // --- 1. Define a table and load some data. ---------------------------
  Database db;
  auto sales = std::make_unique<Table>(
      "sales", Schema({{"order_id", ValueType::kInt64, 8},
                       {"ship_date", ValueType::kDate, 8},
                       {"state", ValueType::kString, 2},
                       {"price", ValueType::kDouble, 8},
                       {"discount", ValueType::kDouble, 8}}));
  Random rng(42);
  const char* kStates[] = {"CA", "NY", "TX", "WA"};
  for (int i = 0; i < 20000; ++i) {
    sales->AddRow({Value::Int64(i),
                   Value::Date(rng.Uniform(10957, 12000)),  // 2000..2002
                   Value::String(kStates[rng.Next(4)]),
                   Value::Double(static_cast<double>(rng.Uniform(1, 500))),
                   Value::Double(0.01 * static_cast<double>(rng.Uniform(0, 30)))});
  }
  db.AddTable(std::move(sales));

  // --- 2. Express the workload in SQL. ----------------------------------
  Workload workload;
  const char* queries[] = {
      "SELECT SUM(price) FROM sales WHERE ship_date BETWEEN DATE '2001-01-01' "
      "AND DATE '2001-12-31' AND state = 'CA'",
      "SELECT state, SUM(price), COUNT(*) FROM sales GROUP BY state",
      "SELECT ship_date, SUM(discount) FROM sales WHERE price >= 250 "
      "GROUP BY ship_date",
      "INSERT INTO sales VALUES 400 ROWS",
  };
  for (const char* sql : queries) {
    std::string error;
    auto stmt = ParseSql(sql, db, &error);
    if (!stmt.has_value()) {
      std::fprintf(stderr, "parse error: %s\n", error.c_str());
      return 1;
    }
    workload.statements.push_back(*stmt);
  }

  // --- 3. One engine owns the whole tuning stack (samples, what-if
  // optimizer, size estimation, caches). ---------------------------------
  EngineOptions engine_options;
  engine_options.sample_seed = 7;
  AdvisorEngine engine(db, engine_options);

  // --- 4. Tune under a 25% storage budget. -------------------------------
  TuningRequest request;
  request.workload = workload;
  request.strategy = "dtac-both";  // the full compression-aware tool
  request.budget = TuningBudget::Fraction(0.25);
  const TuningResponse response = engine.Tune(request);
  if (!response.ok()) {
    std::fprintf(stderr, "tuning failed: %s\n", response.error.c_str());
    return 1;
  }
  const AdvisorResult& result = response.result;

  std::printf("base data:     %8.0f KB\n", db.BaseDataBytes() / 1024.0);
  std::printf("budget:        %8.0f KB\n", response.budget_bytes / 1024.0);
  std::printf("initial cost:  %8.1f\n", result.initial_cost);
  std::printf("final cost:    %8.1f  (%.1f%% improvement)\n", result.final_cost,
              result.improvement_percent());
  std::printf("recommended indexes:\n");
  for (const PhysicalIndexEstimate& idx : result.config.indexes()) {
    std::printf("  %-70s ~%5.0f KB\n", idx.def.ToString().c_str(),
                idx.bytes / 1024.0);
  }
  return 0;
}
