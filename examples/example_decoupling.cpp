// Reproduces the paper's motivating Examples 1 & 2 (Section 1): decoupling
// the decision "which indexes?" from "compress them?" yields poor designs.
//   - Staged selection (pick indexes ignoring compression, then compress)
//     misses configurations where only the compressed variant fits.
//   - Blindly compressing every index can REDUCE throughput on
//     update-intensive workloads.
#include <cstdio>

#include "advisor/advisor.h"
#include "workloads/tpch.h"

using namespace capd;

int main() {
  Database db;
  tpch::Options opt;
  opt.lineitem_rows = 6000;
  tpch::Build(&db, opt);
  const Workload workload = tpch::MakeWorkload(db, opt);

  SampleManager samples(7);
  TableSampleSource source(db, &samples);
  WhatIfOptimizer optimizer(db, CostModelParams{});
  SizeEstimator sizes(db, &source, ErrorModel(), SizeEstimationOptions{});
  Advisor advisor(db, optimizer, &sizes, nullptr, AdvisorOptions::DTAcBoth());

  std::printf("=== Example 1: tight budget, staged vs integrated ===\n");
  const double tight = 0.06 * static_cast<double>(db.BaseDataBytes());
  const Workload select_heavy = workload.WithInsertWeight(0.2);
  const AdvisorResult integrated = advisor.Tune(select_heavy, tight);
  const AdvisorResult staged =
      advisor.TuneStagedBaseline(select_heavy, tight, CompressionKind::kPage);
  std::printf("  integrated (DTAc):        %5.1f%% improvement, %zu indexes\n",
              integrated.improvement_percent(), integrated.config.size());
  std::printf("  staged (select->compress): %5.1f%% improvement, %zu indexes\n",
              staged.improvement_percent(), staged.config.size());
  std::printf("  -> integrating compression into selection finds designs the "
              "staged approach cannot.\n\n");

  std::printf("=== Example 2: compressing everything under heavy updates ===\n");
  const Workload insert_heavy = workload.WithInsertWeight(5.0);
  const double roomy = 0.5 * static_cast<double>(db.BaseDataBytes());
  const AdvisorResult aware = advisor.Tune(insert_heavy, roomy);
  const AdvisorResult blind =
      advisor.TuneStagedBaseline(insert_heavy, roomy, CompressionKind::kPage);
  size_t aware_compressed = 0;
  for (const auto& idx : aware.config.indexes()) {
    if (idx.def.compression != CompressionKind::kNone) ++aware_compressed;
  }
  std::printf("  compression-aware: %5.1f%% improvement (%zu/%zu compressed)\n",
              aware.improvement_percent(), aware_compressed, aware.config.size());
  std::printf("  compress-everything: %5.1f%% improvement (%zu/%zu compressed)\n",
              blind.improvement_percent(), blind.config.size(),
              blind.config.size());
  std::printf("  -> under update-heavy load the aware tool declines to "
              "compress; blind compression pays alpha per inserted tuple.\n");
  return 0;
}
