// Reproduces the paper's motivating Examples 1 & 2 (Section 1): decoupling
// the decision "which indexes?" from "compress them?" yields poor designs.
//   - Staged selection (pick indexes ignoring compression, then compress)
//     misses configurations where only the compressed variant fits.
//   - Blindly compressing every index can REDUCE throughput on
//     update-intensive workloads.
#include <cstdio>
#include <string>

#include "engine/advisor_engine.h"
#include "workloads/registry.h"

using namespace capd;

namespace {

// One engine serves every request below; strategies are picked by name.
AdvisorResult Tune(AdvisorEngine* engine, const std::string& strategy,
                   const Workload& workload, double budget_frac) {
  TuningRequest request;
  request.workload = workload;
  request.strategy = strategy;
  request.budget = TuningBudget::Fraction(budget_frac);
  const TuningResponse response = engine->Tune(request);
  if (!response.ok()) {
    std::fprintf(stderr, "tuning failed: %s\n", response.error.c_str());
    std::exit(1);
  }
  return response.result;
}

}  // namespace

int main() {
  workloads::WorkloadSpec spec;
  spec.name = "tpch";
  spec.rows = 6000;
  workloads::BuiltWorkload built;
  std::string error;
  if (!workloads::Build(spec, &built, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  EngineOptions engine_options;
  engine_options.sample_seed = 7;
  AdvisorEngine engine(*built.db, engine_options);
  const Workload& workload = built.workload;

  std::printf("=== Example 1: tight budget, staged vs integrated ===\n");
  const Workload select_heavy = workload.WithInsertWeight(0.2);
  const AdvisorResult integrated =
      Tune(&engine, "dtac-both", select_heavy, 0.06);
  const AdvisorResult staged =
      Tune(&engine, "staged:page", select_heavy, 0.06);
  std::printf("  integrated (DTAc):        %5.1f%% improvement, %zu indexes\n",
              integrated.improvement_percent(), integrated.config.size());
  std::printf("  staged (select->compress): %5.1f%% improvement, %zu indexes\n",
              staged.improvement_percent(), staged.config.size());
  std::printf("  -> integrating compression into selection finds designs the "
              "staged approach cannot.\n\n");

  std::printf("=== Example 2: compressing everything under heavy updates ===\n");
  const Workload insert_heavy = workload.WithInsertWeight(5.0);
  const AdvisorResult aware = Tune(&engine, "dtac-both", insert_heavy, 0.5);
  const AdvisorResult blind =
      Tune(&engine, "staged:page", insert_heavy, 0.5);
  size_t aware_compressed = 0;
  for (const auto& idx : aware.config.indexes()) {
    if (idx.def.compression != CompressionKind::kNone) ++aware_compressed;
  }
  std::printf("  compression-aware: %5.1f%% improvement (%zu/%zu compressed)\n",
              aware.improvement_percent(), aware_compressed, aware.config.size());
  std::printf("  compress-everything: %5.1f%% improvement (%zu/%zu compressed)\n",
              blind.improvement_percent(), blind.config.size(),
              blind.config.size());
  std::printf("  -> under update-heavy load the aware tool declines to "
              "compress; blind compression pays alpha per inserted tuple.\n");
  return 0;
}
