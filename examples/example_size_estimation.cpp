// Walkthrough of the Section 4-5 size-estimation framework: SampleCF on a
// shared per-table sample, ColSet/ColExt deductions, and the graph search
// choosing which indexes to sample vs deduce under an accuracy constraint.
#include <cstdio>
#include <string>

#include "estimator/size_estimator.h"
#include "index/index_builder.h"
#include "workloads/registry.h"

using namespace capd;

int main() {
  workloads::WorkloadSpec spec;
  spec.name = "tpch";
  spec.rows = 12000;
  workloads::BuiltWorkload built;
  std::string error;
  if (!workloads::Build(spec, &built, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  const Database& db = *built.db;

  SampleManager samples(99);
  TableSampleSource source(db, &samples);

  // Compressed indexes whose sizes we want.
  auto idx = [](std::vector<std::string> keys, CompressionKind kind) {
    IndexDef def;
    def.object = "lineitem";
    def.key_columns = std::move(keys);
    def.compression = kind;
    return def;
  };
  const std::vector<IndexDef> targets = {
      idx({"l_shipdate"}, CompressionKind::kRow),
      idx({"l_shipmode"}, CompressionKind::kRow),
      idx({"l_shipdate", "l_shipmode"}, CompressionKind::kRow),
      idx({"l_shipmode", "l_shipdate"}, CompressionKind::kRow),  // ColSet twin
      idx({"l_shipdate", "l_shipmode", "l_quantity"}, CompressionKind::kRow),
      idx({"l_partkey", "l_suppkey"}, CompressionKind::kPage),
  };

  SizeEstimator estimator(db, &source, ErrorModel(), SizeEstimationOptions{});
  const SizeEstimator::BatchResult batch = estimator.EstimateAll(targets);

  std::printf("chosen sampling fraction f = %.1f%%\n", batch.chosen_f * 100);
  std::printf("total estimation cost      = %.0f sample pages\n",
              batch.total_cost_pages);
  std::printf("%zu SampleCF'd, %zu deduced\n\n", batch.num_sampled,
              batch.num_deduced);

  std::printf("%-55s %10s %10s %8s\n", "index", "estimated", "true", "err");
  IndexBuilder builder(db.table("lineitem"));
  for (const IndexDef& def : targets) {
    const SampleCfResult& r = batch.estimates.at(def.Signature());
    const double truth = static_cast<double>(builder.Build(def).fine_bytes());
    std::printf("%-55s %8.0fKB %8.0fKB %+7.1f%%\n", def.ToString().c_str(),
                r.est_bytes / 1024.0, truth / 1024.0,
                (r.est_bytes / truth - 1.0) * 100.0);
  }
  std::printf("\nOnly %llu base-table rows were scanned for sampling "
              "(amortized across all indexes).\n",
              static_cast<unsigned long long>(samples.rows_scanned()));
  return 0;
}
