// capd_tune: a small command-line physical design tool over the built-in
// workloads — the closest thing in this repo to running DTA from a shell.
//
//   capd_tune [--workload tpch|sales] [--budget-frac 0.2] [--variant both|
//             skyline|backtrack|none|dta] [--insert-weight 1.0] [--mv]
//             [--partial] [--rows N] [--trace]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "advisor/advisor.h"
#include "advisor/report.h"
#include "workloads/sales.h"
#include "workloads/tpch.h"

using namespace capd;

namespace {

void Usage() {
  std::fprintf(stderr,
               "usage: capd_tune [--workload tpch|sales] [--budget-frac F]\n"
               "                 [--variant both|skyline|backtrack|none|dta]\n"
               "                 [--insert-weight W] [--mv] [--partial]\n"
               "                 [--rows N] [--trace]\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string workload_name = "tpch";
  std::string variant = "both";
  double budget_frac = 0.2;
  double insert_weight = 1.0;
  bool enable_mv = false;
  bool enable_partial = false;
  bool trace = false;
  uint64_t rows = 8000;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--workload") {
      workload_name = next();
    } else if (arg == "--budget-frac") {
      budget_frac = std::strtod(next(), nullptr);
    } else if (arg == "--variant") {
      variant = next();
    } else if (arg == "--insert-weight") {
      insert_weight = std::strtod(next(), nullptr);
    } else if (arg == "--rows") {
      rows = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--mv") {
      enable_mv = true;
    } else if (arg == "--partial") {
      enable_partial = true;
    } else if (arg == "--trace") {
      trace = true;
    } else {
      Usage();
      return 2;
    }
  }

  Database db;
  Workload workload;
  if (workload_name == "tpch") {
    tpch::Options opt;
    opt.lineitem_rows = rows;
    tpch::Build(&db, opt);
    workload = tpch::MakeWorkload(db, opt);
  } else if (workload_name == "sales") {
    sales::Options opt;
    opt.fact_rows = rows;
    sales::Build(&db, opt);
    workload = sales::MakeWorkload(db, opt);
  } else {
    Usage();
    return 2;
  }
  workload = workload.WithInsertWeight(insert_weight);

  AdvisorOptions options;
  if (variant == "both") {
    options = AdvisorOptions::DTAcBoth();
  } else if (variant == "skyline") {
    options = AdvisorOptions::DTAcSkyline();
  } else if (variant == "backtrack") {
    options = AdvisorOptions::DTAcBacktrack();
  } else if (variant == "none") {
    options = AdvisorOptions::DTAcNone();
  } else if (variant == "dta") {
    options = AdvisorOptions::DTA();
  } else {
    Usage();
    return 2;
  }
  options.enable_mv = enable_mv;
  options.enable_partial = enable_partial;
  options.trace = trace;

  SampleManager samples(2024);
  MVRegistry mvs(db, &samples);
  WhatIfOptimizer optimizer(db, CostModelParams{});
  optimizer.set_mv_matcher(&mvs);
  SizeEstimator sizes(db, &mvs, ErrorModel(), options.size_options);
  Advisor advisor(db, optimizer, &sizes, &mvs, options);

  const double budget = budget_frac * static_cast<double>(db.BaseDataBytes());
  const AdvisorResult result = advisor.Tune(workload, budget);

  std::printf("workload=%s variant=%s budget=%.0f%% (%.0f KB of %.0f KB)\n",
              workload_name.c_str(), variant.c_str(), budget_frac * 100,
              budget / 1024.0, db.BaseDataBytes() / 1024.0);
  std::printf("candidates considered: %zu   what-if calls: %zu\n",
              result.num_candidates, result.what_if_calls);
  std::printf("size estimation: f=%.1f%%, cost=%.0f sample pages, "
              "%zu sampled / %zu deduced\n",
              result.chosen_f * 100, result.estimation_cost_pages,
              result.num_sampled, result.num_deduced);
  std::printf("workload cost: %.1f -> %.1f  (improvement %.1f%%)\n",
              result.initial_cost, result.final_cost,
              result.improvement_percent());
  std::printf("charged bytes: %.0f KB\n\n%s", result.charged_bytes / 1024.0,
              RenderTuningReport(result, &mvs, budget).c_str());
  return 0;
}
