// capd_tune: the command-line physical design tool over the built-in
// workloads, driving the AdvisorEngine service API — the closest thing in
// this repo to running DTA from a shell.
//
//   capd_tune [--workload tpch|sales|tpcds-lite] [--rows N] [--seed N]
//             [--strategy NAME] [--budget 15% | --budget BYTES]
//             [--budget-frac F] [--threads N] [--insert-weight W]
//             [--timeout-ms MS] [--priority P]
//             [--mv] [--partial] [--json] [--trace] [--list]
//
// --json prints the versioned JSON report (report_json.h) and nothing
// else, so the output pipes straight into `python3 -m json.tool`, jq, etc.
// Bad flags, unknown workloads and unknown strategies exit 2 with a usage
// message.
//
// --timeout-ms / --priority route the request through the TuningService
// (deadline enforcement, priority scheduling): a deadline that fires
// mid-tune still prints the best-so-far design, but the process exits 3 —
// as it does on kOverloaded — so scripts can tell a degraded answer from a
// complete one.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "engine/advisor_engine.h"
#include "service/tuning_service.h"
#include "workloads/registry.h"

using namespace capd;

namespace {

void Usage() {
  std::fprintf(
      stderr,
      "usage: capd_tune [--workload tpch|sales|tpcds-lite] [--rows N]\n"
      "                 [--seed N] [--strategy NAME] [--budget 15%% | BYTES]\n"
      "                 [--budget-frac F] [--threads N] [--insert-weight W]\n"
      "                 [--timeout-ms MS] [--priority P]\n"
      "                 [--mv] [--partial] [--json] [--trace] [--list]\n"
      "\n"
      "  --budget accepts a percentage of the base data size (\"15%%\") or\n"
      "  an absolute byte count (\"1048576\"); --budget-frac takes the\n"
      "  fraction as a float. --threads drives both the search and the\n"
      "  estimation pools (0 = hardware concurrency). --mv/--partial add\n"
      "  MV and partial-index candidates on top of the chosen strategy.\n"
      "  --timeout-ms/--priority run through the TuningService: a deadline\n"
      "  that fires mid-tune prints the best-so-far design and exits 3\n"
      "  (as does an overloaded rejection).\n"
      "  --list prints the registered strategies and workloads and exits.\n");
}

// Strict numeric parsers: the whole value must parse, or we exit 2 — a
// silently truncated \"10k\" must not become 10 (or 0 = workload default).
uint64_t ParseUint64Flag(const char* flag, const char* text,
                         uint64_t min_value = 0) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0' || value < min_value) {
    std::fprintf(stderr, "bad %s value '%s'\n", flag, text);
    Usage();
    std::exit(2);
  }
  return value;
}

double ParseDoubleFlag(const char* flag, const char* text) {
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  if (end == text || *end != '\0') {
    std::fprintf(stderr, "bad %s value '%s'\n", flag, text);
    Usage();
    std::exit(2);
  }
  return value;
}

// Strict signed integer (priorities may be negative); same exit-2 contract.
int64_t ParseInt64Flag(const char* flag, const char* text) {
  char* end = nullptr;
  const long long value = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0') {
    std::fprintf(stderr, "bad %s value '%s'\n", flag, text);
    Usage();
    std::exit(2);
  }
  return value;
}

// "15%" -> fraction, plain number -> absolute bytes. False on junk.
bool ParseBudget(const std::string& text, TuningBudget* budget) {
  if (text.empty()) return false;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || value < 0.0) return false;
  if (*end == '%' && *(end + 1) == '\0') {
    *budget = TuningBudget::Fraction(value / 100.0);
    return true;
  }
  if (*end != '\0') return false;
  *budget = TuningBudget::Bytes(value);
  return true;
}

void ListRegistries() {
  std::printf("strategies:\n");
  for (const std::string& name : StrategyRegistry::Global().Names()) {
    std::printf("  %-16s %s\n", name.c_str(),
                StrategyRegistry::Global().Find(name)->description().c_str());
  }
  std::printf("workloads:\n");
  for (const std::string& name : workloads::Names()) {
    std::printf("  %s\n", name.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  workloads::WorkloadSpec spec;
  spec.name = "tpch";
  spec.rows = 8000;
  TuningBudget budget = TuningBudget::Fraction(0.2);
  std::string strategy = "dtac-both";
  double insert_weight = 1.0;
  int threads = 1;
  double timeout_ms = 0.0;
  int priority = 0;
  bool use_service = false;
  bool enable_mv = false;
  bool enable_partial = false;
  bool json = false;
  bool trace = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        Usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--workload") {
      spec.name = next();
    } else if (arg == "--rows") {
      spec.rows = ParseUint64Flag("--rows", next(), 1);
    } else if (arg == "--seed") {
      spec.seed = ParseUint64Flag("--seed", next());
    } else if (arg == "--strategy") {
      strategy = next();
    } else if (arg == "--budget") {
      if (!ParseBudget(next(), &budget)) {
        std::fprintf(stderr, "bad --budget value (want \"15%%\" or bytes)\n");
        Usage();
        return 2;
      }
    } else if (arg == "--budget-frac") {
      budget = TuningBudget::Fraction(ParseDoubleFlag("--budget-frac", next()));
    } else if (arg == "--threads") {
      threads = static_cast<int>(ParseUint64Flag("--threads", next()));
    } else if (arg == "--insert-weight") {
      insert_weight = ParseDoubleFlag("--insert-weight", next());
    } else if (arg == "--timeout-ms") {
      timeout_ms = ParseDoubleFlag("--timeout-ms", next());
      if (timeout_ms <= 0.0) {
        std::fprintf(stderr, "bad --timeout-ms value: must be > 0\n");
        Usage();
        return 2;
      }
      use_service = true;
    } else if (arg == "--priority") {
      priority = static_cast<int>(ParseInt64Flag("--priority", next()));
      use_service = true;
    } else if (arg == "--mv") {
      enable_mv = true;
    } else if (arg == "--partial") {
      enable_partial = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--trace") {
      trace = true;
    } else if (arg == "--list") {
      ListRegistries();
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      Usage();
      return 2;
    }
  }

  // Fail on a bad strategy name before spending time building the dataset.
  if (StrategyRegistry::Global().Find(strategy) == nullptr) {
    std::fprintf(
        stderr, "%s\n",
        StrategyRegistry::Global().UnknownStrategyMessage(strategy).c_str());
    Usage();
    return 2;
  }

  workloads::BuiltWorkload built;
  std::string error;
  if (!workloads::Build(spec, &built, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    Usage();
    return 2;
  }

  EngineOptions engine_options;
  engine_options.search_threads = threads;
  engine_options.estimation_threads = threads;
  AdvisorEngine engine(*built.db, engine_options);

  TuningRequest request;
  request.workload = built.workload.WithInsertWeight(insert_weight);
  request.strategy = strategy;
  request.budget = budget;
  request.enable_mv = enable_mv ? 1 : -1;
  request.enable_partial = enable_partial ? 1 : -1;
  request.trace = trace;
  if (trace && !json) {
    request.progress = [](const std::string& phase) {
      std::fprintf(stderr, "[capd_tune] phase done: %s\n", phase.c_str());
    };
  }

  TuningResponse response;
  int exit_code = 0;
  if (use_service) {
    // The service path: deadline enforcement and priority scheduling on
    // top of the same engine. One-shot, so admission never rejects here —
    // but the status mapping (exit 3) matches a shared long-lived service.
    TuningService service(&engine, ServiceOptions{});
    ServiceRequest service_request;
    service_request.tuning = request;
    service_request.priority = priority;
    service_request.timeout_ms = timeout_ms;
    const ServiceResponse service_response = service.Tune(service_request);
    if (service_response.status == ServiceStatus::kOverloaded) {
      std::fprintf(stderr, "rejected: %s\n", service_response.error.c_str());
      return 3;
    }
    if (service_response.status == ServiceStatus::kDeadlineExceeded) {
      std::fprintf(stderr,
                   "deadline of %.0f ms exceeded — printing the best-so-far "
                   "design, exiting 3\n",
                   timeout_ms);
      exit_code = 3;
    }
    response = service_response.tuning;
  } else {
    response = engine.Tune(request);
  }
  if (exit_code == 0 && response.status == TuningResponse::Status::kError) {
    std::fprintf(stderr, "%s\n", response.error.c_str());
    Usage();
    return 2;
  }

  if (json) {
    std::fputs(response.json.c_str(), stdout);
    return exit_code;
  }

  const double base_kb =
      static_cast<double>(built.db->BaseDataBytes()) / 1024.0;
  std::printf("workload=%s strategy=%s budget=%.0f KB (base data %.0f KB)\n",
              spec.name.c_str(), strategy.c_str(),
              response.budget_bytes / 1024.0, base_kb);
  const AdvisorResult& result = response.result;
  std::printf("candidates considered: %zu   what-if calls: %zu\n",
              result.num_candidates, result.what_if_calls);
  std::printf("size estimation: f=%.1f%%, cost=%.0f sample pages, "
              "%zu sampled / %zu deduced\n",
              result.chosen_f * 100, result.estimation_cost_pages,
              result.num_sampled, result.num_deduced);
  std::printf("workload cost: %.1f -> %.1f  (improvement %.1f%%)\n",
              result.initial_cost, result.final_cost,
              result.improvement_percent());
  std::printf("charged bytes: %.0f KB\n\n%s", result.charged_bytes / 1024.0,
              response.report.c_str());
  return exit_code;
}
