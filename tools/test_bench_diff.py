#!/usr/bin/env python3
"""Unit tests for tools/bench_diff and tools/bench_schema.py.

Run directly (``python3 tools/test_bench_diff.py``) or via ctest as
``bench_tools_py_test``. stdlib-only: unittest, no third-party deps.
"""

import contextlib
import copy
import importlib.machinery
import importlib.util
import io
import json
import os
import sys
import tempfile
import unittest

TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, TOOLS_DIR)
import bench_schema  # noqa: E402


def _load_bench_diff():
    # bench_diff is an extensionless executable; load it by explicit path.
    path = os.path.join(TOOLS_DIR, "bench_diff")
    loader = importlib.machinery.SourceFileLoader("bench_diff", path)
    spec = importlib.util.spec_from_loader("bench_diff", loader)
    module = importlib.util.module_from_spec(spec)
    loader.exec_module(module)
    return module


bench_diff = _load_bench_diff()


def make_bench(name="fig_x", rows=1000, seed=7, threads=1, metrics=None):
    if metrics is None:
        metrics = [
            {"name": "what_if_calls", "kind": "counter", "value": 42},
            {"name": "improvement_pct", "kind": "value", "value": 31.25},
            {"name": "tune_ms", "kind": "time_ms", "value": 150.0},
        ]
    return {
        "schema_version": 1,
        "bench": name,
        "meta": {"rows": rows, "seed": seed, "threads": threads,
                 "build_type": "Release", "git_sha": "abc1234"},
        "metrics": metrics,
    }


def make_suite(benches=None, quick=True):
    if benches is None:
        doc = make_bench()
        doc["figure"] = "Figure X"
        benches = {"fig_x": doc}
    return {
        "schema_version": 1,
        "tag": "test",
        "generator": "tools/repro",
        "git_sha": "abc1234",
        "build_type": "Release",
        "quick": quick,
        "benches": benches,
    }


class SchemaTest(unittest.TestCase):
    def test_valid_bench_passes(self):
        self.assertEqual(bench_schema.validate_bench(make_bench()), [])

    def test_valid_suite_passes(self):
        self.assertEqual(bench_schema.validate_suite(make_suite()), [])

    def test_wrong_schema_version(self):
        doc = make_bench()
        doc["schema_version"] = 2
        errors = bench_schema.validate_bench(doc)
        self.assertTrue(any("schema_version" in e for e in errors))

    def test_duplicate_metric_names(self):
        doc = make_bench(metrics=[
            {"name": "x", "kind": "counter", "value": 1},
            {"name": "x", "kind": "value", "value": 2.0},
        ])
        errors = bench_schema.validate_bench(doc)
        self.assertTrue(any("duplicate" in e for e in errors))

    def test_counter_must_be_nonnegative_integer(self):
        for bad in (-1, 1.5, True, "3", None):
            doc = make_bench(metrics=[
                {"name": "c", "kind": "counter", "value": bad}])
            errors = bench_schema.validate_bench(doc)
            self.assertTrue(errors, "counter value %r accepted" % (bad,))

    def test_value_may_be_null_for_nonfinite(self):
        doc = make_bench(metrics=[
            {"name": "v", "kind": "value", "value": None}])
        self.assertEqual(bench_schema.validate_bench(doc), [])

    def test_unknown_kind_rejected(self):
        doc = make_bench(metrics=[
            {"name": "v", "kind": "gauge", "value": 1.0}])
        errors = bench_schema.validate_bench(doc)
        self.assertTrue(any("kind" in e for e in errors))

    def test_extra_metric_keys_rejected(self):
        doc = make_bench(metrics=[
            {"name": "v", "kind": "value", "value": 1.0, "unit": "ms"}])
        errors = bench_schema.validate_bench(doc)
        self.assertTrue(any("unexpected" in e for e in errors))

    def test_missing_meta_key(self):
        doc = make_bench()
        del doc["meta"]["seed"]
        errors = bench_schema.validate_bench(doc)
        self.assertTrue(any("meta.seed" in e for e in errors))

    def test_suite_requires_figure(self):
        suite = make_suite()
        del suite["benches"]["fig_x"]["figure"]
        errors = bench_schema.validate_suite(suite)
        self.assertTrue(any("figure" in e for e in errors))

    def test_suite_bench_key_must_match(self):
        suite = make_suite()
        suite["benches"]["fig_x"]["bench"] = "other_name"
        errors = bench_schema.validate_suite(suite)
        self.assertTrue(any("does not match" in e for e in errors))

    def test_suite_skipped_list_validates(self):
        suite = make_suite()
        suite["skipped"] = [
            {"name": "bench_slow", "reason": "timed out after 900s"}]
        self.assertEqual(bench_schema.validate_suite(suite), [])

    def test_suite_skipped_entries_need_name_and_reason(self):
        suite = make_suite()
        suite["skipped"] = [{"name": "bench_slow"}]
        errors = bench_schema.validate_suite(suite)
        self.assertTrue(any("reason" in e for e in errors))
        suite["skipped"] = "bench_slow"
        errors = bench_schema.validate_suite(suite)
        self.assertTrue(any("skipped must be an array" in e for e in errors))

    def test_suite_all_skipped_allows_empty_benches(self):
        suite = make_suite(benches={})
        errors = bench_schema.validate_suite(suite)
        self.assertTrue(any("benches" in e for e in errors))
        suite["skipped"] = [
            {"name": "fig_x", "reason": "timed out after 900s"}]
        self.assertEqual(bench_schema.validate_suite(suite), [])

    def test_validate_file_autodetects(self):
        with tempfile.TemporaryDirectory() as d:
            suite_path = os.path.join(d, "suite.json")
            bench_path = os.path.join(d, "bench.json")
            with open(suite_path, "w") as f:
                json.dump(make_suite(), f)
            with open(bench_path, "w") as f:
                json.dump(make_bench(), f)
            self.assertEqual(bench_schema.validate_file(suite_path), [])
            self.assertEqual(bench_schema.validate_file(bench_path), [])

    def test_cli_exit_codes(self):
        with tempfile.TemporaryDirectory() as d:
            good = os.path.join(d, "good.json")
            bad = os.path.join(d, "bad.json")
            with open(good, "w") as f:
                json.dump(make_suite(), f)
            with open(bad, "w") as f:
                f.write("{\"schema_version\": 99}")
            with contextlib.redirect_stdout(io.StringIO()), \
                    contextlib.redirect_stderr(io.StringIO()):
                self.assertEqual(bench_schema.main(["p", good]), 0)
                self.assertEqual(bench_schema.main(["p", bad]), 2)
                self.assertEqual(bench_schema.main(["p"]), 2)


class BenchDiffTest(unittest.TestCase):
    def run_diff(self, base, cur, extra_args=()):
        with tempfile.TemporaryDirectory() as d:
            base_path = os.path.join(d, "base.json")
            cur_path = os.path.join(d, "cur.json")
            with open(base_path, "w") as f:
                json.dump(base, f)
            with open(cur_path, "w") as f:
                json.dump(cur, f)
            out = io.StringIO()
            argv = ["bench_diff", base_path, cur_path] + list(extra_args)
            with contextlib.redirect_stdout(out):
                code = bench_diff.main(argv)
            return code, out.getvalue()

    def mutate(self, suite, metric_name, value):
        cur = copy.deepcopy(suite)
        for m in cur["benches"]["fig_x"]["metrics"]:
            if m["name"] == metric_name:
                m["value"] = value
        return cur

    def test_identical_suites_pass(self):
        suite = make_suite()
        code, out = self.run_diff(suite, copy.deepcopy(suite))
        self.assertEqual(code, 0)
        self.assertIn("RESULT: PASS", out)
        self.assertIn("0 regression(s)", out)

    def test_counter_mismatch_fails(self):
        suite = make_suite()
        cur = self.mutate(suite, "what_if_calls", 43)
        code, out = self.run_diff(suite, cur)
        self.assertEqual(code, 1)
        self.assertIn("REGRESSION", out)
        self.assertIn("counter 42 -> 43", out)

    def test_counter_decrease_also_fails(self):
        # Counters gate both directions: silent drift = behavior change.
        suite = make_suite()
        cur = self.mutate(suite, "what_if_calls", 41)
        code, _ = self.run_diff(suite, cur)
        self.assertEqual(code, 1)

    def test_value_exact_by_default(self):
        suite = make_suite()
        cur = self.mutate(suite, "improvement_pct", 31.250000001)
        code, _ = self.run_diff(suite, cur)
        self.assertEqual(code, 1)

    def test_value_tolerance_allows_libm_drift(self):
        suite = make_suite()
        cur = self.mutate(suite, "improvement_pct", 31.250000001)
        code, _ = self.run_diff(suite, cur, ["--value-tolerance", "1e-6"])
        self.assertEqual(code, 0)

    def test_value_beyond_tolerance_fails(self):
        suite = make_suite()
        cur = self.mutate(suite, "improvement_pct", 31.9)
        code, _ = self.run_diff(suite, cur, ["--value-tolerance", "1e-6"])
        self.assertEqual(code, 1)

    def test_value_nonfinite_drift_fails(self):
        suite = make_suite()
        cur = self.mutate(suite, "improvement_pct", None)
        code, out = self.run_diff(suite, cur)
        self.assertEqual(code, 1)
        self.assertIn("non-finite", out)

    def test_time_slowdown_beyond_tolerance_gates(self):
        suite = make_suite()
        cur = self.mutate(suite, "tune_ms", 300.0)  # +100% > +50%
        code, out = self.run_diff(suite, cur)
        self.assertEqual(code, 1)
        self.assertIn("time 150.0ms -> 300.0ms", out)

    def test_time_slowdown_within_tolerance_passes(self):
        suite = make_suite()
        cur = self.mutate(suite, "tune_ms", 200.0)  # +33% < +50%
        code, _ = self.run_diff(suite, cur)
        self.assertEqual(code, 0)

    def test_time_speedup_never_flags(self):
        suite = make_suite()
        cur = self.mutate(suite, "tune_ms", 10.0)
        code, _ = self.run_diff(suite, cur)
        self.assertEqual(code, 0)

    def test_time_below_floor_is_noise(self):
        suite = make_suite()
        base = self.mutate(suite, "tune_ms", 5.0)
        cur = self.mutate(suite, "tune_ms", 50.0)  # 10x, but both < 100ms
        code, _ = self.run_diff(base, cur)
        self.assertEqual(code, 0)

    def test_times_report_demotes_to_warning(self):
        suite = make_suite()
        cur = self.mutate(suite, "tune_ms", 300.0)
        code, out = self.run_diff(suite, cur, ["--times", "report"])
        self.assertEqual(code, 0)
        self.assertIn("TIME WARN", out)

    def test_times_ignore_skips(self):
        suite = make_suite()
        cur = self.mutate(suite, "tune_ms", 30000.0)
        code, out = self.run_diff(suite, cur, ["--times", "ignore"])
        self.assertEqual(code, 0)
        self.assertNotIn("TIME WARN", out)

    def test_missing_metric_fails(self):
        suite = make_suite()
        cur = copy.deepcopy(suite)
        cur["benches"]["fig_x"]["metrics"] = [
            m for m in cur["benches"]["fig_x"]["metrics"]
            if m["name"] != "what_if_calls"]
        code, out = self.run_diff(suite, cur)
        self.assertEqual(code, 1)
        self.assertIn("missing from current run", out)

    def test_new_metric_is_note_not_regression(self):
        suite = make_suite()
        cur = copy.deepcopy(suite)
        cur["benches"]["fig_x"]["metrics"].append(
            {"name": "brand_new", "kind": "counter", "value": 9})
        code, out = self.run_diff(suite, cur)
        self.assertEqual(code, 0)
        self.assertIn("NOTE", out)
        self.assertIn("new metric", out)

    def test_missing_bench_fails(self):
        base_doc = make_bench("fig_y")
        base_doc["figure"] = "Figure Y"
        benches = {"fig_x": make_suite()["benches"]["fig_x"],
                   "fig_y": base_doc}
        base = make_suite(benches=benches)
        cur = make_suite()
        code, out = self.run_diff(base, cur)
        self.assertEqual(code, 1)
        self.assertIn("bench missing", out)

    def test_meta_mismatch_is_incomparable(self):
        base = make_suite()
        cur = copy.deepcopy(base)
        cur["benches"]["fig_x"]["meta"]["rows"] = 2000
        with self.assertRaises(SystemExit):
            self.run_diff(base, cur)

    def test_quick_mismatch_is_incomparable(self):
        base = make_suite(quick=True)
        cur = make_suite(quick=False)
        with self.assertRaises(SystemExit):
            self.run_diff(base, cur)

    def test_kind_change_is_incomparable(self):
        base = make_suite()
        cur = copy.deepcopy(base)
        for m in cur["benches"]["fig_x"]["metrics"]:
            if m["name"] == "what_if_calls":
                m["kind"] = "value"
                m["value"] = 42.0
        with self.assertRaises(SystemExit):
            self.run_diff(base, cur)

    def test_schema_invalid_input_exits_2(self):
        with tempfile.TemporaryDirectory() as d:
            bad = os.path.join(d, "bad.json")
            good = os.path.join(d, "good.json")
            with open(bad, "w") as f:
                f.write("{}")
            with open(good, "w") as f:
                json.dump(make_suite(), f)
            with contextlib.redirect_stderr(io.StringIO()):
                with self.assertRaises(SystemExit) as ctx:
                    bench_diff.main(["bench_diff", bad, good])
            self.assertEqual(ctx.exception.code, 2)


if __name__ == "__main__":
    unittest.main()
