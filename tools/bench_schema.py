#!/usr/bin/env python3
"""Schema validation for the machine-readable bench pipeline.

Two document shapes share schema_version 1:

  * a per-bench report, emitted by a bench binary under ``--json``
    (src/common/bench_report.cc is the writer);
  * a suite report, ``BENCH_<tag>.json``, produced by tools/repro by
    merging per-bench reports under a ``benches`` object.

Validation is hand-rolled (no third-party jsonschema dependency): each
function returns a list of human-readable error strings, empty when the
document conforms. The CLI validates files and exits 2 on any error —
that is what the CI perf-trajectory job runs against its artifact.
"""

import json
import sys

SCHEMA_VERSION = 1
METRIC_KINDS = ("counter", "value", "time_ms")
META_INT_KEYS = ("rows", "seed", "threads")
META_STR_KEYS = ("build_type", "git_sha")


def _err(path, msg):
    return "%s: %s" % (path, msg)


def validate_metric(metric, path, seen_names):
    errors = []
    if not isinstance(metric, dict):
        return [_err(path, "metric must be an object")]
    name = metric.get("name")
    if not isinstance(name, str) or not name:
        errors.append(_err(path, "metric name must be a non-empty string"))
    elif name in seen_names:
        errors.append(_err(path, "duplicate metric name %r" % name))
    else:
        seen_names.add(name)
    kind = metric.get("kind")
    if kind not in METRIC_KINDS:
        errors.append(
            _err(path, "kind %r not one of %s" % (kind, list(METRIC_KINDS))))
    value = metric.get("value")
    if kind == "counter":
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            errors.append(
                _err(path, "counter value must be a non-negative integer, "
                     "got %r" % (value,)))
    else:
        # Non-finite doubles are emitted as null.
        if value is not None and not isinstance(value, (int, float)):
            errors.append(
                _err(path, "value must be a number or null, got %r" % (value,)))
    extra = set(metric) - {"name", "kind", "value"}
    if extra:
        errors.append(_err(path, "unexpected keys %s" % sorted(extra)))
    return errors


def validate_bench(doc, path="bench"):
    """Validates one per-bench report document."""
    errors = []
    if not isinstance(doc, dict):
        return [_err(path, "report must be an object")]
    if doc.get("schema_version") != SCHEMA_VERSION:
        errors.append(
            _err(path, "schema_version must be %d, got %r"
                 % (SCHEMA_VERSION, doc.get("schema_version"))))
    if not isinstance(doc.get("bench"), str) or not doc.get("bench"):
        errors.append(_err(path, "bench must be a non-empty string"))
    meta = doc.get("meta")
    if not isinstance(meta, dict):
        errors.append(_err(path, "meta must be an object"))
    else:
        for key in META_INT_KEYS:
            v = meta.get(key)
            if not isinstance(v, int) or isinstance(v, bool) or v < 0:
                errors.append(
                    _err(path, "meta.%s must be a non-negative integer, "
                         "got %r" % (key, v)))
        for key in META_STR_KEYS:
            if not isinstance(meta.get(key), str) or not meta.get(key):
                errors.append(
                    _err(path, "meta.%s must be a non-empty string" % key))
    metrics = doc.get("metrics")
    if not isinstance(metrics, list):
        errors.append(_err(path, "metrics must be an array"))
    else:
        seen = set()
        for i, metric in enumerate(metrics):
            errors.extend(
                validate_metric(metric, "%s.metrics[%d]" % (path, i), seen))
    return errors


def validate_suite(doc, path="suite"):
    """Validates a merged BENCH_<tag>.json suite document."""
    errors = []
    if not isinstance(doc, dict):
        return [_err(path, "suite must be an object")]
    if doc.get("schema_version") != SCHEMA_VERSION:
        errors.append(
            _err(path, "schema_version must be %d, got %r"
                 % (SCHEMA_VERSION, doc.get("schema_version"))))
    for key in ("tag", "git_sha", "build_type", "generator"):
        if not isinstance(doc.get(key), str) or not doc.get(key):
            errors.append(_err(path, "%s must be a non-empty string" % key))
    if not isinstance(doc.get("quick"), bool):
        errors.append(_err(path, "quick must be a boolean"))
    # Optional list of benches the runner skipped (e.g. wall-clock timeout):
    # each entry names the bench and says why it is missing from `benches`.
    skipped = doc.get("skipped", [])
    if not isinstance(skipped, list):
        errors.append(_err(path, "skipped must be an array"))
        skipped = []
    else:
        for i, skip in enumerate(skipped):
            skip_path = "%s.skipped[%d]" % (path, i)
            if not isinstance(skip, dict):
                errors.append(_err(skip_path, "skip entry must be an object"))
                continue
            for key in ("name", "reason"):
                if not isinstance(skip.get(key), str) or not skip.get(key):
                    errors.append(
                        _err(skip_path,
                             "%s must be a non-empty string" % key))
    benches = doc.get("benches")
    if not isinstance(benches, dict) or (not benches and not skipped):
        errors.append(_err(path, "benches must be a non-empty object "
                           "(unless every bench was skipped)"))
        return errors
    for name, bench in sorted(benches.items()):
        bench_path = "%s.benches[%s]" % (path, name)
        if isinstance(bench, dict):
            figure = bench.get("figure")
            if not isinstance(figure, str) or not figure:
                errors.append(
                    _err(bench_path, "figure must be a non-empty string"))
            core = {k: v for k, v in bench.items()
                    if k not in ("figure", "title")}
        else:
            core = bench
        errors.extend(validate_bench(core, bench_path))
        if isinstance(bench, dict) and bench.get("bench") != name:
            errors.append(
                _err(bench_path, "bench key %r does not match map key %r"
                     % (bench.get("bench"), name)))
    return errors


def validate_file(file_path):
    try:
        with open(file_path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        return ["%s: %s" % (file_path, e)]
    if isinstance(doc, dict) and "benches" in doc:
        return validate_suite(doc, path=file_path)
    return validate_bench(doc, path=file_path)


def main(argv):
    if len(argv) < 2 or argv[1] in ("-h", "--help"):
        print("usage: bench_schema.py BENCH_FILE...", file=sys.stderr)
        return 2
    failed = False
    for file_path in argv[1:]:
        errors = validate_file(file_path)
        if errors:
            failed = True
            for e in errors:
                print("SCHEMA ERROR %s" % e, file=sys.stderr)
        else:
            print("%s: schema OK" % file_path)
    return 2 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
