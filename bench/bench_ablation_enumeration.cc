// Ablation: enumeration strategies from Section 6.2 — pure greedy vs
// density-based greedy (benefit/size, Figure 7) vs greedy+backtracking —
// across budgets. The paper's observations to verify:
//   - density greedy helps in tight budgets but "tends to add many small
//     but not so beneficial indexes which often cause a suboptimal design
//     for larger budgets";
//   - backtracking recovers oversized choices in both regimes.
#include "bench/bench_common.h"

namespace capd {
namespace bench {
namespace {

void Run() {
  Stack s = MakeTpchStack(6000);
  const Workload w = s.workload.WithInsertWeight(0.2);

  AdvisorOptions pure = AdvisorOptions::DTAcSkyline();
  pure.enumeration = EnumerationMode::kGreedy;
  AdvisorOptions density = pure;
  density.enumeration = EnumerationMode::kDensityGreedy;
  AdvisorOptions back = AdvisorOptions::DTAcBoth();
  AdvisorOptions density_back = back;
  density_back.enumeration = EnumerationMode::kDensityGreedy;

  PrintHeader("Ablation: enumeration strategy (TPC-H SELECT intensive)");
  RunImprovementTable(&s, w, {0.03, 0.08, 0.20, 0.50, 1.00},
                      {{"Greedy", pure},
                       {"Density", density},
                       {"G+Backtr", back},
                       {"D+Backtr", density_back}});
  std::printf("\nExpected: density competitive at tight budgets, weaker at "
              "large ones; backtracking helps both.\n");
}

}  // namespace
}  // namespace bench
}  // namespace capd

int main() {
  capd::bench::Run();
  return 0;
}
