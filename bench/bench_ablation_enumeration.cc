// Ablation: enumeration strategies from Section 6.2 — pure greedy vs
// density-based greedy (benefit/size, Figure 7) vs greedy+backtracking —
// across budgets. The paper's observations to verify:
//   - density greedy helps in tight budgets but "tends to add many small
//     but not so beneficial indexes which often cause a suboptimal design
//     for larger budgets";
//   - backtracking recovers oversized choices in both regimes.
#include "bench/bench_common.h"

namespace capd {
namespace bench {
namespace {

void Run(BenchContext& ctx) {
  Stack s = MakeTpchStack(ctx.flags.rows, 0.0, ctx.flags.seed);
  const Workload w = s.workload.WithInsertWeight(0.2);

  AdvisorOptions pure = AdvisorOptions::DTAcSkyline();
  pure.enumeration = EnumerationMode::kGreedy;
  AdvisorOptions density = pure;
  density.enumeration = EnumerationMode::kDensityGreedy;
  AdvisorOptions back = AdvisorOptions::DTAcBoth();
  AdvisorOptions density_back = back;
  density_back.enumeration = EnumerationMode::kDensityGreedy;

  PrintHeader("Ablation: enumeration strategy (TPC-H SELECT intensive)");
  RunImprovementTable(&ctx, &s, w, {0.03, 0.08, 0.20, 0.50, 1.00},
                      {{"Greedy", pure},
                       {"Density", density},
                       {"G+Backtr", back},
                       {"D+Backtr", density_back}});
  std::printf("\nExpected: density competitive at tight budgets, weaker at "
              "large ones; backtracking helps both.\n");

  // What-if work accounting at one mid-range budget: how much of each
  // strategy's search traffic the per-statement cost cache absorbs.
  PrintHeader("What-if calls and cost-cache savings (budget 8%)");
  std::printf("%-10s %12s %12s %12s %10s\n", "variant", "what-if",
              "computed", "cached", "saved");
  for (const auto& [name, options] :
       std::vector<std::pair<std::string, AdvisorOptions>>{
           {"Greedy", pure},
           {"Density", density},
           {"G+Backtr", back},
           {"D+Backtr", density_back}}) {
    const AdvisorResult r = s.Tune(options, 0.08, w);
    const size_t costings = r.stmt_costs_computed + r.stmt_costs_cached;
    const double saved =
        static_cast<double>(costings) /
        static_cast<double>(std::max<size_t>(r.stmt_costs_computed, 1));
    std::printf("%-10s %12zu %12zu %12zu %9.1fx\n", name.c_str(),
                r.what_if_calls, r.stmt_costs_computed, r.stmt_costs_cached,
                saved);
    const std::string key = "[" + name + ",budget=0.08,cache=on]";
    ctx.report.AddCounter("what_if_calls" + key, r.what_if_calls);
    ctx.report.AddCounter("stmt_costs_computed" + key, r.stmt_costs_computed);
    ctx.report.AddCounter("stmt_costs_cached" + key, r.stmt_costs_cached);
    ctx.report.AddValue("costings_saved_ratio" + key, saved);
  }
}

}  // namespace
}  // namespace bench
}  // namespace capd

int main(int argc, char** argv) {
  return capd::bench::BenchMain(argc, argv, "ablation_enumeration",
                                /*default_rows=*/6000,
                                /*default_seed=*/20110829, capd::bench::Run);
}
