// Figure 11: cost of compressed-index size estimation inside the full tool
// (all features: table, partial and MV indexes), with and without the
// deduction methods. The paper reports wall-clock on SQL Server; the
// machine-independent metric here is the framework's own cost unit (sample
// pages indexed, Section 5.1), plus measured wall time for reference.
// Paper shape: deduction turns size estimation from the dominating cost
// into a modest one (~3x less estimation work).
#include "bench/bench_common.h"

namespace capd {
namespace bench {
namespace {

struct RunStats {
  double table_cost = 0, partial_cost = 0, mv_cost = 0;
  double table_ms = 0, partial_ms = 0, mv_ms = 0;
  double other_ms = 0;
  size_t sampled = 0, deduced = 0;
};

RunStats RunOnce(bool use_deduction, const BenchContext& ctx) {
  Stack s = MakeTpchStack(ctx.flags.rows, 0.0, ctx.flags.seed);
  AdvisorOptions options = AdvisorOptions::DTAcBoth();
  options.enable_partial = true;
  options.enable_mv = true;
  options.num_threads = ctx.flags.threads;
  options.size_options.num_threads = ctx.flags.threads;
  options.size_options.use_deduction = use_deduction;
  // Tighter accuracy than the defaults so the choice of method matters
  // (with e very loose, a 1%-sample SampleCF passes everywhere and both
  // modes coincide at laptop scale).
  options.size_options.e = 0.25;
  options.size_options.q = 0.95;

  // Generate the full candidate set the tool would consider.
  CandidateGenerator generator(*s.db, s.optimizer(), s.mvs(), options);
  const std::vector<IndexDef> candidates =
      generator.GenerateForWorkload(s.workload);

  std::vector<IndexDef> table_idx, partial_idx, mv_idx;
  for (const IndexDef& def : candidates) {
    if (def.compression == CompressionKind::kNone) continue;
    if (!s.db->HasTable(def.object)) {
      mv_idx.push_back(def);
    } else if (def.filter.has_value()) {
      partial_idx.push_back(def);
    } else {
      table_idx.push_back(def);
    }
  }

  SizeEstimator estimator(*s.db, s.mvs(), ErrorModel(), options.size_options);
  RunStats stats;
  const auto t0 = std::chrono::steady_clock::now();
  auto batch = estimator.EstimateAll(table_idx);
  stats.table_cost = batch.total_cost_pages;
  stats.sampled += batch.num_sampled;
  stats.deduced += batch.num_deduced;
  const auto t1 = std::chrono::steady_clock::now();
  batch = estimator.EstimateAll(partial_idx);
  stats.partial_cost = batch.total_cost_pages;
  stats.sampled += batch.num_sampled;
  stats.deduced += batch.num_deduced;
  const auto t2 = std::chrono::steady_clock::now();
  batch = estimator.EstimateAll(mv_idx);
  stats.mv_cost = batch.total_cost_pages;
  stats.sampled += batch.num_sampled;
  stats.deduced += batch.num_deduced;
  const auto t3 = std::chrono::steady_clock::now();

  // "Other": the rest of the tuning pipeline at this configuration.
  s.engine->TuneWithOptions(
      s.workload, 0.5 * static_cast<double>(s.db->BaseDataBytes()), options);
  const auto t4 = std::chrono::steady_clock::now();

  stats.table_ms = Millis(t0, t1);
  stats.partial_ms = Millis(t1, t2);
  stats.mv_ms = Millis(t2, t3);
  stats.other_ms = Millis(t3, t4);
  return stats;
}

void Record(BenchContext& ctx, const char* mode, const RunStats& s) {
  const std::string key = std::string("[deduction=") + mode + "]";
  ctx.report.AddValue("table_est_pages" + key, s.table_cost);
  ctx.report.AddValue("partial_est_pages" + key, s.partial_cost);
  ctx.report.AddValue("mv_est_pages" + key, s.mv_cost);
  ctx.report.AddValue("total_est_pages" + key,
                      s.table_cost + s.partial_cost + s.mv_cost);
  ctx.report.AddCounter("num_sampled" + key, s.sampled);
  ctx.report.AddCounter("num_deduced" + key, s.deduced);
  ctx.report.AddTimeMs("estimation_ms" + key,
                       s.table_ms + s.partial_ms + s.mv_ms);
  ctx.report.AddTimeMs("other_ms" + key, s.other_ms);
}

void Run(BenchContext& ctx) {
  PrintHeader("Figure 11: size-estimation cost with/without deduction");
  std::printf("%-18s %14s %14s\n", "component", "w/o deduction",
              "with deduction");
  const RunStats without = RunOnce(false, ctx);
  const RunStats with = RunOnce(true, ctx);
  std::printf("%-18s %11.0f pg %11.0f pg\n", "Table-Estimate",
              without.table_cost, with.table_cost);
  std::printf("%-18s %11.0f pg %11.0f pg\n", "Partial-Estimate",
              without.partial_cost, with.partial_cost);
  std::printf("%-18s %11.0f pg %11.0f pg\n", "MV-Estimate", without.mv_cost,
              with.mv_cost);
  const double wo_total =
      without.table_cost + without.partial_cost + without.mv_cost;
  const double w_total = with.table_cost + with.partial_cost + with.mv_cost;
  std::printf("%-18s %11.0f pg %11.0f pg   (%.1fx less estimation work)\n",
              "TOTAL estimation", wo_total, w_total,
              w_total > 0 ? wo_total / w_total : 0.0);
  std::printf("%-18s %11.1f ms %11.1f ms\n", "estimation time",
              without.table_ms + without.partial_ms + without.mv_ms,
              with.table_ms + with.partial_ms + with.mv_ms);
  std::printf("%-18s %11.1f ms %11.1f ms\n", "Other (tuning)",
              without.other_ms, with.other_ms);
  std::printf("%-18s %8zu/%zu  %10zu/%zu  (sampled/deduced)\n", "methods",
              without.sampled, without.deduced, with.sampled, with.deduced);
  Record(ctx, "off", without);
  Record(ctx, "on", with);
  ctx.report.AddValue("estimation_work_ratio",
                      w_total > 0 ? wo_total / w_total : 0.0);
  std::printf("\nPaper shape: deduction drops estimation from dominating "
              "(700s vs 500s other) to modest (200s), ~3x less.\n");
}

}  // namespace
}  // namespace bench
}  // namespace capd

int main(int argc, char** argv) {
  return capd::bench::BenchMain(argc, argv, "fig11_estimation_cost",
                                /*default_rows=*/24000,
                                /*default_seed=*/20110829, capd::bench::Run);
}
