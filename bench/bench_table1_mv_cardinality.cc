// Table 1: average error of estimating the number of tuples in aggregation
// MVs, comparing the query-optimizer independence assumption ("Optimizer"),
// naive sample scale-up ("Multiply"), and the Adaptive Estimator ("AE",
// Appendix B.3). Paper: Optimizer 96%, Multiply 379%, AE 6%.
#include "bench/bench_common.h"

namespace capd {
namespace bench {
namespace {

void Run(BenchContext& ctx) {
  Stack s = MakeTpchStack(ctx.flags.rows, 0.0, ctx.flags.seed);

  // Aggregation MVs in the spirit of those DTA considers for TPC-H: group
  // bys over single columns, column pairs, and joined dimensions.
  std::vector<MVDef> defs;
  auto add = [&](std::string name, std::vector<std::string> group_by,
                 std::vector<JoinClause> joins = {}) {
    MVDef def;
    def.name = std::move(name);
    def.fact_table = "lineitem";
    def.joins = std::move(joins);
    def.group_by = std::move(group_by);
    def.aggregates = {{"l_extendedprice", "SUM"}};
    defs.push_back(std::move(def));
  };
  // Multi-column group-bys dominate, several over correlated columns
  // (ship/commit/receipt dates move together), which is what defeats the
  // optimizer's independence assumption in the paper.
  add("mv1", {"l_shipdate", "l_commitdate"});
  add("mv2", {"l_shipdate", "l_receiptdate"});
  add("mv3", {"l_shipdate", "l_shipmode"});
  add("mv4", {"l_commitdate", "l_receiptdate"});
  add("mv5", {"l_suppkey", "l_shipmode"});
  add("mv6", {"l_orderkey", "l_linenumber"});
  add("mv7", {"l_quantity", "l_returnflag"});
  add("mv8", {"p_brand"}, {{"part", "l_partkey", "p_partkey"}});
  add("mv9", {"p_brand", "p_type"}, {{"part", "l_partkey", "p_partkey"}});
  add("mv10", {"l_shipmode", "l_linestatus", "l_returnflag"});
  // Correlated small-domain pairs: this is where the independence
  // assumption overshoots without being saved by the cap at n.
  add("mv11", {"l_shipmode", "l_shipinstruct"});
  add("mv12", {"l_shipmode", "l_shipinstruct", "l_returnflag"});

  PrintHeader("Table 1: average |error| of #tuples in aggregated MVs");
  std::printf("%-8s %12s %12s %12s %12s\n", "mv", "true", "Optimizer",
              "Multiply", "AE");
  std::vector<double> opt_err, mult_err, ae_err;
  for (const MVDef& def : defs) {
    s.mvs()->Register(def);
    const double truth =
        static_cast<double>(MaterializeMV(*s.db, def)->num_rows());
    const MVTupleEstimates est = s.mvs()->EstimateTuples(def, 0.10);
    auto err = [truth](double e) { return std::abs(e - truth) / truth; };
    opt_err.push_back(err(est.optimizer));
    mult_err.push_back(err(est.multiply));
    ae_err.push_back(err(est.adaptive));
    std::printf("%-8s %12.0f %11.0f%% %11.0f%% %11.0f%%\n", def.name.c_str(),
                truth, err(est.optimizer) * 100, err(est.multiply) * 100,
                err(est.adaptive) * 100);
    const std::string key = "[mv=" + def.name + "]";
    ctx.report.AddCounter("true_tuples" + key,
                          static_cast<uint64_t>(truth));
    ctx.report.AddValue("err_optimizer" + key, err(est.optimizer));
    ctx.report.AddValue("err_multiply" + key, err(est.multiply));
    ctx.report.AddValue("err_adaptive" + key, err(est.adaptive));
  }
  std::printf("%-8s %12s %11.0f%% %11.0f%% %11.0f%%\n", "AVERAGE", "",
              Mean(opt_err) * 100, Mean(mult_err) * 100, Mean(ae_err) * 100);
  ctx.report.AddValue("avg_err_optimizer", Mean(opt_err));
  ctx.report.AddValue("avg_err_multiply", Mean(mult_err));
  ctx.report.AddValue("avg_err_adaptive", Mean(ae_err));
  std::printf("\nPaper reference: Optimizer 96%%, Multiply 379%%, AE 6%%\n");
}

}  // namespace
}  // namespace bench
}  // namespace capd

int main(int argc, char** argv) {
  return capd::bench::BenchMain(argc, argv, "table1_mv_cardinality",
                                /*default_rows=*/8000,
                                /*default_seed=*/20110829, capd::bench::Run);
}
