// Future-work study (Section 8): RLE in a column-store sense is "quite
// sensitive to the sort orders". This bench quantifies that with our RLE
// codec: the same column set RLE-compressed under each choice of leading
// sort column, reporting compression fractions and the run-length L(I,Y)
// quantities the Section 4.2 deduction reasons about.
#include "bench/bench_common.h"

namespace capd {
namespace bench {
namespace {

void Run(BenchContext& ctx) {
  Stack s = MakeTpchStack(ctx.flags.rows, 0.0, ctx.flags.seed);
  IndexBuilder builder(s.db->table("lineitem"));
  const std::vector<std::string> cols = {"l_returnflag", "l_shipmode",
                                         "l_shipdate", "l_partkey"};
  const TableStats& stats = s.db->stats("lineitem");

  PrintHeader("Future work: RLE compression fraction vs leading sort column");
  std::printf("%-14s %10s %14s   (|col| distinct; runs collapse when the\n",
              "leading col", "RLE cf", "|leading col|");
  std::printf("%-14s %10s %14s    low-cardinality column sorts first)\n", "",
              "", "");
  for (const std::string& lead : cols) {
    IndexDef def;
    def.object = "lineitem";
    def.key_columns = {lead};
    for (const std::string& c : cols) {
      if (c != lead) def.key_columns.push_back(c);
    }
    def.compression = CompressionKind::kRle;
    const double cf = builder.TrueCompressionFraction(def);
    std::printf("%-14s %9.1f%% %14llu\n", lead.c_str(), cf * 100,
                static_cast<unsigned long long>(stats.column(lead).distinct));
    const std::string key = "[lead=" + lead + "]";
    ctx.report.AddValue("rle_cf" + key, cf);
    ctx.report.AddCounter("distinct" + key, stats.column(lead).distinct);
  }
  std::printf("\nExpected: cf improves monotonically as the leading column's "
              "cardinality drops (longest runs), the Section 8 column-store "
              "observation.\n");
}

}  // namespace
}  // namespace bench
}  // namespace capd

int main(int argc, char** argv) {
  return capd::bench::BenchMain(argc, argv, "future_rle_sortorder",
                                /*default_rows=*/8000,
                                /*default_seed=*/20110829, capd::bench::Run);
}
