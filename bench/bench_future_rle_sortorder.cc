// Future-work study (Section 8): order-dependent compression is "quite
// sensitive to the sort orders". This fit bench quantifies that for BOTH
// order-dependent families — RLE and the succinct BITMAP structure — in the
// style of the Table 2/3 error fits:
//   1. sort-order sweep: the same lineitem column set packed under each
//      choice of leading sort column, with exact run counts, measured bytes,
//      packed pages, and the SampleCF estimate next to ground truth;
//   2. distinct-count sweep: synthetic sorted vs shuffled keys at distinct
//      counts straddling BitmapCodec's per-page cap, RLE vs BITMAP bytes;
//   3. sort-order deduction: permutations of one column set estimated
//      through the kSortOrder rule — exact sampled / deduced counters and a
//      bit-for-bit comparison against fresh sampling of every permutation.
#include <algorithm>

#include "bench/bench_common.h"
#include "common/random.h"
#include "compress/codec_factory.h"
#include "estimator/size_estimator.h"
#include "succinct/bitmap_codec.h"

namespace capd {
namespace bench {
namespace {

// Exact value-run count of column c over pre-sorted rows.
uint64_t CountRuns(const std::vector<Row>& rows, size_t c) {
  uint64_t runs = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    if (i == 0 || !(rows[i][c] == rows[i - 1][c])) ++runs;
  }
  return runs;
}

void SortOrderSweep(BenchContext& ctx, Stack& s) {
  IndexBuilder builder(s.db->table("lineitem"));
  const std::vector<std::string> cols = {"l_returnflag", "l_shipmode",
                                         "l_shipdate", "l_partkey"};
  const TableStats& stats = s.db->stats("lineitem");
  SampleManager samples(ctx.flags.seed);
  TableSampleSource source(*s.db, &samples);
  SampleCfEstimator estimator(*s.db, &source);

  PrintHeader("Sort-order sweep: RLE vs BITMAP vs leading sort column");
  std::printf("%-14s %9s %8s %9s %9s %9s %9s\n", "leading col", "|lead|",
              "runs", "RLE cf", "BMP cf", "RLE est", "BMP est");
  for (const std::string& lead : cols) {
    IndexDef def;
    def.object = "lineitem";
    def.key_columns = {lead};
    for (const std::string& c : cols) {
      if (c != lead) def.key_columns.push_back(c);
    }
    const std::vector<Row> rows = builder.MaterializeRows(def);
    const uint64_t runs = CountRuns(rows, 0);
    const IndexPhysical none =
        builder.Pack(def.WithCompression(CompressionKind::kNone), rows);
    const std::string key = "[lead=" + lead + "]";
    ctx.report.AddCounter("distinct" + key, stats.column(lead).distinct);
    ctx.report.AddCounter("runs" + key, runs);

    double cf[2] = {0, 0};
    double est_cf[2] = {0, 0};
    const CompressionKind kinds[2] = {CompressionKind::kRle,
                                      CompressionKind::kBitmap};
    const char* tags[2] = {"rle", "bitmap"};
    for (int k = 0; k < 2; ++k) {
      const IndexDef variant = def.WithCompression(kinds[k]);
      const IndexPhysical phys = builder.Pack(variant, rows);
      cf[k] = static_cast<double>(phys.fine_bytes()) /
              static_cast<double>(none.fine_bytes());
      const SampleCfResult est = estimator.Estimate(variant, 0.1);
      est_cf[k] = est.cf;
      ctx.report.AddValue(std::string(tags[k]) + "_cf" + key, cf[k]);
      ctx.report.AddValue(std::string(tags[k]) + "_est_cf" + key, est_cf[k]);
      ctx.report.AddValue(std::string(tags[k]) + "_est_bytes" + key,
                          est.est_bytes);
      ctx.report.AddCounter(std::string(tags[k]) + "_measured_bytes" + key,
                            phys.fine_bytes());
      ctx.report.AddCounter(std::string(tags[k]) + "_pages" + key,
                            phys.data_pages);
    }
    std::printf("%-14s %9llu %8llu %8.1f%% %8.1f%% %8.1f%% %8.1f%%\n",
                lead.c_str(),
                static_cast<unsigned long long>(stats.column(lead).distinct),
                static_cast<unsigned long long>(runs), cf[0] * 100,
                cf[1] * 100, est_cf[0] * 100, est_cf[1] * 100);
  }
  std::printf("Expected: both families improve as the leading column's "
              "cardinality drops (longest runs / pure fills); BITMAP tracks "
              "RLE but pays one bitmap per distinct leading value.\n");
}

void DistinctSweep(BenchContext& ctx, Stack& s) {
  (void)s;
  const Schema schema({{"key", ValueType::kString, 10},
                       {"payload", ValueType::kInt64, 8}});
  const size_t n = std::min<uint64_t>(ctx.flags.rows, 4096);

  PrintHeader("Distinct-count sweep: RLE vs BITMAP bytes, sorted vs shuffled");
  std::printf("%-9s %14s %14s %14s %14s\n", "distinct", "RLE sorted",
              "BMP sorted", "RLE shuffled", "BMP shuffled");
  for (const uint64_t d : {2u, 8u, 32u, 64u, 256u}) {
    Random rng(ctx.flags.seed + d);
    std::vector<Row> rows;
    rows.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      // Sorted: value v repeats n/d times contiguously.
      const uint64_t v = (i * d) / n;
      char buf[16];
      std::snprintf(buf, sizeof(buf), "k%06llu",
                    static_cast<unsigned long long>(v));
      rows.push_back({Value::String(buf),
                      Value::Int64(rng.Uniform(0, 1 << 20))});
    }
    std::vector<Row> shuffled = rows;
    for (size_t i = shuffled.size() - 1; i > 0; --i) {
      std::swap(shuffled[i], shuffled[rng.Next(i + 1)]);
    }
    uint64_t bytes[4] = {0, 0, 0, 0};
    int slot = 0;
    for (const std::vector<Row>* set : {&rows, &shuffled}) {
      for (CompressionKind kind :
           {CompressionKind::kRle, CompressionKind::kBitmap}) {
        const std::unique_ptr<Codec> codec = MakeCodec(kind, schema, *set);
        const PackResult packed = PackPages(*set, schema, *codec);
        bytes[slot++] = packed.payload_bytes;
      }
    }
    const std::string key = "[d=" + std::to_string(d) + "]";
    ctx.report.AddCounter("rle_sorted_bytes" + key, bytes[0]);
    ctx.report.AddCounter("bitmap_sorted_bytes" + key, bytes[1]);
    ctx.report.AddCounter("rle_shuffled_bytes" + key, bytes[2]);
    ctx.report.AddCounter("bitmap_shuffled_bytes" + key, bytes[3]);
    std::printf("%-9llu %14llu %14llu %14llu %14llu\n",
                static_cast<unsigned long long>(d),
                static_cast<unsigned long long>(bytes[0]),
                static_cast<unsigned long long>(bytes[1]),
                static_cast<unsigned long long>(bytes[2]),
                static_cast<unsigned long long>(bytes[3]));
  }
  std::printf("Expected: sorted BITMAP stays near-flat until distinct "
              "exceeds the per-page cap (%llu), where it falls back to NS; "
              "shuffling hurts both order-dependent families.\n",
              static_cast<unsigned long long>(
                  BitmapCodec::kMaxDistinctPerColumn));
}

void SortOrderDeduction(BenchContext& ctx, Stack& s) {
  constexpr double kF = 0.05;
  const std::vector<std::vector<std::string>> orders = {
      {"l_returnflag", "l_shipmode", "l_shipdate"},
      {"l_shipmode", "l_shipdate", "l_returnflag"},
      {"l_shipdate", "l_returnflag", "l_shipmode"}};

  PrintHeader("Sort-order deduction: permutations priced from one leaf");
  std::printf("%-8s %8s %10s %10s %10s\n", "family", "sampled", "deduced",
              "sortorder", "bit-equal");
  for (CompressionKind kind :
       {CompressionKind::kBitmap, CompressionKind::kRle}) {
    SampleManager samples(ctx.flags.seed);
    TableSampleSource source(*s.db, &samples);
    EstimationGraph graph(*s.db, &source, ErrorModel());
    graph.set_enable_sort_order(true);
    std::vector<IndexDef> targets;
    for (const auto& keys : orders) {
      IndexDef def;
      def.object = "lineitem";
      def.key_columns = keys;
      def.compression = kind;
      targets.push_back(def);
    }
    graph.AddTargets(targets);
    graph.Greedy(kF, /*e=*/0.25, /*q=*/0.9);
    const auto estimates = graph.Execute(kF);

    // Every permutation, deduced or sampled, must equal fresh sampling
    // bit for bit (same seed => same sample => same packing arithmetic).
    SampleManager fresh_samples(ctx.flags.seed);
    TableSampleSource fresh_source(*s.db, &fresh_samples);
    SampleCfEstimator fresh(*s.db, &fresh_source);
    uint64_t identical = 1;
    for (const IndexDef& def : targets) {
      const SampleCfResult& got = estimates.at(def.Signature());
      const SampleCfResult want = fresh.Estimate(def, kF);
      if (got.est_bytes != want.est_bytes || got.cf != want.cf) identical = 0;
      ctx.report.AddValue("est_bytes[" +
                              std::string(CompressionKindName(kind)) + "," +
                              def.key_columns.front() + "]",
                          got.est_bytes);
    }
    const std::string key =
        "[" + std::string(CompressionKindName(kind)) + "]";
    ctx.report.AddCounter("sampled" + key, graph.NumSampled());
    ctx.report.AddCounter("deduced" + key, graph.NumDeduced());
    ctx.report.AddCounter("sortorder_deduced" + key,
                          graph.NumSortOrderDeduced());
    ctx.report.AddCounter("deduced_bit_identical" + key, identical);
    std::printf("%-8s %8zu %10zu %10zu %10llu\n", CompressionKindName(kind),
                graph.NumSampled(), graph.NumDeduced(),
                graph.NumSortOrderDeduced(),
                static_cast<unsigned long long>(identical));
  }
  std::printf("Expected: one sampled leaf per family, every sibling order "
              "deduced, and deduced == fresh sampling bit for bit (the "
              "kSortOrder rule recomputes on the donor's sample).\n");
}

void Run(BenchContext& ctx) {
  Stack s = MakeTpchStack(ctx.flags.rows, 0.0, ctx.flags.seed);
  SortOrderSweep(ctx, s);
  DistinctSweep(ctx, s);
  SortOrderDeduction(ctx, s);
}

}  // namespace
}  // namespace bench
}  // namespace capd

int main(int argc, char** argv) {
  return capd::bench::BenchMain(argc, argv, "future_rle_sortorder",
                                /*default_rows=*/8000,
                                /*default_seed=*/20110829, capd::bench::Run);
}
