// Table 4: total sampling cost (pages of sample data to index) of the three
// graph-search strategies — All (SampleCF everywhere), Greedy (Section 5.2)
// and Optimal (Appendix D exact recursion) — on LINEITEM indexes with
// e=0.5, q=0.9, across sampling fractions. Paper shape: Greedy 2-6x cheaper
// than All, within ~8% of Optimal on average, and orders of magnitude
// faster than Optimal.
#include "bench/bench_common.h"

namespace capd {
namespace bench {
namespace {

void Run(BenchContext& ctx) {
  Stack s = MakeTpchStack(ctx.flags.rows, 0.0, ctx.flags.seed);
  // Target compressed indexes on lineitem, up to 7 columns wide (the
  // paper's cap), with nested prefixes so deductions have structure to
  // exploit, mirroring Figure 3's AB / ABC shape.
  const std::vector<std::vector<std::string>> shapes = {
      {"l_shipdate"},
      {"l_shipmode"},
      {"l_quantity"},
      {"l_returnflag"},
      {"l_shipdate", "l_shipmode"},
      {"l_shipdate", "l_shipmode", "l_quantity"},
      {"l_shipdate", "l_shipmode", "l_quantity", "l_returnflag"},
      {"l_partkey", "l_suppkey"},
      {"l_partkey", "l_suppkey", "l_quantity"},
      {"l_shipdate", "l_shipmode", "l_quantity", "l_returnflag", "l_partkey",
       "l_suppkey", "l_discount"},
  };
  std::vector<IndexDef> targets;
  for (const auto& keys : shapes) {
    IndexDef def;
    def.object = "lineitem";
    def.key_columns = keys;
    def.compression = CompressionKind::kRow;
    targets.push_back(std::move(def));
  }

  PrintHeader("Table 4: graph search cost [sample pages], e=0.5 q=0.9");
  std::printf("%10s %10s %10s %10s %12s %12s\n", "f", "All", "Greedy",
              "Optimal", "greedy[ms]", "optimal[ms]");
  SampleManager samples(31337);
  TableSampleSource source(*s.db, &samples);
  for (double f : {0.01, 0.025, 0.05, 0.075, 0.10}) {
    EstimationGraph graph(*s.db, &source, ErrorModel());
    graph.AddTargets(targets);
    const double all = graph.AllSampledCost(f);
    const auto t0 = std::chrono::steady_clock::now();
    const double greedy = graph.Greedy(f, 0.5, 0.9);
    const auto t1 = std::chrono::steady_clock::now();
    const double optimal = graph.Optimal(f, 0.5, 0.9);
    const auto t2 = std::chrono::steady_clock::now();
    std::printf("%9.1f%% %10.0f %10.0f %10.0f %12.2f %12.2f\n", f * 100, all,
                greedy, optimal, Millis(t0, t1), Millis(t1, t2));
    const std::string key = "[f=" + FracLabel(f) + "]";
    ctx.report.AddValue("all_pages" + key, all);
    ctx.report.AddValue("greedy_pages" + key, greedy);
    ctx.report.AddValue("optimal_pages" + key, optimal);
    ctx.report.AddTimeMs("greedy_ms" + key, Millis(t0, t1));
    ctx.report.AddTimeMs("optimal_ms" + key, Millis(t1, t2));
  }
  std::printf("\nPaper reference (f=1..10%%): All 222..2221, Greedy 114..589, "
              "Optimal 114..444; Greedy <= +30%% of Optimal\n");
}

}  // namespace
}  // namespace bench
}  // namespace capd

int main(int argc, char** argv) {
  return capd::bench::BenchMain(argc, argv, "table4_graph_quality",
                                /*default_rows=*/20000,
                                /*default_seed=*/20110829, capd::bench::Run);
}
