// Figure 17: TPC-H with all features, INSERT intensive — DTAc vs DTA.
// Paper shape: at larger budgets DTAc's designs converge to DTA's because
// the update overhead of compressed indexes makes DTAc decline to compress.
#include "bench/bench_common.h"

namespace capd {
namespace bench {
namespace {

void Run(BenchContext& ctx) {
  Stack s = MakeTpchStack(ctx.flags.rows, 0.0, ctx.flags.seed);
  const Workload w = s.workload.WithInsertWeight(3.0);
  AdvisorOptions dtac = AdvisorOptions::DTAcBoth();
  dtac.enable_partial = true;
  dtac.enable_mv = true;
  AdvisorOptions dta = AdvisorOptions::DTA();
  dta.enable_partial = true;
  dta.enable_mv = true;
  PrintHeader("Figure 17: TPC-H INSERT intensive, all features, DTAc vs DTA");
  RunImprovementTable(&ctx, &s, w, {0.0, 0.05, 0.12, 0.25, 0.50, 1.00},
                      {{"DTAc", dtac}, {"DTA", dta}});
  std::printf("\nPaper shape: DTAc >= DTA; designs similar at large budgets "
              "(DTAc chooses not to compress under heavy updates).\n");
}

}  // namespace
}  // namespace bench
}  // namespace capd

int main(int argc, char** argv) {
  return capd::bench::BenchMain(argc, argv, "fig17_tpch_full_insert",
                                /*default_rows=*/6000,
                                /*default_seed=*/20110829, capd::bench::Run);
}
