// Ablation: which compression methods the advisor is allowed to use.
// ROW-only vs PAGE-only vs both (the tool default) vs all four including
// global dictionary and RLE. Exercises the paper's remark that the
// framework is general across compression methods, plus its future-work
// pointer at RLE's sort-order sensitivity (RLE only pays off when the
// enumerated index happens to sort its columns into runs).
#include "bench/bench_common.h"

namespace capd {
namespace bench {
namespace {

AdvisorOptions WithVariants(std::vector<CompressionKind> kinds) {
  AdvisorOptions o = AdvisorOptions::DTAcBoth();
  o.compression_variants = std::move(kinds);
  return o;
}

void Run(BenchContext& ctx) {
  Stack s = MakeTpchStack(ctx.flags.rows, 0.0, ctx.flags.seed);
  const Workload w = s.workload.WithInsertWeight(0.2);
  PrintHeader("Ablation: compression methods available to the advisor");
  RunImprovementTable(
      &ctx, &s, w, {0.03, 0.08, 0.20, 0.50},
      {{"ROW only", WithVariants({CompressionKind::kRow})},
       {"PAGE only", WithVariants({CompressionKind::kPage})},
       {"ROW+PAGE",
        WithVariants({CompressionKind::kRow, CompressionKind::kPage})},
       {"all four",
        WithVariants({CompressionKind::kRow, CompressionKind::kPage,
                      CompressionKind::kGlobalDict, CompressionKind::kRle})}});
  std::printf("\nExpected: ROW+PAGE ~= all four (GD/RLE rarely dominate on "
              "row-store indexes); each single method loses somewhere.\n");
}

}  // namespace
}  // namespace bench
}  // namespace capd

int main(int argc, char** argv) {
  return capd::bench::BenchMain(argc, argv, "ablation_codecs",
                                /*default_rows=*/6000,
                                /*default_seed=*/20110829, capd::bench::Run);
}
