// Figure 9: bias and standard deviation of SampleCF errors vs sampling
// fraction f, for NULL suppression (NS = ROW) and local dictionary
// (LD = PAGE). Paper shape: both shrink quickly with f; NS bias stays near
// zero at every f; LD errors exceed NS errors.
#include "bench/bench_common.h"

namespace capd {
namespace bench {
namespace {

void Run(BenchContext& ctx) {
  Stack s = MakeTpchStack(ctx.flags.rows, 0.0, ctx.flags.seed);
  const std::vector<std::string> cols = {"l_shipdate", "l_shipmode",
                                         "l_quantity", "l_returnflag",
                                         "l_partkey", "l_discount"};
  TruthCache truths(*s.db);
  PrintHeader("Figure 9: SampleCF error bias/stddev vs sampling fraction f");
  std::printf("%8s %10s %10s %10s %10s\n", "f", "NS-Bias", "NS-Stddev",
              "LD-Bias", "LD-Stddev");
  for (double f : {0.005, 0.01, 0.025, 0.05, 0.10}) {
    const auto ns = SampleCfErrors(
        *s.db, IndexZoo("lineitem", cols, CompressionKind::kRow, 24), f,
        /*trials=*/3, /*seed_base=*/101, &truths);
    const auto ld = SampleCfErrors(
        *s.db, IndexZoo("lineitem", cols, CompressionKind::kPage, 24), f,
        /*trials=*/3, /*seed_base=*/101, &truths);
    std::printf("%7.1f%% %9.2f%% %9.2f%% %9.2f%% %9.2f%%\n", f * 100,
                Mean(ns) * 100, StdDev(ns) * 100, Mean(ld) * 100,
                StdDev(ld) * 100);
    const std::string key = "[f=" + FracLabel(f) + "]";
    ctx.report.AddValue("ns_bias" + key, Mean(ns));
    ctx.report.AddValue("ns_stddev" + key, StdDev(ns));
    ctx.report.AddValue("ld_bias" + key, Mean(ld));
    ctx.report.AddValue("ld_stddev" + key, StdDev(ld));
  }
  std::printf("\nPaper reference (TPC-H Z=0 fits): NS-Stddev=-0.0062 ln(f), "
              "LD-Bias=-0.015 ln(f), LD-Stddev=-0.018 ln(f)\n");
}

}  // namespace
}  // namespace bench
}  // namespace capd

int main(int argc, char** argv) {
  return capd::bench::BenchMain(argc, argv, "fig09_samplecf_error",
                                /*default_rows=*/6000,
                                /*default_seed=*/20110829, capd::bench::Run);
}
