// Figure 15: Sales database, INSERT intensive — DTAc vs DTA. Paper shape:
// lower improvements than Figure 14; DTAc avoids compressing too many
// indexes and its designs stop changing beyond a modest budget.
#include "bench/bench_common.h"

namespace capd {
namespace bench {
namespace {

void Run(BenchContext& ctx) {
  Stack s = MakeSalesStack(ctx.flags.rows, ctx.flags.seed);
  const Workload w = s.workload.WithInsertWeight(3.0);
  PrintHeader("Figure 15: Sales INSERT intensive, DTAc vs DTA");
  RunImprovementTable(&ctx, &s, w, {0.0, 0.05, 0.12, 0.25, 0.50, 1.00},
                      {{"DTAc", AdvisorOptions::DTAcBoth()},
                       {"DTA", AdvisorOptions::DTA()}});
  std::printf("\nPaper shape: improvements flatten with budget (designs for "
              "the larger budgets coincide); DTAc >= DTA.\n");
}

}  // namespace
}  // namespace bench
}  // namespace capd

int main(int argc, char** argv) {
  return capd::bench::BenchMain(argc, argv, "fig15_sales_insert",
                                /*default_rows=*/8000,
                                /*default_seed=*/424242, capd::bench::Run);
}
