// Scale sweep: tunes the generated "scale" workload at fact-table sizes
// 10^4 .. --rows (decade steps) and reports the advisor's per-phase
// breakdown at each point. The claim under test is that the estimation
// path's cost is sublinear in table size: with a constant absolute sample
// target the sampled row count, estimation pages, and peak RSS stay ~flat
// while the table grows 1000x. Data never materializes — the events fact
// table is a blocked/generated Table, so the only O(n) work is the
// streaming scan that extracts the sample.
#include <fstream>
#include <sstream>

#include "bench/bench_common.h"
#include "common/alloc_tracker.h"
#include "common/thread_pool.h"
#include "workloads/scale.h"

namespace capd {
namespace bench {
namespace {

// Absolute sample-row target per scale: fractions are chosen as
// target/rows, so every scale point draws the same number of sample rows
// (subject to the sampler's min-rows floor).
constexpr uint64_t kTargetSampleRows = 10000;

// Peak resident set (VmHWM) in MiB, from /proc/self/status. Linux-only;
// returns 0 where the file is absent. Reported as a time-kind metric:
// informative in the report, never part of the exact-counter CI gate.
double PeakRssMb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      std::istringstream is(line.substr(6));
      double kb = 0;
      is >> kb;
      return kb / 1024.0;
    }
  }
  return 0.0;
}

std::string RowsKey(uint64_t rows) {
  return "[rows=" + std::to_string(rows) + "]";
}

void RunScalePoint(BenchContext& ctx, uint64_t rows) {
  const std::string key = RowsKey(rows);

  workloads::WorkloadSpec spec;
  spec.name = "scale";
  spec.rows = rows;
  spec.seed = ctx.flags.seed;
  const auto b0 = std::chrono::steady_clock::now();
  Stack s = MakeStack(std::move(spec));
  const double build_ms = Millis(b0, std::chrono::steady_clock::now());

  AdvisorOptions options = AdvisorOptions::DTAcBoth();
  options.num_threads = ctx.flags.threads;
  options.size_options.num_threads = ctx.flags.threads;
  // Constant absolute sample size across the sweep. Without this the
  // default fraction list would make the sample (and the estimation work)
  // grow linearly with the table, burying the sublinearity claim.
  const double f = std::min(
      1.0, static_cast<double>(kTargetSampleRows) / static_cast<double>(rows));
  options.size_options.fractions = {f};

  const uint64_t alloc0 = AllocCount();
  const auto t0 = std::chrono::steady_clock::now();
  const AdvisorResult r = s.Tune(options, /*budget_frac=*/0.15, s.workload);
  const double tune_ms = Millis(t0, std::chrono::steady_clock::now());
  const uint64_t tune_allocs = AllocCount() - alloc0;

  const uint64_t rows_scanned = s.engine->samples()->rows_scanned();
  const double allocs_per_row =
      rows_scanned > 0
          ? static_cast<double>(tune_allocs) / static_cast<double>(rows_scanned)
          : 0.0;
  std::printf("%10llu %9.1f%% %8zu %7zu/%-7zu %9llu %10.0f %8.1f %9.1f %7.1f\n",
              static_cast<unsigned long long>(rows), r.improvement_percent(),
              r.num_candidates, r.num_sampled, r.num_deduced,
              static_cast<unsigned long long>(rows_scanned),
              r.estimation_cost_pages, tune_ms, PeakRssMb(), allocs_per_row);

  // Exact, deterministic counters: these gate in CI.
  ctx.report.AddCounter("num_candidates" + key, r.num_candidates);
  ctx.report.AddCounter("num_sampled" + key, r.num_sampled);
  ctx.report.AddCounter("num_deduced" + key, r.num_deduced);
  ctx.report.AddCounter("what_if_calls" + key, r.what_if_calls);
  ctx.report.AddCounter("stmt_costs_computed" + key, r.stmt_costs_computed);
  ctx.report.AddCounter("stmt_costs_cached" + key, r.stmt_costs_cached);
  ctx.report.AddCounter("sample_rows_scanned" + key, rows_scanned);
  ctx.report.AddCounter("num_samples" + key,
                        s.engine->samples()->num_samples());
  ctx.report.AddValue("improvement_pct" + key, r.improvement_percent());
  ctx.report.AddValue("chosen_f" + key, r.chosen_f);
  ctx.report.AddValue("estimation_cost_pages" + key, r.estimation_cost_pages);
  // Wall times and RSS: report-only (machine-dependent).
  ctx.report.AddTimeMs("build_ms" + key, build_ms);
  ctx.report.AddTimeMs("estimation_ms" + key, r.estimation_ms);
  ctx.report.AddTimeMs("selection_ms" + key, r.selection_ms);
  ctx.report.AddTimeMs("enumeration_ms" + key, r.enumeration_ms);
  ctx.report.AddTimeMs("tune_ms" + key, tune_ms);
  ctx.report.AddTimeMs("peak_rss_mb" + key, PeakRssMb());
  // Heap allocations per sampled row over the whole Tune call (alloc_tracker
  // counts operator new). Allocator/stdlib shaped, so report-only like RSS;
  // the deterministic per-codec gate lives in bench_micro_codecs.
  ctx.report.AddTimeMs("allocs_per_row" + key, allocs_per_row);
}

void Run(BenchContext& ctx) {
  PrintHeader("Scale sweep: estimation cost vs table size (generated data)");
  std::printf("target sample rows per scale: %llu\n",
              static_cast<unsigned long long>(kTargetSampleRows));
  std::printf("%10s %10s %8s %15s %9s %10s %8s %9s %7s\n", "rows", "improve",
              "cands", "sampled/deduced", "scanned", "est_pages", "tune_ms",
              "peakMB", "al/row");

  std::vector<uint64_t> scales;
  for (uint64_t n = 10000; n < ctx.flags.rows; n *= 10) scales.push_back(n);
  scales.push_back(ctx.flags.rows);
  for (const uint64_t n : scales) RunScalePoint(ctx, n);

  // Parallel materialization exercise at the smallest scale: blocked ->
  // row-vector conversion fanned across a pool, bit-identical at any
  // thread count (asserted in tests/scale_test.cc; timed here).
  {
    workloads::WorkloadSpec spec;
    spec.name = "scale";
    spec.rows = scales.front();
    spec.seed = ctx.flags.seed;
    Stack s = MakeStack(std::move(spec));
    ThreadPool pool(ctx.flags.threads);
    const auto t0 = std::chrono::steady_clock::now();
    const std::unique_ptr<Table> materialized =
        s.db->table("events").Materialize(&pool);
    const double ms = Millis(t0, std::chrono::steady_clock::now());
    ctx.report.AddCounter("materialized_rows" + RowsKey(scales.front()),
                          materialized->num_rows());
    ctx.report.AddTimeMs("materialize_ms" + RowsKey(scales.front()), ms);
    std::printf("\nmaterialize %llu rows (pool of %d): %.1f ms\n",
                static_cast<unsigned long long>(materialized->num_rows()),
                pool.size(), ms);
  }

  std::printf("\nShape: sampled/deduced counts, scanned sample rows and "
              "est_pages stay ~flat while rows grow 1000x — estimation cost "
              "is sublinear in table size (the scan itself is the only O(n) "
              "term, and it streams in O(block) memory). al/row = heap "
              "allocations per scanned row across Tune; it falls toward the "
              "streaming scan's constant per-row cost as the fixed tuning "
              "overhead amortizes.\n");
}

}  // namespace
}  // namespace bench
}  // namespace capd

int main(int argc, char** argv) {
  return capd::bench::BenchMain(argc, argv, "scale_sweep",
                                /*default_rows=*/10000000,
                                /*default_seed=*/20110829, capd::bench::Run);
}
