// Scaling benchmark for the parallel + incremental advisor search loop:
// the full tuning run (DTAc with skyline + backtracking) over the TPC-H
// workload, measuring (a) how many full-workload statement costings the
// per-statement cost cache saves per greedy step, and (b) enumeration
// wall-time at 1/2/4/8 worker threads — verifying the recommendation is
// bit-identical in every configuration. A shared estimation cache prices
// the candidate pool once up front so the timed runs measure the search
// loop, not size estimation.
#include <cstring>

#include "bench/bench_common.h"

namespace capd {
namespace bench {
namespace {

bool SameRecommendation(const AdvisorResult& a, const AdvisorResult& b) {
  if (std::memcmp(&a.final_cost, &b.final_cost, sizeof(double)) != 0) {
    return false;
  }
  if (a.config.size() != b.config.size()) return false;
  for (size_t i = 0; i < a.config.indexes().size(); ++i) {
    if (a.config.indexes()[i].def.Signature() !=
        b.config.indexes()[i].def.Signature()) {
      return false;
    }
  }
  return true;
}

void Run(BenchContext& ctx) {
  Stack s = MakeTpchStack(ctx.flags.rows, 0.0, ctx.flags.seed);
  const Workload w = s.workload.WithInsertWeight(0.2);
  const double budget = 0.20;

  AdvisorOptions base = AdvisorOptions::DTAcBoth();
  // One shared estimation cache: the pool is priced on the first run and
  // every later run hits it, isolating enumeration time.
  base.size_options.cache = std::make_shared<EstimationCache>();
  s.Tune(base, budget, w);  // warm samples + estimation cache

  PrintHeader("Statement-cost cache: workload costings saved (threads=1)");
  std::printf("%-10s %12s %12s %12s %10s %10s\n", "cache", "what-if",
              "computed", "cached", "saved", "time");
  AdvisorResult uncached, cached;
  for (bool use_cache : {false, true}) {
    AdvisorOptions options = base;
    options.cost_cache = use_cache;
    const auto t0 = std::chrono::steady_clock::now();
    const AdvisorResult r = s.Tune(options, budget, w);
    const double ms = Millis(t0, std::chrono::steady_clock::now());
    const size_t costings = r.stmt_costs_computed + r.stmt_costs_cached;
    const double saved =
        static_cast<double>(costings) /
        static_cast<double>(std::max<size_t>(r.stmt_costs_computed, 1));
    std::printf("%-10s %12zu %12zu %12zu %9.1fx %7.1f ms\n",
                use_cache ? "on" : "off", r.what_if_calls,
                r.stmt_costs_computed, r.stmt_costs_cached, saved, ms);
    (use_cache ? cached : uncached) = r;
    const std::string key = std::string("[cache=") +
                            (use_cache ? "on" : "off") + "]";
    ctx.report.AddCounter("what_if_calls" + key, r.what_if_calls);
    ctx.report.AddCounter("stmt_costs_computed" + key, r.stmt_costs_computed);
    ctx.report.AddCounter("stmt_costs_cached" + key, r.stmt_costs_cached);
    ctx.report.AddValue("costings_saved_ratio" + key, saved);
    ctx.report.AddTimeMs("tune_ms" + key, ms);
  }
  const bool cache_identical = SameRecommendation(uncached, cached);
  std::printf("identical recommendation: %s\n", cache_identical ? "yes" : "NO");
  ctx.report.AddCounter("identical[cache=on]", cache_identical ? 1 : 0);

  PrintHeader("Enumeration thread scaling (cost cache on)");
  std::printf("%-8s %12s %10s %10s\n", "threads", "time", "speedup",
              "identical");
  double serial_ms = 0.0;
  for (int threads : {1, 2, 4, 8}) {
    AdvisorOptions options = base;
    options.cost_cache = true;
    options.num_threads = threads;
    const auto t0 = std::chrono::steady_clock::now();
    const AdvisorResult r = s.Tune(options, budget, w);
    const double ms = Millis(t0, std::chrono::steady_clock::now());
    if (threads == 1) serial_ms = ms;
    const bool identical = SameRecommendation(uncached, r);
    std::printf("%-8d %9.1f ms %9.2fx %10s\n", threads, ms,
                serial_ms / std::max(ms, 1e-9), identical ? "yes" : "NO");
    const std::string key = "[threads=" + std::to_string(threads) + "]";
    ctx.report.AddTimeMs("tune_ms" + key, ms);
    ctx.report.AddCounter("identical" + key, identical ? 1 : 0);
  }
}

}  // namespace
}  // namespace bench
}  // namespace capd

int main(int argc, char** argv) {
  return capd::bench::BenchMain(argc, argv, "parallel_enumerate",
                                /*default_rows=*/24000,
                                /*default_seed=*/20110829, capd::bench::Run);
}
