// Scaling benchmark for the parallel + incremental advisor search loop:
// the full tuning run (DTAc with skyline + backtracking) over the TPC-H
// workload, measuring (a) how many full-workload statement costings the
// per-statement cost cache saves per greedy step, and (b) enumeration
// wall-time at 1/2/4/8 worker threads — verifying the recommendation is
// bit-identical in every configuration. A shared estimation cache prices
// the candidate pool once up front so the timed runs measure the search
// loop, not size estimation.
// Usage: bench_parallel_enumerate [lineitem_rows] (default 24000).
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "bench/bench_common.h"

namespace capd {
namespace bench {
namespace {

double Millis(std::chrono::steady_clock::time_point a,
              std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

bool SameRecommendation(const AdvisorResult& a, const AdvisorResult& b) {
  if (std::memcmp(&a.final_cost, &b.final_cost, sizeof(double)) != 0) {
    return false;
  }
  if (a.config.size() != b.config.size()) return false;
  for (size_t i = 0; i < a.config.indexes().size(); ++i) {
    if (a.config.indexes()[i].def.Signature() !=
        b.config.indexes()[i].def.Signature()) {
      return false;
    }
  }
  return true;
}

void Run(uint64_t lineitem_rows) {
  Stack s = MakeTpchStack(lineitem_rows);
  const Workload w = s.workload.WithInsertWeight(0.2);
  const double budget = 0.20;

  AdvisorOptions base = AdvisorOptions::DTAcBoth();
  // One shared estimation cache: the pool is priced on the first run and
  // every later run hits it, isolating enumeration time.
  base.size_options.cache = std::make_shared<EstimationCache>();
  s.Tune(base, budget, w);  // warm samples + estimation cache

  PrintHeader("Statement-cost cache: workload costings saved (threads=1)");
  std::printf("%-10s %12s %12s %12s %10s %10s\n", "cache", "what-if",
              "computed", "cached", "saved", "time");
  AdvisorResult uncached, cached;
  for (bool use_cache : {false, true}) {
    AdvisorOptions options = base;
    options.cost_cache = use_cache;
    const auto t0 = std::chrono::steady_clock::now();
    const AdvisorResult r = s.Tune(options, budget, w);
    const double ms = Millis(t0, std::chrono::steady_clock::now());
    const size_t costings = r.stmt_costs_computed + r.stmt_costs_cached;
    std::printf("%-10s %12zu %12zu %12zu %9.1fx %7.1f ms\n",
                use_cache ? "on" : "off", r.what_if_calls,
                r.stmt_costs_computed, r.stmt_costs_cached,
                static_cast<double>(costings) /
                    static_cast<double>(std::max<size_t>(
                        r.stmt_costs_computed, 1)),
                ms);
    (use_cache ? cached : uncached) = r;
  }
  std::printf("identical recommendation: %s\n",
              SameRecommendation(uncached, cached) ? "yes" : "NO");

  PrintHeader("Enumeration thread scaling (cost cache on)");
  std::printf("%-8s %12s %10s %10s\n", "threads", "time", "speedup",
              "identical");
  double serial_ms = 0.0;
  for (int threads : {1, 2, 4, 8}) {
    AdvisorOptions options = base;
    options.cost_cache = true;
    options.num_threads = threads;
    const auto t0 = std::chrono::steady_clock::now();
    const AdvisorResult r = s.Tune(options, budget, w);
    const double ms = Millis(t0, std::chrono::steady_clock::now());
    if (threads == 1) serial_ms = ms;
    std::printf("%-8d %9.1f ms %9.2fx %10s\n", threads, ms,
                serial_ms / std::max(ms, 1e-9),
                SameRecommendation(uncached, r) ? "yes" : "NO");
  }
}

}  // namespace
}  // namespace bench
}  // namespace capd

int main(int argc, char** argv) {
  uint64_t rows = 24000;
  if (argc > 1) {
    rows = std::strtoull(argv[1], nullptr, 10);
    if (rows == 0) {
      std::fprintf(stderr, "invalid row count '%s'\n", argv[1]);
      return 1;
    }
  }
  capd::bench::Run(rows);
  return 0;
}
