// Figure 13: as Figure 12 but INSERT intensive. Paper shape: improvements
// are lower overall (index maintenance bites), and the DTAc variants avoid
// over-compressing; DTAc(Both) still leads at tight budgets.
#include "bench/bench_common.h"

namespace capd {
namespace bench {
namespace {

void Run(BenchContext& ctx) {
  Stack s = MakeTpchStack(ctx.flags.rows, 0.0, ctx.flags.seed);
  const Workload w = s.workload.WithInsertWeight(3.0);  // INSERT intensive
  PrintHeader(
      "Figure 13: TPC-H INSERT intensive, candidate/enumeration on-off");
  RunImprovementTable(&ctx, &s, w, {0.03, 0.08, 0.20, 0.50, 1.00},
                      {{"DTAc(Both)", AdvisorOptions::DTAcBoth()},
                       {"Skyline", AdvisorOptions::DTAcSkyline()},
                       {"Backtrack", AdvisorOptions::DTAcBacktrack()},
                       {"DTAc(None)", AdvisorOptions::DTAcNone()},
                       {"DTA", AdvisorOptions::DTA()}});
  std::printf("\nPaper shape: smaller improvements than Figure 12; designs "
              "plateau with budget as maintenance costs dominate.\n");
}

}  // namespace
}  // namespace bench
}  // namespace capd

int main(int argc, char** argv) {
  return capd::bench::BenchMain(argc, argv, "fig13_tpch_insert_onoff",
                                /*default_rows=*/6000,
                                /*default_seed=*/20110829, capd::bench::Run);
}
