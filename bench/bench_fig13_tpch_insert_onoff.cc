// Figure 13: as Figure 12 but INSERT intensive. Paper shape: improvements
// are lower overall (index maintenance bites), and the DTAc variants avoid
// over-compressing; DTAc(Both) still leads at tight budgets.
#include "bench/bench_common.h"

namespace capd {
namespace bench {
namespace {

void Run() {
  Stack s = MakeTpchStack(6000);
  const Workload w = s.workload.WithInsertWeight(3.0);  // INSERT intensive
  PrintHeader(
      "Figure 13: TPC-H INSERT intensive, candidate/enumeration on-off");
  RunImprovementTable(&s, w,
                      {0.03, 0.08, 0.20, 0.50, 1.00},
                      {{"DTAc(Both)", AdvisorOptions::DTAcBoth()},
                       {"Skyline", AdvisorOptions::DTAcSkyline()},
                       {"Backtrack", AdvisorOptions::DTAcBacktrack()},
                       {"DTAc(None)", AdvisorOptions::DTAcNone()},
                       {"DTA", AdvisorOptions::DTA()}});
  std::printf("\nPaper shape: smaller improvements than Figure 12; designs "
              "plateau with budget as maintenance costs dominate.\n");
}

}  // namespace
}  // namespace bench
}  // namespace capd

int main() {
  capd::bench::Run();
  return 0;
}
