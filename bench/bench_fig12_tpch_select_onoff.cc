// Figure 12: TPC-H, SELECT-intensive, simple indexes only — improvement vs
// budget for DTAc(Both) / Skyline / Backtrack / DTAc(None) / DTA. Paper
// shape: only the full implementation (Skyline + Backtracking) wins
// decisively at tight budgets; the gap narrows as the budget grows.
#include "bench/bench_common.h"

namespace capd {
namespace bench {
namespace {

void Run(BenchContext& ctx) {
  Stack s = MakeTpchStack(ctx.flags.rows, 0.0, ctx.flags.seed);
  const Workload w = s.workload.WithInsertWeight(0.2);  // SELECT intensive
  PrintHeader(
      "Figure 12: TPC-H SELECT intensive, candidate/enumeration on-off");
  RunImprovementTable(&ctx, &s, w, {0.03, 0.08, 0.20, 0.50, 1.00},
                      {{"DTAc(Both)", AdvisorOptions::DTAcBoth()},
                       {"Skyline", AdvisorOptions::DTAcSkyline()},
                       {"Backtrack", AdvisorOptions::DTAcBacktrack()},
                       {"DTAc(None)", AdvisorOptions::DTAcNone()},
                       {"DTA", AdvisorOptions::DTA()}});
  std::printf("\nPaper shape: DTAc(Both) >= others everywhere; largest gap "
              "at the tightest budgets.\n");
}

}  // namespace
}  // namespace bench
}  // namespace capd

int main(int argc, char** argv) {
  return capd::bench::BenchMain(argc, argv, "fig12_tpch_select_onoff",
                                /*default_rows=*/6000,
                                /*default_seed=*/20110829, capd::bench::Run);
}
