// Figure 16: TPC-H with ALL features (partial indexes + MV indexes),
// SELECT intensive — DTAc vs DTA across budgets. Paper shape: DTAc up to
// ~2x the improvement at tight budgets; difference shrinks at large
// budgets where everything fits uncompressed.
#include "bench/bench_common.h"

namespace capd {
namespace bench {
namespace {

void Run(BenchContext& ctx) {
  Stack s = MakeTpchStack(ctx.flags.rows, 0.0, ctx.flags.seed);
  const Workload w = s.workload.WithInsertWeight(0.2);
  AdvisorOptions dtac = AdvisorOptions::DTAcBoth();
  dtac.enable_partial = true;
  dtac.enable_mv = true;
  AdvisorOptions dta = AdvisorOptions::DTA();
  dta.enable_partial = true;
  dta.enable_mv = true;
  PrintHeader("Figure 16: TPC-H SELECT intensive, all features, DTAc vs DTA");
  RunImprovementTable(&ctx, &s, w, {0.0, 0.05, 0.12, 0.25, 0.50, 1.00},
                      {{"DTAc", dtac}, {"DTA", dta}});
  std::printf("\nPaper shape: DTAc ~2x DTA's improvement at tight budgets; "
              "gap narrows as budget grows.\n");
}

}  // namespace
}  // namespace bench
}  // namespace capd

int main(int argc, char** argv) {
  return capd::bench::BenchMain(argc, argv, "fig16_tpch_full_select",
                                /*default_rows=*/6000,
                                /*default_seed=*/20110829, capd::bench::Run);
}
