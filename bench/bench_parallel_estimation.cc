// Scaling benchmark for the parallel batch-estimation engine: the Figure 11
// estimation workload (full candidate set of the all-features tool over
// TPC-H) executed with 1/2/4/8 worker threads, verifying byte-identical
// results at every thread count, plus the cross-round estimation cache
// (second advisor round priced from cache instead of re-sampled).
#include <cstring>

#include "advisor/candidates.h"
#include "bench/bench_common.h"

namespace capd {
namespace bench {
namespace {

bool SameEstimates(const SizeEstimator::BatchResult& a,
                   const SizeEstimator::BatchResult& b) {
  if (a.estimates.size() != b.estimates.size()) return false;
  auto ita = a.estimates.begin();
  auto itb = b.estimates.begin();
  for (; ita != a.estimates.end(); ++ita, ++itb) {
    if (ita->first != itb->first) return false;
    if (std::memcmp(&ita->second, &itb->second, sizeof(SampleCfResult)) != 0) {
      return false;
    }
  }
  return true;
}

void Run(BenchContext& ctx) {
  PrintHeader("Parallel size estimation: thread scaling, Fig.11 workload");
  Stack s = MakeTpchStack(ctx.flags.rows, 0.0, ctx.flags.seed);
  AdvisorOptions options = AdvisorOptions::DTAcBoth();
  options.enable_partial = true;
  options.enable_mv = true;
  options.size_options.e = 0.25;
  options.size_options.q = 0.95;

  CandidateGenerator generator(*s.db, s.optimizer(), s.mvs(), options);
  std::vector<IndexDef> targets;
  for (const IndexDef& def : generator.GenerateForWorkload(s.workload)) {
    if (def.compression != CompressionKind::kNone) targets.push_back(def);
  }
  std::printf("targets: %zu compressed candidates, lineitem=%llu rows\n",
              targets.size(),
              static_cast<unsigned long long>(ctx.flags.rows));
  ctx.report.AddCounter("targets", targets.size());

  // Warm the shared sample caches once so every timed run measures the
  // estimation work itself (index builds on samples), not sample drawing.
  {
    SizeEstimationOptions warm = options.size_options;
    SizeEstimator estimator(*s.db, s.mvs(), ErrorModel(), warm);
    estimator.EstimateAll(targets);
  }

  std::printf("%-8s %12s %10s %10s\n", "threads", "time", "speedup",
              "identical");
  double serial_ms = 0.0;
  SizeEstimator::BatchResult baseline;
  for (int threads : {1, 2, 4, 8}) {
    SizeEstimationOptions size_options = options.size_options;
    size_options.num_threads = threads;
    SizeEstimator estimator(*s.db, s.mvs(), ErrorModel(), size_options);
    const auto t0 = std::chrono::steady_clock::now();
    const SizeEstimator::BatchResult batch = estimator.EstimateAll(targets);
    const double ms = Millis(t0, std::chrono::steady_clock::now());
    const bool identical = threads == 1 || SameEstimates(baseline, batch);
    if (threads == 1) {
      serial_ms = ms;
      baseline = batch;
    }
    std::printf("%-8d %9.1f ms %9.2fx %10s\n", threads, ms,
                serial_ms / std::max(ms, 1e-9),
                threads == 1 ? "-" : identical ? "yes" : "NO");
    const std::string key = "[threads=" + std::to_string(threads) + "]";
    ctx.report.AddTimeMs("estimate_all_ms" + key, ms);
    ctx.report.AddCounter("identical" + key, identical ? 1 : 0);
  }

  PrintHeader("Cross-round estimation cache: repeat pricing of one pool");
  SizeEstimationOptions cached_options = options.size_options;
  cached_options.cache = std::make_shared<EstimationCache>();
  SizeEstimator estimator(*s.db, s.mvs(), ErrorModel(), cached_options);
  std::printf("%-8s %12s %12s %12s\n", "round", "time", "cost(pg)", "hits");
  for (int round = 1; round <= 2; ++round) {
    const auto t0 = std::chrono::steady_clock::now();
    const SizeEstimator::BatchResult batch = estimator.EstimateAll(targets);
    const double ms = Millis(t0, std::chrono::steady_clock::now());
    std::printf("%-8d %9.1f ms %12.0f %12zu\n", round, ms,
                batch.total_cost_pages, batch.cache_hits);
    const std::string key = "[round=" + std::to_string(round) + "]";
    ctx.report.AddTimeMs("round_ms" + key, ms);
    ctx.report.AddValue("cost_pages" + key, batch.total_cost_pages);
    ctx.report.AddCounter("cache_hits" + key, batch.cache_hits);
  }
}

}  // namespace
}  // namespace bench
}  // namespace capd

int main(int argc, char** argv) {
  return capd::bench::BenchMain(argc, argv, "parallel_estimation",
                                /*default_rows=*/24000,
                                /*default_seed=*/20110829, capd::bench::Run);
}
