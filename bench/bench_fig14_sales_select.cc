// Figure 14: Sales database, SELECT intensive, simple indexes — DTAc vs
// DTA across budgets. Paper shape: DTAc consistently above DTA (factor
// ~1.5-2 at tight budgets) because compression makes indexes faster and
// fits more of them.
#include "bench/bench_common.h"

namespace capd {
namespace bench {
namespace {

void Run(BenchContext& ctx) {
  Stack s = MakeSalesStack(ctx.flags.rows, ctx.flags.seed);
  const Workload w = s.workload.WithInsertWeight(0.2);
  PrintHeader("Figure 14: Sales SELECT intensive, DTAc vs DTA");
  RunImprovementTable(&ctx, &s, w, {0.0, 0.05, 0.12, 0.25, 0.50, 1.00},
                      {{"DTAc", AdvisorOptions::DTAcBoth()},
                       {"DTA", AdvisorOptions::DTA()}});
  std::printf("\nPaper shape: DTAc above DTA at every budget; both rise "
              "with budget.\n");
}

}  // namespace
}  // namespace bench
}  // namespace capd

int main(int argc, char** argv) {
  return capd::bench::BenchMain(argc, argv, "fig14_sales_select",
                                /*default_rows=*/8000,
                                /*default_seed=*/424242, capd::bench::Run);
}
