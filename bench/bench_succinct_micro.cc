// Micro-benchmarks of the succinct index family (src/succinct): BitVector
// rank/select latency over the two-level directory, WAH compression ratio
// across bit densities and sortedness, and the BitmapCodec size-only
// measurement path. Wall times are report-only; the structural counters —
// rank/select checksums, directory overhead, WAH word counts, and the
// page_allocs of a MeasurePage probe (via src/common/alloc_tracker) — are
// deterministic at a pinned seed and gate exactly in the perf-trajectory
// CI job.
#include "bench/bench_common.h"
#include "common/alloc_tracker.h"
#include "common/logging.h"
#include "common/random.h"
#include "compress/flat_page.h"
#include "succinct/bit_vector.h"
#include "succinct/bitmap_codec.h"
#include "succinct/wah_bitmap.h"

namespace capd {
namespace bench {
namespace {

// Repeats op() until ~50ms accumulated; returns per-call nanoseconds.
template <typename Fn>
double TimeNsPerCall(size_t calls_per_op, Fn&& op) {
  const auto w0 = std::chrono::steady_clock::now();
  op();
  const double once_ms =
      std::max(Millis(w0, std::chrono::steady_clock::now()), 1e-6);
  const size_t iters =
      std::max<size_t>(1, static_cast<size_t>(50.0 / once_ms));
  const auto t0 = std::chrono::steady_clock::now();
  for (size_t i = 0; i < iters; ++i) op();
  const double total_ms = Millis(t0, std::chrono::steady_clock::now());
  return total_ms * 1e6 /
         static_cast<double>(iters * std::max<size_t>(calls_per_op, 1));
}

void RankSelectBench(BenchContext& ctx) {
  const size_t bits = static_cast<size_t>(ctx.flags.rows);
  Random rng(ctx.flags.seed);
  BitVector bv;
  for (size_t i = 0; i < bits; ++i) bv.AppendBit(rng.NextDouble() < 0.1);
  bv.Finish();

  // Query batches: positions/ordinals fixed up front so the timed loop is
  // pure directory work.
  constexpr size_t kQueries = 4096;
  std::vector<size_t> rank_at(kQueries), select_k(kQueries);
  for (size_t i = 0; i < kQueries; ++i) {
    rank_at[i] = static_cast<size_t>(rng.Next(bits + 1));
    select_k[i] = static_cast<size_t>(rng.Next(bv.num_ones()));
  }

  uint64_t rank_sum = 0, select_sum = 0;
  const uint64_t a0 = AllocCount();
  for (size_t i : rank_at) rank_sum += bv.Rank1(i);
  for (size_t k : select_k) select_sum += bv.Select1(k);
  const uint64_t query_allocs = AllocCount() - a0;

  uint64_t sink = 0;
  const double rank_ns = TimeNsPerCall(kQueries, [&] {
    for (size_t i : rank_at) sink += bv.Rank1(i);
  });
  const double select_ns = TimeNsPerCall(kQueries, [&] {
    for (size_t k : select_k) sink += bv.Select1(k);
  });
  CAPD_CHECK_GT(sink, 0u);

  PrintHeader("BitVector rank/select over the two-level directory");
  std::printf("bits=%zu ones=%zu dir_bytes=%zu (%.2f%% overhead)\n", bits,
              bv.num_ones(), bv.DirectoryBytes(),
              100.0 * static_cast<double>(bv.DirectoryBytes()) /
                  (static_cast<double>(bits) / 8.0));
  std::printf("rank1: %.1f ns/op   select1: %.1f ns/op   allocs: %llu\n",
              rank_ns, select_ns,
              static_cast<unsigned long long>(query_allocs));
  ctx.report.AddTimeMs("rank1_ns_per_op", rank_ns);
  ctx.report.AddTimeMs("select1_ns_per_op", select_ns);
  ctx.report.AddCounter("rank_checksum", rank_sum);
  ctx.report.AddCounter("select_checksum", select_sum);
  ctx.report.AddCounter("num_ones", bv.num_ones());
  ctx.report.AddCounter("directory_bytes", bv.DirectoryBytes());
  ctx.report.AddCounter("query_allocs", query_allocs);
}

void WahRatioBench(BenchContext& ctx) {
  const size_t bits = static_cast<size_t>(ctx.flags.rows);
  PrintHeader("WAH compression ratio vs density and sortedness");
  std::printf("%-16s %12s %12s %9s\n", "bit layout", "words", "plain words",
              "ratio");
  struct Shape {
    const char* name;
    double density;
    bool clustered;
  };
  for (const Shape& shape :
       {Shape{"sorted_sparse", 0.02, true}, Shape{"sorted_half", 0.5, true},
        Shape{"random_sparse", 0.02, false},
        Shape{"random_half", 0.5, false}}) {
    Random rng(ctx.flags.seed + (shape.clustered ? 1 : 0) +
               static_cast<uint64_t>(shape.density * 100) * 7);
    WahBitmap bm;
    if (shape.clustered) {
      // One contiguous 1-region, as in a column sorted by itself.
      const uint64_t ones = static_cast<uint64_t>(
          static_cast<double>(bits) * shape.density);
      const uint64_t start = (bits - ones) / 2;
      bm.AppendRun(false, start);
      bm.AppendRun(true, ones);
      bm.AppendRun(false, bits - start - ones);
    } else {
      for (size_t i = 0; i < bits; ++i) {
        bm.AppendBit(rng.NextDouble() < shape.density);
      }
    }
    bm.Finish();
    const uint64_t plain_words = (bits + 31) / 32;
    const double ratio = static_cast<double>(bm.words().size()) /
                         static_cast<double>(plain_words);
    std::printf("%-16s %12zu %12llu %8.3f%%\n", shape.name,
                bm.words().size(),
                static_cast<unsigned long long>(plain_words), ratio * 100);
    const std::string key = std::string("[") + shape.name + "]";
    // Clustered layouts are seed-independent; random ones are pinned by
    // --seed. Both gate exactly.
    ctx.report.AddCounter("wah_words" + key, bm.words().size());
    ctx.report.AddValue("wah_ratio" + key, ratio);
  }
}

void CodecMeasureBench(BenchContext& ctx) {
  // A sorted low-distinct page: the BitmapCodec sweet spot. The size-only
  // measurement must stay allocation-light (CollectRuns scratch only).
  const Schema schema({{"key", ValueType::kString, 10},
                       {"payload", ValueType::kInt64, 8}});
  const size_t n = std::min<uint64_t>(ctx.flags.rows, 2048);
  Random rng(ctx.flags.seed);
  std::vector<Row> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "k%02llu",
                  static_cast<unsigned long long>((i * 8) / n));
    rows.push_back(
        {Value::String(buf), Value::Int64(rng.Uniform(0, 1 << 20))});
  }
  const FlatPage flat = FlatPage::FromRows(rows, schema, 0, rows.size());
  const BitmapCodec codec(ColumnWidths(schema));

  const std::string blob = codec.CompressPage(flat);
  CAPD_CHECK_EQ(codec.MeasurePage(flat), blob.size());

  uint64_t sink = 0;
  uint64_t a0 = AllocCount();
  sink += codec.MeasurePage(flat);
  const uint64_t measure_allocs = AllocCount() - a0;
  a0 = AllocCount();
  sink += codec.CompressPage(flat).size();
  const uint64_t compress_allocs = AllocCount() - a0;
  const double measure_ns = TimeNsPerCall(n, [&] {
    sink += codec.MeasurePage(flat);
  });
  CAPD_CHECK_GT(sink, 0u);

  PrintHeader("BitmapCodec size-only measurement path");
  std::printf("rows=%zu blob=%zu bytes  measure: %.1f ns/row, %llu allocs "
              "(compress: %llu allocs)\n",
              n, blob.size(), measure_ns,
              static_cast<unsigned long long>(measure_allocs),
              static_cast<unsigned long long>(compress_allocs));
  ctx.report.AddTimeMs("measure_ns_per_row", measure_ns);
  ctx.report.AddCounter("bitmap_blob_bytes", blob.size());
  ctx.report.AddCounter("page_allocs[path=measure]", measure_allocs);
  ctx.report.AddCounter("page_allocs[path=compress]", compress_allocs);
}

void Run(BenchContext& ctx) {
  RankSelectBench(ctx);
  WahRatioBench(ctx);
  CodecMeasureBench(ctx);
  std::printf("\nExpected: rank1 O(1) and select1 O(log) in the tens of ns; "
              "clustered WAH collapses to a handful of words regardless of "
              "bits; MeasurePage allocates far less than CompressPage.\n");
}

}  // namespace
}  // namespace bench
}  // namespace capd

int main(int argc, char** argv) {
  return capd::bench::BenchMain(argc, argv, "succinct_micro",
                                /*default_rows=*/65536,
                                /*default_seed=*/20110829, capd::bench::Run);
}
