// Scaling benchmark for the parallel candidate-selection phase (and the
// staged baseline's stage 2): full DTAc tuning runs over the TPC-H
// workload with a per-phase wall-time breakdown — size estimation /
// per-query candidate selection / enumeration — plus the
// stmt_costs_{computed,cached} counters showing the selection-phase
// costings warming (and hitting) the shared StatementCostCache. Every run
// is checked bit-identical to the serial baseline. (The counters are
// accounting, not part of that contract: on multicore, concurrent misses
// on one cache key may each run the optimizer, shifting computed/cached
// slightly between thread counts while the recommendation stays
// identical.)
#include <cstring>

#include "bench/bench_common.h"

namespace capd {
namespace bench {
namespace {

bool SameRecommendation(const AdvisorResult& a, const AdvisorResult& b) {
  if (std::memcmp(&a.final_cost, &b.final_cost, sizeof(double)) != 0) {
    return false;
  }
  if (a.config.size() != b.config.size()) return false;
  for (size_t i = 0; i < a.config.indexes().size(); ++i) {
    if (a.config.indexes()[i].def.Signature() !=
        b.config.indexes()[i].def.Signature()) {
      return false;
    }
  }
  return true;
}

void PrintRow(const char* label, const AdvisorResult& r, bool identical) {
  std::printf("%-10s %10.1f %10.1f %10.1f %10.1f %10zu %10zu %10s\n", label,
              r.estimation_ms, r.selection_ms, r.enumeration_ms,
              r.estimation_ms + r.selection_ms + r.enumeration_ms,
              r.stmt_costs_computed, r.stmt_costs_cached,
              identical ? "yes" : "NO");
}

void PrintPhaseHeader() {
  std::printf("%-10s %10s %10s %10s %10s %10s %10s %10s\n", "run", "est-ms",
              "sel-ms", "enum-ms", "total-ms", "computed", "cached",
              "identical");
}

void RecordRow(BenchContext* ctx, const std::string& key,
               const AdvisorResult& r, bool identical) {
  ctx->report.AddTimeMs("estimation_ms" + key, r.estimation_ms);
  ctx->report.AddTimeMs("selection_ms" + key, r.selection_ms);
  ctx->report.AddTimeMs("enumeration_ms" + key, r.enumeration_ms);
  ctx->report.AddCounter("stmt_costs_computed" + key, r.stmt_costs_computed);
  ctx->report.AddCounter("stmt_costs_cached" + key, r.stmt_costs_cached);
  ctx->report.AddCounter("identical" + key, identical ? 1 : 0);
}

void Run(BenchContext& ctx) {
  Stack s = MakeTpchStack(ctx.flags.rows, 0.0, ctx.flags.seed);
  const Workload w = s.workload.WithInsertWeight(0.2);
  const double budget = 0.20;

  AdvisorOptions base = AdvisorOptions::DTAcBoth();
  // One shared estimation cache: the pool is priced on the first run and
  // every later run hits it, so the timed phases are selection +
  // enumeration, not sampling.
  base.size_options.cache = std::make_shared<EstimationCache>();
  s.Tune(base, budget, w);  // warm samples + estimation cache

  PrintHeader(
      "Per-phase breakdown (threads=1): selection costings hit the shared "
      "cost cache");
  PrintPhaseHeader();
  AdvisorResult serial;
  for (bool use_cache : {false, true}) {
    AdvisorOptions options = base;
    options.cost_cache = use_cache;
    const AdvisorResult r = s.Tune(options, budget, w);
    if (!use_cache) serial = r;
    const bool identical = SameRecommendation(serial, r);
    PrintRow(use_cache ? "cache-on" : "cache-off", r, identical);
    RecordRow(&ctx, std::string("[cache=") + (use_cache ? "on" : "off") + "]",
              r, identical);
  }

  PrintHeader("Candidate selection + enumeration thread scaling (cache on)");
  PrintPhaseHeader();
  for (int threads : {1, 2, 4, 8}) {
    AdvisorOptions options = base;
    options.cost_cache = true;
    options.num_threads = threads;
    const AdvisorResult r = s.Tune(options, budget, w);
    char label[16];
    std::snprintf(label, sizeof(label), "t=%d", threads);
    const bool identical = SameRecommendation(serial, r);
    PrintRow(label, r, identical);
    RecordRow(&ctx, "[threads=" + std::to_string(threads) + "]", r, identical);
  }

  PrintHeader("Staged baseline (stage 1 + stage 2 on the pool)");
  PrintPhaseHeader();
  AdvisorResult staged_serial;
  for (int threads : {1, 4}) {
    AdvisorOptions options = base;
    options.num_threads = threads;
    SizeEstimator estimator(*s.db, s.mvs(), ErrorModel(),
                            options.size_options);
    Advisor advisor(*s.db, s.optimizer(), &estimator, s.mvs(), options);
    const AdvisorResult r = advisor.TuneStagedBaseline(
        w, budget * static_cast<double>(s.db->BaseDataBytes()),
        CompressionKind::kPage);
    if (threads == 1) staged_serial = r;
    char label[16];
    std::snprintf(label, sizeof(label), "staged t=%d", threads);
    const bool identical = SameRecommendation(staged_serial, r);
    PrintRow(label, r, identical);
    RecordRow(&ctx, "[staged,threads=" + std::to_string(threads) + "]", r,
              identical);
  }
}

}  // namespace
}  // namespace bench
}  // namespace capd

int main(int argc, char** argv) {
  return capd::bench::BenchMain(argc, argv, "parallel_candidates",
                                /*default_rows=*/24000,
                                /*default_seed=*/20110829, capd::bench::Run);
}
