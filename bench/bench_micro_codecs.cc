// Micro-benchmarks of the compression codecs. These are the stand-in for
// the whitepaper [13] measurements the paper calibrates the alpha/beta CPU
// constants from: per-tuple compression (alpha) and per-tuple-per-column
// decompression (beta) costs, with PAGE > ROW — plus each codec's
// compression fraction on the bench data (deterministic at a pinned seed).
//
// Two compression paths are measured per codec:
//   - encode+blob: EncodeRows -> CompressPage(EncodedPage) — what the page
//     packer used to run per size probe (per-field strings + a real blob);
//   - measure: MeasurePage over a FlatSpan — the zero-copy size-only kernel
//     the packer runs now. Its allocation counters (page_allocs /
//     allocs_per_row, via src/common/alloc_tracker) are deterministic and
//     gate in the perf-trajectory CI job; wall times stay report-only.
//
// Hand-rolled timing loops rather than google-benchmark so the binary
// always builds and shares the uniform bench flag set (--rows sets the
// tuples per page, --seed the data generator).
#include "bench/bench_common.h"
#include "common/alloc_tracker.h"
#include "common/logging.h"
#include "common/random.h"
#include "compress/codec_factory.h"
#include "compress/flat_page.h"
#include "storage/encoding.h"

namespace capd {
namespace bench {
namespace {

Schema BenchSchema() {
  return Schema({{"a", ValueType::kInt64, 8},
                 {"b", ValueType::kString, 12},
                 {"c", ValueType::kInt64, 8},
                 {"d", ValueType::kDouble, 8}});
}

std::vector<Row> BenchRows(size_t n, uint64_t seed) {
  Random rng(seed);
  const char* kWords[] = {"alpha", "beta", "gamma", "delta", "epsilon"};
  std::vector<Row> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    rows.push_back(
        {Value::Int64(rng.Uniform(0, 500)),
         Value::String(kWords[rng.Next(5)]),
         Value::Int64(rng.Uniform(0, 1000000)),
         Value::Double(static_cast<double>(rng.Uniform(0, 1 << 20)))});
  }
  return rows;
}

// Repeats op() until ~50ms of wall time has accumulated and returns the
// per-call average in microseconds.
template <typename Fn>
double TimeUsPerCall(Fn&& op) {
  // Warm up + first measurement to pick an iteration count.
  const auto w0 = std::chrono::steady_clock::now();
  op();
  const double once_ms =
      std::max(Millis(w0, std::chrono::steady_clock::now()), 1e-6);
  const size_t iters =
      std::max<size_t>(1, static_cast<size_t>(50.0 / once_ms));
  const auto t0 = std::chrono::steady_clock::now();
  for (size_t i = 0; i < iters; ++i) op();
  const double total_ms = Millis(t0, std::chrono::steady_clock::now());
  return total_ms * 1000.0 / static_cast<double>(iters);
}

void Run(BenchContext& ctx) {
  const Schema schema = BenchSchema();
  const size_t rows_per_page = static_cast<size_t>(ctx.flags.rows);
  const std::vector<Row> rows = BenchRows(rows_per_page, ctx.flags.seed);
  const EncodedPage page = EncodeRows(rows, schema, 0, rows.size());
  const FlatPage flat = FlatPage::FromRows(rows, schema, 0, rows.size());
  const std::unique_ptr<Codec> none =
      MakeCodec(CompressionKind::kNone, schema, rows);
  const std::string base = none->CompressPage(page);

  PrintHeader("Codec micro-benchmarks (alpha/beta CPU constants)");
  std::printf("%-12s %13s %12s %14s %7s %18s\n", "codec", "compress[us]",
              "measure[us]", "decompress[us]", "cf", "allocs/row blob|meas");
  uint64_t sink = 0;
  for (CompressionKind kind :
       {CompressionKind::kNone, CompressionKind::kRow, CompressionKind::kPage,
        CompressionKind::kGlobalDict, CompressionKind::kRle}) {
    const std::unique_ptr<Codec> codec = MakeCodec(kind, schema, rows);
    const std::string blob = codec->CompressPage(page);
    // The measure/compress contract, asserted before timing it.
    CAPD_CHECK_EQ(codec->MeasurePage(flat), blob.size());

    const double compress_us =
        TimeUsPerCall([&] { codec->CompressPage(page); });
    const double measure_us =
        TimeUsPerCall([&] { sink += codec->MeasurePage(flat); });
    const double decompress_us =
        TimeUsPerCall([&] { codec->DecompressPage(blob); });

    // Allocation cost of one size probe, old world vs new: the packer used
    // to EncodeRows + CompressPage per probe; now it measures a flat span.
    uint64_t a0 = AllocCount();
    {
      const EncodedPage probe = EncodeRows(rows, schema, 0, rows.size());
      const std::string probe_blob = codec->CompressPage(probe);
      sink += probe_blob.size();
    }
    const uint64_t blob_allocs = AllocCount() - a0;
    a0 = AllocCount();
    sink += codec->MeasurePage(flat);
    const uint64_t measure_allocs = AllocCount() - a0;

    const double cf =
        static_cast<double>(blob.size()) / static_cast<double>(base.size());
    const double blob_apr =
        static_cast<double>(blob_allocs) / static_cast<double>(rows_per_page);
    const double measure_apr = static_cast<double>(measure_allocs) /
                               static_cast<double>(rows_per_page);
    std::printf("%-12s %13.2f %12.2f %14.2f %7.3f %11.2f | %4.2f\n",
                CompressionKindName(kind), compress_us, measure_us,
                decompress_us, cf, blob_apr, measure_apr);
    const std::string key =
        std::string("[codec=") + CompressionKindName(kind) + "]";
    ctx.report.AddTimeMs("compress_us_per_page" + key, compress_us);
    ctx.report.AddTimeMs("measure_us_per_page" + key, measure_us);
    ctx.report.AddTimeMs("decompress_us_per_page" + key, decompress_us);
    ctx.report.AddValue("cf" + key, cf);
    ctx.report.AddCounter("compressed_bytes" + key, blob.size());
    ctx.report.AddCounter("measure_bytes" + key, codec->MeasurePage(flat));
    // Deterministic allocation counters for the size-only path: these gate
    // exactly in CI (zero for every codec except PAGE's dictionary plan).
    ctx.report.AddCounter("page_allocs" + key + "[path=measure]",
                          measure_allocs);
    ctx.report.AddValue("allocs_per_row" + key + "[path=measure]",
                        measure_apr);
    // The old probe path's churn is the headline being deleted; its count
    // is allocator/stdlib shaped, so report-only (time kind).
    ctx.report.AddTimeMs("allocs_per_row" + key + "[path=encode+blob]",
                         blob_apr);
    ctx.report.AddTimeMs("measure_speedup_vs_compress" + key,
                         measure_us > 0 ? compress_us / measure_us : 0.0);
  }
  CAPD_CHECK_GT(sink, 0u);  // keep the measure loops un-elidable
  std::printf("\nExpected: PAGE(LD) compress/decompress > ROW(NS); cf "
              "orders ROW < PAGE on this mixed-type data; measure[us] well "
              "under compress[us] with ~0 allocs/row for NONE/ROW/RLE/"
              "GLOBAL_DICT.\n");
}

}  // namespace
}  // namespace bench
}  // namespace capd

int main(int argc, char** argv) {
  return capd::bench::BenchMain(argc, argv, "micro_codecs",
                                /*default_rows=*/256,
                                /*default_seed=*/7, capd::bench::Run);
}
