// Micro-benchmarks of the compression codecs (google-benchmark). These are
// the stand-in for the whitepaper [13] measurements the paper calibrates
// the alpha/beta CPU constants from: per-tuple compression (alpha) and
// per-tuple-per-column decompression (beta) costs, with PAGE > ROW.
#include <benchmark/benchmark.h>

#include "common/random.h"
#include "compress/codec_factory.h"
#include "storage/encoding.h"

namespace capd {
namespace {

Schema BenchSchema() {
  return Schema({{"a", ValueType::kInt64, 8},
                 {"b", ValueType::kString, 12},
                 {"c", ValueType::kInt64, 8},
                 {"d", ValueType::kDouble, 8}});
}

std::vector<Row> BenchRows(size_t n) {
  Random rng(7);
  const char* kWords[] = {"alpha", "beta", "gamma", "delta", "epsilon"};
  std::vector<Row> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    rows.push_back({Value::Int64(rng.Uniform(0, 500)),
                    Value::String(kWords[rng.Next(5)]),
                    Value::Int64(rng.Uniform(0, 1000000)),
                    Value::Double(static_cast<double>(rng.Uniform(0, 1 << 20)))});
  }
  return rows;
}

void BM_Compress(benchmark::State& state) {
  const auto kind = static_cast<CompressionKind>(state.range(0));
  const Schema schema = BenchSchema();
  const std::vector<Row> rows = BenchRows(256);
  const std::unique_ptr<Codec> codec = MakeCodec(kind, schema, rows);
  const EncodedPage page = EncodeRows(rows, schema, 0, rows.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec->CompressPage(page));
  }
  state.SetItemsProcessed(state.iterations() * 256);
  state.SetLabel(CompressionKindName(kind));
}

void BM_Decompress(benchmark::State& state) {
  const auto kind = static_cast<CompressionKind>(state.range(0));
  const Schema schema = BenchSchema();
  const std::vector<Row> rows = BenchRows(256);
  const std::unique_ptr<Codec> codec = MakeCodec(kind, schema, rows);
  const std::string blob =
      codec->CompressPage(EncodeRows(rows, schema, 0, rows.size()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec->DecompressPage(blob));
  }
  state.SetItemsProcessed(state.iterations() * 256);
  state.SetLabel(CompressionKindName(kind));
}

void BM_CompressedSizeRatio(benchmark::State& state) {
  // Not a timing benchmark per se: reports the compression fraction each
  // codec achieves on the bench data as the counter "cf".
  const auto kind = static_cast<CompressionKind>(state.range(0));
  const Schema schema = BenchSchema();
  const std::vector<Row> rows = BenchRows(256);
  const std::unique_ptr<Codec> codec = MakeCodec(kind, schema, rows);
  const std::unique_ptr<Codec> none =
      MakeCodec(CompressionKind::kNone, schema, rows);
  const EncodedPage page = EncodeRows(rows, schema, 0, rows.size());
  double cf = 1.0;
  for (auto _ : state) {
    const std::string blob = codec->CompressPage(page);
    const std::string base = none->CompressPage(page);
    cf = static_cast<double>(blob.size()) / static_cast<double>(base.size());
    benchmark::DoNotOptimize(cf);
  }
  state.counters["cf"] = cf;
  state.SetLabel(CompressionKindName(kind));
}

BENCHMARK(BM_Compress)->DenseRange(0, 4)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Decompress)->DenseRange(0, 4)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_CompressedSizeRatio)->DenseRange(0, 4);

}  // namespace
}  // namespace capd

BENCHMARK_MAIN();
