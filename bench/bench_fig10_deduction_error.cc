// Figure 10: bias and standard deviation of column-extrapolation deduction
// errors vs a, the number of child indexes extrapolated from. Children are
// sized by SampleCF at a large fraction so the residual error is the
// deduction's own. Paper shape: errors grow roughly linearly with a; LD
// (order-dependent) deductions are worse and biased low/high vs NS.
#include "bench/bench_common.h"

#include "estimator/deduction.h"

namespace capd {
namespace bench {
namespace {

// Error of deducing each target from singleton children (a = #columns).
std::vector<double> DeductionErrors(const Database& db,
                                    const std::vector<std::string>& cols,
                                    size_t a, CompressionKind kind,
                                    int trials, TruthCache* truths) {
  std::vector<double> errors;
  for (int t = 0; t < trials; ++t) {
    SampleManager samples(4242 + static_cast<uint64_t>(t) * 131);
    TableSampleSource source(db, &samples);
    SampleCfEstimator estimator(db, &source);
    DeductionEngine engine(db, &source, 0.10);

    // Sliding windows of `a` columns as targets.
    for (size_t start = 0; start + a <= cols.size(); ++start) {
      IndexDef target;
      target.object = "lineitem";
      target.compression = kind;
      for (size_t k = 0; k < a; ++k) {
        target.key_columns.push_back(cols[start + k]);
      }
      std::vector<KnownSize> children;
      for (const std::string& col : target.key_columns) {
        IndexDef child;
        child.object = "lineitem";
        child.key_columns = {col};
        child.compression = kind;
        const SampleCfResult r = estimator.Estimate(child, 0.10);
        children.push_back(
            KnownSize{child, r.est_bytes, r.est_uncompressed_bytes,
                      r.est_ns_bytes, r.est_tuples});
      }
      const double tuples =
          static_cast<double>(db.table("lineitem").num_rows());
      const double u = estimator.UncompressedFullBytes(target, tuples);
      const double deduced = engine.DeduceColExt(target, u, tuples, children);
      const double truth = truths->FineBytes(target);
      errors.push_back(deduced / truth - 1.0);
    }
  }
  return errors;
}

void Run(BenchContext& ctx) {
  Stack s = MakeTpchStack(ctx.flags.rows, 0.0, ctx.flags.seed);
  const std::vector<std::string> cols = {"l_shipdate", "l_shipmode",
                                         "l_quantity", "l_returnflag",
                                         "l_partkey", "l_discount"};
  TruthCache truths(*s.db);
  PrintHeader("Figure 10: deduction error vs a (#indexes extrapolated from)");
  std::printf("%4s %10s %10s %10s %10s\n", "a", "NS-Bias", "NS-Stddev",
              "LD-Bias", "LD-Stddev");
  for (size_t a : {2u, 3u, 4u}) {
    const auto ns =
        DeductionErrors(*s.db, cols, a, CompressionKind::kRow, 2, &truths);
    const auto ld =
        DeductionErrors(*s.db, cols, a, CompressionKind::kPage, 2, &truths);
    std::printf("%4zu %9.2f%% %9.2f%% %9.2f%% %9.2f%%\n", a, Mean(ns) * 100,
                StdDev(ns) * 100, Mean(ld) * 100, StdDev(ld) * 100);
    const std::string key = "[a=" + std::to_string(a) + "]";
    ctx.report.AddValue("ns_bias" + key, Mean(ns));
    ctx.report.AddValue("ns_stddev" + key, StdDev(ns));
    ctx.report.AddValue("ld_bias" + key, Mean(ld));
    ctx.report.AddValue("ld_stddev" + key, StdDev(ld));
  }
  std::printf("\nPaper reference (Table 3): ColExt(NS) bias=0.01a sd=0.002a; "
              "ColExt(LD) bias=-0.03a sd=0.01a\n");
}

}  // namespace
}  // namespace bench
}  // namespace capd

int main(int argc, char** argv) {
  return capd::bench::BenchMain(argc, argv, "fig10_deduction_error",
                                /*default_rows=*/6000,
                                /*default_seed=*/20110829, capd::bench::Run);
}
