// Load/robustness harness for the TuningService: a saturation phase that
// pins admission control and watermark degradation with exact counters, a
// fault-injected mixed-strategy load phase (Zipf-skewed arrival gaps,
// hundreds of requests at full scale) whose status breakdown is
// deterministic because the injector keys faults by request id, and a
// wall-clock deadline phase. Every submitted request must resolve with a
// definite status — the bench aborts otherwise.
//
// Counter metrics are exact at pinned (rows, seed): admission decisions
// come from a gate-blocked worker (queue depths are deterministic) and
// load-phase statuses from the seeded fault schedule. Latencies and wall
// times are time_ms (noisy by nature); real-deadline outcomes are printed
// but not gated (they race wall clocks by design).
#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <vector>

#include "bench/bench_common.h"
#include "common/logging.h"
#include "common/zipf.h"
#include "service/tuning_service.h"

namespace capd {
namespace bench {
namespace {

// Blocks the single worker inside a request's first progress callback so
// the queue behind it fills deterministically.
struct Gate {
  std::mutex mu;
  std::condition_variable cv;
  bool entered = false;
  bool released = false;

  void Enter() {
    std::unique_lock<std::mutex> lock(mu);
    entered = true;
    cv.notify_all();
    cv.wait(lock, [this] { return released; });
  }
  void AwaitEntered() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return entered; });
  }
  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu);
      released = true;
    }
    cv.notify_all();
  }
};

ServiceRequest MakeRequest(const Stack& s, const std::string& strategy) {
  ServiceRequest request;
  request.tuning.workload = s.workload;
  request.tuning.strategy = strategy;
  request.tuning.budget = TuningBudget::Fraction(0.15);
  return request;
}

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t i = static_cast<size_t>(p * (sorted.size() - 1) + 0.5);
  return sorted[std::min(i, sorted.size() - 1)];
}

// Phase A: saturation against a gate-blocked single worker. Queue depths
// are fully deterministic, so accept/reject/degrade counts gate exactly.
void RunSaturation(BenchContext& ctx, Stack& s) {
  PrintHeader("Phase A: admission control under saturation (exact)");
  ServiceOptions options;
  options.num_workers = 1;
  options.max_queue = 8;
  options.high_watermark = 4;
  options.low_watermark = 0;
  TuningService service(s.engine.get(), options);

  Gate gate;
  ServiceRequest blocker = MakeRequest(s, "dtac-topk");
  blocker.tuning.progress = [&gate](const std::string& phase) {
    if (phase == "candidates") gate.Enter();
  };
  auto busy = service.Submit(blocker);
  gate.AwaitEntered();

  // Fill the queue to max_queue, then four more: rejected at admission.
  std::vector<std::shared_ptr<TuningService::Ticket>> tickets;
  for (int i = 0; i < options.max_queue + 4; ++i) {
    tickets.push_back(service.Submit(MakeRequest(s, "dtac-topk")));
  }
  gate.Release();
  busy->Wait();
  size_t degraded = 0, rejected = 0, ok = 0;
  for (auto& ticket : tickets) {
    const ServiceResponse& r = ticket->Wait();
    if (r.status == ServiceStatus::kOverloaded) {
      ++rejected;
    } else {
      CAPD_CHECK(r.status == ServiceStatus::kOk) << ServiceStatusName(r.status);
      ++ok;
      if (r.degraded) {
        ++degraded;
        CAPD_CHECK(r.executed_strategy == options.degraded_strategy);
      }
    }
  }
  std::printf("submitted=%zu accepted=%zu rejected=%zu degraded=%zu\n",
              tickets.size() + 1, ok + 1, rejected, degraded);
  // Dequeue depths behind the blocker are 7..0 with low_watermark 0: every
  // drain but the last runs degraded.
  ctx.report.AddCounter("a_accepted", ok);
  ctx.report.AddCounter("a_rejected", rejected);
  ctx.report.AddCounter("a_degraded", degraded);
  const ServiceStats stats = service.stats();
  CAPD_CHECK(stats.completed == stats.accepted);
}

// Phase B: mixed-strategy load with seeded fault injection. One dispatcher
// submits with Zipf-skewed gaps so request ids — and with them the fault
// schedule and the status breakdown — are deterministic while the worker
// pool drains concurrently.
void RunFaultLoad(BenchContext& ctx, Stack& s) {
  PrintHeader("Phase B: fault-injected mixed load (exact breakdown)");
  const int clients =
      static_cast<int>(std::max<uint64_t>(40, ctx.flags.rows / 10));
  ServiceOptions options;
  options.num_workers = std::max(1, ctx.flags.threads);
  options.max_queue = clients + 1;  // admission never interferes here
  options.high_watermark = 0;       // depth decisions are not seeded
  options.max_attempts = 3;
  options.backoff_base_ms = 0.5;
  options.backoff_cap_ms = 4.0;
  options.faults.seed = ctx.flags.seed;
  options.faults.transient_rate = 0.12;
  options.faults.forced_timeout_rate = 0.08;
  options.faults.spurious_cancel_rate = 0.08;
  TuningService service(s.engine.get(), options);

  const char* const strategies[] = {"dtac-topk", "dtac-skyline",
                                    "staged:page"};
  Random rng(ctx.flags.seed);
  ZipfGenerator arrivals(/*n=*/64, /*theta=*/1.1);

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::shared_ptr<TuningService::Ticket>> tickets;
  tickets.reserve(clients);
  for (int i = 0; i < clients; ++i) {
    tickets.push_back(service.Submit(MakeRequest(s, strategies[i % 3])));
    // Zipf-skewed inter-arrival gap: mostly bursts (rank 0 = no wait),
    // occasionally a long pause — the skewed open-loop client mix.
    const uint64_t gap_us = arrivals.Next(&rng) * 50;
    if (gap_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(gap_us));
    }
  }

  size_t ok = 0, deadline = 0, error = 0, cancelled = 0;
  std::vector<double> latencies;
  latencies.reserve(clients);
  for (auto& ticket : tickets) {
    const ServiceResponse& r = ticket->Wait();
    latencies.push_back(r.queue_ms + r.run_ms);
    switch (r.status) {
      case ServiceStatus::kOk:
        ++ok;
        break;
      case ServiceStatus::kDeadlineExceeded:
        ++deadline;
        break;
      case ServiceStatus::kError:
        ++error;
        break;
      case ServiceStatus::kCancelled:
        ++cancelled;
        break;
      case ServiceStatus::kOverloaded:
        CAPD_CHECK(false) << "admission must not fire in phase B";
    }
  }
  const double wall_ms = Millis(t0, std::chrono::steady_clock::now());
  const ServiceStats stats = service.stats();
  CAPD_CHECK(stats.completed == stats.accepted)
      << "every accepted request must resolve";
  CAPD_CHECK(ok + deadline + error + cancelled == static_cast<size_t>(clients));

  std::sort(latencies.begin(), latencies.end());
  std::printf(
      "clients=%d workers=%d: ok=%zu deadline=%zu error=%zu cancelled=%zu\n",
      clients, options.num_workers, ok, deadline, error, cancelled);
  std::printf("faults=%llu retries=%llu wall=%.0fms throughput=%.1f req/s\n",
              static_cast<unsigned long long>(stats.faults_injected),
              static_cast<unsigned long long>(stats.retries), wall_ms,
              1000.0 * clients / std::max(wall_ms, 1e-9));
  std::printf("latency p50=%.1fms p99=%.1fms p999=%.1fms\n",
              Percentile(latencies, 0.50), Percentile(latencies, 0.99),
              Percentile(latencies, 0.999));

  ctx.report.AddCounter("b_clients", clients);
  ctx.report.AddCounter("b_ok", ok);
  ctx.report.AddCounter("b_deadline_exceeded", deadline);
  ctx.report.AddCounter("b_error", error);
  ctx.report.AddCounter("b_cancelled", cancelled);
  ctx.report.AddCounter("b_faults_injected", stats.faults_injected);
  ctx.report.AddCounter("b_retries", stats.retries);
  ctx.report.AddTimeMs("b_wall_ms", wall_ms);
  ctx.report.AddTimeMs("b_latency_p50_ms", Percentile(latencies, 0.50));
  ctx.report.AddTimeMs("b_latency_p99_ms", Percentile(latencies, 0.99));
  ctx.report.AddTimeMs("b_latency_p999_ms", Percentile(latencies, 0.999));
}

// Phase C: real wall-clock deadlines. Outcomes race the clock, so only
// "everything resolved" gates; the breakdown is informational.
void RunDeadlines(BenchContext& ctx, Stack& s) {
  PrintHeader("Phase C: wall-clock deadlines (informational breakdown)");
  ServiceOptions options;
  options.num_workers = std::max(1, ctx.flags.threads);
  options.high_watermark = 0;
  TuningService service(s.engine.get(), options);

  constexpr int kRequests = 8;
  std::vector<std::shared_ptr<TuningService::Ticket>> tickets;
  for (int i = 0; i < kRequests; ++i) {
    ServiceRequest request = MakeRequest(s, "dtac-skyline");
    request.timeout_ms = 4.0 * (1 + i % 4);  // 4..16ms: all far too tight
    tickets.push_back(service.Submit(request));
  }
  size_t resolved = 0, expired = 0, finished = 0;
  for (auto& ticket : tickets) {
    const ServiceResponse& r = ticket->Wait();
    ++resolved;
    if (r.status == ServiceStatus::kDeadlineExceeded) {
      // Cooperative wind-down: the engine response is a flagged partial.
      CAPD_CHECK(r.attempts == 0 ||
                 r.tuning.status == TuningResponse::Status::kCancelled);
      ++expired;
    } else {
      CAPD_CHECK(r.status == ServiceStatus::kOk) << ServiceStatusName(r.status);
      ++finished;
    }
  }
  std::printf("requests=%d expired=%zu finished=%zu (race by design)\n",
              kRequests, expired, finished);
  ctx.report.AddCounter("c_resolved", resolved);
}

void Run(BenchContext& ctx) {
  Stack s = MakeTpchStack(ctx.flags.rows, 0.0, ctx.flags.seed);
  RunSaturation(ctx, s);
  RunFaultLoad(ctx, s);
  RunDeadlines(ctx, s);
  ctx.report.AddCounter("all_resolved", 1);
  std::printf("\nall requests resolved with definite statuses\n");
}

}  // namespace
}  // namespace bench
}  // namespace capd

int main(int argc, char** argv) {
  return capd::bench::BenchMain(argc, argv, "service_load",
                                /*default_rows=*/2000,
                                /*default_seed=*/20110829, capd::bench::Run);
}
