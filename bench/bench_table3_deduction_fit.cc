// Table 3: linear (through-origin) fits of the deduction error series of
// Figure 10, plus the ColSet deduction's near-zero error. These constants
// parameterize the ErrorModel used by the Section 5 graph search.
#include "bench/bench_common.h"

#include "estimator/deduction.h"

namespace capd {
namespace bench {
namespace {

void Run(BenchContext& ctx) {
  Stack s = MakeTpchStack(ctx.flags.rows, 0.0, ctx.flags.seed);
  const std::vector<std::string> cols = {"l_shipdate", "l_shipmode",
                                         "l_quantity", "l_returnflag",
                                         "l_partkey", "l_discount"};

  TruthCache truths(*s.db);
  PrintHeader("Table 3: deduction error formulas (fit through origin)");

  // --- ColSet: permuted-key pairs under ORD-IND compression. ---
  {
    std::vector<double> errors;
    for (size_t i = 0; i + 1 < cols.size(); ++i) {
      IndexDef ab, ba;
      ab.object = ba.object = "lineitem";
      ab.compression = ba.compression = CompressionKind::kRow;
      ab.key_columns = {cols[i], cols[i + 1]};
      ba.key_columns = {cols[i + 1], cols[i]};
      const double sa = truths.FineBytes(ab);
      const double sb = truths.FineBytes(ba);
      errors.push_back(sa / sb - 1.0);
    }
    std::printf("%-14s bias=%8.5f  stddev=%8.5f   (paper: 0 / 0.0003)\n",
                "ColSet(NS)", Mean(errors), StdDev(errors));
    ctx.report.AddValue("colset_ns_bias", Mean(errors));
    ctx.report.AddValue("colset_ns_stddev", StdDev(errors));
  }

  // --- ColExt: reuse the Figure 10 machinery, fit vs a. ---
  for (CompressionKind kind : {CompressionKind::kRow, CompressionKind::kPage}) {
    std::vector<double> xs, bias_ys, sd_ys;
    for (size_t a : {2u, 3u, 4u}) {
      std::vector<double> errors;
      SampleManager samples(4242);
      TableSampleSource source(*s.db, &samples);
      SampleCfEstimator estimator(*s.db, &source);
      DeductionEngine engine(*s.db, &source, 0.10);
      for (size_t start = 0; start + a <= cols.size(); ++start) {
        IndexDef target;
        target.object = "lineitem";
        target.compression = kind;
        for (size_t k = 0; k < a; ++k) {
          target.key_columns.push_back(cols[start + k]);
        }
        std::vector<KnownSize> children;
        for (const std::string& col : target.key_columns) {
          IndexDef child;
          child.object = "lineitem";
          child.key_columns = {col};
          child.compression = kind;
          const SampleCfResult r = estimator.Estimate(child, 0.10);
          children.push_back(KnownSize{child, r.est_bytes,
                                       r.est_uncompressed_bytes,
                                       r.est_ns_bytes, r.est_tuples});
        }
        const double tuples =
            static_cast<double>(s.db->table("lineitem").num_rows());
        const double u = estimator.UncompressedFullBytes(target, tuples);
        const double deduced = engine.DeduceColExt(target, u, tuples, children);
        const double truth = truths.FineBytes(target);
        errors.push_back(deduced / truth - 1.0);
      }
      xs.push_back(static_cast<double>(a));
      bias_ys.push_back(Mean(errors));
      sd_ys.push_back(StdDev(errors));
    }
    const bool ns = kind == CompressionKind::kRow;
    const double bias_fit = FitLinearThroughOrigin(xs, bias_ys);
    const double sd_fit = FitLinearThroughOrigin(xs, sd_ys);
    std::printf("%-14s bias=%8.5f a  stddev=%8.5f a   (paper: %s)\n",
                ns ? "ColExt(NS)" : "ColExt(LD)", bias_fit, sd_fit,
                ns ? "0.01a / 0.002a" : "-0.03a / 0.01a");
    const std::string key = ns ? "colext_ns" : "colext_ld";
    ctx.report.AddValue(key + "_bias_coeff", bias_fit);
    ctx.report.AddValue(key + "_stddev_coeff", sd_fit);
  }
}

}  // namespace
}  // namespace bench
}  // namespace capd

int main(int argc, char** argv) {
  return capd::bench::BenchMain(argc, argv, "table3_deduction_fit",
                                /*default_rows=*/6000,
                                /*default_seed=*/20110829, capd::bench::Run);
}
