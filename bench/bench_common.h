// Shared scaffolding for the experiment harnesses in bench/. Each binary
// regenerates one table or figure of the paper (see DESIGN.md's
// per-experiment index) and prints the same rows/series.
#ifndef CAPD_BENCH_BENCH_COMMON_H_
#define CAPD_BENCH_BENCH_COMMON_H_

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/math_util.h"
#include "engine/advisor_engine.h"
#include "index/index_builder.h"
#include "workloads/registry.h"
#include "workloads/sales.h"
#include "workloads/tpch.h"

namespace capd {
namespace bench {

// Everything a tuning experiment needs: the dataset plus an AdvisorEngine
// owning the whole collaborator stack (samples, MVs, optimizer, pools).
// Variant knobs reach the engine through TuneWithOptions, which honors the
// caller's AdvisorOptions verbatim — the ablation escape hatch the
// request/strategy API deliberately does not expose.
struct Stack {
  std::unique_ptr<Database> db;
  std::unique_ptr<AdvisorEngine> engine;
  Workload workload;

  MVRegistry* mvs() { return engine->mvs(); }
  const WhatIfOptimizer& optimizer() const { return engine->optimizer(); }

  AdvisorResult Tune(const AdvisorOptions& options, double budget_frac,
                     const Workload& w) {
    return engine->TuneWithOptions(
        w, budget_frac * static_cast<double>(db->BaseDataBytes()), options);
  }
};

inline Stack MakeStack(workloads::WorkloadSpec spec) {
  workloads::BuiltWorkload built;
  std::string error;
  if (!workloads::Build(spec, &built, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    std::abort();
  }
  Stack s;
  s.db = std::move(built.db);
  s.workload = std::move(built.workload);
  EngineOptions options;
  // The seed the hand-wired bench stacks always used for sampling.
  options.sample_seed = built.seed ^ 0xabcd;
  s.engine = std::make_unique<AdvisorEngine>(*s.db, options);
  return s;
}

inline Stack MakeTpchStack(uint64_t lineitem_rows, double skew_z = 0.0,
                           uint64_t seed = 20110829) {
  workloads::WorkloadSpec spec;
  spec.name = "tpch";
  spec.rows = lineitem_rows;
  spec.seed = seed;
  spec.skew_z = skew_z;
  return MakeStack(std::move(spec));
}

inline Stack MakeSalesStack(uint64_t fact_rows, uint64_t seed = 424242) {
  workloads::WorkloadSpec spec;
  spec.name = "sales";
  spec.rows = fact_rows;
  spec.seed = seed;
  return MakeStack(std::move(spec));
}

// A spread of index shapes over a table's columns: singletons, pairs and
// triples with a width cap — the "hundreds of indexes on various datasets"
// of Appendix C, scaled down.
inline std::vector<IndexDef> IndexZoo(const std::string& table,
                                      const std::vector<std::string>& cols,
                                      CompressionKind kind,
                                      size_t max_indexes) {
  std::vector<IndexDef> out;
  auto add = [&](std::vector<std::string> keys) {
    if (out.size() >= max_indexes) return;
    IndexDef def;
    def.object = table;
    def.key_columns = std::move(keys);
    def.compression = kind;
    out.push_back(std::move(def));
  };
  for (size_t i = 0; i < cols.size(); ++i) add({cols[i]});
  for (size_t i = 0; i < cols.size(); ++i) {
    for (size_t j = 0; j < cols.size(); ++j) {
      if (i != j) add({cols[i], cols[j]});
    }
  }
  for (size_t i = 0; i + 2 < cols.size(); ++i) {
    add({cols[i], cols[i + 1], cols[i + 2]});
  }
  return out;
}

// Ground-truth sizes cached across repeated calls (full index builds are
// the expensive part of the error benches).
class TruthCache {
 public:
  explicit TruthCache(const Database& db) : db_(&db) {}

  double FineBytes(const IndexDef& def) {
    const std::string sig = def.Signature();
    const auto it = cache_.find(sig);
    if (it != cache_.end()) return it->second;
    IndexBuilder builder(db_->table(def.object));
    const double truth = static_cast<double>(builder.Build(def).fine_bytes());
    cache_[sig] = truth;
    return truth;
  }

 private:
  const Database* db_;
  std::map<std::string, double> cache_;
};

// Relative size-estimation errors (est/true - 1) of SampleCF over a zoo of
// indexes at sampling fraction f, across `trials` sample seeds.
inline std::vector<double> SampleCfErrors(const Database& db,
                                          const std::vector<IndexDef>& zoo,
                                          double f, int trials,
                                          uint64_t seed_base,
                                          TruthCache* truths) {
  std::vector<double> errors;
  for (int t = 0; t < trials; ++t) {
    SampleManager samples(seed_base + static_cast<uint64_t>(t) * 7919);
    TableSampleSource source(db, &samples);
    SampleCfEstimator estimator(db, &source);
    for (const IndexDef& def : zoo) {
      const double truth = truths->FineBytes(def);
      const double est = estimator.Estimate(def, f).est_bytes;
      errors.push_back(est / truth - 1.0);
    }
  }
  return errors;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

// Runs a set of advisor variants across storage budgets (fractions of the
// base data size) and prints an improvement-% table — the shared shape of
// Figures 12-17.
struct Variant {
  std::string name;
  AdvisorOptions options;
};

inline void RunImprovementTable(Stack* s, const Workload& w,
                                const std::vector<double>& budget_fracs,
                                const std::vector<Variant>& variants) {
  std::printf("%-12s", "Budget");
  for (const Variant& v : variants) std::printf(" %12s", v.name.c_str());
  std::printf("\n");
  for (double frac : budget_fracs) {
    const double kb =
        frac * static_cast<double>(s->db->BaseDataBytes()) / 1024.0;
    std::printf("%3.0f%% (%4.0fKB)", frac * 100, kb);
    for (const Variant& v : variants) {
      const AdvisorResult r = s->Tune(v.options, frac, w);
      std::printf(" %11.1f%%", r.improvement_percent());
    }
    std::printf("\n");
  }
}

}  // namespace bench
}  // namespace capd

#endif  // CAPD_BENCH_BENCH_COMMON_H_
