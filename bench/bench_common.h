// Shared scaffolding for the experiment harnesses in bench/. Each binary
// regenerates one table or figure of the paper (see DESIGN.md's
// per-experiment index) and prints the same rows/series.
#ifndef CAPD_BENCH_BENCH_COMMON_H_
#define CAPD_BENCH_BENCH_COMMON_H_

#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/bench_report.h"
#include "common/math_util.h"
#include "engine/advisor_engine.h"
#include "index/index_builder.h"
#include "workloads/registry.h"
#include "workloads/sales.h"
#include "workloads/tpch.h"

namespace capd {
namespace bench {

// Everything a bench's Run() receives: the resolved uniform flags (rows /
// seed defaults already applied) plus the report collecting its metrics.
struct BenchContext {
  BenchFlags flags;
  BenchReport report;
};

inline double Millis(std::chrono::steady_clock::time_point a,
                     std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

// Shared main() for every bench binary: parses the uniform
// --rows/--seed/--threads/--json flag set, applies the bench's default
// scale, runs it, and writes the JSON report when requested. Under
// "--json -" the human-readable tables move to stderr so stdout carries
// pure JSON (pipeable into jq / python3 -m json.tool). Exit codes: 0 ok,
// 1 report I/O failure, 2 bad flags.
inline int BenchMain(int argc, char* const* argv, const char* bench_name,
                     uint64_t default_rows, uint64_t default_seed,
                     void (*run)(BenchContext&)) {
  BenchFlags flags;
  std::string error;
  if (!ParseBenchFlags(argc, argv, &flags, &error)) {
    std::fprintf(stderr, "%s\nusage: %s\n", error.c_str(),
                 BenchUsage(argv[0]).c_str());
    return 2;
  }
  if (flags.help) {
    std::printf("usage: %s\n", BenchUsage(argv[0]).c_str());
    return 0;
  }
  if (flags.rows == 0) flags.rows = default_rows;
  if (flags.seed == 0) flags.seed = default_seed;
  const bool json_to_stdout = flags.json_path == "-";
  int saved_stdout = -1;
  if (json_to_stdout) {
    std::fflush(stdout);
    saved_stdout = dup(STDOUT_FILENO);
    dup2(STDERR_FILENO, STDOUT_FILENO);
  }
  BenchContext ctx{flags, BenchReport(bench_name)};
  ctx.report.set_rows(flags.rows);
  ctx.report.set_seed(flags.seed);
  ctx.report.set_threads(flags.threads);
  run(ctx);
  if (json_to_stdout) {
    std::fflush(stdout);
    dup2(saved_stdout, STDOUT_FILENO);
    close(saved_stdout);
  }
  if (!flags.json_path.empty() &&
      !ctx.report.WriteJsonFile(flags.json_path, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  return 0;
}

// Compact deterministic rendering of a double for use inside metric names
// ("%g": 0.03, 0.005, 1).
inline std::string FracLabel(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

// Everything a tuning experiment needs: the dataset plus an AdvisorEngine
// owning the whole collaborator stack (samples, MVs, optimizer, pools).
// Variant knobs reach the engine through TuneWithOptions, which honors the
// caller's AdvisorOptions verbatim — the ablation escape hatch the
// request/strategy API deliberately does not expose.
struct Stack {
  std::unique_ptr<Database> db;
  std::unique_ptr<AdvisorEngine> engine;
  Workload workload;

  MVRegistry* mvs() { return engine->mvs(); }
  const WhatIfOptimizer& optimizer() const { return engine->optimizer(); }

  AdvisorResult Tune(const AdvisorOptions& options, double budget_frac,
                     const Workload& w) {
    return engine->TuneWithOptions(
        w, budget_frac * static_cast<double>(db->BaseDataBytes()), options);
  }
};

inline Stack MakeStack(workloads::WorkloadSpec spec) {
  workloads::BuiltWorkload built;
  std::string error;
  if (!workloads::Build(spec, &built, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    std::abort();
  }
  Stack s;
  s.db = std::move(built.db);
  s.workload = std::move(built.workload);
  EngineOptions options;
  // The seed the hand-wired bench stacks always used for sampling.
  options.sample_seed = built.seed ^ 0xabcd;
  s.engine = std::make_unique<AdvisorEngine>(*s.db, options);
  return s;
}

inline Stack MakeTpchStack(uint64_t lineitem_rows, double skew_z = 0.0,
                           uint64_t seed = 20110829) {
  workloads::WorkloadSpec spec;
  spec.name = "tpch";
  spec.rows = lineitem_rows;
  spec.seed = seed;
  spec.skew_z = skew_z;
  return MakeStack(std::move(spec));
}

inline Stack MakeSalesStack(uint64_t fact_rows, uint64_t seed = 424242) {
  workloads::WorkloadSpec spec;
  spec.name = "sales";
  spec.rows = fact_rows;
  spec.seed = seed;
  return MakeStack(std::move(spec));
}

// A spread of index shapes over a table's columns: singletons, pairs and
// triples with a width cap — the "hundreds of indexes on various datasets"
// of Appendix C, scaled down.
inline std::vector<IndexDef> IndexZoo(const std::string& table,
                                      const std::vector<std::string>& cols,
                                      CompressionKind kind,
                                      size_t max_indexes) {
  std::vector<IndexDef> out;
  auto add = [&](std::vector<std::string> keys) {
    if (out.size() >= max_indexes) return;
    IndexDef def;
    def.object = table;
    def.key_columns = std::move(keys);
    def.compression = kind;
    out.push_back(std::move(def));
  };
  for (size_t i = 0; i < cols.size(); ++i) add({cols[i]});
  for (size_t i = 0; i < cols.size(); ++i) {
    for (size_t j = 0; j < cols.size(); ++j) {
      if (i != j) add({cols[i], cols[j]});
    }
  }
  for (size_t i = 0; i + 2 < cols.size(); ++i) {
    add({cols[i], cols[i + 1], cols[i + 2]});
  }
  return out;
}

// Ground-truth sizes cached across repeated calls (full index builds are
// the expensive part of the error benches).
class TruthCache {
 public:
  explicit TruthCache(const Database& db) : db_(&db) {}

  double FineBytes(const IndexDef& def) {
    const std::string sig = def.Signature();
    const auto it = cache_.find(sig);
    if (it != cache_.end()) return it->second;
    IndexBuilder builder(db_->table(def.object));
    const double truth = static_cast<double>(builder.Build(def).fine_bytes());
    cache_[sig] = truth;
    return truth;
  }

 private:
  const Database* db_;
  std::map<std::string, double> cache_;
};

// Relative size-estimation errors (est/true - 1) of SampleCF over a zoo of
// indexes at sampling fraction f, across `trials` sample seeds.
inline std::vector<double> SampleCfErrors(const Database& db,
                                          const std::vector<IndexDef>& zoo,
                                          double f, int trials,
                                          uint64_t seed_base,
                                          TruthCache* truths) {
  std::vector<double> errors;
  for (int t = 0; t < trials; ++t) {
    SampleManager samples(seed_base + static_cast<uint64_t>(t) * 7919);
    TableSampleSource source(db, &samples);
    SampleCfEstimator estimator(db, &source);
    for (const IndexDef& def : zoo) {
      const double truth = truths->FineBytes(def);
      const double est = estimator.Estimate(def, f).est_bytes;
      errors.push_back(est / truth - 1.0);
    }
  }
  return errors;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

// Runs a set of advisor variants across storage budgets (fractions of the
// base data size) and prints an improvement-% table — the shared shape of
// Figures 12-17. Each (variant, budget) cell records its improvement (a
// deterministic value), the what-if / statement-costing counters, and its
// tuning wall time into ctx's report; ctx.flags.threads sets the worker
// pool for every variant.
struct Variant {
  std::string name;
  AdvisorOptions options;
};

inline void RunImprovementTable(BenchContext* ctx, Stack* s, const Workload& w,
                                const std::vector<double>& budget_fracs,
                                const std::vector<Variant>& variants) {
  std::printf("%-12s", "Budget");
  for (const Variant& v : variants) std::printf(" %12s", v.name.c_str());
  std::printf("\n");
  for (double frac : budget_fracs) {
    const double kb =
        frac * static_cast<double>(s->db->BaseDataBytes()) / 1024.0;
    std::printf("%3.0f%% (%4.0fKB)", frac * 100, kb);
    for (const Variant& v : variants) {
      AdvisorOptions options = v.options;
      options.num_threads = ctx->flags.threads;
      const auto t0 = std::chrono::steady_clock::now();
      const AdvisorResult r = s->Tune(options, frac, w);
      const double ms = Millis(t0, std::chrono::steady_clock::now());
      std::printf(" %11.1f%%", r.improvement_percent());
      const std::string key =
          "[" + v.name + ",budget=" + FracLabel(frac) + "]";
      ctx->report.AddValue("improvement_pct" + key, r.improvement_percent());
      ctx->report.AddCounter("what_if_calls" + key, r.what_if_calls);
      ctx->report.AddCounter("stmt_costs_computed" + key,
                             r.stmt_costs_computed);
      ctx->report.AddCounter("stmt_costs_cached" + key, r.stmt_costs_cached);
      ctx->report.AddTimeMs("tune_ms" + key, ms);
    }
    std::printf("\n");
  }
}

}  // namespace bench
}  // namespace capd

#endif  // CAPD_BENCH_BENCH_COMMON_H_
