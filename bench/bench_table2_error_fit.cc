// Table 2: stability of the least-squares error coefficients (-c * ln f)
// across datasets and skews: TPC-H Z=0 / Z=1 / Z=3 and TPC-DS. Paper shape:
// the coefficients barely move between datasets, which is what justifies
// using one parametric error model inside the graph search.
#include "workloads/tpcds_lite.h"

#include "bench/bench_common.h"

namespace capd {
namespace bench {
namespace {

struct Fit {
  double ld_bias;
  double ns_stddev;
  double ld_stddev;
};

Fit FitDataset(const Database& db, const std::string& table,
               const std::vector<std::string>& cols) {
  TruthCache truths(db);
  const std::vector<double> fractions = {0.01, 0.025, 0.05, 0.10};
  std::vector<double> xs;
  std::vector<double> ld_bias_ys, ns_sd_ys, ld_sd_ys;
  for (double f : fractions) {
    const auto ns = SampleCfErrors(
        db, IndexZoo(table, cols, CompressionKind::kRow, 16), f, 2, 17,
        &truths);
    const auto ld = SampleCfErrors(
        db, IndexZoo(table, cols, CompressionKind::kPage, 16), f, 2, 17,
        &truths);
    xs.push_back(f);
    ld_bias_ys.push_back(Mean(ld));
    ns_sd_ys.push_back(StdDev(ns));
    ld_sd_ys.push_back(StdDev(ld));
  }
  Fit fit;
  fit.ld_bias = FitLogCoefficient(xs, ld_bias_ys);
  fit.ns_stddev = FitLogCoefficient(xs, ns_sd_ys);
  fit.ld_stddev = FitLogCoefficient(xs, ld_sd_ys);
  return fit;
}

void Record(BenchContext& ctx, const std::string& dataset, const Fit& fit) {
  const std::string key = "[ds=" + dataset + "]";
  ctx.report.AddValue("ld_bias_coeff" + key, fit.ld_bias);
  ctx.report.AddValue("ns_stddev_coeff" + key, fit.ns_stddev);
  ctx.report.AddValue("ld_stddev_coeff" + key, fit.ld_stddev);
}

void Run(BenchContext& ctx) {
  PrintHeader("Table 2: least-squares fit c of error = c*ln(f), by dataset");
  std::printf("%-12s %12s %12s %12s\n", "dataset", "LD-Bias", "NS-Stddev",
              "LD-Stddev");
  const std::vector<std::string> li_cols = {"l_shipdate", "l_shipmode",
                                            "l_quantity", "l_returnflag",
                                            "l_partkey"};
  for (double z : {0.0, 1.0, 3.0}) {
    Stack s = MakeTpchStack(ctx.flags.rows, z, ctx.flags.seed);
    const Fit fit = FitDataset(*s.db, "lineitem", li_cols);
    std::printf("TPC-H Z=%-4.0f %9.4f lnf %9.4f lnf %9.4f lnf\n", z,
                fit.ld_bias, fit.ns_stddev, fit.ld_stddev);
    Record(ctx, "tpch_z" + FracLabel(z), fit);
  }
  {
    Database db;
    tpcds::Options opt;
    opt.store_sales_rows = ctx.flags.rows;
    tpcds::Build(&db, opt);
    const Fit fit = FitDataset(db, "store_sales",
                               {"ss_sold_date_sk", "ss_item_sk_fk",
                                "ss_quantity", "ss_promo"});
    std::printf("TPC-DS       %9.4f lnf %9.4f lnf %9.4f lnf\n", fit.ld_bias,
                fit.ns_stddev, fit.ld_stddev);
    Record(ctx, "tpcds", fit);
  }
  std::printf("\nPaper reference: LD-Bias ~ -0.013..-0.018, NS-Stddev ~ "
              "-0.0056..-0.0064, LD-Stddev ~ -0.014..-0.018 (stable)\n");
}

}  // namespace
}  // namespace bench
}  // namespace capd

int main(int argc, char** argv) {
  return capd::bench::BenchMain(argc, argv, "table2_error_fit",
                                /*default_rows=*/6000,
                                /*default_seed=*/20110829, capd::bench::Run);
}
