// Tests for the query IR and the SQL-subset parser.
#include <gtest/gtest.h>

#include "query/sql_parser.h"
#include "workloads/tpch.h"

namespace capd {
namespace {

class QueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tpch::Options opt;
    opt.lineitem_rows = 400;
    tpch::Build(&db_, opt);
  }
  Database db_;
};

TEST_F(QueryTest, ParseSimpleSelect) {
  std::string err;
  auto stmt = ParseSql("SELECT l_orderkey, SUM(l_quantity) FROM lineitem "
                       "WHERE l_shipdate >= DATE '1995-06-01' GROUP BY l_orderkey",
                       db_, &err);
  ASSERT_TRUE(stmt.has_value()) << err;
  EXPECT_EQ(stmt->type, StatementType::kSelect);
  const SelectQuery& q = stmt->select;
  EXPECT_EQ(q.table, "lineitem");
  ASSERT_EQ(q.projected.size(), 1u);
  EXPECT_EQ(q.projected[0], "l_orderkey");
  ASSERT_EQ(q.aggregates.size(), 1u);
  EXPECT_EQ(q.aggregates[0].column, "l_quantity");
  ASSERT_EQ(q.predicates.size(), 1u);
  EXPECT_EQ(q.predicates[0].op, FilterOp::kGe);
  ASSERT_EQ(q.group_by.size(), 1u);
}

TEST_F(QueryTest, ParseJoinResolvesDirection) {
  std::string err;
  auto stmt = ParseSql(
      "SELECT p_brand, SUM(l_extendedprice) FROM lineitem "
      "JOIN part ON l_partkey = p_partkey GROUP BY p_brand",
      db_, &err);
  ASSERT_TRUE(stmt.has_value()) << err;
  ASSERT_EQ(stmt->select.joins.size(), 1u);
  EXPECT_EQ(stmt->select.joins[0].dim_table, "part");
  EXPECT_EQ(stmt->select.joins[0].fk_column, "l_partkey");
  EXPECT_EQ(stmt->select.joins[0].dim_key, "p_partkey");
}

TEST_F(QueryTest, ParseJoinReversedOperands) {
  std::string err;
  auto stmt = ParseSql(
      "SELECT SUM(l_extendedprice) FROM lineitem JOIN part ON p_partkey = l_partkey",
      db_, &err);
  ASSERT_TRUE(stmt.has_value()) << err;
  EXPECT_EQ(stmt->select.joins[0].fk_column, "l_partkey");
}

TEST_F(QueryTest, ParseBetweenAndString) {
  std::string err;
  auto stmt = ParseSql(
      "SELECT COUNT(*) FROM lineitem WHERE l_quantity BETWEEN 5 AND 10 "
      "AND l_returnflag = 'R'",
      db_, &err);
  ASSERT_TRUE(stmt.has_value()) << err;
  ASSERT_EQ(stmt->select.predicates.size(), 2u);
  EXPECT_EQ(stmt->select.predicates[0].op, FilterOp::kBetween);
  EXPECT_EQ(stmt->select.predicates[1].lo.AsString(), "R");
}

TEST_F(QueryTest, ParseInsert) {
  std::string err;
  auto stmt = ParseSql("INSERT INTO lineitem VALUES 500 ROWS", db_, &err);
  ASSERT_TRUE(stmt.has_value()) << err;
  EXPECT_EQ(stmt->type, StatementType::kInsert);
  EXPECT_EQ(stmt->insert.table, "lineitem");
  EXPECT_EQ(stmt->insert.num_rows, 500u);
}

TEST_F(QueryTest, ParseErrorsReported) {
  std::string err;
  EXPECT_FALSE(ParseSql("DELETE FROM lineitem", db_, &err).has_value());
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(ParseSql("SELECT FROM", db_, &err).has_value());
  EXPECT_FALSE(
      ParseSql("SELECT nosuchcol FROM lineitem WHERE nosuch = 3", db_, &err)
          .has_value());
}

TEST_F(QueryTest, DateLiteralRoundTrip) {
  for (const char* d : {"1970-01-01", "1994-01-01", "1998-09-02", "2000-02-29"}) {
    EXPECT_EQ(FormatDate(ParseDateLiteral(d)), d);
  }
  EXPECT_EQ(ParseDateLiteral("1970-01-01"), 0);
  EXPECT_EQ(ParseDateLiteral("1970-01-02"), 1);
}

TEST_F(QueryTest, ColumnsUsedOnSeparatesTables) {
  std::string err;
  auto stmt = ParseSql(
      "SELECT p_brand, SUM(l_extendedprice) FROM lineitem "
      "JOIN part ON l_partkey = p_partkey WHERE l_shipdate >= DATE '1997-01-01' "
      "GROUP BY p_brand",
      db_, &err);
  ASSERT_TRUE(stmt.has_value()) << err;
  const auto on_lineitem = stmt->select.ColumnsUsedOn("lineitem", db_);
  const auto on_part = stmt->select.ColumnsUsedOn("part", db_);
  EXPECT_NE(std::find(on_lineitem.begin(), on_lineitem.end(), "l_shipdate"),
            on_lineitem.end());
  EXPECT_NE(std::find(on_lineitem.begin(), on_lineitem.end(), "l_partkey"),
            on_lineitem.end());
  EXPECT_NE(std::find(on_part.begin(), on_part.end(), "p_brand"), on_part.end());
  EXPECT_EQ(std::find(on_part.begin(), on_part.end(), "l_shipdate"), on_part.end());
}

TEST_F(QueryTest, PredicatesOnFiltersByOwner) {
  std::string err;
  auto stmt = ParseSql(
      "SELECT SUM(l_extendedprice) FROM lineitem JOIN part ON l_partkey = p_partkey "
      "WHERE p_brand = 'Brand#23' AND l_quantity < 10",
      db_, &err);
  ASSERT_TRUE(stmt.has_value()) << err;
  EXPECT_EQ(stmt->select.PredicatesOn("lineitem", db_).size(), 1u);
  EXPECT_EQ(stmt->select.PredicatesOn("part", db_).size(), 1u);
}

TEST_F(QueryTest, WorkloadInsertWeighting) {
  tpch::Options opt;
  opt.lineitem_rows = 400;
  Workload w = tpch::MakeWorkload(db_, opt);
  EXPECT_EQ(w.statements.size(), 24u);  // 22 queries + 2 bulk loads
  const Workload insert_heavy = w.WithInsertWeight(10.0);
  double select_w = 0, insert_w = 0, insert_w_orig = 0;
  for (size_t i = 0; i < w.statements.size(); ++i) {
    if (w.statements[i].type == StatementType::kInsert) {
      insert_w_orig += w.statements[i].weight;
      insert_w += insert_heavy.statements[i].weight;
    } else {
      select_w += insert_heavy.statements[i].weight;
    }
  }
  EXPECT_DOUBLE_EQ(insert_w, 10.0 * insert_w_orig);
  EXPECT_DOUBLE_EQ(select_w, 22.0);
}

TEST_F(QueryTest, TpchWorkloadParsesAndTouchesAllTables) {
  tpch::Options opt;
  opt.lineitem_rows = 400;
  const Workload w = tpch::MakeWorkload(db_, opt);
  std::set<std::string> roots;
  for (const Statement& s : w.statements) {
    if (s.type == StatementType::kSelect) roots.insert(s.select.table);
  }
  EXPECT_TRUE(roots.count("lineitem"));
  EXPECT_TRUE(roots.count("orders"));
  EXPECT_TRUE(roots.count("customer"));
  EXPECT_TRUE(roots.count("supplier"));
  EXPECT_TRUE(roots.count("part"));
}

TEST_F(QueryTest, StatementToStringMentionsShape) {
  std::string err;
  auto stmt = ParseSql(
      "SELECT l_shipmode, SUM(l_extendedprice) FROM lineitem GROUP BY l_shipmode",
      db_, &err);
  ASSERT_TRUE(stmt.has_value());
  const std::string s = stmt->select.ToString();
  EXPECT_NE(s.find("GROUP BY"), std::string::npos);
  EXPECT_NE(s.find("lineitem"), std::string::npos);
}

}  // namespace
}  // namespace capd
