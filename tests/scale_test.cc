// Tests for the blocked/generated Table path and the streaming sampler:
// byte-identity of streaming vs materialized samples, blocked iteration vs
// rows(), parallel materialization determinism, sampled stats on generated
// tables, and — via the process-wide allocation tracker in
// src/common/alloc_tracker.{h,cc} (activated for this binary by referencing
// its accessors) — a hard assertion that drawing a sample from a
// multi-million-row generated table allocates O(sample), not O(table).
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/database.h"
#include "common/alloc_tracker.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "stats/column_stats.h"
#include "stats/sampler.h"
#include "storage/block.h"
#include "storage/table.h"
#include "workloads/scale.h"

namespace capd {
namespace {

// Rows for the big-table memory assertion: 10^7 in optimized builds, 10^6
// under sanitizers/debug where generation is ~10x slower.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__) || \
    !defined(NDEBUG)
constexpr uint64_t kBigRows = 1000000;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr uint64_t kBigRows = 1000000;
#else
constexpr uint64_t kBigRows = 10000000;
#endif
#else
constexpr uint64_t kBigRows = 10000000;
#endif

std::string RowString(const Row& row) {
  std::string s;
  for (const Value& v : row) {
    s += v.ToString();
    s += '\x1f';
  }
  return s;
}

// A generated events table of `rows` rows (plus its devices dimension).
std::unique_ptr<Database> BuildScaleDb(uint64_t rows) {
  auto db = std::make_unique<Database>();
  scale::Options opt;
  opt.fact_rows = rows;
  scale::Build(db.get(), opt);
  return db;
}

// Simple deterministic source for table-level tests: (idx, seeded draw).
class PairSource : public BlockSource {
 public:
  explicit PairSource(uint64_t seed) : seed_(seed) {}

  void FillBlock(uint64_t block_index, uint64_t first_row, uint64_t count,
                 ColumnBlock* out) const override {
    Random rng(BlockSeed(seed_, block_index));
    for (uint64_t r = 0; r < count; ++r) {
      out->AppendRow({Value::Int64(static_cast<int64_t>(first_row + r)),
                      Value::Int64(rng.Uniform(0, 1000))});
    }
  }

 private:
  uint64_t seed_;
};

Schema PairSchema() {
  return Schema({{"idx", ValueType::kInt64, 8}, {"v", ValueType::kInt64, 8}});
}

TEST(BlockTest, ColumnBlockRoundTrip) {
  const Schema schema = PairSchema();
  ColumnBlock block(schema);
  block.Reset(100);
  block.AppendRow({Value::Int64(7), Value::Int64(8)});
  block.AppendRow({Value::Int64(9), Value::Int64(10)});
  EXPECT_EQ(block.first_row(), 100u);
  EXPECT_EQ(block.num_rows(), 2u);
  EXPECT_EQ(block.num_columns(), 2u);
  EXPECT_EQ(block.value(1, 0).ToString(), "8");
  Row out;
  block.RowAt(1, &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].ToString(), "9");
  EXPECT_EQ(out[1].ToString(), "10");
}

TEST(BlockTest, BlockSeedDecorrelatesNeighbors) {
  EXPECT_NE(BlockSeed(1, 0), BlockSeed(1, 1));
  EXPECT_NE(BlockSeed(1, 0), BlockSeed(2, 0));
  EXPECT_EQ(BlockSeed(5, 9), BlockSeed(5, 9));
}

TEST(GeneratedTableTest, ScanMatchesMaterializedRows) {
  // Odd row count exercises the partial final block.
  const uint64_t n = 3 * kDefaultBlockRows + 17;
  Table gen("t", PairSchema(), n, std::make_shared<PairSource>(99));
  EXPECT_FALSE(gen.materialized());
  EXPECT_EQ(gen.num_rows(), n);
  EXPECT_EQ(gen.num_blocks(), 4u);

  const std::unique_ptr<Table> mat = gen.Materialize();
  ASSERT_TRUE(mat->materialized());
  ASSERT_EQ(mat->num_rows(), n);

  uint64_t visited = 0;
  gen.ScanRows([&](uint64_t idx, const Row& row) {
    EXPECT_EQ(idx, visited);
    EXPECT_EQ(RowString(row), RowString(mat->rows()[idx]));
    ++visited;
  });
  EXPECT_EQ(visited, n);
}

TEST(GeneratedTableTest, ParallelMaterializeBitIdentical) {
  const uint64_t n = 5 * kDefaultBlockRows + 3;
  Table gen("t", PairSchema(), n, std::make_shared<PairSource>(1234));
  const std::unique_ptr<Table> serial = gen.Materialize(nullptr);
  ThreadPool pool(4);
  const std::unique_ptr<Table> parallel = gen.Materialize(&pool);
  ASSERT_EQ(serial->num_rows(), parallel->num_rows());
  for (uint64_t i = 0; i < n; ++i) {
    ASSERT_EQ(RowString(serial->rows()[i]), RowString(parallel->rows()[i]));
  }
}

TEST(GeneratedTableTest, CollectRowsMatchesDirectIndexing) {
  const uint64_t n = 2 * kDefaultBlockRows + 100;
  Table gen("t", PairSchema(), n, std::make_shared<PairSource>(77));
  const std::unique_ptr<Table> mat = gen.Materialize();
  const std::vector<uint64_t> picks = {0,
                                       1,
                                       kDefaultBlockRows - 1,
                                       kDefaultBlockRows,
                                       2 * kDefaultBlockRows + 99,
                                       n - 1};
  const std::vector<Row> got = gen.CollectRows(picks);
  ASSERT_EQ(got.size(), picks.size());
  for (size_t i = 0; i < picks.size(); ++i) {
    EXPECT_EQ(RowString(got[i]), RowString(mat->rows()[picks[i]]));
  }
}

TEST(ScaleWorkloadTest, StreamingSampleMatchesMaterializedSample) {
  const std::unique_ptr<Database> db = BuildScaleDb(10000);
  const Table& gen = db->table("events");
  ASSERT_FALSE(gen.materialized());
  const std::unique_ptr<Table> mat = gen.Materialize();

  Random rng_gen(4242), rng_mat(4242);
  const std::unique_ptr<Table> from_gen =
      CreateUniformSample(gen, 0.03, /*min_rows=*/50, &rng_gen);
  const std::unique_ptr<Table> from_mat =
      CreateUniformSample(*mat, 0.03, /*min_rows=*/50, &rng_mat);

  ASSERT_EQ(from_gen->num_rows(), from_mat->num_rows());
  ASSERT_GT(from_gen->num_rows(), 0u);
  for (uint64_t i = 0; i < from_gen->num_rows(); ++i) {
    ASSERT_EQ(RowString(from_gen->rows()[i]), RowString(from_mat->rows()[i]));
  }
}

TEST(ScaleWorkloadTest, SampledStatsOnGeneratedTable) {
  const std::unique_ptr<Database> db = BuildScaleDb(100000);
  const Table& events = db->table("events");
  const TableStats stats = TableStats::Compute(events);
  EXPECT_EQ(stats.num_rows(), 100000u);
  // e_id is unique: the GEE-scaled estimate must land well above the raw
  // sample distinct count and at most n.
  const ColumnStats& id = stats.column("e_id");
  EXPECT_EQ(id.num_rows, 100000u);
  EXPECT_GT(id.distinct, TableStats::kSampledStatsRows);
  EXPECT_LE(id.distinct, 100000u);
  // e_status has 4 classes regardless of scale.
  EXPECT_EQ(stats.column("e_status").distinct, 4u);
  // Deterministic: recomputing yields the same estimates.
  const TableStats again = TableStats::Compute(events);
  EXPECT_EQ(again.column("e_id").distinct, id.distinct);
  // Column combinations scale from the retained sample.
  const uint64_t combo =
      stats.DistinctOfColumns(events, {"e_status", "e_region"});
  EXPECT_GE(combo, 4u);
  EXPECT_LE(combo, 80u);  // 4 statuses x 20 regions
}

TEST(ScaleWorkloadTest, BigTableSampleAllocatesOSample) {
  const std::unique_ptr<Database> db = BuildScaleDb(kBigRows);
  const Table& events = db->table("events");
  ASSERT_EQ(events.num_rows(), kBigRows);

  // Full materialization of kBigRows events rows would allocate gigabytes
  // (8 Values/row at ~56 bytes each). The streaming sample path must stay
  // within a small fixed budget above the baseline: sample rows + one
  // scratch block + the sorted index vector.
  const long long baseline = ResetPeakAllocBytes();
  Random rng(7);
  const double f =
      static_cast<double>(10000) / static_cast<double>(kBigRows);
  const std::unique_ptr<Table> sample =
      CreateUniformSample(events, f, /*min_rows=*/50, &rng);
  const long long peak_delta = PeakAllocBytes() - baseline;

  EXPECT_EQ(sample->num_rows(), 10000u);
  constexpr long long kBudgetBytes = 64ll << 20;  // 64 MiB
  EXPECT_LT(peak_delta, kBudgetBytes)
      << "sample extraction allocated " << peak_delta
      << " bytes — O(table), not O(sample)?";
}

}  // namespace
}  // namespace capd
