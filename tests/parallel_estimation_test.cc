// Tests for the parallel batch-estimation engine and the cross-round
// estimation cache: parallel EstimateAll must be byte-identical to serial,
// and cached rounds must skip re-estimation entirely.
#include <cstring>

#include <gtest/gtest.h>

#include "estimator/size_estimator.h"
#include "workloads/tpch.h"

namespace capd {
namespace {

class ParallelEstimationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tpch::Options opt;
    opt.lineitem_rows = 6000;
    tpch::Build(&db_, opt);
  }

  IndexDef Idx(std::vector<std::string> keys,
               CompressionKind kind = CompressionKind::kRow) {
    IndexDef def;
    def.object = "lineitem";
    def.key_columns = std::move(keys);
    def.compression = kind;
    return def;
  }

  std::vector<IndexDef> Targets() {
    return {Idx({"l_shipdate"}),
            Idx({"l_shipmode"}),
            Idx({"l_shipdate", "l_shipmode"}),
            Idx({"l_shipdate", "l_shipmode", "l_quantity"}),
            Idx({"l_partkey", "l_suppkey"}),
            Idx({"l_quantity", "l_discount"}, CompressionKind::kPage),
            Idx({"l_partkey"}, CompressionKind::kPage)};
  }

  // Runs EstimateAll on a fresh SampleManager/estimator pair so every run
  // draws its own samples (per-key seeding makes them identical anyway).
  SizeEstimator::BatchResult RunBatch(SizeEstimationOptions options,
                                      uint64_t seed = 1234) {
    SampleManager samples(seed);
    TableSampleSource source(db_, &samples);
    SizeEstimator estimator(db_, &source, ErrorModel(), std::move(options));
    return estimator.EstimateAll(Targets());
  }

  static void ExpectBitIdentical(const SizeEstimator::BatchResult& a,
                                 const SizeEstimator::BatchResult& b) {
    ASSERT_EQ(a.estimates.size(), b.estimates.size());
    EXPECT_EQ(std::memcmp(&a.chosen_f, &b.chosen_f, sizeof(double)), 0);
    EXPECT_EQ(
        std::memcmp(&a.total_cost_pages, &b.total_cost_pages, sizeof(double)),
        0);
    EXPECT_EQ(a.num_sampled, b.num_sampled);
    EXPECT_EQ(a.num_deduced, b.num_deduced);
    auto ita = a.estimates.begin();
    auto itb = b.estimates.begin();
    for (; ita != a.estimates.end(); ++ita, ++itb) {
      EXPECT_EQ(ita->first, itb->first);
      // memcmp, not ==: the criterion is bit-identical doubles.
      EXPECT_EQ(std::memcmp(&ita->second, &itb->second, sizeof(SampleCfResult)),
                0)
          << ita->first;
    }
  }

  Database db_;
};

TEST_F(ParallelEstimationTest, ParallelEstimateAllBitIdenticalToSerial) {
  SizeEstimationOptions serial;
  serial.num_threads = 1;
  const SizeEstimator::BatchResult base = RunBatch(serial);
  EXPECT_EQ(base.estimates.size(), Targets().size());

  for (int threads : {2, 4, 8}) {
    SizeEstimationOptions parallel;
    parallel.num_threads = threads;
    ExpectBitIdentical(base, RunBatch(parallel));
  }
}

TEST_F(ParallelEstimationTest, ParallelIdenticalInNoDeductionMode) {
  SizeEstimationOptions serial;
  serial.use_deduction = false;
  const SizeEstimator::BatchResult base = RunBatch(serial);
  SizeEstimationOptions parallel = serial;
  parallel.num_threads = 4;
  ExpectBitIdentical(base, RunBatch(parallel));
}

TEST_F(ParallelEstimationTest, HardwareConcurrencyKnobWorks) {
  SizeEstimationOptions options;
  options.num_threads = 0;  // hardware concurrency
  const SizeEstimator::BatchResult r = RunBatch(options);
  EXPECT_EQ(r.estimates.size(), Targets().size());
}

TEST_F(ParallelEstimationTest, RepeatedRunsAreDeterministic) {
  // Same seed, fresh samples: estimates must be reproducible run to run
  // (per-key RNG seeding, not draw-order seeding).
  SizeEstimationOptions options;
  options.num_threads = 4;
  ExpectBitIdentical(RunBatch(options), RunBatch(options));
}

TEST_F(ParallelEstimationTest, CacheSkipsReEstimation) {
  SizeEstimationOptions options;
  options.cache = std::make_shared<EstimationCache>();

  SampleManager samples(1234);
  TableSampleSource source(db_, &samples);
  SizeEstimator estimator(db_, &source, ErrorModel(), options);

  const SizeEstimator::BatchResult first = estimator.EstimateAll(Targets());
  EXPECT_EQ(first.cache_hits, 0u);
  EXPECT_GT(first.total_cost_pages, 0.0);
  EXPECT_GE(options.cache->size(), Targets().size());

  const SizeEstimator::BatchResult second = estimator.EstimateAll(Targets());
  EXPECT_EQ(second.cache_hits, Targets().size());
  EXPECT_EQ(second.num_sampled, 0u);
  EXPECT_DOUBLE_EQ(second.total_cost_pages, 0.0);
  // Fully cache-served batches pick no fraction; consumers (the advisor's
  // bookkeeping) treat 0 as "keep the previous round's f".
  EXPECT_DOUBLE_EQ(second.chosen_f, 0.0);
  ASSERT_EQ(second.estimates.size(), first.estimates.size());
  for (const auto& [sig, r] : first.estimates) {
    ASSERT_TRUE(second.estimates.count(sig));
    EXPECT_DOUBLE_EQ(second.estimates.at(sig).est_bytes, r.est_bytes) << sig;
  }
}

TEST_F(ParallelEstimationTest, CachePartialHitEstimatesOnlyFreshTargets) {
  SizeEstimationOptions options;
  options.cache = std::make_shared<EstimationCache>();

  SampleManager samples(1234);
  TableSampleSource source(db_, &samples);
  SizeEstimator estimator(db_, &source, ErrorModel(), options);

  const std::vector<IndexDef> warm = {Idx({"l_shipdate"}), Idx({"l_shipmode"})};
  estimator.EstimateAll(warm);

  const SizeEstimator::BatchResult batch = estimator.EstimateAll(Targets());
  EXPECT_EQ(batch.cache_hits, warm.size());
  EXPECT_EQ(batch.estimates.size(), Targets().size());
  for (const IndexDef& t : Targets()) {
    EXPECT_TRUE(batch.estimates.count(t.Signature())) << t.ToString();
  }
}

TEST_F(ParallelEstimationTest, CacheSharedAcrossEstimators) {
  auto cache = std::make_shared<EstimationCache>();
  SizeEstimationOptions options;
  options.cache = cache;

  SampleManager samples(1234);
  TableSampleSource source(db_, &samples);
  {
    SizeEstimator first(db_, &source, ErrorModel(), options);
    first.EstimateAll(Targets());
  }
  SizeEstimator second(db_, &source, ErrorModel(), options);
  const SizeEstimator::BatchResult r = second.EstimateAll(Targets());
  EXPECT_EQ(r.cache_hits, Targets().size());
  EXPECT_GT(cache->hits(), 0u);
}

TEST(EstimationCacheTest, LruEvictsLeastRecentlyUsed) {
  EstimationCache cache;
  SampleCfResult r;
  r.est_bytes = 1.0;
  cache.Insert("a", 0.01, r);
  const size_t per_entry = cache.charged_bytes();  // same-length keys below
  cache.set_capacity_bytes(3 * per_entry);
  cache.Insert("b", 0.01, r);
  cache.Insert("c", 0.01, r);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.evictions(), 0u);

  // Touch "a" so "b" becomes least recently used, then overflow.
  EXPECT_TRUE(cache.Lookup("a", 0.01).has_value());
  cache.Insert("d", 0.01, r);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_FALSE(cache.Lookup("b", 0.01).has_value());
  EXPECT_TRUE(cache.Lookup("a", 0.01).has_value());
  EXPECT_TRUE(cache.Lookup("c", 0.01).has_value());
  EXPECT_TRUE(cache.Lookup("d", 0.01).has_value());
}

TEST(EstimationCacheTest, ShrinkingCapacityEvictsImmediately) {
  EstimationCache cache;  // unbounded by default
  SampleCfResult r;
  for (int i = 0; i < 8; ++i) {
    cache.Insert("idx" + std::to_string(i), 0.01, r);
  }
  EXPECT_EQ(cache.size(), 8u);
  const size_t bytes_for_two = cache.charged_bytes() / 4;
  cache.set_capacity_bytes(bytes_for_two);
  EXPECT_LE(cache.size(), 2u);
  EXPECT_LE(cache.charged_bytes(), bytes_for_two);
  EXPECT_GE(cache.evictions(), 6u);
  // The survivors are the most recently inserted.
  EXPECT_TRUE(cache.Lookup("idx7", 0.01).has_value());
}

TEST_F(ParallelEstimationTest, CacheCapacityOptionBoundsTheCache) {
  SizeEstimationOptions options;
  options.cache = std::make_shared<EstimationCache>();
  // A bound too small for even one entry: every insert is evicted again,
  // so the cache never grows — the extreme case of the memory bound.
  options.cache_capacity_bytes = 1;

  SampleManager samples(1234);
  TableSampleSource source(db_, &samples);
  SizeEstimator estimator(db_, &source, ErrorModel(), options);
  EXPECT_EQ(options.cache->capacity_bytes(), 1u);

  const SizeEstimator::BatchResult batch = estimator.EstimateAll(Targets());
  EXPECT_EQ(batch.estimates.size(), Targets().size());
  EXPECT_EQ(options.cache->size(), 0u);
  EXPECT_GT(options.cache->evictions(), 0u);
}

TEST(EstimationCacheTest, LookupBestPrefersLargestFraction) {
  EstimationCache cache;
  SampleCfResult coarse;
  coarse.est_bytes = 100.0;
  SampleCfResult fine;
  fine.est_bytes = 120.0;
  cache.Insert("idx", 0.01, coarse);
  cache.Insert("idx", 0.10, fine);
  const auto best = cache.LookupBest("idx", {0.01, 0.025, 0.05, 0.10});
  ASSERT_TRUE(best.has_value());
  EXPECT_DOUBLE_EQ(best->est_bytes, 120.0);
  EXPECT_FALSE(cache.Lookup("idx", 0.05).has_value());
  EXPECT_FALSE(cache.LookupBest("other", {0.01}).has_value());
}

}  // namespace
}  // namespace capd
