// Tests for the per-statement what-if cost cache: cached WorkloadCost must
// match the uncached optimizer to the bit on randomized configurations,
// and the relevance gates must mirror the optimizer's own usability rules.
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "optimizer/cost_cache.h"
#include "workloads/tpch.h"

namespace capd {
namespace {

class WhatIfCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tpch::Options opt;
    opt.lineitem_rows = 6000;
    tpch::Build(&db_, opt);
    workload_ = tpch::MakeWorkload(db_, opt);
    optimizer_ = std::make_unique<WhatIfOptimizer>(db_, CostModelParams{});
  }

  static PhysicalIndexEstimate Est(std::string table,
                                   std::vector<std::string> keys,
                                   CompressionKind kind, bool clustered,
                                   double bytes) {
    PhysicalIndexEstimate est;
    est.def.object = std::move(table);
    est.def.key_columns = std::move(keys);
    est.def.compression = kind;
    est.def.clustered = clustered;
    est.bytes = bytes;
    est.tuples = bytes / 64.0;
    return est;
  }

  // A deterministic pool of index estimates spanning every workload table,
  // several widths and compressions, plus a clustered index.
  std::vector<PhysicalIndexEstimate> CandidatePool() const {
    std::vector<PhysicalIndexEstimate> pool;
    pool.push_back(Est("lineitem", {"l_shipdate"}, CompressionKind::kRow,
                       false, 240000));
    pool.push_back(Est("lineitem", {"l_shipdate", "l_extendedprice"},
                       CompressionKind::kPage, false, 310000));
    pool.push_back(Est("lineitem", {"l_partkey", "l_extendedprice"},
                       CompressionKind::kNone, false, 380000));
    pool.push_back(Est("lineitem", {"l_orderkey", "l_quantity"},
                       CompressionKind::kRow, false, 300000));
    pool.push_back(
        Est("lineitem", {"l_shipdate"}, CompressionKind::kNone, true, 900000));
    pool.push_back(
        Est("orders", {"o_orderdate"}, CompressionKind::kRow, false, 90000));
    pool.push_back(
        Est("part", {"p_partkey"}, CompressionKind::kNone, false, 40000));
    pool.push_back(
        Est("part", {"p_brand", "p_type"}, CompressionKind::kPage, false,
            45000));
    pool.push_back(Est("supplier", {"s_acctbal", "s_name"},
                       CompressionKind::kRow, false, 20000));
    pool.push_back(Est("customer", {"c_acctbal", "c_nationkey"},
                       CompressionKind::kNone, false, 30000));
    return pool;
  }

  // Random subset of the pool (unique signatures), in random order.
  Configuration RandomConfig(const std::vector<PhysicalIndexEstimate>& pool,
                             Random* rng) const {
    std::vector<size_t> order(pool.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    for (size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng->Next(i)]);
    }
    const size_t n = rng->Next(pool.size() + 1);
    Configuration config;
    for (size_t i = 0; i < n; ++i) config.Add(pool[order[i]]);
    return config;
  }

  size_t StatementIndex(const std::string& id) const {
    for (size_t i = 0; i < workload_.statements.size(); ++i) {
      if (workload_.statements[i].id == id) return i;
    }
    ADD_FAILURE() << "no statement " << id;
    return 0;
  }

  Database db_;
  Workload workload_;
  std::unique_ptr<WhatIfOptimizer> optimizer_;
};

TEST_F(WhatIfCacheTest, CachedMatchesUncachedOnRandomConfigs) {
  StatementCostCache cache(db_, *optimizer_, workload_);
  const std::vector<PhysicalIndexEstimate> pool = CandidatePool();
  Random rng(20260729);
  for (int trial = 0; trial < 60; ++trial) {
    const Configuration config = RandomConfig(pool, &rng);
    const double cached = cache.WorkloadCost(config);
    const double direct = optimizer_->WorkloadCost(workload_, config);
    // memcmp, not ==: the criterion is bit-identical doubles.
    EXPECT_EQ(std::memcmp(&cached, &direct, sizeof(double)), 0)
        << "trial " << trial << " config " << config.ToString();
  }
  // The random-order configs revisit relevant subsequences, so the cache
  // must have produced hits — and every one of them matched bitwise above.
  EXPECT_GT(cache.hits(), 0u);
}

TEST_F(WhatIfCacheTest, RepeatedQueryIsServedFromCache) {
  StatementCostCache cache(db_, *optimizer_, workload_);
  const std::vector<PhysicalIndexEstimate> pool = CandidatePool();
  Configuration config;
  config.Add(pool[0]);
  config.Add(pool[5]);

  const double first = cache.WorkloadCost(config);
  const uint64_t misses_after_first = cache.misses();
  EXPECT_EQ(misses_after_first, workload_.statements.size());
  EXPECT_EQ(cache.hits(), 0u);

  const double second = cache.WorkloadCost(config);
  EXPECT_EQ(std::memcmp(&first, &second, sizeof(double)), 0);
  EXPECT_EQ(cache.misses(), misses_after_first);
  EXPECT_EQ(cache.hits(), workload_.statements.size());
}

TEST_F(WhatIfCacheTest, IrrelevantIndexReusesStatementCosts) {
  StatementCostCache cache(db_, *optimizer_, workload_);
  const std::vector<PhysicalIndexEstimate> pool = CandidatePool();
  Configuration config;
  config.Add(pool[0]);  // lineitem(l_shipdate)
  cache.WorkloadCost(config);
  const uint64_t misses_before = cache.misses();

  // Adding a supplier-only index can only affect statements that touch
  // supplier (Q2, Q5, Q11 in this workload) — everything else must hit.
  Configuration extended = config;
  extended.Add(pool[8]);
  const double cached = cache.WorkloadCost(extended);
  const double direct = optimizer_->WorkloadCost(workload_, extended);
  EXPECT_EQ(std::memcmp(&cached, &direct, sizeof(double)), 0);
  EXPECT_LT(cache.misses() - misses_before, workload_.statements.size() / 2);
}

TEST_F(WhatIfCacheTest, RelevanceMirrorsOptimizerGates) {
  StatementCostCache cache(db_, *optimizer_, workload_);
  const std::vector<PhysicalIndexEstimate> pool = CandidatePool();
  // Q1 reads lineitem only (l_returnflag/l_linestatus/l_quantity/
  // l_extendedprice/l_shipdate), no joins.
  const size_t q1 = StatementIndex("Q1");
  // Seekable: predicate on l_shipdate matches the leading key.
  EXPECT_TRUE(cache.Relevant(q1, pool[0].def));
  // Neither seekable nor covering for Q1: keyed on l_partkey.
  EXPECT_FALSE(cache.Relevant(q1, pool[2].def));
  // Clustered indexes replace the heap: always relevant on their table.
  EXPECT_TRUE(cache.Relevant(q1, pool[4].def));
  // Other tables never matter to Q1.
  EXPECT_FALSE(cache.Relevant(q1, pool[6].def));
  EXPECT_FALSE(cache.Relevant(q1, pool[8].def));

  // Q8 joins part on p_partkey: the part PK index serves index-NL.
  const size_t q8 = StatementIndex("Q8");
  EXPECT_TRUE(cache.Relevant(q8, pool[6].def));

  // A bulk INSERT maintains every index on the loaded table and nothing
  // else.
  const size_t bulk = StatementIndex("BULK_LINEITEM");
  EXPECT_TRUE(cache.Relevant(bulk, pool[2].def));
  EXPECT_TRUE(cache.Relevant(bulk, pool[4].def));
  EXPECT_FALSE(cache.Relevant(bulk, pool[6].def));
}

}  // namespace
}  // namespace capd
