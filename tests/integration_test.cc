// End-to-end integration tests: full pipeline over TPC-H and Sales with all
// features (partial indexes, MVs) enabled, checking the paper's qualitative
// claims hold in this implementation.
#include <gtest/gtest.h>

#include "advisor/advisor.h"
#include "workloads/sales.h"
#include "workloads/tpch.h"

namespace capd {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  void BuildTpch(uint64_t rows) {
    tpch::Options opt;
    opt.lineitem_rows = rows;
    tpch::Build(&db_, opt);
    workload_ = tpch::MakeWorkload(db_, opt);
    Wire();
  }

  void BuildSales(uint64_t rows) {
    sales::Options opt;
    opt.fact_rows = rows;
    sales::Build(&db_, opt);
    workload_ = sales::MakeWorkload(db_, opt);
    Wire();
  }

  void Wire() {
    samples_ = std::make_unique<SampleManager>(2024);
    mvs_ = std::make_unique<MVRegistry>(db_, samples_.get());
    optimizer_ = std::make_unique<WhatIfOptimizer>(db_, CostModelParams{});
    optimizer_->set_mv_matcher(mvs_.get());
    sizes_ = std::make_unique<SizeEstimator>(db_, mvs_.get(), ErrorModel(),
                                             SizeEstimationOptions{});
  }

  AdvisorResult Run(const AdvisorOptions& options, double budget_frac) {
    Advisor advisor(db_, *optimizer_, sizes_.get(), mvs_.get(), options);
    return advisor.Tune(workload_,
                        budget_frac * static_cast<double>(db_.BaseDataBytes()));
  }

  Database db_;
  Workload workload_;
  std::unique_ptr<SampleManager> samples_;
  std::unique_ptr<MVRegistry> mvs_;
  std::unique_ptr<WhatIfOptimizer> optimizer_;
  std::unique_ptr<SizeEstimator> sizes_;
};

TEST_F(IntegrationTest, TpchAllFeaturesImproves) {
  BuildTpch(2500);
  AdvisorOptions options = AdvisorOptions::DTAcBoth();
  options.enable_partial = true;
  options.enable_mv = true;
  const AdvisorResult result = Run(options, 0.5);
  EXPECT_GT(result.improvement_percent(), 20.0);
}

TEST_F(IntegrationTest, TpchMVIndexesGetPicked) {
  BuildTpch(2500);
  AdvisorOptions options = AdvisorOptions::DTAcBoth();
  options.enable_mv = true;
  const AdvisorResult result = Run(options, 1.0);
  size_t mv_indexes = 0;
  for (const PhysicalIndexEstimate& idx : result.config.indexes()) {
    if (mvs_->IsMV(idx.def.object)) ++mv_indexes;
  }
  EXPECT_GT(mv_indexes, 0u);  // MVs are extremely effective for GROUP BY
}

TEST_F(IntegrationTest, SalesDtacBeatsDtaAcrossBudgets) {
  BuildSales(2500);
  double total_dtac = 0, total_dta = 0;
  for (double frac : {0.1, 0.3}) {
    total_dtac += Run(AdvisorOptions::DTAcBoth(), frac).improvement_percent();
    total_dta += Run(AdvisorOptions::DTA(), frac).improvement_percent();
  }
  EXPECT_GE(total_dtac, total_dta - 1.0);
}

TEST_F(IntegrationTest, InsertIntensiveAvoidsHeavyCompression) {
  BuildSales(2500);
  AdvisorOptions options = AdvisorOptions::DTAcBoth();
  Advisor advisor(db_, *optimizer_, sizes_.get(), mvs_.get(), options);
  const double budget = 0.6 * static_cast<double>(db_.BaseDataBytes());
  const AdvisorResult insert_heavy =
      advisor.Tune(workload_.WithInsertWeight(80.0), budget);
  const AdvisorResult select_heavy =
      advisor.Tune(workload_.WithInsertWeight(0.05), budget);
  size_t ih_page = 0, sh_page = 0;
  for (const auto& idx : insert_heavy.config.indexes()) {
    if (idx.def.compression == CompressionKind::kPage) ++ih_page;
  }
  for (const auto& idx : select_heavy.config.indexes()) {
    if (idx.def.compression == CompressionKind::kPage) ++sh_page;
  }
  // DTAc is "aware of the overheads of compressed indexes" (Section 7.1):
  // it must not compress more under the INSERT-heavy workload.
  EXPECT_LE(ih_page, sh_page + 1);
}

TEST_F(IntegrationTest, DeterministicAcrossRuns) {
  BuildTpch(1500);
  const AdvisorResult a = Run(AdvisorOptions::DTAcBoth(), 0.3);
  // Fresh stack, same seeds.
  Database db2;
  tpch::Options opt;
  opt.lineitem_rows = 1500;
  tpch::Build(&db2, opt);
  SampleManager samples2(2024);
  MVRegistry mvs2(db2, &samples2);
  WhatIfOptimizer opt2(db2, CostModelParams{});
  opt2.set_mv_matcher(&mvs2);
  SizeEstimator sizes2(db2, &mvs2, ErrorModel(), SizeEstimationOptions{});
  Advisor advisor2(db2, opt2, &sizes2, &mvs2, AdvisorOptions::DTAcBoth());
  const AdvisorResult b = advisor2.Tune(
      tpch::MakeWorkload(db2, opt),
      0.3 * static_cast<double>(db2.BaseDataBytes()));
  EXPECT_DOUBLE_EQ(a.final_cost, b.final_cost);
  EXPECT_EQ(a.config.size(), b.config.size());
}

TEST_F(IntegrationTest, ZeroBudgetStillTunableViaCompressedClustered) {
  BuildTpch(1500);
  AdvisorOptions options = AdvisorOptions::DTAcBoth();
  const AdvisorResult result = Run(options, 0.0);
  // "DTAc might produce indexes even with 0% space budget by compressing
  // existing tables" (Appendix D.2). At minimum it must not regress.
  EXPECT_GE(result.improvement_percent(), 0.0);
  EXPECT_LE(result.charged_bytes, 1.0);
}

}  // namespace
}  // namespace capd
