// Tests for the physical-design tool: candidate generation, skyline
// selection, enumeration with backtracking, and the DTA/DTAc presets.
#include <gtest/gtest.h>

#include "advisor/advisor.h"
#include "workloads/tpch.h"

namespace capd {
namespace {

class AdvisorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tpch::Options opt;
    opt.lineitem_rows = 3000;
    tpch::Build(&db_, opt);
    workload_ = tpch::MakeWorkload(db_, opt);
    samples_ = std::make_unique<SampleManager>(99);
    source_ = std::make_unique<TableSampleSource>(db_, samples_.get());
    optimizer_ = std::make_unique<WhatIfOptimizer>(db_, CostModelParams{});
    sizes_ = std::make_unique<SizeEstimator>(db_, source_.get(), ErrorModel(),
                                             SizeEstimationOptions{});
  }

  AdvisorResult Run(AdvisorOptions options, double budget_frac) {
    Advisor advisor(db_, *optimizer_, sizes_.get(), nullptr, options);
    return advisor.Tune(workload_,
                        budget_frac * static_cast<double>(db_.BaseDataBytes()));
  }

  Database db_;
  Workload workload_;
  std::unique_ptr<SampleManager> samples_;
  std::unique_ptr<TableSampleSource> source_;
  std::unique_ptr<WhatIfOptimizer> optimizer_;
  std::unique_ptr<SizeEstimator> sizes_;
};

TEST_F(AdvisorTest, CandidatesGeneratedForQueries) {
  AdvisorOptions options = AdvisorOptions::DTAcBoth();
  CandidateGenerator generator(db_, *optimizer_, nullptr, options);
  const std::vector<IndexDef> candidates =
      generator.GenerateForWorkload(workload_);
  EXPECT_GT(candidates.size(), 50u);
  // Variants present: both structures (kNone) and compressed versions.
  size_t compressed = 0;
  for (const IndexDef& d : candidates) {
    if (d.compression != CompressionKind::kNone) ++compressed;
  }
  EXPECT_GT(compressed, candidates.size() / 2);
}

TEST_F(AdvisorTest, DtaGeneratesNoCompressedCandidates) {
  AdvisorOptions options = AdvisorOptions::DTA();
  CandidateGenerator generator(db_, *optimizer_, nullptr, options);
  for (const IndexDef& d : generator.GenerateForWorkload(workload_)) {
    EXPECT_EQ(d.compression, CompressionKind::kNone);
  }
}

TEST_F(AdvisorTest, TuningImprovesWorkload) {
  const AdvisorResult result = Run(AdvisorOptions::DTAcBoth(), 0.5);
  EXPECT_GT(result.improvement_percent(), 10.0);
  EXPECT_GT(result.config.size(), 0u);
}

TEST_F(AdvisorTest, BudgetRespected) {
  for (double frac : {0.05, 0.2, 0.6}) {
    const double budget = frac * static_cast<double>(db_.BaseDataBytes());
    AdvisorOptions options = AdvisorOptions::DTAcBoth();
    Advisor advisor(db_, *optimizer_, sizes_.get(), nullptr, options);
    const AdvisorResult result = advisor.Tune(workload_, budget);
    EXPECT_LE(result.charged_bytes, budget + 1.0) << "frac=" << frac;
  }
}

TEST_F(AdvisorTest, LargerBudgetNeverHurts) {
  const AdvisorResult tight = Run(AdvisorOptions::DTAcBoth(), 0.05);
  const AdvisorResult loose = Run(AdvisorOptions::DTAcBoth(), 0.8);
  EXPECT_GE(loose.improvement_percent(), tight.improvement_percent() - 1.0);
}

TEST_F(AdvisorTest, DTAcBeatsDtaUnderTightBudget) {
  const AdvisorResult dta = Run(AdvisorOptions::DTA(), 0.08);
  const AdvisorResult dtac = Run(AdvisorOptions::DTAcBoth(), 0.08);
  EXPECT_GE(dtac.improvement_percent(), dta.improvement_percent() - 0.5);
}

TEST_F(AdvisorTest, CompressedIndexesAppearInTightBudgets) {
  const AdvisorResult result = Run(AdvisorOptions::DTAcBoth(), 0.06);
  size_t compressed = 0;
  for (const PhysicalIndexEstimate& idx : result.config.indexes()) {
    if (idx.def.compression != CompressionKind::kNone) ++compressed;
  }
  EXPECT_GT(compressed, 0u);
}

TEST_F(AdvisorTest, InsertHeavyWorkloadGetsFewerIndexes) {
  AdvisorOptions options = AdvisorOptions::DTAcBoth();
  Advisor advisor(db_, *optimizer_, sizes_.get(), nullptr, options);
  const double budget = 0.5 * static_cast<double>(db_.BaseDataBytes());
  const AdvisorResult select_heavy =
      advisor.Tune(workload_.WithInsertWeight(0.1), budget);
  const AdvisorResult insert_heavy =
      advisor.Tune(workload_.WithInsertWeight(50.0), budget);
  EXPECT_LE(insert_heavy.config.size(), select_heavy.config.size());
}

TEST_F(AdvisorTest, SkylineKeepsMoreCandidatesThanTopK) {
  AdvisorResult topk = Run(AdvisorOptions::DTAcNone(), 0.3);
  AdvisorResult skyline = Run(AdvisorOptions::DTAcSkyline(), 0.3);
  EXPECT_GE(skyline.num_candidates, topk.num_candidates);
}

TEST_F(AdvisorTest, EstimationBookkeepingFilled) {
  const AdvisorResult result = Run(AdvisorOptions::DTAcBoth(), 0.3);
  EXPECT_GT(result.estimation_cost_pages, 0.0);
  EXPECT_GT(result.chosen_f, 0.0);
  EXPECT_GT(result.what_if_calls, 100u);
  EXPECT_GT(result.num_sampled + result.num_deduced, 0u);
}

TEST_F(AdvisorTest, ChargedBytesDiscountsClusteredHeap) {
  AdvisorOptions options = AdvisorOptions::DTAcBoth();
  Advisor advisor(db_, *optimizer_, sizes_.get(), nullptr, options);
  IndexDef clustered;
  clustered.object = "lineitem";
  clustered.key_columns = {"l_shipdate"};
  clustered.clustered = true;
  clustered.compression = CompressionKind::kPage;
  PhysicalIndexEstimate est;
  est.def = clustered;
  est.bytes = 0.5 * static_cast<double>(db_.table("lineitem").HeapBytes());
  est.tuples = 3000;
  Configuration config;
  config.Add(est);
  // A compressed clustered index smaller than the heap charges negative.
  EXPECT_LT(advisor.ChargedBytes(config), 0.0);
}

TEST_F(AdvisorTest, StagedBaselineNoBetterThanIntegrated) {
  AdvisorOptions options = AdvisorOptions::DTAcBoth();
  Advisor advisor(db_, *optimizer_, sizes_.get(), nullptr, options);
  const double budget = 0.25 * static_cast<double>(db_.BaseDataBytes());
  const AdvisorResult integrated = advisor.Tune(workload_, budget);
  const AdvisorResult staged =
      advisor.TuneStagedBaseline(workload_, budget, CompressionKind::kPage);
  EXPECT_GE(integrated.improvement_percent(),
            staged.improvement_percent() - 1.0);
}

TEST_F(AdvisorTest, MergingProducesWiderIndexes) {
  AdvisorOptions options = AdvisorOptions::DTAcBoth();
  CandidateGenerator generator(db_, *optimizer_, nullptr, options);
  std::vector<IndexDef> selected;
  IndexDef a, b;
  a.object = "lineitem";
  a.key_columns = {"l_shipdate"};
  a.include_columns = {"l_extendedprice"};
  b.object = "lineitem";
  b.key_columns = {"l_shipdate", "l_shipmode"};
  b.include_columns = {"l_quantity"};
  selected = {a, b};
  const std::vector<IndexDef> merged = generator.MergeCandidates(selected);
  ASSERT_GT(merged.size(), 0u);
  const IndexDef& m = merged[0];
  EXPECT_EQ(m.key_columns, b.key_columns);  // longer key wins
  const auto stored = m.StoredColumns(db_.table("lineitem").schema());
  EXPECT_NE(std::find(stored.begin(), stored.end(), "l_extendedprice"),
            stored.end());
  EXPECT_NE(std::find(stored.begin(), stored.end(), "l_quantity"), stored.end());
}

}  // namespace
}  // namespace capd
