// Property-based sweeps (TEST_P) over invariants that must hold for every
// codec, data distribution, and index shape — the "no matter what you feed
// it" guarantees the rest of the system builds on.
#include <algorithm>
#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "common/random.h"
#include "compress/codec_factory.h"
#include "estimator/sample_cf.h"
#include "index/index_builder.h"
#include "stats/column_stats.h"

namespace capd {
namespace {

enum class Distribution { kUniform, kZipfish, kConstant, kSequential };

const char* DistributionName(Distribution d) {
  switch (d) {
    case Distribution::kUniform:
      return "Uniform";
    case Distribution::kZipfish:
      return "Zipfish";
    case Distribution::kConstant:
      return "Constant";
    case Distribution::kSequential:
      return "Sequential";
  }
  return "?";
}

Table MakeTable(Distribution dist, int n, uint64_t seed) {
  Random rng(seed);
  Table t("t", Schema({{"a", ValueType::kInt64, 8},
                       {"s", ValueType::kString, 10},
                       {"d", ValueType::kDouble, 8}}));
  const char* kWords[] = {"aa", "bb", "cc", "dd", "ee", "ff"};
  for (int i = 0; i < n; ++i) {
    int64_t a = 0;
    std::string s;
    switch (dist) {
      case Distribution::kUniform:
        a = rng.Uniform(0, 1000000);
        s = kWords[rng.Next(6)];
        break;
      case Distribution::kZipfish:
        a = static_cast<int64_t>(std::pow(static_cast<double>(rng.Uniform(1, 1000)), 2.0));
        s = kWords[rng.Next(2)];
        break;
      case Distribution::kConstant:
        a = 7;
        s = "aa";
        break;
      case Distribution::kSequential:
        a = i;
        s = kWords[static_cast<size_t>(i) % 6];
        break;
    }
    t.AddRow({Value::Int64(a), Value::String(s),
              Value::Double(static_cast<double>(a) / 3.0)});
  }
  return t;
}

using CodecCase = std::tuple<CompressionKind, Distribution>;

class CodecProperty : public ::testing::TestWithParam<CodecCase> {};

// Invariant: every codec round-trips every distribution exactly.
TEST_P(CodecProperty, RoundTripAnyDistribution) {
  const auto [kind, dist] = GetParam();
  const Table t = MakeTable(dist, 300, 5);
  const Schema& schema = t.schema();
  std::unique_ptr<Codec> codec = MakeCodec(kind, schema, t.rows());
  const EncodedPage page = EncodeRows(t.rows(), schema, 0, t.num_rows());
  const EncodedPage back = codec->DecompressPage(codec->CompressPage(page));
  ASSERT_EQ(back.rows.size(), page.rows.size());
  for (size_t i = 0; i < page.rows.size(); ++i) {
    EXPECT_EQ(back.rows[i], page.rows[i]) << "row " << i;
  }
}

// Invariant: a compressed index is never larger than the uncompressed one
// by more than the per-page/dictionary framing overhead.
TEST_P(CodecProperty, CompressedNeverMuchLarger) {
  const auto [kind, dist] = GetParam();
  if (kind == CompressionKind::kNone) GTEST_SKIP();
  const Table t = MakeTable(dist, 1500, 9);
  IndexBuilder builder(t);
  IndexDef def;
  def.object = "t";
  def.key_columns = {"a", "s"};
  def.compression = kind;
  const uint64_t compressed = builder.Build(def).fine_bytes();
  const uint64_t plain =
      builder.Build(def.WithCompression(CompressionKind::kNone)).fine_bytes();
  // Generous framing allowance: 30% + a page.
  EXPECT_LE(compressed, plain + plain / 3 + kPageSize)
      << CompressionKindName(kind) << "/" << DistributionName(dist);
}

// Invariant: constant data compresses dramatically under every method.
TEST_P(CodecProperty, ConstantDataCompressesHard) {
  const auto [kind, dist] = GetParam();
  if (kind == CompressionKind::kNone || dist != Distribution::kConstant) {
    GTEST_SKIP();
  }
  const Table t = MakeTable(dist, 2000, 11);
  IndexBuilder builder(t);
  IndexDef def;
  def.object = "t";
  def.key_columns = {"a", "s", "d"};
  def.compression = kind;
  const double cf = builder.TrueCompressionFraction(def);
  // The incompressible row locator and per-field NS headers set the floor;
  // dictionary-style methods squeeze the duplicate payloads hardest.
  EXPECT_LT(cf, 0.75) << CompressionKindName(kind);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CodecProperty,
    ::testing::Combine(::testing::Values(CompressionKind::kNone,
                                         CompressionKind::kRow,
                                         CompressionKind::kPage,
                                         CompressionKind::kGlobalDict,
                                         CompressionKind::kRle),
                       ::testing::Values(Distribution::kUniform,
                                         Distribution::kZipfish,
                                         Distribution::kConstant,
                                         Distribution::kSequential)),
    [](const auto& info) {
      std::string n = CompressionKindName(std::get<0>(info.param));
      n.erase(std::remove_if(n.begin(), n.end(),
                             [](char c) { return !std::isalnum(static_cast<unsigned char>(c)); }),
              n.end());
      return n + "_" + DistributionName(std::get<1>(info.param));
    });

// Invariant: ORD-IND methods produce identical sizes for any key
// permutation of the same column set, on every distribution.
class OrdIndProperty : public ::testing::TestWithParam<Distribution> {};

TEST_P(OrdIndProperty, PermutationInvariance) {
  const Table t = MakeTable(GetParam(), 2000, 21);
  IndexBuilder builder(t);
  for (CompressionKind kind :
       {CompressionKind::kRow, CompressionKind::kGlobalDict}) {
    IndexDef abc, cab;
    abc.object = cab.object = "t";
    abc.compression = cab.compression = kind;
    abc.key_columns = {"a", "s", "d"};
    cab.key_columns = {"d", "a", "s"};
    EXPECT_EQ(builder.Build(abc).fine_bytes(), builder.Build(cab).fine_bytes())
        << CompressionKindName(kind);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, OrdIndProperty,
                         ::testing::Values(Distribution::kUniform,
                                           Distribution::kZipfish,
                                           Distribution::kSequential),
                         [](const auto& info) {
                           return DistributionName(info.param);
                         });

// Invariant: SampleCF's estimate lands within a sane band of the truth on
// every distribution/codec combination (wide tolerance; tight accuracy is
// covered statistically by bench_fig09).
class SampleCfProperty
    : public ::testing::TestWithParam<std::tuple<CompressionKind, Distribution>> {};

TEST_P(SampleCfProperty, EstimateWithinBand) {
  const auto [kind, dist] = GetParam();
  Database db;
  db.AddTable(std::make_unique<Table>(MakeTable(dist, 4000, 33)));
  SampleManager samples(77);
  TableSampleSource source(db, &samples);
  SampleCfEstimator estimator(db, &source);
  IndexDef def;
  def.object = "t";
  def.key_columns = {"a", "s"};
  def.compression = kind;
  const SampleCfResult r = estimator.Estimate(def, 0.1);
  IndexBuilder builder(db.table("t"));
  const double truth = static_cast<double>(builder.Build(def).fine_bytes());
  EXPECT_GT(r.est_bytes, truth * 0.5)
      << CompressionKindName(kind) << "/" << DistributionName(dist);
  EXPECT_LT(r.est_bytes, truth * 1.9)
      << CompressionKindName(kind) << "/" << DistributionName(dist);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SampleCfProperty,
    ::testing::Combine(::testing::Values(CompressionKind::kRow,
                                         CompressionKind::kPage,
                                         CompressionKind::kRle),
                       ::testing::Values(Distribution::kUniform,
                                         Distribution::kZipfish,
                                         Distribution::kSequential)),
    [](const auto& info) {
      std::string n = CompressionKindName(std::get<0>(info.param));
      n.erase(std::remove_if(n.begin(), n.end(),
                             [](char c) { return !std::isalnum(static_cast<unsigned char>(c)); }),
              n.end());
      return n + "_" + DistributionName(std::get<1>(info.param));
    });

// Invariant: histogram CDF is monotone and normalized for arbitrary data.
class HistogramProperty : public ::testing::TestWithParam<Distribution> {};

TEST_P(HistogramProperty, MonotoneNormalizedCdf) {
  const Table t = MakeTable(GetParam(), 3000, 55);
  std::vector<double> keys;
  for (const Row& r : t.rows()) keys.push_back(r[0].NumericKey());
  Histogram h = Histogram::Build(keys, 32);
  double prev = 0.0;
  const double span = h.max() - h.min();
  for (int i = 0; i <= 20; ++i) {
    const double x = h.min() + span * static_cast<double>(i) / 20.0;
    const double cdf = h.SelectivityLe(x);
    EXPECT_GE(cdf, prev - 1e-9);
    EXPECT_GE(cdf, 0.0);
    EXPECT_LE(cdf, 1.0 + 1e-9);
    prev = cdf;
  }
  EXPECT_NEAR(h.SelectivityLe(h.max()), 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, HistogramProperty,
                         ::testing::Values(Distribution::kUniform,
                                           Distribution::kZipfish,
                                           Distribution::kConstant,
                                           Distribution::kSequential),
                         [](const auto& info) {
                           return DistributionName(info.param);
                         });

// Invariant: index build is deterministic (same rows -> same sizes).
TEST(BuilderProperty, Deterministic) {
  for (Distribution d : {Distribution::kUniform, Distribution::kZipfish}) {
    const Table t1 = MakeTable(d, 2500, 66);
    const Table t2 = MakeTable(d, 2500, 66);
    IndexBuilder b1(t1), b2(t2);
    IndexDef def;
    def.object = "t";
    def.key_columns = {"s", "a"};
    def.compression = CompressionKind::kPage;
    EXPECT_EQ(b1.Build(def).fine_bytes(), b2.Build(def).fine_bytes());
  }
}

// Invariant: more rows never shrink an index.
TEST(BuilderProperty, MonotoneInRows) {
  IndexDef def;
  def.object = "t";
  def.key_columns = {"a"};
  def.compression = CompressionKind::kRow;
  uint64_t prev = 0;
  for (int n : {500, 1000, 2000, 4000}) {
    const Table t = MakeTable(Distribution::kUniform, n, 88);
    IndexBuilder builder(t);
    const uint64_t bytes = builder.Build(def).fine_bytes();
    EXPECT_GE(bytes, prev);
    prev = bytes;
  }
}

// Invariant: a partial index is never larger than its full counterpart.
TEST(BuilderProperty, PartialSubsetOfFull) {
  const Table t = MakeTable(Distribution::kUniform, 3000, 99);
  IndexBuilder builder(t);
  IndexDef full;
  full.object = "t";
  full.key_columns = {"a"};
  full.compression = CompressionKind::kRow;
  IndexDef partial = full;
  partial.filter = ColumnFilter{"a", FilterOp::kLt, Value::Int64(300000), {}};
  EXPECT_LE(builder.Build(partial).fine_bytes(),
            builder.Build(full).fine_bytes());
  EXPECT_LT(builder.Build(partial).tuples, builder.Build(full).tuples);
}

}  // namespace
}  // namespace capd
