// Tests for DDL generation and the tuning report.
#include <gtest/gtest.h>

#include "advisor/report.h"
#include "workloads/tpch.h"

namespace capd {
namespace {

IndexDef MakeDef() {
  IndexDef def;
  def.object = "lineitem";
  def.key_columns = {"l_shipdate", "l_shipmode"};
  def.include_columns = {"l_extendedprice"};
  def.compression = CompressionKind::kPage;
  return def;
}

TEST(ReportTest, CreateIndexBasics) {
  const std::string sql = ToCreateIndexSql(MakeDef(), "ix1");
  EXPECT_EQ(sql,
            "CREATE NONCLUSTERED INDEX ix1 ON lineitem (l_shipdate, "
            "l_shipmode) INCLUDE (l_extendedprice) WITH (DATA_COMPRESSION = "
            "PAGE);");
}

TEST(ReportTest, CreateIndexClusteredNoCompression) {
  IndexDef def = MakeDef();
  def.clustered = true;
  def.include_columns.clear();
  def.compression = CompressionKind::kNone;
  const std::string sql = ToCreateIndexSql(def, "cix");
  EXPECT_EQ(sql,
            "CREATE CLUSTERED INDEX cix ON lineitem (l_shipdate, l_shipmode);");
}

TEST(ReportTest, CreateIndexFilteredWithDate) {
  IndexDef def = MakeDef();
  def.include_columns.clear();
  def.compression = CompressionKind::kRow;
  def.filter = ColumnFilter{"l_shipdate", FilterOp::kGe, Value::Date(10957), {}};
  const std::string sql = ToCreateIndexSql(def, "fix");
  EXPECT_NE(sql.find("WHERE l_shipdate >= '2000-01-01'"), std::string::npos);
  EXPECT_NE(sql.find("DATA_COMPRESSION = ROW"), std::string::npos);
}

TEST(ReportTest, CreateIndexStringLiteralQuoted) {
  IndexDef def = MakeDef();
  def.filter = ColumnFilter{"l_shipmode", FilterOp::kEq, Value::String("AIR"), {}};
  EXPECT_NE(ToCreateIndexSql(def, "i").find("l_shipmode = 'AIR'"),
            std::string::npos);
}

TEST(ReportTest, CreateViewSql) {
  MVDef def;
  def.name = "mv_rev";
  def.fact_table = "lineitem";
  def.joins = {{"part", "l_partkey", "p_partkey"}};
  def.group_by = {"p_brand"};
  def.aggregates = {{"l_extendedprice", "SUM"}};
  def.predicates = {{"l_quantity", FilterOp::kLt, Value::Int64(10), {}}};
  const std::string sql = ToCreateViewSql(def);
  EXPECT_NE(sql.find("CREATE VIEW mv_rev"), std::string::npos);
  EXPECT_NE(sql.find("SUM(l_extendedprice) AS sum_l_extendedprice"),
            std::string::npos);
  EXPECT_NE(sql.find("JOIN part ON lineitem.l_partkey = part.p_partkey"),
            std::string::npos);
  EXPECT_NE(sql.find("WHERE l_quantity < 10"), std::string::npos);
  EXPECT_NE(sql.find("GROUP BY p_brand"), std::string::npos);
  EXPECT_NE(sql.find("COUNT_BIG(*)"), std::string::npos);
}

TEST(ReportTest, FullReportEndToEnd) {
  Database db;
  tpch::Options opt;
  opt.lineitem_rows = 1500;
  tpch::Build(&db, opt);
  const Workload w = tpch::MakeWorkload(db, opt);
  SampleManager samples(5);
  TableSampleSource source(db, &samples);
  WhatIfOptimizer optimizer(db, CostModelParams{});
  SizeEstimator sizes(db, &source, ErrorModel(), SizeEstimationOptions{});
  Advisor advisor(db, optimizer, &sizes, nullptr, AdvisorOptions::DTAcBoth());
  const double budget = 0.4 * static_cast<double>(db.BaseDataBytes());
  const AdvisorResult result = advisor.Tune(w, budget);

  const std::string report = RenderTuningReport(result, nullptr, budget);
  EXPECT_NE(report.find("capd tuning report"), std::string::npos);
  EXPECT_NE(report.find("improvement"), std::string::npos);
  if (result.config.size() > 0) {
    EXPECT_NE(report.find("CREATE "), std::string::npos);
    EXPECT_NE(report.find("capd_ix_1"), std::string::npos);
  }
}

TEST(ReportTest, EmptyRecommendationReported) {
  AdvisorResult result;
  result.initial_cost = 100;
  result.final_cost = 100;
  const std::string report = RenderTuningReport(result, nullptr, 0.0);
  EXPECT_NE(report.find("no objects recommended"), std::string::npos);
}

}  // namespace
}  // namespace capd
