// Tests for the size-estimation framework: SampleCF, deductions, error
// model, and the Section 5.2 graph search.
#include <cmath>

#include <gtest/gtest.h>

#include "estimator/size_estimator.h"
#include "index/index_builder.h"
#include "workloads/tpch.h"

namespace capd {
namespace {

class EstimatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tpch::Options opt;
    opt.lineitem_rows = 6000;
    tpch::Build(&db_, opt);
    samples_ = std::make_unique<SampleManager>(1234);
    source_ = std::make_unique<TableSampleSource>(db_, samples_.get());
  }

  IndexDef Idx(std::vector<std::string> keys,
               CompressionKind kind = CompressionKind::kRow,
               std::vector<std::string> includes = {}) {
    IndexDef def;
    def.object = "lineitem";
    def.key_columns = std::move(keys);
    def.include_columns = std::move(includes);
    def.compression = kind;
    return def;
  }

  double TrueBytes(const IndexDef& def) {
    IndexBuilder builder(db_.table(def.object));
    return static_cast<double>(builder.Build(def).fine_bytes());
  }

  Database db_;
  std::unique_ptr<SampleManager> samples_;
  std::unique_ptr<TableSampleSource> source_;
};

TEST_F(EstimatorTest, SampleCfCloseToTruth) {
  SampleCfEstimator estimator(db_, source_.get());
  for (CompressionKind kind : {CompressionKind::kRow, CompressionKind::kPage}) {
    const IndexDef def = Idx({"l_shipdate", "l_shipmode"}, kind);
    const SampleCfResult r = estimator.Estimate(def, 0.1);
    const double truth = TrueBytes(def);
    EXPECT_LT(std::abs(r.est_bytes - truth) / truth, 0.35)
        << CompressionKindName(kind) << " est=" << r.est_bytes
        << " true=" << truth;
  }
}

TEST_F(EstimatorTest, SampleCfTuplesForPartialIndex) {
  SampleCfEstimator estimator(db_, source_.get());
  IndexDef def = Idx({"l_quantity"});
  def.filter = ColumnFilter{"l_quantity", FilterOp::kLt, Value::Int64(10), {}};
  const SampleCfResult r = estimator.Estimate(def, 0.1);
  // quantity uniform on [1,50): ~18% under 10.
  EXPECT_GT(r.est_tuples, 0.08 * 6000);
  EXPECT_LT(r.est_tuples, 0.35 * 6000);
}

TEST_F(EstimatorTest, SampleCfCostScalesWithWidthAndFraction) {
  SampleCfEstimator estimator(db_, source_.get());
  const double narrow = estimator.PredictCostPages(Idx({"l_shipdate"}), 0.05);
  const double wide = estimator.PredictCostPages(
      Idx({"l_shipdate"}, CompressionKind::kRow,
          {"l_extendedprice", "l_discount", "l_quantity", "l_shipmode"}),
      0.05);
  const double narrow_big = estimator.PredictCostPages(Idx({"l_shipdate"}), 0.1);
  EXPECT_LT(narrow, wide);
  EXPECT_LT(narrow, narrow_big);
}

TEST_F(EstimatorTest, ErrorModelShrinksWithF) {
  const ErrorModel model;
  const ErrorStats coarse = model.SampleCf(CompressionKind::kPage, 0.01);
  const ErrorStats fine = model.SampleCf(CompressionKind::kPage, 0.10);
  EXPECT_GT(std::abs(coarse.bias), std::abs(fine.bias));
  EXPECT_GT(coarse.variance, fine.variance);
  const ErrorStats full = model.SampleCf(CompressionKind::kPage, 1.0);
  EXPECT_DOUBLE_EQ(full.bias, 0.0);
  EXPECT_DOUBLE_EQ(full.variance, 0.0);
}

TEST_F(EstimatorTest, ErrorModelDeductionGrowsWithA) {
  const ErrorModel model;
  const ErrorStats a2 = model.ColExt(CompressionKind::kRow, 2);
  const ErrorStats a4 = model.ColExt(CompressionKind::kRow, 4);
  EXPECT_LT(std::abs(a2.bias), std::abs(a4.bias));
  EXPECT_LT(a2.variance, a4.variance);
  // LD deductions are worse than NS (Table 3).
  EXPECT_GT(std::abs(model.ColExt(CompressionKind::kPage, 2).bias),
            std::abs(a2.bias));
}

TEST_F(EstimatorTest, ComposeErrorsAccumulates) {
  const ErrorStats one{0.01, 0.001};
  const ErrorStats composed = ComposeErrors({one, one, one});
  EXPECT_GT(composed.bias, 0.029);
  EXPECT_GT(composed.variance, 0.0029);
}

TEST_F(EstimatorTest, LocatorReductionMonotoneInN) {
  // Locator savings per tuple shrink as ids get larger.
  EXPECT_GT(LocatorReductionPerTuple(100), LocatorReductionPerTuple(100000));
  EXPECT_GT(LocatorReductionPerTuple(100), 0.0);
  EXPECT_LE(LocatorReductionPerTuple(1e18), 7.0);
}

TEST_F(EstimatorTest, ColExtDeductionOrdIndAccurate) {
  // Deduce size of (l_shipdate, l_shipmode) from singleton indexes; check
  // against ground truth within the paper's coarse tolerance.
  SampleCfEstimator estimator(db_, source_.get());
  DeductionEngine engine(db_, source_.get(), 0.1);

  const IndexDef target = Idx({"l_shipdate", "l_shipmode"}, CompressionKind::kRow);
  std::vector<KnownSize> children;
  for (const std::string col : {"l_shipdate", "l_shipmode"}) {
    const IndexDef child = Idx({col}, CompressionKind::kRow);
    const SampleCfResult r = estimator.Estimate(child, 0.1);
    children.push_back(KnownSize{child, r.est_bytes, r.est_uncompressed_bytes,
                                 r.est_ns_bytes, r.est_tuples});
  }
  const double u = estimator.UncompressedFullBytes(target, 6000);
  const double deduced = engine.DeduceColExt(target, u, 6000, children);
  const double truth = TrueBytes(target);
  EXPECT_LT(std::abs(deduced - truth) / truth, 0.5)
      << "deduced=" << deduced << " true=" << truth;
}

TEST_F(EstimatorTest, ColExtOrdDepPenalizesFragmentation) {
  // For local-dictionary compression, the trailing column's reduction must
  // be penalized: deduced size of (random-ish leading, compressible
  // trailing) must exceed naive sum-of-reductions.
  SampleCfEstimator estimator(db_, source_.get());
  DeductionEngine engine(db_, source_.get(), 0.1);

  const IndexDef target = Idx({"l_partkey", "l_shipmode"}, CompressionKind::kPage);
  std::vector<KnownSize> children;
  double naive_reduction = 0.0;
  for (const std::string col : {"l_partkey", "l_shipmode"}) {
    const IndexDef child = Idx({col}, CompressionKind::kPage);
    const SampleCfResult r = estimator.Estimate(child, 0.1);
    children.push_back(KnownSize{child, r.est_bytes, r.est_uncompressed_bytes,
                                 r.est_ns_bytes, r.est_tuples});
    naive_reduction += r.est_uncompressed_bytes - r.est_bytes;
  }
  const double u = estimator.UncompressedFullBytes(target, 6000);
  const double deduced = engine.DeduceColExt(target, u, 6000, children);
  EXPECT_GT(deduced, u - naive_reduction - 1.0);
}

TEST_F(EstimatorTest, DistinctEstimateReasonable) {
  DeductionEngine engine(db_, source_.get(), 0.1);
  const double d = engine.EstimateDistinct("lineitem", {"l_shipmode"});
  EXPECT_NEAR(d, 7.0, 1.5);
}

TEST_F(EstimatorTest, GraphGreedyNeverCostsMoreThanAll) {
  EstimationGraph graph(db_, source_.get(), ErrorModel());
  std::vector<IndexDef> targets = {
      Idx({"l_shipdate"}), Idx({"l_shipdate", "l_shipmode"}),
      Idx({"l_shipdate", "l_shipmode", "l_quantity"}),
      Idx({"l_partkey", "l_suppkey"})};
  graph.AddTargets(targets);
  for (double f : {0.01, 0.05, 0.1}) {
    const double greedy = graph.Greedy(f, 0.5, 0.9);
    const double all = graph.AllSampledCost(f);
    EXPECT_LE(greedy, all + 1e-9) << "f=" << f;
  }
}

TEST_F(EstimatorTest, GraphGreedyUsesDeductionWhenLoose) {
  EstimationGraph graph(db_, source_.get(), ErrorModel());
  graph.AddTargets({Idx({"l_shipdate"}), Idx({"l_shipmode"}),
                    Idx({"l_shipdate", "l_shipmode"})});
  graph.Greedy(0.05, /*e=*/1.0, /*q=*/0.8);  // loose constraint
  EXPECT_GE(graph.NumDeduced(), 1u);
}

TEST_F(EstimatorTest, GraphTightConstraintForcesSampling) {
  EstimationGraph graph(db_, source_.get(), ErrorModel());
  graph.AddTargets({Idx({"l_shipdate", "l_shipmode"}, CompressionKind::kPage)});
  graph.Greedy(0.05, /*e=*/0.02, /*q=*/0.99);  // nearly impossible via deduction
  EXPECT_EQ(graph.NumDeduced(), 0u);
  EXPECT_GE(graph.NumSampled(), 1u);
}

TEST_F(EstimatorTest, GraphColSetDeductionForPermutation) {
  EstimationGraph graph(db_, source_.get(), ErrorModel());
  graph.AddTargets({Idx({"l_shipdate", "l_shipmode"}),
                    Idx({"l_shipmode", "l_shipdate"})});
  graph.Greedy(0.05, 0.5, 0.9);
  // One gets sampled (or deduced from singletons); the permutation should
  // ride for free via ColSet.
  EXPECT_GE(graph.NumDeduced(), 1u);
  const auto estimates = graph.Execute(0.05);
  ASSERT_EQ(estimates.size(), 2u);
  const double a = estimates.begin()->second.est_bytes;
  const double b = std::next(estimates.begin())->second.est_bytes;
  EXPECT_NEAR(a, b, 1.0);  // identical by construction
}

TEST_F(EstimatorTest, GraphExecuteCoversAllTargets) {
  EstimationGraph graph(db_, source_.get(), ErrorModel());
  std::vector<IndexDef> targets = {
      Idx({"l_shipdate"}), Idx({"l_quantity", "l_discount"}),
      Idx({"l_shipdate", "l_shipmode", "l_quantity"}, CompressionKind::kPage)};
  graph.AddTargets(targets);
  graph.Greedy(0.05, 0.5, 0.9);
  const auto estimates = graph.Execute(0.05);
  for (const IndexDef& t : targets) {
    ASSERT_TRUE(estimates.count(t.Signature())) << t.ToString();
    EXPECT_GT(estimates.at(t.Signature()).est_bytes, 0.0);
  }
}

TEST_F(EstimatorTest, OptimalNoWorseThanGreedy) {
  EstimationGraph graph(db_, source_.get(), ErrorModel());
  graph.AddTargets({Idx({"l_shipdate"}), Idx({"l_shipmode"}),
                    Idx({"l_shipdate", "l_shipmode"})});
  const double greedy = graph.Greedy(0.05, 0.5, 0.9);
  const double optimal = graph.Optimal(0.05, 0.5, 0.9);
  EXPECT_LE(optimal, greedy + 1e-9);
}

TEST_F(EstimatorTest, ExistingIndexIsFree) {
  const IndexDef existing = Idx({"l_shipdate"});
  db_.AddExistingIndex(existing, 123 * kPageSize);
  EstimationGraph graph(db_, source_.get(), ErrorModel());
  graph.AddTargets({existing.WithCompression(CompressionKind::kRow)});
  graph.Greedy(0.05, 0.5, 0.9);
  const auto estimates = graph.Execute(0.05);
  EXPECT_EQ(estimates.size(), 1u);
}

TEST_F(EstimatorTest, SizeEstimatorBatchesAndChoosesF) {
  SizeEstimator estimator(db_, source_.get(), ErrorModel(),
                          SizeEstimationOptions{});
  const std::vector<IndexDef> targets = {
      Idx({"l_shipdate"}), Idx({"l_shipdate", "l_shipmode"}),
      Idx({"l_partkey"}, CompressionKind::kPage)};
  const SizeEstimator::BatchResult batch = estimator.EstimateAll(targets);
  EXPECT_EQ(batch.estimates.size(), 3u);
  EXPECT_GT(batch.chosen_f, 0.0);
  EXPECT_GT(batch.total_cost_pages, 0.0);
  for (const auto& [sig, est] : batch.estimates) {
    EXPECT_GT(est.est_bytes, 0.0);
    EXPECT_LE(est.cf, 1.2);
  }
}

TEST_F(EstimatorTest, UncompressedSizeDeterministic) {
  SizeEstimator estimator(db_, source_.get(), ErrorModel(),
                          SizeEstimationOptions{});
  const IndexDef def = Idx({"l_shipdate"}, CompressionKind::kNone);
  const SampleCfResult a = estimator.UncompressedSize(def);
  const SampleCfResult b = estimator.UncompressedSize(def);
  EXPECT_DOUBLE_EQ(a.est_bytes, b.est_bytes);
  const double truth = TrueBytes(def);
  EXPECT_LT(std::abs(a.est_bytes - truth) / truth, 0.05);
}

}  // namespace
}  // namespace capd
