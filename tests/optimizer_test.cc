// Tests for the compression-aware what-if optimizer (Appendix A model).
#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "optimizer/what_if.h"
#include "query/sql_parser.h"
#include "workloads/tpch.h"

namespace capd {
namespace {

class OptimizerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tpch::Options opt;
    opt.lineitem_rows = 2000;
    tpch::Build(&db_, opt);
    optimizer_ = std::make_unique<WhatIfOptimizer>(db_, CostModelParams{});
  }

  Statement Parse(const std::string& sql) {
    std::string err;
    auto stmt = ParseSql(sql, db_, &err);
    CAPD_CHECK(stmt.has_value()) << err;
    return *stmt;
  }

  // Build a configuration entry with a hand-set size.
  PhysicalIndexEstimate Est(IndexDef def, double bytes, double tuples) {
    PhysicalIndexEstimate e;
    e.def = std::move(def);
    e.bytes = bytes;
    e.tuples = tuples;
    return e;
  }

  IndexDef Idx(std::vector<std::string> keys, std::vector<std::string> incl = {},
               CompressionKind kind = CompressionKind::kNone) {
    IndexDef def;
    def.object = "lineitem";
    def.key_columns = std::move(keys);
    def.include_columns = std::move(incl);
    def.compression = kind;
    return def;
  }

  Database db_;
  std::unique_ptr<WhatIfOptimizer> optimizer_;
};

TEST_F(OptimizerTest, SelectivityRangeSane) {
  ColumnFilter half{"l_shipdate", FilterOp::kLe,
                    Value::Date(ParseDateLiteral("1996-12-31")), {}};
  const double sel = optimizer_->FilterSelectivity("lineitem", half);
  EXPECT_GT(sel, 0.3);
  EXPECT_LT(sel, 0.7);  // dates uniform over 1994..1999
}

TEST_F(OptimizerTest, EqualitySelectivityUsesDistinct) {
  ColumnFilter eq{"l_shipmode", FilterOp::kEq, Value::String("AIR"), {}};
  const double sel = optimizer_->FilterSelectivity("lineitem", eq);
  EXPECT_NEAR(sel, 1.0 / 7.0, 0.02);  // seven ship modes
}

TEST_F(OptimizerTest, ConjunctionMultiplies) {
  ColumnFilter a{"l_shipmode", FilterOp::kEq, Value::String("AIR"), {}};
  ColumnFilter b{"l_returnflag", FilterOp::kEq, Value::String("R"), {}};
  const double sel = optimizer_->Selectivity("lineitem", {a, b});
  EXPECT_NEAR(sel,
              optimizer_->FilterSelectivity("lineitem", a) *
                  optimizer_->FilterSelectivity("lineitem", b),
              1e-12);
}

TEST_F(OptimizerTest, EmptyConfigUsesHeapScan) {
  const Statement q = Parse("SELECT SUM(l_quantity) FROM lineitem");
  const Configuration empty;
  const PlanCost plan = optimizer_->CostWithPlan(q, empty);
  EXPECT_NE(plan.access_path.find("heap scan"), std::string::npos);
  EXPECT_GT(plan.io, 0.0);
}

TEST_F(OptimizerTest, CoveringIndexBeatsHeapScan) {
  const Statement q = Parse(
      "SELECT SUM(l_extendedprice) FROM lineitem WHERE l_shipdate >= DATE '1998-01-01'");
  Configuration config;
  // Covering narrow index, much smaller than the heap.
  config.Add(Est(Idx({"l_shipdate"}, {"l_extendedprice"}), 40 * kPageSize, 2000));
  const Configuration empty;
  EXPECT_LT(optimizer_->Cost(q, config), optimizer_->Cost(q, empty));
  const PlanCost plan = optimizer_->CostWithPlan(q, config);
  EXPECT_NE(plan.access_path.find("seek"), std::string::npos);
}

TEST_F(OptimizerTest, CompressionReducesIoIncreasesCpu) {
  const Statement q = Parse("SELECT SUM(l_extendedprice) FROM lineitem");
  Configuration plain, compressed;
  plain.Add(Est(Idx({"l_orderkey"}, {"l_extendedprice"}), 20 * kPageSize, 2000));
  compressed.Add(Est(Idx({"l_orderkey"}, {"l_extendedprice"}, CompressionKind::kPage),
                     8 * kPageSize, 2000));
  const PlanCost p = optimizer_->CostWithPlan(q, plain);
  const PlanCost c = optimizer_->CostWithPlan(q, compressed);
  EXPECT_LT(c.io, p.io);   // fewer pages
  EXPECT_GT(c.cpu, p.cpu);  // decompression beta
}

TEST_F(OptimizerTest, DecompressionScalesWithUsedColumns) {
  // Same index, two queries touching 1 vs 3 of its columns.
  Configuration config;
  config.Add(Est(Idx({"l_orderkey"}, {"l_extendedprice", "l_quantity", "l_discount"},
                     CompressionKind::kPage),
                 10 * kPageSize, 2000));
  const Statement q1 = Parse("SELECT SUM(l_quantity) FROM lineitem");
  const Statement q3 = Parse(
      "SELECT SUM(l_quantity), SUM(l_discount), SUM(l_extendedprice) FROM lineitem");
  const PlanCost c1 = optimizer_->CostWithPlan(q1, config);
  const PlanCost c3 = optimizer_->CostWithPlan(q3, config);
  EXPECT_GT(c3.cpu, c1.cpu);
  EXPECT_DOUBLE_EQ(c3.io, c1.io);
}

TEST_F(OptimizerTest, NonCoveringSeekChosenOnlyWhenSelective) {
  Configuration narrow;
  narrow.Add(Est(Idx({"l_orderkey"}), 8 * kPageSize, 2000));
  // Highly selective equality (1 of ~500 orderkeys): seek + few lookups
  // beats a heap scan.
  const Statement selective = Parse(
      "SELECT SUM(l_extendedprice) FROM lineitem WHERE l_orderkey = 123");
  const PlanCost plan = optimizer_->CostWithPlan(selective, narrow);
  EXPECT_NE(plan.access_path.find("lookup"), std::string::npos);

  // Low selectivity (1 of 7 ship modes): hundreds of random lookups lose to
  // the heap scan, so the optimizer must not pick the index.
  Configuration mode_idx;
  mode_idx.Add(Est(Idx({"l_shipmode"}), 8 * kPageSize, 2000));
  const Statement broad = Parse(
      "SELECT SUM(l_extendedprice) FROM lineitem WHERE l_shipmode = 'AIR'");
  const PlanCost broad_plan = optimizer_->CostWithPlan(broad, mode_idx);
  EXPECT_NE(broad_plan.access_path.find("heap scan"), std::string::npos);
}

TEST_F(OptimizerTest, PartialIndexRequiresSubsumption) {
  IndexDef partial = Idx({"l_quantity"}, {"l_shipdate"});
  partial.filter =
      ColumnFilter{"l_shipdate", FilterOp::kGe,
                   Value::Date(ParseDateLiteral("1997-01-01")), {}};
  Configuration config;
  config.Add(Est(partial, 10 * kPageSize, 600));

  const Statement inside = Parse(
      "SELECT SUM(l_quantity) FROM lineitem WHERE l_shipdate >= DATE '1998-01-01' "
      "AND l_quantity < 10");
  const Statement outside = Parse(
      "SELECT SUM(l_quantity) FROM lineitem WHERE l_shipdate >= DATE '1995-01-01' "
      "AND l_quantity < 10");
  const Configuration empty;
  EXPECT_LT(optimizer_->Cost(inside, config), optimizer_->Cost(inside, empty));
  EXPECT_DOUBLE_EQ(optimizer_->Cost(outside, config),
                   optimizer_->Cost(outside, empty));
}

TEST_F(OptimizerTest, PredicateSubsumption) {
  ColumnFilter filter{"a", FilterOp::kGe, Value::Int64(100), {}};
  std::vector<ColumnFilter> inside = {
      {"a", FilterOp::kBetween, Value::Int64(150), Value::Int64(200)}};
  std::vector<ColumnFilter> outside = {
      {"a", FilterOp::kBetween, Value::Int64(50), Value::Int64(200)}};
  std::vector<ColumnFilter> other = {{"b", FilterOp::kEq, Value::Int64(7), {}}};
  EXPECT_TRUE(PredicatesSubsumeFilter(inside, filter));
  EXPECT_FALSE(PredicatesSubsumeFilter(outside, filter));
  EXPECT_FALSE(PredicatesSubsumeFilter(other, filter));
}

TEST_F(OptimizerTest, InsertCostGrowsWithIndexCount) {
  const Statement ins = Parse("INSERT INTO lineitem VALUES 1000 ROWS");
  Configuration none, one, two;
  one.Add(Est(Idx({"l_shipdate"}), 30 * kPageSize, 2000));
  two.Add(Est(Idx({"l_shipdate"}), 30 * kPageSize, 2000));
  two.Add(Est(Idx({"l_partkey"}), 30 * kPageSize, 2000));
  const double c0 = optimizer_->Cost(ins, none);
  const double c1 = optimizer_->Cost(ins, one);
  const double c2 = optimizer_->Cost(ins, two);
  EXPECT_LT(c0, c1);
  EXPECT_LT(c1, c2);
}

TEST_F(OptimizerTest, CompressedIndexCostsMoreToMaintain) {
  const Statement ins = Parse("INSERT INTO lineitem VALUES 1000 ROWS");
  Configuration plain, compressed;
  plain.Add(Est(Idx({"l_shipdate"}), 30 * kPageSize, 2000));
  compressed.Add(
      Est(Idx({"l_shipdate"}, {}, CompressionKind::kPage), 30 * kPageSize, 2000));
  // Same size on purpose: isolates the alpha CPU term.
  EXPECT_GT(optimizer_->Cost(ins, compressed), optimizer_->Cost(ins, plain));
}

TEST_F(OptimizerTest, AlphaOrdering) {
  const CostModelParams params;
  EXPECT_GT(params.Alpha(CompressionKind::kPage), params.Alpha(CompressionKind::kRow));
  EXPECT_EQ(params.Alpha(CompressionKind::kNone), 0.0);
  EXPECT_GT(params.Beta(CompressionKind::kPage), params.Beta(CompressionKind::kRow));
  EXPECT_EQ(params.Beta(CompressionKind::kNone), 0.0);
}

TEST_F(OptimizerTest, ClusteredIndexReplacesHeap) {
  const Statement q = Parse("SELECT SUM(l_quantity) FROM lineitem");
  IndexDef clustered = Idx({"l_shipdate"});
  clustered.clustered = true;
  clustered.compression = CompressionKind::kPage;
  Configuration config;
  config.Add(Est(clustered, 30 * kPageSize, 2000));  // compressed: small
  const PlanCost plan = optimizer_->CostWithPlan(q, config);
  EXPECT_EQ(plan.access_path.find("heap scan"), std::string::npos);
}

TEST_F(OptimizerTest, JoinPrefersCheaperStrategy) {
  const Statement q = Parse(
      "SELECT SUM(l_extendedprice) FROM lineitem JOIN part ON l_partkey = p_partkey "
      "WHERE l_shipdate >= DATE '1999-06-01'");
  // With a part index keyed on p_partkey, index-NL is available.
  IndexDef dim_idx;
  dim_idx.object = "part";
  dim_idx.key_columns = {"p_partkey"};
  Configuration with_idx;
  with_idx.Add(Est(dim_idx, 5 * kPageSize, 400));
  const Configuration without;
  // Either way the query must cost something sane, and the index version
  // must not be worse (optimizer picks min).
  EXPECT_LE(optimizer_->Cost(q, with_idx), optimizer_->Cost(q, without) + 1e-9);
}

TEST_F(OptimizerTest, WorkloadCostWeightsStatements) {
  Workload w;
  w.statements.push_back(Parse("SELECT SUM(l_quantity) FROM lineitem"));
  w.statements[0].weight = 3.0;
  const Configuration empty;
  EXPECT_DOUBLE_EQ(optimizer_->WorkloadCost(w, empty),
                   3.0 * optimizer_->Cost(w.statements[0], empty));
}

TEST_F(OptimizerTest, ConfigurationBookkeeping) {
  Configuration c;
  c.Add(Est(Idx({"l_shipdate"}), 10 * kPageSize, 100));
  EXPECT_TRUE(c.Contains(Idx({"l_shipdate"}).Signature()));
  EXPECT_FALSE(c.Contains(Idx({"l_partkey"}).Signature()));
  EXPECT_DOUBLE_EQ(c.TotalBytes(), 10.0 * kPageSize);
  EXPECT_TRUE(c.Remove(Idx({"l_shipdate"}).Signature()));
  EXPECT_EQ(c.size(), 0u);
  EXPECT_FALSE(c.Remove(Idx({"l_shipdate"}).Signature()));
}

}  // namespace
}  // namespace capd
