// TuningService robustness tests: admission control (queue-full rejection),
// watermark-driven graceful degradation, deadline enforcement mid-tune
// (best-so-far, flagged), priority ordering under contention, user
// cancellation through the service, and seeded fault-injection determinism
// (same seed -> byte-identical response stream). Plus the deep-cancellation
// pins of the estimator: a cancel flag binds inside a batch estimation, and
// a wired-but-never-fired flag leaves results bit-identical.
#include <atomic>
#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "estimator/size_estimator.h"
#include "service/tuning_service.h"
#include "workloads/registry.h"

namespace capd {
namespace {

constexpr double kBudgetFrac = 0.15;
constexpr uint64_t kRows = 2000;

// Blocks the (single) worker inside a request's first progress callback, so
// tests can pile submissions behind a known-busy service deterministically.
struct Gate {
  std::mutex mu;
  std::condition_variable cv;
  bool entered = false;
  bool released = false;

  void Enter() {
    std::unique_lock<std::mutex> lock(mu);
    entered = true;
    cv.notify_all();
    cv.wait(lock, [this] { return released; });
  }
  void AwaitEntered() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return entered; });
  }
  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu);
      released = true;
    }
    cv.notify_all();
  }
};

class TuningServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workloads::WorkloadSpec spec;
    spec.name = "tpch";
    spec.rows = kRows;
    std::string error;
    ASSERT_TRUE(workloads::Build(spec, &built_, &error)) << error;
    engine_ = std::make_unique<AdvisorEngine>(*built_.db);
  }

  ServiceRequest MakeRequest(const std::string& strategy) const {
    ServiceRequest request;
    request.tuning.workload = built_.workload;
    request.tuning.strategy = strategy;
    request.tuning.budget = TuningBudget::Fraction(kBudgetFrac);
    return request;
  }

  ServiceRequest GateRequest(Gate* gate) const {
    ServiceRequest request = MakeRequest("dtac-topk");
    request.tuning.progress = [gate](const std::string& phase) {
      if (phase == "candidates") gate->Enter();
    };
    return request;
  }

  workloads::BuiltWorkload built_;
  std::unique_ptr<AdvisorEngine> engine_;
};

TEST_F(TuningServiceTest, QueueFullRejectsWithOverloaded) {
  ServiceOptions options;
  options.num_workers = 1;
  options.max_queue = 2;
  options.high_watermark = 0;  // isolate admission from degradation
  TuningService service(engine_.get(), options);

  Gate gate;
  auto busy = service.Submit(GateRequest(&gate));
  gate.AwaitEntered();  // worker is now blocked mid-run, queue empty

  auto first = service.Submit(MakeRequest("dtac-topk"));
  auto second = service.Submit(MakeRequest("dtac-skyline"));
  EXPECT_FALSE(first->done());
  EXPECT_FALSE(second->done());
  EXPECT_EQ(service.queue_depth(), 2);

  // Third submission exceeds max_queue: rejected before Submit returns.
  auto rejected = service.Submit(MakeRequest("dtac-topk"));
  ASSERT_TRUE(rejected->done());
  const ServiceResponse& r = rejected->Wait();
  EXPECT_EQ(r.status, ServiceStatus::kOverloaded);
  EXPECT_EQ(r.error, "queue full");
  EXPECT_EQ(r.attempts, 0);

  gate.Release();
  EXPECT_EQ(busy->Wait().status, ServiceStatus::kOk);
  EXPECT_EQ(first->Wait().status, ServiceStatus::kOk);
  EXPECT_EQ(second->Wait().status, ServiceStatus::kOk);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 4u);
  EXPECT_EQ(stats.accepted, 3u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.ok, 3u);
}

TEST_F(TuningServiceTest, WatermarkBackpressureDegradesAndRecords) {
  ServiceOptions options;
  options.num_workers = 1;
  options.max_queue = 16;
  options.high_watermark = 3;
  options.low_watermark = 0;
  options.degraded_strategy = "staged:page";
  TuningService service(engine_.get(), options);

  Gate gate;
  auto busy = service.Submit(GateRequest(&gate));
  gate.AwaitEntered();

  // Four requests queue behind the blocked worker; depth crosses the high
  // watermark at the third, and the mode stays sticky until the queue
  // drains back to the low watermark.
  std::vector<std::shared_ptr<TuningService::Ticket>> tickets;
  for (int i = 0; i < 4; ++i) {
    tickets.push_back(service.Submit(MakeRequest("dtac-topk")));
  }
  EXPECT_TRUE(service.degraded_mode());
  gate.Release();
  EXPECT_EQ(busy->Wait().status, ServiceStatus::kOk);

  // Dequeue depths are 3, 2, 1, 0: the first three run degraded (>= high,
  // then sticky), the last sees the drained queue and runs as requested.
  for (int i = 0; i < 4; ++i) {
    const ServiceResponse& r = tickets[i]->Wait();
    ASSERT_EQ(r.status, ServiceStatus::kOk) << i << ": " << r.error;
    if (i < 3) {
      EXPECT_TRUE(r.degraded) << i;
      EXPECT_EQ(r.executed_strategy, "staged:page") << i;
      EXPECT_EQ(r.tuning.strategy, "staged:page") << i;
    } else {
      EXPECT_FALSE(r.degraded) << i;
      EXPECT_EQ(r.executed_strategy, "dtac-topk") << i;
    }
  }
  EXPECT_FALSE(service.degraded_mode());
  EXPECT_EQ(service.stats().degraded, 3u);
}

TEST_F(TuningServiceTest, DeadlineMidTuneReturnsBestSoFarFlagged) {
  ServiceOptions options;
  options.num_workers = 1;
  options.high_watermark = 0;
  TuningService service(engine_.get(), options);

  // Far too tight for a full tune at kRows: the watchdog fires the
  // attempt's token mid-run (typically inside estimation, where the deep
  // polls of the batch loops bind) and the run winds down cooperatively.
  ServiceRequest request = MakeRequest("dtac-skyline");
  request.timeout_ms = 5.0;
  const ServiceResponse response = service.Tune(request);
  EXPECT_EQ(response.status, ServiceStatus::kDeadlineExceeded);
  EXPECT_EQ(response.attempts, 1);
  // The engine response is the cooperative wind-down: flagged cancelled,
  // carrying whatever design the run had at that point.
  EXPECT_EQ(response.tuning.status, TuningResponse::Status::kCancelled);
  EXPECT_TRUE(response.tuning.result.cancelled);

  // The service stays healthy: an undeadlined request completes normally.
  EXPECT_EQ(service.Tune(MakeRequest("dtac-topk")).status, ServiceStatus::kOk);
}

TEST_F(TuningServiceTest, PriorityOrderingUnderContention) {
  ServiceOptions options;
  options.num_workers = 1;
  options.high_watermark = 0;
  TuningService service(engine_.get(), options);

  Gate gate;
  auto busy = service.Submit(GateRequest(&gate));
  gate.AwaitEntered();

  // Tag each queued request's execution via its progress hook; with one
  // worker, the recorded order is the dequeue order.
  std::mutex order_mu;
  std::vector<int> order;
  auto tagged = [&](int tag, int priority) {
    ServiceRequest request = MakeRequest("staged:page");
    request.priority = priority;
    // "candidates" fires exactly once per run (the staged baseline's
    // stage 2 reports no candidate phase), so it tags the dequeue order.
    request.tuning.progress = [&order_mu, &order, tag](const std::string& p) {
      if (p != "candidates") return;
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(tag);
    };
    return service.Submit(request);
  };
  std::vector<std::shared_ptr<TuningService::Ticket>> tickets;
  tickets.push_back(tagged(/*tag=*/1, /*priority=*/1));
  tickets.push_back(tagged(/*tag=*/2, /*priority=*/5));
  tickets.push_back(tagged(/*tag=*/3, /*priority=*/3));
  tickets.push_back(tagged(/*tag=*/4, /*priority=*/5));

  gate.Release();
  busy->Wait();
  for (auto& ticket : tickets) {
    EXPECT_EQ(ticket->Wait().status, ServiceStatus::kOk);
  }
  // Highest priority first; equal priorities in submission order.
  EXPECT_EQ(order, (std::vector<int>{2, 4, 3, 1}));
}

TEST_F(TuningServiceTest, UserCancelResolvesQueuedAndRunningRequests) {
  ServiceOptions options;
  options.num_workers = 1;
  options.high_watermark = 0;
  TuningService service(engine_.get(), options);

  Gate gate;
  auto busy = service.Submit(GateRequest(&gate));
  gate.AwaitEntered();

  // Cancelled while still queued: resolves without ever running.
  ServiceRequest queued = MakeRequest("dtac-topk");
  CancellationToken queued_token = queued.tuning.cancel;
  auto queued_ticket = service.Submit(queued);
  queued_token.RequestCancel();
  gate.Release();
  busy->Wait();
  const ServiceResponse& qr = queued_ticket->Wait();
  EXPECT_EQ(qr.status, ServiceStatus::kCancelled);
  EXPECT_EQ(qr.attempts, 0);

  // Cancelled mid-run: the watchdog relays the client token to the
  // attempt's token; the response is kCancelled with the partial design.
  ServiceRequest running = MakeRequest("dtac-skyline");
  CancellationToken running_token = running.tuning.cancel;
  running.tuning.progress = [&running_token](const std::string& phase) {
    if (phase == "estimation") running_token.RequestCancel();
  };
  const ServiceResponse rr = service.Tune(running);
  EXPECT_EQ(rr.status, ServiceStatus::kCancelled);
  EXPECT_EQ(rr.attempts, 1);
  EXPECT_TRUE(rr.tuning.result.cancelled);
}

// The byte-comparable projection of a response stream: everything except
// wall times (queue_ms / run_ms are informational and never deterministic).
std::string StreamBytes(const std::vector<ServiceResponse>& responses) {
  std::ostringstream out;
  for (const ServiceResponse& r : responses) {
    out << r.request_id << '|' << ServiceStatusName(r.status) << '|'
        << r.attempts << '|' << r.degraded << '|' << r.executed_strategy
        << '|' << static_cast<int>(r.tuning.status) << '|' << r.tuning.error
        << '|' << r.error << '|' << r.tuning.report << '|' << r.tuning.json
        << '\n';
  }
  return out.str();
}

TEST_F(TuningServiceTest, SeededFaultInjectionIsByteDeterministic) {
  // The injector is a pure hash of (seed, request id, attempt, phase), so
  // the fault schedule — and with it every status, retry count, and report
  // byte — must reproduce exactly across service instances. Faults fire at
  // phase boundaries, which keeps even the interrupted runs' best-so-far
  // designs deterministic (unlike wall-clock deadlines, which are excluded
  // here).
  const char* const strategies[] = {"dtac-topk", "dtac-skyline",
                                    "staged:page"};
  auto run_batch = [&](std::vector<ServiceResponse>* responses,
                       ServiceStats* stats) {
    ServiceOptions options;
    options.num_workers = 1;  // deterministic execution order
    options.max_queue = 64;
    options.high_watermark = 0;  // depth-dependent decisions are not seeded
    options.max_attempts = 3;
    options.backoff_base_ms = 0.5;
    options.backoff_cap_ms = 2.0;
    options.faults.seed = 7;
    options.faults.transient_rate = 0.15;
    options.faults.forced_timeout_rate = 0.10;
    options.faults.spurious_cancel_rate = 0.10;
    TuningService service(engine_.get(), options);
    std::vector<std::shared_ptr<TuningService::Ticket>> tickets;
    for (int i = 0; i < 10; ++i) {
      tickets.push_back(service.Submit(MakeRequest(strategies[i % 3])));
    }
    for (auto& ticket : tickets) responses->push_back(ticket->Wait());
    *stats = service.stats();
  };

  std::vector<ServiceResponse> first, second;
  ServiceStats stats_first, stats_second;
  run_batch(&first, &stats_first);
  run_batch(&second, &stats_second);

  // The schedule actually did something, and every request resolved.
  EXPECT_GT(stats_first.faults_injected, 0u);
  EXPECT_EQ(stats_first.completed, stats_first.accepted);
  EXPECT_EQ(stats_second.completed, stats_second.accepted);
  EXPECT_EQ(stats_first.faults_injected, stats_second.faults_injected);
  EXPECT_EQ(stats_first.retries, stats_second.retries);

  EXPECT_EQ(StreamBytes(first), StreamBytes(second));
}

// ---- Deep-cancellation pins (the estimator-level contract) ----

// Wraps a SampleSource and fires a cancellation flag after N Sample()
// resolutions — the only way to raise a flag provably *inside* a batch
// estimation rather than at an advisor phase boundary.
class FiringSampleSource : public SampleSource {
 public:
  FiringSampleSource(SampleSource* inner,
                     std::shared_ptr<std::atomic<bool>> flag, int fire_after)
      : inner_(inner), flag_(std::move(flag)), fire_after_(fire_after) {}

  const Table& Sample(const std::string& object, double f) override {
    if (++calls_ >= fire_after_) {
      flag_->store(true, std::memory_order_relaxed);
    }
    return inner_->Sample(object, f);
  }
  double FullTuples(const std::string& object) override {
    return inner_->FullTuples(object);
  }
  const Schema& ObjectSchema(const std::string& object) override {
    return inner_->ObjectSchema(object);
  }
  int calls() const { return calls_; }

 private:
  SampleSource* inner_;
  std::shared_ptr<std::atomic<bool>> flag_;
  int fire_after_;
  int calls_ = 0;
};

std::vector<IndexDef> CompressedLineitemTargets() {
  std::vector<IndexDef> targets;
  for (const auto& keys :
       {std::vector<std::string>{"l_shipdate"},
        std::vector<std::string>{"l_shipdate", "l_shipmode"},
        std::vector<std::string>{"l_partkey"},
        std::vector<std::string>{"l_orderkey", "l_quantity"}}) {
    IndexDef def;
    def.object = "lineitem";
    def.key_columns = keys;
    def.compression = CompressionKind::kRow;
    targets.push_back(def);
  }
  return targets;
}

TEST_F(TuningServiceTest, CancellationBindsInsideBatchEstimation) {
  SampleManager samples(4242);
  TableSampleSource inner(*built_.db, &samples);
  auto flag = std::make_shared<std::atomic<bool>>(false);
  FiringSampleSource firing(&inner, flag, /*fire_after=*/1);

  SizeEstimationOptions options;
  options.cancel = flag;
  SizeEstimator estimator(*built_.db, &firing, ErrorModel(), options);
  const SizeEstimator::BatchResult result =
      estimator.EstimateAll(CompressedLineitemTargets());

  // The flag fired on the very first sample resolution, deep inside the
  // first fraction probe: the batch abandons the search instead of pricing
  // every target at every fraction.
  EXPECT_TRUE(flag->load());
  EXPECT_TRUE(result.estimates.empty())
      << "a cancelled batch must not deliver a partial plan as if complete";
  EXPECT_LT(firing.calls(), 8) << "polling should stop the fraction search "
                                  "well before all probes run";
}

TEST_F(TuningServiceTest, UnfiredCancelFlagIsBitIdentical) {
  const std::vector<IndexDef> targets = CompressedLineitemTargets();

  auto run = [&](bool with_flag) {
    SampleManager samples(4242);
    TableSampleSource source(*built_.db, &samples);
    SizeEstimationOptions options;
    if (with_flag) options.cancel = std::make_shared<std::atomic<bool>>(false);
    SizeEstimator estimator(*built_.db, &source, ErrorModel(), options);
    return estimator.EstimateAll(targets);
  };
  const SizeEstimator::BatchResult with = run(true);
  const SizeEstimator::BatchResult without = run(false);

  EXPECT_EQ(std::memcmp(&with.chosen_f, &without.chosen_f, sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&with.total_cost_pages, &without.total_cost_pages,
                        sizeof(double)),
            0);
  EXPECT_EQ(with.num_sampled, without.num_sampled);
  EXPECT_EQ(with.num_deduced, without.num_deduced);
  ASSERT_EQ(with.estimates.size(), without.estimates.size());
  auto a = with.estimates.begin();
  auto b = without.estimates.begin();
  for (; a != with.estimates.end(); ++a, ++b) {
    EXPECT_EQ(a->first, b->first);
    EXPECT_EQ(std::memcmp(&a->second.est_bytes, &b->second.est_bytes,
                          sizeof(double)),
              0)
        << a->first;
    EXPECT_EQ(std::memcmp(&a->second.est_tuples, &b->second.est_tuples,
                          sizeof(double)),
              0)
        << a->first;
  }
}

}  // namespace
}  // namespace capd
