// Tests for statistics: histograms, samplers, join synopses, distinct-value
// estimators.
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "catalog/database.h"
#include "stats/column_stats.h"
#include "stats/distinct_estimator.h"
#include "stats/join_synopsis.h"
#include "stats/sampler.h"

namespace capd {
namespace {

TEST(HistogramTest, UniformSelectivity) {
  std::vector<double> keys;
  for (int i = 0; i < 10000; ++i) keys.push_back(static_cast<double>(i % 1000));
  Histogram h = Histogram::Build(keys, 64);
  EXPECT_NEAR(h.SelectivityBetween(0, 499), 0.5, 0.05);
  EXPECT_NEAR(h.SelectivityLe(99), 0.1, 0.03);
  EXPECT_NEAR(h.SelectivityGe(900), 0.1, 0.03);
  EXPECT_NEAR(h.SelectivityBetween(h.min(), h.max()), 1.0, 1e-9);
}

TEST(HistogramTest, EmptyAndSingleton) {
  Histogram empty = Histogram::Build({}, 8);
  EXPECT_EQ(empty.SelectivityBetween(0, 1), 0.0);
  Histogram one = Histogram::Build({5.0}, 8);
  EXPECT_NEAR(one.SelectivityBetween(5, 5), 1.0, 1e-9);
  EXPECT_EQ(one.SelectivityBetween(6, 7), 0.0);
}

TEST(HistogramTest, SkewedDataStillSumsToOne) {
  Random rng(3);
  std::vector<double> keys;
  for (int i = 0; i < 5000; ++i) {
    keys.push_back(std::floor(std::pow(static_cast<double>(rng.Uniform(1, 100)), 2.0)));
  }
  Histogram h = Histogram::Build(keys, 32);
  EXPECT_NEAR(h.SelectivityBetween(h.min(), h.max()), 1.0, 1e-9);
}

TEST(TableStatsTest, DistinctAndRange) {
  Table t("t", Schema({{"a", ValueType::kInt64, 8}, {"s", ValueType::kString, 8}}));
  for (int i = 0; i < 300; ++i) {
    t.AddRow({Value::Int64(i % 10), Value::String(i % 2 ? "x" : "y")});
  }
  const TableStats stats = TableStats::Compute(t);
  EXPECT_EQ(stats.column("a").distinct, 10u);
  EXPECT_EQ(stats.column("s").distinct, 2u);
  EXPECT_EQ(stats.column("a").min_key, 0.0);
  EXPECT_EQ(stats.column("a").max_key, 9.0);
  EXPECT_GT(stats.column("a").avg_leading_zero_bytes, 6.0);
}

TEST(TableStatsTest, DistinctOfColumnsCombo) {
  Table t("t", Schema({{"a", ValueType::kInt64, 8}, {"b", ValueType::kInt64, 8}}));
  for (int i = 0; i < 100; ++i) {
    t.AddRow({Value::Int64(i % 4), Value::Int64(i % 6)});
  }
  const TableStats stats = TableStats::Compute(t);
  EXPECT_EQ(stats.DistinctOfColumns(t, {"a"}), 4u);
  EXPECT_EQ(stats.DistinctOfColumns(t, {"b"}), 6u);
  EXPECT_EQ(stats.DistinctOfColumns(t, {"a", "b"}), 12u);  // lcm structure
}

TEST(SamplerTest, FractionRespected) {
  Table t("t", Schema({{"a", ValueType::kInt64, 8}}));
  for (int i = 0; i < 10000; ++i) t.AddRow({Value::Int64(i)});
  Random rng(1);
  auto sample = CreateUniformSample(t, 0.05, 1, &rng);
  EXPECT_EQ(sample->num_rows(), 500u);
}

TEST(SamplerTest, MinRowsFloor) {
  Table t("t", Schema({{"a", ValueType::kInt64, 8}}));
  for (int i = 0; i < 200; ++i) t.AddRow({Value::Int64(i)});
  Random rng(1);
  auto sample = CreateUniformSample(t, 0.01, 50, &rng);
  EXPECT_EQ(sample->num_rows(), 50u);
}

TEST(SamplerTest, EdgeFractionsClampWithoutOverflow) {
  Table t("t", Schema({{"a", ValueType::kInt64, 8}}));
  for (int i = 0; i < 100; ++i) t.AddRow({Value::Int64(i)});
  // f = 1.0 takes every row exactly once, in order.
  Random rng(4);
  auto all = CreateUniformSample(t, 1.0, 1, &rng);
  ASSERT_EQ(all->num_rows(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(all->rows()[i][0].AsInt64(), i);
  // Tiny f floors at min_rows, capped at n.
  Random rng2(4);
  auto floor = CreateUniformSample(t, 1e-12, 500, &rng2);
  EXPECT_EQ(floor->num_rows(), 100u);  // min_rows > n clamps to n
  // Sub-half-row fraction on a tiny table rounds to 0 and floors at 1.
  Table one("one", Schema({{"a", ValueType::kInt64, 8}}));
  one.AddRow({Value::Int64(9)});
  Random rng3(4);
  auto single = CreateUniformSample(one, 1e-6, 1, &rng3);
  EXPECT_EQ(single->num_rows(), 1u);
}

TEST(SamplerTest, SampleRowsComeFromTable) {
  Table t("t", Schema({{"a", ValueType::kInt64, 8}}));
  for (int i = 0; i < 1000; ++i) t.AddRow({Value::Int64(i * 7)});
  Random rng(2);
  auto sample = CreateUniformSample(t, 0.1, 1, &rng);
  for (const Row& r : sample->rows()) {
    EXPECT_EQ(r[0].AsInt64() % 7, 0);
  }
}

TEST(SamplerTest, FilteredSampleAppliesPredicate) {
  Table t("t", Schema({{"a", ValueType::kInt64, 8}}));
  for (int i = 0; i < 1000; ++i) t.AddRow({Value::Int64(i % 100)});
  Random rng(3);
  auto sample = CreateUniformSample(t, 0.5, 1, &rng);
  ColumnFilter f{"a", FilterOp::kLt, Value::Int64(10), {}};
  auto filtered = CreateFilteredSample(*sample, f);
  EXPECT_GT(filtered->num_rows(), 0u);
  for (const Row& r : filtered->rows()) EXPECT_LT(r[0].AsInt64(), 10);
}

TEST(SampleManagerTest, AmortizesSampling) {
  Table t("t", Schema({{"a", ValueType::kInt64, 8}}));
  for (int i = 0; i < 5000; ++i) t.AddRow({Value::Int64(i)});
  SampleManager mgr(7);
  const Table& s1 = mgr.GetSample(t, 0.02);
  const uint64_t scanned_once = mgr.rows_scanned();
  const Table& s2 = mgr.GetSample(t, 0.02);
  EXPECT_EQ(&s1, &s2);                          // cached
  EXPECT_EQ(mgr.rows_scanned(), scanned_once);  // no rescan
  mgr.GetSample(t, 0.05);                       // new fraction -> rescan
  EXPECT_EQ(mgr.rows_scanned(), 2 * scanned_once);
}

TEST(JoinSynopsisTest, EveryFactRowMatches) {
  Database db;
  auto dim = std::make_unique<Table>(
      "dim", Schema({{"d_key", ValueType::kInt64, 8},
                     {"d_attr", ValueType::kString, 8}}));
  for (int i = 1; i <= 50; ++i) {
    dim->AddRow({Value::Int64(i), Value::String("attr" + std::to_string(i % 5))});
  }
  const Table* dim_ptr = db.AddTable(std::move(dim));
  auto fact = std::make_unique<Table>(
      "fact", Schema({{"f_id", ValueType::kInt64, 8},
                      {"f_dkey", ValueType::kInt64, 8}}));
  Random rng(5);
  for (int i = 0; i < 2000; ++i) {
    fact->AddRow({Value::Int64(i), Value::Int64(rng.Uniform(1, 50))});
  }
  const Table* fact_ptr = db.AddTable(std::move(fact));

  Random rng2(6);
  auto synopsis = BuildJoinSynopsis(
      *fact_ptr, {dim_ptr}, {{"fact", "f_dkey", "dim", "d_key"}}, 0.1, &rng2);
  EXPECT_EQ(synopsis->num_rows(), 200u);  // join synopses lose no sample rows
  EXPECT_TRUE(synopsis->schema().HasColumn("d_attr"));
  EXPECT_FALSE(synopsis->schema().HasColumn("d_key"));  // carried by f_dkey
}

TEST(DistinctEstimatorTest, FrequencyStatsBuilt) {
  const FrequencyStats f = BuildFrequencyStats({1, 1, 2, 3, 3, 3});
  EXPECT_EQ(f.at(1), 2u);
  EXPECT_EQ(f.at(2), 1u);
  EXPECT_EQ(f.at(3), 3u);
}

TEST(DistinctEstimatorTest, FullCoverageReturnsExact) {
  // Sample == population: estimate must equal observed distinct count.
  const FrequencyStats f = BuildFrequencyStats({5, 5, 5, 5});
  EXPECT_DOUBLE_EQ(AdaptiveEstimate(f, 4, 20, 20), 4.0);
}

TEST(DistinctEstimatorTest, AdaptiveBeatsMultiplyOnSmallDomain) {
  // Population: 10000 tuples over 200 distinct values (uniform). A 5%
  // sample sees ~every value several times; Multiply scales the distinct
  // count by 20x and is badly wrong, AE stays near 200.
  Random rng(11);
  const uint64_t n = 10000;
  std::map<int64_t, uint64_t> sample_counts;
  const uint64_t r = 500;
  for (uint64_t i = 0; i < r; ++i) sample_counts[rng.Uniform(0, 199)]++;
  std::vector<uint64_t> class_counts;
  for (const auto& [v, c] : sample_counts) class_counts.push_back(c);
  const uint64_t d = class_counts.size();
  const FrequencyStats f = BuildFrequencyStats(class_counts);

  const double ae = AdaptiveEstimate(f, d, r, n);
  const double mult = MultiplyEstimate(d, r, n);
  const double true_d = 200.0;
  EXPECT_LT(std::abs(ae - true_d) / true_d, 0.35);
  EXPECT_GT(std::abs(mult - true_d) / true_d, 5.0);
}

TEST(DistinctEstimatorTest, GeeReasonableOnUniform) {
  Random rng(13);
  std::map<int64_t, uint64_t> counts;
  for (int i = 0; i < 400; ++i) counts[rng.Uniform(0, 999)]++;
  std::vector<uint64_t> cc;
  for (const auto& [v, c] : counts) cc.push_back(c);
  const double gee = GeeEstimate(BuildFrequencyStats(cc), 400, 40000);
  EXPECT_GT(gee, 300.0);
  EXPECT_LE(gee, 40000.0);
}

TEST(DistinctEstimatorTest, OptimizerIndependenceOvershootsCorrelated) {
  // Two perfectly correlated columns with 100 distincts each: true combo
  // distinct is 100, independence predicts 10000 (capped by n).
  const double est = OptimizerIndependenceEstimate({100, 100}, 1000000);
  EXPECT_DOUBLE_EQ(est, 10000.0);
}

TEST(DistinctEstimatorTest, ClampedToPopulation) {
  const FrequencyStats f = BuildFrequencyStats(std::vector<uint64_t>(50, 1));
  EXPECT_LE(AdaptiveEstimate(f, 50, 50, 60), 60.0);
  EXPECT_LE(GeeEstimate(f, 50, 60), 60.0);
  EXPECT_LE(MultiplyEstimate(50, 50, 60), 60.0);
}

}  // namespace
}  // namespace capd
