// Tests for the succinct index family: BitVector rank/select against a
// scalar reference (randomized + word-boundary sizes), WAH round-trip
// properties across bit densities and run shapes, the BitmapCodec
// MeasurePage == CompressPage contract and distinct-cap/width death tests,
// the kSortOrder deduction (sort-order-derived bitmap sizes bit-for-bit
// equal to fresh sampling, serial == pooled), and the advisor actually
// choosing a BITMAP structure over the DTAcBoth design under a byte budget.
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "advisor/advisor.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "compress/codec.h"
#include "compress/varint.h"
#include "estimator/size_estimator.h"
#include "succinct/bit_vector.h"
#include "succinct/bitmap_codec.h"
#include "succinct/wah_bitmap.h"
#include "workloads/tpch.h"

namespace capd {
namespace {

// ---------------------------------------------------------------------------
// BitVector rank/select vs. a scalar reference.
// ---------------------------------------------------------------------------

std::vector<bool> RandomBits(size_t n, double density, Random* rng) {
  std::vector<bool> bits(n);
  for (size_t i = 0; i < n; ++i) bits[i] = rng->NextDouble() < density;
  return bits;
}

void CheckRankSelect(const std::vector<bool>& bits) {
  BitVector bv;
  for (bool b : bits) bv.AppendBit(b);
  bv.Finish();
  ASSERT_EQ(bv.size(), bits.size());
  size_t ones = 0;
  for (size_t i = 0; i <= bits.size(); ++i) {
    ASSERT_EQ(bv.Rank1(i), ones) << "rank at " << i << " of " << bits.size();
    if (i < bits.size()) {
      ASSERT_EQ(bv.Get(i), bits[i]);
      if (bits[i]) {
        ASSERT_EQ(bv.Select1(ones), i)
            << "select " << ones << " of " << bits.size();
        ++ones;
      }
    }
  }
  ASSERT_EQ(bv.num_ones(), ones);
}

TEST(BitVectorTest, RankSelectWordBoundaries) {
  // Sizes straddling word (64) and superblock (512) boundaries.
  Random rng(41);
  for (size_t n : {0u, 1u, 63u, 64u, 65u, 127u, 128u, 511u, 512u, 513u,
                   1024u, 1500u}) {
    for (double density : {0.0, 0.03, 0.5, 1.0}) {
      CheckRankSelect(RandomBits(n, density, &rng));
    }
  }
}

TEST(BitVectorTest, RankSelectRandomized) {
  Random rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 1 + rng.Next(3000);
    CheckRankSelect(RandomBits(n, rng.NextDouble(), &rng));
  }
}

TEST(BitVectorTest, AppendRunMatchesAppendBit) {
  Random rng(43);
  BitVector by_run;
  std::vector<bool> bits;
  for (int r = 0; r < 40; ++r) {
    const bool bit = rng.Next(2) == 1;
    const uint64_t len = 1 + rng.Next(200);
    by_run.AppendRun(bit, len);
    for (uint64_t i = 0; i < len; ++i) bits.push_back(bit);
  }
  by_run.Finish();
  ASSERT_EQ(by_run.size(), bits.size());
  for (size_t i = 0; i < bits.size(); ++i) {
    ASSERT_EQ(by_run.Get(i), bits[i]) << i;
  }
}

TEST(BitVectorTest, DirectoryOverheadIsSmall) {
  BitVector bv;
  bv.AppendRun(true, 1 << 16);
  bv.Finish();
  // Two-level directory: ~8B/512bits + 2B/64bits = o(n) but bounded; the
  // payload is 8 KiB here, the directory must stay well under it.
  EXPECT_LT(bv.DirectoryBytes(), (1 << 16) / 8 / 2);
}

// ---------------------------------------------------------------------------
// WAH round-trip + canonical-size properties.
// ---------------------------------------------------------------------------

std::vector<bool> DecodeWah(const WahBitmap& bm) {
  std::vector<bool> out;
  bm.ForEachRun([&out](bool bit, uint64_t count) {
    for (uint64_t i = 0; i < count; ++i) out.push_back(bit);
  });
  return out;
}

TEST(WahBitmapTest, RoundTripAcrossDensities) {
  Random rng(44);
  for (double density : {0.0, 0.4, 1.0}) {
    for (size_t n : {0u, 1u, 30u, 31u, 32u, 61u, 62u, 63u, 1000u}) {
      const std::vector<bool> bits = RandomBits(n, density, &rng);
      WahBitmap bm;
      for (bool b : bits) bm.AppendBit(b);
      bm.Finish();
      EXPECT_EQ(bm.logical_bits(), n);
      EXPECT_EQ(DecodeWah(bm), bits) << "n=" << n << " density=" << density;
    }
  }
}

TEST(WahBitmapTest, AllZeroAndAllOneRunsCollapse) {
  for (bool bit : {false, true}) {
    WahBitmap bm;
    bm.AppendRun(bit, 1000000);
    bm.Finish();
    // 1e6 bits = 32258 complete groups + a 22-bit tail: one fill word plus
    // one literal.
    EXPECT_EQ(bm.words().size(), 2u);
    const std::vector<bool> bits = DecodeWah(bm);
    ASSERT_EQ(bits.size(), 1000000u);
    EXPECT_EQ(bits.front(), bit);
    EXPECT_EQ(bits.back(), bit);
  }
}

TEST(WahBitmapTest, SortedBitmapCollapsesUnsortedDoesNot) {
  // The sort-order effect in miniature: the same 1-bits, clustered vs
  // scattered. Clustered = 0-fill, 1-fill, 0-fill (a few words); scattered
  // = literals throughout.
  constexpr size_t kN = 31 * 400;
  WahBitmap sorted;
  sorted.AppendRun(false, kN / 2);
  sorted.AppendRun(true, kN / 4);
  sorted.AppendRun(false, kN - kN / 2 - kN / 4);
  sorted.Finish();
  EXPECT_LE(sorted.words().size(), 4u);

  WahBitmap scattered;
  for (size_t i = 0; i < kN; ++i) scattered.AppendBit(i % 4 == 0);
  scattered.Finish();
  EXPECT_EQ(scattered.words().size(), 400u);  // every group is a literal
}

TEST(WahBitmapTest, SizeTwinMatchesEncoder) {
  Random rng(45);
  for (int trial = 0; trial < 30; ++trial) {
    WahBitmap bm;
    WahSize size;
    const int runs = 1 + rng.Next(60);
    for (int r = 0; r < runs; ++r) {
      const bool bit = rng.Next(2) == 1;
      const uint64_t len = 1 + rng.Next(500);
      bm.AppendRun(bit, len);
      size.AppendRun(bit, len);
    }
    bm.Finish();
    EXPECT_EQ(size.FinishWordCount(), bm.words().size());
  }
}

TEST(WahBitmapTest, FromWordsRebuildsExactly) {
  Random rng(46);
  const std::vector<bool> bits = RandomBits(5000, 0.1, &rng);
  WahBitmap bm;
  for (bool b : bits) bm.AppendBit(b);
  bm.Finish();
  const WahBitmap back = WahBitmap::FromWords(bm.words(), bm.logical_bits());
  EXPECT_EQ(DecodeWah(back), bits);
  // And the BitVector expansion agrees bit-for-bit.
  const BitVector bv = back.ToBitVector();
  ASSERT_EQ(bv.size(), bits.size());
  for (size_t i = 0; i < bits.size(); ++i) ASSERT_EQ(bv.Get(i), bits[i]);
}

TEST(WahBitmapTest, FillLongerThanMaxGroupsSplitsIntoWords) {
  // A run longer than one fill word can carry splits into several fills
  // rather than overflowing the 30-bit group counter.
  WahBitmap bm;
  const uint64_t groups = uint64_t{wah::kMaxFillGroups} + 5;
  bm.AppendRun(true, groups * wah::kPayloadBits);
  bm.Finish();
  ASSERT_EQ(bm.words().size(), 2u);
  EXPECT_EQ(bm.words()[0],
            wah::kFillFlag | wah::kFillBit | wah::kMaxFillGroups);
  EXPECT_EQ(bm.words()[1], wah::kFillFlag | wah::kFillBit | 5u);
  uint64_t total = 0;
  bm.ForEachRun([&total](bool bit, uint64_t count) {
    EXPECT_TRUE(bit);
    total += count;
  });
  EXPECT_EQ(total, groups * wah::kPayloadBits);
}

// ---------------------------------------------------------------------------
// BitmapCodec: contract, bitmap-vs-NS mode decision, limits.
// ---------------------------------------------------------------------------

Schema LowDistinctSchema() {
  return Schema({{"flag", ValueType::kString, 10},
                 {"val", ValueType::kInt64, 8}});
}

std::vector<Row> LowDistinctRows(size_t n, bool sorted, Random* rng) {
  const char* kFlags[] = {"AIR", "RAIL", "SHIP", "TRUCK"};
  std::vector<Row> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const size_t pick = sorted ? (i * 4) / n : rng->Next(4);
    rows.push_back({Value::String(kFlags[pick]),
                    Value::Int64(rng->Uniform(0, 1 << 20))});
  }
  return rows;
}

TEST(BitmapCodecTest, MeasureEqualsCompressOnLowDistinct) {
  Random rng(47);
  for (bool sorted : {false, true}) {
    const Schema schema = LowDistinctSchema();
    const std::vector<Row> rows = LowDistinctRows(200, sorted, &rng);
    const BitmapCodec codec(ColumnWidths(schema));
    const FlatPage flat = FlatPage::FromRows(rows, schema, 0, rows.size());
    const size_t n = flat.num_rows();
    const size_t spans[][2] = {{0, n}, {0, 1}, {n / 3, 2 * n / 3}, {n, n}};
    for (const auto& range : spans) {
      const FlatSpan span = flat.span(range[0], range[1]);
      EXPECT_EQ(codec.MeasurePage(span), codec.CompressPage(span).size())
          << "sorted=" << sorted << " span=[" << range[0] << "," << range[1]
          << ")";
    }
  }
}

TEST(BitmapCodecTest, SortedKeyShrinksPage) {
  // Same value multiset, different row order: the sorted page's per-value
  // bitmaps are fills, the shuffled page's are literals. An index is always
  // sorted by its keys, so the sorted figure is what SampleCF sees.
  Random rng(48);
  const Schema schema = LowDistinctSchema();
  std::vector<Row> rows = LowDistinctRows(1000, true, &rng);
  const BitmapCodec codec(ColumnWidths(schema));
  const FlatPage sorted = FlatPage::FromRows(rows, schema, 0, rows.size());
  // Deterministic shuffle.
  for (size_t i = rows.size() - 1; i > 0; --i) {
    std::swap(rows[i], rows[rng.Next(static_cast<uint32_t>(i + 1))]);
  }
  const FlatPage shuffled = FlatPage::FromRows(rows, schema, 0, rows.size());
  EXPECT_LT(codec.MeasurePage(sorted), codec.MeasurePage(shuffled));
  // And sorted BITMAP beats the pure NS fallback (which is order-blind).
  const RowCodec ns(ColumnWidths(schema));
  EXPECT_LT(codec.MeasurePage(sorted), ns.MeasurePage(sorted.span()));
}

TEST(BitmapCodecTest, HighDistinctFallsBackToNs) {
  // Distinct count above the cap: the blob must match the NS payload plus
  // the mode bytes, and still round-trip.
  Random rng(49);
  const Schema schema = LowDistinctSchema();
  std::vector<Row> rows;
  for (int i = 0; i < 300; ++i) {
    rows.push_back({Value::String("v" + std::to_string(i)),  // 300 distinct
                    Value::Int64(rng.Uniform(0, 1 << 20))});
  }
  const BitmapCodec codec(ColumnWidths(schema));
  const FlatPage flat = FlatPage::FromRows(rows, schema, 0, rows.size());
  const std::string blob = codec.CompressPage(flat);
  EXPECT_EQ(codec.MeasurePage(flat), blob.size());
  const EncodedPage back = codec.DecompressPage(blob);
  ASSERT_EQ(back.rows.size(), rows.size());
  EXPECT_EQ(back.rows[7][0], flat.field(7, 0));
}

TEST(BitmapCodecDeathTest, FieldWiderThan255Aborts) {
  EXPECT_DEATH(BitmapCodec({8, 256}), "CHECK failed");
}

TEST(BitmapCodecDeathTest, DecompressRejectsDistinctAboveCap) {
  // Handcraft a blob claiming d = cap + 1 for a 1-column page.
  std::string blob;
  PutVarint(4, &blob);                     // n_rows
  blob.push_back(static_cast<char>(1));    // mode: bitmap
  PutVarint(BitmapCodec::kMaxDistinctPerColumn + 1, &blob);
  const BitmapCodec codec({8});
  EXPECT_DEATH(codec.DecompressPage(blob), "CHECK failed");
}

// ---------------------------------------------------------------------------
// kSortOrder deduction: derived sizes == fresh sampling, bit for bit.
// ---------------------------------------------------------------------------

class SortOrderDeductionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tpch::Options opt;
    opt.lineitem_rows = 6000;
    tpch::Build(&db_, opt);
    samples_ = std::make_unique<SampleManager>(1234);
    source_ = std::make_unique<TableSampleSource>(db_, samples_.get());
  }

  IndexDef Idx(std::vector<std::string> keys, CompressionKind kind) {
    IndexDef def;
    def.object = "lineitem";
    def.key_columns = std::move(keys);
    def.compression = kind;
    return def;
  }

  // Three sort orders of one column set: exactly one should sample, the
  // other two should ride kSortOrder deductions.
  std::vector<IndexDef> SortOrderTargets(CompressionKind kind) {
    return {Idx({"l_returnflag", "l_shipmode", "l_shipdate"}, kind),
            Idx({"l_shipmode", "l_shipdate", "l_returnflag"}, kind),
            Idx({"l_shipdate", "l_returnflag", "l_shipmode"}, kind)};
  }

  Database db_;
  std::unique_ptr<SampleManager> samples_;
  std::unique_ptr<TableSampleSource> source_;
};

TEST_F(SortOrderDeductionTest, DerivedSizesMatchFreshSamplingBitForBit) {
  constexpr double kF = 0.05;
  for (CompressionKind kind :
       {CompressionKind::kBitmap, CompressionKind::kRle}) {
    EstimationGraph graph(db_, source_.get(), ErrorModel());
    graph.set_enable_sort_order(true);
    graph.AddTargets(SortOrderTargets(kind));
    graph.Greedy(kF, /*e=*/0.25, /*q=*/0.9);
    EXPECT_EQ(graph.NumSampled(), 1u) << CompressionKindName(kind);
    EXPECT_EQ(graph.NumSortOrderDeduced(), 2u) << CompressionKindName(kind);

    const auto estimates = graph.Execute(kF);
    ASSERT_EQ(estimates.size(), 3u);

    // A fresh, independent estimator stack (same seed => same samples)
    // must produce every estimate bit-for-bit, deduced or sampled.
    SampleManager fresh_samples(1234);
    TableSampleSource fresh_source(db_, &fresh_samples);
    SampleCfEstimator fresh(db_, &fresh_source);
    for (const IndexDef& def : SortOrderTargets(kind)) {
      const SampleCfResult& got = estimates.at(def.Signature());
      const SampleCfResult want = fresh.Estimate(def, kF);
      EXPECT_EQ(got.est_bytes, want.est_bytes) << def.ToString();
      EXPECT_EQ(got.cf, want.cf) << def.ToString();
      EXPECT_EQ(got.est_tuples, want.est_tuples) << def.ToString();
      EXPECT_EQ(got.est_uncompressed_bytes, want.est_uncompressed_bytes);
    }
  }
}

TEST_F(SortOrderDeductionTest, SortOrderDeductionCutsSamplingCost) {
  constexpr double kF = 0.05;
  EstimationGraph with(db_, source_.get(), ErrorModel());
  with.set_enable_sort_order(true);
  with.AddTargets(SortOrderTargets(CompressionKind::kBitmap));
  const double cost_with = with.Greedy(kF, 0.25, 0.9);

  EstimationGraph without(db_, source_.get(), ErrorModel());
  without.AddTargets(SortOrderTargets(CompressionKind::kBitmap));
  const double cost_without = without.Greedy(kF, 0.25, 0.9);

  // One sampled leaf instead of three: cost collapses to about a third.
  EXPECT_LT(cost_with, 0.5 * cost_without);
}

TEST_F(SortOrderDeductionTest, SerialAndPooledExecuteIdentical) {
  constexpr double kF = 0.05;
  auto run = [&](ThreadPool* pool) {
    // Fresh sample stack per run: true independence between executions.
    SampleManager samples(1234);
    TableSampleSource source(db_, &samples);
    EstimationGraph graph(db_, &source, ErrorModel());
    graph.set_enable_sort_order(true);
    graph.AddTargets(SortOrderTargets(CompressionKind::kBitmap));
    graph.Greedy(kF, 0.25, 0.9, pool);
    return graph.Execute(kF, pool);
  };
  const auto serial = run(nullptr);
  ThreadPool pool(4);
  const auto pooled = run(&pool);
  ASSERT_EQ(serial.size(), pooled.size());
  for (const auto& [sig, r] : serial) {
    const SampleCfResult& p = pooled.at(sig);
    EXPECT_EQ(r.est_bytes, p.est_bytes) << sig;
    EXPECT_EQ(r.cf, p.cf) << sig;
    EXPECT_EQ(r.cost_pages, p.cost_pages) << sig;
  }
}

// ---------------------------------------------------------------------------
// Advisor end-to-end: BITMAP candidates compete and win under a budget.
// ---------------------------------------------------------------------------

class BitmapAdvisorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tpch::Options opt;
    opt.lineitem_rows = 3000;
    tpch::Build(&db_, opt);
    // Equality-heavy workload over low-distinct lineitem columns: the
    // sweet spot for per-value bitmaps (l_shipmode: 7 distinct,
    // l_returnflag: 3).
    SelectQuery q1;
    q1.table = "lineitem";
    q1.predicates = {{"l_shipmode", FilterOp::kEq, Value::String("MAIL"), {}}};
    q1.aggregates = {{"l_extendedprice", "SUM"}};
    SelectQuery q2;
    q2.table = "lineitem";
    q2.predicates = {{"l_returnflag", FilterOp::kEq, Value::String("R"), {}}};
    q2.aggregates = {{"l_quantity", "SUM"}};
    q2.group_by = {"l_shipmode"};
    workload_.statements = {Statement::Select("B1", q1, 4.0),
                            Statement::Select("B2", q2, 2.0)};
    optimizer_ = std::make_unique<WhatIfOptimizer>(db_, CostModelParams{});
  }

  AdvisorResult Run(const AdvisorOptions& options, double budget_frac) {
    SampleManager samples(99);
    TableSampleSource source(db_, &samples);
    SizeEstimator sizes(db_, &source, ErrorModel(), options.size_options);
    Advisor advisor(db_, *optimizer_, &sizes, nullptr, options);
    return advisor.Tune(
        workload_, budget_frac * static_cast<double>(db_.BaseDataBytes()));
  }

  static size_t CountBitmapIndexes(const Configuration& config) {
    size_t n = 0;
    for (const PhysicalIndexEstimate& idx : config.indexes()) {
      if (idx.def.compression == CompressionKind::kBitmap) ++n;
    }
    return n;
  }

  Database db_;
  Workload workload_;
  std::unique_ptr<WhatIfOptimizer> optimizer_;
};

TEST_F(BitmapAdvisorTest, AdvisorSelectsBitmapAndBeatsPreviousBest) {
  bool bitmap_won_somewhere = false;
  for (double frac : {0.05, 0.15, 0.3}) {
    const AdvisorResult both = Run(AdvisorOptions::DTAcBoth(), frac);
    const AdvisorResult bitmap = Run(AdvisorOptions::DTAcBitmap(), frac);
    // A strictly larger variant space can never lose by much; assert it
    // never regresses materially at any point.
    EXPECT_LE(bitmap.final_cost, both.final_cost * 1.02) << "frac=" << frac;
    if (CountBitmapIndexes(bitmap.config) > 0 &&
        bitmap.final_cost < both.final_cost) {
      bitmap_won_somewhere = true;
    }
  }
  // The acceptance point: somewhere on the budget axis the advisor chose a
  // BITMAP structure and beat the previous best design at equal budget.
  EXPECT_TRUE(bitmap_won_somewhere);
}

TEST_F(BitmapAdvisorTest, BitmapVariantsOnlyOnLowDistinctLeadingKeys) {
  AdvisorOptions options = AdvisorOptions::DTAcBitmap();
  CandidateGenerator generator(db_, *optimizer_, nullptr, options);
  const std::vector<IndexDef> candidates =
      generator.GenerateForWorkload(workload_);
  size_t bitmap_variants = 0;
  for (const IndexDef& d : candidates) {
    if (d.compression != CompressionKind::kBitmap) continue;
    ++bitmap_variants;
    ASSERT_FALSE(d.key_columns.empty());
    const ColumnStats& cs = db_.stats(d.object).column(d.key_columns.front());
    EXPECT_LE(cs.distinct, options.bitmap_max_leading_distinct)
        << d.ToString();
  }
  EXPECT_GT(bitmap_variants, 0u);
}

}  // namespace
}  // namespace capd
