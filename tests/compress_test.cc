// Unit + property tests for the compression codecs, including the
// ORD-IND/ORD-DEP behaviours the paper's deductions rely on.
#include <algorithm>

#include <gtest/gtest.h>

#include "common/random.h"
#include "compress/codec_factory.h"
#include "compress/flat_page.h"
#include "compress/global_dict_codec.h"
#include "compress/null_suppression.h"
#include "compress/page_codec.h"
#include "compress/rle_codec.h"
#include "compress/varint.h"

namespace capd {
namespace {

Schema TwoColSchema() {
  return Schema({{"a", ValueType::kInt64, 8}, {"b", ValueType::kString, 12}});
}

std::vector<Row> MakeRows(int n, int distinct_a, Random* rng) {
  std::vector<Row> rows;
  const char* kWords[] = {"alpha", "beta", "gamma", "delta"};
  for (int i = 0; i < n; ++i) {
    rows.push_back({Value::Int64(rng->Uniform(0, distinct_a - 1)),
                    Value::String(kWords[rng->Next(4)])});
  }
  return rows;
}

bool PagesEqual(const EncodedPage& a, const EncodedPage& b) {
  if (a.rows.size() != b.rows.size()) return false;
  for (size_t i = 0; i < a.rows.size(); ++i) {
    if (a.rows[i] != b.rows[i]) return false;
  }
  return true;
}

TEST(VarintTest, RoundTrip) {
  for (uint64_t v : {0ull, 1ull, 127ull, 128ull, 300ull, 1ull << 40, ~0ull}) {
    std::string buf;
    PutVarint(v, &buf);
    EXPECT_EQ(buf.size(), VarintSize(v));
    size_t offset = 0;
    EXPECT_EQ(GetVarint(buf, &offset), v);
    EXPECT_EQ(offset, buf.size());
  }
}

TEST(NullSuppressionTest, FieldRoundTrip) {
  for (const std::string& field :
       {std::string("\0\0\0abc", 6), std::string("abc"), std::string(4, '\0'),
        std::string("\0x\0y", 4)}) {
    std::string compressed;
    NsCompressField(field, &compressed);
    EXPECT_EQ(compressed.size(), NsFieldSize(field));
    std::string back;
    size_t offset = 0;
    NsDecompressField(compressed, &offset, static_cast<uint32_t>(field.size()), &back);
    EXPECT_EQ(back, field);
  }
}

TEST(NullSuppressionTest, AllZerosCompressesToHeader) {
  const std::string field(8, '\0');
  EXPECT_EQ(NsFieldSize(field), 1u);
}

TEST(NullSuppressionTest, NoZerosCostsOneByteHeader) {
  const std::string field = "abcdefgh";
  EXPECT_EQ(NsFieldSize(field), 9u);
}

// Property suite: every codec round-trips random pages.
class CodecRoundTrip : public ::testing::TestWithParam<CompressionKind> {};

TEST_P(CodecRoundTrip, RandomPages) {
  Random rng(31);
  const Schema schema = TwoColSchema();
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Row> rows = MakeRows(1 + static_cast<int>(rng.Next(200)), 5, &rng);
    std::unique_ptr<Codec> codec = MakeCodec(GetParam(), schema, rows);
    const EncodedPage page = EncodeRows(rows, schema, 0, rows.size());
    const std::string blob = codec->CompressPage(page);
    const EncodedPage back = codec->DecompressPage(blob);
    EXPECT_TRUE(PagesEqual(page, back)) << CompressionKindName(GetParam());
  }
}

TEST_P(CodecRoundTrip, MeasureMatchesCompressedSize) {
  Random rng(41);
  const Schema schema = TwoColSchema();
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Row> rows =
        MakeRows(1 + static_cast<int>(rng.Next(150)), 5, &rng);
    std::unique_ptr<Codec> codec = MakeCodec(GetParam(), schema, rows);
    const FlatPage page = FlatPage::FromRows(rows, schema, 0, rows.size());
    EXPECT_EQ(codec->MeasurePage(page), codec->CompressPage(page.span()).size())
        << CompressionKindName(GetParam());
  }
}

TEST_P(CodecRoundTrip, EmptyPage) {
  const Schema schema = TwoColSchema();
  std::vector<Row> rows;
  std::unique_ptr<Codec> codec = MakeCodec(GetParam(), schema, rows);
  const EncodedPage page;
  const EncodedPage back = codec->DecompressPage(codec->CompressPage(page));
  EXPECT_EQ(back.rows.size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, CodecRoundTrip,
    ::testing::Values(CompressionKind::kNone, CompressionKind::kRow,
                      CompressionKind::kPage, CompressionKind::kGlobalDict,
                      CompressionKind::kRle),
    [](const auto& info) {
      std::string n = CompressionKindName(info.param);
      n.erase(std::remove_if(n.begin(), n.end(),
                             [](char c) { return !std::isalnum(static_cast<unsigned char>(c)); }),
              n.end());
      return n;
    });

TEST(RowCodecTest, SmallIntsCompress) {
  const Schema schema({{"a", ValueType::kInt64, 8}});
  std::vector<Row> rows;
  for (int i = 0; i < 100; ++i) rows.push_back({Value::Int64(i % 3)});
  const EncodedPage page = EncodeRows(rows, schema, 0, rows.size());
  NoneCodec none(ColumnWidths(schema));
  RowCodec row(ColumnWidths(schema));
  EXPECT_LT(row.CompressPage(page).size(), none.CompressPage(page).size() / 2);
}

TEST(RowCodecTest, OrderIndependentSize) {
  Random rng(77);
  const Schema schema = TwoColSchema();
  std::vector<Row> rows = MakeRows(150, 4, &rng);
  RowCodec codec(ColumnWidths(schema));
  const size_t size1 =
      codec.CompressPage(EncodeRows(rows, schema, 0, rows.size())).size();
  std::shuffle(rows.begin(), rows.end(), rng.engine());
  const size_t size2 =
      codec.CompressPage(EncodeRows(rows, schema, 0, rows.size())).size();
  EXPECT_EQ(size1, size2);  // NS size is a function of the multiset only
}

TEST(PageCodecTest, DuplicatesGoToDictionary) {
  const Schema schema({{"s", ValueType::kString, 12}});
  std::vector<Row> uniform, distinct;
  for (int i = 0; i < 100; ++i) {
    uniform.push_back({Value::String("same-value")});
    distinct.push_back({Value::String("val" + std::to_string(i))});
  }
  PageCodec codec(ColumnWidths(schema));
  const size_t uniform_size =
      codec.CompressPage(EncodeRows(uniform, schema, 0, uniform.size())).size();
  const size_t distinct_size =
      codec.CompressPage(EncodeRows(distinct, schema, 0, distinct.size())).size();
  EXPECT_LT(uniform_size, distinct_size / 3);
}

TEST(PageCodecTest, OrderDependentSize) {
  // Sorted order clusters duplicates per page only when pages are small;
  // within one page the dictionary sees the same multiset, so exercise the
  // anchor instead: a sorted prefix of similar strings lengthens the common
  // prefix within the page.
  const Schema schema({{"s", ValueType::kString, 12}});
  std::vector<Row> close, far;
  for (int i = 0; i < 64; ++i) {
    close.push_back({Value::String("prefix_" + std::to_string(i % 4))});
    far.push_back({Value::String(std::string(1, static_cast<char>('a' + i % 26)) +
                                 std::to_string(i))});
  }
  PageCodec codec(ColumnWidths(schema));
  const size_t close_size =
      codec.CompressPage(EncodeRows(close, schema, 0, close.size())).size();
  const size_t far_size =
      codec.CompressPage(EncodeRows(far, schema, 0, far.size())).size();
  EXPECT_LT(close_size, far_size);
}

TEST(RleCodecTest, SortedBeatsShuffled) {
  Random rng(5);
  const Schema schema({{"a", ValueType::kInt64, 8}});
  std::vector<Row> rows;
  for (int i = 0; i < 200; ++i) rows.push_back({Value::Int64(i / 50)});
  RleCodec codec(ColumnWidths(schema));
  const size_t sorted_size =
      codec.CompressPage(EncodeRows(rows, schema, 0, rows.size())).size();
  std::shuffle(rows.begin(), rows.end(), rng.engine());
  const size_t shuffled_size =
      codec.CompressPage(EncodeRows(rows, schema, 0, rows.size())).size();
  EXPECT_LT(sorted_size, shuffled_size / 4);
}

TEST(GlobalDictTest, PointerWidthGrowsWithDistincts) {
  const Schema schema({{"a", ValueType::kInt64, 8}});
  std::vector<Row> few, many;
  for (int i = 0; i < 600; ++i) {
    few.push_back({Value::Int64(i % 10)});
    many.push_back({Value::Int64(i)});
  }
  auto few_codec = GlobalDictCodec::Build(few, schema);
  auto many_codec = GlobalDictCodec::Build(many, schema);
  EXPECT_EQ(few_codec->PointerWidth(0), 1u);
  EXPECT_EQ(many_codec->PointerWidth(0), 2u);
  EXPECT_EQ(few_codec->DictionarySize(0), 10u);
  EXPECT_EQ(many_codec->DictionarySize(0), 600u);
}

TEST(GlobalDictTest, DictionaryChargedAsOverhead) {
  const Schema schema({{"a", ValueType::kInt64, 8}});
  std::vector<Row> rows;
  for (int i = 0; i < 100; ++i) rows.push_back({Value::Int64(i % 10)});
  auto codec = GlobalDictCodec::Build(rows, schema);
  EXPECT_GT(codec->IndexOverheadBytes(), 0u);
}

TEST(CompressionKindTest, OrderDependenceTaxonomy) {
  EXPECT_FALSE(IsOrderDependent(CompressionKind::kNone));
  EXPECT_FALSE(IsOrderDependent(CompressionKind::kRow));
  EXPECT_FALSE(IsOrderDependent(CompressionKind::kGlobalDict));
  EXPECT_TRUE(IsOrderDependent(CompressionKind::kPage));
  EXPECT_TRUE(IsOrderDependent(CompressionKind::kRle));
  EXPECT_TRUE(IsOrderDependent(CompressionKind::kBitmap));
}

TEST(CompressionKindTest, AllCompressedKindsExcludesNone) {
  for (CompressionKind k : AllCompressedKinds()) {
    EXPECT_NE(k, CompressionKind::kNone);
  }
  EXPECT_EQ(AllCompressedKinds().size(), 5u);
}

}  // namespace
}  // namespace capd
