// AdvisorEngine service-API tests: the headline guarantee is that
// concurrent Tune() requests on one engine — shared samples, shared
// estimation cache, shared pools — are bit-identical (results AND rendered
// reports, bytes included) to running each request alone on a freshly
// hand-wired stack. Plus: strategy resolution errors, cooperative
// cancellation, budget-mode edge cases (fraction vs bytes, 0% / 100% / 0
// bytes pinning the negative-charge behavior of the paper's Example 1/2),
// and JSON goldens for all three report strategies on TPC-H.
//
// Regenerate the JSON goldens after an intentional change with:
//   CAPD_UPDATE_GOLDEN=1 ./build/engine_test
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "advisor/report.h"
#include "advisor/report_json.h"
#include "engine/advisor_engine.h"
#include "workloads/registry.h"

namespace capd {
namespace {

constexpr double kBudgetFrac = 0.15;
constexpr uint64_t kRows = 2000;

bool UpdateGoldenMode() {
  const char* env = std::getenv("CAPD_UPDATE_GOLDEN");
  return env != nullptr && env[0] != '\0' && std::string(env) != "0";
}

std::string GoldenJsonPath(const std::string& name) {
  return std::string(CAPD_GOLDEN_DIR) + "/" + name + ".json";
}

// What a request would compute on a freshly wired stack — the reference
// the engine must reproduce to the bit. Mirrors the engine's per-request
// wiring (same default sample seed, strategy-resolved options) without any
// engine-owned shared state.
struct FreshRun {
  AdvisorResult result;
  std::string report;
  std::string json;
};

FreshRun RunOnFreshStack(const Database& db, const Workload& workload,
                         const std::string& strategy_name,
                         double budget_bytes) {
  const std::shared_ptr<const Strategy> strategy =
      StrategyRegistry::Global().Find(strategy_name);
  EXPECT_NE(strategy, nullptr) << strategy_name;
  SampleManager samples(4242);
  MVRegistry mvs(db, &samples);
  WhatIfOptimizer optimizer(db, CostModelParams{});
  optimizer.set_mv_matcher(&mvs);
  const AdvisorOptions options = strategy->MakeOptions();
  SizeEstimator estimator(db, &mvs, ErrorModel(), options.size_options);
  Advisor advisor(db, optimizer, &estimator, &mvs, options);
  FreshRun run;
  run.result = strategy->Run(&advisor, workload, budget_bytes);
  run.report = RenderTuningReport(run.result, &mvs, budget_bytes);
  run.json = RenderTuningReportJson(run.result, &mvs, budget_bytes,
                                    strategy_name);
  return run;
}

void ExpectBitIdentical(const AdvisorResult& a, const AdvisorResult& b) {
  EXPECT_EQ(std::memcmp(&a.initial_cost, &b.initial_cost, sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&a.final_cost, &b.final_cost, sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&a.charged_bytes, &b.charged_bytes, sizeof(double)),
            0);
  ASSERT_EQ(a.config.size(), b.config.size());
  const auto& ia = a.config.indexes();
  const auto& ib = b.config.indexes();
  for (size_t i = 0; i < ia.size(); ++i) {
    EXPECT_EQ(ia[i].def.Signature(), ib[i].def.Signature()) << i;
    EXPECT_EQ(std::memcmp(&ia[i].bytes, &ib[i].bytes, sizeof(double)), 0);
    EXPECT_EQ(std::memcmp(&ia[i].tuples, &ib[i].tuples, sizeof(double)), 0);
  }
}

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workloads::WorkloadSpec spec;
    spec.name = "tpch";
    spec.rows = kRows;
    std::string error;
    ASSERT_TRUE(workloads::Build(spec, &built_, &error)) << error;
  }

  double BudgetBytes() const {
    return kBudgetFrac * static_cast<double>(built_.db->BaseDataBytes());
  }

  TuningRequest MakeRequest(const std::string& strategy) const {
    TuningRequest request;
    request.workload = built_.workload;
    request.strategy = strategy;
    request.budget = TuningBudget::Fraction(kBudgetFrac);
    return request;
  }

  workloads::BuiltWorkload built_;
};

// The strategies the concurrency and golden tests cycle through (the three
// report strategies of the text goldens).
const char* const kStrategies[] = {"dtac-topk", "dtac-skyline", "staged:page"};

TEST_F(EngineTest, ConcurrentTuneBitIdenticalToFreshStacks) {
  // Reference runs, one per strategy, on fresh hand-wired stacks.
  std::map<std::string, FreshRun> fresh;
  for (const char* strategy : kStrategies) {
    fresh[strategy] = RunOnFreshStack(*built_.db, built_.workload, strategy,
                                      BudgetBytes());
  }

  for (const bool shared_cache : {true, false}) {
    for (const int clients : {1, 2, 4}) {
      EngineOptions options;
      options.share_estimation_cache = shared_cache;
      AdvisorEngine engine(*built_.db, options);

      std::vector<TuningResponse> responses(clients);
      std::vector<std::thread> threads;
      threads.reserve(clients);
      for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
          responses[c] = engine.Tune(MakeRequest(kStrategies[c % 3]));
        });
      }
      for (std::thread& t : threads) t.join();

      for (int c = 0; c < clients; ++c) {
        const FreshRun& reference = fresh[kStrategies[c % 3]];
        SCOPED_TRACE(std::string(kStrategies[c % 3]) +
                     " shared_cache=" + (shared_cache ? "on" : "off") +
                     " clients=" + std::to_string(clients));
        ASSERT_TRUE(responses[c].ok()) << responses[c].error;
        ExpectBitIdentical(reference.result, responses[c].result);
        // Stronger than the result: the rendered bytes (which include the
        // cache counters) must not see the shared state either.
        EXPECT_EQ(reference.report, responses[c].report);
        EXPECT_EQ(reference.json, responses[c].json);
      }
    }
  }
}

TEST_F(EngineTest, WarmEngineRendersIdenticalBytes) {
  // Request N is served from caches request N-1 filled; the rendered
  // report must not change (fraction-exact estimation cache, per-request
  // cost cache).
  AdvisorEngine engine(*built_.db);
  const TuningResponse cold = engine.Tune(MakeRequest("dtac-skyline"));
  ASSERT_TRUE(cold.ok()) << cold.error;
  ASSERT_NE(engine.estimation_cache(), nullptr);
  EXPECT_GT(engine.estimation_cache()->size(), 0u);  // warmth is real
  const TuningResponse warm = engine.Tune(MakeRequest("dtac-skyline"));
  ASSERT_TRUE(warm.ok()) << warm.error;
  EXPECT_EQ(cold.report, warm.report);
  EXPECT_EQ(cold.json, warm.json);
  // ... and a different strategy on the warm engine still matches its own
  // fresh-stack reference.
  const TuningResponse staged = engine.Tune(MakeRequest("staged:page"));
  ASSERT_TRUE(staged.ok()) << staged.error;
  const FreshRun reference = RunOnFreshStack(*built_.db, built_.workload,
                                             "staged:page", BudgetBytes());
  EXPECT_EQ(reference.report, staged.report);
}

TEST_F(EngineTest, UnknownStrategyErrorsCleanly) {
  AdvisorEngine engine(*built_.db);
  const TuningResponse response = engine.Tune(MakeRequest("dtac-quantum"));
  EXPECT_EQ(response.status, TuningResponse::Status::kError);
  EXPECT_NE(response.error.find("unknown strategy 'dtac-quantum'"),
            std::string::npos)
      << response.error;
  EXPECT_NE(response.error.find("dtac-topk"), std::string::npos)
      << "error should list known strategies: " << response.error;
  // The engine survives a failed resolution.
  EXPECT_TRUE(engine.Tune(MakeRequest("dtac-topk")).ok());
}

TEST_F(EngineTest, InvalidBudgetErrors) {
  AdvisorEngine engine(*built_.db);
  TuningRequest request = MakeRequest("dtac-topk");
  request.budget = TuningBudget::Fraction(-0.1);
  EXPECT_EQ(engine.Tune(request).status, TuningResponse::Status::kError);
  request.budget = TuningBudget::Bytes(-1.0);
  EXPECT_EQ(engine.Tune(request).status, TuningResponse::Status::kError);
}

TEST_F(EngineTest, CancellationMidTuneReturnsFlaggedResponse) {
  AdvisorEngine engine(*built_.db);
  TuningRequest request = MakeRequest("dtac-skyline");
  CancellationToken token = request.cancel;
  std::vector<std::string> phases;
  request.progress = [&](const std::string& phase) {
    phases.push_back(phase);
    if (phase == "estimation") token.RequestCancel();
  };
  const TuningResponse response = engine.Tune(request);
  EXPECT_TRUE(response.cancelled());
  EXPECT_TRUE(response.result.cancelled);
  EXPECT_NE(response.json.find("\"cancelled\": true"), std::string::npos);
  // The run stopped right after the estimation phase: selection never ran.
  ASSERT_GE(phases.size(), 2u);
  EXPECT_EQ(phases.back(), "estimation");
  // A cancelled engine still serves the next request normally.
  EXPECT_TRUE(engine.Tune(MakeRequest("dtac-skyline")).ok());
}

TEST_F(EngineTest, CancellationBeforeStartAndMidEnumeration) {
  AdvisorEngine engine(*built_.db);
  // Pre-cancelled: flagged immediately, nothing recommended.
  TuningRequest pre = MakeRequest("dtac-topk");
  pre.cancel.RequestCancel();
  const TuningResponse early = engine.Tune(pre);
  EXPECT_TRUE(early.cancelled());
  EXPECT_EQ(early.result.config.size(), 0u);
  // Cancelled between selection and enumeration: the partial result still
  // carries coherent costs (Enumerate falls through to the final costing).
  TuningRequest mid = MakeRequest("dtac-topk");
  CancellationToken token = mid.cancel;
  mid.progress = [&](const std::string& phase) {
    if (phase == "merging") token.RequestCancel();
  };
  const TuningResponse response = engine.Tune(mid);
  EXPECT_TRUE(response.cancelled());
}

TEST_F(EngineTest, BudgetFractionAndBytesAgree) {
  AdvisorEngine engine(*built_.db);
  TuningRequest by_fraction = MakeRequest("dtac-skyline");
  TuningRequest by_bytes = MakeRequest("dtac-skyline");
  by_bytes.budget = TuningBudget::Bytes(BudgetBytes());
  const TuningResponse a = engine.Tune(by_fraction);
  const TuningResponse b = engine.Tune(by_bytes);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(std::memcmp(&a.budget_bytes, &b.budget_bytes, sizeof(double)), 0);
  ExpectBitIdentical(a.result, b.result);
  EXPECT_EQ(a.report, b.report);
}

TEST_F(EngineTest, ZeroAndFullBudgetEdges) {
  AdvisorEngine engine(*built_.db);

  // 0% and absolute-0 budgets are the same request; both are meaningful:
  // compressed clustered indexes replace the heap, so ChargedBytes can go
  // negative and DTAc frees space with no budget at all (Example 1/2).
  TuningRequest zero_frac = MakeRequest("dtac-both");
  zero_frac.budget = TuningBudget::Fraction(0.0);
  TuningRequest zero_bytes = MakeRequest("dtac-both");
  zero_bytes.budget = TuningBudget::Bytes(0.0);
  const TuningResponse zf = engine.Tune(zero_frac);
  const TuningResponse zb = engine.Tune(zero_bytes);
  ASSERT_TRUE(zf.ok() && zb.ok());
  ExpectBitIdentical(zf.result, zb.result);
  EXPECT_LE(zf.result.charged_bytes, 1.0);
  EXPECT_GT(zf.result.config.size(), 0u)
      << "DTAc should free space via compression even at a 0-byte budget";
  EXPECT_LT(zf.result.charged_bytes, 0.0)
      << "the recommended design should charge negative bytes";

  // 100% of the base data: simply a roomy budget; the charge respects it.
  TuningRequest full = MakeRequest("dtac-both");
  full.budget = TuningBudget::Fraction(1.0);
  const TuningResponse f = engine.Tune(full);
  ASSERT_TRUE(f.ok());
  EXPECT_LE(f.result.charged_bytes, f.budget_bytes + 1.0);
  EXPECT_GE(f.result.improvement_percent(),
            zf.result.improvement_percent() - 1e-9)
      << "a roomy budget can only help";
}

TEST_F(EngineTest, RequestKnobsOverrideEngineDefaults) {
  EngineOptions options;
  options.search_threads = 1;
  options.estimation_threads = 1;
  AdvisorEngine engine(*built_.db, options);
  const FreshRun reference = RunOnFreshStack(*built_.db, built_.workload,
                                             "dtac-skyline", BudgetBytes());
  TuningRequest request = MakeRequest("dtac-skyline");
  request.search_threads = 4;
  request.estimation_threads = 2;
  request.cost_cache = 0;
  const TuningResponse response = engine.Tune(request);
  ASSERT_TRUE(response.ok()) << response.error;
  // Threads and cache knobs never change the recommendation...
  ExpectBitIdentical(reference.result, response.result);
  // ...and disabling the cost cache is observable in the counters.
  EXPECT_EQ(response.result.stmt_costs_cached, 0u);
}

TEST_F(EngineTest, MvEnabledRequestsDoNotLeakAcrossRequests) {
  // MV candidates are named after query ids ("mv_Q1", ...), and MV-enabled
  // runs Register() them in the registry they tune against. Two requests
  // whose workloads reuse the same statement ids for different queries
  // must therefore not share a registry — request 2 would silently tune
  // against request 1's MV definitions. The engine isolates MV-enabled
  // requests in a per-request registry; this pins it.
  const auto& stmts = built_.workload.statements;
  ASSERT_GE(stmts.size(), 12u);
  Workload first;
  Workload second;
  for (size_t i = 0; i < 6; ++i) {
    first.statements.push_back(stmts[i]);
    Statement renamed = stmts[6 + i];
    renamed.id = stmts[i].id;  // collide ids across the two requests
    second.statements.push_back(renamed);
  }

  AdvisorOptions options = AdvisorOptions::DTAcBoth();
  options.enable_mv = true;

  AdvisorEngine engine(*built_.db);
  engine.TuneWithOptions(first, BudgetBytes(), options);  // pollute, maybe
  const AdvisorResult served =
      engine.TuneWithOptions(second, BudgetBytes(), options);

  // Reference: the second request alone on a fresh hand-wired stack.
  SampleManager samples(4242);
  MVRegistry mvs(*built_.db, &samples);
  WhatIfOptimizer optimizer(*built_.db, CostModelParams{});
  optimizer.set_mv_matcher(&mvs);
  SizeEstimator estimator(*built_.db, &mvs, ErrorModel(),
                          options.size_options);
  Advisor advisor(*built_.db, optimizer, &estimator, &mvs, options);
  const AdvisorResult fresh = advisor.Tune(second, BudgetBytes());

  ExpectBitIdentical(fresh, served);
}

TEST_F(EngineTest, JsonReportShapeBasics) {
  AdvisorEngine engine(*built_.db);
  const TuningResponse response = engine.Tune(MakeRequest("dtac-skyline"));
  ASSERT_TRUE(response.ok()) << response.error;
  EXPECT_NE(response.json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(response.json.find("\"strategy\": \"dtac-skyline\""),
            std::string::npos);
  EXPECT_NE(response.json.find("\"objects\": ["), std::string::npos);
  EXPECT_EQ(response.json.find("NaN"), std::string::npos);
  EXPECT_EQ(response.json.back(), '\n');
}

// JSON goldens: the structured rendering of all three report strategies on
// TPC-H, byte-for-byte (the JSON twin of golden_report_test).
class JsonGoldenTest : public EngineTest,
                       public ::testing::WithParamInterface<const char*> {};

TEST_P(JsonGoldenTest, JsonMatchesGoldenByteForByte) {
  const std::string strategy = GetParam();
  std::string tag = "tpch_" + strategy;
  for (char& c : tag) {
    if (c == '-' || c == ':') c = '_';
  }

  AdvisorEngine engine(*built_.db);
  const TuningResponse response = engine.Tune(MakeRequest(strategy));
  ASSERT_TRUE(response.ok()) << response.error;
  ASSERT_FALSE(response.json.empty());

  const std::string path = GoldenJsonPath(tag);
  if (UpdateGoldenMode()) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << response.json;
    std::fprintf(stderr, "[golden] updated %s\n", path.c_str());
    return;
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden " << path
                         << " — regenerate with CAPD_UPDATE_GOLDEN=1";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(response.json, expected.str())
      << "JSON report drifted from " << path
      << " — if intentional, regenerate with CAPD_UPDATE_GOLDEN=1 and "
         "review the diff (schema changes must bump kTuningReportJsonVersion)";
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, JsonGoldenTest,
                         ::testing::ValuesIn(kStrategies),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-' || c == ':') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace capd
