// Unit tests for src/common: RNG, Zipf, statistical helpers.
#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/random.h"
#include "common/zipf.h"

namespace capd {
namespace {

TEST(RandomTest, DeterministicUnderSeed) {
  Random a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(1000), b.Next(1000));
  }
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next(1000000) == b.Next(1000000)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RandomTest, UniformBounds) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.Uniform(-5, 9);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 9);
  }
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, SampleIndicesExactSizeSortedUnique) {
  Random rng(11);
  for (uint64_t n : {10u, 100u, 1000u}) {
    for (uint64_t k : {1u, 5u, 9u}) {
      auto s = rng.SampleIndices(n, std::min<uint64_t>(k, n));
      EXPECT_EQ(s.size(), std::min<uint64_t>(k, n));
      EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
      std::set<uint64_t> uniq(s.begin(), s.end());
      EXPECT_EQ(uniq.size(), s.size());
      for (uint64_t idx : s) EXPECT_LT(idx, n);
    }
  }
}

TEST(RandomTest, SampleIndicesFullRange) {
  Random rng(13);
  auto s = rng.SampleIndices(20, 20);
  EXPECT_EQ(s.size(), 20u);
  for (uint64_t i = 0; i < 20; ++i) EXPECT_EQ(s[i], i);
}

TEST(RandomTest, SampleIndicesRoughlyUniform) {
  Random rng(17);
  std::vector<int> hits(10, 0);
  for (int trial = 0; trial < 2000; ++trial) {
    for (uint64_t idx : rng.SampleIndices(10, 3)) hits[idx]++;
  }
  // Each index expected 600 hits; allow generous slack.
  for (int h : hits) {
    EXPECT_GT(h, 450);
    EXPECT_LT(h, 750);
  }
}

TEST(ZipfTest, ThetaZeroIsUniformish) {
  ZipfGenerator zipf(10, 0.0);
  Random rng(3);
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 10000; ++i) hits[zipf.Next(&rng)]++;
  for (int h : hits) {
    EXPECT_GT(h, 800);
    EXPECT_LT(h, 1200);
  }
}

TEST(ZipfTest, HighThetaConcentratesOnLowRanks) {
  ZipfGenerator zipf(1000, 2.0);
  Random rng(5);
  int head = 0;
  const int kTrials = 5000;
  for (int i = 0; i < kTrials; ++i) {
    if (zipf.Next(&rng) < 10) ++head;
  }
  EXPECT_GT(head, kTrials * 3 / 4);  // rank<10 dominates at theta=2
}

TEST(ZipfTest, RanksInRange) {
  ZipfGenerator zipf(50, 1.0);
  Random rng(8);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.Next(&rng), 50u);
}

TEST(MathTest, NormalCdfKnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-9);
  EXPECT_NEAR(NormalCdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(NormalCdf(-1.96), 0.025, 1e-3);
}

TEST(MathTest, NormalProbBetweenDegenerate) {
  EXPECT_EQ(NormalProbBetween(0.5, 0.0, 0.0, 1.0), 1.0);
  EXPECT_EQ(NormalProbBetween(2.0, 0.0, 0.0, 1.0), 0.0);
}

TEST(MathTest, ProbWithinToleranceUnbiasedTight) {
  // Tiny variance => certainly within any tolerance.
  EXPECT_GT(ProbWithinTolerance(0.0, 1e-8, 0.2), 0.999);
  // Huge variance => low probability.
  EXPECT_LT(ProbWithinTolerance(0.0, 10.0, 0.2), 0.3);
}

TEST(MathTest, ProbWithinToleranceBiasHurts) {
  const double unbiased = ProbWithinTolerance(0.0, 0.01, 0.2);
  const double biased = ProbWithinTolerance(0.25, 0.01, 0.2);
  EXPECT_GT(unbiased, biased);
}

TEST(MathTest, VarianceOfProductMatchesGoodman) {
  // Two variables: Var(XY) = (v1+m1^2)(v2+m2^2) - m1^2 m2^2.
  const double v = VarianceOfProduct({1.0, 2.0}, {0.1, 0.2});
  EXPECT_NEAR(v, (0.1 + 1.0) * (0.2 + 4.0) - 4.0, 1e-12);
}

TEST(MathTest, VarianceOfProductZeroVariances) {
  EXPECT_NEAR(VarianceOfProduct({1.5, 2.0}, {0.0, 0.0}), 0.0, 1e-12);
}

TEST(MathTest, VarianceOfProductAgreesWithSimulation) {
  // Monte-Carlo check of Goodman's formula for independent normals.
  Random rng(123);
  std::normal_distribution<double> n1(1.0, 0.05), n2(1.0, 0.1);
  std::vector<double> prods;
  for (int i = 0; i < 200000; ++i) {
    prods.push_back(n1(rng.engine()) * n2(rng.engine()));
  }
  const double sim_var = StdDev(prods) * StdDev(prods);
  const double formula = VarianceOfProduct({1.0, 1.0}, {0.0025, 0.01});
  EXPECT_NEAR(sim_var, formula, 0.001);
}

TEST(MathTest, FitLogCoefficientRecoversPlanted) {
  // y = -0.015 ln(x)
  std::vector<double> xs = {0.01, 0.02, 0.05, 0.1};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(-0.015 * std::log(x));
  EXPECT_NEAR(FitLogCoefficient(xs, ys), -0.015, 1e-9);
}

TEST(MathTest, FitLinearThroughOriginRecoversPlanted) {
  std::vector<double> xs = {1, 2, 3, 4};
  std::vector<double> ys = {0.01, 0.02, 0.03, 0.04};
  EXPECT_NEAR(FitLinearThroughOrigin(xs, ys), 0.01, 1e-9);
}

TEST(MathTest, MeanAndStdDev) {
  std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_NEAR(Mean(xs), 5.0, 1e-12);
  EXPECT_NEAR(StdDev(xs), 2.0, 1e-12);
}

// Reference: the bitmap-membership Floyd variant SampleIndices used before
// the hash-set swap. The emitted indices and engine consumption must be
// identical for any (seed, n, k) in the Floyd regime.
std::vector<uint64_t> BitmapFloydReference(uint64_t n, uint64_t k,
                                           Random* rng) {
  std::vector<uint64_t> picked;
  picked.reserve(k);
  std::vector<bool> seen(n);
  for (uint64_t j = n - k; j < n; ++j) {
    const uint64_t t = rng->Next(j + 1);
    if (!seen[t]) {
      seen[t] = true;
      picked.push_back(t);
    } else {
      seen[j] = true;
      picked.push_back(j);
    }
  }
  std::sort(picked.begin(), picked.end());
  return picked;
}

TEST(RandomTest, SampleIndicesMatchesBitmapFloydReference) {
  const struct {
    uint64_t seed, n, k;
  } cases[] = {{1, 1000, 10},    {2, 1000, 400},  {42, 50000, 500},
               {7, 123457, 777}, {99, 10000, 1},  {20110829, 65536, 4000}};
  for (const auto& c : cases) {
    Random a(c.seed), b(c.seed);
    EXPECT_EQ(a.SampleIndices(c.n, c.k), BitmapFloydReference(c.n, c.k, &b))
        << "seed=" << c.seed << " n=" << c.n << " k=" << c.k;
    // Both must have consumed the engine identically.
    EXPECT_EQ(a.Next(1u << 30), b.Next(1u << 30));
  }
}

// Reference: the uncapped CDF table + lower_bound draw ZipfGenerator used
// before the cap. For n <= kCdfCap the capped generator must be
// bit-identical, both in draws and in engine consumption.
TEST(ZipfTest, SubCapBitIdenticalToUncappedReference) {
  for (const double theta : {0.0, 0.5, 1.0, 2.0}) {
    const uint64_t n = 50000;
    std::vector<double> cdf(n);
    double total = 0.0;
    for (uint64_t i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), theta);
      cdf[i] = total;
    }
    for (uint64_t i = 0; i < n; ++i) cdf[i] /= total;

    const ZipfGenerator zipf(n, theta);
    EXPECT_EQ(zipf.head_mass(), 1.0);
    Random a(17), b(17);
    for (int i = 0; i < 20000; ++i) {
      const double u = b.NextDouble();
      const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
      const uint64_t expected =
          it == cdf.end() ? n - 1 : static_cast<uint64_t>(it - cdf.begin());
      ASSERT_EQ(zipf.Next(&a), expected) << "theta=" << theta << " i=" << i;
    }
  }
}

TEST(ZipfTest, CappedTailMatchesAnalyticMass) {
  // n four times the cap: a real analytic tail, still fast to sample.
  const uint64_t n = 4 * ZipfGenerator::kCdfCap;
  const ZipfGenerator zipf(n, 1.0);
  EXPECT_LT(zipf.head_mass(), 1.0);
  EXPECT_GT(zipf.head_mass(), 0.9);  // theta=1: head holds most of the mass

  Random rng(123);
  const int kDraws = 200000;
  int tail_draws = 0;
  for (int i = 0; i < kDraws; ++i) {
    const uint64_t r = zipf.Next(&rng);
    ASSERT_LT(r, n);
    if (r >= ZipfGenerator::kCdfCap) ++tail_draws;
  }
  const double expected = 1.0 - zipf.head_mass();
  const double observed = static_cast<double>(tail_draws) / kDraws;
  EXPECT_NEAR(observed, expected, 0.2 * expected + 1e-4);
}

TEST(ZipfTest, NextConsumesExactlyOneDoubleInBothRegimes) {
  for (const uint64_t n : {uint64_t{1000}, 4 * ZipfGenerator::kCdfCap}) {
    const ZipfGenerator zipf(n, 1.0);
    Random a(5), b(5);
    for (int i = 0; i < 5000; ++i) {
      zipf.Next(&a);
      b.NextDouble();
    }
    EXPECT_EQ(a.Next(1u << 30), b.Next(1u << 30)) << "n=" << n;
  }
}

TEST(ZipfTest, HundredMillionKeysConstructsCapped) {
  // O(cap) memory and construction: the CDF table stops at kCdfCap no
  // matter how large n is.
  const uint64_t n = 100000000;
  const ZipfGenerator zipf(n, 1.0);
  EXPECT_EQ(zipf.n(), n);
  EXPECT_LT(zipf.head_mass(), 1.0);
  Random rng(31337);
  bool saw_tail = false;
  for (int i = 0; i < 5000; ++i) {
    const uint64_t r = zipf.Next(&rng);
    ASSERT_LT(r, n);
    if (r >= ZipfGenerator::kCdfCap) saw_tail = true;
  }
  EXPECT_TRUE(saw_tail);
}

TEST(MathTest, RoundedFractionMatchesLegacyCastForSmallN) {
  const uint64_t ns[] = {0, 1, 7, 100, 9999, 1000000, 1ull << 40, 1ull << 52};
  const double fs[] = {1e-9, 0.001, 0.01, 0.025, 0.3333333333, 0.5, 0.999};
  for (const uint64_t n : ns) {
    for (const double f : fs) {
      EXPECT_EQ(RoundedFraction(n, f),
                static_cast<uint64_t>(static_cast<double>(n) * f + 0.5))
          << "n=" << n << " f=" << f;
    }
  }
}

TEST(MathTest, RoundedFractionExtremes) {
  EXPECT_EQ(RoundedFraction(1000, 0.0), 0u);
  EXPECT_EQ(RoundedFraction(1000, -0.5), 0u);
  EXPECT_EQ(RoundedFraction(1000, 1.0), 1000u);
  EXPECT_EQ(RoundedFraction(1000, 2.0), 1000u);
  EXPECT_EQ(RoundedFraction(0, 0.5), 0u);
  // Above 2^52 the double product loses integer precision; the long-double
  // path must stay in range and never overflow to 0 or wrap.
  const uint64_t huge = ~0ull;  // 2^64 - 1
  const double near_one = 1.0 - 1e-15;
  const uint64_t r = RoundedFraction(huge, near_one);
  EXPECT_LE(r, huge);
  EXPECT_GT(r, huge / 2);
  // A tiny fraction of a huge n is ~n*f.
  const uint64_t small = RoundedFraction(1ull << 60, 1e-12);
  EXPECT_NEAR(static_cast<double>(small),
              static_cast<double>(1ull << 60) * 1e-12, 1e3);
}

}  // namespace
}  // namespace capd
