// Unit + property tests for src/storage: values, schemas, field encoding.
#include <gtest/gtest.h>

#include "common/random.h"
#include "storage/encoding.h"
#include "storage/table.h"

namespace capd {
namespace {

TEST(ValueTest, CompareIntegers) {
  EXPECT_LT(Value::Int64(1).Compare(Value::Int64(2)), 0);
  EXPECT_EQ(Value::Int64(5).Compare(Value::Int64(5)), 0);
  EXPECT_GT(Value::Int64(-1).Compare(Value::Int64(-2)), 0);
}

TEST(ValueTest, CompareStringsLexicographic) {
  EXPECT_LT(Value::String("abc").Compare(Value::String("abd")), 0);
  EXPECT_LT(Value::String("ab").Compare(Value::String("abc")), 0);
}

TEST(ValueTest, NumericKeyOrderPreservingForStrings) {
  EXPECT_LT(Value::String("apple").NumericKey(), Value::String("banana").NumericKey());
}

TEST(ValueTest, DateBehavesAsInteger) {
  EXPECT_LT(Value::Date(100).Compare(Value::Date(200)), 0);
  EXPECT_EQ(Value::Date(100).AsInt64(), 100);
}

TEST(SchemaTest, RowWidthSumsColumnWidths) {
  Schema s({{"a", ValueType::kInt64, 8}, {"b", ValueType::kString, 20}});
  EXPECT_EQ(s.RowWidth(), 28u);
}

TEST(SchemaTest, ColumnIndexFindsByName) {
  Schema s({{"a", ValueType::kInt64, 8}, {"b", ValueType::kString, 20}});
  EXPECT_EQ(s.ColumnIndex("b"), 1u);
  EXPECT_TRUE(s.HasColumn("a"));
  EXPECT_FALSE(s.HasColumn("c"));
}

TEST(SchemaTest, ProjectSelectsAndReorders) {
  Schema s({{"a", ValueType::kInt64, 8},
            {"b", ValueType::kString, 10},
            {"c", ValueType::kDouble, 8}});
  Schema p = s.Project({2, 0});
  ASSERT_EQ(p.num_columns(), 2u);
  EXPECT_EQ(p.column(0).name, "c");
  EXPECT_EQ(p.column(1).name, "a");
}

TEST(EncodingTest, FieldWidthIsExact) {
  const Column c{"s", ValueType::kString, 12};
  EXPECT_EQ(EncodeFieldToString(Value::String("abc"), c).size(), 12u);
  const Column i{"i", ValueType::kInt64, 8};
  EXPECT_EQ(EncodeFieldToString(Value::Int64(123456), i).size(), 8u);
}

TEST(EncodingTest, SmallIntegersHaveLeadingZeros) {
  const Column c{"i", ValueType::kInt64, 8};
  const std::string enc = EncodeFieldToString(Value::Int64(3), c);
  // zigzag(3)=6 -> seven leading zero bytes.
  for (int i = 0; i < 7; ++i) EXPECT_EQ(enc[i], '\0');
}

TEST(EncodingTest, StringsLeftPadded) {
  const Column c{"s", ValueType::kString, 8};
  const std::string enc = EncodeFieldToString(Value::String("abc"), c);
  EXPECT_EQ(enc.substr(0, 5), std::string(5, '\0'));
  EXPECT_EQ(enc.substr(5), "abc");
}

TEST(EncodingTest, OverlongStringTruncated) {
  const Column c{"s", ValueType::kString, 4};
  const std::string enc = EncodeFieldToString(Value::String("abcdefgh"), c);
  EXPECT_EQ(enc, "abcd");
}

// Property: decode(encode(v)) == v for every type across random values.
class EncodingRoundTrip : public ::testing::TestWithParam<ValueType> {};

TEST_P(EncodingRoundTrip, RandomValues) {
  Random rng(99);
  const ValueType type = GetParam();
  for (int i = 0; i < 500; ++i) {
    Value v;
    Column col{"c", type, 8};
    switch (type) {
      case ValueType::kInt64:
        v = Value::Int64(rng.Uniform(-1000000000, 1000000000));
        break;
      case ValueType::kDate:
        v = Value::Date(rng.Uniform(0, 30000));
        break;
      case ValueType::kDouble:
        v = Value::Double(static_cast<double>(rng.Uniform(-1000000, 1000000)) / 7.0);
        break;
      case ValueType::kString: {
        col.width = 16;
        std::string s;
        const int len = static_cast<int>(rng.Next(12)) + 1;
        for (int k = 0; k < len; ++k) {
          s.push_back(static_cast<char>('a' + rng.Next(26)));
        }
        v = Value::String(s);
        break;
      }
    }
    const std::string enc = EncodeFieldToString(v, col);
    const Value back = DecodeField(enc, col);
    EXPECT_EQ(back.Compare(v), 0) << v.ToString() << " vs " << back.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(AllTypes, EncodingRoundTrip,
                         ::testing::Values(ValueType::kInt64, ValueType::kDate,
                                           ValueType::kDouble,
                                           ValueType::kString));

// Property: byte-wise order of encodings matches value order (required by
// the index builder's sort and the prefix codec).
class EncodingOrder : public ::testing::TestWithParam<ValueType> {};

TEST_P(EncodingOrder, OrderPreserved) {
  Random rng(7);
  const ValueType type = GetParam();
  Column col{"c", type, type == ValueType::kString ? 10u : 8u};
  for (int i = 0; i < 300; ++i) {
    Value a, b;
    switch (type) {
      case ValueType::kInt64:
        a = Value::Int64(rng.Uniform(0, 100000));  // zigzag preserves order
        b = Value::Int64(rng.Uniform(0, 100000));  // for same-sign values
        break;
      case ValueType::kDate:
        a = Value::Date(rng.Uniform(0, 30000));
        b = Value::Date(rng.Uniform(0, 30000));
        break;
      case ValueType::kDouble:
        a = Value::Double(static_cast<double>(rng.Uniform(-10000, 10000)));
        b = Value::Double(static_cast<double>(rng.Uniform(-10000, 10000)));
        break;
      case ValueType::kString: {
        // Fixed length: encoded order matches value order only for
        // equal-length strings (see encoding.h).
        auto mk = [&rng]() {
          std::string s;
          for (int k = 0; k < 5; ++k) {
            s.push_back(static_cast<char>('a' + rng.Next(4)));
          }
          return s;
        };
        a = Value::String(mk());
        b = Value::String(mk());
        break;
      }
    }
    const std::string ea = EncodeFieldToString(a, col);
    const std::string eb = EncodeFieldToString(b, col);
    const int vc = a.Compare(b);
    const int ec = ea < eb ? -1 : (ea > eb ? 1 : 0);
    EXPECT_EQ(vc < 0, ec < 0) << a.ToString() << " vs " << b.ToString();
    EXPECT_EQ(vc == 0, ec == 0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllTypes, EncodingOrder,
                         ::testing::Values(ValueType::kInt64, ValueType::kDate,
                                           ValueType::kDouble,
                                           ValueType::kString));

TEST(EncodingTest, RowRoundTrip) {
  Schema s({{"a", ValueType::kInt64, 8},
            {"b", ValueType::kString, 10},
            {"c", ValueType::kDouble, 8}});
  Row row = {Value::Int64(42), Value::String("hello"), Value::Double(2.75)};
  const std::string enc = EncodeRow(row, s);
  EXPECT_EQ(enc.size(), s.RowWidth());
  const Row back = DecodeRow(enc, s);
  for (size_t i = 0; i < row.size(); ++i) EXPECT_EQ(back[i].Compare(row[i]), 0);
}

TEST(TableTest, HeapPagesMatchesRowMath) {
  Schema s({{"a", ValueType::kInt64, 8}});  // 8+2 bytes per row
  Table t("t", s);
  const uint64_t rows_per_page = kPageCapacity / 10;
  for (uint64_t i = 0; i < rows_per_page + 1; ++i) {
    t.AddRow({Value::Int64(static_cast<int64_t>(i))});
  }
  EXPECT_EQ(t.HeapPages(), 2u);
}

TEST(TableTest, EmptyTableZeroPages) {
  Table t("t", Schema({{"a", ValueType::kInt64, 8}}));
  EXPECT_EQ(t.HeapPages(), 0u);
  EXPECT_EQ(t.num_rows(), 0u);
}

}  // namespace
}  // namespace capd
