// Integration tests of the what-if optimizer's MV-answering path (matcher
// wired through MVRegistry) and additional graph-search parity sweeps.
#include <gtest/gtest.h>

#include "common/logging.h"
#include "estimator/size_estimator.h"
#include "mv/mv_registry.h"
#include "optimizer/what_if.h"
#include "query/sql_parser.h"
#include "workloads/tpch.h"

namespace capd {
namespace {

class WhatIfMVTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tpch::Options opt;
    opt.lineitem_rows = 4000;
    tpch::Build(&db_, opt);
    samples_ = std::make_unique<SampleManager>(88);
    mvs_ = std::make_unique<MVRegistry>(db_, samples_.get());
    optimizer_ = std::make_unique<WhatIfOptimizer>(db_, CostModelParams{});
    optimizer_->set_mv_matcher(mvs_.get());

    MVDef def;
    def.name = "mv_modes";
    def.fact_table = "lineitem";
    def.group_by = {"l_shipmode"};
    def.aggregates = {{"l_extendedprice", "SUM"}};
    mvs_->Register(def);
    // Warm the tuple-estimate cache, as the advisor's size-estimation pass
    // does before any costing; the matcher's fallback without it is the
    // (very conservative) fact-table row count.
    mvs_->FullTuples("mv_modes");
  }

  Statement Parse(const std::string& sql) {
    std::string err;
    auto stmt = ParseSql(sql, db_, &err);
    CAPD_CHECK(stmt.has_value()) << err;
    return *stmt;
  }

  PhysicalIndexEstimate MVIndex(CompressionKind kind = CompressionKind::kNone) {
    PhysicalIndexEstimate est;
    est.def.object = "mv_modes";
    est.def.key_columns = {"l_shipmode"};
    est.def.include_columns = {"sum_l_extendedprice", kMVCountColumn};
    est.def.compression = kind;
    est.bytes = 1.0 * kPageSize;
    est.tuples = 7;
    return est;
  }

  Database db_;
  std::unique_ptr<SampleManager> samples_;
  std::unique_ptr<MVRegistry> mvs_;
  std::unique_ptr<WhatIfOptimizer> optimizer_;
};

TEST_F(WhatIfMVTest, MVIndexAnswersMatchingQuery) {
  const Statement q = Parse(
      "SELECT l_shipmode, SUM(l_extendedprice) FROM lineitem GROUP BY l_shipmode");
  Configuration with_mv;
  with_mv.Add(MVIndex());
  const Configuration empty;
  const PlanCost mv_plan = optimizer_->CostWithPlan(q, with_mv);
  EXPECT_LT(mv_plan.total(), optimizer_->Cost(q, empty) / 10.0);
  EXPECT_NE(mv_plan.access_path.find("MV"), std::string::npos);
}

TEST_F(WhatIfMVTest, MVIgnoredForNonMatchingQuery) {
  const Statement q = Parse(
      "SELECT l_returnflag, SUM(l_extendedprice) FROM lineitem GROUP BY l_returnflag");
  Configuration with_mv;
  with_mv.Add(MVIndex());
  const Configuration empty;
  EXPECT_DOUBLE_EQ(optimizer_->Cost(q, with_mv), optimizer_->Cost(q, empty));
}

TEST_F(WhatIfMVTest, MVIgnoredWithoutMatcher) {
  WhatIfOptimizer bare(db_, CostModelParams{});
  const Statement q = Parse(
      "SELECT l_shipmode, SUM(l_extendedprice) FROM lineitem GROUP BY l_shipmode");
  Configuration with_mv;
  with_mv.Add(MVIndex());
  const Configuration empty;
  EXPECT_DOUBLE_EQ(bare.Cost(q, with_mv), bare.Cost(q, empty));
}

TEST_F(WhatIfMVTest, CompressedMVIndexPaysBeta) {
  const Statement q = Parse(
      "SELECT l_shipmode, SUM(l_extendedprice) FROM lineitem GROUP BY l_shipmode");
  Configuration plain, compressed;
  plain.Add(MVIndex(CompressionKind::kNone));
  compressed.Add(MVIndex(CompressionKind::kPage));
  // Same byte size by construction: the compressed variant must cost >=
  // (decompression CPU) while I/O ties.
  EXPECT_GE(optimizer_->Cost(q, compressed), optimizer_->Cost(q, plain));
}

TEST_F(WhatIfMVTest, InsertMaintainsMVIndexes) {
  const Statement ins = Parse("INSERT INTO lineitem VALUES 500 ROWS");
  Configuration with_mv;
  with_mv.Add(MVIndex(CompressionKind::kPage));
  const Configuration empty;
  EXPECT_GT(optimizer_->Cost(ins, with_mv), optimizer_->Cost(ins, empty));
}

TEST_F(WhatIfMVTest, InsertIntoOtherTableDoesNotTouchMV) {
  const Statement ins = Parse("INSERT INTO orders VALUES 500 ROWS");
  Configuration with_mv;
  with_mv.Add(MVIndex(CompressionKind::kPage));
  const Configuration empty;
  EXPECT_DOUBLE_EQ(optimizer_->Cost(ins, with_mv), optimizer_->Cost(ins, empty));
}

TEST_F(WhatIfMVTest, MVSizeEstimationThroughRegistry) {
  SizeEstimator estimator(db_, mvs_.get(), ErrorModel(), SizeEstimationOptions{});
  IndexDef def = MVIndex(CompressionKind::kRow).def;
  const auto batch = estimator.EstimateAll({def});
  ASSERT_EQ(batch.estimates.size(), 1u);
  const SampleCfResult& r = batch.estimates.at(def.Signature());
  EXPECT_GT(r.est_bytes, 0.0);
  // Seven ship modes: the MV is tiny.
  EXPECT_LT(r.est_tuples, 40.0);
}

// Parity sweep: Optimal never beats Greedy by more than the measured gap
// on several random target sets (statistical guard on the Section 5.2
// heuristic's quality, mirroring the paper's "+8% on average").
class GraphParity : public ::testing::TestWithParam<int> {};

TEST_P(GraphParity, GreedyWithinFactorOfOptimal) {
  Database db;
  tpch::Options opt;
  opt.lineitem_rows = 3000;
  tpch::Build(&db, opt);
  SampleManager samples(1000 + GetParam());
  TableSampleSource source(db, &samples);

  Random rng(GetParam());
  const std::vector<std::string> cols = {"l_shipdate", "l_shipmode",
                                         "l_quantity", "l_returnflag",
                                         "l_partkey", "l_suppkey"};
  std::vector<IndexDef> targets;
  for (int t = 0; t < 5; ++t) {
    IndexDef def;
    def.object = "lineitem";
    def.compression = CompressionKind::kRow;
    const size_t width = 1 + rng.Next(3);
    const size_t start = rng.Next(cols.size() - width);
    for (size_t k = 0; k < width; ++k) def.key_columns.push_back(cols[start + k]);
    bool dup = false;
    for (const IndexDef& other : targets) {
      if (other.Signature() == def.Signature()) dup = true;
    }
    if (!dup) targets.push_back(def);
  }

  EstimationGraph graph(db, &source, ErrorModel());
  graph.AddTargets(targets);
  const double greedy = graph.Greedy(0.05, 0.5, 0.9);
  const double optimal = graph.Optimal(0.05, 0.5, 0.9);
  EXPECT_LE(optimal, greedy + 1e-9);
  EXPECT_LE(greedy, optimal * 1.5 + 1e-9)
      << "greedy strayed beyond 50% of optimal";
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphParity, ::testing::Range(1, 9));

}  // namespace
}  // namespace capd
