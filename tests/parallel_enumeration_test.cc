// Determinism tests for the parallel advisor search loop: Advisor::Tune
// with enumeration fanned across 2/4/8 threads — and with the
// per-statement cost cache on or off — must reproduce the serial,
// uncached result to the bit (same guarantee the estimation engine gives).
#include <cstring>
#include <memory>

#include <gtest/gtest.h>

#include "advisor/advisor.h"
#include "workloads/tpch.h"

namespace capd {
namespace {

class ParallelEnumerationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tpch::Options opt;
    opt.lineitem_rows = 4000;
    tpch::Build(&db_, opt);
    workload_ = tpch::MakeWorkload(db_, opt);
  }

  // Fresh stack per run (samples re-drawn; per-key seeding makes them
  // identical), mirroring bench_common's wiring.
  AdvisorResult Tune(AdvisorOptions options, double budget_frac) {
    SampleManager samples(4242);
    MVRegistry mvs(db_, &samples);
    WhatIfOptimizer optimizer(db_, CostModelParams{});
    optimizer.set_mv_matcher(&mvs);
    SizeEstimator estimator(db_, &mvs, ErrorModel(), options.size_options);
    Advisor advisor(db_, optimizer, &estimator, &mvs, options);
    return advisor.Tune(workload_,
                        budget_frac * static_cast<double>(db_.BaseDataBytes()));
  }

  static void ExpectBitIdentical(const AdvisorResult& a,
                                 const AdvisorResult& b) {
    // memcmp, not ==: the criterion is bit-identical doubles.
    EXPECT_EQ(std::memcmp(&a.initial_cost, &b.initial_cost, sizeof(double)),
              0);
    EXPECT_EQ(std::memcmp(&a.final_cost, &b.final_cost, sizeof(double)), 0);
    EXPECT_EQ(
        std::memcmp(&a.charged_bytes, &b.charged_bytes, sizeof(double)), 0);
    ASSERT_EQ(a.config.size(), b.config.size());
    const auto& ia = a.config.indexes();
    const auto& ib = b.config.indexes();
    for (size_t i = 0; i < ia.size(); ++i) {
      EXPECT_EQ(ia[i].def.Signature(), ib[i].def.Signature()) << i;
      EXPECT_EQ(std::memcmp(&ia[i].bytes, &ib[i].bytes, sizeof(double)), 0);
      EXPECT_EQ(std::memcmp(&ia[i].tuples, &ib[i].tuples, sizeof(double)), 0);
    }
  }

  Database db_;
  Workload workload_;
};

TEST_F(ParallelEnumerationTest, CostCacheDoesNotChangeTheResult) {
  AdvisorOptions uncached = AdvisorOptions::DTAcBoth();
  uncached.cost_cache = false;
  AdvisorOptions cached = AdvisorOptions::DTAcBoth();
  cached.cost_cache = true;
  for (double budget : {0.05, 0.25}) {
    const AdvisorResult base = Tune(uncached, budget);
    const AdvisorResult r = Tune(cached, budget);
    ExpectBitIdentical(base, r);
    EXPECT_GT(r.stmt_costs_cached, 0u);
    // Same logical what-if traffic either way; the cache only changes how
    // many costings actually ran the optimizer.
    EXPECT_EQ(base.what_if_calls, r.what_if_calls);
    EXPECT_LT(r.stmt_costs_computed, base.stmt_costs_computed);
  }
}

TEST_F(ParallelEnumerationTest, ParallelEnumerateBitIdenticalToSerial) {
  AdvisorOptions serial = AdvisorOptions::DTAcBoth();
  serial.cost_cache = false;
  serial.num_threads = 1;
  const AdvisorResult base = Tune(serial, 0.08);

  for (int threads : {2, 4, 8}) {
    for (bool cache : {false, true}) {
      AdvisorOptions parallel = AdvisorOptions::DTAcBoth();
      parallel.cost_cache = cache;
      parallel.num_threads = threads;
      ExpectBitIdentical(base, Tune(parallel, 0.08));
    }
  }
}

TEST_F(ParallelEnumerationTest, DensityGreedyParallelMatchesSerial) {
  AdvisorOptions serial = AdvisorOptions::DTAcBoth();
  serial.enumeration = EnumerationMode::kDensityGreedy;
  serial.cost_cache = false;
  const AdvisorResult base = Tune(serial, 0.05);

  AdvisorOptions parallel = serial;
  parallel.cost_cache = true;
  parallel.num_threads = 4;
  ExpectBitIdentical(base, Tune(parallel, 0.05));
}

TEST_F(ParallelEnumerationTest, HardwareConcurrencyKnobWorks) {
  AdvisorOptions options = AdvisorOptions::DTAcBoth();
  options.num_threads = 0;  // hardware concurrency
  const AdvisorResult r = Tune(options, 0.10);
  EXPECT_GT(r.what_if_calls, 0u);
}

}  // namespace
}  // namespace capd
