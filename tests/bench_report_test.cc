// Tests for the bench reporting library behind the tools/repro pipeline:
// deterministic JSON emission (locale-independent doubles, stable key
// order, schema_version) and the uniform --rows/--seed/--threads/--json
// flag parser shared by every bench binary.
#include <clocale>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/bench_report.h"

namespace capd {
namespace {

TEST(BenchReportTest, EmitsSchemaVersionAndMeta) {
  BenchReport report("my_bench");
  report.set_rows(6000);
  report.set_seed(20110829);
  report.set_threads(4);
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"bench\": \"my_bench\""), std::string::npos);
  EXPECT_NE(json.find("\"rows\": 6000"), std::string::npos);
  EXPECT_NE(json.find("\"seed\": 20110829"), std::string::npos);
  EXPECT_NE(json.find("\"threads\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"build_type\""), std::string::npos);
  EXPECT_NE(json.find("\"git_sha\""), std::string::npos);
  // Ends with a newline so files are POSIX-friendly.
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.back(), '\n');
}

TEST(BenchReportTest, StableKeyOrder) {
  BenchReport report("order_bench");
  report.AddCounter("zeta", 1);
  report.AddValue("alpha", 2.0);
  const std::string json = report.ToJson();
  // Top-level keys render in a fixed order regardless of metric content...
  const size_t schema_pos = json.find("\"schema_version\"");
  const size_t bench_pos = json.find("\"bench\"");
  const size_t meta_pos = json.find("\"meta\"");
  const size_t metrics_pos = json.find("\"metrics\"");
  ASSERT_NE(schema_pos, std::string::npos);
  ASSERT_NE(bench_pos, std::string::npos);
  ASSERT_NE(meta_pos, std::string::npos);
  ASSERT_NE(metrics_pos, std::string::npos);
  EXPECT_LT(schema_pos, bench_pos);
  EXPECT_LT(bench_pos, meta_pos);
  EXPECT_LT(meta_pos, metrics_pos);
  // ...and metrics keep insertion order, not alphabetical order.
  EXPECT_LT(json.find("\"zeta\""), json.find("\"alpha\""));
}

TEST(BenchReportTest, CountersRenderAsPlainIntegers) {
  BenchReport report("counter_bench");
  report.AddCounter("big", 18446744073709551615ull);
  report.AddCounter("zero", 0);
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"value\": 18446744073709551615"), std::string::npos);
  EXPECT_NE(json.find("\"value\": 0"), std::string::npos);
  // No decimal point or exponent sneaks into a counter.
  EXPECT_EQ(json.find("18446744073709551615."), std::string::npos);
}

TEST(BenchReportTest, DoublesAreLocaleIndependent) {
  // A locale with ',' as decimal separator must not leak into the JSON.
  // de_DE may be absent in minimal containers; setlocale returns nullptr
  // then and the test still verifies the default-locale path.
  const char* prev = std::setlocale(LC_ALL, nullptr);
  const std::string saved = prev != nullptr ? prev : "C";
  std::setlocale(LC_ALL, "de_DE.UTF-8");
  BenchReport report("locale_bench");
  report.AddValue("pi_ish", 3.140625);
  report.AddTimeMs("half", 0.5);
  const std::string json = report.ToJson();
  std::setlocale(LC_ALL, saved.c_str());
  EXPECT_NE(json.find("3.140625"), std::string::npos);
  EXPECT_NE(json.find("0.5"), std::string::npos);
  EXPECT_EQ(json.find("3,140625"), std::string::npos);
  EXPECT_EQ(json.find("0,5"), std::string::npos);
}

TEST(BenchReportTest, DoublesRoundTripShortest) {
  BenchReport report("roundtrip_bench");
  report.AddValue("third", 1.0 / 3.0);
  report.AddValue("tenth", 0.1);
  const std::string json = report.ToJson();
  // std::to_chars shortest form: 0.1 stays "0.1", not 0.1000000000000000055…
  EXPECT_NE(json.find("\"value\": 0.1"), std::string::npos);
  EXPECT_NE(json.find("0.3333333333333333"), std::string::npos);
}

TEST(BenchReportTest, NonFiniteDoublesBecomeNull) {
  BenchReport report("nonfinite_bench");
  report.AddValue("nan", std::nan(""));
  report.AddValue("inf", std::numeric_limits<double>::infinity());
  const std::string json = report.ToJson();
  // Both payloads render as null — JSON has no inf/nan literals.
  EXPECT_EQ(json.find("\"value\": nan"), std::string::npos);
  EXPECT_EQ(json.find("\"value\": inf"), std::string::npos);
  size_t nulls = 0;
  for (size_t pos = json.find("null"); pos != std::string::npos;
       pos = json.find("null", pos + 1)) {
    ++nulls;
  }
  EXPECT_EQ(nulls, 2u);
}

TEST(BenchReportTest, MetricKindStringsMatchSchema) {
  EXPECT_STREQ(MetricKindName(MetricKind::kCounter), "counter");
  EXPECT_STREQ(MetricKindName(MetricKind::kValue), "value");
  EXPECT_STREQ(MetricKindName(MetricKind::kTimeMs), "time_ms");
  BenchReport report("kind_bench");
  report.AddCounter("c", 1);
  report.AddValue("v", 1.0);
  report.AddTimeMs("t", 1.0);
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"kind\": \"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"value\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"time_ms\""), std::string::npos);
}

TEST(BenchReportTest, EscapesMetricNames) {
  BenchReport report("escape_bench");
  report.AddValue("quote\"back\\slash", 1.0);
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("quote\\\"back\\\\slash"), std::string::npos);
}

TEST(BenchReportTest, DuplicateMetricNameDies) {
  BenchReport report("dup_bench");
  report.AddCounter("x", 1);
  EXPECT_DEATH(report.AddValue("x", 2.0), "duplicate");
}

TEST(BenchReportTest, MetricsAccessorKeepsKindsAndPayloads) {
  BenchReport report("payload_bench");
  report.AddCounter("c", 42);
  report.AddValue("v", -1.5);
  const auto& metrics = report.metrics();
  ASSERT_EQ(metrics.size(), 2u);
  EXPECT_EQ(metrics[0].kind, MetricKind::kCounter);
  EXPECT_EQ(metrics[0].count, 42u);
  EXPECT_EQ(metrics[1].kind, MetricKind::kValue);
  EXPECT_DOUBLE_EQ(metrics[1].value, -1.5);
}

// --- ParseBenchFlags ---

std::vector<char*> Argv(std::vector<std::string>& args) {
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (auto& a : args) argv.push_back(a.data());
  return argv;
}

TEST(ParseBenchFlagsTest, ParsesFullFlagSet) {
  std::vector<std::string> args = {"bench_x", "--rows", "5000", "--seed", "7"};
  args.insert(args.end(), {"--threads", "8", "--json", "/tmp/out.json"});
  auto argv = Argv(args);
  BenchFlags flags;
  std::string error;
  ASSERT_TRUE(ParseBenchFlags(static_cast<int>(argv.size()), argv.data(),
                              &flags, &error))
      << error;
  EXPECT_EQ(flags.rows, 5000u);
  EXPECT_EQ(flags.seed, 7u);
  EXPECT_EQ(flags.threads, 8);
  EXPECT_EQ(flags.json_path, "/tmp/out.json");
  EXPECT_FALSE(flags.help);
}

TEST(ParseBenchFlagsTest, DefaultsWhenOmitted) {
  std::vector<std::string> args = {"bench_x"};
  auto argv = Argv(args);
  BenchFlags flags;
  std::string error;
  ASSERT_TRUE(ParseBenchFlags(static_cast<int>(argv.size()), argv.data(),
                              &flags, &error));
  EXPECT_EQ(flags.rows, 0u);  // 0 = use the bench's default
  EXPECT_EQ(flags.seed, 0u);
  EXPECT_EQ(flags.threads, 1);
  EXPECT_TRUE(flags.json_path.empty());
}

TEST(ParseBenchFlagsTest, RejectsPositionalArgs) {
  // Regression guard for the old bench_fig11 positional row count.
  std::vector<std::string> args = {"bench_fig11_estimation_cost", "2000"};
  auto argv = Argv(args);
  BenchFlags flags;
  std::string error;
  EXPECT_FALSE(ParseBenchFlags(static_cast<int>(argv.size()), argv.data(),
                               &flags, &error));
  EXPECT_NE(error.find("2000"), std::string::npos);
}

TEST(ParseBenchFlagsTest, RejectsBadValues) {
  const std::vector<std::vector<std::string>> cases = {
      {"b", "--rows"},             // missing argument
      {"b", "--rows", "abc"},      // non-numeric
      {"b", "--rows", "0"},        // zero invalid (0 is "unset", not a size)
      {"b", "--threads", "0"},     // below minimum
      {"b", "--threads", "9999"},  // above maximum
      {"b", "--frobnicate"},       // unknown flag
  };
  for (auto test_case : cases) {
    auto argv = Argv(test_case);
    BenchFlags flags;
    std::string error;
    EXPECT_FALSE(ParseBenchFlags(static_cast<int>(argv.size()), argv.data(),
                                 &flags, &error))
        << test_case[1];
    EXPECT_FALSE(error.empty()) << test_case[1];
  }
}

TEST(ParseBenchFlagsTest, HelpShortCircuits) {
  std::vector<std::string> args = {"bench_x", "--help"};
  auto argv = Argv(args);
  BenchFlags flags;
  std::string error;
  ASSERT_TRUE(ParseBenchFlags(static_cast<int>(argv.size()), argv.data(),
                              &flags, &error));
  EXPECT_TRUE(flags.help);
  EXPECT_NE(BenchUsage("bench_x").find("--rows"), std::string::npos);
  EXPECT_NE(BenchUsage("bench_x").find("--json"), std::string::npos);
}

TEST(BenchReportTest, WriteJsonFileRejectsBadPath) {
  BenchReport report("io_bench");
  report.AddCounter("c", 1);
  std::string error;
  EXPECT_FALSE(report.WriteJsonFile("/nonexistent_dir_xyz/out.json", &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace capd
