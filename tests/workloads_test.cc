// Generator invariants: referential integrity, determinism, skew, and the
// statistical properties the experiments depend on.
#include <set>

#include <gtest/gtest.h>

#include "workloads/sales.h"
#include "workloads/tpcds_lite.h"
#include "workloads/tpch.h"

namespace capd {
namespace {

// Every FK value in `fact.fk_column` must exist in `dim.key_column`.
void ExpectFkIntegrity(const Database& db, const ForeignKey& fk) {
  const Table& fact = db.table(fk.fact_table);
  const Table& dim = db.table(fk.dim_table);
  std::set<int64_t> keys;
  const size_t kpos = dim.schema().ColumnIndex(fk.key_column);
  for (const Row& r : dim.rows()) keys.insert(r[kpos].AsInt64());
  const size_t fpos = fact.schema().ColumnIndex(fk.fk_column);
  for (const Row& r : fact.rows()) {
    ASSERT_TRUE(keys.count(r[fpos].AsInt64()))
        << fk.fact_table << "." << fk.fk_column << " dangling value "
        << r[fpos].AsInt64();
  }
}

TEST(TpchGenerator, RowCountsScale) {
  Database db;
  tpch::Options opt;
  opt.lineitem_rows = 4000;
  tpch::Build(&db, opt);
  EXPECT_EQ(db.table("lineitem").num_rows(), 4000u);
  EXPECT_EQ(db.table("orders").num_rows(), 1000u);
  EXPECT_GT(db.table("part").num_rows(), 0u);
  EXPECT_EQ(db.table("nation").num_rows(), 25u);
}

TEST(TpchGenerator, ForeignKeyIntegrity) {
  Database db;
  tpch::Options opt;
  opt.lineitem_rows = 3000;
  tpch::Build(&db, opt);
  for (const ForeignKey& fk : db.foreign_keys()) ExpectFkIntegrity(db, fk);
}

TEST(TpchGenerator, DeterministicUnderSeed) {
  Database a, b;
  tpch::Options opt;
  opt.lineitem_rows = 1000;
  tpch::Build(&a, opt);
  tpch::Build(&b, opt);
  const auto& ra = a.table("lineitem").rows();
  const auto& rb = b.table("lineitem").rows();
  ASSERT_EQ(ra.size(), rb.size());
  for (size_t i = 0; i < ra.size(); i += 97) {
    for (size_t c = 0; c < ra[i].size(); ++c) {
      EXPECT_EQ(ra[i][c].Compare(rb[i][c]), 0);
    }
  }
}

TEST(TpchGenerator, SeedChangesData) {
  Database a, b;
  tpch::Options opt;
  opt.lineitem_rows = 1000;
  tpch::Build(&a, opt);
  opt.seed = 1;
  tpch::Build(&b, opt);
  int diffs = 0;
  for (size_t i = 0; i < 100; ++i) {
    if (a.table("lineitem").rows()[i][4].AsInt64() !=
        b.table("lineitem").rows()[i][4].AsInt64()) {
      ++diffs;
    }
  }
  EXPECT_GT(diffs, 30);
}

TEST(TpchGenerator, SkewConcentratesPartKeys) {
  Database flat, skewed;
  tpch::Options opt;
  opt.lineitem_rows = 6000;
  tpch::Build(&flat, opt);
  opt.skew_z = 2.0;
  tpch::Build(&skewed, opt);
  auto top_share = [](const Database& db) {
    std::map<int64_t, int> counts;
    const Table& li = db.table("lineitem");
    const size_t p = li.schema().ColumnIndex("l_partkey");
    for (const Row& r : li.rows()) counts[r[p].AsInt64()]++;
    int best = 0;
    for (const auto& [k, c] : counts) best = std::max(best, c);
    return static_cast<double>(best) / static_cast<double>(li.num_rows());
  };
  EXPECT_GT(top_share(skewed), 4.0 * top_share(flat));
}

TEST(TpchGenerator, ShipmodeInstructCorrelated) {
  Database db;
  tpch::Options opt;
  opt.lineitem_rows = 4000;
  tpch::Build(&db, opt);
  const TableStats& stats = db.stats("lineitem");
  const uint64_t combos =
      stats.DistinctOfColumns(db.table("lineitem"), {"l_shipmode", "l_shipinstruct"});
  const uint64_t modes = stats.column("l_shipmode").distinct;
  const uint64_t instructs = stats.column("l_shipinstruct").distinct;
  // Strong correlation: far fewer combos than the independence product.
  EXPECT_LT(combos, modes * instructs * 3 / 4);
}

TEST(TpchGenerator, DatesInRange) {
  Database db;
  tpch::Options opt;
  opt.lineitem_rows = 2000;
  tpch::Build(&db, opt);
  const Table& li = db.table("lineitem");
  const size_t ship = li.schema().ColumnIndex("l_shipdate");
  const size_t receipt = li.schema().ColumnIndex("l_receiptdate");
  for (const Row& r : li.rows()) {
    EXPECT_GE(r[ship].AsInt64(), 8766);    // >= 1994-01-01
    EXPECT_LT(r[ship].AsInt64(), 10957);   // < 2000-01-01
    EXPECT_GT(r[receipt].AsInt64(), r[ship].AsInt64());
  }
}

TEST(SalesGenerator, SchemaAndIntegrity) {
  Database db;
  sales::Options opt;
  opt.fact_rows = 3000;
  sales::Build(&db, opt);
  EXPECT_EQ(db.table("sales").num_rows(), 3000u);
  for (const ForeignKey& fk : db.foreign_keys()) ExpectFkIntegrity(db, fk);
  // Denormalized low-cardinality strings on the fact table (the property
  // that makes Sales compression-friendly).
  EXPECT_LE(db.stats("sales").column("state").distinct, 10u);
  EXPECT_LE(db.stats("sales").column("channel").distinct, 4u);
}

TEST(SalesGenerator, FiftyQueriesTwoBulkLoads) {
  Database db;
  sales::Options opt;
  opt.fact_rows = 2000;
  sales::Build(&db, opt);
  const Workload w = sales::MakeWorkload(db, opt);
  size_t selects = 0, inserts = 0;
  for (const Statement& s : w.statements) {
    if (s.type == StatementType::kSelect) ++selects;
    if (s.type == StatementType::kInsert) ++inserts;
  }
  EXPECT_EQ(selects, 50u);
  EXPECT_EQ(inserts, 2u);
}

TEST(SalesGenerator, ProductPopularitySkewed) {
  Database db;
  sales::Options opt;
  opt.fact_rows = 5000;
  sales::Build(&db, opt);
  std::map<int64_t, int> counts;
  const Table& s = db.table("sales");
  const size_t p = s.schema().ColumnIndex("product_key_fk");
  for (const Row& r : s.rows()) counts[r[p].AsInt64()]++;
  int best = 0;
  for (const auto& [k, c] : counts) best = std::max(best, c);
  // Zipf(1.0): the top product should far exceed the uniform share.
  EXPECT_GT(best, static_cast<int>(5 * 5000 / counts.size()));
}

TEST(TpcdsGenerator, BuildsAndHasIntegrity) {
  Database db;
  tpcds::Options opt;
  opt.store_sales_rows = 2000;
  tpcds::Build(&db, opt);
  EXPECT_EQ(db.table("store_sales").num_rows(), 2000u);
  for (const ForeignKey& fk : db.foreign_keys()) ExpectFkIntegrity(db, fk);
}

TEST(WorkloadShape, TpchBudgetsAreMeaningful) {
  // The experiment budgets (3%..100% of base bytes) must be non-trivial:
  // base data must be at least tens of pages.
  Database db;
  tpch::Options opt;
  opt.lineitem_rows = 6000;
  tpch::Build(&db, opt);
  EXPECT_GT(db.BaseDataBytes(), 50u * kPageSize);
}

TEST(WorkloadShape, SelectOnlyStripsInserts) {
  Database db;
  tpch::Options opt;
  opt.lineitem_rows = 500;
  tpch::Build(&db, opt);
  const Workload w = tpch::MakeWorkload(db, opt);
  const Workload sel = tpch::SelectOnly(w);
  EXPECT_EQ(sel.statements.size(), 22u);
  for (const Statement& s : sel.statements) {
    EXPECT_EQ(s.type, StatementType::kSelect);
  }
}

}  // namespace
}  // namespace capd
