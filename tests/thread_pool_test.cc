// Tests for the concurrency layer: task completion, exception propagation,
// nested ParallelFor, and ParallelMap ordering.
#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"

namespace capd {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&count] { ++count; }));
  }
  for (std::future<void>& f : futures) f.get();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, DefaultSizeUsesHardwareConcurrency) {
  ThreadPool pool;  // num_threads = 0
  EXPECT_GE(pool.size(), 1);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptionThroughFuture) {
  ThreadPool pool(2);
  std::future<void> f =
      pool.Submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  // The pool survives a throwing task.
  std::future<void> ok = pool.Submit([] {});
  EXPECT_NO_THROW(ok.get());
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  ParallelFor(&pool, kN, [&](size_t i) { ++hits[i]; });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ParallelForSerialFallbacks) {
  // Null pool and n<=1 both run inline on the calling thread.
  std::vector<int> order;
  ParallelFor(nullptr, 3,
              [&](size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  ThreadPool pool(4);
  int n1 = 0;
  ParallelFor(&pool, 1, [&](size_t) { ++n1; });
  EXPECT_EQ(n1, 1);
  ParallelFor(&pool, 0, [](size_t) { FAIL() << "n=0 must not invoke fn"; });
}

TEST(ThreadPoolTest, ParallelForRethrowsFirstException) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      ParallelFor(&pool, 64,
                  [&](size_t i) {
                    ++ran;
                    if (i == 7) throw std::invalid_argument("boom");
                  }),
      std::invalid_argument);
  EXPECT_GE(ran.load(), 1);
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  ParallelFor(&pool, 8, [&](size_t) {
    // From a pool worker this must run inline rather than re-enqueue, or a
    // 2-thread pool full of waiting outer tasks would deadlock.
    ParallelFor(&pool, 8, [&](size_t) { ++inner_total; });
  });
  EXPECT_EQ(inner_total.load(), 64);
}

TEST(ThreadPoolTest, ParallelMapPreservesIndexOrder) {
  ThreadPool pool(4);
  const std::vector<int> out = ParallelMap<int>(
      &pool, 257, [](size_t i) { return static_cast<int>(i * i); });
  ASSERT_EQ(out.size(), 257u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i * i));
  }
}

TEST(ThreadPoolTest, CallerThreadParticipates) {
  // With a busy 1-task pool... simpler: a pool of 1 worker still finishes
  // ParallelFor because the caller drains the shared counter too.
  ThreadPool pool(2);
  std::set<std::thread::id> ids;
  std::mutex mu;
  ParallelFor(&pool, 16, [&](size_t) {
    std::lock_guard<std::mutex> lock(mu);
    ids.insert(std::this_thread::get_id());
  });
  EXPECT_GE(ids.size(), 1u);
}

}  // namespace
}  // namespace capd
