// Edge cases and failure injection: empty/one-row tables, degenerate
// budgets, empty workloads, over-wide values, filters that select nothing,
// and other inputs a production tool must survive.
#include <gtest/gtest.h>

#include "advisor/advisor.h"
#include "compress/codec_factory.h"
#include "compress/null_suppression.h"
#include "query/sql_parser.h"
#include "workloads/tpch.h"

namespace capd {
namespace {

Table TinyTable(int n) {
  Table t("tiny", Schema({{"k", ValueType::kInt64, 8},
                          {"v", ValueType::kString, 6}}));
  for (int i = 0; i < n; ++i) {
    t.AddRow({Value::Int64(i), Value::String("v" + std::to_string(i % 3))});
  }
  return t;
}

TEST(EdgeCase, EmptyTableIndexBuild) {
  const Table t = TinyTable(0);
  IndexBuilder builder(t);
  IndexDef def;
  def.object = "tiny";
  def.key_columns = {"k"};
  for (CompressionKind kind :
       {CompressionKind::kNone, CompressionKind::kRow, CompressionKind::kPage,
        CompressionKind::kGlobalDict, CompressionKind::kRle}) {
    const IndexPhysical phys = builder.Build(def.WithCompression(kind));
    EXPECT_EQ(phys.tuples, 0u) << CompressionKindName(kind);
    EXPECT_EQ(phys.data_pages, 1u);  // root page always exists
  }
}

TEST(EdgeCase, SingleRowIndexBuild) {
  const Table t = TinyTable(1);
  IndexBuilder builder(t);
  IndexDef def;
  def.object = "tiny";
  def.key_columns = {"k", "v"};
  def.compression = CompressionKind::kPage;
  const IndexPhysical phys = builder.Build(def);
  EXPECT_EQ(phys.tuples, 1u);
  EXPECT_EQ(phys.data_pages, 1u);
}

TEST(EdgeCase, FilterSelectingNothing) {
  const Table t = TinyTable(100);
  IndexBuilder builder(t);
  IndexDef def;
  def.object = "tiny";
  def.key_columns = {"k"};
  def.filter = ColumnFilter{"k", FilterOp::kLt, Value::Int64(-5), {}};
  const IndexPhysical phys = builder.Build(def);
  EXPECT_EQ(phys.tuples, 0u);
}

TEST(EdgeCase, AllRowsIdentical) {
  Table t("tiny", Schema({{"k", ValueType::kInt64, 8},
                          {"v", ValueType::kString, 6}}));
  for (int i = 0; i < 500; ++i) {
    t.AddRow({Value::Int64(42), Value::String("same")});
  }
  IndexBuilder builder(t);
  IndexDef def;
  def.object = "tiny";
  def.key_columns = {"k", "v"};
  for (CompressionKind kind : AllCompressedKinds()) {
    def.compression = kind;
    const double cf = builder.TrueCompressionFraction(def);
    // The unique row locator bounds how far identical payloads compress.
    EXPECT_LT(cf, 0.8) << CompressionKindName(kind);
    EXPECT_GT(cf, 0.0);
  }
}

TEST(EdgeCase, MaxWidthStringField) {
  const Column col{"s", ValueType::kString, 255};
  const std::string long_str(255, 'x');
  const std::string enc = EncodeFieldToString(Value::String(long_str), col);
  EXPECT_EQ(enc.size(), 255u);
  EXPECT_EQ(DecodeField(enc, col).AsString(), long_str);
  // NS round-trip at the width limit.
  std::string compressed;
  NsCompressField(enc, &compressed);
  std::string back;
  size_t offset = 0;
  NsDecompressField(compressed, &offset, 255, &back);
  EXPECT_EQ(back, enc);
}

TEST(EdgeCase, NegativeAndExtremeIntegers) {
  const Column col{"i", ValueType::kInt64, 8};
  for (int64_t v : {int64_t{0}, int64_t{-1}, std::numeric_limits<int64_t>::max(),
                    std::numeric_limits<int64_t>::min() + 1}) {
    const std::string enc = EncodeFieldToString(Value::Int64(v), col);
    EXPECT_EQ(DecodeField(enc, col).AsInt64(), v);
  }
}

class AdvisorEdgeCase : public ::testing::Test {
 protected:
  void SetUp() override {
    tpch::Options opt;
    opt.lineitem_rows = 800;
    tpch::Build(&db_, opt);
    workload_ = tpch::MakeWorkload(db_, opt);
    samples_ = std::make_unique<SampleManager>(3);
    source_ = std::make_unique<TableSampleSource>(db_, samples_.get());
    optimizer_ = std::make_unique<WhatIfOptimizer>(db_, CostModelParams{});
    sizes_ = std::make_unique<SizeEstimator>(db_, source_.get(), ErrorModel(),
                                             SizeEstimationOptions{});
    advisor_ = std::make_unique<Advisor>(db_, *optimizer_, sizes_.get(),
                                         nullptr, AdvisorOptions::DTAcBoth());
  }

  Database db_;
  Workload workload_;
  std::unique_ptr<SampleManager> samples_;
  std::unique_ptr<TableSampleSource> source_;
  std::unique_ptr<WhatIfOptimizer> optimizer_;
  std::unique_ptr<SizeEstimator> sizes_;
  std::unique_ptr<Advisor> advisor_;
};

TEST_F(AdvisorEdgeCase, EmptyWorkload) {
  const AdvisorResult r = advisor_->Tune(Workload{}, 1e9);
  EXPECT_EQ(r.config.size(), 0u);
  EXPECT_DOUBLE_EQ(r.initial_cost, 0.0);
  EXPECT_DOUBLE_EQ(r.improvement_percent(), 0.0);
}

TEST_F(AdvisorEdgeCase, EmptyWorkloadParallelAndStaged) {
  // The parallel selection/enumeration fan-out and the staged baseline's
  // stage 2 must survive a workload with no statements (zero-shard cost
  // cache, zero costing jobs).
  AdvisorOptions options = AdvisorOptions::DTAcBoth();
  options.num_threads = 4;
  Advisor advisor(db_, *optimizer_, sizes_.get(), nullptr, options);
  const AdvisorResult tuned = advisor.Tune(Workload{}, 1e9);
  EXPECT_EQ(tuned.config.size(), 0u);
  const AdvisorResult staged =
      advisor.TuneStagedBaseline(Workload{}, 1e9, CompressionKind::kPage);
  EXPECT_EQ(staged.config.size(), 0u);
  EXPECT_DOUBLE_EQ(staged.final_cost, 0.0);
}

TEST_F(AdvisorEdgeCase, ZeroStorageBudget) {
  // At a 0-byte budget only configurations that free space (compressed
  // clustered indexes replacing the heap) may be charged.
  AdvisorOptions options = AdvisorOptions::DTAcBoth();
  options.num_threads = 2;
  Advisor advisor(db_, *optimizer_, sizes_.get(), nullptr, options);
  const AdvisorResult r = advisor.Tune(workload_, 0.0);
  EXPECT_LE(r.charged_bytes, 1.0);
  EXPECT_LE(r.final_cost, r.initial_cost);
}

TEST_F(AdvisorEdgeCase, SingleStatementWorkloadParallelMatchesSerial) {
  Workload single;
  single.statements.push_back(workload_.statements.front());
  ASSERT_EQ(single.statements.front().type, StatementType::kSelect);

  AdvisorOptions serial = AdvisorOptions::DTAcBoth();
  serial.num_threads = 1;
  Advisor a1(db_, *optimizer_, sizes_.get(), nullptr, serial);
  const AdvisorResult base = a1.Tune(single, 1e9);

  AdvisorOptions parallel = serial;
  parallel.num_threads = 8;  // more workers than costing jobs per query
  Advisor a2(db_, *optimizer_, sizes_.get(), nullptr, parallel);
  const AdvisorResult r = a2.Tune(single, 1e9);
  EXPECT_DOUBLE_EQ(base.final_cost, r.final_cost);
  EXPECT_EQ(base.config.size(), r.config.size());
}

TEST_F(AdvisorEdgeCase, TopKZeroSelectsNothing) {
  AdvisorOptions options = AdvisorOptions::DTAcNone();
  options.top_k = 0;
  options.num_threads = 2;
  Advisor advisor(db_, *optimizer_, sizes_.get(), nullptr, options);
  const AdvisorResult r = advisor.Tune(workload_, 1e9);
  // An empty candidate pool must yield an empty (not crashed) tuning.
  EXPECT_EQ(r.config.size(), 0u);
  EXPECT_EQ(r.num_candidates, 0u);
  EXPECT_DOUBLE_EQ(r.final_cost, r.initial_cost);
}

TEST_F(AdvisorEdgeCase, UnboundedEstimationCacheWithThreads) {
  // cache_capacity_bytes == 0 means "unbounded", and it must compose with
  // both thread pools (estimation + search) without crashing or drifting.
  AdvisorOptions options = AdvisorOptions::DTAcBoth();
  options.num_threads = 4;
  options.size_options.num_threads = 2;
  options.size_options.cache = std::make_shared<EstimationCache>();
  options.size_options.cache_capacity_bytes = 0;
  SizeEstimator estimator(db_, source_.get(), ErrorModel(),
                          options.size_options);
  Advisor advisor(db_, *optimizer_, &estimator, nullptr, options);
  const AdvisorResult first = advisor.Tune(workload_, 1e9);
  const AdvisorResult second = advisor.Tune(workload_, 1e9);  // cache-hot
  EXPECT_DOUBLE_EQ(first.final_cost, second.final_cost);
  EXPECT_EQ(first.config.size(), second.config.size());
}

TEST_F(AdvisorEdgeCase, InsertOnlyWorkload) {
  Workload inserts;
  inserts.statements.push_back(
      Statement::Insert("B1", InsertStatement{"lineitem", 500}));
  const AdvisorResult r = advisor_->Tune(inserts, 1e9);
  // No queries: no index can help; the tool must not add any.
  EXPECT_EQ(r.config.size(), 0u);
}

TEST_F(AdvisorEdgeCase, NegativeBudgetOnlySpaceSaversFit) {
  // A budget below zero can only be met by configurations that *free*
  // space (compressed clustered indexes).
  const AdvisorResult r = advisor_->Tune(
      workload_, -0.1 * static_cast<double>(db_.BaseDataBytes()));
  EXPECT_LE(r.charged_bytes, -0.1 * static_cast<double>(db_.BaseDataBytes()) + 1.0);
  for (const PhysicalIndexEstimate& idx : r.config.indexes()) {
    EXPECT_TRUE(idx.def.clustered);
    EXPECT_NE(idx.def.compression, CompressionKind::kNone);
  }
}

TEST_F(AdvisorEdgeCase, HugeBudgetMatchesUnbounded) {
  const AdvisorResult bounded = advisor_->Tune(workload_, 1e15);
  const AdvisorResult plain =
      advisor_->Tune(workload_, 100.0 * static_cast<double>(db_.BaseDataBytes()));
  EXPECT_DOUBLE_EQ(bounded.final_cost, plain.final_cost);
}

TEST_F(AdvisorEdgeCase, RepeatedTuningIsIdempotent) {
  const double budget = 0.3 * static_cast<double>(db_.BaseDataBytes());
  const AdvisorResult a = advisor_->Tune(workload_, budget);
  const AdvisorResult b = advisor_->Tune(workload_, budget);
  EXPECT_DOUBLE_EQ(a.final_cost, b.final_cost);
  EXPECT_EQ(a.config.size(), b.config.size());
}

TEST(EdgeCaseParser, RobustToMalformedInput) {
  Database db;
  tpch::Options opt;
  opt.lineitem_rows = 100;
  tpch::Build(&db, opt);
  const char* bad[] = {
      "",
      "SELECT",
      "SELECT FROM lineitem",
      "SELECT l_quantity FROM",
      "SELECT l_quantity FROM nosuchtable",  // aborts? no: ColumnType via q.table
      "INSERT INTO lineitem VALUES x ROWS",
      "INSERT lineitem",
      "SELECT l_quantity FROM lineitem WHERE",
      "SELECT l_quantity FROM lineitem WHERE l_quantity BETWEEN 1",
      "SELECT SUM( FROM lineitem",
  };
  for (const char* sql : bad) {
    if (std::string(sql).find("nosuchtable") != std::string::npos) continue;
    std::string error;
    const auto stmt = ParseSql(sql, db, &error);
    EXPECT_FALSE(stmt.has_value()) << "accepted: " << sql;
  }
}

TEST(EdgeCaseCodec, OversizedSingleRowSpills) {
  // A row wider than a page must spill across multiple pages, not loop.
  Table t("wide", Schema({{"s1", ValueType::kString, 250},
                          {"s2", ValueType::kString, 250}}));
  // 33 columns of 250 bytes would be needed to exceed 8096; instead use
  // many rows of a two-column schema and verify packing stays sane, plus a
  // direct PackPages check with a tiny capacity scenario is impossible —
  // so verify the builder handles near-page-width rows.
  for (int i = 0; i < 40; ++i) {
    t.AddRow({Value::String(std::string(240, static_cast<char>('a' + i % 26))),
              Value::String(std::string(240, static_cast<char>('A' + i % 26)))});
  }
  IndexBuilder builder(t);
  IndexDef def;
  def.object = "wide";
  def.key_columns = {"s1", "s2"};  // ~510B rows: ~15 per page
  def.compression = CompressionKind::kNone;
  const IndexPhysical phys = builder.Build(def);
  EXPECT_GE(phys.data_pages, 3u);
  EXPECT_EQ(phys.tuples, 40u);
}

TEST(EdgeCaseStats, SampleLargerThanTableClamps) {
  Table t("t", Schema({{"a", ValueType::kInt64, 8}}));
  for (int i = 0; i < 20; ++i) t.AddRow({Value::Int64(i)});
  Random rng(1);
  auto sample = CreateUniformSample(t, 1.0, 100, &rng);
  EXPECT_EQ(sample->num_rows(), 20u);  // min_rows larger than table: clamp
}

TEST(EdgeCaseConfiguration, DuplicateAddAborts) {
  Configuration c;
  PhysicalIndexEstimate e;
  e.def.object = "t";
  e.def.key_columns = {"a"};
  c.Add(e);
  EXPECT_DEATH(c.Add(e), "duplicate index");
}

TEST(EdgeCaseValue, CrossTypeCompareAborts) {
  EXPECT_DEATH(Value::Int64(1).Compare(Value::String("x")), "cross-type");
}

}  // namespace
}  // namespace capd
