// Tests for materialized views: materialization, MV samples from join
// synopses, Adaptive-Estimator tuple counts (Appendix B), and MV matching.
#include <cmath>

#include <gtest/gtest.h>

#include "mv/mv_registry.h"
#include "query/sql_parser.h"
#include "workloads/tpch.h"

namespace capd {
namespace {

class MVTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tpch::Options opt;
    opt.lineitem_rows = 8000;
    tpch::Build(&db_, opt);
    samples_ = std::make_unique<SampleManager>(555);
    registry_ = std::make_unique<MVRegistry>(db_, samples_.get());
  }

  MVDef ShipdateMV() {
    MVDef def;
    def.name = "mv_ship";
    def.fact_table = "lineitem";
    def.group_by = {"l_shipdate"};
    def.aggregates = {{"l_extendedprice", "SUM"}};
    return def;
  }

  Database db_;
  std::unique_ptr<SampleManager> samples_;
  std::unique_ptr<MVRegistry> registry_;
};

TEST_F(MVTest, MaterializeGroupsCorrectly) {
  MVDef def = ShipdateMV();
  auto mv = MaterializeMV(db_, def);
  // Distinct ship dates is the exact group count.
  EXPECT_EQ(mv->num_rows(), db_.stats("lineitem").column("l_shipdate").distinct);
  // Total count column sums to fact rows.
  const size_t cpos = mv->schema().ColumnIndex(kMVCountColumn);
  int64_t total = 0;
  for (const Row& r : mv->rows()) total += r[cpos].AsInt64();
  EXPECT_EQ(total, 8000);
}

TEST_F(MVTest, MaterializeWithFilter) {
  MVDef def = ShipdateMV();
  def.name = "mv_ship_r";
  def.predicates = {{"l_returnflag", FilterOp::kEq, Value::String("R"), {}}};
  auto mv = MaterializeMV(db_, def);
  const size_t cpos = mv->schema().ColumnIndex(kMVCountColumn);
  int64_t total = 0;
  for (const Row& r : mv->rows()) total += r[cpos].AsInt64();
  EXPECT_LT(total, 8000 / 2);
  EXPECT_GT(total, 8000 / 10);
}

TEST_F(MVTest, MaterializeWithJoin) {
  MVDef def;
  def.name = "mv_brand";
  def.fact_table = "lineitem";
  def.joins = {{"part", "l_partkey", "p_partkey"}};
  def.group_by = {"p_brand"};
  def.aggregates = {{"l_extendedprice", "SUM"}};
  auto mv = MaterializeMV(db_, def);
  EXPECT_EQ(mv->num_rows(), 5u);  // five brands in the generator
}

TEST_F(MVTest, SampleSourceRoutesMVs) {
  registry_->Register(ShipdateMV());
  const Table& mv_sample = registry_->Sample("mv_ship", 0.05);
  EXPECT_TRUE(mv_sample.schema().HasColumn(kMVCountColumn));
  // Base tables still route to the plain sampler.
  const Table& li_sample = registry_->Sample("lineitem", 0.05);
  EXPECT_EQ(li_sample.schema().num_columns(),
            db_.table("lineitem").schema().num_columns());
}

TEST_F(MVTest, AdaptiveEstimateBeatsBaselines) {
  // The Table 1 phenomenon in miniature: AE should land near the true
  // group count, Multiply should overshoot badly (dates repeat), the
  // independence estimate is irrelevant here (single column) so compare
  // just AE vs Multiply.
  MVDef def = ShipdateMV();
  registry_->Register(def);
  const double truth = static_cast<double>(MaterializeMV(db_, def)->num_rows());
  const MVTupleEstimates est = registry_->EstimateTuples(def, 0.05);
  const double ae_err = std::abs(est.adaptive - truth) / truth;
  const double mult_err = std::abs(est.multiply - truth) / truth;
  EXPECT_LT(ae_err, 0.5);
  EXPECT_GT(mult_err, ae_err);
}

TEST_F(MVTest, MatchAcceptsGeneratingQuery) {
  registry_->Register(ShipdateMV());
  std::string err;
  auto stmt = ParseSql(
      "SELECT l_shipdate, SUM(l_extendedprice) FROM lineitem GROUP BY l_shipdate",
      db_, &err);
  ASSERT_TRUE(stmt.has_value()) << err;
  IndexDef idx;
  idx.object = "mv_ship";
  idx.key_columns = {"l_shipdate"};
  const auto access = registry_->Match(idx, stmt->select);
  ASSERT_TRUE(access.has_value());
  EXPECT_GT(access->mv_tuples, 0.0);
  EXPECT_DOUBLE_EQ(access->selected_frac, 1.0);
}

TEST_F(MVTest, MatchAppliesResidualPredicateOnGroupColumn) {
  registry_->Register(ShipdateMV());
  std::string err;
  auto stmt = ParseSql(
      "SELECT l_shipdate, SUM(l_extendedprice) FROM lineitem "
      "WHERE l_shipdate >= DATE '1998-01-01' GROUP BY l_shipdate",
      db_, &err);
  ASSERT_TRUE(stmt.has_value()) << err;
  IndexDef idx;
  idx.object = "mv_ship";
  idx.key_columns = {"l_shipdate"};
  const auto access = registry_->Match(idx, stmt->select);
  ASSERT_TRUE(access.has_value());
  EXPECT_LT(access->selected_frac, 1.0);
  EXPECT_TRUE(access->leading_key_seek);
}

TEST_F(MVTest, MatchRejectsWrongGrouping) {
  registry_->Register(ShipdateMV());
  std::string err;
  auto stmt = ParseSql(
      "SELECT l_shipmode, SUM(l_extendedprice) FROM lineitem GROUP BY l_shipmode",
      db_, &err);
  ASSERT_TRUE(stmt.has_value()) << err;
  IndexDef idx;
  idx.object = "mv_ship";
  idx.key_columns = {"l_shipdate"};
  EXPECT_FALSE(registry_->Match(idx, stmt->select).has_value());
}

TEST_F(MVTest, MatchRejectsNonGroupResidualPredicate) {
  registry_->Register(ShipdateMV());
  std::string err;
  auto stmt = ParseSql(
      "SELECT l_shipdate, SUM(l_extendedprice) FROM lineitem "
      "WHERE l_quantity < 10 GROUP BY l_shipdate",
      db_, &err);
  ASSERT_TRUE(stmt.has_value()) << err;
  IndexDef idx;
  idx.object = "mv_ship";
  idx.key_columns = {"l_shipdate"};
  // l_quantity is aggregated away in the MV: cannot filter on it.
  EXPECT_FALSE(registry_->Match(idx, stmt->select).has_value());
}

TEST_F(MVTest, MatchRejectsMissingAggregate) {
  registry_->Register(ShipdateMV());
  std::string err;
  auto stmt = ParseSql(
      "SELECT l_shipdate, SUM(l_tax) FROM lineitem GROUP BY l_shipdate", db_,
      &err);
  ASSERT_TRUE(stmt.has_value()) << err;
  IndexDef idx;
  idx.object = "mv_ship";
  idx.key_columns = {"l_shipdate"};
  EXPECT_FALSE(registry_->Match(idx, stmt->select).has_value());
}

TEST_F(MVTest, FactTableOfReportsMVOwner) {
  registry_->Register(ShipdateMV());
  EXPECT_EQ(registry_->FactTableOf("mv_ship"), std::optional<std::string>("lineitem"));
  EXPECT_EQ(registry_->FactTableOf("lineitem"), std::nullopt);
}

TEST_F(MVTest, ObjectSchemaForMV) {
  registry_->Register(ShipdateMV());
  const Schema& s = registry_->ObjectSchema("mv_ship");
  EXPECT_TRUE(s.HasColumn("l_shipdate"));
  EXPECT_TRUE(s.HasColumn("sum_l_extendedprice"));
  EXPECT_TRUE(s.HasColumn(kMVCountColumn));
}

TEST_F(MVTest, FullTuplesCachesAEEstimate) {
  registry_->Register(ShipdateMV());
  const double a = registry_->FullTuples("mv_ship");
  const double b = registry_->FullTuples("mv_ship");
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_GT(a, 0.0);
}

}  // namespace
}  // namespace capd
