// Tests for index definitions and the physical index builder (ground-truth
// sizes the estimation framework is judged against).
#include <gtest/gtest.h>

#include "common/random.h"
#include "compress/codec_factory.h"
#include "index/index_builder.h"

namespace capd {
namespace {

Table MakeTable(int n, uint64_t seed = 123) {
  Random rng(seed);
  Table t("t", Schema({{"a", ValueType::kInt64, 8},
                       {"b", ValueType::kString, 12},
                       {"c", ValueType::kInt64, 8},
                       {"d", ValueType::kDouble, 8}}));
  const char* kWords[] = {"red", "green", "blue"};
  for (int i = 0; i < n; ++i) {
    t.AddRow({Value::Int64(rng.Uniform(0, 20)),
              Value::String(kWords[rng.Next(3)]),
              Value::Int64(rng.Uniform(0, 1000000)),
              Value::Double(static_cast<double>(rng.Uniform(0, 10000)))});
  }
  return t;
}

IndexDef Idx(std::vector<std::string> keys, std::vector<std::string> includes = {},
             CompressionKind kind = CompressionKind::kNone) {
  IndexDef def;
  def.object = "t";
  def.key_columns = std::move(keys);
  def.include_columns = std::move(includes);
  def.compression = kind;
  return def;
}

TEST(IndexDefTest, StoredColumnsSecondary) {
  const Table t = MakeTable(10);
  const auto cols = Idx({"a"}, {"b"}).StoredColumns(t.schema());
  EXPECT_EQ(cols, (std::vector<std::string>{"a", "b"}));
}

TEST(IndexDefTest, StoredColumnsClusteredContainsAll) {
  const Table t = MakeTable(10);
  IndexDef def = Idx({"b"});
  def.clustered = true;
  const auto cols = def.StoredColumns(t.schema());
  EXPECT_EQ(cols.size(), 4u);
  EXPECT_EQ(cols[0], "b");  // key first
}

TEST(IndexDefTest, SignatureDistinguishesCompression) {
  const IndexDef a = Idx({"a"});
  const IndexDef b = Idx({"a"}, {}, CompressionKind::kRow);
  EXPECT_NE(a.Signature(), b.Signature());
  EXPECT_EQ(a.StructureSignature(), b.StructureSignature());
}

TEST(IndexDefTest, ColumnSetSignatureIgnoresOrder) {
  const Table t = MakeTable(5);
  const IndexDef ab = Idx({"a", "b"});
  const IndexDef ba = Idx({"b", "a"});
  EXPECT_EQ(ab.ColumnSetSignature(t.schema()), ba.ColumnSetSignature(t.schema()));
  EXPECT_NE(ab.StructureSignature(), ba.StructureSignature());
}

TEST(ColumnFilterTest, MatchOperators) {
  const Table t = MakeTable(1);
  const Row row = {Value::Int64(5), Value::String("red"), Value::Int64(0),
                   Value::Double(0)};
  ColumnFilter f{"a", FilterOp::kBetween, Value::Int64(3), Value::Int64(7)};
  EXPECT_TRUE(f.Matches(row, t.schema()));
  f = ColumnFilter{"a", FilterOp::kLt, Value::Int64(5), {}};
  EXPECT_FALSE(f.Matches(row, t.schema()));
  f = ColumnFilter{"a", FilterOp::kGe, Value::Int64(5), {}};
  EXPECT_TRUE(f.Matches(row, t.schema()));
  f = ColumnFilter{"b", FilterOp::kEq, Value::String("red"), {}};
  EXPECT_TRUE(f.Matches(row, t.schema()));
}

TEST(IndexBuilderTest, MaterializedRowsAreSortedByKey) {
  const Table t = MakeTable(500);
  IndexBuilder builder(t);
  const std::vector<Row> rows = builder.MaterializeRows(Idx({"a", "c"}));
  ASSERT_EQ(rows.size(), 500u);
  for (size_t i = 1; i < rows.size(); ++i) {
    const int c = rows[i - 1][0].Compare(rows[i][0]);
    EXPECT_LE(c, 0);
    if (c == 0) {
      EXPECT_LE(rows[i - 1][1].Compare(rows[i][1]), 0);
    }
  }
}

TEST(IndexBuilderTest, SecondaryCarriesRowLocator) {
  const Table t = MakeTable(10);
  IndexBuilder builder(t);
  const Schema stored = builder.StoredSchema(Idx({"a"}));
  EXPECT_EQ(stored.column(stored.num_columns() - 1).name, "__rowid");
}

TEST(IndexBuilderTest, ClusteredHasNoLocator) {
  const Table t = MakeTable(10);
  IndexBuilder builder(t);
  IndexDef def = Idx({"a"});
  def.clustered = true;
  const Schema stored = builder.StoredSchema(def);
  EXPECT_FALSE(stored.HasColumn("__rowid"));
  EXPECT_EQ(stored.num_columns(), 4u);
}

TEST(IndexBuilderTest, PartialIndexFiltersRows) {
  const Table t = MakeTable(1000);
  IndexBuilder builder(t);
  IndexDef def = Idx({"a"});
  def.filter = ColumnFilter{"a", FilterOp::kLt, Value::Int64(5), {}};
  const IndexPhysical phys = builder.Build(def);
  EXPECT_LT(phys.tuples, 500u);
  EXPECT_GT(phys.tuples, 50u);
}

TEST(IndexBuilderTest, CompressionShrinksCompressibleIndex) {
  const Table t = MakeTable(3000);
  IndexBuilder builder(t);
  // Column "a" has 21 distinct small ints and "b" three short strings: very
  // compressible under both ROW and PAGE.
  for (CompressionKind kind : {CompressionKind::kRow, CompressionKind::kPage}) {
    const double cf = builder.TrueCompressionFraction(Idx({"a", "b"}, {}, kind));
    EXPECT_LT(cf, 0.8) << CompressionKindName(kind);
    EXPECT_GT(cf, 0.05);
  }
}

TEST(IndexBuilderTest, RandomWideColumnCompressesWorse) {
  const Table t = MakeTable(3000);
  IndexBuilder builder(t);
  const double cf_narrow =
      builder.TrueCompressionFraction(Idx({"a"}, {}, CompressionKind::kRow));
  const double cf_wide =
      builder.TrueCompressionFraction(Idx({"c"}, {}, CompressionKind::kRow));
  EXPECT_LT(cf_narrow, cf_wide);  // small ints compress better than random
}

TEST(IndexBuilderTest, OrdIndSizeEqualForPermutedKeys) {
  const Table t = MakeTable(2000);
  IndexBuilder builder(t);
  const IndexPhysical ab =
      builder.Build(Idx({"a", "b"}, {}, CompressionKind::kRow));
  const IndexPhysical ba =
      builder.Build(Idx({"b", "a"}, {}, CompressionKind::kRow));
  // ORD-IND: identical column set => identical size (the ColSet axiom).
  EXPECT_EQ(ab.total_pages(), ba.total_pages());
}

TEST(IndexBuilderTest, OrdDepSizeDiffersForPermutedKeys) {
  // Make a table where order matters strongly: column x has long runs when
  // leading, fragmented when trailing.
  Random rng(9);
  Table t("t", Schema({{"x", ValueType::kString, 16}, {"y", ValueType::kInt64, 8}}));
  for (int i = 0; i < 4000; ++i) {
    t.AddRow({Value::String("group_" + std::to_string(i % 4)),
              Value::Int64(rng.Uniform(0, 1000000))});
  }
  IndexBuilder builder(t);
  IndexDef xy;
  xy.object = "t";
  xy.key_columns = {"x", "y"};
  xy.compression = CompressionKind::kRle;
  IndexDef yx = xy;
  yx.key_columns = {"y", "x"};
  const IndexPhysical phys_xy = builder.Build(xy);
  const IndexPhysical phys_yx = builder.Build(yx);
  EXPECT_NE(phys_xy.total_pages(), phys_yx.total_pages());
  // x leading -> runs of x collapse under RLE -> smaller.
  EXPECT_LT(phys_xy.total_pages(), phys_yx.total_pages());
}

TEST(IndexBuilderTest, EmptyTableStillOnePage) {
  Table t("t", Schema({{"a", ValueType::kInt64, 8}}));
  IndexBuilder builder(t);
  IndexDef def;
  def.object = "t";
  def.key_columns = {"a"};
  EXPECT_EQ(builder.Build(def).data_pages, 1u);
}

TEST(PackPagesTest, EveryPageBlobFitsCapacity) {
  // Indirect check: pack, then verify the builder's page count is at least
  // bytes/capacity (no page can hold more than capacity).
  const Table t = MakeTable(5000);
  IndexBuilder builder(t);
  const IndexDef def = Idx({"a", "b", "c"}, {}, CompressionKind::kPage);
  const std::vector<Row> rows = builder.MaterializeRows(def);
  const Schema stored = builder.StoredSchema(def);
  std::unique_ptr<Codec> codec = MakeCodec(def.compression, stored, rows);
  const std::string whole =
      codec->CompressPage(EncodeRows(rows, stored, 0, rows.size()));
  const PackResult packed = PackPages(rows, stored, *codec);
  EXPECT_GE(packed.pages, whole.size() / kPageCapacity);
  // And packing cannot be catastrophically wasteful either (pages are at
  // least half full on average for smooth data like this).
  EXPECT_LE(packed.pages, 2 * whole.size() / kPageCapacity + 2);
  EXPECT_GT(packed.payload_bytes, 0u);
  EXPECT_LE(packed.payload_bytes, packed.pages * kPageCapacity);
}

TEST(PackPagesTest, GlobalDictOverheadCounted) {
  const Table t = MakeTable(2000);
  IndexBuilder builder(t);
  const IndexPhysical phys =
      builder.Build(Idx({"c"}, {}, CompressionKind::kGlobalDict));
  EXPECT_GT(phys.overhead_bytes, 0u);  // ~2000 distinct c values stored once
  EXPECT_GT(phys.total_pages(), phys.data_pages);
}

}  // namespace
}  // namespace capd
