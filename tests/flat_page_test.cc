// Tests for the zero-copy compression path: FlatPage/FlatSpan layout and
// converters, the SWAR CountLeadingZeros kernel, the pinned
// MeasurePage(s) == CompressPage(s).size() contract for every codec across
// widths and null densities (including width-255 and all-zero fields), and
// the randomized compress->decompress round-trip property on the same
// matrix. Also the NS width>255 CHECK death tests.
#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "compress/codec_factory.h"
#include "compress/flat_page.h"
#include "compress/null_suppression.h"

namespace capd {
namespace {

Schema WideSchema() {
  // One compressible int, one short string, one width-255 string, one int.
  return Schema({{"a", ValueType::kInt64, 8},
                 {"s", ValueType::kString, 12},
                 {"w", ValueType::kString, 255},
                 {"b", ValueType::kInt64, 8}});
}

// Rows with a tunable fraction of "zero" fields (Int64(0) / empty string
// encode to all-0x00 fixed-width fields).
std::vector<Row> RandomRows(size_t n, double zero_density, Random* rng) {
  std::vector<Row> rows;
  rows.reserve(n);
  const char* kWords[] = {"alpha", "beta", "gamma", "delta"};
  for (size_t i = 0; i < n; ++i) {
    const bool zero = rng->NextDouble() < zero_density;
    std::string wide;
    if (!zero) {
      const size_t len = rng->Next(250);
      wide.assign(len, static_cast<char>('a' + rng->Next(26)));
    }
    rows.push_back(
        {zero ? Value::Int64(0) : Value::Int64(rng->Uniform(0, 50)),
         zero ? Value::String("") : Value::String(kWords[rng->Next(4)]),
         Value::String(wide),
         zero ? Value::Int64(0) : Value::Int64(rng->Uniform(0, 1 << 30))});
  }
  return rows;
}

bool PagesEqual(const EncodedPage& a, const EncodedPage& b) {
  if (a.rows.size() != b.rows.size()) return false;
  for (size_t i = 0; i < a.rows.size(); ++i) {
    if (a.rows[i] != b.rows[i]) return false;
  }
  return true;
}

TEST(FlatPageTest, LayoutMatchesEncodeField) {
  Random rng(11);
  const Schema schema = WideSchema();
  const std::vector<Row> rows = RandomRows(37, 0.3, &rng);
  const FlatPage page = FlatPage::FromRows(rows, schema, 0, rows.size());
  ASSERT_EQ(page.num_rows(), rows.size());
  ASSERT_EQ(page.num_columns(), schema.num_columns());
  EXPECT_EQ(page.row_width(), static_cast<size_t>(schema.RowWidth()));
  for (size_t r = 0; r < rows.size(); ++r) {
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      EXPECT_EQ(page.field(r, c),
                EncodeFieldToString(rows[r][c], schema.column(c)))
          << "row " << r << " col " << c;
    }
  }
}

TEST(FlatPageTest, ColumnDataIsContiguous) {
  Random rng(12);
  const Schema schema = WideSchema();
  const std::vector<Row> rows = RandomRows(20, 0.0, &rng);
  const FlatPage page = FlatPage::FromRows(rows, schema, 0, rows.size());
  for (size_t c = 0; c < page.num_columns(); ++c) {
    const char* base = page.column_data(c);
    for (size_t r = 0; r < page.num_rows(); ++r) {
      EXPECT_EQ(FieldView(base + r * page.width(c), page.width(c)),
                page.field(r, c));
    }
  }
}

TEST(FlatPageTest, SpanSlicesAddressSubranges) {
  Random rng(13);
  const Schema schema = WideSchema();
  const std::vector<Row> rows = RandomRows(50, 0.2, &rng);
  const FlatPage page = FlatPage::FromRows(rows, schema, 0, rows.size());
  const FlatSpan span = page.span(10, 35);
  ASSERT_EQ(span.num_rows(), 25u);
  for (size_t r = 0; r < span.num_rows(); ++r) {
    for (size_t c = 0; c < span.num_columns(); ++c) {
      EXPECT_EQ(span.field(r, c), page.field(10 + r, c));
    }
  }
  // Slicing matches FromRows over the same subrange.
  const FlatPage sub = FlatPage::FromRows(rows, schema, 10, 35);
  EXPECT_TRUE(PagesEqual(
      sub.ToEncodedPage(),
      FlatPage::FromRows(rows, schema, 10, 35).ToEncodedPage()));
}

TEST(FlatPageTest, FromBlockMatchesFromRows) {
  Random rng(14);
  const Schema schema = WideSchema();
  const std::vector<Row> rows = RandomRows(30, 0.25, &rng);
  ColumnBlock block(schema);
  block.Reset(0);
  for (const Row& r : rows) block.AppendRow(r);
  const FlatPage from_block = FlatPage::FromBlock(block, schema);
  const FlatPage from_rows = FlatPage::FromRows(rows, schema, 0, rows.size());
  EXPECT_TRUE(
      PagesEqual(from_block.ToEncodedPage(), from_rows.ToEncodedPage()));
}

TEST(FlatPageTest, EncodedPageRoundTrip) {
  Random rng(15);
  const Schema schema = WideSchema();
  const std::vector<Row> rows = RandomRows(25, 0.5, &rng);
  const EncodedPage encoded = EncodeRows(rows, schema, 0, rows.size());
  const FlatPage flat =
      FlatPage::FromEncodedPage(encoded, ColumnWidths(schema));
  EXPECT_TRUE(PagesEqual(flat.ToEncodedPage(), encoded));
}

TEST(CountLeadingZerosTest, MatchesScalarReference) {
  Random rng(16);
  for (int trial = 0; trial < 500; ++trial) {
    const size_t len = rng.Next(41);  // 0..40 covers SWAR body + tail
    std::string s(len, '\0');
    // First nonzero byte at a random position (possibly none).
    const size_t pos = rng.Next(static_cast<uint32_t>(len) + 2);
    for (size_t i = pos; i < len; ++i) {
      s[i] = static_cast<char>(rng.Next(256));
    }
    if (pos < len) s[pos] = static_cast<char>(1 + rng.Next(255));
    size_t expected = 0;
    while (expected < s.size() && s[expected] == '\0') ++expected;
    EXPECT_EQ(CountLeadingZeros(s), expected)
        << "len=" << len << " pos=" << pos;
  }
}

TEST(CountLeadingZerosTest, WordBoundaries) {
  for (size_t len : {0u, 1u, 7u, 8u, 9u, 15u, 16u, 17u, 255u}) {
    const std::string zeros(len, '\0');
    EXPECT_EQ(CountLeadingZeros(zeros), len);
    for (size_t pos = 0; pos < len; ++pos) {
      std::string s = zeros;
      s[pos] = 'x';
      EXPECT_EQ(CountLeadingZeros(s), pos) << "len=" << len;
    }
  }
}

TEST(NullSuppressionDeathTest, FieldWiderThan255Aborts) {
  const std::string too_wide(256, 'x');
  std::string out;
  EXPECT_DEATH(NsCompressField(too_wide, &out), "CHECK failed");
  EXPECT_DEATH(NsFieldSize(too_wide), "CHECK failed");
}

// The pinned contract: MeasurePage(s) == CompressPage(s).size() for every
// codec, span, width mix, and null density — and the flat compressor is
// byte-identical to the legacy row-major entry point.
class MeasureEqualsCompress
    : public ::testing::TestWithParam<CompressionKind> {};

TEST_P(MeasureEqualsCompress, AcrossSpansAndNullDensities) {
  Random rng(17);
  const Schema schema = WideSchema();
  for (const double density : {0.0, 0.4, 1.0}) {
    const std::vector<Row> rows = RandomRows(60, density, &rng);
    const std::unique_ptr<Codec> codec = MakeCodec(GetParam(), schema, rows);
    const FlatPage flat = FlatPage::FromRows(rows, schema, 0, rows.size());
    const size_t n = flat.num_rows();
    const size_t spans[][2] = {{0, n}, {0, 1}, {n / 3, 2 * n / 3}, {n, n}};
    for (const auto& range : spans) {
      const FlatSpan span = flat.span(range[0], range[1]);
      const std::string blob = codec->CompressPage(span);
      EXPECT_EQ(codec->MeasurePage(span), blob.size())
          << CompressionKindName(GetParam()) << " density=" << density
          << " span=[" << range[0] << "," << range[1] << ")";
    }
    // Legacy row-major entry point produces identical bytes.
    const EncodedPage encoded = EncodeRows(rows, schema, 0, rows.size());
    EXPECT_EQ(codec->CompressPage(encoded), codec->CompressPage(flat.span()));
  }
}

TEST_P(MeasureEqualsCompress, RoundTripIdentity) {
  Random rng(18);
  const Schema schema = WideSchema();
  for (const double density : {0.0, 0.4, 1.0}) {
    for (int trial = 0; trial < 5; ++trial) {
      const std::vector<Row> rows =
          RandomRows(1 + rng.Next(80), density, &rng);
      const std::unique_ptr<Codec> codec = MakeCodec(GetParam(), schema, rows);
      const FlatPage flat = FlatPage::FromRows(rows, schema, 0, rows.size());
      const EncodedPage back = codec->DecompressPage(codec->CompressPage(flat));
      EXPECT_TRUE(PagesEqual(back, flat.ToEncodedPage()))
          << CompressionKindName(GetParam()) << " density=" << density;
    }
  }
}

TEST_P(MeasureEqualsCompress, AllZeroFields) {
  const Schema schema = WideSchema();
  std::vector<Row> rows;
  for (int i = 0; i < 40; ++i) {
    rows.push_back({Value::Int64(0), Value::String(""), Value::String(""),
                    Value::Int64(0)});
  }
  const std::unique_ptr<Codec> codec = MakeCodec(GetParam(), schema, rows);
  const FlatPage flat = FlatPage::FromRows(rows, schema, 0, rows.size());
  const std::string blob = codec->CompressPage(flat);
  EXPECT_EQ(codec->MeasurePage(flat), blob.size());
  EXPECT_TRUE(PagesEqual(codec->DecompressPage(blob), flat.ToEncodedPage()));
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, MeasureEqualsCompress,
    ::testing::Values(CompressionKind::kNone, CompressionKind::kRow,
                      CompressionKind::kPage, CompressionKind::kGlobalDict,
                      CompressionKind::kRle, CompressionKind::kBitmap),
    [](const auto& info) {
      std::string n = CompressionKindName(info.param);
      n.erase(std::remove_if(n.begin(), n.end(),
                             [](char c) {
                               return !std::isalnum(
                                   static_cast<unsigned char>(c));
                             }),
              n.end());
      return n;
    });

}  // namespace
}  // namespace capd
