// Determinism and invariant tests for the parallel per-query candidate
// selection phase (and the staged baseline's stage 2): any thread count,
// cache on or off, must reproduce the serial selection to the bit; the
// skyline must be mutually non-dominated in (budget charge, cost); top-k
// must be a prefix of the cost-sorted improving candidates; and the staged
// baseline must never beat DTAc on total workload cost.
#include <algorithm>
#include <cstring>
#include <limits>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "advisor/advisor.h"
#include "workloads/tpch.h"

namespace capd {
namespace {

class CandidateSelectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tpch::Options opt;
    opt.lineitem_rows = 3000;
    tpch::Build(&db_, opt);
    workload_ = tpch::MakeWorkload(db_, opt);
    samples_ = std::make_unique<SampleManager>(4242);
    mvs_ = std::make_unique<MVRegistry>(db_, samples_.get());
    optimizer_ = std::make_unique<WhatIfOptimizer>(db_, CostModelParams{});
    optimizer_->set_mv_matcher(mvs_.get());

    // One candidate pool + size map shared by every selection run: the
    // inputs are fixed, only the thread count / cache wiring varies.
    const AdvisorOptions options = AdvisorOptions::DTAcBoth();
    estimator_ = std::make_unique<SizeEstimator>(db_, mvs_.get(), ErrorModel(),
                                                 options.size_options);
    Advisor seed(db_, *optimizer_, estimator_.get(), mvs_.get(), options);
    CandidateGenerator generator(db_, *optimizer_, mvs_.get(), options);
    candidates_ = generator.GenerateForWorkload(workload_);
    sizes_ = seed.EstimateSizes(candidates_, nullptr);
    ASSERT_GT(candidates_.size(), 0u);
  }

  std::vector<IndexDef> Select(const Workload& w, AdvisorOptions options,
                               bool with_cache) {
    Advisor advisor(db_, *optimizer_, estimator_.get(), mvs_.get(), options);
    std::unique_ptr<StatementCostCache> cache;
    if (with_cache) {
      cache = std::make_unique<StatementCostCache>(db_, *optimizer_, w);
    }
    return advisor.SelectCandidates(w, candidates_, sizes_, cache.get(),
                                    nullptr);
  }

  // Fresh stack per run, mirroring bench_common's wiring (per-key sample
  // seeding makes independently drawn samples identical).
  AdvisorResult Tune(AdvisorOptions options, double budget_frac,
                     bool staged = false) {
    SampleManager samples(4242);
    MVRegistry mvs(db_, &samples);
    WhatIfOptimizer optimizer(db_, CostModelParams{});
    optimizer.set_mv_matcher(&mvs);
    SizeEstimator estimator(db_, &mvs, ErrorModel(), options.size_options);
    Advisor advisor(db_, optimizer, &estimator, &mvs, options);
    const double budget =
        budget_frac * static_cast<double>(db_.BaseDataBytes());
    return staged ? advisor.TuneStagedBaseline(workload_, budget,
                                               CompressionKind::kPage)
                  : advisor.Tune(workload_, budget);
  }

  static void ExpectBitIdentical(const AdvisorResult& a,
                                 const AdvisorResult& b) {
    // memcmp, not ==: the criterion is bit-identical doubles.
    EXPECT_EQ(std::memcmp(&a.initial_cost, &b.initial_cost, sizeof(double)),
              0);
    EXPECT_EQ(std::memcmp(&a.final_cost, &b.final_cost, sizeof(double)), 0);
    EXPECT_EQ(
        std::memcmp(&a.charged_bytes, &b.charged_bytes, sizeof(double)), 0);
    ASSERT_EQ(a.config.size(), b.config.size());
    const auto& ia = a.config.indexes();
    const auto& ib = b.config.indexes();
    for (size_t i = 0; i < ia.size(); ++i) {
      EXPECT_EQ(ia[i].def.Signature(), ib[i].def.Signature()) << i;
      EXPECT_EQ(std::memcmp(&ia[i].bytes, &ib[i].bytes, sizeof(double)), 0);
      EXPECT_EQ(std::memcmp(&ia[i].tuples, &ib[i].tuples, sizeof(double)), 0);
    }
  }

  // Cost and budget charge of one single-index configuration for `stmt`.
  void CostAndCharge(const Statement& stmt, const IndexDef& def, double* cost,
                     double* charge) {
    Advisor advisor(db_, *optimizer_, estimator_.get(), mvs_.get(),
                    AdvisorOptions::DTAcBoth());
    Configuration config;
    config.Add(sizes_.at(def.Signature()));
    *cost = optimizer_->Cost(stmt, config);
    *charge = advisor.ChargedBytes(config);
  }

  Database db_;
  Workload workload_;
  std::unique_ptr<SampleManager> samples_;
  std::unique_ptr<MVRegistry> mvs_;
  std::unique_ptr<WhatIfOptimizer> optimizer_;
  std::unique_ptr<SizeEstimator> estimator_;
  std::vector<IndexDef> candidates_;
  std::map<std::string, PhysicalIndexEstimate> sizes_;
};

TEST_F(CandidateSelectionTest, ParallelSelectionIdenticalToSerial) {
  for (CandidateSelectionMode mode :
       {CandidateSelectionMode::kSkyline, CandidateSelectionMode::kTopK}) {
    AdvisorOptions serial = AdvisorOptions::DTAcBoth();
    serial.selection = mode;
    serial.num_threads = 1;
    const std::vector<IndexDef> base = Select(workload_, serial, false);
    EXPECT_GT(base.size(), 0u);

    for (int threads : {1, 2, 4, 8}) {
      for (bool cache : {false, true}) {
        AdvisorOptions options = serial;
        options.num_threads = threads;
        const std::vector<IndexDef> got = Select(workload_, options, cache);
        ASSERT_EQ(base.size(), got.size())
            << "threads=" << threads << " cache=" << cache;
        for (size_t i = 0; i < base.size(); ++i) {
          EXPECT_EQ(base[i].Signature(), got[i].Signature())
              << "threads=" << threads << " cache=" << cache << " i=" << i;
        }
      }
    }
  }
}

TEST_F(CandidateSelectionTest, SkylineEntriesAreMutuallyNonDominated) {
  AdvisorOptions options = AdvisorOptions::DTAcSkyline();
  int checked_queries = 0;
  for (const Statement& stmt : workload_.statements) {
    if (stmt.type != StatementType::kSelect) continue;
    if (checked_queries >= 6) break;  // a spread of queries is enough
    Workload single;
    single.statements.push_back(stmt);
    const std::vector<IndexDef> selected = Select(single, options, false);
    if (selected.empty()) continue;
    ++checked_queries;

    const double base_cost = optimizer_->Cost(stmt, Configuration());
    std::vector<double> costs(selected.size());
    std::vector<double> charges(selected.size());
    for (size_t i = 0; i < selected.size(); ++i) {
      CostAndCharge(stmt, selected[i], &costs[i], &charges[i]);
      EXPECT_LT(costs[i], base_cost) << selected[i].ToString();
    }
    for (size_t i = 0; i < selected.size(); ++i) {
      for (size_t j = 0; j < selected.size(); ++j) {
        if (i == j) continue;
        const bool better_or_equal =
            costs[j] <= costs[i] && charges[j] <= charges[i];
        const bool strictly_better =
            costs[j] < costs[i] || charges[j] < charges[i];
        EXPECT_FALSE(better_or_equal && strictly_better)
            << selected[i].ToString() << " dominated by "
            << selected[j].ToString();
      }
    }
  }
  EXPECT_GT(checked_queries, 0);
}

TEST_F(CandidateSelectionTest, TopKIsAPrefixOfTheCostSortedCandidates) {
  AdvisorOptions options = AdvisorOptions::DTAcNone();
  options.top_k = 3;
  int checked_queries = 0;
  for (const Statement& stmt : workload_.statements) {
    if (stmt.type != StatementType::kSelect) continue;
    if (checked_queries >= 6) break;
    Workload single;
    single.statements.push_back(stmt);
    const std::vector<IndexDef> selected = Select(single, options, false);

    // Every candidate improving on the base cost, with its cost.
    const double base_cost = optimizer_->Cost(stmt, Configuration());
    std::vector<double> improving;
    for (const IndexDef& def : candidates_) {
      double cost, charge;
      CostAndCharge(stmt, def, &cost, &charge);
      if (cost < base_cost) improving.push_back(cost);
    }
    std::sort(improving.begin(), improving.end());
    ASSERT_EQ(selected.size(),
              std::min<size_t>(options.top_k, improving.size()));
    if (selected.empty()) continue;
    ++checked_queries;

    // The selected costs must be exactly the k smallest improving costs
    // (ties may swap members, but the cost multiset prefix is unique).
    double worst_selected = -std::numeric_limits<double>::infinity();
    for (const IndexDef& def : selected) {
      double cost, charge;
      CostAndCharge(stmt, def, &cost, &charge);
      worst_selected = std::max(worst_selected, cost);
    }
    EXPECT_LE(worst_selected, improving[selected.size() - 1] + 1e-12);
  }
  EXPECT_GT(checked_queries, 0);
}

TEST_F(CandidateSelectionTest, StagedBaselineNeverBeatsDTAc) {
  for (double budget : {0.10, 0.30}) {
    const AdvisorResult dtac = Tune(AdvisorOptions::DTAcBoth(), budget);
    const AdvisorResult staged =
        Tune(AdvisorOptions::DTAcBoth(), budget, /*staged=*/true);
    // Lower cost is better: the compression-aware search sees everything
    // the staged pipeline can produce, so staging can at best tie.
    EXPECT_GE(staged.final_cost, dtac.final_cost - 1e-9) << budget;
  }
}

TEST_F(CandidateSelectionTest, StagedBaselineParallelIdenticalToSerial) {
  AdvisorOptions serial = AdvisorOptions::DTAcNone();
  serial.cost_cache = false;
  serial.num_threads = 1;
  const AdvisorResult base = Tune(serial, 0.15, /*staged=*/true);

  for (int threads : {2, 4, 8}) {
    for (bool cache : {false, true}) {
      AdvisorOptions parallel = serial;
      parallel.cost_cache = cache;
      parallel.num_threads = threads;
      ExpectBitIdentical(base, Tune(parallel, 0.15, /*staged=*/true));
    }
  }
}

TEST_F(CandidateSelectionTest, FullTuneParallelIdenticalToSerial) {
  AdvisorOptions serial = AdvisorOptions::DTAcBoth();
  serial.cost_cache = false;
  serial.num_threads = 1;
  const AdvisorResult base = Tune(serial, 0.12);

  for (int threads : {2, 4, 8}) {
    AdvisorOptions parallel = serial;
    parallel.cost_cache = true;
    parallel.num_threads = threads;
    const AdvisorResult r = Tune(parallel, 0.12);
    ExpectBitIdentical(base, r);
    // Selection costings now flow through the shared cost cache and warm
    // it for enumeration.
    EXPECT_GT(r.stmt_costs_cached, 0u);
  }
}

}  // namespace
}  // namespace capd
