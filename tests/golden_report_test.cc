// Golden-report regression tests (the PVLDB reproducibility norm of pinned
// expected outputs): the full rendered tuning report of each strategy ×
// workload pair must match the checked-in golden byte-for-byte. Everything
// in the report — costs, improvement, charged bytes, what-if/cost-cache
// counters, estimation statistics, recommended DDL — is deterministic
// under the fixed seeds, so any drift (an advisor change, a cost-model
// tweak, -O3 float divergence) fails loudly here instead of silently
// shifting recommendations.
//
// Regenerate after an intentional change with:
//   CAPD_UPDATE_GOLDEN=1 ./build/golden_report_test
// and review the tests/golden/ diff like any other code change.
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "engine/advisor_engine.h"
#include "workloads/registry.h"

namespace capd {
namespace {

constexpr double kBudgetFrac = 0.15;

bool UpdateGoldenMode() {
  const char* env = std::getenv("CAPD_UPDATE_GOLDEN");
  return env != nullptr && env[0] != '\0' && std::string(env) != "0";
}

std::string GoldenPath(const std::string& name) {
  return std::string(CAPD_GOLDEN_DIR) + "/" + name + ".txt";
}

// Golden file tag -> registered strategy name.
std::string StrategyFor(const std::string& tag) {
  if (tag == "dtac_topk") return "dtac-topk";
  if (tag == "dtac_skyline") return "dtac-skyline";
  return "staged:page";
}

// One fresh AdvisorEngine per render (defaults keep the historical sample
// seed 4242); every seed is fixed so two builds of the same workload are
// byte-identical. The engine's shared caches stay on — the determinism
// contract says warmth never changes the rendered bytes, and these goldens
// are the proof pinned in CI.
struct GoldenStack {
  workloads::BuiltWorkload built;

  std::string Render(const std::string& tag) {
    AdvisorEngine engine(*built.db);
    TuningRequest request;
    request.workload = built.workload;
    request.strategy = StrategyFor(tag);
    request.budget = TuningBudget::Fraction(kBudgetFrac);
    const TuningResponse response = engine.Tune(request);
    EXPECT_TRUE(response.ok()) << response.error;
    return response.report;
  }
};

void BuildStack(const std::string& workload_name, GoldenStack* s) {
  workloads::WorkloadSpec spec;
  spec.name = workload_name;  // "tpcds" resolves via the registry alias
  spec.rows = 2000;
  std::string error;
  ASSERT_TRUE(workloads::Build(spec, &s->built, &error)) << error;
}

class GoldenReportTest
    : public ::testing::TestWithParam<std::tuple<const char*, const char*>> {
};

TEST_P(GoldenReportTest, ReportMatchesGoldenByteForByte) {
  const std::string workload_name = std::get<0>(GetParam());
  const std::string strategy = std::get<1>(GetParam());
  const std::string name = workload_name + "_" + strategy;

  GoldenStack stack;
  BuildStack(workload_name, &stack);
  const std::string report = stack.Render(strategy);
  ASSERT_FALSE(report.empty());

  const std::string path = GoldenPath(name);
  if (UpdateGoldenMode()) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << report;
    std::fprintf(stderr, "[golden] updated %s\n", path.c_str());
    return;
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden " << path
                         << " — regenerate with CAPD_UPDATE_GOLDEN=1";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(report, expected.str())
      << "report drifted from " << path
      << " — if intentional, regenerate with CAPD_UPDATE_GOLDEN=1 and "
         "review the diff";
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategiesAllWorkloads, GoldenReportTest,
    ::testing::Combine(::testing::Values("tpch", "sales", "tpcds"),
                       ::testing::Values("dtac_topk", "dtac_skyline",
                                         "staged")),
    [](const ::testing::TestParamInfo<GoldenReportTest::ParamType>& info) {
      return std::string(std::get<0>(info.param)) + "_" +
             std::get<1>(info.param);
    });

// Rendering twice from independently built stacks must be byte-identical —
// the precondition for golden pinning (and a canary for any nondeterminism
// creeping into the advisor or the report renderer).
TEST(GoldenReportDeterminism, IndependentRunsRenderIdentically) {
  GoldenStack a;
  GoldenStack b;
  BuildStack("tpcds", &a);
  BuildStack("tpcds", &b);
  EXPECT_EQ(a.Render("dtac_skyline"), b.Render("dtac_skyline"));
  EXPECT_EQ(a.Render("staged"), b.Render("staged"));
}

}  // namespace
}  // namespace capd
