// AdvisorEngine: the front door of the compression-aware physical design
// tool — the "advisor as a managed service" the paper's DBA workflow
// assumes. Construct one engine per database; it owns the whole
// collaborator stack (sample manager, MV registry, what-if optimizer, the
// cross-round estimation cache, the thread pools) and serves tuning
// requests from it, keeping samples and estimates warm across requests.
//
//   AdvisorEngine engine(db);
//   TuningRequest request;
//   request.workload = workload;
//   request.strategy = "dtac-both";           // see strategy_registry.h
//   request.budget = TuningBudget::Fraction(0.2);
//   TuningResponse response = engine.Tune(request);
//   if (response.ok()) std::cout << response.json;
//
// Determinism contract (extends the PR 1-3 guarantees): concurrent Tune()
// calls on one engine are safe, and every response — the AdvisorResult,
// the text report, and the JSON report, bytes included — is identical to
// running that request alone on a freshly wired stack. Shared caches only
// memoize pure computations (samples are seeded per cache key; the
// estimation cache runs in fraction-exact mode; the statement cost cache
// is per-request), so warmth changes latency, never results.
//
// The raw Advisor (advisor/advisor.h) remains the low-level layer for
// callers that need to hand-wire collaborators; TuneWithOptions() is the
// escape hatch in between — engine-owned stack, caller-supplied options.
#ifndef CAPD_ENGINE_ADVISOR_ENGINE_H_
#define CAPD_ENGINE_ADVISOR_ENGINE_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "advisor/advisor.h"
#include "engine/strategy_registry.h"
#include "estimator/estimation_cache.h"
#include "mv/mv_registry.h"

namespace capd {

struct EngineOptions {
  // Default worker threads for a request's search loop (what-if costings)
  // and estimation batches; 1 = serial, 0 = hardware concurrency.
  // Requests may override per call. Pools are created lazily, owned by the
  // engine, and shared across concurrent requests (results stay
  // bit-identical at any thread count).
  int search_threads = 1;
  int estimation_threads = 1;

  // Seed of the engine-owned SampleManager. Samples are seeded per cache
  // key, so any fixed seed gives run-to-run reproducibility.
  uint64_t sample_seed = 4242;

  // Cross-request estimation cache (fraction-exact mode, see
  // SizeEstimationOptions::cache_fraction_exact): indexes priced by one
  // request are not re-sampled by the next. 0 capacity = unbounded.
  bool share_estimation_cache = true;
  size_t estimation_cache_capacity_bytes = 0;

  // Default for TuningRequest::cost_cache (the per-request sharded
  // statement cost cache).
  bool cost_cache = true;
};

// Cooperative cancellation handle. Copies share the flag: keep one, put
// the other in the request, call RequestCancel() from any thread.
class CancellationToken {
 public:
  CancellationToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void RequestCancel() { flag_->store(true, std::memory_order_relaxed); }
  bool cancel_requested() const {
    return flag_->load(std::memory_order_relaxed);
  }

  // The flag the advisor polls (AdvisorOptions::cancel).
  std::shared_ptr<const std::atomic<bool>> flag() const { return flag_; }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

// Storage budget: absolute bytes, or a fraction of the base data size
// (resolved against Database::BaseDataBytes() at request time). A 0%
// budget is meaningful: clustered compressed indexes replace the heap and
// charge negative bytes (the paper's Example 1/2).
struct TuningBudget {
  enum class Kind { kFraction, kBytes };

  Kind kind = Kind::kFraction;
  double value = 0.2;

  static TuningBudget Fraction(double fraction) {
    return TuningBudget{Kind::kFraction, fraction};
  }
  static TuningBudget Bytes(double bytes) {
    return TuningBudget{Kind::kBytes, bytes};
  }

  double ResolveBytes(double base_data_bytes) const {
    return kind == Kind::kFraction ? value * base_data_bytes : value;
  }
};

struct TuningRequest {
  Workload workload;
  // Strategy name resolved via StrategyRegistry::Global(); unknown names
  // yield a kError response listing the registered names.
  std::string strategy = "dtac-both";
  TuningBudget budget;  // default: 20% of base data

  // --- knobs (engine / strategy defaults when negative) ---
  int search_threads = -1;
  int estimation_threads = -1;
  int cost_cache = -1;  // -1 = engine default, 0 = off, 1 = on
  // Candidate-class toggles overlaying the strategy's base options
  // (-1 = strategy default, 0 = off, 1 = on). MV-enabled requests tune
  // against a request-private MV registry, so their workload-derived view
  // definitions never leak into later requests.
  int enable_mv = -1;
  int enable_partial = -1;
  // When false this request neither reads nor fills the engine's shared
  // estimation cache (results are identical either way; this knob exists
  // for isolation and for benchmarking cold runs).
  bool use_shared_estimation_cache = true;
  // Prints the advisor's candidate-pool / greedy decisions to stderr
  // (AdvisorOptions::trace; debugging aid).
  bool trace = false;

  // Invoked serially from the tuning thread after each advisor phase
  // ("candidates", "estimation", "selection", "merging", "enumeration").
  std::function<void(const std::string& phase)> progress;
  // Fault hook (AdvisorOptions::fault_hook): runs at the same phase
  // boundaries just before `progress` and may throw TransientTuningError
  // (reported as a retryable kError) or fire a cancellation flag. Used by
  // the TuningService's deterministic FaultInjector; unset otherwise.
  std::function<void(const std::string& phase)> fault_hook;
  // Cancel handle; keep a copy and call RequestCancel() to stop the run at
  // the next phase boundary or enumeration step. Also polled inside the
  // batch-estimation fraction probes / SampleCF leaves and the pooled
  // costing loops, so a cancel binds within long phases too.
  CancellationToken cancel;
};

struct TuningResponse {
  enum class Status { kOk, kCancelled, kError };

  Status status = Status::kError;
  std::string error;     // set when status == kError
  std::string strategy;  // echoed from the request
  double budget_bytes = 0.0;
  // With status == kError: true when the failure was a TransientTuningError
  // (nothing about the engine or database is wrong — retrying the same
  // request may succeed). The TuningService retries these with backoff;
  // terminal errors (unknown strategy, invalid budget, logic errors) never
  // set it.
  bool retryable = false;

  // Valid when status != kError. On kCancelled this is the best partial
  // design (result.cancelled is also set).
  AdvisorResult result;
  std::string report;  // human-readable text report (report.h)
  std::string json;    // versioned JSON report (report_json.h)

  bool ok() const { return status == Status::kOk; }
  bool cancelled() const { return status == Status::kCancelled; }
};

class AdvisorEngine {
 public:
  // `db` must outlive the engine and stay unchanged while it serves (the
  // what-if stack reads it concurrently).
  explicit AdvisorEngine(const Database& db,
                         EngineOptions options = EngineOptions());

  AdvisorEngine(const AdvisorEngine&) = delete;
  AdvisorEngine& operator=(const AdvisorEngine&) = delete;

  // Serves one tuning request. Thread-safe: any number of Tune /
  // TuneWithOptions calls may run concurrently on one engine.
  TuningResponse Tune(const TuningRequest& request);

  // Low-level escape hatch: run Advisor::Tune with caller-built options on
  // the engine-owned stack (the options are honored verbatim; the engine
  // only lends its thread pools when the options name no external pool).
  // Benches use this for ablation variants no registered strategy covers.
  AdvisorResult TuneWithOptions(const Workload& workload, double budget_bytes,
                                const AdvisorOptions& options);

  // Registered strategy names (convenience passthrough, sorted).
  std::vector<std::string> Strategies() const;

  const Database& db() const { return *db_; }
  SampleManager* samples() { return &samples_; }
  MVRegistry* mvs() { return &mvs_; }
  const WhatIfOptimizer& optimizer() const { return optimizer_; }
  const std::shared_ptr<EstimationCache>& estimation_cache() const {
    return estimation_cache_;
  }
  const EngineOptions& options() const { return options_; }

 private:
  // The MV registry / optimizer a request tunes against: the engine-owned
  // shared pair normally, or a request-private pair when the options
  // enable MVs (MV-enabled runs Register() workload-derived definitions,
  // which must not leak into later requests).
  struct RequestScope {
    MVRegistry* mvs = nullptr;
    const WhatIfOptimizer* optimizer = nullptr;
    std::unique_ptr<MVRegistry> request_mvs;
    std::unique_ptr<WhatIfOptimizer> request_optimizer;
  };
  RequestScope ScopeFor(const AdvisorOptions& options);

  // Engine-owned pool for `threads` workers (lazily created, reused, keyed
  // by count); null when threads == 1.
  ThreadPool* PoolFor(int threads);

  // Overlays engine pools (and nothing else) onto per-request options.
  void LendPools(AdvisorOptions* options);

  const Database* db_;
  const EngineOptions options_;
  SampleManager samples_;
  MVRegistry mvs_;
  WhatIfOptimizer optimizer_;
  std::shared_ptr<EstimationCache> estimation_cache_;  // null when not shared

  std::mutex pools_mu_;
  std::map<int, std::unique_ptr<ThreadPool>> pools_;  // by thread count
};

}  // namespace capd

#endif  // CAPD_ENGINE_ADVISOR_ENGINE_H_
