#include "engine/strategy_registry.h"

#include <utility>

namespace capd {
namespace {

// Plain Advisor::Tune under a preset's options.
class TuneStrategy : public Strategy {
 public:
  TuneStrategy(std::string description, AdvisorOptions (*preset)())
      : description_(std::move(description)), preset_(preset) {}

  std::string description() const override { return description_; }
  AdvisorOptions MakeOptions() const override { return preset_(); }
  AdvisorResult Run(Advisor* advisor, const Workload& workload,
                    double budget_bytes) const override {
    return advisor->Tune(workload, budget_bytes);
  }

 private:
  const std::string description_;
  AdvisorOptions (*preset_)();
};

// The naive staged baseline of Example 1/2: tune without compression, then
// compress every chosen index with `kind`. Base options mirror the
// golden-report harness (DTAcNone) so "staged:page" reproduces the pinned
// staged reports.
class StagedStrategy : public Strategy {
 public:
  explicit StagedStrategy(CompressionKind kind) : kind_(kind) {}

  std::string description() const override {
    return std::string("staged baseline: tune uncompressed, then apply ") +
           CompressionKindName(kind_) + " to every chosen index";
  }
  AdvisorOptions MakeOptions() const override {
    return AdvisorOptions::DTAcNone();
  }
  AdvisorResult Run(Advisor* advisor, const Workload& workload,
                    double budget_bytes) const override {
    return advisor->TuneStagedBaseline(workload, budget_bytes, kind_);
  }

 private:
  const CompressionKind kind_;
};

void RegisterBuiltins(StrategyRegistry* registry) {
  registry->Register(
      "dta", std::make_shared<TuneStrategy>(
                 "classic DTA: top-k selection, no compressed variants",
                 &AdvisorOptions::DTA));
  registry->Register(
      "dtac-topk",
      std::make_shared<TuneStrategy>(
          "DTAc with per-query top-k candidate selection",
          &AdvisorOptions::DTAcNone));
  registry->Register(
      "dtac-skyline",
      std::make_shared<TuneStrategy>(
          "DTAc with size/cost skyline candidate selection (Section 6.1)",
          &AdvisorOptions::DTAcSkyline));
  registry->Register(
      "dtac-backtrack",
      std::make_shared<TuneStrategy>(
          "DTAc with top-k selection + backtracking enumeration "
          "(Section 6.2)",
          &AdvisorOptions::DTAcBacktrack));
  registry->Register(
      "dtac-both", std::make_shared<TuneStrategy>(
                       "full DTAc: skyline selection + backtracking",
                       &AdvisorOptions::DTAcBoth));
  registry->Register(
      "dtac-bitmap",
      std::make_shared<TuneStrategy>(
          "DTAc + succinct BITMAP variants (low-distinct leading keys) "
          "with sort-order size deduction",
          &AdvisorOptions::DTAcBitmap));
  registry->Register("staged:none", std::make_shared<StagedStrategy>(
                                        CompressionKind::kNone));
  registry->Register("staged:row", std::make_shared<StagedStrategy>(
                                       CompressionKind::kRow));
  registry->Register("staged:page", std::make_shared<StagedStrategy>(
                                        CompressionKind::kPage));
}

}  // namespace

StrategyRegistry& StrategyRegistry::Global() {
  static StrategyRegistry* registry = [] {
    auto* r = new StrategyRegistry();
    RegisterBuiltins(r);
    return r;
  }();
  return *registry;
}

void StrategyRegistry::Register(const std::string& name,
                                std::shared_ptr<const Strategy> strategy) {
  std::lock_guard<std::mutex> lock(mu_);
  strategies_[name] = std::move(strategy);
}

std::shared_ptr<const Strategy> StrategyRegistry::Find(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = strategies_.find(name);
  return it == strategies_.end() ? nullptr : it->second;
}

std::vector<std::string> StrategyRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(strategies_.size());
  for (const auto& [name, strategy] : strategies_) names.push_back(name);
  return names;  // map iteration order is already sorted
}

std::string StrategyRegistry::UnknownStrategyMessage(
    const std::string& name) const {
  std::string message = "unknown strategy '" + name + "' (known:";
  for (const std::string& known : Names()) message += " " + known;
  message += ")";
  return message;
}

}  // namespace capd
