// String-keyed tuning strategies: the AdvisorEngine resolves
// TuningRequest::strategy here, and embedders can register their own
// variants next to the built-ins. Built-in names (registered before the
// first lookup):
//   "dta"            classic DTA, no compression
//   "dtac-topk"      DTAc, per-query top-k selection
//   "dtac-skyline"   DTAc, size/cost skyline selection
//   "dtac-backtrack" DTAc, top-k + Section 6.2 backtracking
//   "dtac-both"      DTAc, skyline + backtracking (the full tool)
//   "staged:none"    naive staged baseline (Example 1/2), kind = NONE
//   "staged:row"     staged baseline, compress chosen indexes with ROW
//   "staged:page"    staged baseline, compress chosen indexes with PAGE
#ifndef CAPD_ENGINE_STRATEGY_REGISTRY_H_
#define CAPD_ENGINE_STRATEGY_REGISTRY_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "advisor/advisor.h"

namespace capd {

// One tuning strategy: base advisor options (the engine overlays request
// knobs: threads, caches, cancellation) plus the run itself. Implementations
// must be stateless/thread-safe — one instance serves concurrent requests.
class Strategy {
 public:
  virtual ~Strategy() = default;

  virtual std::string description() const = 0;
  // Base AdvisorOptions of this strategy (a preset, typically).
  virtual AdvisorOptions MakeOptions() const = 0;
  // Executes the strategy on an advisor already wired with MakeOptions()
  // (plus engine overlays).
  virtual AdvisorResult Run(Advisor* advisor, const Workload& workload,
                            double budget_bytes) const = 0;
};

// Thread-safe name -> Strategy map. Process-global: built-ins are
// registered on first access to Global().
class StrategyRegistry {
 public:
  static StrategyRegistry& Global();

  // Registering an existing name replaces it (latest wins).
  void Register(const std::string& name,
                std::shared_ptr<const Strategy> strategy);

  // Null when unknown.
  std::shared_ptr<const Strategy> Find(const std::string& name) const;

  std::vector<std::string> Names() const;  // sorted

  // "unknown strategy 'x' (known: a b c)" — the engine's error message.
  std::string UnknownStrategyMessage(const std::string& name) const;

 private:
  StrategyRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const Strategy>> strategies_;
};

}  // namespace capd

#endif  // CAPD_ENGINE_STRATEGY_REGISTRY_H_
