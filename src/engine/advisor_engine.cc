#include "engine/advisor_engine.h"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "advisor/report.h"
#include "advisor/report_json.h"

namespace capd {

AdvisorEngine::AdvisorEngine(const Database& db, EngineOptions options)
    : db_(&db),
      options_(std::move(options)),
      samples_(options_.sample_seed),
      mvs_(db, &samples_),
      optimizer_(db, CostModelParams{}) {
  optimizer_.set_mv_matcher(&mvs_);
  if (options_.share_estimation_cache) {
    estimation_cache_ = std::make_shared<EstimationCache>(
        options_.estimation_cache_capacity_bytes);
  }
}

ThreadPool* AdvisorEngine::PoolFor(int threads) {
  if (threads == 1) return nullptr;
  if (threads < 0) threads = 0;  // normalize: 0 = hardware concurrency
  std::lock_guard<std::mutex> lock(pools_mu_);
  std::unique_ptr<ThreadPool>& pool = pools_[threads];
  if (pool == nullptr) pool = std::make_unique<ThreadPool>(threads);
  return pool.get();
}

void AdvisorEngine::LendPools(AdvisorOptions* options) {
  if (options->pool == nullptr) {
    options->pool = PoolFor(options->num_threads);
  }
  if (options->size_options.pool == nullptr) {
    options->size_options.pool = PoolFor(options->size_options.num_threads);
  }
}

TuningResponse AdvisorEngine::Tune(const TuningRequest& request) {
  TuningResponse response;
  response.strategy = request.strategy;

  const std::shared_ptr<const Strategy> strategy =
      StrategyRegistry::Global().Find(request.strategy);
  if (strategy == nullptr) {
    response.status = TuningResponse::Status::kError;
    response.error =
        StrategyRegistry::Global().UnknownStrategyMessage(request.strategy);
    return response;
  }

  if (!std::isfinite(request.budget.value) || request.budget.value < 0.0) {
    response.status = TuningResponse::Status::kError;
    response.error = "invalid budget: value must be finite and >= 0";
    return response;
  }
  const double budget_bytes = request.budget.ResolveBytes(
      static_cast<double>(db_->BaseDataBytes()));
  response.budget_bytes = budget_bytes;

  // Strategy base options + request knobs + engine-owned collaborators.
  AdvisorOptions options = strategy->MakeOptions();
  options.num_threads = request.search_threads >= 0 ? request.search_threads
                                                    : options_.search_threads;
  options.size_options.num_threads = request.estimation_threads >= 0
                                         ? request.estimation_threads
                                         : options_.estimation_threads;
  options.cost_cache =
      request.cost_cache >= 0 ? request.cost_cache != 0 : options_.cost_cache;
  if (request.enable_mv >= 0) options.enable_mv = request.enable_mv != 0;
  if (request.enable_partial >= 0) {
    options.enable_partial = request.enable_partial != 0;
  }
  if (request.use_shared_estimation_cache && estimation_cache_ != nullptr) {
    options.size_options.cache = estimation_cache_;
    // Fraction-exact mode: warmth must never change what a request
    // computes — see the determinism contract in the header.
    options.size_options.cache_fraction_exact = true;
  }
  options.trace = options.trace || request.trace;
  options.cancel = request.cancel.flag();
  // Deep cancellation: the estimation batches poll the same flag inside
  // their fraction probes and SampleCF leaves, so a deadline binds within
  // a long estimation phase, not just at its boundary.
  options.size_options.cancel = options.cancel;
  options.progress = request.progress;
  options.fault_hook = request.fault_hook;
  LendPools(&options);

  RequestScope scope = ScopeFor(options);
  try {
    SizeEstimator estimator(*db_, scope.mvs, ErrorModel(),
                            options.size_options);
    Advisor advisor(*db_, *scope.optimizer, &estimator, scope.mvs, options);
    response.result = strategy->Run(&advisor, request.workload, budget_bytes);
  } catch (const TransientTuningError& e) {
    response.status = TuningResponse::Status::kError;
    response.error = std::string("tuning failed (transient): ") + e.what();
    response.retryable = true;
    return response;
  } catch (const std::exception& e) {
    response.status = TuningResponse::Status::kError;
    response.error = std::string("tuning failed: ") + e.what();
    return response;
  }

  response.status = response.result.cancelled
                        ? TuningResponse::Status::kCancelled
                        : TuningResponse::Status::kOk;
  response.report =
      RenderTuningReport(response.result, scope.mvs, budget_bytes);
  response.json = RenderTuningReportJson(response.result, scope.mvs,
                                         budget_bytes, request.strategy);
  return response;
}

AdvisorEngine::RequestScope AdvisorEngine::ScopeFor(
    const AdvisorOptions& options) {
  RequestScope scope;
  if (!options.enable_mv) {
    scope.mvs = &mvs_;
    scope.optimizer = &optimizer_;
    return scope;
  }
  // MV-enabled runs register request-specific MV definitions (named after
  // the request's query ids) in the registry they tune against. Isolate
  // them in a per-request registry + optimizer, or one request's MVs would
  // leak into the next — breaking the fresh-stack identity contract.
  // Samples stay shared: they are pure per cache key.
  scope.request_mvs = std::make_unique<MVRegistry>(*db_, &samples_);
  scope.request_optimizer =
      std::make_unique<WhatIfOptimizer>(*db_, CostModelParams{});
  scope.request_optimizer->set_mv_matcher(scope.request_mvs.get());
  scope.mvs = scope.request_mvs.get();
  scope.optimizer = scope.request_optimizer.get();
  return scope;
}

AdvisorResult AdvisorEngine::TuneWithOptions(const Workload& workload,
                                             double budget_bytes,
                                             const AdvisorOptions& options) {
  AdvisorOptions wired = options;
  LendPools(&wired);
  RequestScope scope = ScopeFor(wired);
  SizeEstimator estimator(*db_, scope.mvs, ErrorModel(), wired.size_options);
  Advisor advisor(*db_, *scope.optimizer, &estimator, scope.mvs, wired);
  return advisor.Tune(workload, budget_bytes);
}

std::vector<std::string> AdvisorEngine::Strategies() const {
  return StrategyRegistry::Global().Names();
}

}  // namespace capd
