#include "advisor/report_json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "advisor/report.h"

namespace capd {
namespace {

// Shortest decimal that round-trips to the same bits — deterministic
// across platforms (the value is pinned by the determinism contract; its
// shortest representation is a pure function of the bits). std::to_chars
// rather than printf: locale-independent, so an embedder's
// setlocale(LC_NUMERIC, ...) cannot turn the report into invalid JSON.
std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no inf/nan
  char buf[64];
  const std::to_chars_result r = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, r.ptr);
}

std::string JsonString(const std::string& s) {
  std::ostringstream os;
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      case '\r':
        os << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char esc[8];
          std::snprintf(esc, sizeof(esc), "\\u%04x", c);
          os << esc;
        } else {
          os << c;
        }
    }
  }
  os << '"';
  return os.str();
}

std::string JsonStringArray(const std::vector<std::string>& items) {
  std::ostringstream os;
  os << '[';
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) os << ", ";
    os << JsonString(items[i]);
  }
  os << ']';
  return os.str();
}

}  // namespace

std::string RenderTuningReportJson(const AdvisorResult& result,
                                   const MVRegistry* mvs, double budget_bytes,
                                   const std::string& strategy) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema_version\": " << kTuningReportJsonVersion << ",\n";
  if (!strategy.empty()) {
    os << "  \"strategy\": " << JsonString(strategy) << ",\n";
  }
  os << "  \"cancelled\": " << (result.cancelled ? "true" : "false") << ",\n";

  os << "  \"cost\": {\n";
  os << "    \"initial\": " << JsonNumber(result.initial_cost) << ",\n";
  os << "    \"final\": " << JsonNumber(result.final_cost) << ",\n";
  os << "    \"improvement_percent\": "
     << JsonNumber(result.improvement_percent()) << "\n";
  os << "  },\n";

  os << "  \"storage\": {\n";
  os << "    \"budget_bytes\": " << JsonNumber(budget_bytes) << ",\n";
  os << "    \"charged_bytes\": " << JsonNumber(result.charged_bytes) << "\n";
  os << "  },\n";

  os << "  \"search\": {\n";
  os << "    \"num_candidates\": " << result.num_candidates << ",\n";
  os << "    \"what_if_calls\": " << result.what_if_calls << ",\n";
  os << "    \"stmt_costs_computed\": " << result.stmt_costs_computed << ",\n";
  os << "    \"stmt_costs_cached\": " << result.stmt_costs_cached << "\n";
  os << "  },\n";

  os << "  \"estimation\": {\n";
  os << "    \"chosen_f\": " << JsonNumber(result.chosen_f) << ",\n";
  os << "    \"cost_pages\": " << JsonNumber(result.estimation_cost_pages)
     << ",\n";
  os << "    \"num_sampled\": " << result.num_sampled << ",\n";
  os << "    \"num_deduced\": " << result.num_deduced << "\n";
  os << "  },\n";

  // CREATE VIEW statements for MVs referenced by recommended indexes, in
  // first-reference order (mirrors the text report).
  os << "  \"views\": [";
  bool first_view = true;
  if (mvs != nullptr) {
    std::set<std::string> emitted;
    for (const PhysicalIndexEstimate& idx : result.config.indexes()) {
      const MVDef* def = mvs->Find(idx.def.object);
      if (def == nullptr || !emitted.insert(def->name).second) continue;
      os << (first_view ? "\n" : ",\n");
      first_view = false;
      os << "    {\n";
      os << "      \"name\": " << JsonString(def->name) << ",\n";
      os << "      \"ddl\": " << JsonString(ToCreateViewSql(*def)) << "\n";
      os << "    }";
    }
  }
  os << (first_view ? "],\n" : "\n  ],\n");

  os << "  \"objects\": [";
  int seq = 0;
  for (const PhysicalIndexEstimate& idx : result.config.indexes()) {
    os << (seq == 0 ? "\n" : ",\n");
    const std::string name = "capd_ix_" + std::to_string(++seq);
    os << "    {\n";
    os << "      \"name\": " << JsonString(name) << ",\n";
    os << "      \"object\": " << JsonString(idx.def.object) << ",\n";
    os << "      \"key_columns\": " << JsonStringArray(idx.def.key_columns)
       << ",\n";
    os << "      \"include_columns\": "
       << JsonStringArray(idx.def.include_columns) << ",\n";
    os << "      \"clustered\": " << (idx.def.clustered ? "true" : "false")
       << ",\n";
    os << "      \"compression\": "
       << JsonString(CompressionKindName(idx.def.compression)) << ",\n";
    if (idx.def.filter.has_value()) {
      os << "      \"filter\": " << JsonString(idx.def.filter->ToString())
         << ",\n";
    }
    os << "      \"estimated_bytes\": " << JsonNumber(idx.bytes) << ",\n";
    os << "      \"estimated_tuples\": " << JsonNumber(idx.tuples) << ",\n";
    os << "      \"ddl\": " << JsonString(ToCreateIndexSql(idx.def, name))
       << "\n";
    os << "    }";
  }
  os << (seq == 0 ? "]\n" : "\n  ]\n");
  os << "}\n";
  return os.str();
}

}  // namespace capd
