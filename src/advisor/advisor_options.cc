// Preset builders live out of line: GCC 12's -O3 inliner raises a spurious
// -Wmaybe-uninitialized on the initializer-list-backed vector member when
// these are header-inline and a preset temporary is copied at a call site.
#include "advisor/advisor_options.h"

namespace capd {

AdvisorOptions AdvisorOptions::DTA() {
  AdvisorOptions o;
  o.enable_compression = false;
  o.selection = CandidateSelectionMode::kTopK;
  o.backtracking = false;
  return o;
}

AdvisorOptions AdvisorOptions::DTAcNone() {
  AdvisorOptions o;
  o.selection = CandidateSelectionMode::kTopK;
  o.backtracking = false;
  return o;
}

AdvisorOptions AdvisorOptions::DTAcSkyline() {
  AdvisorOptions o;
  o.selection = CandidateSelectionMode::kSkyline;
  o.backtracking = false;
  return o;
}

AdvisorOptions AdvisorOptions::DTAcBacktrack() {
  AdvisorOptions o;
  o.selection = CandidateSelectionMode::kTopK;
  o.backtracking = true;
  return o;
}

AdvisorOptions AdvisorOptions::DTAcBoth() {
  AdvisorOptions o;
  o.selection = CandidateSelectionMode::kSkyline;
  o.backtracking = true;
  return o;
}

AdvisorOptions AdvisorOptions::DTAcBitmap() {
  AdvisorOptions o = DTAcBoth();
  o.compression_variants = {CompressionKind::kRow, CompressionKind::kPage,
                            CompressionKind::kBitmap};
  o.size_options.enable_sort_order_deduction = true;
  return o;
}

}  // namespace capd
