#include "advisor/advisor.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <set>

#include "common/logging.h"

namespace capd {

double Advisor::ChargedBytes(const Configuration& config) const {
  double charged = 0.0;
  for (const PhysicalIndexEstimate& idx : config.indexes()) {
    charged += idx.bytes;
    if (idx.def.clustered && db_->HasTable(idx.def.object)) {
      charged -= static_cast<double>(db_->table(idx.def.object).HeapBytes());
    }
  }
  return charged;
}

ThreadPool* Advisor::Pool() const {
  if (options_.pool != nullptr) return options_.pool;
  if (options_.num_threads == 1) return nullptr;
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
  return pool_.get();
}

bool Advisor::CancelRequested() const {
  return options_.cancel != nullptr &&
         options_.cancel->load(std::memory_order_relaxed);
}

void Advisor::ReportProgress(const char* phase) const {
  // Fault hooks run first so an injected fault (thrown TransientTuningError
  // or a flipped cancel flag) lands before observers hear about the phase.
  if (options_.fault_hook) options_.fault_hook(phase);
  if (options_.progress) options_.progress(phase);
}

double Advisor::WorkloadCost(const Workload& workload,
                             const Configuration& config,
                             StatementCostCache* cost_cache,
                             AdvisorResult* result) const {
  if (result != nullptr) {
    result->what_if_calls += workload.statements.size();
    // Cached costings are tallied from the cache's own counters at the end
    // of Tune; only uncached costing is known to run the optimizer here.
    if (cost_cache == nullptr) {
      result->stmt_costs_computed += workload.statements.size();
    }
  }
  if (cost_cache != nullptr) return cost_cache->WorkloadCost(config);
  return optimizer_->WorkloadCost(workload, config);
}

double Advisor::PooledWorkloadCost(const Workload& workload,
                                   const Configuration& config,
                                   AdvisorResult* result) const {
  if (result != nullptr) {
    result->what_if_calls += workload.statements.size();
    result->stmt_costs_computed += workload.statements.size();
  }
  const std::vector<double> costs = ParallelMap<double>(
      Pool(), workload.statements.size(), [&](size_t i) {
        // Remaining costings are skipped once a cancel fires; the partial
        // sum is meaningless, so callers must re-check CancelRequested()
        // before consuming the total.
        if (CancelRequested()) return 0.0;
        return optimizer_->Cost(workload.statements[i], config);
      });
  // Same weighted terms summed in the same statement order as
  // WhatIfOptimizer::WorkloadCost — bit-identical at any thread count.
  double total = 0.0;
  for (size_t i = 0; i < workload.statements.size(); ++i) {
    total += workload.statements[i].weight * costs[i];
  }
  return total;
}

bool Advisor::CanAdd(const Configuration& config, const IndexDef& def) const {
  if (config.Contains(def.Signature())) return false;
  // At most one clustered index per object.
  if (def.clustered && config.HasClusteredOn(def.object)) return false;
  // The same structure with a different compression is a competing index:
  // physically legal but never useful together with its sibling for our
  // optimizer, and it bloats enumeration, so forbid duplicates.
  for (const PhysicalIndexEstimate& idx : config.indexes()) {
    if (idx.def.StructureSignature() == def.StructureSignature()) return false;
  }
  return true;
}

std::map<std::string, PhysicalIndexEstimate> Advisor::EstimateSizes(
    const std::vector<IndexDef>& candidates, AdvisorResult* result) {
  std::map<std::string, PhysicalIndexEstimate> sizes;
  std::vector<IndexDef> uncompressed;
  std::vector<IndexDef> compressed;
  for (const IndexDef& def : candidates) {
    (def.compression == CompressionKind::kNone ? uncompressed : compressed)
        .push_back(def);
  }
  const std::vector<SampleCfResult> plain =
      sizes_->UncompressedSizeAll(uncompressed);
  for (size_t i = 0; i < uncompressed.size(); ++i) {
    PhysicalIndexEstimate est;
    est.def = uncompressed[i];
    est.bytes = plain[i].est_bytes;
    est.tuples = plain[i].est_tuples;
    sizes[uncompressed[i].Signature()] = est;
  }
  const SizeEstimator::BatchResult batch = sizes_->EstimateAll(compressed);
  for (const IndexDef& def : compressed) {
    const auto it = batch.estimates.find(def.Signature());
    if (it == batch.estimates.end()) {
      // A batch may only come back short when a cooperative cancel stopped
      // it mid-estimation; every caller discards the partial map once the
      // flag is up, so skipping the hole is safe. Anything else is a bug.
      CAPD_CHECK(CancelRequested()) << def.ToString();
      continue;
    }
    PhysicalIndexEstimate est;
    est.def = def;
    est.bytes = it->second.est_bytes;
    est.tuples = it->second.est_tuples;
    sizes[def.Signature()] = est;
  }
  if (result != nullptr) {
    result->estimation_cost_pages += batch.total_cost_pages;
    // A fully cache-served batch never picks a fraction (chosen_f == 0);
    // keep the last real one rather than clobbering the report.
    if (batch.chosen_f > 0.0) result->chosen_f = batch.chosen_f;
    result->num_sampled += batch.num_sampled;
    result->num_deduced += batch.num_deduced;
  }
  return sizes;
}

std::vector<IndexDef> Advisor::SelectCandidates(
    const Workload& workload, const std::vector<IndexDef>& candidates,
    const std::map<std::string, PhysicalIndexEstimate>& sizes,
    StatementCostCache* cost_cache, AdvisorResult* result) const {
  std::vector<IndexDef> selected;
  std::set<std::string> kept;

  // Every costing the loop below needs is independent: per SELECT query,
  // its base (empty-configuration) cost plus one single-index cost per
  // candidate. Fan them all across the pool — concurrent misses warm the
  // shared StatementCostCache for the first enumeration step — then reduce
  // serially in (query, candidate) order so the selected pool matches the
  // serial loop to the bit at any thread count.
  std::vector<size_t> selects;
  selects.reserve(workload.statements.size());
  for (size_t si = 0; si < workload.statements.size(); ++si) {
    if (workload.statements[si].type == StatementType::kSelect) {
      selects.push_back(si);
    }
  }
  const size_t stride = 1 + candidates.size();  // base cost + one per index

  auto stmt_cost = [&](size_t stmt_index, const Configuration& config) {
    return cost_cache != nullptr
               ? cost_cache->Cost(stmt_index, config)
               : optimizer_->Cost(workload.statements[stmt_index], config);
  };
  const std::vector<double> costs =
      ParallelMap<double>(Pool(), selects.size() * stride, [&](size_t j) {
        // Skipped costings yield 0.0, which makes every candidate look
        // irrelevant (cost >= base_cost) — harmless, because Tune discards
        // the selection as soon as it sees the cancel flag. The cost cache
        // is never fed skipped values.
        if (CancelRequested()) return 0.0;
        const size_t si = selects[j / stride];
        const size_t c = j % stride;
        if (c == 0) return stmt_cost(si, Configuration());
        const auto it = sizes.find(candidates[c - 1].Signature());
        CAPD_CHECK(it != sizes.end());
        Configuration config;
        config.Add(it->second);
        return stmt_cost(si, config);
      });
  if (result != nullptr) {
    result->what_if_calls += selects.size() * candidates.size();
    if (cost_cache == nullptr) {
      result->stmt_costs_computed += selects.size() * stride;
    }
  }

  for (size_t q = 0; q < selects.size(); ++q) {
    // Serial reduction over this query's precomputed costs.
    struct Entry {
      const IndexDef* def;
      double cost;
      double bytes;
    };
    std::vector<Entry> entries;
    const double base_cost = costs[q * stride];
    for (size_t c = 0; c < candidates.size(); ++c) {
      const IndexDef& def = candidates[c];
      const double cost = costs[q * stride + 1 + c];
      if (cost >= base_cost) continue;  // irrelevant to this query
      // Size dimension of the skyline is the *budget charge*: a clustered
      // index replaces the heap, so its effective footprint can be tiny (or
      // negative when compressed) even though the structure is large.
      Configuration config;
      config.Add(sizes.at(def.Signature()));
      entries.push_back(Entry{&def, cost, ChargedBytes(config)});
    }

    if (options_.selection == CandidateSelectionMode::kTopK) {
      std::sort(entries.begin(), entries.end(),
                [](const Entry& a, const Entry& b) { return a.cost < b.cost; });
      const size_t k = std::min<size_t>(options_.top_k, entries.size());
      for (size_t i = 0; i < k; ++i) {
        if (kept.insert(entries[i].def->Signature()).second) {
          selected.push_back(*entries[i].def);
        }
      }
    } else {
      // Skyline of (bytes, cost): keep entries no other entry dominates
      // (smaller AND faster). O(n^2), negligible next to what-if calls.
      for (const Entry& e : entries) {
        bool dominated = false;
        for (const Entry& o : entries) {
          if (o.def == e.def) continue;
          const bool better_or_equal = o.cost <= e.cost && o.bytes <= e.bytes;
          const bool strictly_better = o.cost < e.cost || o.bytes < e.bytes;
          if (better_or_equal && strictly_better) {
            dominated = true;
            break;
          }
        }
        if (!dominated && kept.insert(e.def->Signature()).second) {
          selected.push_back(*e.def);
        }
      }
    }
  }
  return selected;
}

Configuration Advisor::Enumerate(
    const Workload& workload, const std::vector<IndexDef>& pool,
    const std::map<std::string, PhysicalIndexEstimate>& sizes,
    double budget_bytes, StatementCostCache* cost_cache,
    AdvisorResult* result) const {
  Configuration config;
  double current_cost = WorkloadCost(workload, config, cost_cache, result);

  auto size_of = [&sizes](const IndexDef& def) -> const PhysicalIndexEstimate& {
    const auto it = sizes.find(def.Signature());
    CAPD_CHECK(it != sizes.end()) << def.ToString();
    return it->second;
  };

  // Trial costing, callable from pool workers (the cache and the optimizer
  // are both thread-safe). what_if accounting happens serially afterwards
  // so AdvisorResult is never touched concurrently.
  auto trial_cost = [&](const Configuration& trial) {
    return cost_cache != nullptr ? cost_cache->WorkloadCost(trial)
                                 : optimizer_->WorkloadCost(workload, trial);
  };
  auto charge_calls = [&](size_t trials) {
    if (result == nullptr) return;
    result->what_if_calls += trials * workload.statements.size();
    if (cost_cache == nullptr) {
      result->stmt_costs_computed += trials * workload.statements.size();
    }
  };
  ThreadPool* workers = Pool();

  while (true) {
    // Cooperative cancel: between greedy steps the configuration is always
    // coherent, so stopping here leaves the best design found so far.
    if (CancelRequested()) {
      if (result != nullptr) result->cancelled = true;
      break;
    }
    // Evaluate every addable candidate. The trials are independent, so
    // they fan out across the pool; the reduction below walks them in pool
    // order with the same comparisons as the serial loop, which makes the
    // parallel result bit-identical at any thread count.
    std::vector<size_t> addable;
    addable.reserve(pool.size());
    for (size_t i = 0; i < pool.size(); ++i) {
      if (CanAdd(config, pool[i])) addable.push_back(i);
    }
    const std::vector<double> trial_costs =
        ParallelMap<double>(workers, addable.size(), [&](size_t k) {
          // Infinity reads as "no benefit", so skipped trials can never be
          // picked; the next loop iteration then observes the flag and
          // breaks with the coherent best-so-far configuration.
          if (CancelRequested()) {
            return std::numeric_limits<double>::infinity();
          }
          Configuration trial = config;
          trial.Add(size_of(pool[addable[k]]));
          return trial_cost(trial);
        });
    charge_calls(addable.size());

    int best_fit = -1;       // best candidate that fits the budget
    double best_fit_score = 0.0;
    double best_fit_cost = current_cost;
    int best_any = -1;       // best candidate ignoring the budget
    double best_any_benefit = 0.0;

    for (size_t k = 0; k < addable.size(); ++k) {
      const size_t i = addable[k];
      const IndexDef& def = pool[i];
      const double cost = trial_costs[k];
      const double benefit = current_cost - cost;
      if (benefit <= 1e-9) continue;
      Configuration trial = config;
      trial.Add(size_of(def));
      const bool fits = ChargedBytes(trial) <= budget_bytes;
      const double score =
          options_.enumeration == EnumerationMode::kDensityGreedy
              ? benefit / std::max(1.0, size_of(def).bytes)
              : benefit;
      if (fits && score > best_fit_score) {
        best_fit_score = score;
        best_fit = static_cast<int>(i);
        best_fit_cost = cost;
      }
      if (benefit > best_any_benefit) {
        best_any_benefit = benefit;
        best_any = static_cast<int>(i);
      }
    }

    if (options_.trace) {
      std::fprintf(stderr, "[enum] step: best_fit=%s best_any=%s\n",
                   best_fit >= 0 ? pool[best_fit].ToString().c_str() : "-",
                   best_any >= 0 ? pool[best_any].ToString().c_str() : "-");
    }

    // Backtracking (Section 6.2): if the overall-best choice is oversized,
    // try to recover it by swapping one or more members for compressed
    // variants. Swaps are applied greedily until the configuration fits:
    // prefer a swap that fits immediately with the best workload cost,
    // otherwise the one freeing the most space (to converge).
    if (options_.backtracking && best_any >= 0 && best_any != best_fit) {
      Configuration oversized = config;
      oversized.Add(size_of(pool[best_any]));
      if (ChargedBytes(oversized) > budget_bytes) {
        Configuration best_recovered;
        double best_recovered_cost = std::numeric_limits<double>::infinity();
        Configuration work = oversized;
        for (int round = 0; round < 8; ++round) {
          // Viable swaps are gathered serially (cheap size/signature
          // checks), the in-budget ones are what-if costed across the
          // pool, and the winner is reduced in (member, replacement) scan
          // order — the exact tie-breaking of the serial loop.
          std::vector<Configuration> fit_swaps;
          int reduce_member = -1, reduce_repl = -1;
          double reduce_amount = 0.0;
          const auto& members = work.indexes();
          for (int m = 0; m < static_cast<int>(members.size()); ++m) {
            const PhysicalIndexEstimate& member = members[m];
            for (int p = 0; p < static_cast<int>(pool.size()); ++p) {
              const IndexDef& repl = pool[p];
              if (repl.StructureSignature() != member.def.StructureSignature())
                continue;
              if (repl.Signature() == member.def.Signature()) continue;
              const PhysicalIndexEstimate& repl_est = size_of(repl);
              if (repl_est.bytes >= member.bytes) continue;
              Configuration trial = work;
              CAPD_CHECK(trial.Remove(member.def.Signature()));
              trial.Add(repl_est);
              if (ChargedBytes(trial) <= budget_bytes) {
                fit_swaps.push_back(std::move(trial));
              } else if (member.bytes - repl_est.bytes > reduce_amount) {
                reduce_amount = member.bytes - repl_est.bytes;
                reduce_member = m;
                reduce_repl = p;
              }
            }
          }
          const std::vector<double> swap_costs =
              ParallelMap<double>(workers, fit_swaps.size(), [&](size_t k) {
                // Infinite swap costs can never beat best_fit/current, so a
                // cancel mid-backtrack leaves the configuration untouched.
                if (CancelRequested()) {
                  return std::numeric_limits<double>::infinity();
                }
                return trial_cost(fit_swaps[k]);
              });
          charge_calls(fit_swaps.size());
          int fit_swap = -1;
          double fit_swap_cost = std::numeric_limits<double>::infinity();
          for (size_t k = 0; k < fit_swaps.size(); ++k) {
            if (swap_costs[k] < fit_swap_cost) {
              fit_swap_cost = swap_costs[k];
              fit_swap = static_cast<int>(k);
            }
          }
          if (fit_swap >= 0) {
            if (fit_swap_cost < best_recovered_cost) {
              best_recovered_cost = fit_swap_cost;
              best_recovered = std::move(fit_swaps[fit_swap]);
            }
            break;
          }
          if (reduce_member < 0) break;  // no further swaps possible
          const std::string gone = members[reduce_member].def.Signature();
          work.Remove(gone);
          work.Add(size_of(pool[reduce_repl]));
        }
        if (options_.trace) {
          std::fprintf(stderr, "[enum] backtrack: recovered=%s cost=%.1f vs fit=%.1f cur=%.1f\n",
                       best_recovered.size() > 0 ? best_recovered.ToString().c_str() : "-",
                       best_recovered_cost, best_fit_cost, current_cost);
        }
        if (best_recovered.size() > 0 &&
            best_recovered_cost < std::min(best_fit_cost, current_cost)) {
          config = best_recovered;
          current_cost = best_recovered_cost;
          continue;
        }
      }
    }

    if (best_fit < 0) break;
    config.Add(size_of(pool[best_fit]));
    current_cost = best_fit_cost;
  }
  return config;
}

AdvisorResult Advisor::Tune(const Workload& workload, double budget_bytes) {
  AdvisorResult result;
  CandidateGenerator generator(*db_, *optimizer_, mvs_, options_);
  using Clock = std::chrono::steady_clock;
  auto millis_since = [](Clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
  };

  // Cancellation can land between any two phases; the partial result (best
  // configuration so far, flagged `cancelled`) is always coherent.
  auto cancelled = [&]() {
    if (!CancelRequested()) return false;
    result.cancelled = true;
    return true;
  };

  // 1. Syntactically relevant candidates + compressed variants.
  auto t0 = Clock::now();
  std::vector<IndexDef> candidates = generator.GenerateForWorkload(workload);
  ReportProgress("candidates");
  if (cancelled()) return result;

  // 2. Size estimation for every candidate (Section 5 framework).
  std::map<std::string, PhysicalIndexEstimate> sizes =
      EstimateSizes(candidates, &result);
  result.estimation_ms += millis_since(t0);
  ReportProgress("estimation");
  if (cancelled()) return result;

  // The per-statement what-if cost cache lives for the whole run: nothing
  // within one Tune invalidates a statement cost (database and sizes are
  // fixed), and the single-index costings of candidate selection double as
  // warm-up for the first enumeration step.
  std::unique_ptr<StatementCostCache> cost_cache;
  if (options_.cost_cache) {
    cost_cache =
        std::make_unique<StatementCostCache>(*db_, *optimizer_, workload);
  }

  // 3. Per-query candidate selection (top-k or skyline).
  t0 = Clock::now();
  std::vector<IndexDef> selected =
      SelectCandidates(workload, candidates, sizes, cost_cache.get(), &result);
  result.selection_ms += millis_since(t0);
  ReportProgress("selection");
  if (cancelled()) {
    if (cost_cache != nullptr) {
      result.stmt_costs_computed += cost_cache->misses();
      result.stmt_costs_cached += cost_cache->hits();
    }
    return result;
  }

  // 4. Index merging over the selected pool.
  if (options_.enable_merging) {
    std::vector<IndexDef> merged = generator.MergeCandidates(selected);
    if (!merged.empty()) {
      t0 = Clock::now();
      const std::map<std::string, PhysicalIndexEstimate> merged_sizes =
          EstimateSizes(merged, &result);
      result.estimation_ms += millis_since(t0);
      // A cancel inside the merged batch leaves merged_sizes short; merged
      // candidates are only admitted when every one of them was sized.
      if (!CancelRequested()) {
        for (const IndexDef& def : merged) selected.push_back(def);
        for (const auto& [sig, est] : merged_sizes) sizes[sig] = est;
      }
    }
  }
  result.num_candidates = selected.size();
  if (options_.trace) {
    for (const IndexDef& def : selected) {
      std::fprintf(stderr, "[pool] %s ~%.0fKB\n", def.ToString().c_str(),
                   sizes.at(def.Signature()).bytes / 1024.0);
    }
  }
  ReportProgress("merging");
  if (cancelled()) {
    if (cost_cache != nullptr) {
      result.stmt_costs_computed += cost_cache->misses();
      result.stmt_costs_cached += cost_cache->hits();
    }
    return result;
  }

  // 5. Enumeration. A cancel inside Enumerate still falls through here, so
  // a cancelled result carries real initial/final costs for its partial
  // configuration.
  t0 = Clock::now();
  const Configuration empty;
  result.initial_cost = WorkloadCost(workload, empty, cost_cache.get(), &result);
  result.config = Enumerate(workload, selected, sizes, budget_bytes,
                            cost_cache.get(), &result);
  result.final_cost =
      WorkloadCost(workload, result.config, cost_cache.get(), &result);
  result.charged_bytes = ChargedBytes(result.config);
  result.enumeration_ms += millis_since(t0);
  ReportProgress("enumeration");
  if (cost_cache != nullptr) {
    result.stmt_costs_computed += cost_cache->misses();
    result.stmt_costs_cached += cost_cache->hits();
  }
  return result;
}

AdvisorResult Advisor::TuneStagedBaseline(const Workload& workload,
                                          double budget_bytes,
                                          CompressionKind kind) {
  // Stage 1: classic tuning without compression. The stage-1 advisor
  // shares this advisor's SizeEstimator, so its samples (and, when
  // options_.size_options.cache is set, its cross-round EstimationCache)
  // are reused by the stage-2 re-estimation instead of re-drawn.
  AdvisorOptions staged_options = options_;
  staged_options.enable_compression = false;
  Advisor stage1(*db_, *optimizer_, sizes_, mvs_, staged_options);
  AdvisorResult result = stage1.Tune(workload, budget_bytes);
  if (result.cancelled || CancelRequested()) {
    result.cancelled = true;
    return result;  // stage-1 design, uncompressed
  }

  // Stage 2: compress every chosen index, re-estimating sizes (one batch
  // across the estimation pool) and re-costing the workload with the
  // per-statement costings fanned across the enumeration pool.
  using Clock = std::chrono::steady_clock;
  auto t0 = Clock::now();
  std::vector<IndexDef> compressed;
  for (const PhysicalIndexEstimate& idx : result.config.indexes()) {
    compressed.push_back(idx.def.WithCompression(kind));
  }
  const std::map<std::string, PhysicalIndexEstimate> sizes =
      EstimateSizes(compressed, &result);
  result.estimation_ms +=
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  // A cancel anywhere in stage 2 (mid-estimation or mid-re-cost) keeps the
  // coherent stage-1 design: `sizes` may be short and a pooled sum that
  // skipped statements is meaningless, so result.config/final_cost are only
  // overwritten once stage 2 finished clean.
  if (CancelRequested()) {
    result.cancelled = true;
    return result;  // stage-1 design, uncompressed
  }
  Configuration config;
  for (const IndexDef& def : compressed) {
    config.Add(sizes.at(def.Signature()));
  }
  t0 = Clock::now();
  const double final_cost = PooledWorkloadCost(workload, config, &result);
  result.enumeration_ms +=
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  if (CancelRequested()) {
    result.cancelled = true;
    return result;  // stage-1 design, uncompressed
  }
  result.config = std::move(config);
  result.final_cost = final_cost;
  result.charged_bytes = ChargedBytes(result.config);
  ReportProgress("staged-recompress");
  return result;
}

}  // namespace capd
