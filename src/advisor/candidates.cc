#include "advisor/candidates.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/logging.h"

namespace capd {
namespace {

void AddUnique(std::vector<std::string>* v, const std::string& s) {
  if (std::find(v->begin(), v->end(), s) == v->end()) v->push_back(s);
}

std::vector<std::string> Minus(const std::vector<std::string>& a,
                               const std::vector<std::string>& b) {
  std::vector<std::string> out;
  for (const std::string& x : a) {
    if (std::find(b.begin(), b.end(), x) == b.end()) out.push_back(x);
  }
  return out;
}

}  // namespace

void CandidateGenerator::GenerateForTable(const SelectQuery& q,
                                          const std::string& table,
                                          std::vector<IndexDef>* out) const {
  const std::vector<ColumnFilter> preds = q.PredicatesOn(table, *db_);
  const std::vector<std::string> cols_used = q.ColumnsUsedOn(table, *db_);
  if (cols_used.empty()) return;

  // Predicate columns, most selective first: good seek keys.
  std::vector<std::pair<double, std::string>> by_sel;
  for (const ColumnFilter& p : preds) {
    by_sel.emplace_back(optimizer_->FilterSelectivity(table, p), p.column);
  }
  std::sort(by_sel.begin(), by_sel.end());
  std::vector<std::string> pred_cols;
  for (const auto& [sel, col] : by_sel) AddUnique(&pred_cols, col);

  auto make = [&](std::vector<std::string> keys,
                  std::vector<std::string> includes, bool clustered) {
    if (keys.empty()) return;
    IndexDef def;
    def.object = table;
    def.key_columns = std::move(keys);
    def.include_columns = std::move(includes);
    def.clustered = clustered;
    out->push_back(std::move(def));
  };

  if (!pred_cols.empty()) {
    // Narrow seek index on all predicate columns.
    make(pred_cols, {}, false);
    // Covering index: predicate keys + everything else the query touches.
    make(pred_cols, Minus(cols_used, pred_cols), false);
    // Single most-selective column (cheap, mergeable).
    if (pred_cols.size() > 1) make({pred_cols[0]}, {}, false);
    // Clustered candidate on the most selective predicate column (fact
    // tables only — the root of the query).
    if (options_->enable_clustered && table == q.table) {
      make({pred_cols[0]}, {}, true);
    }
  }

  // Group/order driven index with covering includes.
  const std::vector<std::string>& grouping =
      !q.group_by.empty() ? q.group_by : q.order_by;
  std::vector<std::string> group_here;
  for (const std::string& g : grouping) {
    if (db_->table(table).schema().HasColumn(g)) group_here.push_back(g);
  }
  if (!group_here.empty()) {
    make(group_here, Minus(cols_used, group_here), false);
  }

  // Join support on the dimension side.
  for (const JoinClause& j : q.joins) {
    if (j.dim_table != table) continue;
    make({j.dim_key}, Minus(cols_used, {j.dim_key}), false);
  }

  // Partial indexes: pin one predicate as the index filter, key on the
  // remaining predicate columns (or the filter column itself).
  if (options_->enable_partial) {
    for (const ColumnFilter& p : preds) {
      IndexDef def;
      def.object = table;
      def.filter = p;
      std::vector<std::string> keys = Minus(pred_cols, {p.column});
      if (keys.empty()) keys = {p.column};
      def.key_columns = std::move(keys);
      def.include_columns = Minus(cols_used, def.key_columns);
      out->push_back(std::move(def));
    }
  }
}

std::optional<MVDef> CandidateGenerator::MVCandidate(
    const SelectQuery& q, const std::string& query_id) const {
  if (q.group_by.empty() || q.aggregates.empty()) return std::nullopt;
  MVDef def;
  def.name = "mv_" + query_id;
  def.fact_table = q.table;
  def.joins = q.joins;
  def.group_by = q.group_by;
  def.aggregates = q.aggregates;
  // Predicates not applicable on the MV output get pinned into the view.
  for (const ColumnFilter& p : q.predicates) {
    const bool on_group = std::find(q.group_by.begin(), q.group_by.end(),
                                    p.column) != q.group_by.end();
    if (!on_group) def.predicates.push_back(p);
  }
  return def;
}

std::vector<IndexDef> CandidateGenerator::GenerateForQuery(
    const SelectQuery& q, const std::string& query_id) {
  std::vector<IndexDef> out;
  GenerateForTable(q, q.table, &out);
  for (const JoinClause& j : q.joins) GenerateForTable(q, j.dim_table, &out);

  if (options_->enable_mv && mvs_ != nullptr) {
    if (std::optional<MVDef> mv = MVCandidate(q, query_id); mv.has_value()) {
      if (mvs_->Find(mv->name) == nullptr) mvs_->Register(*mv);
      IndexDef def;
      def.object = mv->name;
      def.key_columns = mv->group_by;
      for (const AggExpr& a : mv->aggregates) {
        def.include_columns.push_back(MVDef::AggColumnName(a));
      }
      def.include_columns.push_back(kMVCountColumn);
      out.push_back(std::move(def));
    }
  }
  return out;
}

std::vector<IndexDef> CandidateGenerator::GenerateForWorkload(
    const Workload& workload) {
  std::vector<IndexDef> all;
  std::set<std::string> seen;
  for (const Statement& s : workload.statements) {
    if (s.type != StatementType::kSelect) continue;
    for (const IndexDef& def : GenerateForQuery(s.select, s.id)) {
      std::vector<IndexDef> with_variants;
      with_variants.push_back(def);
      AddVariants(def, &with_variants);
      for (const IndexDef& v : with_variants) {
        if (seen.insert(v.Signature()).second) all.push_back(v);
      }
    }
  }
  return all;
}

void CandidateGenerator::AddVariants(const IndexDef& def,
                                     std::vector<IndexDef>* out) const {
  if (!options_->enable_compression) return;
  CAPD_CHECK(def.compression == CompressionKind::kNone);
  for (CompressionKind kind : options_->compression_variants) {
    if (kind == CompressionKind::kBitmap && !BitmapEligible(def)) continue;
    out->push_back(def.WithCompression(kind));
  }
}

bool CandidateGenerator::BitmapEligible(const IndexDef& def) const {
  // Per-distinct-value bitmaps only pay off when the leading key is
  // low-cardinality; anything else explodes into one bitmap per value.
  // MV objects carry no table stats, so they never get bitmap variants.
  if (def.key_columns.empty()) return false;
  if (!db_->HasTable(def.object)) return false;
  const ColumnStats& cs =
      db_->stats(def.object).column(def.key_columns.front());
  return cs.distinct <= options_->bitmap_max_leading_distinct;
}

std::vector<IndexDef> CandidateGenerator::MergeCandidates(
    const std::vector<IndexDef>& selected) {
  std::vector<IndexDef> merged;
  std::set<std::string> seen;
  for (const IndexDef& d : selected) seen.insert(d.Signature());
  for (size_t i = 0; i < selected.size(); ++i) {
    for (size_t j = i + 1; j < selected.size(); ++j) {
      const IndexDef& a = selected[i];
      const IndexDef& b = selected[j];
      if (a.object != b.object || a.clustered || b.clustered) continue;
      if (!db_->HasTable(a.object)) continue;  // MV indexes are not merged
      if (a.filter.has_value() || b.filter.has_value()) continue;
      if (a.key_columns.empty() || b.key_columns.empty()) continue;
      if (a.key_columns[0] != b.key_columns[0]) continue;
      // Merge: the longer key wins, the union of the rest becomes includes.
      IndexDef m;
      m.object = a.object;
      m.key_columns =
          a.key_columns.size() >= b.key_columns.size() ? a.key_columns
                                                       : b.key_columns;
      const Schema& schema = db_->table(a.object).schema();
      std::vector<std::string> cols;
      for (const std::string& c : a.StoredColumns(schema)) {
        if (c != "__rowid") AddUnique(&cols, c);
      }
      for (const std::string& c : b.StoredColumns(schema)) {
        if (c != "__rowid") AddUnique(&cols, c);
      }
      m.include_columns = Minus(cols, m.key_columns);
      std::vector<IndexDef> with_variants;
      with_variants.push_back(m);
      AddVariants(m, &with_variants);
      for (const IndexDef& v : with_variants) {
        if (seen.insert(v.Signature()).second) merged.push_back(v);
      }
    }
  }
  return merged;
}

}  // namespace capd
