#include "advisor/report.h"

#include <algorithm>
#include <cctype>
#include <set>
#include <sstream>

#include "common/logging.h"
#include "query/sql_parser.h"

namespace capd {
namespace {

const char* CompressionClause(CompressionKind kind) {
  switch (kind) {
    case CompressionKind::kNone:
      return "NONE";
    case CompressionKind::kRow:
      return "ROW";
    case CompressionKind::kPage:
      return "PAGE";
    case CompressionKind::kGlobalDict:
      return "COLUMNSTORE_ARCHIVE";  // closest shipping analogue
    case CompressionKind::kRle:
      return "COLUMNSTORE";
    case CompressionKind::kBitmap:
      return "BITMAP";  // no shipping analogue; named for the report reader
  }
  return "NONE";
}

std::string FilterSql(const ColumnFilter& f) {
  auto literal = [](const Value& v) {
    switch (v.type()) {
      case ValueType::kString:
        return "'" + v.ToString() + "'";
      case ValueType::kDate:
        return "'" + FormatDate(v.AsInt64()) + "'";
      default:
        return v.ToString();
    }
  };
  std::ostringstream os;
  os << f.column;
  switch (f.op) {
    case FilterOp::kEq:
      os << " = " << literal(f.lo);
      break;
    case FilterOp::kLt:
      os << " < " << literal(f.lo);
      break;
    case FilterOp::kLe:
      os << " <= " << literal(f.lo);
      break;
    case FilterOp::kGt:
      os << " > " << literal(f.lo);
      break;
    case FilterOp::kGe:
      os << " >= " << literal(f.lo);
      break;
    case FilterOp::kBetween:
      os << " BETWEEN " << literal(f.lo) << " AND " << literal(f.hi);
      break;
  }
  return os.str();
}

}  // namespace

std::string ToCreateIndexSql(const IndexDef& def, const std::string& name) {
  std::ostringstream os;
  os << "CREATE " << (def.clustered ? "CLUSTERED" : "NONCLUSTERED")
     << " INDEX " << name << " ON " << def.object << " (";
  for (size_t i = 0; i < def.key_columns.size(); ++i) {
    if (i > 0) os << ", ";
    os << def.key_columns[i];
  }
  os << ")";
  if (!def.include_columns.empty()) {
    os << " INCLUDE (";
    for (size_t i = 0; i < def.include_columns.size(); ++i) {
      if (i > 0) os << ", ";
      os << def.include_columns[i];
    }
    os << ")";
  }
  if (def.filter.has_value()) {
    os << " WHERE " << FilterSql(*def.filter);
  }
  if (def.compression != CompressionKind::kNone) {
    os << " WITH (DATA_COMPRESSION = " << CompressionClause(def.compression)
       << ")";
  }
  os << ";";
  return os.str();
}

std::string ToCreateViewSql(const MVDef& def) {
  std::ostringstream os;
  os << "CREATE VIEW " << def.name << " WITH SCHEMABINDING AS SELECT ";
  for (const std::string& g : def.group_by) os << g << ", ";
  for (const AggExpr& a : def.aggregates) {
    os << a.func << "(" << a.column << ") AS " << MVDef::AggColumnName(a)
       << ", ";
  }
  os << "COUNT_BIG(*) AS " << kMVCountColumn << " FROM " << def.fact_table;
  for (const JoinClause& j : def.joins) {
    os << " JOIN " << j.dim_table << " ON " << def.fact_table << "."
       << j.fk_column << " = " << j.dim_table << "." << j.dim_key;
  }
  if (!def.predicates.empty()) {
    os << " WHERE ";
    for (size_t i = 0; i < def.predicates.size(); ++i) {
      if (i > 0) os << " AND ";
      os << FilterSql(def.predicates[i]);
    }
  }
  os << " GROUP BY ";
  for (size_t i = 0; i < def.group_by.size(); ++i) {
    if (i > 0) os << ", ";
    os << def.group_by[i];
  }
  os << ";";
  return os.str();
}

std::string RenderTuningReport(const AdvisorResult& result,
                               const MVRegistry* mvs, double budget_bytes) {
  std::ostringstream os;
  os << "=== capd tuning report ===\n";
  char line[256];
  std::snprintf(line, sizeof(line),
                "workload cost:   %.1f -> %.1f  (improvement %.1f%%)\n",
                result.initial_cost, result.final_cost,
                result.improvement_percent());
  os << line;
  std::snprintf(line, sizeof(line),
                "storage:         %.0f KB charged of %.0f KB budget\n",
                result.charged_bytes / 1024.0, budget_bytes / 1024.0);
  os << line;
  std::snprintf(line, sizeof(line),
                "search:          %zu candidates, %zu what-if calls\n",
                result.num_candidates, result.what_if_calls);
  os << line;
  const size_t costings =
      result.stmt_costs_computed + result.stmt_costs_cached;
  if (costings > 0) {
    std::snprintf(line, sizeof(line),
                  "what-if cache:   %zu statement costings computed, "
                  "%zu cache-served (%.1fx saved)\n",
                  result.stmt_costs_computed, result.stmt_costs_cached,
                  static_cast<double>(costings) /
                      static_cast<double>(
                          std::max<size_t>(result.stmt_costs_computed, 1)));
    os << line;
  }
  std::snprintf(line, sizeof(line),
                "size estimation: f=%.1f%%, %.0f sample pages, "
                "%zu sampled / %zu deduced\n",
                result.chosen_f * 100.0, result.estimation_cost_pages,
                result.num_sampled, result.num_deduced);
  os << line;

  os << "\n-- recommended objects --\n";
  int seq = 0;
  // Emit CREATE VIEW before indexes that reference the view.
  if (mvs != nullptr) {
    std::set<std::string> emitted;
    for (const PhysicalIndexEstimate& idx : result.config.indexes()) {
      const MVDef* def = mvs->Find(idx.def.object);
      if (def != nullptr && emitted.insert(def->name).second) {
        os << ToCreateViewSql(*def) << "\n";
      }
    }
  }
  for (const PhysicalIndexEstimate& idx : result.config.indexes()) {
    std::snprintf(line, sizeof(line), "-- estimated %.0f KB, %.0f entries\n",
                  idx.bytes / 1024.0, idx.tuples);
    os << line;
    os << ToCreateIndexSql(idx.def, "capd_ix_" + std::to_string(++seq))
       << "\n";
  }
  if (result.config.size() == 0) os << "-- (no objects recommended)\n";
  return os.str();
}

}  // namespace capd
