// Candidate generation: the syntactically relevant indexes for each query
// (key permutations over predicate/group/join columns, covering variants,
// partial indexes, MV indexes), their compressed variants, and index
// merging across queries ([8], Figure 1's Merging box).
#ifndef CAPD_ADVISOR_CANDIDATES_H_
#define CAPD_ADVISOR_CANDIDATES_H_

#include <optional>
#include <string>
#include <vector>

#include "advisor/advisor_options.h"
#include "mv/mv_registry.h"
#include "optimizer/what_if.h"
#include "query/query.h"

namespace capd {

class CandidateGenerator {
 public:
  CandidateGenerator(const Database& db, const WhatIfOptimizer& optimizer,
                     MVRegistry* mvs, const AdvisorOptions& options)
      : db_(&db), optimizer_(&optimizer), mvs_(mvs), options_(&options) {}

  // Structure candidates (compression == kNone) relevant to one query.
  // MV candidates are registered into the MVRegistry as a side effect and
  // their indexes returned alongside table indexes.
  std::vector<IndexDef> GenerateForQuery(const SelectQuery& q,
                                         const std::string& query_id);

  // All candidates for the workload, deduplicated, with compressed variants
  // appended when compression is enabled.
  std::vector<IndexDef> GenerateForWorkload(const Workload& workload);

  // Index merging: pairwise merges of same-table candidates sharing a
  // leading key column; returns only new structures.
  std::vector<IndexDef> MergeCandidates(const std::vector<IndexDef>& selected);

  // Appends the enabled compression variants of `def`. The kBitmap variant
  // is gated by BitmapEligible (low-distinct leading key on a real table).
  void AddVariants(const IndexDef& def, std::vector<IndexDef>* out) const;

 private:
  bool BitmapEligible(const IndexDef& def) const;
  void GenerateForTable(const SelectQuery& q, const std::string& table,
                        std::vector<IndexDef>* out) const;
  std::optional<MVDef> MVCandidate(const SelectQuery& q,
                                   const std::string& query_id) const;

  const Database* db_;
  const WhatIfOptimizer* optimizer_;
  MVRegistry* mvs_;
  const AdvisorOptions* options_;
};

}  // namespace capd

#endif  // CAPD_ADVISOR_CANDIDATES_H_
