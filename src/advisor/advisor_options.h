// Knobs of the physical-design tool. The paper's tool variants map to
// presets: DTA (no compression), DTAc(None), DTAc+Skyline, DTAc+Backtrack,
// DTAc(Both), and the naive staged baseline of Example 1/2.
#ifndef CAPD_ADVISOR_ADVISOR_OPTIONS_H_
#define CAPD_ADVISOR_ADVISOR_OPTIONS_H_

#include <atomic>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "compress/compression_kind.h"
#include "estimator/size_estimator.h"

namespace capd {

// A recoverable mid-tune failure: the run died but nothing about the
// database, the workload, or the engine state is wrong, so retrying the
// same request may succeed. Thrown by fault hooks (fault injection, or a
// real transient resource: an evicted sample, a briefly unavailable
// statistics source); the AdvisorEngine reports it as an error with
// TuningResponse::retryable set, which the TuningService turns into a
// backoff-and-retry instead of a terminal failure.
class TransientTuningError : public std::runtime_error {
 public:
  explicit TransientTuningError(const std::string& what)
      : std::runtime_error(what) {}
};

enum class CandidateSelectionMode {
  kTopK,     // best-per-query (classic DTA)
  kSkyline,  // full size/cost skyline (Section 6.1)
};

enum class EnumerationMode {
  kGreedy,        // pure benefit greedy
  kDensityGreedy  // benefit/size greedy (Figure 7)
};

struct AdvisorOptions {
  bool enable_compression = true;
  std::vector<CompressionKind> compression_variants = {
      CompressionKind::kRow, CompressionKind::kPage};

  CandidateSelectionMode selection = CandidateSelectionMode::kSkyline;
  int top_k = 2;

  EnumerationMode enumeration = EnumerationMode::kGreedy;
  bool backtracking = true;  // Section 6.2 oversize recovery

  // --- search-loop performance knobs ---
  // Worker threads for the advisor's independent what-if costings: the
  // per-query single-index costings of SelectCandidates, Enumerate's trial
  // evaluations (the main candidate loop and the backtracking swap
  // search), and the staged baseline's stage-2 re-costing. 1 = serial,
  // 0 = hardware concurrency. Results are bit-identical at any thread
  // count: costings are reduced serially in pool order. Independent of
  // size_options.num_threads (the estimation pool).
  int num_threads = 1;
  // External search pool. When set it is used instead of (and regardless
  // of) num_threads, and is not owned: the AdvisorEngine shares one search
  // pool across requests this way. Results stay bit-identical — costings
  // are reduced serially in pool order whatever executes them.
  ThreadPool* pool = nullptr;
  // Per-statement what-if cost cache: adding an index only changes the
  // cost of statements touching its object, so unchanged statements reuse
  // cached costs across trials (bit-identical to uncached costing). The
  // hit/miss counts land in AdvisorResult::stmt_costs_{cached,computed}.
  bool cost_cache = true;

  // --- engine integration (see src/engine/advisor_engine.h) ---
  // Cooperative cancellation: checked at phase boundaries and before each
  // enumeration step. When it becomes true, Tune stops early and returns
  // the best configuration found so far with AdvisorResult::cancelled set.
  std::shared_ptr<const std::atomic<bool>> cancel;
  // Phase progress hook, invoked serially from the tuning thread after
  // each phase ("candidates", "estimation", "selection", "merging",
  // "enumeration"; the staged baseline reports its stage-1 phases too).
  std::function<void(const std::string& phase)> progress;
  // Fault hook, invoked at the same phase boundaries just before
  // `progress`. Deterministic fault injection hangs here: the hook may
  // throw TransientTuningError (retryable failure), fire a cancellation
  // flag (forced timeout / spurious cancel), or do nothing. Unset in
  // production paths; see src/service/fault_injector.h.
  std::function<void(const std::string& phase)> fault_hook;

  // Leading-key distinct-count ceiling for BITMAP candidate variants:
  // columns above it never get a bitmap candidate (per-value bitmaps would
  // outnumber their payoff). Only consulted when compression_variants
  // contains kBitmap.
  uint64_t bitmap_max_leading_distinct = 64;

  bool enable_clustered = true;
  bool enable_partial = false;  // partial-index candidates
  bool enable_mv = false;       // MV + MV-index candidates
  bool enable_merging = true;   // index merging [8]

  // Size-estimation knobs (Section 5 framework). Noteworthy fields:
  //   size_options.num_threads — parallel batch estimation: independent
  //     SampleCF runs execute across this many workers (1 = serial,
  //     0 = hardware concurrency) with bit-identical results.
  //   size_options.cache — shared cross-round EstimationCache: indexes
  //     priced in an earlier advisor round (initial pool, merged pool,
  //     staged baseline) are reused instead of re-sampled.
  // Callers that construct the SizeEstimator themselves must build it from
  // this struct for the knobs to take effect (see bench/bench_common.h).
  SizeEstimationOptions size_options;

  // Prints greedy/backtracking decisions to stderr (debugging aid).
  bool trace = false;

  // --- presets ---
  static AdvisorOptions DTA();          // original tool, no compression
  static AdvisorOptions DTAcNone();     // variants only
  static AdvisorOptions DTAcSkyline();  // + skyline selection
  static AdvisorOptions DTAcBacktrack();  // + backtracking enumeration
  static AdvisorOptions DTAcBoth();     // full implementation
  // DTAcBoth + succinct BITMAP variants for low-distinct leading keys, with
  // sort-order deduction on so sibling sort orders of one sampled leaf are
  // derived instead of re-sampled.
  static AdvisorOptions DTAcBitmap();
};

}  // namespace capd

#endif  // CAPD_ADVISOR_ADVISOR_OPTIONS_H_
