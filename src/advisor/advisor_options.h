// Knobs of the physical-design tool. The paper's tool variants map to
// presets: DTA (no compression), DTAc(None), DTAc+Skyline, DTAc+Backtrack,
// DTAc(Both), and the naive staged baseline of Example 1/2.
#ifndef CAPD_ADVISOR_ADVISOR_OPTIONS_H_
#define CAPD_ADVISOR_ADVISOR_OPTIONS_H_

#include <vector>

#include "compress/compression_kind.h"
#include "estimator/size_estimator.h"

namespace capd {

enum class CandidateSelectionMode {
  kTopK,     // best-per-query (classic DTA)
  kSkyline,  // full size/cost skyline (Section 6.1)
};

enum class EnumerationMode {
  kGreedy,        // pure benefit greedy
  kDensityGreedy  // benefit/size greedy (Figure 7)
};

struct AdvisorOptions {
  bool enable_compression = true;
  std::vector<CompressionKind> compression_variants = {
      CompressionKind::kRow, CompressionKind::kPage};

  CandidateSelectionMode selection = CandidateSelectionMode::kSkyline;
  int top_k = 2;

  EnumerationMode enumeration = EnumerationMode::kGreedy;
  bool backtracking = true;  // Section 6.2 oversize recovery

  bool enable_clustered = true;
  bool enable_partial = false;  // partial-index candidates
  bool enable_mv = false;       // MV + MV-index candidates
  bool enable_merging = true;   // index merging [8]

  SizeEstimationOptions size_options;

  // Prints greedy/backtracking decisions to stderr (debugging aid).
  bool trace = false;

  // --- presets ---
  static AdvisorOptions DTA();          // original tool, no compression
  static AdvisorOptions DTAcNone();     // variants only
  static AdvisorOptions DTAcSkyline();  // + skyline selection
  static AdvisorOptions DTAcBacktrack();  // + backtracking enumeration
  static AdvisorOptions DTAcBoth();     // full implementation
};

inline AdvisorOptions AdvisorOptions::DTA() {
  AdvisorOptions o;
  o.enable_compression = false;
  o.selection = CandidateSelectionMode::kTopK;
  o.backtracking = false;
  return o;
}

inline AdvisorOptions AdvisorOptions::DTAcNone() {
  AdvisorOptions o;
  o.selection = CandidateSelectionMode::kTopK;
  o.backtracking = false;
  return o;
}

inline AdvisorOptions AdvisorOptions::DTAcSkyline() {
  AdvisorOptions o;
  o.selection = CandidateSelectionMode::kSkyline;
  o.backtracking = false;
  return o;
}

inline AdvisorOptions AdvisorOptions::DTAcBacktrack() {
  AdvisorOptions o;
  o.selection = CandidateSelectionMode::kTopK;
  o.backtracking = true;
  return o;
}

inline AdvisorOptions AdvisorOptions::DTAcBoth() {
  AdvisorOptions o;
  o.selection = CandidateSelectionMode::kSkyline;
  o.backtracking = true;
  return o;
}

}  // namespace capd

#endif  // CAPD_ADVISOR_ADVISOR_OPTIONS_H_
