// Turning an AdvisorResult into something a DBA can act on: SQL Server
// style CREATE INDEX / CREATE VIEW DDL (with DATA_COMPRESSION clauses) and
// a human-readable tuning report.
#ifndef CAPD_ADVISOR_REPORT_H_
#define CAPD_ADVISOR_REPORT_H_

#include <string>

#include "advisor/advisor.h"
#include "mv/mv_registry.h"

namespace capd {

// CREATE INDEX statement for one recommended index. Uses SQL Server
// syntax: [UNIQUE] CLUSTERED/NONCLUSTERED, INCLUDE, filtered-index WHERE,
// and WITH (DATA_COMPRESSION = ROW | PAGE | ...). Indexes on MVs are
// emitted against the view name (indexed views).
std::string ToCreateIndexSql(const IndexDef& def, const std::string& name);

// CREATE VIEW statement for a materialized-view definition.
std::string ToCreateViewSql(const MVDef& def);

// Full report: header with costs/improvement, per-index DDL with estimated
// sizes, and estimation/bookkeeping statistics. `mvs` may be null.
std::string RenderTuningReport(const AdvisorResult& result,
                               const MVRegistry* mvs, double budget_bytes);

}  // namespace capd

#endif  // CAPD_ADVISOR_REPORT_H_
