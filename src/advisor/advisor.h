// The physical-design tool driver (Figure 1): candidate generation →
// per-query candidate selection (top-k or skyline) → merging → size
// estimation (Section 5 framework) → enumeration (greedy, optionally
// density-based, optionally with the Section 6.2 backtracking recovery).
#ifndef CAPD_ADVISOR_ADVISOR_H_
#define CAPD_ADVISOR_ADVISOR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "advisor/advisor_options.h"
#include "advisor/candidates.h"
#include "common/thread_pool.h"
#include "estimator/size_estimator.h"
#include "optimizer/cost_cache.h"
#include "optimizer/what_if.h"

namespace capd {

struct AdvisorResult {
  Configuration config;
  double initial_cost = 0.0;
  double final_cost = 0.0;
  double charged_bytes = 0.0;  // budget consumption of the final config

  // Estimation bookkeeping (the Figure 11 accounting).
  double estimation_cost_pages = 0.0;
  double chosen_f = 0.0;
  size_t num_candidates = 0;
  size_t num_sampled = 0;
  size_t num_deduced = 0;
  size_t what_if_calls = 0;  // logical per-statement cost requests

  // Cost-cache accounting over every statement costing the search issued
  // (candidate selection and enumeration): how many ran the optimizer vs.
  // were served from the per-statement cost cache. With the cache off,
  // every costing is computed.
  size_t stmt_costs_computed = 0;
  size_t stmt_costs_cached = 0;

  // Per-phase wall times of the run (candidate generation + size
  // estimation / per-query candidate selection / enumeration incl. the
  // initial+final workload costings). Informational only — never part of
  // the determinism contract or the rendered report.
  double estimation_ms = 0.0;
  double selection_ms = 0.0;
  double enumeration_ms = 0.0;

  // True when a cooperative cancel (AdvisorOptions::cancel) stopped the
  // run early; config then holds the best configuration found so far.
  bool cancelled = false;

  // Paper's headline metric: % improvement over the initial database.
  double improvement_percent() const {
    if (initial_cost <= 0) return 0.0;
    return 100.0 * (1.0 - final_cost / initial_cost);
  }
};

class Advisor {
 public:
  // `mvs` may be null when options.enable_mv is false. The optimizer's MV
  // matcher should already be wired to `mvs` by the caller when MVs are on.
  Advisor(const Database& db, const WhatIfOptimizer& optimizer,
          SizeEstimator* sizes, MVRegistry* mvs, AdvisorOptions options)
      : db_(&db),
        optimizer_(&optimizer),
        sizes_(sizes),
        mvs_(mvs),
        options_(std::move(options)) {}

  AdvisorResult Tune(const Workload& workload, double budget_bytes);

  // Budget charge of a configuration: clustered indexes replace the heap,
  // so they are charged (size - heap size), which can be negative — that is
  // how DTAc frees space at a 0% budget by compressing base data.
  double ChargedBytes(const Configuration& config) const;

  // The naive staged baseline of Example 1/2: tune without compression,
  // then compress every chosen index with `kind`.
  AdvisorResult TuneStagedBaseline(const Workload& workload,
                                   double budget_bytes, CompressionKind kind);

  // Estimate sizes for all candidates; returns them as configuration
  // entries keyed by signature. Uncompressed candidates are sized on the
  // estimation pool in one batch; compressed ones go through the Section 5
  // framework. Public for tests and tooling.
  std::map<std::string, PhysicalIndexEstimate> EstimateSizes(
      const std::vector<IndexDef>& candidates, AdvisorResult* result);

  // Per-query candidate selection: keep candidates that appear in the
  // query's top-k configurations or on its size/cost skyline. The
  // single-index costings go through `cost_cache` (may be null), where
  // they double as warm-up for the first enumeration step; they fan out
  // over Pool() and are reduced serially in (query, candidate) order, so
  // the selected pool is bit-identical at any thread count. Public for
  // tests and tooling.
  std::vector<IndexDef> SelectCandidates(
      const Workload& workload, const std::vector<IndexDef>& candidates,
      const std::map<std::string, PhysicalIndexEstimate>& sizes,
      StatementCostCache* cost_cache, AdvisorResult* result) const;

 private:
  // Greedy enumeration with optional backtracking. `cost_cache` may be
  // null (uncached costing); trial evaluations run on Pool() when the
  // options enable enumeration threads.
  Configuration Enumerate(
      const Workload& workload, const std::vector<IndexDef>& pool,
      const std::map<std::string, PhysicalIndexEstimate>& sizes,
      double budget_bytes, StatementCostCache* cost_cache,
      AdvisorResult* result) const;

  double WorkloadCost(const Workload& workload, const Configuration& config,
                      StatementCostCache* cost_cache,
                      AdvisorResult* result) const;

  // Uncached workload costing with the per-statement optimizer calls
  // fanned across Pool(); the weighted sum is reduced in statement order,
  // reproducing WhatIfOptimizer::WorkloadCost to the bit.
  double PooledWorkloadCost(const Workload& workload,
                            const Configuration& config,
                            AdvisorResult* result) const;

  bool CanAdd(const Configuration& config, const IndexDef& def) const;

  // Enumeration thread pool: options_.pool when set, otherwise created on
  // first use and reused across rounds; null when options_.num_threads == 1.
  ThreadPool* Pool() const;

  // Cooperative cancellation / progress plumbing (no-ops when the options
  // leave them unset).
  bool CancelRequested() const;
  void ReportProgress(const char* phase) const;

  const Database* db_;
  const WhatIfOptimizer* optimizer_;
  SizeEstimator* sizes_;
  MVRegistry* mvs_;
  AdvisorOptions options_;
  mutable std::unique_ptr<ThreadPool> pool_;
};

}  // namespace capd

#endif  // CAPD_ADVISOR_ADVISOR_H_
