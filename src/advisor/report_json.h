// Machine-readable rendering of an AdvisorResult: a versioned JSON
// document carrying everything the text report prints (costs, storage,
// search and estimation statistics, recommended DDL) plus the structured
// index definitions a driving program would otherwise re-parse out of the
// DDL. The schema is pinned by `kTuningReportJsonVersion` and by golden
// files (tests/golden/*.json) — bump the version on any shape change.
#ifndef CAPD_ADVISOR_REPORT_JSON_H_
#define CAPD_ADVISOR_REPORT_JSON_H_

#include <string>

#include "advisor/advisor.h"
#include "mv/mv_registry.h"

namespace capd {

// Value of the "schema_version" key emitted by RenderTuningReportJson.
inline constexpr int kTuningReportJsonVersion = 1;

// Renders `result` as pretty-printed JSON (2-space indent, trailing
// newline). Deterministic: doubles are emitted as shortest round-trip
// decimals, so bit-identical results render byte-identically. `mvs` may be
// null; `strategy` is echoed verbatim (empty = omitted).
std::string RenderTuningReportJson(const AdvisorResult& result,
                                   const MVRegistry* mvs, double budget_bytes,
                                   const std::string& strategy);

}  // namespace capd

#endif  // CAPD_ADVISOR_REPORT_JSON_H_
