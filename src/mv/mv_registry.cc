#include "mv/mv_registry.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/logging.h"
#include "stats/distinct_estimator.h"
#include "stats/join_synopsis.h"

namespace capd {
namespace {

bool SameJoinSet(const std::vector<JoinClause>& a,
                 const std::vector<JoinClause>& b) {
  if (a.size() != b.size()) return false;
  auto key = [](const JoinClause& j) {
    return j.dim_table + "|" + j.fk_column + "|" + j.dim_key;
  };
  std::set<std::string> sa, sb;
  for (const JoinClause& j : a) sa.insert(key(j));
  for (const JoinClause& j : b) sb.insert(key(j));
  return sa == sb;
}

bool SameColumnSet(const std::vector<std::string>& a,
                   const std::vector<std::string>& b) {
  return std::set<std::string>(a.begin(), a.end()) ==
         std::set<std::string>(b.begin(), b.end());
}

}  // namespace

void MVRegistry::Register(MVDef def) {
  CAPD_CHECK(defs_.count(def.name) == 0) << "duplicate MV " << def.name;
  schemas_.emplace(def.name, def.OutputSchema(*db_));
  defs_[def.name] = std::move(def);
}

const MVDef* MVRegistry::Find(const std::string& name) const {
  const auto it = defs_.find(name);
  return it == defs_.end() ? nullptr : &it->second;
}

std::vector<const MVDef*> MVRegistry::All() const {
  std::vector<const MVDef*> out;
  out.reserve(defs_.size());
  for (const auto& [name, def] : defs_) out.push_back(&def);
  return out;
}

const Table& MVRegistry::Synopsis(const std::string& fact, double f) {
  std::lock_guard<std::mutex> lock(mu_);
  return SynopsisLocked(fact, f);
}

const Table& MVRegistry::SynopsisLocked(const std::string& fact, double f) {
  std::ostringstream key;
  key << fact << "|" << f;
  auto it = synopses_.find(key.str());
  if (it == synopses_.end()) {
    // Collect every FK edge from this fact table so one synopsis serves all
    // MVs over it.
    const std::vector<ForeignKey> edges = db_->ForeignKeysFrom(fact);
    std::vector<const Table*> dims;
    dims.reserve(edges.size());
    for (const ForeignKey& e : edges) dims.push_back(&db_->table(e.dim_table));
    Random rng(synopsis_seed_ ^ std::hash<std::string>{}(key.str()));
    it = synopses_
             .emplace(key.str(), BuildJoinSynopsis(db_->table(fact), dims,
                                                   edges, f, &rng))
             .first;
  }
  return *it->second;
}

const Table& MVRegistry::Sample(const std::string& object, double f) {
  const MVDef* def = Find(object);
  // Base tables bypass mu_ entirely: the SampleManager has its own lock,
  // and holding ours here would serialize all base-table sampling too.
  if (def == nullptr) return table_source_.Sample(object, f);
  std::ostringstream key;
  key << object << "|" << f;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = mv_samples_.find(key.str());
  if (it == mv_samples_.end()) {
    const Table& synopsis = SynopsisLocked(def->fact_table, f);
    it = mv_samples_.emplace(key.str(), AggregateRows(synopsis, *def, *db_))
             .first;
  }
  return *it->second;
}

MVTupleEstimates MVRegistry::EstimateTuples(const MVDef& def, double f) {
  const Table& smv = Sample(def.name, f);
  const Table& synopsis = Synopsis(def.fact_table, f);

  // CreateMVSample (Appendix B.3): frequency stats from the count column.
  const size_t count_pos = smv.schema().ColumnIndex(kMVCountColumn);
  std::vector<uint64_t> class_counts;
  class_counts.reserve(smv.num_rows());
  uint64_t r = 0;  // tuples before aggregation (that passed the filter)
  for (const Row& row : smv.rows()) {
    const uint64_t c = static_cast<uint64_t>(row[count_pos].AsInt64());
    class_counts.push_back(c);
    r += c;
  }
  const uint64_t d = smv.num_rows();
  const double filter_factor =
      synopsis.num_rows() > 0
          ? static_cast<double>(r) / static_cast<double>(synopsis.num_rows())
          : 0.0;
  const uint64_t fact_rows = db_->table(def.fact_table).num_rows();
  const uint64_t n = static_cast<uint64_t>(
      std::max(1.0, static_cast<double>(fact_rows) * filter_factor));

  MVTupleEstimates est;
  est.sample_groups = d;
  est.sample_rows = r;
  est.adaptive = AdaptiveEstimate(BuildFrequencyStats(class_counts), d, r, n);
  est.multiply = MultiplyEstimate(d, r, n);

  // Optimizer baseline: independence across group-by columns using base
  // statistics.
  std::vector<uint64_t> per_col;
  for (const std::string& g : def.group_by) {
    // Find the owning table's stats.
    const Table& fact = db_->table(def.fact_table);
    if (fact.schema().HasColumn(g)) {
      per_col.push_back(db_->stats(def.fact_table).column(g).distinct);
      continue;
    }
    bool found = false;
    for (const JoinClause& j : def.joins) {
      if (db_->table(j.dim_table).schema().HasColumn(g)) {
        per_col.push_back(db_->stats(j.dim_table).column(g).distinct);
        found = true;
        break;
      }
    }
    CAPD_CHECK(found) << "MV group-by column not found: " << g;
  }
  est.optimizer = OptimizerIndependenceEstimate(per_col, n);
  return est;
}

double MVRegistry::FullTuples(const std::string& object) {
  const MVDef* def = Find(object);
  if (def == nullptr) return table_source_.FullTuples(object);
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = tuple_estimates_.find(object);
    if (it != tuple_estimates_.end()) return it->second;
  }
  // Computed outside the lock (EstimateTuples re-enters Sample/Synopsis,
  // which take mu_ themselves). Concurrent callers compute the same
  // deterministic value, so a double insert is benign.
  const MVTupleEstimates est = EstimateTuples(*def, /*f=*/0.05);
  std::lock_guard<std::mutex> lock(mu_);
  tuple_estimates_[object] = est.adaptive;
  return est.adaptive;
}

const Schema& MVRegistry::ObjectSchema(const std::string& object) {
  const auto it = schemas_.find(object);
  if (it != schemas_.end()) return it->second;
  return table_source_.ObjectSchema(object);
}

std::optional<MVMatcher::MVAccess> MVRegistry::Match(
    const IndexDef& idx, const SelectQuery& query) const {
  const MVDef* def = Find(idx.object);
  if (def == nullptr) return std::nullopt;
  if (def->fact_table != query.table) return std::nullopt;
  if (!SameJoinSet(def->joins, query.joins)) return std::nullopt;
  if (!SameColumnSet(def->group_by, query.group_by)) return std::nullopt;

  // Every aggregate the query needs must exist in the MV.
  for (const AggExpr& a : query.aggregates) {
    const bool found = std::any_of(
        def->aggregates.begin(), def->aggregates.end(), [&](const AggExpr& m) {
          return m.column == a.column && m.func == a.func;
        });
    if (!found) return std::nullopt;
  }

  // Each MV predicate must be pinned by an identical query predicate (else
  // the MV may exclude rows the query needs); remaining query predicates
  // must be on group-by columns so they can be applied on the MV output.
  std::vector<ColumnFilter> residual;
  for (const ColumnFilter& qp : query.predicates) {
    const bool pinned = std::any_of(
        def->predicates.begin(), def->predicates.end(),
        [&](const ColumnFilter& mp) { return mp.ToString() == qp.ToString(); });
    if (!pinned) residual.push_back(qp);
  }
  for (const ColumnFilter& mp : def->predicates) {
    const bool matched = std::any_of(
        query.predicates.begin(), query.predicates.end(),
        [&](const ColumnFilter& qp) { return qp.ToString() == mp.ToString(); });
    if (!matched) return std::nullopt;
  }
  for (const ColumnFilter& rp : residual) {
    const bool on_group =
        std::find(def->group_by.begin(), def->group_by.end(), rp.column) !=
        def->group_by.end();
    if (!on_group) return std::nullopt;
  }

  MVAccess access;
  double mv_tuples = static_cast<double>(db_->table(def->fact_table).num_rows());
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto est = tuple_estimates_.find(idx.object);
    if (est != tuple_estimates_.end()) mv_tuples = est->second;
  }
  access.mv_tuples = mv_tuples;
  // Residual selectivity approximated with base-table per-column stats.
  double frac = 1.0;
  for (const ColumnFilter& rp : residual) {
    const Table& fact = db_->table(def->fact_table);
    const std::string owner =
        fact.schema().HasColumn(rp.column) ? def->fact_table : [&]() {
          for (const JoinClause& j : def->joins) {
            if (db_->table(j.dim_table).schema().HasColumn(rp.column)) {
              return j.dim_table;
            }
          }
          return def->fact_table;
        }();
    const ColumnStats& cs = db_->stats(owner).column(rp.column);
    if (rp.op == FilterOp::kEq) {
      frac *= 1.0 / static_cast<double>(std::max<uint64_t>(cs.distinct, 1));
    } else {
      frac *= 0.3;  // coarse range default on MV output
    }
  }
  access.selected_frac = std::min(1.0, frac);
  access.used_columns = query.group_by.size() + query.aggregates.size();
  access.leading_key_seek =
      !idx.key_columns.empty() &&
      std::any_of(residual.begin(), residual.end(), [&](const ColumnFilter& rp) {
        return rp.column == idx.key_columns[0];
      });
  return access;
}

}  // namespace capd
