// MVRegistry: the glue that makes materialized views first-class citizens
// of the size-estimation framework and the what-if optimizer.
//   - SampleSource: MV samples are cut from join synopses (Appendix B.2)
//     and aggregated with the hidden COUNT(*) column (B.3); base tables
//     fall through to the shared SampleManager.
//   - FullTuples(mv): the CreateMVSample algorithm — frequency stats from
//     the count column fed to the Adaptive Estimator.
//   - MVMatcher: decides whether an index on an MV can answer a query.
#ifndef CAPD_MV_MV_REGISTRY_H_
#define CAPD_MV_MV_REGISTRY_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "estimator/sample_cf.h"
#include "mv/mv_def.h"
#include "optimizer/what_if.h"

namespace capd {

// Result of the Appendix B.3 tuple-count estimation, with the baselines the
// paper compares in Table 1.
struct MVTupleEstimates {
  double adaptive = 0.0;    // AE (ours)
  double multiply = 0.0;    // sample distinct / sampling fraction
  double optimizer = 0.0;   // per-column independence
  uint64_t sample_groups = 0;
  uint64_t sample_rows = 0;
};

class MVRegistry : public SampleSource, public MVMatcher {
 public:
  MVRegistry(const Database& db, SampleManager* samples)
      : db_(&db), samples_(samples), table_source_(db, samples) {}

  void Register(MVDef def);
  const MVDef* Find(const std::string& name) const;
  bool IsMV(const std::string& object) const { return Find(object) != nullptr; }
  std::vector<const MVDef*> All() const;

  // --- SampleSource ---
  const Table& Sample(const std::string& object, double f) override;
  double FullTuples(const std::string& object) override;
  const Schema& ObjectSchema(const std::string& object) override;

  // Full Appendix B.3 estimation detail for one MV.
  MVTupleEstimates EstimateTuples(const MVDef& def, double f);

  // --- MVMatcher ---
  std::optional<MVAccess> Match(const IndexDef& idx,
                                const SelectQuery& query) const override;
  std::optional<std::string> FactTableOf(
      const std::string& object) const override {
    const MVDef* def = Find(object);
    if (def == nullptr) return std::nullopt;
    return def->fact_table;
  }

 private:
  // Join synopsis for a fact table (cached per fraction).
  const Table& Synopsis(const std::string& fact, double f);
  // Requires mu_ held.
  const Table& SynopsisLocked(const std::string& fact, double f);

  const Database* db_;
  SampleManager* samples_;
  TableSampleSource table_source_;
  std::map<std::string, MVDef> defs_;    // mutated only by Register (setup)
  std::map<std::string, Schema> schemas_;  // mv name; Register-time only
  // Caches below are filled lazily, possibly from pool workers during
  // parallel estimation: mu_ guards them. Synopses and MV samples are
  // seeded per cache key, so contents are independent of creation order.
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Table>> synopses_;    // fact|f
  std::map<std::string, std::unique_ptr<Table>> mv_samples_;  // mv|f
  std::map<std::string, double> tuple_estimates_;             // mv name
  uint64_t synopsis_seed_ = 0x5eed;
};

}  // namespace capd

#endif  // CAPD_MV_MV_REGISTRY_H_
