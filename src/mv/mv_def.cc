#include "mv/mv_def.h"

#include <map>
#include <sstream>

#include "common/logging.h"
#include "stats/join_synopsis.h"

namespace capd {
namespace {

// Joins the fact table with all dimension tables referenced by `def`
// (full tables on both sides; used for exact materialization only).
std::unique_ptr<Table> JoinFull(const Database& db, const MVDef& def) {
  const Table& fact = db.table(def.fact_table);
  std::vector<Column> cols = fact.schema().columns();
  std::vector<const Table*> dims;
  std::vector<size_t> dim_key_pos;
  std::vector<size_t> fact_fk_pos;
  for (const JoinClause& j : def.joins) {
    const Table& dim = db.table(j.dim_table);
    dims.push_back(&dim);
    dim_key_pos.push_back(dim.schema().ColumnIndex(j.dim_key));
    fact_fk_pos.push_back(fact.schema().ColumnIndex(j.fk_column));
    for (const Column& c : dim.schema().columns()) {
      if (c.name == j.dim_key) continue;
      cols.push_back(c);
    }
  }
  auto joined = std::make_unique<Table>(def.fact_table + "_joined",
                                        Schema(std::move(cols)));
  // Dim rows are stored by value: with blocked tables ScanRows hands out a
  // scratch row, so a pointer into the scan would dangle.
  std::vector<std::map<std::string, Row>> maps(dims.size());
  for (size_t d = 0; d < dims.size(); ++d) {
    dims[d]->ScanRows([&](uint64_t, const Row& row) {
      maps[d][row[dim_key_pos[d]].ToString()] = row;
    });
  }
  if (fact.materialized()) joined->Reserve(fact.num_rows());
  fact.ScanRows([&](uint64_t, const Row& frow) {
    Row out = frow;
    bool ok = true;
    for (size_t d = 0; d < dims.size() && ok; ++d) {
      const auto it = maps[d].find(frow[fact_fk_pos[d]].ToString());
      if (it == maps[d].end()) {
        ok = false;
        break;
      }
      const Row& drow = it->second;
      for (size_t c = 0; c < drow.size(); ++c) {
        if (c == dim_key_pos[d]) continue;
        out.push_back(drow[c]);
      }
    }
    if (ok) joined->AddRow(std::move(out));
  });
  return joined;
}

}  // namespace

std::string MVDef::AggColumnName(const AggExpr& agg) {
  std::string fn = agg.func;
  for (char& c : fn) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return fn + "_" + agg.column;
}

Schema MVDef::OutputSchema(const Database& db) const {
  const Table& fact = db.table(fact_table);
  std::vector<Column> cols;
  auto find_col = [&](const std::string& name) -> Column {
    if (fact.schema().HasColumn(name)) {
      return fact.schema().column(fact.schema().ColumnIndex(name));
    }
    for (const JoinClause& j : joins) {
      const Schema& s = db.table(j.dim_table).schema();
      if (s.HasColumn(name)) return s.column(s.ColumnIndex(name));
    }
    CAPD_CHECK(false) << "MV " << this->name << ": unknown column " << name;
    return Column{};
  };
  for (const std::string& g : group_by) cols.push_back(find_col(g));
  for (const AggExpr& a : aggregates) {
    cols.push_back(Column{AggColumnName(a), ValueType::kDouble, 8});
  }
  cols.push_back(Column{kMVCountColumn, ValueType::kInt64, 8});
  return Schema(std::move(cols));
}

std::string MVDef::ToString() const {
  std::ostringstream os;
  os << "MV " << name << " = SELECT ";
  for (const std::string& g : group_by) os << g << ",";
  for (const AggExpr& a : aggregates) os << a.func << "(" << a.column << "),";
  os << "COUNT(*) FROM " << fact_table;
  for (const JoinClause& j : joins) os << " JOIN " << j.dim_table;
  if (!predicates.empty()) {
    os << " WHERE ";
    for (const ColumnFilter& p : predicates) os << p.ToString() << " AND ";
  }
  os << " GROUP BY ...";
  return os.str();
}

std::unique_ptr<Table> AggregateRows(const Table& input, const MVDef& def,
                                     const Database& db) {
  const Schema out_schema = def.OutputSchema(db);
  std::vector<size_t> group_pos;
  group_pos.reserve(def.group_by.size());
  for (const std::string& g : def.group_by) {
    group_pos.push_back(input.schema().ColumnIndex(g));
  }
  std::vector<size_t> agg_pos;
  agg_pos.reserve(def.aggregates.size());
  for (const AggExpr& a : def.aggregates) {
    agg_pos.push_back(input.schema().ColumnIndex(a.column));
  }

  struct GroupAccum {
    Row key;
    std::vector<double> sums;
    int64_t count = 0;
  };
  std::map<std::string, GroupAccum> groups;
  input.ScanRows([&](uint64_t, const Row& row) {
    for (const ColumnFilter& p : def.predicates) {
      if (!p.Matches(row, input.schema())) return;
    }
    std::string key;
    for (size_t p : group_pos) {
      key.append(row[p].ToString());
      key.push_back('\x1f');
    }
    GroupAccum& acc = groups[key];
    if (acc.count == 0) {
      acc.key.reserve(group_pos.size());
      for (size_t p : group_pos) acc.key.push_back(row[p]);
      acc.sums.assign(agg_pos.size(), 0.0);
    }
    for (size_t a = 0; a < agg_pos.size(); ++a) {
      acc.sums[a] += row[agg_pos[a]].NumericKey();
    }
    ++acc.count;
  });

  auto mv = std::make_unique<Table>(def.name, out_schema);
  mv->Reserve(groups.size());
  for (auto& [key, acc] : groups) {
    Row out = std::move(acc.key);
    for (double s : acc.sums) out.push_back(Value::Double(s));
    out.push_back(Value::Int64(acc.count));
    mv->AddRow(std::move(out));
  }
  return mv;
}

std::unique_ptr<Table> MaterializeMV(const Database& db, const MVDef& def) {
  if (def.joins.empty()) {
    return AggregateRows(db.table(def.fact_table), def, db);
  }
  const std::unique_ptr<Table> joined = JoinFull(db, def);
  return AggregateRows(*joined, def, db);
}

}  // namespace capd
