// Materialized-view definitions (Appendix B): FK-join views over a fact
// table with optional filters, GROUP BY and aggregation. Every MV carries a
// hidden COUNT(*) column (required for incremental maintenance), which is
// exactly the frequency statistic the Adaptive Estimator consumes.
#ifndef CAPD_MV_MV_DEF_H_
#define CAPD_MV_MV_DEF_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/database.h"
#include "query/query.h"

namespace capd {

// Name of the hidden count column in materialized MVs and MV samples.
inline constexpr char kMVCountColumn[] = "__count";

struct MVDef {
  std::string name;
  std::string fact_table;
  std::vector<JoinClause> joins;
  std::vector<ColumnFilter> predicates;   // WHERE, on fact or dim columns
  std::vector<std::string> group_by;      // output key columns
  std::vector<AggExpr> aggregates;        // SUM-style aggregate columns

  // Aggregate output column name ("sum_<col>").
  static std::string AggColumnName(const AggExpr& agg);

  // Output schema: group-by columns (original types/widths), one 8-byte
  // double per aggregate, and the hidden count column.
  Schema OutputSchema(const Database& db) const;

  std::string ToString() const;
};

// Materializes the MV exactly over the full database (ground truth for the
// Table 1 experiment and for final verification).
std::unique_ptr<Table> MaterializeMV(const Database& db, const MVDef& def);

// Group-by + aggregate over any table's rows (shared by full
// materialization and MV-sample creation). `input` must already contain
// all referenced columns (e.g. a join synopsis).
std::unique_ptr<Table> AggregateRows(const Table& input, const MVDef& def,
                                     const Database& db);

}  // namespace capd

#endif  // CAPD_MV_MV_DEF_H_
