// Zipfian value generator used for the skewed datasets (TPC-H Z=1, Z=3 in
// Appendix C of the paper).
#ifndef CAPD_COMMON_ZIPF_H_
#define CAPD_COMMON_ZIPF_H_

#include <cstdint>
#include <vector>

#include "common/random.h"

namespace capd {

// Draws ranks in [0, n) with probability proportional to 1/(rank+1)^theta.
// theta == 0 degenerates to the uniform distribution.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta);

  uint64_t Next(Random* rng) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  std::vector<double> cdf_;  // cumulative probabilities, size n (capped).
};

}  // namespace capd

#endif  // CAPD_COMMON_ZIPF_H_
