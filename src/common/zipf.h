// Zipfian value generator used for the skewed datasets (TPC-H Z=1, Z=3 in
// Appendix C of the paper).
#ifndef CAPD_COMMON_ZIPF_H_
#define CAPD_COMMON_ZIPF_H_

#include <cstdint>
#include <vector>

#include "common/random.h"

namespace capd {

// Draws ranks in [0, n) with probability proportional to 1/(rank+1)^theta.
// theta == 0 degenerates to the uniform distribution.
//
// Memory is O(min(n, kCdfCap)), never O(n): the CDF table is materialized
// only for the first kCdfCap ranks; above the cap the mass comes from the
// Euler-Maclaurin integral approximation of the harmonic tail and draws
// landing there invert it analytically. For n <= kCdfCap (every seed-era
// workload) construction and draws are bit-identical to the original
// uncapped table, so the pinned goldens and bench_service_load's seeded
// counters are unchanged. Each Next() consumes exactly one uniform double
// from the engine in either regime.
class ZipfGenerator {
 public:
  // Ranks materialized exactly. 2^20 doubles = 8 MiB per generator, the
  // fixed ceiling a 100M-key generator costs too.
  static constexpr uint64_t kCdfCap = 1ull << 20;

  ZipfGenerator(uint64_t n, double theta);

  uint64_t Next(Random* rng) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }
  // P(rank < min(n, kCdfCap)): 1 for uncapped generators, < 1 when an
  // analytic tail exists. Exposed for the tail-sanity tests.
  double head_mass() const { return cdf_.empty() ? 1.0 : cdf_.back(); }

 private:
  uint64_t n_;
  double theta_;
  std::vector<double> cdf_;  // cumulative probabilities, size min(n, kCdfCap)
  double total_ = 0.0;       // unnormalized mass over all n ranks
};

}  // namespace capd

#endif  // CAPD_COMMON_ZIPF_H_
