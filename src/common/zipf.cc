#include "common/zipf.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace capd {

ZipfGenerator::ZipfGenerator(uint64_t n, double theta) : n_(n), theta_(theta) {
  CAPD_CHECK_GT(n, 0u);
  CAPD_CHECK_GE(theta, 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = total;
  }
  for (uint64_t i = 0; i < n; ++i) cdf_[i] /= total;
}

uint64_t ZipfGenerator::Next(Random* rng) const {
  const double u = rng->NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return n_ - 1;
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace capd
