#include "common/zipf.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace capd {
namespace {

// Integral of x^-theta over [a, b]: the continuous stand-in for the
// harmonic tail mass sum_{i in (a, b]} i^-theta with half-open rank cells
// [i - 0.5, i + 0.5).
double TailIntegral(double a, double b, double theta) {
  if (theta == 1.0) return std::log(b / a);
  return (std::pow(b, 1.0 - theta) - std::pow(a, 1.0 - theta)) /
         (1.0 - theta);
}

}  // namespace

ZipfGenerator::ZipfGenerator(uint64_t n, double theta) : n_(n), theta_(theta) {
  CAPD_CHECK_GT(n, 0u);
  CAPD_CHECK_GE(theta, 0.0);
  const uint64_t head = std::min(n, kCdfCap);
  cdf_.resize(head);
  double total = 0.0;
  for (uint64_t i = 0; i < head; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = total;
  }
  if (n > head) {
    // Analytic mass of ranks [head, n) — 1-based values (head, n], each
    // value v owning the cell [v - 0.5, v + 0.5).
    total += TailIntegral(static_cast<double>(head) + 0.5,
                          static_cast<double>(n) + 0.5, theta);
  }
  total_ = total;
  for (uint64_t i = 0; i < head; ++i) cdf_[i] /= total;
}

uint64_t ZipfGenerator::Next(Random* rng) const {
  const double u = rng->NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it != cdf_.end()) return static_cast<uint64_t>(it - cdf_.begin());
  const uint64_t head = cdf_.size();
  if (n_ <= head) return n_ - 1;  // the original end-of-table fallback
  // Invert the tail integral: find x with mass(head + 0.5 -> x) = m.
  const double a = static_cast<double>(head) + 0.5;
  const double m = std::max(0.0, (u - cdf_.back()) * total_);
  double x;
  if (theta_ == 1.0) {
    x = a * std::exp(m);
  } else {
    const double base = std::pow(a, 1.0 - theta_) + m * (1.0 - theta_);
    // base can graze 0 from rounding when theta > 1 and u -> head_mass + tail.
    x = base > 0.0 ? std::pow(base, 1.0 / (1.0 - theta_))
                   : static_cast<double>(n_);
  }
  // Value v owns [v - 0.5, v + 0.5); rank = v - 1, clamped into the tail.
  const double v = std::floor(x + 0.5);
  const uint64_t rank =
      v < static_cast<double>(head) + 1.0 ? head
                                          : static_cast<uint64_t>(v) - 1;
  return std::min(rank, n_ - 1);
}

}  // namespace capd
