#include "common/bench_report.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

namespace capd {
namespace {

#ifndef CAPD_BUILD_TYPE
#define CAPD_BUILD_TYPE "unknown"
#endif

// Shortest decimal that round-trips to the same bits — deterministic and
// locale-independent (same rationale as report_json.cc).
std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no inf/nan
  char buf[64];
  const std::to_chars_result r = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, r.ptr);
}

std::string JsonString(const std::string& s) {
  std::ostringstream os;
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      case '\r':
        os << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char esc[8];
          std::snprintf(esc, sizeof(esc), "\\u%04x", c);
          os << esc;
        } else {
          os << c;
        }
    }
  }
  os << '"';
  return os.str();
}

}  // namespace

const char* MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kValue:
      return "value";
    case MetricKind::kTimeMs:
      return "time_ms";
  }
  return "value";
}

BenchReport::BenchReport(std::string bench_name)
    : bench_name_(std::move(bench_name)) {}

void BenchReport::AddCounter(const std::string& name, uint64_t v) {
  for (const BenchMetric& m : metrics_) {
    if (m.name == name) {
      std::fprintf(stderr, "BenchReport: duplicate metric '%s'\n",
                   name.c_str());
      std::abort();
    }
  }
  BenchMetric m;
  m.name = name;
  m.kind = MetricKind::kCounter;
  m.count = v;
  metrics_.push_back(std::move(m));
}

void BenchReport::AddValue(const std::string& name, double v) {
  AddCounter(name, 0);  // reuse the duplicate check + slot
  metrics_.back().kind = MetricKind::kValue;
  metrics_.back().value = v;
}

void BenchReport::AddTimeMs(const std::string& name, double v) {
  AddCounter(name, 0);
  metrics_.back().kind = MetricKind::kTimeMs;
  metrics_.back().value = v;
}

std::string BenchReport::ToJson() const {
  const char* sha = std::getenv("CAPD_GIT_SHA");
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema_version\": " << kBenchReportJsonVersion << ",\n";
  os << "  \"bench\": " << JsonString(bench_name_) << ",\n";
  os << "  \"meta\": {\n";
  os << "    \"rows\": " << rows_ << ",\n";
  os << "    \"seed\": " << seed_ << ",\n";
  os << "    \"threads\": " << threads_ << ",\n";
  os << "    \"build_type\": " << JsonString(CAPD_BUILD_TYPE) << ",\n";
  os << "    \"git_sha\": "
     << JsonString(sha != nullptr && *sha != '\0' ? sha : "unknown") << "\n";
  os << "  },\n";
  os << "  \"metrics\": [";
  for (size_t i = 0; i < metrics_.size(); ++i) {
    const BenchMetric& m = metrics_[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"name\": " << JsonString(m.name) << ", \"kind\": \""
       << MetricKindName(m.kind) << "\", \"value\": ";
    if (m.kind == MetricKind::kCounter) {
      os << m.count;
    } else {
      os << JsonNumber(m.value);
    }
    os << "}";
  }
  os << (metrics_.empty() ? "]\n" : "\n  ]\n");
  os << "}\n";
  return os.str();
}

bool BenchReport::WriteJsonFile(const std::string& path,
                                std::string* error) const {
  const std::string json = ToJson();
  if (path == "-") {
    std::fwrite(json.data(), 1, json.size(), stdout);
    return true;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    *error = "cannot open '" + path + "' for writing";
    return false;
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = std::fclose(f) == 0 && written == json.size();
  if (!ok) *error = "short write to '" + path + "'";
  return ok;
}

namespace {

bool ParseU64(const char* s, uint64_t* out) {
  if (s == nullptr || *s == '\0') return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = static_cast<uint64_t>(v);
  return true;
}

}  // namespace

bool ParseBenchFlags(int argc, char* const* argv, BenchFlags* flags,
                     std::string* error) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        *error = std::string("missing value for ") + flag;
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      flags->help = true;
    } else if (arg == "--rows") {
      const char* v = next("--rows");
      if (v == nullptr) return false;
      if (!ParseU64(v, &flags->rows) || flags->rows == 0) {
        *error = std::string("invalid --rows value '") + v + "'";
        return false;
      }
    } else if (arg == "--seed") {
      const char* v = next("--seed");
      if (v == nullptr) return false;
      if (!ParseU64(v, &flags->seed) || flags->seed == 0) {
        *error = std::string("invalid --seed value '") + v + "'";
        return false;
      }
    } else if (arg == "--threads") {
      const char* v = next("--threads");
      if (v == nullptr) return false;
      uint64_t t = 0;
      if (!ParseU64(v, &t) || t == 0 || t > 256) {
        *error = std::string("invalid --threads value '") + v + "'";
        return false;
      }
      flags->threads = static_cast<int>(t);
    } else if (arg == "--json") {
      const char* v = next("--json");
      if (v == nullptr) return false;
      flags->json_path = v;
    } else {
      *error = "unknown argument '" + arg + "'";
      return false;
    }
  }
  return true;
}

std::string BenchUsage(const std::string& prog) {
  return prog +
         " [--rows N] [--seed N] [--threads N] [--json PATH|-] [--help]";
}

}  // namespace capd
