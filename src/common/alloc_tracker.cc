#include "common/alloc_tracker.h"

#include <malloc.h>

#include <atomic>
#include <cstdlib>
#include <new>

// GCC pairs the replaced operator new's malloc with the replaced delete's
// free and flags the (correct) combination; the replacement pattern is
// standard, so silence the false positive for this TU.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {

// Constant-initialized: safe for allocations during static initialization.
std::atomic<unsigned long long> g_alloc_count{0};
std::atomic<long long> g_live_bytes{0};
std::atomic<long long> g_peak_bytes{0};

void TrackAlloc(void* p) {
  if (p == nullptr) return;
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const long long size = static_cast<long long>(malloc_usable_size(p));
  const long long now =
      g_live_bytes.fetch_add(size, std::memory_order_relaxed) + size;
  long long peak = g_peak_bytes.load(std::memory_order_relaxed);
  while (now > peak && !g_peak_bytes.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
}

void TrackFree(void* p) {
  if (p == nullptr) return;
  g_live_bytes.fetch_sub(static_cast<long long>(malloc_usable_size(p)),
                         std::memory_order_relaxed);
}

}  // namespace

void* operator new(size_t size) {
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  TrackAlloc(p);
  return p;
}

void* operator new[](size_t size) { return operator new(size); }

void operator delete(void* p) noexcept {
  TrackFree(p);
  std::free(p);
}

void operator delete[](void* p) noexcept { operator delete(p); }

void operator delete(void* p, size_t) noexcept { operator delete(p); }

void operator delete[](void* p, size_t) noexcept { operator delete(p); }

namespace capd {

uint64_t AllocCount() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

long long LiveAllocBytes() {
  return g_live_bytes.load(std::memory_order_relaxed);
}

long long PeakAllocBytes() {
  return g_peak_bytes.load(std::memory_order_relaxed);
}

long long ResetPeakAllocBytes() {
  const long long live = g_live_bytes.load(std::memory_order_relaxed);
  g_peak_bytes.store(live, std::memory_order_relaxed);
  return live;
}

}  // namespace capd
