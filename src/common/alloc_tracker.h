// Per-process allocation tracker. The companion .cc replaces the global
// operator new/delete with thin wrappers over malloc/free that maintain
// three atomic counters: cumulative allocation count, live bytes, and peak
// live bytes (via glibc's malloc_usable_size, so sizes reflect what the
// allocator actually handed out).
//
// Linking: capd_core is a static library, so the replacement operators are
// pulled into a binary only when that binary references a symbol from the
// tracker's translation unit — i.e. calling any accessor below activates
// tracking for the whole binary. Binaries that never call them keep the
// default allocator. Used by tests/scale_test.cc (O(sample) memory budget)
// and the allocs_per_row counters in bench_micro_codecs/bench_scale_sweep.
#ifndef CAPD_COMMON_ALLOC_TRACKER_H_
#define CAPD_COMMON_ALLOC_TRACKER_H_

#include <cstdint>

namespace capd {

// Cumulative number of operator-new allocations since process start.
uint64_t AllocCount();

// Bytes currently live (allocated minus freed, usable sizes).
long long LiveAllocBytes();

// High-water mark of LiveAllocBytes().
long long PeakAllocBytes();

// Resets the peak to the current live size (for peak-delta measurements)
// and returns the new peak.
long long ResetPeakAllocBytes();

}  // namespace capd

#endif  // CAPD_COMMON_ALLOC_TRACKER_H_
