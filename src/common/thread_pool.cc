#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "common/logging.h"

namespace capd {
namespace {

thread_local bool t_in_pool_worker = false;

}  // namespace

bool ThreadPool::InWorker() { return t_in_pool_worker; }

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads =
        static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  }
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    CAPD_CHECK(!stop_) << "Submit on a stopped ThreadPool";
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::WorkerLoop() {
  t_in_pool_worker = true;
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // exceptions land in the paired future
  }
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (pool == nullptr || pool->size() <= 1 || n == 1 ||
      ThreadPool::InWorker()) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<size_t> next{0};
  std::mutex err_mu;
  std::exception_ptr first_error;
  auto drain = [&] {
    size_t i;
    while ((i = next.fetch_add(1)) < n) {
      {
        std::lock_guard<std::mutex> lock(err_mu);
        if (first_error) return;  // fail fast: skip remaining iterations
      }
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  const size_t workers = std::min<size_t>(pool->size(), n);
  std::vector<std::future<void>> futures;
  futures.reserve(workers - 1);
  for (size_t t = 0; t + 1 < workers; ++t) {
    futures.push_back(pool->Submit(drain));
  }
  drain();  // the calling thread works too
  for (std::future<void>& f : futures) f.get();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace capd
