// Machine-readable bench reporting: every bench/ binary collects its
// metrics into a BenchReport and (under --json) emits one versioned JSON
// document that tools/repro merges into the suite-level BENCH_<tag>.json
// and tools/bench_diff compares across commits. Three metric kinds with
// different regression semantics:
//   counter — integer, deterministic at pinned (rows, seed, threads);
//             compared exactly by bench_diff.
//   value   — deterministic double (fit errors, improvement %, cost
//             pages); compared exactly by default.
//   time_ms — wall-clock; inherently noisy, compared with a relative
//             tolerance (or report-only on shared CI runners).
// The JSON shape is pinned by kBenchReportJsonVersion and by
// tools/bench_schema.py — bump the version on any shape change.
#ifndef CAPD_COMMON_BENCH_REPORT_H_
#define CAPD_COMMON_BENCH_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace capd {

// Value of the "schema_version" key emitted by BenchReport::ToJson.
inline constexpr int kBenchReportJsonVersion = 1;

enum class MetricKind { kCounter, kValue, kTimeMs };

// "counter" | "value" | "time_ms" — the strings bench_schema.py accepts.
const char* MetricKindName(MetricKind kind);

struct BenchMetric {
  std::string name;
  MetricKind kind = MetricKind::kValue;
  double value = 0.0;  // kValue / kTimeMs payload
  uint64_t count = 0;  // kCounter payload (kept integral end to end)
};

class BenchReport {
 public:
  explicit BenchReport(std::string bench_name);

  // Run metadata, echoed under "meta" so bench_diff can refuse to compare
  // runs taken at different scales or seeds.
  void set_rows(uint64_t rows) { rows_ = rows; }
  void set_seed(uint64_t seed) { seed_ = seed; }
  void set_threads(int threads) { threads_ = threads; }

  // Metric names must be unique within a report (bench_diff matches on
  // them); a duplicate is a bench bug and aborts loudly.
  void AddCounter(const std::string& name, uint64_t v);
  void AddValue(const std::string& name, double v);
  void AddTimeMs(const std::string& name, double v);

  const std::string& bench_name() const { return bench_name_; }
  const std::vector<BenchMetric>& metrics() const { return metrics_; }

  // Pretty-printed JSON (2-space indent, trailing newline). Deterministic:
  // metrics render in insertion order, doubles as shortest round-trip
  // decimals via std::to_chars (locale-independent), counters as plain
  // integers. Non-finite doubles become null. build_type comes from the
  // CAPD_BUILD_TYPE compile definition, git_sha from the CAPD_GIT_SHA
  // environment variable (tools/repro sets it); both default to "unknown".
  std::string ToJson() const;

  // Writes ToJson() to `path` ("-" = stdout). Returns false and sets
  // *error on I/O failure.
  bool WriteJsonFile(const std::string& path, std::string* error) const;

 private:
  std::string bench_name_;
  uint64_t rows_ = 0;
  uint64_t seed_ = 0;
  int threads_ = 1;
  std::vector<BenchMetric> metrics_;
};

// The uniform flag set every bench binary accepts:
//   --rows N      fact-table rows (0 / omitted = the bench's default)
//   --seed N      dataset seed (0 / omitted = the bench's default)
//   --threads N   worker threads for single-run benches (default 1)
//   --json PATH   write the BenchReport JSON to PATH ("-" = stdout)
//   --help        print usage and exit 0
struct BenchFlags {
  uint64_t rows = 0;
  uint64_t seed = 0;
  int threads = 1;
  std::string json_path;
  bool help = false;
};

// Parses argv into *flags. Returns false and sets *error (never null) on
// an unknown flag, a missing argument, or a non-numeric / zero-invalid
// value. Positional arguments are rejected — row counts travel via --rows.
bool ParseBenchFlags(int argc, char* const* argv, BenchFlags* flags,
                     std::string* error);

// One-line usage string for `prog`.
std::string BenchUsage(const std::string& prog);

}  // namespace capd

#endif  // CAPD_COMMON_BENCH_REPORT_H_
