#include "common/random.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"

namespace capd {

uint64_t Random::Next(uint64_t bound) {
  CAPD_CHECK_GT(bound, 0u);
  // Rejection-free modulo is fine for our (non-cryptographic) purposes.
  return engine_() % bound;
}

int64_t Random::Uniform(int64_t lo, int64_t hi) {
  CAPD_CHECK_LE(lo, hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(Next(span));
}

double Random::NextDouble() {
  // 53-bit mantissa for uniformity.
  return static_cast<double>(engine_() >> 11) * (1.0 / 9007199254740992.0);
}

std::vector<uint64_t> Random::SampleIndices(uint64_t n, uint64_t k) {
  CAPD_CHECK_LE(k, n);
  // Floyd's algorithm: O(k) expected, then sort for increasing order.
  std::vector<uint64_t> picked;
  picked.reserve(k);
  // For small k relative to n Floyd is ideal; for large k fall back to a
  // partial shuffle to avoid collision churn.
  if (k * 2 >= n) {
    std::vector<uint64_t> all(n);
    for (uint64_t i = 0; i < n; ++i) all[i] = i;
    for (uint64_t i = 0; i < k; ++i) {
      const uint64_t j = i + Next(n - i);
      std::swap(all[i], all[j]);
    }
    picked.assign(all.begin(), all.begin() + static_cast<ptrdiff_t>(k));
  } else {
    // Membership is the only thing consulted, so a hash set of the k picked
    // values keeps this branch O(k) memory too (the former
    // std::vector<bool> seen(n) silently made it O(n) — ~12 MB per draw at
    // n = 10^8). The engine consumption and the emitted indices are
    // identical to the bitmap version for any (seed, n, k).
    std::unordered_set<uint64_t> seen;
    seen.reserve(k);
    for (uint64_t j = n - k; j < n; ++j) {
      const uint64_t t = Next(j + 1);
      if (seen.insert(t).second) {
        picked.push_back(t);
      } else {
        seen.insert(j);
        picked.push_back(j);
      }
    }
  }
  std::sort(picked.begin(), picked.end());
  return picked;
}

}  // namespace capd
