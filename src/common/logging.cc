#include "common/logging.h"

#include <cstdio>
#include <cstdlib>

namespace capd {

void CheckFailed(const char* file, int line, const std::string& msg) {
  std::fprintf(stderr, "%s:%d: %s\n", file, line, msg.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace capd
