// Deterministic, seedable random number generation. All randomized code in
// the library takes a Random* so experiments are exactly reproducible.
#ifndef CAPD_COMMON_RANDOM_H_
#define CAPD_COMMON_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

namespace capd {

// Thin wrapper over a fixed-algorithm engine (mt19937_64) so the stream of
// values is stable across platforms and standard-library versions.
class Random {
 public:
  explicit Random(uint64_t seed) : engine_(seed) {}

  // Uniform integer in [0, bound). bound must be > 0.
  uint64_t Next(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive.
  int64_t Uniform(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  // Returns a uniformly random subset of indices [0, n) of size k (k <= n),
  // in increasing order. Used by the samplers.
  std::vector<uint64_t> SampleIndices(uint64_t n, uint64_t k);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace capd

#endif  // CAPD_COMMON_RANDOM_H_
