#include "common/math_util.h"

#include <cmath>

#include "common/logging.h"

namespace capd {

double NormalCdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double NormalProbBetween(double mean, double stddev, double lo, double hi) {
  CAPD_CHECK_LE(lo, hi);
  if (stddev <= 0.0) return (mean >= lo && mean <= hi) ? 1.0 : 0.0;
  return NormalCdf((hi - mean) / stddev) - NormalCdf((lo - mean) / stddev);
}

double ProbWithinTolerance(double bias, double variance, double e) {
  CAPD_CHECK_GT(e, 0.0);
  CAPD_CHECK_GE(variance, 0.0);
  const double mean = 1.0 + bias;
  const double stddev = std::sqrt(variance);
  return NormalProbBetween(mean, stddev, 1.0 / (1.0 + e), 1.0 + e);
}

double VarianceOfProduct(const std::vector<double>& means,
                         const std::vector<double>& variances) {
  CAPD_CHECK_EQ(means.size(), variances.size());
  double prod_full = 1.0;
  double prod_means_sq = 1.0;
  for (size_t i = 0; i < means.size(); ++i) {
    prod_full *= variances[i] + means[i] * means[i];
    prod_means_sq *= means[i] * means[i];
  }
  return prod_full - prod_means_sq;
}

double FitLogCoefficient(const std::vector<double>& xs,
                         const std::vector<double>& ys) {
  CAPD_CHECK_EQ(xs.size(), ys.size());
  CAPD_CHECK(!xs.empty());
  // Minimize sum (y_i - c*ln(x_i))^2  =>  c = sum(y ln x) / sum(ln x)^2.
  double num = 0.0;
  double den = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    const double lx = std::log(xs[i]);
    num += ys[i] * lx;
    den += lx * lx;
  }
  CAPD_CHECK_GT(den, 0.0);
  return num / den;
}

double FitLinearThroughOrigin(const std::vector<double>& xs,
                              const std::vector<double>& ys) {
  CAPD_CHECK_EQ(xs.size(), ys.size());
  CAPD_CHECK(!xs.empty());
  double num = 0.0;
  double den = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    num += ys[i] * xs[i];
    den += xs[i] * xs[i];
  }
  CAPD_CHECK_GT(den, 0.0);
  return num / den;
}

double Mean(const std::vector<double>& xs) {
  CAPD_CHECK(!xs.empty());
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) {
  const double m = Mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size()));
}

}  // namespace capd
