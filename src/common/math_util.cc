#include "common/math_util.h"

#include <cmath>

#include "common/logging.h"

namespace capd {

uint64_t RoundedFraction(uint64_t n, double f) {
  if (f <= 0.0) return 0;
  if (f >= 1.0) return n;
  if (n <= (1ull << 52)) {
    // Exact in double; identical to the historical n * f + 0.5 truncation,
    // which every pinned sample (and therefore every golden report)
    // depends on.
    return static_cast<uint64_t>(static_cast<double>(n) * f + 0.5);
  }
  // Near 2^53 and above, double drops low bits of n and the + 0.5 can be
  // absorbed entirely; x87 long double carries a 64-bit mantissa (and on
  // quad-precision platforms more), which covers uint64 exactly.
  const long double p =
      static_cast<long double>(n) * static_cast<long double>(f) + 0.5L;
  if (p >= static_cast<long double>(n)) return n;
  return static_cast<uint64_t>(p);
}

uint64_t Fnv1a64(const std::string& s) {
  uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ull;
  }
  return h;
}

double NormalCdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double NormalProbBetween(double mean, double stddev, double lo, double hi) {
  CAPD_CHECK_LE(lo, hi);
  if (stddev <= 0.0) return (mean >= lo && mean <= hi) ? 1.0 : 0.0;
  return NormalCdf((hi - mean) / stddev) - NormalCdf((lo - mean) / stddev);
}

double ProbWithinTolerance(double bias, double variance, double e) {
  CAPD_CHECK_GT(e, 0.0);
  CAPD_CHECK_GE(variance, 0.0);
  const double mean = 1.0 + bias;
  const double stddev = std::sqrt(variance);
  return NormalProbBetween(mean, stddev, 1.0 / (1.0 + e), 1.0 + e);
}

double VarianceOfProduct(const std::vector<double>& means,
                         const std::vector<double>& variances) {
  CAPD_CHECK_EQ(means.size(), variances.size());
  double prod_full = 1.0;
  double prod_means_sq = 1.0;
  for (size_t i = 0; i < means.size(); ++i) {
    prod_full *= variances[i] + means[i] * means[i];
    prod_means_sq *= means[i] * means[i];
  }
  return prod_full - prod_means_sq;
}

double FitLogCoefficient(const std::vector<double>& xs,
                         const std::vector<double>& ys) {
  CAPD_CHECK_EQ(xs.size(), ys.size());
  CAPD_CHECK(!xs.empty());
  // Minimize sum (y_i - c*ln(x_i))^2  =>  c = sum(y ln x) / sum(ln x)^2.
  double num = 0.0;
  double den = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    const double lx = std::log(xs[i]);
    num += ys[i] * lx;
    den += lx * lx;
  }
  CAPD_CHECK_GT(den, 0.0);
  return num / den;
}

double FitLinearThroughOrigin(const std::vector<double>& xs,
                              const std::vector<double>& ys) {
  CAPD_CHECK_EQ(xs.size(), ys.size());
  CAPD_CHECK(!xs.empty());
  double num = 0.0;
  double den = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    num += ys[i] * xs[i];
    den += xs[i] * xs[i];
  }
  CAPD_CHECK_GT(den, 0.0);
  return num / den;
}

double Mean(const std::vector<double>& xs) {
  CAPD_CHECK(!xs.empty());
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) {
  const double m = Mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size()));
}

}  // namespace capd
