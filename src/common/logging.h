// Minimal CHECK/LOG facilities. The library is exception-free (Google style);
// invariant violations abort with a diagnostic.
#ifndef CAPD_COMMON_LOGGING_H_
#define CAPD_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace capd {

// Terminates the process after printing `msg` with source location.
[[noreturn]] void CheckFailed(const char* file, int line, const std::string& msg);

namespace internal_logging {

// Accumulates a failure message; used by the CAPD_CHECK macros.
class CheckMessage {
 public:
  CheckMessage(const char* file, int line, const char* expr)
      : file_(file), line_(line) {
    stream_ << "CHECK failed: " << expr;
  }

  CheckMessage(const CheckMessage&) = delete;
  CheckMessage& operator=(const CheckMessage&) = delete;

  template <typename T>
  CheckMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

  [[noreturn]] ~CheckMessage() { CheckFailed(file_, line_, stream_.str()); }

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace capd

// CHECK with streamable extra context: CAPD_CHECK(x > 0) << "x=" << x;
#define CAPD_CHECK(cond)                                               \
  if (cond) {                                                          \
  } else /* NOLINT */                                                  \
    ::capd::internal_logging::CheckMessage(__FILE__, __LINE__, #cond) << " "

#define CAPD_CHECK_EQ(a, b) CAPD_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define CAPD_CHECK_NE(a, b) CAPD_CHECK((a) != (b))
#define CAPD_CHECK_LT(a, b) CAPD_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define CAPD_CHECK_LE(a, b) CAPD_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define CAPD_CHECK_GT(a, b) CAPD_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define CAPD_CHECK_GE(a, b) CAPD_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#endif  // CAPD_COMMON_LOGGING_H_
