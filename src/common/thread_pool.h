// Fixed-size thread pool plus ParallelFor/ParallelMap helpers. Built for
// the batch size-estimation engine: many independent, uneven tasks (index
// builds on samples) distributed via an atomic work counter, no work
// stealing. The calling thread participates in ParallelFor, and nested
// ParallelFor calls from inside a worker run inline, so the pool can never
// deadlock on its own tasks.
#ifndef CAPD_COMMON_THREAD_POOL_H_
#define CAPD_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace capd {

class ThreadPool {
 public:
  // num_threads <= 0 means hardware concurrency.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  // Enqueues fn; the future captures its exception if it throws.
  std::future<void> Submit(std::function<void()> fn);

  // True when called from one of this process's pool worker threads.
  static bool InWorker();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

// Runs fn(0..n-1) across the pool, the calling thread included. Serial
// (and allocation-free) when pool is null, has a single thread, n <= 1, or
// the caller is already a pool worker. Rethrows the first exception any
// iteration threw after all iterations finish or are skipped.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn);

// ParallelFor that collects fn(i) into a vector, in index order. T must be
// default-constructible; results are identical to the serial loop.
template <typename T, typename Fn>
std::vector<T> ParallelMap(ThreadPool* pool, size_t n, Fn&& fn) {
  std::vector<T> out(n);
  ParallelFor(pool, n, [&](size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace capd

#endif  // CAPD_COMMON_THREAD_POOL_H_
