// Statistical helpers used by the size-estimation error model (Section 5.1):
// normal CDF, probability that a normally-distributed relative estimate lies
// within a tolerance band, Goodman's variance of a product of independent
// random variables, and least-squares fits used by the Appendix-C analysis.
#ifndef CAPD_COMMON_MATH_UTIL_H_
#define CAPD_COMMON_MATH_UTIL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace capd {

// round(n * f) for a fraction f in [0, 1], overflow- and precision-safe for
// the whole uint64 range. For n <= 2^52 this is bit-identical to the
// classic static_cast<uint64_t>(n * f + 0.5); above that (where double
// cannot even represent n exactly and n * f + 0.5 silently loses the
// rounding bit) it switches to extended precision and clamps to n. f < 0
// maps to 0 and f > 1 to n, so callers need no pre-clamping.
uint64_t RoundedFraction(uint64_t n, double f);

// FNV-1a: a fixed, platform-independent string hash used wherever a string
// must map to a reproducible seed (per-key sample seeds, per-table stats
// seeds). Never change this: sample contents are pinned by it.
uint64_t Fnv1a64(const std::string& s);

// Standard normal CDF.
double NormalCdf(double z);

// P(lo <= X <= hi) for X ~ N(mean, stddev^2). Degenerates correctly for
// stddev == 0 (point mass at mean).
double NormalProbBetween(double mean, double stddev, double lo, double hi);

// The paper's accuracy criterion: X is the estimated/true size ratio with
// E[X] = 1 + bias and Var[X] = variance; returns P(1/(1+e) <= X <= 1+e).
double ProbWithinTolerance(double bias, double variance, double e);

// Goodman (1962): for independent X_i with means m_i and variances v_i,
// Var(prod X_i) = prod(v_i + m_i^2) - prod(m_i^2).
// Inputs are parallel vectors of means and variances.
double VarianceOfProduct(const std::vector<double>& means,
                         const std::vector<double>& variances);

// Least-squares fit of y = c * ln(x) through the data (no intercept), the
// form used in Table 2 of the paper. Returns c.
double FitLogCoefficient(const std::vector<double>& xs,
                         const std::vector<double>& ys);

// Least-squares fit of y = c * x through the origin (Table 3 form).
double FitLinearThroughOrigin(const std::vector<double>& xs,
                              const std::vector<double>& ys);

// Sample mean and (population) standard deviation.
double Mean(const std::vector<double>& xs);
double StdDev(const std::vector<double>& xs);

}  // namespace capd

#endif  // CAPD_COMMON_MATH_UTIL_H_
