// SampleCF (Section 2.2 / [11]) with the Section 4.1 extension: one shared
// uniform sample per table (via SampleManager), reused for every index on
// that table; filtered samples for partial indexes; MV samples supplied by
// a pluggable SampleSource (implemented over join synopses in src/mv).
#ifndef CAPD_ESTIMATOR_SAMPLE_CF_H_
#define CAPD_ESTIMATOR_SAMPLE_CF_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "catalog/database.h"
#include "index/index_builder.h"
#include "stats/sampler.h"

namespace capd {

// Resolves the sample (and full-size scaling info) for a named object.
// Base tables are served from the SampleManager; MVs from synopsis-derived
// MV samples (src/mv).
class SampleSource {
 public:
  virtual ~SampleSource() = default;

  // The sample table for `object` at sampling fraction f.
  virtual const Table& Sample(const std::string& object, double f) = 0;
  // Estimated number of tuples in the full object (for MVs this is the
  // Adaptive-Estimator prediction, Appendix B.3).
  virtual double FullTuples(const std::string& object) = 0;
  // Schema of the object (MVs may exist only as samples, not in the
  // catalog, so schema resolution goes through the source).
  virtual const Schema& ObjectSchema(const std::string& object) = 0;
};

// SampleSource over base tables.
class TableSampleSource : public SampleSource {
 public:
  TableSampleSource(const Database& db, SampleManager* samples)
      : db_(&db), samples_(samples) {}

  const Table& Sample(const std::string& object, double f) override {
    return samples_->GetSample(db_->table(object), f);
  }
  double FullTuples(const std::string& object) override {
    return static_cast<double>(db_->table(object).num_rows());
  }
  const Schema& ObjectSchema(const std::string& object) override {
    return db_->table(object).schema();
  }

 private:
  const Database* db_;
  SampleManager* samples_;
};

struct SampleCfResult {
  double cf = 1.0;           // compressed/uncompressed size ratio on sample
  double est_bytes = 0.0;    // estimated full compressed size
  double est_tuples = 0.0;   // estimated full entry count
  double est_uncompressed_bytes = 0.0;
  // Estimated full size under plain null suppression. For ORD-DEP methods
  // this isolates the order-independent share of the reduction, which the
  // ORD-DEP deduction must NOT rescale by the fragmentation ratio.
  double est_ns_bytes = 0.0;
  // The paper's estimation-cost metric: uncompressed data pages of the
  // index built on the sample (Section 5.1).
  double cost_pages = 0.0;
};

class SampleCfEstimator {
 public:
  SampleCfEstimator(const Database& db, SampleSource* source)
      : db_(&db), source_(source) {}

  // Runs SampleCF for `def` at sampling fraction f: builds the index (and
  // its uncompressed twin) on the object's sample and scales up.
  SampleCfResult Estimate(const IndexDef& def, double f);

  // SampleCF for several compression variants of ONE structure (all defs
  // must share StructureSignature()): the materialized sample rows, the
  // uncompressed reference pack and the null-suppression pack are computed
  // once and shared, so a group of N variants costs one materialize +
  // one plain pack + N compressed packs instead of N of each. Results are
  // bit-identical to calling Estimate() per def. Output in input order.
  std::vector<SampleCfResult> EstimateGroup(const std::vector<IndexDef>& defs,
                                            double f);

  // Executor of DeductionType::kSortOrder: a sibling sort order of an
  // already-sampled structure re-packs the same (cached) sample under its
  // own key order — bit-for-bit identical to a fresh Estimate(), but with
  // cost_pages forced to 0 because the donor's build paid the sample cost.
  SampleCfResult EstimateSortOrderDeduced(const IndexDef& def, double f);

  // Deterministic uncompressed full size (no sampling needed: fixed row
  // width). `tuples` defaults to the full object row count adjusted by the
  // partial-index filter measured on the sample.
  double UncompressedFullBytes(const IndexDef& def, double tuples) const;
  double EstimateFullTuples(const IndexDef& def, double f);

  // Cost (in pages) that Estimate() would incur, without running it.
  double PredictCostPages(const IndexDef& def, double f);

 private:
  const Database* db_;
  SampleSource* source_;
};

// Physically stored schema of `def` over a base schema (keys, then includes
// or remaining columns, plus the row locator for secondary indexes).
Schema StoredSchemaFor(const IndexDef& def, const Schema& base);

}  // namespace capd

#endif  // CAPD_ESTIMATOR_SAMPLE_CF_H_
