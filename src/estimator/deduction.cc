#include "estimator/deduction.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "common/logging.h"
#include "index/index_builder.h"
#include "stats/distinct_estimator.h"

namespace capd {

double LocatorReductionPerTuple(double n) {
  if (n <= 0) return 0.0;
  // Locator i in 1..n encodes as zigzag(i) = 2i, big-endian in 8 bytes.
  // NS saves (leading_zero_bytes - 1) bytes per field. Values needing b
  // payload bytes are those with 2i < 256^b, i.e. i < 256^b / 2.
  double total_saved = 0.0;
  double prev_cap = 0.0;
  for (int b = 1; b <= 8; ++b) {
    const double cap = std::min(n, std::pow(256.0, b) / 2.0 - 1.0);
    if (cap <= prev_cap) continue;
    const double count = cap - prev_cap;
    const double saved = 8.0 - b - 1.0;  // lz-1 where lz = 8-b
    total_saved += count * std::max(0.0, saved);
    prev_cap = cap;
    if (cap >= n) break;
  }
  return total_saved / n;
}

double DeductionEngine::EstimateDistinct(
    const std::string& object, const std::vector<std::string>& cols) const {
  std::ostringstream key;
  key << object << "|";
  for (const std::string& c : cols) key << c << ",";
  const auto it = distinct_cache_.find(key.str());
  if (it != distinct_cache_.end()) return it->second;

  const Table& sample = source_->Sample(object, f_);
  std::vector<size_t> positions;
  positions.reserve(cols.size());
  for (const std::string& c : cols) {
    positions.push_back(sample.schema().ColumnIndex(c));
  }
  std::map<std::string, uint64_t> counts;
  for (const Row& row : sample.rows()) {
    std::string combo;
    for (size_t p : positions) {
      combo.append(row[p].ToString());
      combo.push_back('\x1f');
    }
    ++counts[combo];
  }
  std::vector<uint64_t> class_counts;
  class_counts.reserve(counts.size());
  for (const auto& [v, c] : counts) class_counts.push_back(c);
  const FrequencyStats freq = BuildFrequencyStats(class_counts);
  const uint64_t d = counts.size();
  const uint64_t r = sample.num_rows();
  const uint64_t n =
      static_cast<uint64_t>(std::max(1.0, source_->FullTuples(object)));
  const double est = std::max(1.0, AdaptiveEstimate(freq, d, r, n));
  distinct_cache_[key.str()] = est;
  return est;
}

double DeductionEngine::TuplesPerPage(const IndexDef& idx) const {
  const Table& sample = source_->Sample(idx.object, f_);
  IndexBuilder builder(sample);
  const Schema stored = builder.StoredSchema(idx);
  const double row_bytes = stored.RowWidth() + kRowOverhead;
  return std::max(1.0, std::floor(kPageCapacity / row_bytes));
}

double DeductionEngine::FragmentationF(const IndexDef& idx,
                                       const std::string& column,
                                       double tuples) const {
  const Table& sample = source_->Sample(idx.object, f_);
  const std::vector<std::string> ordered = idx.StoredColumns(sample.schema());
  // Columns preceding `column` in this index's sort order, plus the column.
  std::vector<std::string> prefix;
  for (const std::string& c : ordered) {
    prefix.push_back(c);
    if (c == column) break;
  }
  CAPD_CHECK(!prefix.empty() && prefix.back() == column)
      << "column " << column << " not stored in " << idx.ToString();

  const double T = TuplesPerPage(idx);
  // Average run length of `column` in this index: N / |prefix ∪ column|
  // (the paper's L(I_X, Y) via cardinality statistics). Only key columns
  // actually order the index; non-key trailing columns inherit the full
  // key's fragmentation, which the prefix formulation captures because the
  // keys precede them in StoredColumns order.
  const double combo = EstimateDistinct(idx.object, prefix);
  const double L = std::max(1.0, tuples / std::max(1.0, combo));

  double dv;
  if (L > 1.0) {
    dv = T / L;  // runs per page
  } else {
    const double y = EstimateDistinct(idx.object, {column});
    dv = y * (1.0 - std::pow(1.0 - 1.0 / y, T));
  }
  dv = std::min(std::max(dv, 1.0), T);
  return (T - dv) / T;
}

double DeductionEngine::DeduceColExt(const IndexDef& target,
                                     double target_uncompressed_bytes,
                                     double target_tuples,
                                     const std::vector<KnownSize>& children) const {
  CAPD_CHECK(!children.empty());
  const Table& sample = source_->Sample(target.object, f_);
  const Schema& base = sample.schema();
  const bool ord_dep = IsOrderDependent(target.compression);

  double total_reduction = 0.0;
  for (const KnownSize& child : children) {
    // Scale the child's absolute reduction to the target's tuple count
    // (identical filters mean identical counts; the scale guards drift
    // between estimates).
    const double scale =
        child.tuples > 0 ? target_tuples / child.tuples : 1.0;
    double r = (child.uncompressed_bytes - child.compressed_bytes) * scale;
    if (r < 0) r = 0;

    if (ord_dep) {
      // Only the dictionary/run share of the reduction fragments with
      // order; the NS share is order independent and carries over intact
      // ("the space saving of compression is linear to the number of
      // values replaced by the dictionary", Section 4.2).
      double r_ns = 0.0;
      if (child.ns_bytes > 0.0) {
        r_ns = std::max(0.0, (child.uncompressed_bytes - child.ns_bytes) * scale);
        r_ns = std::min(r_ns, r);
      }
      double r_dict = r - r_ns;
      // Rescale the dictionary share by the width-weighted mean of
      // per-column F ratios: the child saw each column's duplicates
      // contiguous; in the target the column may be fragmented by
      // preceding columns.
      double num = 0.0;
      double den = 0.0;
      for (const std::string& col : child.def.StoredColumns(base)) {
        if (col == "__rowid") continue;
        const double w = base.column(base.ColumnIndex(col)).width;
        num += w * FragmentationF(target, col, target_tuples);
        den += w * FragmentationF(child.def, col, child.tuples > 0
                                                      ? child.tuples
                                                      : target_tuples);
      }
      if (den > 1e-9) {
        r_dict *= num / den;
      } else {
        r_dict = 0.0;  // child had nothing order-dependent to save
      }
      r = r_ns + r_dict;
    }
    total_reduction += r;
  }

  // Row locators are high-entropy page:slot pointers (see index_builder),
  // so each child's locator contributes ~zero reduction and no locator
  // correction is needed. The per-row slot overhead is different: every
  // compressed format drops the kRowOverhead slot bytes, so each child's R
  // includes that saving — it must be counted once, not once per child.
  if (children.size() > 1) {
    total_reduction -= static_cast<double>(children.size() - 1) *
                       static_cast<double>(kRowOverhead) * target_tuples;
  }

  // A compressed index never usefully exceeds its uncompressed size, and we
  // floor at one byte per tuple plus page framing.
  const double floor_bytes =
      std::max(static_cast<double>(kPageSize), target_tuples * 1.0);
  return std::max(floor_bytes,
                  std::min(target_uncompressed_bytes,
                           target_uncompressed_bytes - total_reduction));
}

}  // namespace capd
