#include "estimator/error_model.h"

#include <cmath>

#include "common/logging.h"
#include "common/math_util.h"

namespace capd {

ErrorStats ComposeErrors(const std::vector<ErrorStats>& terms) {
  std::vector<double> means;
  std::vector<double> variances;
  means.reserve(terms.size());
  variances.reserve(terms.size());
  double mean = 1.0;
  for (const ErrorStats& t : terms) {
    means.push_back(1.0 + t.bias);
    variances.push_back(t.variance);
    mean *= 1.0 + t.bias;
  }
  ErrorStats out;
  out.bias = mean - 1.0;
  out.variance = VarianceOfProduct(means, variances);
  if (std::isnan(out.bias) || std::isnan(out.variance) ||
      std::isinf(out.bias)) {
    std::string dump;
    for (const ErrorStats& t : terms) {
      dump += "(b=" + std::to_string(t.bias) + ",v=" + std::to_string(t.variance) + ") ";
    }
    CAPD_CHECK(false) << "bad composition from " << terms.size()
                      << " terms: " << dump;
  }
  return out;
}

double ErrorWithinProbability(const ErrorStats& err, double e) {
  CAPD_CHECK(!std::isnan(err.bias) && !std::isnan(err.variance))
      << "NaN composed error: bias=" << err.bias << " var=" << err.variance
      << " e=" << e;
  return ProbWithinTolerance(err.bias, err.variance, e);
}

ErrorStats ErrorModel::SampleCf(CompressionKind kind, double f) const {
  CAPD_CHECK_GT(f, 0.0);
  CAPD_CHECK_LE(f, 1.0);
  ErrorStats out;
  const double lnf = -std::log(f);  // >= 0, zero at f=1
  if (IsOrderDependent(kind)) {
    // Note: the paper's SQL Server implementation underestimates (negative
    // bias); ours overestimates — sample pages hold the same row count but
    // sparser duplicates, so the local dictionary helps less than on the
    // full index. Same |bias| ~ c*ln(f) shape, opposite sign (our Fig. 9).
    out.bias = c_.samplecf_ld_bias * lnf;
    const double sd = c_.samplecf_ld_stddev * lnf;
    out.variance = sd * sd;
  } else {
    out.bias = c_.samplecf_ns_bias * lnf;
    const double sd = c_.samplecf_ns_stddev * lnf;
    out.variance = sd * sd;
  }
  return out;
}

ErrorStats ErrorModel::ColSet(CompressionKind kind) const {
  CAPD_CHECK(!IsOrderDependent(kind))
      << "ColSet deduction applies to order-independent compression only";
  ErrorStats out;
  out.bias = c_.colset_bias;
  out.variance = c_.colset_stddev * c_.colset_stddev;
  return out;
}

ErrorStats ErrorModel::ColExt(CompressionKind kind, int a) const {
  CAPD_CHECK_GE(a, 1);
  ErrorStats out;
  const double da = static_cast<double>(a);
  if (IsOrderDependent(kind)) {
    out.bias = c_.colext_ld_bias * da;
    const double sd = c_.colext_ld_stddev * da;
    out.variance = sd * sd;
  } else {
    out.bias = c_.colext_ns_bias * da;
    const double sd = c_.colext_ns_stddev * da;
    out.variance = sd * sd;
  }
  return out;
}

}  // namespace capd
