// Deduction methods (Section 4.2): infer a compressed index's size from
// indexes whose sizes are already known, at zero sampling cost.
//   - ColSet (ORD-IND): same column set + same method => same size.
//   - ColExt (ORD-IND): reductions are per-column and order-insensitive, so
//     R(I_AB) = R(I_A) + R(I_B) and Size(Ic_AB) = Size(I_AB) - sum R.
//   - ColExt (ORD-DEP): trailing columns fragment — the reduction each
//     child contributes is rescaled by F(I,y) = (T - DV(I,y))/T, with the
//     average per-page distinct count DV derived from run lengths
//     L(I,y) = N / |prefix-of-y ∪ y| (cardinalities estimated from the
//     shared sample via the Adaptive Estimator).
// Two engineering details documented here because the paper glosses them:
// (1) non-clustered children each carry a row locator whose reduction would
//     be double-counted; we subtract the analytically-known locator
//     reduction (a-1) times. (2) multi-column children scale by a width-
//     weighted mean of per-column F ratios.
#ifndef CAPD_ESTIMATOR_DEDUCTION_H_
#define CAPD_ESTIMATOR_DEDUCTION_H_

#include <map>
#include <string>
#include <vector>

#include "catalog/database.h"
#include "estimator/sample_cf.h"
#include "index/index_def.h"

namespace capd {

// A size fact about an index, produced by SampleCF, an earlier deduction,
// or the catalog (existing indexes).
struct KnownSize {
  IndexDef def;
  double compressed_bytes = 0.0;
  double uncompressed_bytes = 0.0;
  // Size under plain NS (order-independent). For ORD-DEP children this
  // splits the reduction into the NS share (kept as-is) and the
  // dictionary share (rescaled by fragmentation). Zero means unknown, in
  // which case the whole reduction is rescaled (conservative).
  double ns_bytes = 0.0;
  double tuples = 0.0;
};

// Average NS bytes saved per row-locator field when locator values are
// 1..n (zigzag big-endian with a 1-byte NS header).
double LocatorReductionPerTuple(double n);

class DeductionEngine {
 public:
  // `f` is the sampling fraction used for cardinality estimates.
  DeductionEngine(const Database& db, SampleSource* source, double f)
      : db_(&db), source_(source), f_(f) {}

  // ColSet: the donor has the same stored column set and compression.
  double DeduceColSet(const KnownSize& donor) const {
    return donor.compressed_bytes;
  }

  // ColExt: children must partition the target's stored key/include column
  // set (each child an index on the same object with the same compression
  // and filter). `target_uncompressed_bytes`/`target_tuples` come from the
  // deterministic uncompressed-size calculation.
  double DeduceColExt(const IndexDef& target, double target_uncompressed_bytes,
                      double target_tuples,
                      const std::vector<KnownSize>& children) const;

  // Estimated distinct count of a column combination in the full object,
  // from sample frequency statistics + Adaptive Estimator. Memoized.
  double EstimateDistinct(const std::string& object,
                          const std::vector<std::string>& cols) const;

 private:
  // F(I, y) for index I with ordered stored columns `ordered` over object
  // rows; T = uncompressed tuples/page of I.
  double FragmentationF(const IndexDef& idx, const std::string& column,
                        double tuples) const;
  double TuplesPerPage(const IndexDef& idx) const;

  const Database* db_;
  SampleSource* source_;
  double f_;
  mutable std::map<std::string, double> distinct_cache_;
};

}  // namespace capd

#endif  // CAPD_ESTIMATOR_DEDUCTION_H_
