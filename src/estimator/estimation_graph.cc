#include "estimator/estimation_graph.h"

#include <algorithm>
#include <limits>
#include <set>

#include "common/logging.h"

namespace capd {
namespace {

// Stored columns minus the implicit row locator.
std::vector<std::string> UserColumns(const IndexDef& def, const Schema& base) {
  std::vector<std::string> cols = def.StoredColumns(base);
  cols.erase(std::remove(cols.begin(), cols.end(), "__rowid"), cols.end());
  return cols;
}

bool IsSubset(const std::vector<std::string>& a,
              const std::vector<std::string>& b) {
  for (const std::string& x : a) {
    if (std::find(b.begin(), b.end(), x) == b.end()) return false;
  }
  return true;
}

}  // namespace

EstimationGraph::EstimationGraph(const Database& db, SampleSource* source,
                                 const ErrorModel& model)
    : db_(&db), source_(source), model_(model), sampler_(db, source) {}

std::optional<size_t> EstimationGraph::FindNode(
    const std::string& signature) const {
  const auto it = by_signature_.find(signature);
  if (it == by_signature_.end()) return std::nullopt;
  return it->second;
}

size_t EstimationGraph::AddNode(const IndexDef& def, bool is_target) {
  const std::string sig = def.Signature();
  if (std::optional<size_t> existing = FindNode(sig); existing.has_value()) {
    if (is_target) nodes_[*existing].is_target = true;
    return *existing;
  }
  IndexNode node;
  node.def = def;
  node.is_target = is_target;
  node.is_existing = db_->IsExistingIndex(def);
  node.num_stored_columns =
      UserColumns(def, source_->ObjectSchema(def.object)).size();
  if (node.is_existing) node.state = NodeState::kSampled;  // free + exact
  nodes_.push_back(std::move(node));
  by_signature_[sig] = nodes_.size() - 1;
  return nodes_.size() - 1;
}

void EstimationGraph::AddTargets(const std::vector<IndexDef>& targets) {
  std::vector<size_t> ids;
  ids.reserve(targets.size());
  for (const IndexDef& t : targets) {
    CAPD_CHECK(t.compression != CompressionKind::kNone)
        << "only compressed indexes need size estimation: " << t.ToString();
    ids.push_back(AddNode(t, /*is_target=*/true));
  }
  // Helper singleton nodes + deductions. Do this after all targets exist so
  // subset-target deductions are discoverable. New helper nodes appended
  // during generation are singletons and need no deductions of their own.
  const size_t initial = nodes_.size();
  for (size_t i = 0; i < initial; ++i) {
    if (!nodes_[i].deductions_generated) {
      nodes_[i].deductions_generated = true;
      GenerateDeductionsFor(i);
    }
  }
}

void EstimationGraph::GenerateDeductionsFor(size_t node_id) {
  const IndexDef def = nodes_[node_id].def;  // copy: nodes_ may reallocate
  const Schema base = source_->ObjectSchema(def.object);
  const std::vector<std::string> cols = UserColumns(def, base);
  if (cols.size() <= 1) return;  // singleton: nothing to extrapolate from

  // --- ColSet: any other node with the same column set, for ORD-IND. ---
  if (!IsOrderDependent(def.compression)) {
    const std::string colset_sig = def.ColumnSetSignature(base);
    for (size_t j = 0; j < nodes_.size(); ++j) {
      if (j == node_id) continue;
      const IndexDef& other = nodes_[j].def;
      if (other.compression != def.compression) continue;
      if (other.ColumnSetSignature(base) != colset_sig) continue;
      DeductionNode d;
      d.type = DeductionType::kColSet;
      d.parent = node_id;
      d.children = {j};
      deductions_.push_back(d);
      deductions_by_parent_[node_id].push_back(deductions_.size() - 1);
    }
  }

  // --- SortOrder: same column set under a different key order, ORD-DEP
  // only. The donor's sampled build leaves the materialized sample rows in
  // the shared caches, so this node's exact-on-sample recompute costs no
  // further sample I/O. Donor pairs are symmetric; the greedy ready-check
  // (child must already be known) breaks the tie, so the first member of a
  // sort-order clique always samples. ---
  if (enable_sort_order_ && IsOrderDependent(def.compression)) {
    const std::string colset_sig = def.ColumnSetSignature(base);
    for (size_t j = 0; j < nodes_.size(); ++j) {
      if (j == node_id) continue;
      const IndexDef& other = nodes_[j].def;
      if (other.compression != def.compression) continue;
      if (other.ColumnSetSignature(base) != colset_sig) continue;
      DeductionNode d;
      d.type = DeductionType::kSortOrder;
      d.parent = node_id;
      d.children = {j};
      deductions_.push_back(d);
      deductions_by_parent_[node_id].push_back(deductions_.size() - 1);
    }
  }

  // --- ColExt: all-singletons partition. ---
  auto singleton_def = [&](const std::string& col) {
    IndexDef s;
    s.object = def.object;
    s.key_columns = {col};
    s.clustered = false;
    s.compression = def.compression;
    s.filter = def.filter;
    return s;
  };
  {
    DeductionNode d;
    d.type = DeductionType::kColExt;
    d.parent = node_id;
    for (const std::string& col : cols) {
      d.children.push_back(AddNode(singleton_def(col), /*is_target=*/false));
    }
    deductions_.push_back(d);
    deductions_by_parent_[node_id].push_back(deductions_.size() - 1);
  }

  // --- ColExt: subset-node + singletons-of-remainder partitions. ---
  for (size_t j = 0; j < nodes_.size(); ++j) {
    if (j == node_id) continue;
    const IndexDef& other = nodes_[j].def;
    if (other.object != def.object) continue;
    if (other.compression != def.compression) continue;
    if (other.clustered) continue;  // clustered donors only via ColSet
    const bool same_filter =
        (!other.filter.has_value() && !def.filter.has_value()) ||
        (other.filter.has_value() && def.filter.has_value() &&
         other.filter->ToString() == def.filter->ToString());
    if (!same_filter) continue;
    const std::vector<std::string> other_cols = UserColumns(other, base);
    if (other_cols.size() <= 1 || other_cols.size() >= cols.size()) continue;
    if (!IsSubset(other_cols, cols)) continue;
    DeductionNode d;
    d.type = DeductionType::kColExt;
    d.parent = node_id;
    d.children.push_back(j);
    for (const std::string& col : cols) {
      if (std::find(other_cols.begin(), other_cols.end(), col) ==
          other_cols.end()) {
        d.children.push_back(AddNode(singleton_def(col), /*is_target=*/false));
      }
    }
    deductions_.push_back(d);
    deductions_by_parent_[node_id].push_back(deductions_.size() - 1);
  }
}

void EstimationGraph::RefreshCosts(double f, ThreadPool* pool) {
  // Each probe scans the object's sample once (filter hit counting); the
  // probes are independent and the shared sample caches are thread-safe,
  // so they batch across the pool. Writes go to disjoint nodes. Once a
  // cancel fires, remaining probes are skipped (cost 0) — the plan built
  // from them is discarded by the cancelled caller anyway.
  ParallelFor(pool, nodes_.size(), [&](size_t i) {
    IndexNode& node = nodes_[i];
    node.cost_pages = node.is_existing || Cancelled()
                          ? 0.0
                          : sampler_.PredictCostPages(node.def, f);
  });
}

ErrorStats EstimationGraph::DeductionError(
    const DeductionNode& d, size_t parent, double f,
    std::vector<ErrorStats> child_terms) const {
  if (d.type == DeductionType::kSortOrder) {
    // Executed as a SampleCF recompute on the donor's sample: accuracy is
    // exactly a sampled run's, independent of the donor's own error.
    return model_.SampleCf(nodes_[parent].def.compression, f);
  }
  child_terms.push_back(d.type == DeductionType::kColSet
                            ? model_.ColSet(nodes_[parent].def.compression)
                            : model_.ColExt(nodes_[parent].def.compression,
                                            static_cast<int>(d.children.size())));
  return ComposeErrors(child_terms);
}

ErrorStats EstimationGraph::NodeError(size_t i, double f) const {
  const IndexNode& node = nodes_[i];
  if (node.is_existing) return ErrorStats{};  // exact
  switch (node.state) {
    case NodeState::kSampled:
      return model_.SampleCf(node.def.compression, f);
    case NodeState::kDeduced: {
      CAPD_CHECK_GE(node.chosen_deduction, 0);
      const DeductionNode& d = deductions_[node.chosen_deduction];
      std::vector<ErrorStats> terms;
      if (d.type != DeductionType::kSortOrder) {
        for (size_t c : d.children) terms.push_back(NodeError(c, f));
      }
      return DeductionError(d, i, f, std::move(terms));
    }
    case NodeState::kNone:
      break;
  }
  // Unknown: effectively infinite error.
  return ErrorStats{0.0, 1e9};
}

void EstimationGraph::ResetStates() {
  for (IndexNode& node : nodes_) {
    node.state = node.is_existing ? NodeState::kSampled : NodeState::kNone;
    node.chosen_deduction = -1;
  }
}

double EstimationGraph::TotalSampledCost() const {
  double cost = 0.0;
  for (const IndexNode& node : nodes_) {
    if (node.state == NodeState::kSampled && !node.is_existing) {
      cost += node.cost_pages;
    }
  }
  return cost;
}

double EstimationGraph::AllSampledCost(double f, ThreadPool* pool) {
  RefreshCosts(f, pool);
  double cost = 0.0;
  for (const IndexNode& node : nodes_) {
    if (node.is_target && !node.is_existing) cost += node.cost_pages;
  }
  return cost;
}

double EstimationGraph::SampleAllTargets(double f, ThreadPool* pool) {
  ResetStates();
  RefreshCosts(f, pool);
  for (IndexNode& node : nodes_) {
    if (node.is_target && node.state == NodeState::kNone) {
      node.state = NodeState::kSampled;
    }
  }
  return TotalSampledCost();
}

void EstimationGraph::PruneUnused() {
  // From wider to narrower: drop helper nodes not used by any deduced
  // parent (paper's lines 13-14).
  std::vector<size_t> order(nodes_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    return nodes_[a].num_stored_columns > nodes_[b].num_stored_columns;
  });
  for (size_t i : order) {
    IndexNode& node = nodes_[i];
    if (node.is_target || node.is_existing || node.state == NodeState::kNone) {
      continue;
    }
    bool used = false;
    for (size_t j = 0; j < nodes_.size() && !used; ++j) {
      if (nodes_[j].state != NodeState::kDeduced) continue;
      const DeductionNode& d = deductions_[nodes_[j].chosen_deduction];
      used = std::find(d.children.begin(), d.children.end(), i) != d.children.end();
    }
    if (!used) {
      node.state = NodeState::kNone;
      node.chosen_deduction = -1;
    }
  }
}

double EstimationGraph::Greedy(double f, double e, double q,
                               ThreadPool* pool) {
  ResetStates();
  RefreshCosts(f, pool);

  // Narrow to wide over targets.
  std::vector<size_t> targets;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].is_target && nodes_[i].state == NodeState::kNone) {
      targets.push_back(i);
    }
  }
  std::sort(targets.begin(), targets.end(), [this](size_t a, size_t b) {
    return nodes_[a].num_stored_columns < nodes_[b].num_stored_columns;
  });

  for (size_t t : targets) {
    if (nodes_[t].state != NodeState::kNone) continue;  // e.g. existing
    const auto dit = deductions_by_parent_.find(t);

    // Line 6-7: a deduction whose children are all known and which meets
    // the accuracy constraint. Pick the one with the highest probability.
    int best_ded = -1;
    double best_prob = -1.0;
    if (dit != deductions_by_parent_.end()) {
      for (size_t di : dit->second) {
        const DeductionNode& d = deductions_[di];
        bool ready = true;
        std::vector<ErrorStats> terms;
        for (size_t c : d.children) {
          if (nodes_[c].state == NodeState::kNone) {
            ready = false;
            break;
          }
          terms.push_back(NodeError(c, f));
        }
        if (!ready) continue;
        const double prob = ErrorWithinProbability(
            DeductionError(d, t, f, std::move(terms)), e);
        if (prob >= q && prob > best_prob) {
          best_prob = prob;
          best_ded = static_cast<int>(di);
        }
      }
    }
    if (best_ded >= 0) {
      nodes_[t].state = NodeState::kDeduced;
      nodes_[t].chosen_deduction = best_ded;
      continue;
    }

    // Line 8-9: enable a deduction by sampling its unknown children if that
    // is cheaper than sampling this node.
    int best_enable = -1;
    double best_enable_cost = nodes_[t].cost_pages;
    if (dit != deductions_by_parent_.end()) {
      for (size_t di : dit->second) {
        const DeductionNode& d = deductions_[di];
        double extra = 0.0;
        std::vector<ErrorStats> terms;
        for (size_t c : d.children) {
          if (nodes_[c].state == NodeState::kNone) {
            extra += nodes_[c].cost_pages;
            terms.push_back(model_.SampleCf(nodes_[c].def.compression, f));
          } else {
            terms.push_back(NodeError(c, f));
          }
        }
        const double prob = ErrorWithinProbability(
            DeductionError(d, t, f, std::move(terms)), e);
        if (prob >= q && extra < best_enable_cost) {
          best_enable_cost = extra;
          best_enable = static_cast<int>(di);
        }
      }
    }
    if (best_enable >= 0) {
      const DeductionNode& d = deductions_[best_enable];
      for (size_t c : d.children) {
        if (nodes_[c].state == NodeState::kNone) {
          nodes_[c].state = NodeState::kSampled;
        }
      }
      nodes_[t].state = NodeState::kDeduced;
      nodes_[t].chosen_deduction = best_enable;
      continue;
    }

    // Line 11: sample it.
    nodes_[t].state = NodeState::kSampled;
  }

  PruneUnused();
  return TotalSampledCost();
}

bool EstimationGraph::AssignmentSatisfies(double e, double q, double f) const {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const IndexNode& node = nodes_[i];
    if (!node.is_target) continue;
    if (ErrorWithinProbability(NodeError(i, f), e) < q) return false;
  }
  return true;
}

bool EstimationGraph::DependsOn(size_t child, size_t node) const {
  if (child == node) return true;
  if (nodes_[child].state != NodeState::kDeduced) return false;
  const DeductionNode& d = deductions_[nodes_[child].chosen_deduction];
  for (size_t c : d.children) {
    if (DependsOn(c, node)) return true;
  }
  return false;
}

void EstimationGraph::OptimalRecurse(const std::vector<size_t>& order,
                                     std::vector<char>* required,
                                     double cost_so_far, double e, double q,
                                     double f, double* best_cost,
                                     std::vector<IndexNode>* best_assignment) {
  if (cost_so_far >= *best_cost) return;  // bound
  // Next undecided required node (targets are always required). Scan from
  // the front each time: ColSet donors share the parent's width and may sit
  // anywhere in `order`.
  size_t pos = order.size();
  for (size_t p = 0; p < order.size(); ++p) {
    const size_t i = order[p];
    if ((nodes_[i].is_target || (*required)[i]) &&
        nodes_[i].state == NodeState::kNone) {
      pos = p;
      break;
    }
  }
  if (pos == order.size()) {
    // Complete assignment; errors were enforced per choice below.
    *best_cost = cost_so_far;
    *best_assignment = nodes_;
    return;
  }
  const size_t i = order[pos];

  // Branch 1: sample it.
  nodes_[i].state = NodeState::kSampled;
  OptimalRecurse(order, required, cost_so_far + nodes_[i].cost_pages, e, q, f,
                 best_cost, best_assignment);
  nodes_[i].state = NodeState::kNone;

  // Branch 2: each deduction whose composed error can satisfy the
  // constraint assuming each child is at best SampleCF-accurate (children
  // are never better than that, so this is an admissible filter).
  const auto dit = deductions_by_parent_.find(i);
  if (dit != deductions_by_parent_.end()) {
    for (size_t di : dit->second) {
      const DeductionNode& d = deductions_[di];
      bool cyclic = false;
      std::vector<ErrorStats> terms;
      for (size_t c : d.children) {
        if (DependsOn(c, i)) {
          cyclic = true;
          break;
        }
        terms.push_back(nodes_[c].is_existing
                            ? ErrorStats{}
                            : model_.SampleCf(nodes_[c].def.compression, f));
      }
      if (cyclic) continue;
      if (ErrorWithinProbability(DeductionError(d, i, f, std::move(terms)), e) <
          q) {
        continue;
      }

      nodes_[i].state = NodeState::kDeduced;
      nodes_[i].chosen_deduction = static_cast<int>(di);
      std::vector<size_t> newly;
      for (size_t c : d.children) {
        if (!(*required)[c]) {
          (*required)[c] = 1;
          newly.push_back(c);
        }
      }
      OptimalRecurse(order, required, cost_so_far, e, q, f, best_cost,
                     best_assignment);
      for (size_t c : newly) (*required)[c] = 0;
      nodes_[i].state = NodeState::kNone;
      nodes_[i].chosen_deduction = -1;
    }
  }
}

double EstimationGraph::Optimal(double f, double e, double q,
                                ThreadPool* pool) {
  ResetStates();
  RefreshCosts(f, pool);
  std::vector<size_t> order(nodes_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  // Widest first so deduction children (narrower) are decided after their
  // parents.
  std::sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    return nodes_[a].num_stored_columns > nodes_[b].num_stored_columns;
  });
  std::vector<char> required(nodes_.size(), 0);
  double best_cost = std::numeric_limits<double>::infinity();
  std::vector<IndexNode> best_assignment;
  OptimalRecurse(order, &required, 0.0, e, q, f, &best_cost,
                 &best_assignment);
  if (!best_assignment.empty()) {
    nodes_ = std::move(best_assignment);
    // Final verification pass: if the lazily-composed errors violate the
    // constraint, fall back to greedy (which never does worse than All).
    if (!AssignmentSatisfies(e, q, f)) return Greedy(f, e, q, pool);
  }
  return best_cost;
}

std::map<std::string, SampleCfResult> EstimationGraph::Execute(
    double f, ThreadPool* pool, EstimationCache* cache, size_t* cache_hits) {
  std::map<std::string, SampleCfResult> results;  // every known node
  DeductionEngine engine(*db_, source_, f);

  // Leaf entries are namespaced apart from the advisor's per-target entries
  // (EstimateAll's LookupBest path): only SampleCF-pure values — never
  // deduced ones — may be served here, or a hit could diverge from what a
  // fresh run at f computes.
  auto leaf_key = [](const std::string& signature) {
    return "scf|" + signature;
  };

  // Phase 1: SAMPLED nodes are independent of each other — these are the
  // leaves of every deduction chain and carry the index-build cost, so
  // they are the parallel section. Compression variants of one structure
  // are grouped so they share the materialized sample rows and the
  // uncompressed reference pack (one materialize, N compressed packs);
  // existing (catalog-served) nodes stay singleton groups. Leaves already
  // in the cross-round cache at exactly this fraction are served up front
  // and skip the build entirely.
  std::vector<std::vector<size_t>> groups;
  std::map<std::string, size_t> group_of;  // structure signature -> group
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].state != NodeState::kSampled) continue;
    if (nodes_[i].is_existing) {
      groups.push_back({i});
      continue;
    }
    const std::string sig = nodes_[i].def.Signature();
    if (cache != nullptr) {
      if (std::optional<SampleCfResult> served = cache->Lookup(leaf_key(sig), f)) {
        results[sig] = *served;
        if (cache_hits != nullptr) ++(*cache_hits);
        continue;
      }
    }
    const std::string key = nodes_[i].def.StructureSignature();
    const auto it = group_of.find(key);
    if (it == group_of.end()) {
      group_of[key] = groups.size();
      groups.push_back({i});
    } else {
      groups[it->second].push_back(i);
    }
  }
  std::vector<std::vector<SampleCfResult>> group_results =
      ParallelMap<std::vector<SampleCfResult>>(
          pool, groups.size(), [&](size_t g) -> std::vector<SampleCfResult> {
            // Deadlines must bind inside the batch: once a cancel fires,
            // remaining index builds are skipped. An empty vector (a group
            // always has >= 1 member) marks the group as not computed.
            if (Cancelled()) return {};
            const std::vector<size_t>& members = groups[g];
            const IndexNode& first = nodes_[members.front()];
            if (first.is_existing) {
              SampleCfResult r;
              r.est_bytes = static_cast<double>(
                  db_->existing_index_bytes().at(first.def.Signature()));
              r.est_tuples = sampler_.EstimateFullTuples(first.def, f);
              r.est_uncompressed_bytes =
                  sampler_.UncompressedFullBytes(first.def, r.est_tuples);
              r.cf = r.est_bytes / std::max(1.0, r.est_uncompressed_bytes);
              return {r};
            }
            std::vector<IndexDef> defs;
            defs.reserve(members.size());
            for (size_t m : members) defs.push_back(nodes_[m].def);
            return sampler_.EstimateGroup(defs, f);
          });
  for (size_t g = 0; g < groups.size(); ++g) {
    if (group_results[g].size() != groups[g].size()) continue;  // cancelled
    for (size_t m = 0; m < groups[g].size(); ++m) {
      const IndexNode& node = nodes_[groups[g][m]];
      const std::string sig = node.def.Signature();
      results[sig] = group_results[g][m];
      if (cache != nullptr && !node.is_existing) {
        cache->Insert(leaf_key(sig), f, group_results[g][m]);
      }
    }
  }
  // A cancelled batch returns the completed leaves only; deduction would
  // compose from missing children, so the caller gets the partial map and
  // is expected to discard it (EstimateAll reports the cancellation).
  if (Cancelled()) return results;

  // Phase 2: DEDUCED nodes compose their children's results via the
  // deduction formulas — cheap arithmetic, run serially in dependency
  // order: a deduced node runs only after all its children have results
  // (narrow-to-wide alone cannot order same-width ColSet pairs).
  std::vector<size_t> pending;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].state == NodeState::kDeduced) pending.push_back(i);
  }
  std::sort(pending.begin(), pending.end(), [this](size_t a, size_t b) {
    return nodes_[a].num_stored_columns < nodes_[b].num_stored_columns;
  });
  size_t stall_guard = 0;
  while (!pending.empty()) {
    CAPD_CHECK_LT(stall_guard++, nodes_.size() * nodes_.size() + 16u)
        << "cyclic deduction plan";
    const size_t i = pending.front();
    pending.erase(pending.begin());
    IndexNode& node = nodes_[i];
    {
      const DeductionNode& dd = deductions_[node.chosen_deduction];
      bool ready = true;
      for (size_t c : dd.children) {
        if (results.find(nodes_[c].def.Signature()) == results.end()) {
          ready = false;
          break;
        }
      }
      if (!ready) {
        pending.push_back(i);  // retry after its children
        continue;
      }
    }
    const std::string sig = node.def.Signature();
    const DeductionNode& d = deductions_[node.chosen_deduction];
    if (d.type == DeductionType::kSortOrder) {
      // Exact-on-sample recompute: the donor's build already materialized
      // and cached the sample, so only this node's own pack runs — charged
      // zero additional sampling I/O. Bit-for-bit equal to fresh sampling
      // by construction (samples are seeded per cache key).
      results[sig] = sampler_.EstimateSortOrderDeduced(node.def, f);
      continue;
    }
    SampleCfResult r;
    r.est_tuples = sampler_.EstimateFullTuples(node.def, f);
    r.est_uncompressed_bytes =
        sampler_.UncompressedFullBytes(node.def, r.est_tuples);
    if (d.type == DeductionType::kColSet) {
      const SampleCfResult& donor = results.at(nodes_[d.children[0]].def.Signature());
      r.est_bytes = donor.est_bytes;
    } else {
      std::vector<KnownSize> children;
      for (size_t c : d.children) {
        const SampleCfResult& cr = results.at(nodes_[c].def.Signature());
        KnownSize k;
        k.def = nodes_[c].def;
        k.compressed_bytes = cr.est_bytes;
        k.uncompressed_bytes = cr.est_uncompressed_bytes;
        k.ns_bytes = cr.est_ns_bytes;
        k.tuples = cr.est_tuples;
        children.push_back(std::move(k));
      }
      r.est_bytes = engine.DeduceColExt(node.def, r.est_uncompressed_bytes,
                                        r.est_tuples, children);
    }
    r.cf = r.est_bytes / std::max(1.0, r.est_uncompressed_bytes);
    r.cost_pages = 0.0;
    results[sig] = r;
  }

  // Return only targets.
  std::map<std::string, SampleCfResult> targets;
  for (const IndexNode& node : nodes_) {
    if (!node.is_target) continue;
    const auto it = results.find(node.def.Signature());
    CAPD_CHECK(it != results.end())
        << "target not estimated: " << node.def.ToString();
    targets[node.def.Signature()] = it->second;
  }
  return targets;
}

size_t EstimationGraph::NumSampled() const {
  size_t n = 0;
  for (const IndexNode& node : nodes_) {
    if (node.state == NodeState::kSampled && !node.is_existing) ++n;
  }
  return n;
}

size_t EstimationGraph::NumDeduced() const {
  size_t n = 0;
  for (const IndexNode& node : nodes_) {
    if (node.is_target && node.state == NodeState::kDeduced) ++n;
  }
  return n;
}

size_t EstimationGraph::NumSortOrderDeduced() const {
  size_t n = 0;
  for (const IndexNode& node : nodes_) {
    if (node.is_target && node.state == NodeState::kDeduced &&
        node.chosen_deduction >= 0 &&
        deductions_[node.chosen_deduction].type == DeductionType::kSortOrder) {
      ++n;
    }
  }
  return n;
}

}  // namespace capd
