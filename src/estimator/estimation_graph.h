// The index/deduction graph of Section 5.2 (Figure 3). Index nodes carry a
// state (NONE / DEDUCED / SAMPLED); deduction nodes connect a parent index
// to the child indexes its size can be inferred from. The greedy search
// assigns states narrow-to-wide; the exact exponential search (Appendix D)
// is available for small graphs as the quality baseline of Table 4.
#ifndef CAPD_ESTIMATOR_ESTIMATION_GRAPH_H_
#define CAPD_ESTIMATOR_ESTIMATION_GRAPH_H_

#include <atomic>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "catalog/database.h"
#include "common/thread_pool.h"
#include "estimator/deduction.h"
#include "estimator/error_model.h"
#include "estimator/estimation_cache.h"
#include "estimator/sample_cf.h"

namespace capd {

enum class NodeState { kNone, kDeduced, kSampled };

// kColSet: ORD-IND same-column-set transfer. kColExt: column partition
// arithmetic. kSortOrder: ORD-DEP same-column-set, different-key-order
// sibling — once any sort order of a structure has been sampled (sample rows
// materialized + cached), every other order is recomputed exactly on that
// same sample (cost 0 additional sample I/O, SampleCF-accurate by
// construction) instead of being charged a fresh sampling pass.
enum class DeductionType { kColSet, kColExt, kSortOrder };

struct DeductionNode {
  DeductionType type = DeductionType::kColExt;
  size_t parent = 0;
  std::vector<size_t> children;
};

struct IndexNode {
  IndexDef def;
  bool is_target = false;
  bool is_existing = false;  // size known exactly from the catalog
  bool deductions_generated = false;
  NodeState state = NodeState::kNone;
  int chosen_deduction = -1;  // index into deductions() when kDeduced
  double cost_pages = 0.0;    // sampling cost at the current f
  size_t num_stored_columns = 0;
};

class EstimationGraph {
 public:
  EstimationGraph(const Database& db, SampleSource* source,
                  const ErrorModel& model);

  // Adds targets plus their helper nodes (singletons, subsets) and all
  // deduction candidates.
  void AddTargets(const std::vector<IndexDef>& targets);

  // Section 5.2 greedy. Assigns states; returns total sampling cost in
  // pages. e/q per Section 5.1. With a pool, the per-node PredictCostPages
  // probes (one sample scan each) are batched across the workers; the
  // state assignment itself stays serial and is bit-identical either way.
  double Greedy(double f, double e, double q, ThreadPool* pool = nullptr);

  // Appendix D exact search (exponential; small graphs only). Returns the
  // optimal total cost and applies the optimal assignment.
  double Optimal(double f, double e, double q, ThreadPool* pool = nullptr);

  // Baseline: SampleCF on every target.
  double AllSampledCost(double f, ThreadPool* pool = nullptr);
  // Assigns SAMPLED to every target (the "w/o deduction" plan); returns the
  // total cost.
  double SampleAllTargets(double f, ThreadPool* pool = nullptr);

  // True if, under the current assignment, every target's composed error
  // satisfies P(within e) >= q — or is at least as good as plain sampling
  // (the paper's greedy "never violates the constraint unless even All
  // does").
  bool AssignmentSatisfies(double e, double q, double f) const;

  // Runs the assigned plan: SampleCF for SAMPLED nodes, deduction formulas
  // for DEDUCED ones. Returns estimates keyed by IndexDef signature
  // (targets only). Also exposes per-node error stats.
  //
  // With a pool, the independent SampleCF leaf estimations (the dominant
  // cost: index builds on samples) run concurrently; deduction formulas
  // then compose serially in dependency order. Output is bit-identical to
  // the serial path: every node's computation is self-contained and the
  // shared sample caches seed per key, not per draw order.
  //
  // With a cache, SAMPLED leaves are memoized at exactly (signature, f):
  // a hit skips the index build and a miss fills the cache. Because a
  // SampleCF run at a fixed fraction is a pure function of the definition
  // (samples are seeded per cache key), serving a hit is bit-identical to
  // recomputing — the plan, the chosen fraction, and every estimate match
  // an uncached run exactly. Deduced values are never cached: they depend
  // on the batch's plan, not on (signature, f) alone. `cache_hits` (may be
  // null) is incremented once per served leaf.
  std::map<std::string, SampleCfResult> Execute(double f,
                                                ThreadPool* pool = nullptr,
                                                EstimationCache* cache = nullptr,
                                                size_t* cache_hits = nullptr);

  // Composed error of node i under the current assignment.
  ErrorStats NodeError(size_t i, double f) const;

  // Enables kSortOrder deduction candidates. Must be called before
  // AddTargets (deductions are generated there). Off by default: the plan
  // for pre-existing target batches stays byte-identical unless a caller
  // opts in (SizeEstimationOptions::enable_sort_order_deduction).
  void set_enable_sort_order(bool enabled) { enable_sort_order_ = enabled; }

  const std::vector<IndexNode>& nodes() const { return nodes_; }
  const std::vector<DeductionNode>& deductions() const { return deductions_; }
  size_t NumSampled() const;
  size_t NumDeduced() const;  // among targets
  size_t NumSortOrderDeduced() const;  // among targets

  void ResetStates();

  // Cooperative cancellation for the expensive batch loops (the cost
  // probes of Greedy/Optimal/SampleAllTargets and the SampleCF leaves of
  // Execute): when the flag fires, remaining probes/leaves are skipped and
  // Execute returns only the estimates completed so far. The caller
  // (SizeEstimator::EstimateAll) is responsible for discarding the
  // now-meaningless plan. Null (the default) disables polling; a flag that
  // never fires leaves every result bit-identical.
  void set_cancel(const std::atomic<bool>* cancel) { cancel_ = cancel; }

 private:
  bool Cancelled() const {
    return cancel_ != nullptr && cancel_->load(std::memory_order_relaxed);
  }
  size_t AddNode(const IndexDef& def, bool is_target);
  std::optional<size_t> FindNode(const std::string& signature) const;
  void GenerateDeductionsFor(size_t node_id);
  // Composed error of deduction `d` for parent node `parent`, given the
  // children's error terms. kSortOrder short-circuits to the parent's own
  // SampleCf error (execution recomputes on the donor's sample).
  ErrorStats DeductionError(const DeductionNode& d, size_t parent, double f,
                            std::vector<ErrorStats> child_terms) const;
  void PruneUnused();
  double TotalSampledCost() const;
  void RefreshCosts(double f, ThreadPool* pool);

  // Recursive helper for Optimal(): decides the next required-but-undecided
  // node in `order`; `required` marks nodes that must become known.
  void OptimalRecurse(const std::vector<size_t>& order,
                      std::vector<char>* required, double cost_so_far,
                      double e, double q, double f, double* best_cost,
                      std::vector<IndexNode>* best_assignment);

  // True if making `node` depend on `child` would create a deduction cycle
  // under the current (partial) assignment.
  bool DependsOn(size_t child, size_t node) const;

  const Database* db_;
  SampleSource* source_;
  ErrorModel model_;  // by value: callers often pass temporaries
  SampleCfEstimator sampler_;
  const std::atomic<bool>* cancel_ = nullptr;  // not owned; may be null
  bool enable_sort_order_ = false;

  std::vector<IndexNode> nodes_;
  std::vector<DeductionNode> deductions_;
  std::map<std::string, size_t> by_signature_;
  // deductions_ indexes grouped by parent node.
  std::map<size_t, std::vector<size_t>> deductions_by_parent_;
};

}  // namespace capd

#endif  // CAPD_ESTIMATOR_ESTIMATION_GRAPH_H_
