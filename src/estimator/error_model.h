// Stochastic error model of the size-estimation methods (Section 5.1 and
// Appendix C). Every estimate carries a bias and a variance; estimates
// compose multiplicatively (X_AB = X_A * X_B * X_deduction) with the
// variance of the product computed via Goodman's formula. The default
// coefficients are the paper's Table 2/3 least-squares fits; they can be
// refit from this repo's own measurements (bench_table2/bench_table3).
#ifndef CAPD_ESTIMATOR_ERROR_MODEL_H_
#define CAPD_ESTIMATOR_ERROR_MODEL_H_

#include <vector>

#include "compress/compression_kind.h"

namespace capd {

// Bias/variance pair for a relative size estimate X = estimated/true, with
// E[X] = 1 + bias and Var[X] = variance.
struct ErrorStats {
  double bias = 0.0;
  double variance = 0.0;
};

// Composes independent multiplicative error terms (Goodman 1962).
ErrorStats ComposeErrors(const std::vector<ErrorStats>& terms);

// P(1/(1+e) <= X <= 1+e) under a normal approximation.
double ErrorWithinProbability(const ErrorStats& err, double e);

class ErrorModel {
 public:
  // Defaults are THIS implementation's measured fits (regenerate with
  // bench_table2_error_fit / bench_table3_deduction_fit). The paper's SQL
  // Server fits, for reference: NS-stddev 0.0062, LD-bias -0.015 (they
  // underestimate; we overestimate, see error_model.cc), LD-stddev 0.018;
  // ColExt(NS) +0.01a/0.002a, ColExt(LD) -0.03a/0.01a.
  struct Coefficients {
    // SampleCF errors scale with -ln(f) (Table 2 form).
    double samplecf_ns_bias = 0.0;  // NS is unbiased [11]
    double samplecf_ns_stddev = 0.002;
    double samplecf_ld_bias = 0.036;
    double samplecf_ld_stddev = 0.015;
    // Deduction errors scale linearly with a = #children (Table 3 form).
    double colset_bias = 0.0;
    double colset_stddev = 0.0003;
    double colext_ns_bias = -0.02;
    double colext_ns_stddev = 0.002;
    double colext_ld_bias = 0.06;
    double colext_ld_stddev = 0.035;
  };

  ErrorModel() = default;
  explicit ErrorModel(Coefficients c) : c_(c) {}

  // SampleCF at sampling fraction f. ORD-IND kinds follow the NS family,
  // ORD-DEP kinds the LD family. f == 1 (full scan) has zero error.
  ErrorStats SampleCf(CompressionKind kind, double f) const;

  ErrorStats ColSet(CompressionKind kind) const;
  // Column extrapolation from `a` child indexes.
  ErrorStats ColExt(CompressionKind kind, int a) const;

  const Coefficients& coefficients() const { return c_; }

 private:
  Coefficients c_;
};

}  // namespace capd

#endif  // CAPD_ESTIMATOR_ERROR_MODEL_H_
