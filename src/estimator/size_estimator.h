// Top-level entry point of the index-size-estimation framework (Section 5):
// given a batch of compressed target indexes plus accuracy parameters
// (e, q), choose a sampling fraction f and a per-index method (SampleCF or
// deduction) minimizing total estimation cost, then execute the plan.
#ifndef CAPD_ESTIMATOR_SIZE_ESTIMATOR_H_
#define CAPD_ESTIMATOR_SIZE_ESTIMATOR_H_

#include <map>
#include <string>
#include <vector>

#include "estimator/estimation_graph.h"

namespace capd {

struct SizeEstimationOptions {
  double e = 0.5;  // tolerable error ratio
  double q = 0.9;  // confidence that error stays within e
  std::vector<double> fractions = {0.01, 0.025, 0.05, 0.10};
  // When false, every target is SampleCF'd (the "w/o deduction" baseline of
  // Figure 11; the shared SampleManager is still used).
  bool use_deduction = true;
};

class SizeEstimator {
 public:
  SizeEstimator(const Database& db, SampleSource* source, ErrorModel model,
                SizeEstimationOptions options)
      : db_(&db),
        source_(source),
        model_(std::move(model)),
        options_(std::move(options)) {}

  struct BatchResult {
    std::map<std::string, SampleCfResult> estimates;  // by IndexDef signature
    double chosen_f = 0.0;
    double total_cost_pages = 0.0;
    size_t num_sampled = 0;
    size_t num_deduced = 0;
  };

  // Estimates sizes of all (compressed) targets. Uncompressed targets are
  // sized deterministically and never enter the graph.
  BatchResult EstimateAll(const std::vector<IndexDef>& targets);

  // Deterministic size of an uncompressed index.
  SampleCfResult UncompressedSize(const IndexDef& def);

  const SizeEstimationOptions& options() const { return options_; }
  const ErrorModel& model() const { return model_; }

 private:
  const Database* db_;
  SampleSource* source_;
  ErrorModel model_;
  SizeEstimationOptions options_;
};

}  // namespace capd

#endif  // CAPD_ESTIMATOR_SIZE_ESTIMATOR_H_
