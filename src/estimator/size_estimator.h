// Top-level entry point of the index-size-estimation framework (Section 5):
// given a batch of compressed target indexes plus accuracy parameters
// (e, q), choose a sampling fraction f and a per-index method (SampleCF or
// deduction) minimizing total estimation cost, then execute the plan.
#ifndef CAPD_ESTIMATOR_SIZE_ESTIMATOR_H_
#define CAPD_ESTIMATOR_SIZE_ESTIMATOR_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "estimator/estimation_cache.h"
#include "estimator/estimation_graph.h"

namespace capd {

struct SizeEstimationOptions {
  double e = 0.5;  // tolerable error ratio
  double q = 0.9;  // confidence that error stays within e
  std::vector<double> fractions = {0.01, 0.025, 0.05, 0.10};
  // When false, every target is SampleCF'd (the "w/o deduction" baseline of
  // Figure 11; the shared SampleManager is still used).
  bool use_deduction = true;
  // Opt-in kSortOrder deduction: sibling sort orders of an ORD-DEP
  // structure (same column set, different key order) are recomputed on the
  // first sibling's sample instead of each being charged a sampling pass.
  // Off by default so pre-existing batch plans stay byte-identical.
  bool enable_sort_order_deduction = false;
  // Worker threads for the batch-execution phase (independent SampleCF
  // runs). 1 = serial, 0 = hardware concurrency. Any value produces
  // byte-identical results: per-key sample seeding makes the parallel
  // path bit-equal to the serial one.
  int num_threads = 1;
  // Optional cross-round cache: targets already priced at a candidate
  // fraction are reused instead of re-estimated (see estimation_cache.h).
  // Shared (and thread-safe), so one cache can serve several estimators.
  std::shared_ptr<EstimationCache> cache;
  // How `cache` is consulted.
  //   false (default, the PR-1 behavior): a target cached at ANY candidate
  //     fraction is served up front and skips graph planning entirely —
  //     the cheapest mode, but a warm cache can shift the fraction search
  //     over the remaining targets, so results are only guaranteed to
  //     match an uncached run when the cache was filled by identical
  //     batches.
  //   true (the AdvisorEngine contract): every target enters the graph,
  //     the fraction search runs exactly as if the cache were cold, and
  //     only the SampleCF executions are memoized at (signature, chosen
  //     f). Estimates, chosen_f, total_cost_pages, and the sampled /
  //     deduced counts are all bit-identical to an uncached run no matter
  //     what the cache already holds — the property that lets one warm
  //     cache serve concurrent tuning requests deterministically.
  bool cache_fraction_exact = false;
  // External pool for the batch-execution phase. When set it is used
  // instead of (and regardless of) num_threads, and is not owned: the
  // AdvisorEngine shares one estimation pool across requests this way.
  ThreadPool* pool = nullptr;
  // Memory bound for `cache` (approximate bytes; 0 = unbounded). Applied
  // to the cache at estimator construction — least-recently-used entries
  // are evicted once the bound is exceeded, so hundred-thousand-candidate
  // workloads cannot grow the cache without limit.
  size_t cache_capacity_bytes = 0;
  // Cooperative cancellation, polled inside the batch itself (per fraction
  // probe and per SampleCF leaf) so a deadline binds within a long
  // estimation phase, not just at its boundary. On cancel EstimateAll
  // returns early with whatever estimates completed (possibly none); the
  // advisor discards such partial batches. When the flag never fires,
  // results are bit-identical to running without it — polling a relaxed
  // atomic is the only added work. The AdvisorEngine wires this to the
  // request's CancellationToken automatically.
  std::shared_ptr<const std::atomic<bool>> cancel;
};

class SizeEstimator {
 public:
  SizeEstimator(const Database& db, SampleSource* source, ErrorModel model,
                SizeEstimationOptions options)
      : db_(&db),
        source_(source),
        model_(std::move(model)),
        options_(std::move(options)) {
    if (options_.cache != nullptr && options_.cache_capacity_bytes > 0) {
      options_.cache->set_capacity_bytes(options_.cache_capacity_bytes);
    }
  }

  struct BatchResult {
    std::map<std::string, SampleCfResult> estimates;  // by IndexDef signature
    double chosen_f = 0.0;
    double total_cost_pages = 0.0;
    size_t num_sampled = 0;
    size_t num_deduced = 0;
    // Servings from the cross-round cache: whole targets in the fast mode,
    // SampleCF leaves (targets or helper nodes) in fraction-exact mode.
    size_t cache_hits = 0;
  };

  // Estimates sizes of all (compressed) targets. Uncompressed targets are
  // sized deterministically and never enter the graph.
  BatchResult EstimateAll(const std::vector<IndexDef>& targets);

  // Deterministic size of an uncompressed index.
  SampleCfResult UncompressedSize(const IndexDef& def);

  // Batch variant: sizes every (uncompressed) def concurrently on the
  // estimation pool, returning results in input order. Bit-identical to
  // calling UncompressedSize in a loop — shared samples are seeded per
  // cache key, never per draw order.
  std::vector<SampleCfResult> UncompressedSizeAll(
      const std::vector<IndexDef>& defs);

  const SizeEstimationOptions& options() const { return options_; }
  const ErrorModel& model() const { return model_; }

 private:
  // The pool for EstimateAll's execution phase: options_.pool when set,
  // otherwise created on first use and reused across batches; null when
  // options_.num_threads == 1.
  ThreadPool* Pool();

  const Database* db_;
  SampleSource* source_;
  ErrorModel model_;
  SizeEstimationOptions options_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace capd

#endif  // CAPD_ESTIMATOR_SIZE_ESTIMATOR_H_
