#include "estimator/estimation_cache.h"

#include <cstdio>

namespace capd {

std::string EstimationCache::Key(const std::string& signature, double f) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "@%.6g", f);
  return signature + buf;
}

std::optional<SampleCfResult> EstimationCache::Lookup(
    const std::string& signature, double f) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(Key(signature, f));
  if (it == entries_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return it->second;
}

std::optional<SampleCfResult> EstimationCache::LookupBest(
    const std::string& signature, const std::vector<double>& fractions) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = fractions.rbegin(); it != fractions.rend(); ++it) {
    const auto entry = entries_.find(Key(signature, *it));
    if (entry != entries_.end()) {
      ++hits_;
      return entry->second;
    }
  }
  ++misses_;
  return std::nullopt;
}

void EstimationCache::Insert(const std::string& signature, double f,
                             const SampleCfResult& r) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_[Key(signature, f)] = r;
}

void EstimationCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  hits_ = 0;
  misses_ = 0;
}

size_t EstimationCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

uint64_t EstimationCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t EstimationCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

}  // namespace capd
