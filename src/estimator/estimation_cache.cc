#include "estimator/estimation_cache.h"

#include <cstdio>

namespace capd {

std::string EstimationCache::Key(const std::string& signature, double f) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "@%.6g", f);
  return signature + buf;
}

size_t EstimationCache::EntryBytes(const std::string& key) {
  // Approximation: the key is stored twice (map key + LRU list node), plus
  // the result payload and per-node container overhead.
  constexpr size_t kNodeOverhead = 96;
  return 2 * key.size() + sizeof(SampleCfResult) + kNodeOverhead;
}

void EstimationCache::TouchLocked(const Entry& entry) const {
  lru_.splice(lru_.begin(), lru_, entry.lru);
}

void EstimationCache::EvictOverCapacityLocked() {
  if (capacity_bytes_ == 0) return;
  while (bytes_ > capacity_bytes_ && !lru_.empty()) {
    const std::string& victim = lru_.back();
    const auto it = entries_.find(victim);
    bytes_ -= EntryBytes(victim);
    entries_.erase(it);
    lru_.pop_back();
    ++evictions_;
  }
}

std::optional<SampleCfResult> EstimationCache::Lookup(
    const std::string& signature, double f) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(Key(signature, f));
  if (it == entries_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  TouchLocked(it->second);
  return it->second.result;
}

std::optional<SampleCfResult> EstimationCache::LookupBest(
    const std::string& signature, const std::vector<double>& fractions) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = fractions.rbegin(); it != fractions.rend(); ++it) {
    const auto entry = entries_.find(Key(signature, *it));
    if (entry != entries_.end()) {
      ++hits_;
      TouchLocked(entry->second);
      return entry->second.result;
    }
  }
  ++misses_;
  return std::nullopt;
}

void EstimationCache::Insert(const std::string& signature, double f,
                             const SampleCfResult& r) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string key = Key(signature, f);
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.result = r;
    TouchLocked(it->second);
    return;
  }
  lru_.push_front(key);
  entries_[key] = Entry{r, lru_.begin()};
  bytes_ += EntryBytes(key);
  EvictOverCapacityLocked();
}

void EstimationCache::set_capacity_bytes(size_t capacity_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_bytes_ = capacity_bytes;
  EvictOverCapacityLocked();
}

size_t EstimationCache::capacity_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_bytes_;
}

size_t EstimationCache::charged_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

void EstimationCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
  bytes_ = 0;
  hits_ = 0;
  misses_ = 0;
  evictions_ = 0;
}

size_t EstimationCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

uint64_t EstimationCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t EstimationCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

uint64_t EstimationCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

}  // namespace capd
