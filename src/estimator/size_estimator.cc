#include "estimator/size_estimator.h"

#include <limits>

#include "common/logging.h"

namespace capd {

ThreadPool* SizeEstimator::Pool() {
  if (options_.pool != nullptr) return options_.pool;
  if (options_.num_threads == 1) return nullptr;
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
  return pool_.get();
}

SizeEstimator::BatchResult SizeEstimator::EstimateAll(
    const std::vector<IndexDef>& targets) {
  BatchResult result;
  if (targets.empty()) return result;

  // Cross-round cache, fast mode: pull out every target already priced at
  // one of the candidate fractions; only the remainder enters the graph.
  // In fraction-exact mode every target enters the graph instead, and the
  // cache is consulted per SampleCF leaf at the chosen fraction inside
  // Execute — slower on full hits, but provably bit-identical to an
  // uncached run (see SizeEstimationOptions::cache_fraction_exact).
  EstimationCache* exact_cache =
      options_.cache_fraction_exact ? options_.cache.get() : nullptr;
  std::vector<IndexDef> fresh;
  if (options_.cache != nullptr && exact_cache == nullptr) {
    fresh.reserve(targets.size());
    for (const IndexDef& t : targets) {
      const std::string sig = t.Signature();
      if (std::optional<SampleCfResult> cached =
              options_.cache->LookupBest(sig, options_.fractions)) {
        result.estimates[sig] = *cached;
        ++result.cache_hits;
      } else {
        fresh.push_back(t);
      }
    }
    if (fresh.empty()) return result;  // nothing to estimate, zero cost
  } else {
    fresh = targets;
  }

  EstimationGraph graph(*db_, source_, model_);
  // Must precede AddTargets: deduction candidates are generated there.
  graph.set_enable_sort_order(options_.enable_sort_order_deduction);
  graph.AddTargets(fresh);
  graph.set_cancel(options_.cancel.get());
  auto cancelled = [this] {
    return options_.cancel != nullptr &&
           options_.cancel->load(std::memory_order_relaxed);
  };

  // Runs the assigned plan at f, merges the fresh estimates into the
  // result (cached entries are already there), and fills the cache.
  auto execute_plan = [&](double f) {
    result.chosen_f = f;
    for (auto& [sig, r] :
         graph.Execute(f, Pool(), exact_cache, &result.cache_hits)) {
      if (options_.cache != nullptr && exact_cache == nullptr) {
        options_.cache->Insert(sig, f, r);
      }
      result.estimates[sig] = std::move(r);
    }
    result.num_sampled = graph.NumSampled();
    result.num_deduced = graph.NumDeduced();
  };

  if (!options_.use_deduction) {
    // Baseline mode: SampleCF every target at the smallest fraction whose
    // SampleCF error meets the constraint (or the largest fraction if none
    // does — matching the paper's "even All misses it" tolerance).
    double best_f = options_.fractions.back();
    for (double f : options_.fractions) {
      if (cancelled()) return result;  // deadline binds between probes
      graph.SampleAllTargets(f, Pool());
      if (graph.AssignmentSatisfies(options_.e, options_.q, f)) {
        best_f = f;
        break;
      }
    }
    if (cancelled()) return result;
    result.total_cost_pages = graph.SampleAllTargets(best_f, Pool());
    execute_plan(best_f);
    result.num_deduced = 0;
    return result;
  }

  // Try each sampling fraction; keep the valid plan with least cost
  // (Section 5.2: "we try several different values of f and pick the f for
  // which the greedy algorithm produces a solution with the smallest total
  // cost"). If even SampleCF-everywhere cannot meet the constraint at any
  // f, fall back to the largest (most accurate) fraction — the paper's
  // "unless even All does" tolerance.
  double best_cost = std::numeric_limits<double>::infinity();
  double best_f = options_.fractions.back();
  for (double f : options_.fractions) {
    // A cancelled batch returns early with whatever is in `result` so far
    // (nothing yet): partial plans are worthless, and the advisor discards
    // the batch anyway. The graph also polls inside its own probe and leaf
    // loops, so a deadline binds mid-fraction, not just between fractions.
    if (cancelled()) return result;
    const double cost = graph.Greedy(f, options_.e, options_.q, Pool());
    if (!graph.AssignmentSatisfies(options_.e, options_.q, f)) continue;
    if (cost < best_cost) {
      best_cost = cost;
      best_f = f;
    }
  }
  if (cancelled()) return result;
  // Re-run the winning plan (the graph holds the last run's states).
  result.total_cost_pages =
      graph.Greedy(best_f, options_.e, options_.q, Pool());
  execute_plan(best_f);
  return result;
}

SampleCfResult SizeEstimator::UncompressedSize(const IndexDef& def) {
  CAPD_CHECK(def.compression == CompressionKind::kNone);
  SampleCfEstimator sampler(*db_, source_);
  const double f = options_.fractions.front();
  SampleCfResult r;
  r.est_tuples = sampler.EstimateFullTuples(def, f);
  r.est_uncompressed_bytes = sampler.UncompressedFullBytes(def, r.est_tuples);
  r.est_bytes = r.est_uncompressed_bytes;
  r.cf = 1.0;
  r.cost_pages = 0.0;
  return r;
}

std::vector<SampleCfResult> SizeEstimator::UncompressedSizeAll(
    const std::vector<IndexDef>& defs) {
  return ParallelMap<SampleCfResult>(Pool(), defs.size(), [&](size_t i) {
    // Skipped entries come back zeroed; a cancelled advisor run discards
    // the whole batch, so they are never read.
    if (options_.cancel != nullptr &&
        options_.cancel->load(std::memory_order_relaxed)) {
      return SampleCfResult{};
    }
    return UncompressedSize(defs[i]);
  });
}

}  // namespace capd
