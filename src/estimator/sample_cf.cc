#include "estimator/sample_cf.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "common/logging.h"

namespace capd {

SampleCfResult SampleCfEstimator::Estimate(const IndexDef& def, double f) {
  return EstimateGroup({def}, f).front();
}

SampleCfResult SampleCfEstimator::EstimateSortOrderDeduced(const IndexDef& def,
                                                           double f) {
  SampleCfResult r = Estimate(def, f);
  r.cost_pages = 0.0;  // the donor's sampled build already paid for the sample
  return r;
}

std::vector<SampleCfResult> SampleCfEstimator::EstimateGroup(
    const std::vector<IndexDef>& defs, double f) {
  CAPD_CHECK(!defs.empty());
  const Table& sample = source_->Sample(defs.front().object, f);
  IndexBuilder builder(sample);
  // The estimation path must never hold more than the sample: enforce it.
  builder.set_max_materialize_rows(sample.num_rows());

  // The structure (object/keys/includes/filter/clustered-ness) is shared,
  // so the materialized rows and the uncompressed reference pack are too.
  const std::vector<Row> rows = builder.MaterializeRows(defs.front());
  const IndexPhysical plain =
      builder.Pack(defs.front().WithCompression(CompressionKind::kNone), rows);
  // The ORD-DEP estimate needs the null-suppression (kRow) pack as its
  // order-independent baseline; computed once for the whole group, lazily.
  std::optional<IndexPhysical> ns;

  const double sample_rows = static_cast<double>(sample.num_rows());
  const double full_rows = source_->FullTuples(defs.front().object);

  std::vector<SampleCfResult> results;
  results.reserve(defs.size());
  for (const IndexDef& def : defs) {
    CAPD_CHECK(def.StructureSignature() == defs.front().StructureSignature())
        << def.ToString() << " vs " << defs.front().ToString();
    const IndexPhysical compressed = builder.Pack(def, rows);

    SampleCfResult result;
    // Byte-granularity ratio: page counts quantize to 1 page on small
    // samples and would hide the compression entirely.
    result.cf = static_cast<double>(compressed.fine_bytes()) /
                static_cast<double>(std::max<uint64_t>(plain.fine_bytes(), 1));
    result.cost_pages = static_cast<double>(plain.data_pages);

    // Scale tuples: the filter's hit rate on the sample applied to the full
    // object's (estimated) tuple count.
    double filter_frac = 1.0;
    if (def.filter.has_value() && sample_rows > 0) {
      filter_frac = static_cast<double>(rows.size()) / sample_rows;
    }
    result.est_tuples = full_rows * filter_frac;

    result.est_uncompressed_bytes =
        UncompressedFullBytes(def, result.est_tuples);
    result.est_bytes = result.est_uncompressed_bytes * result.cf;
    if (IsOrderDependent(def.compression)) {
      if (!ns.has_value()) {
        ns = builder.Pack(def.WithCompression(CompressionKind::kRow), rows);
      }
      const double cf_ns =
          static_cast<double>(ns->fine_bytes()) /
          static_cast<double>(std::max<uint64_t>(plain.fine_bytes(), 1));
      result.est_ns_bytes = result.est_uncompressed_bytes * cf_ns;
    } else {
      result.est_ns_bytes = result.est_bytes;
    }
    results.push_back(result);
  }
  return results;
}

double SampleCfEstimator::UncompressedFullBytes(const IndexDef& def,
                                                double tuples) const {
  // Byte granularity throughout (page-count quantization would bury the
  // sampling error on laptop-scale data); consumers derive pages from it.
  const Schema stored =
      StoredSchemaFor(def, source_->ObjectSchema(def.object));
  const double row_bytes = stored.RowWidth() + kRowOverhead;
  return std::max(static_cast<double>(kPageCapacity), tuples * row_bytes);
}

double SampleCfEstimator::EstimateFullTuples(const IndexDef& def, double f) {
  const double full_rows = source_->FullTuples(def.object);
  if (!def.filter.has_value()) return full_rows;
  const Table& sample = source_->Sample(def.object, f);
  if (sample.num_rows() == 0) return 0.0;
  uint64_t hits = 0;
  for (const Row& r : sample.rows()) {
    if (def.filter->Matches(r, sample.schema())) ++hits;
  }
  return full_rows * static_cast<double>(hits) /
         static_cast<double>(sample.num_rows());
}

double SampleCfEstimator::PredictCostPages(const IndexDef& def, double f) {
  const Table& sample = source_->Sample(def.object, f);
  double sample_tuples = static_cast<double>(sample.num_rows());
  if (def.filter.has_value() && sample.num_rows() > 0) {
    uint64_t hits = 0;
    for (const Row& r : sample.rows()) {
      if (def.filter->Matches(r, sample.schema())) ++hits;
    }
    sample_tuples = static_cast<double>(hits);
  }
  const Schema stored = StoredSchemaFor(def, sample.schema());
  const double row_bytes = stored.RowWidth() + kRowOverhead;
  return std::max(1.0, std::ceil(sample_tuples * row_bytes / kPageCapacity));
}

Schema StoredSchemaFor(const IndexDef& def, const Schema& base) {
  std::vector<Column> cols;
  for (const std::string& name : def.StoredColumns(base)) {
    cols.push_back(base.column(base.ColumnIndex(name)));
  }
  if (!def.clustered) cols.push_back(Column{"__rowid", ValueType::kInt64, 8});
  return Schema(std::move(cols));
}

}  // namespace capd
