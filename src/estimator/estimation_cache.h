// Cross-round estimation cache: the advisor's greedy/backtracking
// enumeration re-prices overlapping candidate sets round after round
// (initial pool, merged pool, staged baselines), and every re-estimate of
// an already-priced index is pure waste — size estimation dominates
// advisor runtime (Figure 11). Entries are keyed by IndexDef signature +
// sampling fraction, so a hit reproduces exactly what a fresh SampleCF or
// deduction at that fraction would have produced.
//
// Optionally memory-bounded: with a capacity, entries are evicted in
// least-recently-used order (lookups and inserts refresh recency), so
// hundred-thousand-candidate workloads cannot grow the cache without
// limit. Capacity 0 (the default) means unbounded.
#ifndef CAPD_ESTIMATOR_ESTIMATION_CACHE_H_
#define CAPD_ESTIMATOR_ESTIMATION_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "estimator/sample_cf.h"

namespace capd {

class EstimationCache {
 public:
  // capacity_bytes bounds the (approximate) memory footprint; 0 = no bound.
  explicit EstimationCache(size_t capacity_bytes = 0)
      : capacity_bytes_(capacity_bytes) {}

  // Estimate of `signature` produced at sampling fraction f, if cached.
  std::optional<SampleCfResult> Lookup(const std::string& signature,
                                       double f) const;

  // Best cached estimate of `signature` across candidate fractions: the
  // last cached entry in `fractions` wins, so pass them ascending (the
  // SizeEstimationOptions convention) to prefer the largest f — most
  // accurate; error shrinks monotonically with f in the Section 5.1
  // model. Probed once per target per round, hence no defensive sort.
  std::optional<SampleCfResult> LookupBest(
      const std::string& signature, const std::vector<double>& fractions) const;

  void Insert(const std::string& signature, double f, const SampleCfResult& r);

  // Changing the capacity evicts immediately if the cache is over it.
  void set_capacity_bytes(size_t capacity_bytes);
  size_t capacity_bytes() const;
  // Approximate bytes currently held (keys + results + container overhead).
  size_t charged_bytes() const;

  void Clear();
  size_t size() const;
  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t evictions() const;

 private:
  struct Entry {
    SampleCfResult result;
    // Position in lru_; stable across splices.
    std::list<std::string>::iterator lru;
  };

  static std::string Key(const std::string& signature, double f);
  static size_t EntryBytes(const std::string& key);

  // All require mu_ held.
  void TouchLocked(const Entry& entry) const;
  void EvictOverCapacityLocked();

  mutable std::mutex mu_;
  mutable uint64_t hits_ = 0;
  mutable uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  size_t capacity_bytes_ = 0;
  size_t bytes_ = 0;
  // Front = most recently used. Mutable: lookups refresh recency.
  mutable std::list<std::string> lru_;
  std::map<std::string, Entry> entries_;
};

}  // namespace capd

#endif  // CAPD_ESTIMATOR_ESTIMATION_CACHE_H_
