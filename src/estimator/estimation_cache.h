// Cross-round estimation cache: the advisor's greedy/backtracking
// enumeration re-prices overlapping candidate sets round after round
// (initial pool, merged pool, staged baselines), and every re-estimate of
// an already-priced index is pure waste — size estimation dominates
// advisor runtime (Figure 11). Entries are keyed by IndexDef signature +
// sampling fraction, so a hit reproduces exactly what a fresh SampleCF or
// deduction at that fraction would have produced.
#ifndef CAPD_ESTIMATOR_ESTIMATION_CACHE_H_
#define CAPD_ESTIMATOR_ESTIMATION_CACHE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "estimator/sample_cf.h"

namespace capd {

class EstimationCache {
 public:
  // Estimate of `signature` produced at sampling fraction f, if cached.
  std::optional<SampleCfResult> Lookup(const std::string& signature,
                                       double f) const;

  // Best cached estimate of `signature` across candidate fractions: the
  // last cached entry in `fractions` wins, so pass them ascending (the
  // SizeEstimationOptions convention) to prefer the largest f — most
  // accurate; error shrinks monotonically with f in the Section 5.1
  // model. Probed once per target per round, hence no defensive sort.
  std::optional<SampleCfResult> LookupBest(
      const std::string& signature, const std::vector<double>& fractions) const;

  void Insert(const std::string& signature, double f, const SampleCfResult& r);

  void Clear();
  size_t size() const;
  uint64_t hits() const;
  uint64_t misses() const;

 private:
  static std::string Key(const std::string& signature, double f);

  mutable std::mutex mu_;
  mutable uint64_t hits_ = 0;
  mutable uint64_t misses_ = 0;
  std::map<std::string, SampleCfResult> entries_;
};

}  // namespace capd

#endif  // CAPD_ESTIMATOR_ESTIMATION_CACHE_H_
