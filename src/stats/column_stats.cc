#include "stats/column_stats.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/logging.h"
#include "compress/null_suppression.h"
#include "storage/encoding.h"

namespace capd {

Histogram Histogram::Build(std::vector<double> keys, size_t num_buckets) {
  Histogram h;
  h.total_ = keys.size();
  if (keys.empty()) return h;
  std::sort(keys.begin(), keys.end());
  h.min_ = keys.front();
  h.max_ = keys.back();
  num_buckets = std::min(num_buckets, keys.size());
  CAPD_CHECK_GT(num_buckets, 0u);
  h.boundaries_.push_back(keys.front());
  size_t start = 0;
  for (size_t b = 0; b < num_buckets; ++b) {
    size_t end = (keys.size() * (b + 1)) / num_buckets;
    if (end <= start) continue;
    h.boundaries_.push_back(keys[end - 1]);
    h.counts_.push_back(end - start);
    start = end;
  }
  return h;
}

double Histogram::SelectivityBetween(double lo, double hi) const {
  if (total_ == 0 || lo > hi) return 0.0;
  double covered = 0.0;
  for (size_t b = 0; b < counts_.size(); ++b) {
    const double blo = boundaries_[b];
    const double bhi = boundaries_[b + 1];
    if (bhi < lo || blo > hi) continue;
    const double width = bhi - blo;
    double frac = 1.0;
    if (width > 0) {
      const double olo = std::max(lo, blo);
      const double ohi = std::min(hi, bhi);
      frac = (ohi - olo) / width;
    }
    covered += frac * static_cast<double>(counts_[b]);
  }
  return std::min(1.0, covered / static_cast<double>(total_));
}

double Histogram::SelectivityLe(double v) const {
  if (total_ == 0) return 0.0;
  return SelectivityBetween(min_, v);
}

double Histogram::SelectivityGe(double v) const {
  if (total_ == 0) return 0.0;
  return SelectivityBetween(v, max_);
}

TableStats TableStats::Compute(const Table& table) {
  TableStats stats;
  stats.num_rows_ = table.num_rows();
  const Schema& schema = table.schema();
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    const Column& col = schema.column(c);
    ColumnStats cs;
    cs.num_rows = table.num_rows();
    std::vector<double> keys;
    keys.reserve(table.num_rows());
    std::set<std::string> distinct;
    uint64_t zero_bytes = 0;
    for (const Row& row : table.rows()) {
      const Value& v = row[c];
      keys.push_back(v.NumericKey());
      std::string enc = EncodeFieldToString(v, col);
      zero_bytes += CountLeadingZeros(enc);
      distinct.insert(std::move(enc));
    }
    cs.distinct = distinct.size();
    if (!keys.empty()) {
      cs.avg_leading_zero_bytes =
          static_cast<double>(zero_bytes) / static_cast<double>(keys.size());
    }
    cs.histogram = Histogram::Build(keys, Histogram::kDefaultBuckets);
    cs.min_key = cs.histogram.min();
    cs.max_key = cs.histogram.max();
    stats.columns_[col.name] = std::move(cs);
  }
  return stats;
}

const ColumnStats& TableStats::column(const std::string& name) const {
  const auto it = columns_.find(name);
  CAPD_CHECK(it != columns_.end()) << "no stats for column " << name;
  return it->second;
}

uint64_t TableStats::DistinctOfColumns(
    const Table& table, const std::vector<std::string>& cols) const {
  std::ostringstream key;
  for (const std::string& c : cols) key << c << ",";
  const auto cached = combo_cache_.find(key.str());
  if (cached != combo_cache_.end()) return cached->second;

  std::vector<size_t> positions;
  positions.reserve(cols.size());
  for (const std::string& c : cols) {
    positions.push_back(table.schema().ColumnIndex(c));
  }
  std::set<std::string> distinct;
  for (const Row& row : table.rows()) {
    std::string combo;
    for (size_t p : positions) {
      combo.append(row[p].ToString());
      combo.push_back('\x1f');
    }
    distinct.insert(std::move(combo));
  }
  const uint64_t result = distinct.size();
  combo_cache_[key.str()] = result;
  return result;
}

}  // namespace capd
