#include "stats/column_stats.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "common/logging.h"
#include "common/math_util.h"
#include "common/random.h"
#include "compress/null_suppression.h"
#include "stats/distinct_estimator.h"
#include "storage/encoding.h"

namespace capd {
namespace {

// Salt xor'd with the table-name hash to seed the sampled-stats draw.
// Fixed (not caller-supplied) so Database::stats() stays reproducible
// without threading a seed through the catalog.
constexpr uint64_t kStatsSeedSalt = 0x57A75u;

// GEE estimate of the full-data distinct count from per-class sample
// counts, clamped to [observed distinct, n].
uint64_t ScaledDistinct(const std::map<std::string, uint64_t>& class_counts,
                        uint64_t sample_rows, uint64_t n) {
  if (class_counts.empty()) return 0;
  std::vector<uint64_t> counts;
  counts.reserve(class_counts.size());
  for (const auto& [cls, c] : class_counts) counts.push_back(c);
  const double est =
      GeeEstimate(BuildFrequencyStats(counts), sample_rows, n);
  const double clamped = std::clamp(
      est, static_cast<double>(counts.size()), static_cast<double>(n));
  return static_cast<uint64_t>(clamped + 0.5);
}

}  // namespace

Histogram Histogram::Build(std::vector<double> keys, size_t num_buckets) {
  Histogram h;
  h.total_ = keys.size();
  if (keys.empty()) return h;
  std::sort(keys.begin(), keys.end());
  h.min_ = keys.front();
  h.max_ = keys.back();
  num_buckets = std::min(num_buckets, keys.size());
  CAPD_CHECK_GT(num_buckets, 0u);
  h.boundaries_.push_back(keys.front());
  size_t start = 0;
  for (size_t b = 0; b < num_buckets; ++b) {
    size_t end = (keys.size() * (b + 1)) / num_buckets;
    if (end <= start) continue;
    h.boundaries_.push_back(keys[end - 1]);
    h.counts_.push_back(end - start);
    start = end;
  }
  return h;
}

double Histogram::SelectivityBetween(double lo, double hi) const {
  if (total_ == 0 || lo > hi) return 0.0;
  double covered = 0.0;
  for (size_t b = 0; b < counts_.size(); ++b) {
    const double blo = boundaries_[b];
    const double bhi = boundaries_[b + 1];
    if (bhi < lo || blo > hi) continue;
    const double width = bhi - blo;
    double frac = 1.0;
    if (width > 0) {
      const double olo = std::max(lo, blo);
      const double ohi = std::min(hi, bhi);
      frac = (ohi - olo) / width;
    }
    covered += frac * static_cast<double>(counts_[b]);
  }
  return std::min(1.0, covered / static_cast<double>(total_));
}

double Histogram::SelectivityLe(double v) const {
  if (total_ == 0) return 0.0;
  return SelectivityBetween(min_, v);
}

double Histogram::SelectivityGe(double v) const {
  if (total_ == 0) return 0.0;
  return SelectivityBetween(v, max_);
}

TableStats TableStats::Compute(const Table& table) {
  if (!table.materialized()) return ComputeSampled(table);
  TableStats stats;
  stats.num_rows_ = table.num_rows();
  const Schema& schema = table.schema();
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    const Column& col = schema.column(c);
    ColumnStats cs;
    cs.num_rows = table.num_rows();
    std::vector<double> keys;
    keys.reserve(table.num_rows());
    std::set<std::string> distinct;
    uint64_t zero_bytes = 0;
    for (const Row& row : table.rows()) {
      const Value& v = row[c];
      keys.push_back(v.NumericKey());
      std::string enc = EncodeFieldToString(v, col);
      zero_bytes += CountLeadingZeros(enc);
      distinct.insert(std::move(enc));
    }
    cs.distinct = distinct.size();
    if (!keys.empty()) {
      cs.avg_leading_zero_bytes =
          static_cast<double>(zero_bytes) / static_cast<double>(keys.size());
    }
    cs.histogram = Histogram::Build(keys, Histogram::kDefaultBuckets);
    cs.min_key = cs.histogram.min();
    cs.max_key = cs.histogram.max();
    stats.columns_[col.name] = std::move(cs);
  }
  return stats;
}

TableStats TableStats::ComputeSampled(const Table& table) {
  TableStats stats;
  stats.sampled_ = true;
  const uint64_t n = table.num_rows();
  stats.num_rows_ = n;
  const uint64_t k = std::min(n, kSampledStatsRows);
  Random rng(kStatsSeedSalt ^ Fnv1a64(table.name()));
  stats.sample_rows_ = table.CollectRows(rng.SampleIndices(n, k));
  const uint64_t r = stats.sample_rows_.size();
  const Schema& schema = table.schema();
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    const Column& col = schema.column(c);
    ColumnStats cs;
    cs.num_rows = n;  // exact: the generated table knows its cardinality
    std::vector<double> keys;
    keys.reserve(r);
    std::map<std::string, uint64_t> class_counts;
    uint64_t zero_bytes = 0;
    for (const Row& row : stats.sample_rows_) {
      const Value& v = row[c];
      keys.push_back(v.NumericKey());
      std::string enc = EncodeFieldToString(v, col);
      zero_bytes += CountLeadingZeros(enc);
      ++class_counts[std::move(enc)];
    }
    cs.distinct = ScaledDistinct(class_counts, r, n);
    if (!keys.empty()) {
      cs.avg_leading_zero_bytes =
          static_cast<double>(zero_bytes) / static_cast<double>(keys.size());
    }
    cs.histogram = Histogram::Build(keys, Histogram::kDefaultBuckets);
    cs.min_key = cs.histogram.min();
    cs.max_key = cs.histogram.max();
    stats.columns_[col.name] = std::move(cs);
  }
  return stats;
}

const ColumnStats& TableStats::column(const std::string& name) const {
  const auto it = columns_.find(name);
  CAPD_CHECK(it != columns_.end()) << "no stats for column " << name;
  return it->second;
}

uint64_t TableStats::DistinctOfColumns(
    const Table& table, const std::vector<std::string>& cols) const {
  std::ostringstream key;
  for (const std::string& c : cols) key << c << ",";
  const auto cached = combo_cache_.find(key.str());
  if (cached != combo_cache_.end()) return cached->second;

  std::vector<size_t> positions;
  positions.reserve(cols.size());
  for (const std::string& c : cols) {
    positions.push_back(table.schema().ColumnIndex(c));
  }
  uint64_t result;
  if (sampled_) {
    // GEE-scale the combination's distinct count from the retained stats
    // sample instead of scanning the generated table.
    std::map<std::string, uint64_t> class_counts;
    for (const Row& row : sample_rows_) {
      std::string combo;
      for (size_t p : positions) {
        combo.append(row[p].ToString());
        combo.push_back('\x1f');
      }
      ++class_counts[std::move(combo)];
    }
    result = ScaledDistinct(class_counts, sample_rows_.size(), num_rows_);
  } else {
    std::set<std::string> distinct;
    for (const Row& row : table.rows()) {
      std::string combo;
      for (size_t p : positions) {
        combo.append(row[p].ToString());
        combo.push_back('\x1f');
      }
      distinct.insert(std::move(combo));
    }
    result = distinct.size();
  }
  combo_cache_[key.str()] = result;
  return result;
}

}  // namespace capd
