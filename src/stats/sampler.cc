#include "stats/sampler.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace capd {

std::unique_ptr<Table> CreateUniformSample(const Table& table, double f,
                                           uint64_t min_rows, Random* rng) {
  CAPD_CHECK_GT(f, 0.0);
  CAPD_CHECK_LE(f, 1.0);
  const uint64_t n = table.num_rows();
  uint64_t k = static_cast<uint64_t>(static_cast<double>(n) * f + 0.5);
  k = std::min(n, std::max(k, std::min(n, min_rows)));
  auto sample = std::make_unique<Table>(table.name() + "_sample", table.schema());
  sample->Reserve(k);
  for (uint64_t idx : rng->SampleIndices(n, k)) {
    sample->AddRow(table.rows()[idx]);
  }
  return sample;
}

std::unique_ptr<Table> CreateFilteredSample(const Table& sample,
                                            const ColumnFilter& filter) {
  auto filtered = std::make_unique<Table>(sample.name() + "_flt", sample.schema());
  for (const Row& row : sample.rows()) {
    if (filter.Matches(row, sample.schema())) filtered->AddRow(row);
  }
  return filtered;
}

namespace {

// FNV-1a: a fixed, platform-independent string hash so per-key sample seeds
// (and therefore every estimate) are reproducible across runs and builds.
uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

Random SampleManager::RngFor(const std::string& key) const {
  return Random(seed_ ^ Fnv1a(key));
}

uint64_t SampleManager::rows_scanned() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rows_scanned_;
}

size_t SampleManager::num_samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_.size();
}

const Table& SampleManager::GetSampleLocked(const Table& table, double f) {
  std::ostringstream key;
  key << table.name() << "|" << f;
  auto it = samples_.find(key.str());
  if (it == samples_.end()) {
    // Drawing the sample scans the base table once. Building under the lock
    // serializes creation, which also keeps rows_scanned_ exact.
    rows_scanned_ += table.num_rows();
    Random rng = RngFor(key.str());
    it = samples_
             .emplace(key.str(),
                      CreateUniformSample(table, f, /*min_rows=*/50, &rng))
             .first;
  }
  return *it->second;
}

const Table& SampleManager::GetSample(const Table& table, double f) {
  std::lock_guard<std::mutex> lock(mu_);
  return GetSampleLocked(table, f);
}

const Table& SampleManager::GetFilteredSample(const Table& table, double f,
                                              const ColumnFilter& filter) {
  std::ostringstream key;
  key << table.name() << "|" << f << "|" << filter.ToString();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = samples_.find(key.str());
  if (it == samples_.end()) {
    const Table& base = GetSampleLocked(table, f);
    it = samples_.emplace(key.str(), CreateFilteredSample(base, filter)).first;
  }
  return *it->second;
}

}  // namespace capd
