#include "stats/sampler.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"
#include "common/math_util.h"

namespace capd {

std::unique_ptr<Table> CreateUniformSample(const Table& table, double f,
                                           uint64_t min_rows, Random* rng) {
  CAPD_CHECK_GT(f, 0.0);
  CAPD_CHECK_LE(f, 1.0);
  const uint64_t n = table.num_rows();
  // Sample size: round(n * f), floored at min_rows, never more than n.
  const uint64_t k =
      std::clamp(RoundedFraction(n, f), std::min(min_rows, n), n);
  auto sample = std::make_unique<Table>(table.name() + "_sample", table.schema());
  sample->Reserve(k);
  // Streaming extraction: the k indices are drawn up front in sorted order
  // (O(k) memory), then the table is streamed block-by-block picking the
  // requested rows — a generated 10^8-row table never materializes, and a
  // materialized table yields the byte-identical sample it always did.
  for (Row& row : table.CollectRows(rng->SampleIndices(n, k))) {
    sample->AddRow(std::move(row));
  }
  return sample;
}

std::unique_ptr<Table> CreateFilteredSample(const Table& sample,
                                            const ColumnFilter& filter) {
  auto filtered = std::make_unique<Table>(sample.name() + "_flt", sample.schema());
  const Schema& schema = sample.schema();
  sample.ScanRows([&](uint64_t, const Row& row) {
    if (filter.Matches(row, schema)) filtered->AddRow(row);
  });
  return filtered;
}

Random SampleManager::RngFor(const std::string& key) const {
  return Random(seed_ ^ Fnv1a64(key));
}

uint64_t SampleManager::rows_scanned() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rows_scanned_;
}

size_t SampleManager::num_samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_.size();
}

const Table& SampleManager::GetSampleLocked(const Table& table, double f) {
  std::ostringstream key;
  key << table.name() << "|" << f;
  auto it = samples_.find(key.str());
  if (it == samples_.end()) {
    // Drawing the sample scans the base table once. Building under the lock
    // serializes creation, which also keeps rows_scanned_ exact.
    rows_scanned_ += table.num_rows();
    Random rng = RngFor(key.str());
    it = samples_
             .emplace(key.str(),
                      CreateUniformSample(table, f, /*min_rows=*/50, &rng))
             .first;
  }
  return *it->second;
}

const Table& SampleManager::GetSample(const Table& table, double f) {
  std::lock_guard<std::mutex> lock(mu_);
  return GetSampleLocked(table, f);
}

const Table& SampleManager::GetFilteredSample(const Table& table, double f,
                                              const ColumnFilter& filter) {
  std::ostringstream key;
  key << table.name() << "|" << f << "|" << filter.ToString();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = samples_.find(key.str());
  if (it == samples_.end()) {
    const Table& base = GetSampleLocked(table, f);
    it = samples_.emplace(key.str(), CreateFilteredSample(base, filter)).first;
  }
  return *it->second;
}

}  // namespace capd
