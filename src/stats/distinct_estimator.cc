#include "stats/distinct_estimator.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace capd {
namespace {

constexpr uint64_t kRareThreshold = 10;

}  // namespace

FrequencyStats BuildFrequencyStats(const std::vector<uint64_t>& class_counts) {
  FrequencyStats f;
  for (uint64_t c : class_counts) {
    CAPD_CHECK_GT(c, 0u);
    ++f[c];
  }
  return f;
}

double AdaptiveEstimate(const FrequencyStats& f, uint64_t d, uint64_t r,
                        uint64_t n) {
  if (d == 0 || r == 0) return 0.0;
  CAPD_CHECK_LE(d, r);
  if (r >= n) return static_cast<double>(d);  // sample covers everything

  uint64_t d_rare = 0;     // distinct classes with sample count <= threshold
  uint64_t n_rare = 0;     // tuples in those classes
  uint64_t sum_kk1 = 0;    // sum k(k-1) f_k over rare classes
  uint64_t f1 = 0;
  for (const auto& [k, fk] : f) {
    if (k == 1) f1 = fk;
    if (k <= kRareThreshold) {
      d_rare += fk;
      n_rare += k * fk;
      sum_kk1 += k * (k - 1) * fk;
    }
  }
  const uint64_t d_abund = d - d_rare;

  double estimate;
  if (n_rare == 0) {
    estimate = static_cast<double>(d);
  } else if (f1 == n_rare) {
    // Every rare class is a singleton: no coverage signal at all. The data
    // looks key-like, and linear scale-up (which equals Multiply on the
    // rare part) is the consistent estimate; GEE's sqrt scaling would
    // underestimate true keys by sqrt(n/r).
    estimate = static_cast<double>(d_abund) +
               static_cast<double>(f1) * static_cast<double>(n) /
                   static_cast<double>(r);
  } else {
    // Good-Turing sample coverage of the rare classes.
    const double coverage =
        1.0 - static_cast<double>(f1) / static_cast<double>(n_rare);
    const double d_rare_hat = static_cast<double>(d_rare) / coverage;
    // Squared coefficient of variation of rare-class frequencies.
    double gamma2 = 0.0;
    if (n_rare > 1) {
      gamma2 = std::max(
          0.0, d_rare_hat * static_cast<double>(sum_kk1) /
                       (static_cast<double>(n_rare) *
                        static_cast<double>(n_rare - 1)) -
                   1.0);
    }
    estimate = static_cast<double>(d_abund) + d_rare_hat +
               static_cast<double>(f1) / coverage * gamma2;
  }
  estimate = std::max(estimate, static_cast<double>(d));
  estimate = std::min(estimate, static_cast<double>(n));
  return estimate;
}

double GeeEstimate(const FrequencyStats& f, uint64_t r, uint64_t n) {
  if (r == 0) return 0.0;
  double est = 0.0;
  for (const auto& [k, fk] : f) {
    if (k == 1) {
      est += std::sqrt(static_cast<double>(n) / static_cast<double>(r)) *
             static_cast<double>(fk);
    } else {
      est += static_cast<double>(fk);
    }
  }
  return std::min(est, static_cast<double>(n));
}

double MultiplyEstimate(uint64_t d, uint64_t r, uint64_t n) {
  if (r == 0) return 0.0;
  return std::min(static_cast<double>(d) * static_cast<double>(n) /
                      static_cast<double>(r),
                  static_cast<double>(n));
}

double OptimizerIndependenceEstimate(
    const std::vector<uint64_t>& per_column_distinct, uint64_t n) {
  double prod = 1.0;
  for (uint64_t d : per_column_distinct) {
    prod *= static_cast<double>(std::max<uint64_t>(d, 1));
  }
  return std::min(prod, static_cast<double>(n));
}

}  // namespace capd
