// Per-column statistics: distinct counts, min/max, and an equi-depth
// histogram over the column's numeric key. These are the "statistics
// typically maintained by the query optimizer for cardinality estimation"
// (Section 2.2) that both the what-if optimizer and the ORD-DEP deduction
// formulas consume.
#ifndef CAPD_STATS_COLUMN_STATS_H_
#define CAPD_STATS_COLUMN_STATS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "storage/table.h"

namespace capd {

// Equi-depth histogram over NumericKey values.
class Histogram {
 public:
  static constexpr size_t kDefaultBuckets = 64;

  Histogram() = default;

  // Builds from the (unsorted) values of one column.
  static Histogram Build(std::vector<double> keys, size_t num_buckets);

  // Estimated fraction of rows with key in [lo, hi] (inclusive).
  double SelectivityBetween(double lo, double hi) const;
  double SelectivityLe(double v) const;
  double SelectivityGe(double v) const;

  uint64_t total_rows() const { return total_; }
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  // boundaries_[i]..boundaries_[i+1] holds counts_[i] rows.
  std::vector<double> boundaries_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
};

struct ColumnStats {
  uint64_t num_rows = 0;
  uint64_t distinct = 0;
  double min_key = 0.0;
  double max_key = 0.0;
  // Average number of bytes NS saves per field (leading zero bytes). Feeds
  // analytic size reasoning and tests.
  double avg_leading_zero_bytes = 0.0;
  Histogram histogram;
};

class TableStats {
 public:
  // Rows drawn for the sampled-stats path on generated tables. Bounds the
  // stats memory (and the scan's resident set) regardless of table size.
  static constexpr uint64_t kSampledStatsRows = 16384;

  TableStats() = default;

  // Computes stats for every column. Materialized tables are scanned
  // exactly, as always. Blocked/generated tables are profiled from a
  // deterministic uniform sample of kSampledStatsRows rows (seeded by the
  // table name): num_rows stays exact, distinct counts are GEE-scaled
  // estimates, histograms and leading-zero averages come from the sample —
  // so profiling a 10^8-row table costs O(sample) memory, never O(table).
  static TableStats Compute(const Table& table);

  const ColumnStats& column(const std::string& name) const;
  uint64_t num_rows() const { return num_rows_; }

  // Distinct count over a column combination (the |AB|-style cardinality
  // input to the ORD-DEP deduction). Computed on demand and memoized.
  // Exact for materialized tables (intended to be called on samples);
  // GEE-scaled from the retained stats sample for generated tables.
  uint64_t DistinctOfColumns(const Table& table,
                             const std::vector<std::string>& cols) const;

 private:
  static TableStats ComputeSampled(const Table& table);

  uint64_t num_rows_ = 0;
  std::map<std::string, ColumnStats> columns_;
  mutable std::map<std::string, uint64_t> combo_cache_;
  // Sampled-path state: the retained sample rows DistinctOfColumns scales
  // from. Empty on the exact path.
  std::vector<Row> sample_rows_;
  bool sampled_ = false;
};

}  // namespace capd

#endif  // CAPD_STATS_COLUMN_STATS_H_
