// Join synopses (Appendix B.2, after Acharya et al. [2]): a uniform sample
// of a fact table joined with the FULL dimension tables along key/foreign-
// key edges, so every sampled fact row finds its matches. MV samples for
// FK-join views are cut from this synopsis.
#ifndef CAPD_STATS_JOIN_SYNOPSIS_H_
#define CAPD_STATS_JOIN_SYNOPSIS_H_

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "storage/table.h"

namespace capd {

// A key/foreign-key edge: fact.fk_column references dim.key_column.
struct ForeignKey {
  std::string fact_table;
  std::string fk_column;
  std::string dim_table;
  std::string key_column;
};

// Builds the synopsis: sample the fact table at fraction f, then join with
// each dimension table in `edges` (all must emanate from `fact`). Column
// names must be globally unique across the joined tables (our generators
// use per-table prefixes, TPC-H style). The dimension join key column is
// not duplicated — the fact side's FK column carries the value.
std::unique_ptr<Table> BuildJoinSynopsis(
    const Table& fact, const std::vector<const Table*>& dims,
    const std::vector<ForeignKey>& edges, double f, Random* rng);

}  // namespace capd

#endif  // CAPD_STATS_JOIN_SYNOPSIS_H_
