// Distinct-value estimation from sample frequency statistics, used to
// predict the number of tuples in aggregation MVs (Appendix B.3). Implements
// the Adaptive Estimator (coverage-adjusted, after Charikar et al. [6])
// plus the two baselines the paper compares against in Table 1:
//   - Multiply: scale sample distinct count by 1/f (379% avg error);
//   - Optimizer: per-column independence assumption (96% avg error).
#ifndef CAPD_STATS_DISTINCT_ESTIMATOR_H_
#define CAPD_STATS_DISTINCT_ESTIMATOR_H_

#include <cstdint>
#include <map>
#include <vector>

namespace capd {

// Frequency statistics of a sample: freq_counts[k] = number of distinct
// values that appear exactly k times in the sample (the paper's f_k).
using FrequencyStats = std::map<uint64_t, uint64_t>;

// Adaptive Estimator. Inputs follow CreateMVSample (Appendix B.3):
//   f : frequency statistics of the sample
//   d : number of distinct values in the sample (= sum of f_k)
//   r : number of sampled tuples (= sum of k * f_k)
//   n : number of tuples in the original table (after the MV's filter)
// Returns an estimate of the number of distinct values (MV tuples) in the
// full data, clamped to [d, n]. Abundance-based coverage style: classes
// seen >= kRareThreshold times are taken as fully observed; the rare
// remainder is scaled by estimated sample coverage with a skew correction.
double AdaptiveEstimate(const FrequencyStats& f, uint64_t d, uint64_t r,
                        uint64_t n);

// GEE (Guaranteed Error Estimator) of [6]: sqrt(n/r)*f1 + sum_{k>=2} f_k.
double GeeEstimate(const FrequencyStats& f, uint64_t r, uint64_t n);

// Baseline "Multiply": d / sampling_fraction, i.e. d * n / r.
double MultiplyEstimate(uint64_t d, uint64_t r, uint64_t n);

// Baseline "Optimizer": independence across group-by columns — the product
// of per-column distinct counts, capped at n.
double OptimizerIndependenceEstimate(const std::vector<uint64_t>& per_column_distinct,
                                     uint64_t n);

// Helper: builds FrequencyStats from a list of per-class sample counts.
FrequencyStats BuildFrequencyStats(const std::vector<uint64_t>& class_counts);

}  // namespace capd

#endif  // CAPD_STATS_DISTINCT_ESTIMATOR_H_
