// Uniform and filtered samples (Section 4.1 / Appendix B.1). The Sample
// Manager amortizes the expensive part — drawing a uniform random sample —
// by taking ONE sample per table and reusing it for every index on that
// table; filtered samples for partial indexes are derived from it.
#ifndef CAPD_STATS_SAMPLER_H_
#define CAPD_STATS_SAMPLER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/random.h"
#include "index/index_def.h"
#include "storage/table.h"

namespace capd {

// Draws a uniform row sample of fraction f (at least min_rows if the table
// has them). The sample is itself a Table, so every consumer (index builder,
// stats) works on it unchanged.
std::unique_ptr<Table> CreateUniformSample(const Table& table, double f,
                                           uint64_t min_rows, Random* rng);

// Applies a partial-index predicate to an existing sample (Appendix B.1:
// "SELECT * INTO SI1 FROM S_LINEITEM WHERE ...").
std::unique_ptr<Table> CreateFilteredSample(const Table& sample,
                                            const ColumnFilter& filter);

// Caches one uniform sample per (table, f) and filtered variants on top.
// Tracks how many base-table rows were scanned to build samples, the
// dominant cost the paper's Section 4.1 amortizes away.
//
// Thread-safe: the parallel estimation engine calls GetSample from pool
// workers. Each sample is drawn from its own RNG seeded by (seed, cache
// key), so sample contents are independent of creation order and the
// parallel path is bit-identical to the serial one. Returned Table
// references stay valid for the manager's lifetime (entries are never
// evicted).
class SampleManager {
 public:
  explicit SampleManager(uint64_t seed) : seed_(seed) {}

  // Returns the cached sample of `table` at fraction f, creating it on
  // first use.
  const Table& GetSample(const Table& table, double f);

  // Filtered sample for a partial index (cached by filter signature).
  const Table& GetFilteredSample(const Table& table, double f,
                                 const ColumnFilter& filter);

  // Total base-table rows scanned to materialize samples so far.
  uint64_t rows_scanned() const;
  size_t num_samples() const;

 private:
  // Both require mu_ held.
  const Table& GetSampleLocked(const Table& table, double f);
  Random RngFor(const std::string& key) const;

  const uint64_t seed_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Table>> samples_;
  uint64_t rows_scanned_ = 0;
};

}  // namespace capd

#endif  // CAPD_STATS_SAMPLER_H_
