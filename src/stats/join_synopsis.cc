#include "stats/join_synopsis.h"

#include <map>

#include "common/logging.h"
#include "stats/sampler.h"

namespace capd {

std::unique_ptr<Table> BuildJoinSynopsis(
    const Table& fact, const std::vector<const Table*>& dims,
    const std::vector<ForeignKey>& edges, double f, Random* rng) {
  CAPD_CHECK_EQ(dims.size(), edges.size());

  // Result schema: all fact columns, then each dimension's non-key columns.
  std::vector<Column> cols = fact.schema().columns();
  for (size_t d = 0; d < dims.size(); ++d) {
    CAPD_CHECK_EQ(edges[d].fact_table, fact.name());
    CAPD_CHECK_EQ(edges[d].dim_table, dims[d]->name());
    for (const Column& c : dims[d]->schema().columns()) {
      if (c.name == edges[d].key_column) continue;
      cols.push_back(c);
    }
  }
  Schema joined_schema(std::move(cols));
  // Column-name uniqueness check (ColumnIndex aborts on duplicates only when
  // probed; verify eagerly for a clear error).
  for (size_t i = 0; i < joined_schema.num_columns(); ++i) {
    for (size_t j = i + 1; j < joined_schema.num_columns(); ++j) {
      CAPD_CHECK(joined_schema.column(i).name != joined_schema.column(j).name)
          << "duplicate column in join synopsis: " << joined_schema.column(i).name;
    }
  }

  // Hash the dimension tables on their keys (full tables, per [2]).
  std::vector<std::map<std::string, const Row*>> dim_maps(dims.size());
  for (size_t d = 0; d < dims.size(); ++d) {
    const size_t key_pos = dims[d]->schema().ColumnIndex(edges[d].key_column);
    for (const Row& row : dims[d]->rows()) {
      dim_maps[d][row[key_pos].ToString()] = &row;
    }
  }

  std::unique_ptr<Table> fact_sample =
      CreateUniformSample(fact, f, /*min_rows=*/50, rng);

  auto synopsis =
      std::make_unique<Table>(fact.name() + "_synopsis", joined_schema);
  synopsis->Reserve(fact_sample->num_rows());
  for (const Row& frow : fact_sample->rows()) {
    Row out = frow;
    bool matched = true;
    for (size_t d = 0; d < dims.size() && matched; ++d) {
      const size_t fk_pos = fact.schema().ColumnIndex(edges[d].fk_column);
      const auto it = dim_maps[d].find(frow[fk_pos].ToString());
      if (it == dim_maps[d].end()) {
        matched = false;  // dangling FK: drop (generators produce none)
        break;
      }
      const Row& drow = *it->second;
      const size_t key_pos = dims[d]->schema().ColumnIndex(edges[d].key_column);
      for (size_t c = 0; c < drow.size(); ++c) {
        if (c == key_pos) continue;
        out.push_back(drow[c]);
      }
    }
    if (matched) synopsis->AddRow(std::move(out));
  }
  return synopsis;
}

}  // namespace capd
