#include "index/index_def.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace capd {

bool ColumnFilter::Matches(const Row& row, const Schema& schema) const {
  const Value& v = row[schema.ColumnIndex(column)];
  switch (op) {
    case FilterOp::kEq:
      return v.Compare(lo) == 0;
    case FilterOp::kLt:
      return v.Compare(lo) < 0;
    case FilterOp::kLe:
      return v.Compare(lo) <= 0;
    case FilterOp::kGt:
      return v.Compare(lo) > 0;
    case FilterOp::kGe:
      return v.Compare(lo) >= 0;
    case FilterOp::kBetween:
      return v.Compare(lo) >= 0 && v.Compare(hi) <= 0;
  }
  return false;
}

std::string ColumnFilter::ToString() const {
  std::ostringstream os;
  os << column;
  switch (op) {
    case FilterOp::kEq:
      os << "=" << lo.ToString();
      break;
    case FilterOp::kLt:
      os << "<" << lo.ToString();
      break;
    case FilterOp::kLe:
      os << "<=" << lo.ToString();
      break;
    case FilterOp::kGt:
      os << ">" << lo.ToString();
      break;
    case FilterOp::kGe:
      os << ">=" << lo.ToString();
      break;
    case FilterOp::kBetween:
      os << " BETWEEN " << lo.ToString() << " AND " << hi.ToString();
      break;
  }
  return os.str();
}

std::vector<std::string> IndexDef::StoredColumns(
    const Schema& base_schema) const {
  std::vector<std::string> cols = key_columns;
  if (clustered) {
    for (const Column& c : base_schema.columns()) {
      if (std::find(cols.begin(), cols.end(), c.name) == cols.end()) {
        cols.push_back(c.name);
      }
    }
  } else {
    for (const std::string& c : include_columns) {
      if (std::find(cols.begin(), cols.end(), c) == cols.end()) {
        cols.push_back(c);
      }
    }
  }
  return cols;
}

IndexDef IndexDef::WithCompression(CompressionKind kind) const {
  IndexDef copy = *this;
  copy.compression = kind;
  return copy;
}

std::string IndexDef::StructureSignature() const {
  std::ostringstream os;
  os << object << (clustered ? "|C|" : "|N|");
  for (const std::string& c : key_columns) os << c << ",";
  os << "|";
  for (const std::string& c : include_columns) os << c << ",";
  if (filter.has_value()) os << "|F:" << filter->ToString();
  return os.str();
}

std::string IndexDef::Signature() const {
  return StructureSignature() + "|" + CompressionKindName(compression);
}

std::string IndexDef::ColumnSetSignature(const Schema& base_schema) const {
  std::vector<std::string> cols = StoredColumns(base_schema);
  std::sort(cols.begin(), cols.end());
  std::ostringstream os;
  os << object << (clustered ? "|C|" : "|N|");
  for (const std::string& c : cols) os << c << ",";
  if (filter.has_value()) os << "|F:" << filter->ToString();
  return os.str();
}

std::string IndexDef::ToString() const {
  std::ostringstream os;
  os << (clustered ? "CLUSTERED " : "") << "IDX(" << object << ": ";
  for (size_t i = 0; i < key_columns.size(); ++i) {
    if (i > 0) os << ",";
    os << key_columns[i];
  }
  if (!include_columns.empty()) {
    os << " INCLUDE ";
    for (size_t i = 0; i < include_columns.size(); ++i) {
      if (i > 0) os << ",";
      os << include_columns[i];
    }
  }
  if (filter.has_value()) os << " WHERE " << filter->ToString();
  os << ") " << CompressionKindName(compression);
  return os.str();
}

}  // namespace capd
