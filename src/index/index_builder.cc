#include "index/index_builder.h"

#include <algorithm>

#include "common/logging.h"
#include "compress/codec_factory.h"
#include "compress/flat_page.h"
#include "storage/encoding.h"

namespace capd {
namespace {

// Implicit row locator appended to secondary (non-clustered) indexes.
Column RowLocatorColumn() {
  return Column{"__rowid", ValueType::kInt64, 8};
}

// Locator values are page:slot style pointers in a real engine — high
// entropy, incompressible, and (critically for SampleCF) with the same
// entropy in a sample as in the full index. A sequential id would compress
// better in small samples and bias every size estimate low.
int64_t MixLocator(int64_t rowid) {
  uint64_t x = static_cast<uint64_t>(rowid) * 0x9E3779B97F4A7C15ull;
  return static_cast<int64_t>(x >> 16);  // 48-bit positive value
}

}  // namespace

Schema IndexBuilder::StoredSchema(const IndexDef& def) const {
  const Schema& base = table_->schema();
  std::vector<Column> cols;
  for (const std::string& name : def.StoredColumns(base)) {
    cols.push_back(base.column(base.ColumnIndex(name)));
  }
  if (!def.clustered) cols.push_back(RowLocatorColumn());
  return Schema(std::move(cols));
}

std::vector<Row> IndexBuilder::MaterializeRows(const IndexDef& def) const {
  const Schema& base = table_->schema();
  const std::vector<std::string> stored = def.StoredColumns(base);
  std::vector<size_t> positions;
  positions.reserve(stored.size());
  for (const std::string& name : stored) {
    positions.push_back(base.ColumnIndex(name));
  }

  std::vector<Row> rows;
  // Pre-size only when the table is already resident; for generated tables
  // the reservation would itself be the O(n) allocation we are avoiding.
  if (table_->materialized()) rows.reserve(table_->num_rows());
  table_->ScanRows([&](uint64_t global_idx, const Row& r) {
    // rowid stays the historical 1-based position so MixLocator emits the
    // exact locator stream the goldens pin.
    const int64_t rowid = static_cast<int64_t>(global_idx) + 1;
    if (def.filter.has_value() && !def.filter->Matches(r, base)) return;
    Row projected;
    projected.reserve(positions.size() + 1);
    for (size_t p : positions) projected.push_back(r[p]);
    if (!def.clustered) projected.push_back(Value::Int64(MixLocator(rowid)));
    rows.push_back(std::move(projected));
    CAPD_CHECK(max_materialize_rows_ == 0 ||
               rows.size() <= max_materialize_rows_)
        << "index materialization exceeded its memory budget of "
        << max_materialize_rows_ << " rows (table " << table_->name() << ")";
  });

  const size_t num_keys = def.key_columns.size();
  std::sort(rows.begin(), rows.end(), [num_keys](const Row& a, const Row& b) {
    for (size_t k = 0; k < num_keys; ++k) {
      const int c = a[k].Compare(b[k]);
      if (c != 0) return c < 0;
    }
    return false;
  });
  return rows;
}

IndexPhysical IndexBuilder::Build(const IndexDef& def) const {
  return Pack(def, MaterializeRows(def));
}

IndexPhysical IndexBuilder::Pack(const IndexDef& def,
                                 const std::vector<Row>& rows) const {
  const Schema stored = StoredSchema(def);
  std::unique_ptr<Codec> codec = MakeCodec(def.compression, stored, rows);
  IndexPhysical phys;
  phys.tuples = rows.size();
  const PackResult packed = PackPages(rows, stored, *codec);
  phys.data_pages = packed.pages;
  phys.payload_bytes = packed.payload_bytes;
  phys.overhead_bytes = codec->IndexOverheadBytes();
  return phys;
}

double IndexBuilder::TrueCompressionFraction(const IndexDef& def) const {
  const std::vector<Row> rows = MaterializeRows(def);
  const IndexPhysical compressed = Pack(def, rows);
  const IndexPhysical plain =
      Pack(def.WithCompression(CompressionKind::kNone), rows);
  CAPD_CHECK_GT(plain.fine_bytes(), 0u);
  // Byte granularity: page counts quantize small indexes to CF = 1.
  return static_cast<double>(compressed.fine_bytes()) /
         static_cast<double>(plain.fine_bytes());
}

PackResult PackPages(const std::vector<Row>& rows, const Schema& schema,
                     const Codec& codec) {
  PackResult result;
  if (rows.empty()) {
    result.pages = 1;  // an index always has at least its root page
    return result;
  }
  uint64_t pages = 0;
  uint64_t payload = 0;
  size_t begin = 0;
  const size_t n = rows.size();
  // Zero-copy packing: render every field once into one flat columnar
  // arena, then drive the probe loop through the size-only codec kernels.
  // Each exponential/binary-search probe is a measurement over an O(1)
  // span slice — no EncodedPage, no blob, no per-field strings.
  const FlatPage flat = FlatPage::FromRows(rows, schema, 0, n);
  auto blob_size = [&](size_t b, size_t e) {
    return static_cast<size_t>(codec.MeasurePage(flat.span(b, e)));
  };
  while (begin < n) {
    // Exponential probe for an upper bound on rows that fit.
    size_t lo = 1;  // we always place at least one row per page
    size_t hi = 1;
    while (begin + hi <= n && blob_size(begin, begin + hi) <= kPageCapacity) {
      if (begin + hi == n) break;
      lo = hi;
      hi = hi * 2;
    }
    size_t take;
    if (blob_size(begin, begin + std::min(hi, n - begin)) <= kPageCapacity) {
      take = std::min(hi, n - begin);
    } else {
      // Binary search in (lo, hi): lo fits, hi does not.
      size_t bad = std::min(hi, n - begin);
      size_t good = lo;
      while (good + 1 < bad) {
        const size_t mid = good + (bad - good) / 2;
        if (blob_size(begin, begin + mid) <= kPageCapacity) {
          good = mid;
        } else {
          bad = mid;
        }
      }
      take = good;
    }
    const size_t sz = blob_size(begin, begin + take);
    payload += sz;
    if (take == 1 && sz > kPageCapacity) {
      // One giant row: spill across multiple pages.
      pages += (sz + kPageCapacity - 1) / kPageCapacity;
    } else {
      pages += 1;
    }
    begin += take;
  }
  result.pages = pages;
  result.payload_bytes = payload;
  return result;
}

}  // namespace capd
