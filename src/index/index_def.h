// Logical index definitions: the objects the physical-design tool reasons
// about. An IndexDef names a base object (table or materialized view), key
// and included columns, clustered-ness, an optional partial-index filter,
// and a compression method. Two defs that differ only in compression are
// "compressed variants" of each other (Section 3 of the paper).
#ifndef CAPD_INDEX_INDEX_DEF_H_
#define CAPD_INDEX_INDEX_DEF_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "compress/compression_kind.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace capd {

// Simple single-column range/equality filter used for partial indexes.
enum class FilterOp : uint8_t { kEq, kLt, kLe, kGt, kGe, kBetween };

struct ColumnFilter {
  std::string column;
  FilterOp op = FilterOp::kEq;
  Value lo;  // operand; for kBetween the lower bound
  Value hi;  // upper bound (kBetween only)

  bool Matches(const Row& row, const Schema& schema) const;
  std::string ToString() const;
};

struct IndexDef {
  std::string object;  // base table or MV name
  std::vector<std::string> key_columns;
  std::vector<std::string> include_columns;
  bool clustered = false;
  CompressionKind compression = CompressionKind::kNone;
  std::optional<ColumnFilter> filter;  // partial index predicate

  // All columns physically stored: for clustered indexes every table column;
  // otherwise keys + includes (+ an implicit 8-byte row locator, accounted
  // by the builder).
  std::vector<std::string> StoredColumns(const Schema& base_schema) const;

  // The same index with a different compression method.
  IndexDef WithCompression(CompressionKind kind) const;

  // Identity ignoring compression: same object/keys/includes/clustered/
  // filter. Used by ColSet deduction and candidate bookkeeping.
  std::string StructureSignature() const;
  // Full identity including compression.
  std::string Signature() const;
  // The unordered column-set identity (ColSet deduction: ORD-IND sizes
  // depend only on the stored column multiset).
  std::string ColumnSetSignature(const Schema& base_schema) const;

  std::string ToString() const;

  bool operator==(const IndexDef& other) const {
    return Signature() == other.Signature();
  }
};

}  // namespace capd

#endif  // CAPD_INDEX_INDEX_DEF_H_
