// Materializes an index over a table's rows and measures its exact physical
// size: rows are filtered (partial indexes), projected to the stored
// columns, sorted by key, and packed page-by-page under the chosen codec.
// This is the ground truth that SampleCF and the deduction methods estimate.
#ifndef CAPD_INDEX_INDEX_BUILDER_H_
#define CAPD_INDEX_INDEX_BUILDER_H_

#include <cstdint>
#include <vector>

#include "compress/codec.h"
#include "index/index_def.h"
#include "storage/table.h"

namespace capd {

struct IndexPhysical {
  uint64_t tuples = 0;
  uint64_t data_pages = 0;
  uint64_t payload_bytes = 0;   // sum of packed page blob sizes
  uint64_t overhead_bytes = 0;  // e.g. global dictionary storage

  uint64_t total_pages() const {
    return data_pages + (overhead_bytes + kPageSize - 1) / kPageSize;
  }
  uint64_t bytes() const { return total_pages() * kPageSize; }
  // Byte-granularity size: robust for tiny (sample-sized) indexes where
  // page counts quantize away the compression fraction.
  uint64_t fine_bytes() const { return payload_bytes + overhead_bytes; }
};

class IndexBuilder {
 public:
  explicit IndexBuilder(const Table& table) : table_(&table) {}

  // Memory budget: CHECK-fails if MaterializeRows would retain more than
  // this many rows (0 = unlimited). The estimation path sets it to the
  // sample size, making "peak memory is O(sample)" an enforced invariant
  // rather than a hope.
  void set_max_materialize_rows(uint64_t budget) {
    max_materialize_rows_ = budget;
  }

  // Schema of the physically stored rows (stored columns; secondary indexes
  // additionally carry an 8-byte row locator).
  Schema StoredSchema(const IndexDef& def) const;

  // Filter + project + sort. Exposed so callers (SampleCF, global dict
  // construction, tests) can reuse the materialized rows. Streams the table
  // block-by-block: only the filtered+projected rows are retained, never a
  // second copy of the base table.
  std::vector<Row> MaterializeRows(const IndexDef& def) const;

  // Full build: returns the measured physical size.
  IndexPhysical Build(const IndexDef& def) const;

  // Packs pre-materialized rows (must match StoredSchema(def)). Avoids
  // re-sorting when measuring several compression variants of one index.
  IndexPhysical Pack(const IndexDef& def, const std::vector<Row>& rows) const;

  // Exact compression fraction: size(compressed variant)/size(uncompressed).
  double TrueCompressionFraction(const IndexDef& def) const;

 private:
  const Table* table_;
  uint64_t max_materialize_rows_ = 0;
};

// Greedy page packing: fills each page with the longest row prefix whose
// compressed blob fits kPageCapacity (exponential probe + binary search).
// Oversized single rows spill across ceil(size/capacity) pages.
struct PackResult {
  uint64_t pages = 0;
  uint64_t payload_bytes = 0;  // sum of per-page blob sizes
};
PackResult PackPages(const std::vector<Row>& rows, const Schema& schema,
                     const Codec& codec);

}  // namespace capd

#endif  // CAPD_INDEX_INDEX_BUILDER_H_
