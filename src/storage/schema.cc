#include "storage/schema.h"

#include "common/logging.h"

namespace capd {

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {
  for (const Column& c : columns_) {
    CAPD_CHECK_GT(c.width, 0u) << "column " << c.name;
    row_width_ += c.width;
  }
}

const Column& Schema::column(size_t i) const {
  CAPD_CHECK_LT(i, columns_.size());
  return columns_[i];
}

size_t Schema::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  CAPD_CHECK(false) << "no such column: " << name;
  return 0;
}

bool Schema::HasColumn(const std::string& name) const {
  for (const Column& c : columns_) {
    if (c.name == name) return true;
  }
  return false;
}

Schema Schema::Project(const std::vector<size_t>& positions) const {
  std::vector<Column> cols;
  cols.reserve(positions.size());
  for (size_t p : positions) cols.push_back(column(p));
  return Schema(std::move(cols));
}

}  // namespace capd
