#include "storage/encoding.h"

#include <cstring>

#include "common/logging.h"

namespace capd {
namespace {

uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

int64_t UnZigZag(uint64_t u) {
  return static_cast<int64_t>(u >> 1) ^ -static_cast<int64_t>(u & 1);
}

void AppendBigEndian64(uint64_t u, std::string* out) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out->push_back(static_cast<char>((u >> shift) & 0xff));
  }
}

uint64_t ReadBigEndian64(std::string_view data) {
  uint64_t u = 0;
  for (size_t i = 0; i < 8; ++i) {
    u = (u << 8) | static_cast<unsigned char>(data[i]);
  }
  return u;
}

// Order-preserving transform for IEEE doubles: flip sign bit for positives,
// flip all bits for negatives.
uint64_t DoubleToOrderedBits(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  if (bits & (1ull << 63)) return ~bits;
  return bits | (1ull << 63);
}

double OrderedBitsToDouble(uint64_t bits) {
  if (bits & (1ull << 63)) {
    bits &= ~(1ull << 63);
  } else {
    bits = ~bits;
  }
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

}  // namespace

void EncodeField(const Value& v, const Column& col, std::string* out) {
  CAPD_CHECK(v.type() == col.type)
      << "value type " << ValueTypeName(v.type()) << " vs column " << col.name
      << " of " << ValueTypeName(col.type);
  switch (col.type) {
    case ValueType::kInt64:
    case ValueType::kDate: {
      CAPD_CHECK_EQ(col.width, 8u) << "integer columns are 8 bytes wide";
      AppendBigEndian64(ZigZag(v.AsInt64()), out);
      return;
    }
    case ValueType::kDouble: {
      CAPD_CHECK_EQ(col.width, 8u);
      AppendBigEndian64(DoubleToOrderedBits(v.AsDouble()), out);
      return;
    }
    case ValueType::kString: {
      const std::string& s = v.AsString();
      const size_t w = col.width;
      const size_t n = s.size() > w ? w : s.size();
      out->append(w - n, '\0');  // left pad: redundancy at the front
      out->append(s.data(), n);  // truncate over-wide strings
      return;
    }
  }
}

std::string EncodeFieldToString(const Value& v, const Column& col) {
  std::string out;
  out.reserve(col.width);
  EncodeField(v, col, &out);
  return out;
}

Value DecodeField(std::string_view data, const Column& col) {
  CAPD_CHECK_EQ(data.size(), static_cast<size_t>(col.width));
  switch (col.type) {
    case ValueType::kInt64:
      return Value::Int64(UnZigZag(ReadBigEndian64(data)));
    case ValueType::kDate:
      return Value::Date(UnZigZag(ReadBigEndian64(data)));
    case ValueType::kDouble:
      return Value::Double(OrderedBitsToDouble(ReadBigEndian64(data)));
    case ValueType::kString: {
      size_t start = 0;
      while (start < data.size() && data[start] == '\0') ++start;
      return Value::String(std::string(data.substr(start)));
    }
  }
  return Value();
}

std::string EncodeRow(const Row& row, const Schema& schema) {
  CAPD_CHECK_EQ(row.size(), schema.num_columns());
  std::string out;
  out.reserve(schema.RowWidth());
  for (size_t c = 0; c < row.size(); ++c) {
    EncodeField(row[c], schema.column(c), &out);
  }
  return out;
}

Row DecodeRow(std::string_view data, const Schema& schema) {
  CAPD_CHECK_EQ(data.size(), static_cast<size_t>(schema.RowWidth()));
  Row row;
  row.reserve(schema.num_columns());
  size_t offset = 0;
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    const Column& col = schema.column(c);
    row.push_back(DecodeField(data.substr(offset, col.width), col));
    offset += col.width;
  }
  return row;
}

EncodedPage EncodeRows(const std::vector<Row>& rows, const Schema& schema,
                       size_t begin, size_t end) {
  CAPD_CHECK_LE(begin, end);
  CAPD_CHECK_LE(end, rows.size());
  EncodedPage page;
  page.rows.reserve(end - begin);
  for (size_t i = begin; i < end; ++i) {
    const Row& row = rows[i];
    CAPD_CHECK_EQ(row.size(), schema.num_columns());
    std::vector<std::string> fields;
    fields.reserve(row.size());
    for (size_t c = 0; c < row.size(); ++c) {
      fields.push_back(EncodeFieldToString(row[c], schema.column(c)));
    }
    page.rows.push_back(std::move(fields));
  }
  return page;
}

}  // namespace capd
