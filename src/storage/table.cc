#include "storage/table.h"

#include <algorithm>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace capd {

Table::Table(std::string name, Schema schema, uint64_t num_rows,
             std::shared_ptr<const BlockSource> source, uint64_t block_rows)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      source_(std::move(source)),
      generated_rows_(num_rows),
      block_rows_(block_rows) {
  CAPD_CHECK(source_ != nullptr) << "table " << name_;
  CAPD_CHECK_GT(block_rows_, 0u);
}

const std::vector<Row>& Table::rows() const {
  CAPD_CHECK(materialized())
      << "table " << name_
      << " is generated; use ScanRows/CollectRows or Materialize()";
  return rows_;
}

void Table::AddRow(Row row) {
  CAPD_CHECK(materialized()) << "table " << name_;
  CAPD_CHECK_EQ(row.size(), schema_.num_columns()) << "table " << name_;
  rows_.push_back(std::move(row));
}

void Table::ScanRows(
    const std::function<void(uint64_t, const Row&)>& fn) const {
  if (materialized()) {
    for (uint64_t i = 0; i < rows_.size(); ++i) fn(i, rows_[i]);
    return;
  }
  ColumnBlock block(schema_);
  Row scratch;
  const uint64_t n = num_rows();
  for (uint64_t b = 0; b < num_blocks(); ++b) {
    const uint64_t first = b * block_rows_;
    const uint64_t count = std::min(block_rows_, n - first);
    block.Reset(first);
    source_->FillBlock(b, first, count, &block);
    CAPD_CHECK_EQ(block.num_rows(), count)
        << "table " << name_ << " block " << b;
    for (uint64_t r = 0; r < count; ++r) {
      block.RowAt(r, &scratch);
      fn(first + r, scratch);
    }
  }
}

std::vector<Row> Table::CollectRows(
    const std::vector<uint64_t>& sorted_indices) const {
  std::vector<Row> out;
  out.reserve(sorted_indices.size());
  if (materialized()) {
    for (uint64_t idx : sorted_indices) {
      CAPD_CHECK_LT(idx, rows_.size()) << "table " << name_;
      out.push_back(rows_[idx]);
    }
    return out;
  }
  const uint64_t n = num_rows();
  ColumnBlock block(schema_);
  Row scratch;
  size_t i = 0;
  while (i < sorted_indices.size()) {
    const uint64_t idx = sorted_indices[i];
    CAPD_CHECK_LT(idx, n) << "table " << name_;
    const uint64_t b = idx / block_rows_;
    const uint64_t first = b * block_rows_;
    const uint64_t count = std::min(block_rows_, n - first);
    block.Reset(first);
    source_->FillBlock(b, first, count, &block);
    CAPD_CHECK_EQ(block.num_rows(), count)
        << "table " << name_ << " block " << b;
    // Drain every requested index that falls inside this block.
    for (; i < sorted_indices.size(); ++i) {
      const uint64_t next = sorted_indices[i];
      CAPD_CHECK_GE(next, idx) << "indices must be sorted ascending";
      if (next >= first + count) break;
      block.RowAt(next - first, &scratch);
      out.push_back(scratch);
    }
  }
  return out;
}

std::unique_ptr<Table> Table::Materialize(ThreadPool* pool) const {
  auto out = std::make_unique<Table>(name_, schema_);
  out->Reserve(num_rows());
  if (materialized()) {
    for (const Row& r : rows_) out->AddRow(r);
    return out;
  }
  const uint64_t n = num_rows();
  const uint64_t blocks = num_blocks();
  // Each block is generated independently from its own seed, so the fan-out
  // is embarrassingly parallel and the block-order splice below makes the
  // result identical at any thread count.
  std::vector<std::vector<Row>> per_block(blocks);
  ParallelFor(pool, blocks, [&](size_t b) {
    const uint64_t first = static_cast<uint64_t>(b) * block_rows_;
    const uint64_t count = std::min(block_rows_, n - first);
    ColumnBlock block(schema_);
    block.Reset(first);
    source_->FillBlock(b, first, count, &block);
    CAPD_CHECK_EQ(block.num_rows(), count)
        << "table " << name_ << " block " << b;
    std::vector<Row>& rows = per_block[b];
    rows.reserve(count);
    Row scratch;
    for (uint64_t r = 0; r < count; ++r) {
      block.RowAt(r, &scratch);
      rows.push_back(scratch);
    }
  });
  for (std::vector<Row>& rows : per_block) {
    for (Row& r : rows) out->AddRow(std::move(r));
  }
  return out;
}

uint64_t Table::HeapPages() const {
  const uint64_t row_bytes = schema_.RowWidth() + kRowOverhead;
  const uint64_t rows_per_page = kPageCapacity / row_bytes;
  CAPD_CHECK_GT(rows_per_page, 0u) << "row wider than a page";
  return (num_rows() + rows_per_page - 1) / rows_per_page;
}

}  // namespace capd
