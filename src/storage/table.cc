#include "storage/table.h"

#include "common/logging.h"

namespace capd {

void Table::AddRow(Row row) {
  CAPD_CHECK_EQ(row.size(), schema_.num_columns()) << "table " << name_;
  rows_.push_back(std::move(row));
}

uint64_t Table::HeapPages() const {
  const uint64_t row_bytes = schema_.RowWidth() + kRowOverhead;
  const uint64_t rows_per_page = kPageCapacity / row_bytes;
  CAPD_CHECK_GT(rows_per_page, 0u) << "row wider than a page";
  return (num_rows() + rows_per_page - 1) / rows_per_page;
}

}  // namespace capd
