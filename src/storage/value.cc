#include "storage/value.h"

#include <cmath>

#include "common/logging.h"

namespace capd {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kInt64:
      return "INT64";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
    case ValueType::kDate:
      return "DATE";
  }
  return "?";
}

Value Value::Int64(int64_t v) {
  Value out;
  out.type_ = ValueType::kInt64;
  out.int_ = v;
  return out;
}

Value Value::Double(double v) {
  Value out;
  out.type_ = ValueType::kDouble;
  out.double_ = v;
  return out;
}

Value Value::String(std::string v) {
  Value out;
  out.type_ = ValueType::kString;
  out.str_ = std::move(v);
  return out;
}

Value Value::Date(int64_t days) {
  Value out;
  out.type_ = ValueType::kDate;
  out.int_ = days;
  return out;
}

int64_t Value::AsInt64() const {
  CAPD_CHECK(type_ == ValueType::kInt64 || type_ == ValueType::kDate)
      << "not an integer value: " << ValueTypeName(type_);
  return int_;
}

double Value::AsDouble() const {
  CAPD_CHECK(type_ == ValueType::kDouble) << "not a double value";
  return double_;
}

const std::string& Value::AsString() const {
  CAPD_CHECK(type_ == ValueType::kString) << "not a string value";
  return str_;
}

double Value::NumericKey() const {
  switch (type_) {
    case ValueType::kInt64:
    case ValueType::kDate:
      return static_cast<double>(int_);
    case ValueType::kDouble:
      return double_;
    case ValueType::kString: {
      // Order-preserving code from the first 6 bytes.
      double code = 0.0;
      for (size_t i = 0; i < 6; ++i) {
        const double b = i < str_.size() ? static_cast<unsigned char>(str_[i]) : 0.0;
        code = code * 256.0 + b;
      }
      return code;
    }
  }
  return 0.0;
}

int Value::Compare(const Value& other) const {
  CAPD_CHECK(type_ == other.type_)
      << "cross-type compare: " << ValueTypeName(type_) << " vs "
      << ValueTypeName(other.type_);
  switch (type_) {
    case ValueType::kInt64:
    case ValueType::kDate:
      return int_ < other.int_ ? -1 : (int_ > other.int_ ? 1 : 0);
    case ValueType::kDouble:
      return double_ < other.double_ ? -1 : (double_ > other.double_ ? 1 : 0);
    case ValueType::kString:
      return str_ < other.str_ ? -1 : (str_ > other.str_ ? 1 : 0);
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type_) {
    case ValueType::kInt64:
    case ValueType::kDate:
      return std::to_string(int_);
    case ValueType::kDouble:
      return std::to_string(double_);
    case ValueType::kString:
      return str_;
  }
  return "";
}

}  // namespace capd
