#include "storage/block.h"

#include "common/logging.h"

namespace capd {

ColumnBlock::ColumnBlock(const Schema& schema) : cols_(schema.num_columns()) {}

void ColumnBlock::Reset(uint64_t first_row) {
  first_row_ = first_row;
  num_rows_ = 0;
  for (std::vector<Value>& col : cols_) col.clear();
}

void ColumnBlock::AppendRow(const Row& row) {
  CAPD_CHECK_EQ(row.size(), cols_.size());
  for (size_t c = 0; c < cols_.size(); ++c) cols_[c].push_back(row[c]);
  ++num_rows_;
}

void ColumnBlock::RowAt(uint64_t r, Row* out) const {
  CAPD_CHECK_LT(r, num_rows_);
  out->clear();
  out->reserve(cols_.size());
  for (size_t c = 0; c < cols_.size(); ++c) out->push_back(cols_[c][r]);
}

uint64_t BlockSeed(uint64_t seed, uint64_t block_index) {
  uint64_t z = seed + 0x9E3779B97F4A7C15ull * (block_index + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace capd
