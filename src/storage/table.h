// Tables come in two physical flavors behind one interface:
//   - materialized: rows live in a vector (the seed's representation; all
//     laptop-scale workloads and every sample table use it);
//   - blocked/generated: fixed-size columnar blocks produced on demand by a
//     seeded BlockSource, so a 10^7-10^8-row table is scanned one block at
//     a time and never fully resident.
// The physical-design machinery derives page counts through the index
// builder rather than from a real buffer pool, which is all the paper's
// evaluation needs. Scans go through ScanRows/CollectRows, which work on
// both flavors; rows() (and the random access it invites) is only legal on
// materialized tables.
#ifndef CAPD_STORAGE_TABLE_H_
#define CAPD_STORAGE_TABLE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "storage/block.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace capd {

class ThreadPool;

class Table {
 public:
  // Materialized (row-vector) table.
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  // Blocked/generated table: `num_rows` rows in blocks of `block_rows`,
  // produced on demand by `source` (shared so derived tables — renames,
  // samples of samples — can alias one generator).
  Table(std::string name, Schema schema, uint64_t num_rows,
        std::shared_ptr<const BlockSource> source,
        uint64_t block_rows = kDefaultBlockRows);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  bool materialized() const { return source_ == nullptr; }
  uint64_t num_rows() const {
    return materialized() ? rows_.size() : generated_rows_;
  }

  // Direct row access; only materialized tables have resident rows.
  // Streaming consumers should use ScanRows/CollectRows instead.
  const std::vector<Row>& rows() const;

  void AddRow(Row row);
  void Reserve(size_t n) { rows_.reserve(n); }

  // Block geometry. Materialized tables expose the same fixed-size view so
  // block-wise code paths need not special-case them.
  uint64_t block_rows() const { return block_rows_; }
  uint64_t num_blocks() const {
    return (num_rows() + block_rows_ - 1) / block_rows_;
  }

  // Streams every row in order: fn(global_row_index, row). Peak memory is
  // O(block) for generated tables (one scratch block + one scratch row),
  // O(1) extra for materialized ones. The Row reference is only valid for
  // the duration of the call.
  void ScanRows(const std::function<void(uint64_t, const Row&)>& fn) const;

  // Copies the rows at `sorted_indices` (ascending, in [0, num_rows())),
  // generating only the blocks that contain a requested index. This is the
  // streaming half of sample extraction: O(|indices| + block) memory.
  std::vector<Row> CollectRows(
      const std::vector<uint64_t>& sorted_indices) const;

  // Fully materializes this table into a row-vector Table with the same
  // name/schema/contents. Blocks are generated independently, fanned across
  // `pool` (ParallelFor; null = serial), and spliced in block order, so the
  // result is bit-identical at any thread count.
  std::unique_ptr<Table> Materialize(ThreadPool* pool = nullptr) const;

  // Uncompressed heap size in pages/bytes (fixed row width + slot overhead).
  uint64_t HeapPages() const;
  uint64_t HeapBytes() const { return HeapPages() * kPageSize; }

 private:
  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;

  // Generated-mode state; source_ == nullptr means materialized.
  std::shared_ptr<const BlockSource> source_;
  uint64_t generated_rows_ = 0;
  uint64_t block_rows_ = kDefaultBlockRows;
};

}  // namespace capd

#endif  // CAPD_STORAGE_TABLE_H_
