// In-memory tables. Rows live in a vector; the physical-design machinery
// derives page counts through the index builder rather than from a real
// buffer pool, which is all the paper's evaluation needs.
#ifndef CAPD_STORAGE_TABLE_H_
#define CAPD_STORAGE_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/schema.h"
#include "storage/value.h"

namespace capd {

class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  const std::vector<Row>& rows() const { return rows_; }
  uint64_t num_rows() const { return rows_.size(); }

  void AddRow(Row row);
  void Reserve(size_t n) { rows_.reserve(n); }

  // Uncompressed heap size in pages/bytes (fixed row width + slot overhead).
  uint64_t HeapPages() const;
  uint64_t HeapBytes() const { return HeapPages() * kPageSize; }

 private:
  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
};

}  // namespace capd

#endif  // CAPD_STORAGE_TABLE_H_
