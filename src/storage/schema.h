// Table schemas. Every column has a fixed on-page width (SQL-Server-style
// fixed-length CHAR/INT encodings) so that the compression codecs have
// leading-zero / shared-prefix redundancy to eliminate — exactly the
// redundancy the paper's compression-fraction analysis is about.
#ifndef CAPD_STORAGE_SCHEMA_H_
#define CAPD_STORAGE_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/value.h"

namespace capd {

struct Column {
  std::string name;
  ValueType type = ValueType::kInt64;
  // On-page bytes for one field. Int64/Double/Date are 8; strings use their
  // declared CHAR(n) width.
  uint32_t width = 8;
};

class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns);

  const std::vector<Column>& columns() const { return columns_; }
  const Column& column(size_t i) const;
  size_t num_columns() const { return columns_.size(); }

  // Index of `name`; aborts if absent (schemas are program-defined).
  size_t ColumnIndex(const std::string& name) const;
  bool HasColumn(const std::string& name) const;

  // Sum of column widths: the uncompressed fixed part of a row.
  uint32_t RowWidth() const { return row_width_; }

  // Sub-schema over the given column positions, in that order.
  Schema Project(const std::vector<size_t>& positions) const;

 private:
  std::vector<Column> columns_;
  uint32_t row_width_ = 0;
};

// Page geometry (SQL Server style: 8 KiB pages with a 96-byte header).
inline constexpr uint32_t kPageSize = 8192;
inline constexpr uint32_t kPageHeaderSize = 96;
inline constexpr uint32_t kPageCapacity = kPageSize - kPageHeaderSize;
// Per-row slot overhead in the uncompressed format.
inline constexpr uint32_t kRowOverhead = 2;

}  // namespace capd

#endif  // CAPD_STORAGE_SCHEMA_H_
