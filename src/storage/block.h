// Blocked columnar storage. A ColumnBlock holds a fixed-size run of rows
// column-major (struct-of-arrays); a BlockSource generates the rows of one
// block on demand from a per-block seed. Together they let Table expose
// 10^7-10^8-row datasets that are scanned one block at a time — peak memory
// is O(block), never O(table) — while staying bit-deterministic: block b's
// contents depend only on (table seed, b), not on scan order or thread
// count.
#ifndef CAPD_STORAGE_BLOCK_H_
#define CAPD_STORAGE_BLOCK_H_

#include <cstdint>
#include <vector>

#include "storage/schema.h"
#include "storage/value.h"

namespace capd {

// Rows per generated block. Small enough that one resident block of a wide
// schema stays in the low megabytes, large enough to amortize per-block
// generator setup.
inline constexpr uint64_t kDefaultBlockRows = 8192;

// One block of rows in columnar (struct-of-arrays) layout. Reused as a
// scratch buffer across blocks by scanning code: Reset() keeps the per
// column capacity so a long scan settles into zero steady-state
// allocation churn.
class ColumnBlock {
 public:
  explicit ColumnBlock(const Schema& schema);

  // Clears the block and pins the global index of its first row.
  void Reset(uint64_t first_row);

  // Appends one row (must match the schema's column count).
  void AppendRow(const Row& row);

  uint64_t first_row() const { return first_row_; }
  uint64_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return cols_.size(); }

  // Value of column `c` in the block-local row `r`.
  const Value& value(size_t c, uint64_t r) const { return cols_[c][r]; }

  // Reconstructs block-local row `r` into *out (cleared first). Taking a
  // scratch Row lets tight scan loops reuse one allocation.
  void RowAt(uint64_t r, Row* out) const;

 private:
  uint64_t first_row_ = 0;
  uint64_t num_rows_ = 0;
  std::vector<std::vector<Value>> cols_;  // cols_[column][row]
};

// Generates the rows of one block. Implementations MUST be deterministic
// per block — FillBlock(b, ...) always appends the identical rows for a
// given source, typically by seeding a fresh Random with
// BlockSeed(table_seed, b) — and thread-safe for concurrent FillBlock
// calls on distinct blocks (parallel materialization fans blocks across a
// ThreadPool).
class BlockSource {
 public:
  virtual ~BlockSource() = default;

  // Appends exactly `count` rows (global indices [first_row,
  // first_row+count)) to *out, which has been Reset(first_row).
  virtual void FillBlock(uint64_t block_index, uint64_t first_row,
                         uint64_t count, ColumnBlock* out) const = 0;
};

// splitmix64 mix of (seed, block): decorrelates per-block RNG streams so
// neighboring blocks do not see shifted copies of one stream.
uint64_t BlockSeed(uint64_t seed, uint64_t block_index);

}  // namespace capd

#endif  // CAPD_STORAGE_BLOCK_H_
