// Fixed-width field encoding. Each value is rendered into exactly
// column.width bytes with the compressible redundancy at the FRONT:
//   - integers/dates: zigzag, then big-endian with leading 0x00 bytes;
//   - doubles: order-preserving 8-byte big-endian of the sign-flipped bits;
//   - strings: right-justified, left-padded with 0x00 ("00000abc" in the
//     paper's NULL-suppression example).
// Byte-wise lexicographic comparison of encoded fields matches Value order
// for the numeric types and for equal-length strings (variable-length
// strings order by (length, content) — the index builder sorts on Value
// order, so this only affects how well the prefix codec's anchors line up).
#ifndef CAPD_STORAGE_ENCODING_H_
#define CAPD_STORAGE_ENCODING_H_

#include <string>
#include <vector>

#include "storage/schema.h"
#include "storage/value.h"

namespace capd {

// Encodes `v` into exactly `col.width` bytes (appended to *out).
void EncodeField(const Value& v, const Column& col, std::string* out);

// Convenience: returns the encoded field as its own string.
std::string EncodeFieldToString(const Value& v, const Column& col);

// Decodes a field previously produced by EncodeField. `data` must hold
// exactly col.width bytes.
Value DecodeField(std::string_view data, const Column& col);

// Encodes a whole row under `schema` (fields concatenated per column order).
// Field boundaries are implied by the schema widths.
std::string EncodeRow(const Row& row, const Schema& schema);
Row DecodeRow(std::string_view data, const Schema& schema);

// Legacy row-major page representation: a batch of rows with each field
// rendered to its fixed width as its own std::string. Still produced by
// DecompressPage (and by EncodeRows for tests/benches); the codecs'
// compression and measurement hot paths run on the flat columnar
// FlatPage/FlatSpan in src/compress/flat_page.h instead, which renders a
// whole page into one arena.
struct EncodedPage {
  // rows[i][c] is the encoded bytes of column c of row i (width widths[c]).
  std::vector<std::vector<std::string>> rows;
};

EncodedPage EncodeRows(const std::vector<Row>& rows, const Schema& schema,
                       size_t begin, size_t end);

}  // namespace capd

#endif  // CAPD_STORAGE_ENCODING_H_
