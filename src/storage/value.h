// Runtime value representation. The storage layer is deliberately small: four
// physical types cover everything the paper's workloads need (integers,
// dates-as-day-numbers, doubles, fixed-width strings).
#ifndef CAPD_STORAGE_VALUE_H_
#define CAPD_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace capd {

enum class ValueType : uint8_t {
  kInt64,
  kDouble,
  kString,
  kDate,  // stored as days since 1970-01-01, compared as integers
};

const char* ValueTypeName(ValueType t);

// A dynamically-typed value. Copyable; strings own their bytes.
class Value {
 public:
  Value() : type_(ValueType::kInt64), int_(0) {}

  static Value Int64(int64_t v);
  static Value Double(double v);
  static Value String(std::string v);
  static Value Date(int64_t days);

  ValueType type() const { return type_; }
  int64_t AsInt64() const;
  double AsDouble() const;
  const std::string& AsString() const;

  // Numeric view used by histogram/selectivity code: ints and dates map to
  // their integer value, doubles to themselves, strings to a prefix-based
  // order-preserving code.
  double NumericKey() const;

  // Total order within a type. Comparing across types is a logic error.
  int Compare(const Value& other) const;
  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  std::string ToString() const;

 private:
  ValueType type_;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string str_;
};

// A row is a positional vector of values matching a Schema.
using Row = std::vector<Value>;

}  // namespace capd

#endif  // CAPD_STORAGE_VALUE_H_
