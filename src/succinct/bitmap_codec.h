// BITMAP candidate structure: per-distinct-value WAH-compressed bitmaps with
// a rank/select directory, packaged as a page codec under the PR-9 contract
// (MeasurePage(span) == CompressPage(span).size(), exact and size-only).
//
// Blob layout:
//   varint n_rows
//   per column: 1 mode byte
//     mode 0 (NS fallback): n_rows null-suppressed fields in row order
//     mode 1 (bitmap): varint d; then per distinct value in first-appearance
//       order: NS(value), varint num_words, num_words little-endian 32-bit
//       WAH words encoding that value's n_rows-bit membership bitmap
// A column uses mode 1 iff its distinct count is <= kMaxDistinctPerColumn
// AND the bitmap payload is no larger than the NS payload — both decided
// from the same size-only arithmetic in MeasurePage and CompressPage, so the
// two always agree. Decompression expands each bitmap through
// WahBitmap::ToBitVector and places values via Select1, making the
// rank/select directory load-bearing in the product path.
#ifndef CAPD_SUCCINCT_BITMAP_CODEC_H_
#define CAPD_SUCCINCT_BITMAP_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "compress/codec.h"

namespace capd {

class BitmapCodec : public Codec {
 public:
  // Columns with more distinct values than this per page fall back to NS
  // mode (and DecompressPage rejects blobs claiming more — see death tests).
  static constexpr uint64_t kMaxDistinctPerColumn = 64;

  explicit BitmapCodec(std::vector<uint32_t> widths);

  using Codec::CompressPage;
  CompressionKind kind() const override { return CompressionKind::kBitmap; }
  std::string CompressPage(const FlatSpan& span) const override;
  uint64_t MeasurePage(const FlatSpan& span) const override;
  EncodedPage DecompressPage(std::string_view blob) const override;
};

}  // namespace capd

#endif  // CAPD_SUCCINCT_BITMAP_CODEC_H_
