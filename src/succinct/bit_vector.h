// Plain bit vector with a two-level rank directory: superblocks of 512 bits
// carry absolute 1-bit counts, 64-bit blocks carry counts relative to their
// superblock. Rank1 is O(1) (two table reads + one masked popcount); Select1
// is O(log) via binary search over the superblock directory followed by an
// in-superblock scan. This is the query backbone of the BITMAP candidate
// structure (src/succinct/bitmap_codec.*): per-distinct-value compressed
// bitmaps decode into BitVectors and are probed through Rank1/Select1.
#ifndef CAPD_SUCCINCT_BIT_VECTOR_H_
#define CAPD_SUCCINCT_BIT_VECTOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace capd {

class BitVector {
 public:
  BitVector() = default;

  // Append bits (LSB-first within the backing words). Appending after
  // Finish() aborts.
  void AppendBit(bool bit);
  void AppendRun(bool bit, uint64_t count);

  // Builds the rank directory. Idempotent; required before Rank1/Select1.
  void Finish();

  size_t size() const { return bits_; }
  bool Get(size_t i) const;
  size_t num_ones() const;

  // Number of 1-bits in [0, i). i may equal size(). Requires Finish().
  size_t Rank1(size_t i) const;
  size_t Rank0(size_t i) const { return i - Rank1(i); }

  // Position of the k-th (0-based) set bit. Requires k < num_ones() and
  // Finish().
  size_t Select1(size_t k) const;

  // Bytes held by the rank directory (the succinct-overhead figure the
  // micro bench reports).
  size_t DirectoryBytes() const;

  static constexpr size_t kBitsPerWord = 64;
  static constexpr size_t kWordsPerSuperblock = 8;  // 512 bits
  static constexpr size_t kBitsPerSuperblock =
      kBitsPerWord * kWordsPerSuperblock;

 private:
  std::vector<uint64_t> words_;
  size_t bits_ = 0;
  bool finished_ = false;
  // Directory: ones before superblock s / ones before word w within its
  // superblock (<= 448, fits uint16).
  std::vector<uint64_t> super_;
  std::vector<uint16_t> block_;
};

}  // namespace capd

#endif  // CAPD_SUCCINCT_BIT_VECTOR_H_
