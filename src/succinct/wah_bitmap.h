// Word-aligned-hybrid (WAH-style) compressed bitmap over 32-bit words.
//
// Encoding (per 32-bit word, MSB first):
//   0 b30..b0      literal: 31 payload bits, LSB = earliest bit
//   1 f g29..g0    fill: g complete 31-bit groups of bit f (g >= 1)
// A trailing partial group (< 31 bits) is always emitted as a literal whose
// logical length is tracked in the header, never as a fill — so the encoded
// word sequence is a pure function of the bit string (canonical form), which
// is what lets BitmapCodec's MeasurePage == CompressPage contract hold
// structurally: the measuring twin (WahSize) runs the exact same encoder with
// a counting sink instead of a vector sink.
//
// On a column sorted by itself, each distinct value's bitmap is one 1-fill
// surrounded by 0-fills: size collapses to O(1) words per distinct value
// regardless of row count. That collapse is the sort-order x compression
// interaction the fit bench (bench_future_rle_sortorder) sweeps.
#ifndef CAPD_SUCCINCT_WAH_BITMAP_H_
#define CAPD_SUCCINCT_WAH_BITMAP_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "succinct/bit_vector.h"

namespace capd {

namespace wah {
constexpr uint32_t kPayloadBits = 31;
constexpr uint32_t kFillFlag = 0x80000000u;
constexpr uint32_t kFillBit = 0x40000000u;
constexpr uint32_t kMaxFillGroups = (1u << 30) - 1;
constexpr uint32_t kAllOnesLiteral = 0x7fffffffu;
}  // namespace wah

// Shared encoder core. Sink needs: void Emit(uint32_t word).
// Bits are appended as runs; the encoder buffers the current partial 31-bit
// group and pending complete-group fills, flushing in canonical form.
template <typename Sink>
class WahEncoder {
 public:
  explicit WahEncoder(Sink* sink) : sink_(sink) {}

  void AppendRun(bool bit, uint64_t count) {
    logical_bits_ += count;
    // Fill the current partial group first.
    while (count > 0 && partial_bits_ != 0) {
      AppendToPartial(bit);
      --count;
    }
    // Whole groups go through the fill path.
    const uint64_t groups = count / wah::kPayloadBits;
    if (groups > 0) {
      AddFillGroups(bit, groups);
      count -= groups * wah::kPayloadBits;
    }
    while (count > 0) {
      AppendToPartial(bit);
      --count;
    }
  }

  void AppendBit(bool bit) { AppendRun(bit, 1); }

  // Flush pending state. The encoder must not be used afterwards.
  void Finish() {
    FlushFill();
    if (partial_bits_ != 0) sink_->Emit(partial_);
  }

  uint64_t logical_bits() const { return logical_bits_; }

 private:
  void AppendToPartial(bool bit) {
    if (bit) partial_ |= uint32_t{1} << partial_bits_;
    ++partial_bits_;
    if (partial_bits_ == wah::kPayloadBits) {
      // A complete group: route through the fill merger if uniform, else
      // flush any pending fill and emit the literal.
      const uint32_t group = partial_;
      partial_ = 0;
      partial_bits_ = 0;
      if (group == 0) {
        AddFillGroups(false, 1);
      } else if (group == wah::kAllOnesLiteral) {
        AddFillGroups(true, 1);
      } else {
        FlushFill();
        sink_->Emit(group);
      }
    }
  }

  void AddFillGroups(bool bit, uint64_t groups) {
    CAPD_CHECK_EQ(partial_bits_, 0u);
    if (fill_groups_ > 0 && fill_bit_ != bit) FlushFill();
    fill_bit_ = bit;
    while (groups > 0) {
      const uint64_t room = wah::kMaxFillGroups - fill_groups_;
      const uint64_t take = groups < room ? groups : room;
      CAPD_CHECK_GT(take, 0u) << "WAH fill overflow: run exceeds "
                              << wah::kMaxFillGroups << " groups";
      fill_groups_ += take;
      groups -= take;
      if (fill_groups_ == wah::kMaxFillGroups && groups > 0) FlushFill();
    }
  }

  void FlushFill() {
    if (fill_groups_ == 0) return;
    sink_->Emit(wah::kFillFlag | (fill_bit_ ? wah::kFillBit : 0u) |
                static_cast<uint32_t>(fill_groups_));
    fill_groups_ = 0;
  }

  Sink* sink_;
  uint32_t partial_ = 0;
  uint32_t partial_bits_ = 0;
  bool fill_bit_ = false;
  uint64_t fill_groups_ = 0;
  uint64_t logical_bits_ = 0;
};

// Vector-backed WAH bitmap: build with AppendBit/AppendRun + Finish, then
// iterate runs or expand to a rank/select BitVector.
class WahBitmap {
 public:
  WahBitmap() : encoder_(&sink_) {}
  // The encoder holds a pointer into this object; copying or moving would
  // dangle it. Build in place (guaranteed elision covers FromWords).
  WahBitmap(const WahBitmap&) = delete;
  WahBitmap& operator=(const WahBitmap&) = delete;

  void AppendBit(bool bit) { encoder_.AppendBit(bit); }
  void AppendRun(bool bit, uint64_t count) { encoder_.AppendRun(bit, count); }
  void Finish();

  uint64_t logical_bits() const { return logical_bits_; }
  const std::vector<uint32_t>& words() const { return sink_.words; }
  size_t byte_size() const { return sink_.words.size() * sizeof(uint32_t); }

  // Decode into (bit, count) runs in logical order.
  template <typename Fn>
  void ForEachRun(Fn&& fn) const {
    uint64_t seen = 0;
    for (uint32_t w : sink_.words) {
      if (w & wah::kFillFlag) {
        const bool bit = (w & wah::kFillBit) != 0;
        const uint64_t n =
            static_cast<uint64_t>(w & wah::kMaxFillGroups) * wah::kPayloadBits;
        fn(bit, n);
        seen += n;
      } else {
        const uint64_t n =
            std::min<uint64_t>(wah::kPayloadBits, logical_bits_ - seen);
        for (uint64_t i = 0; i < n; ++i) fn((w >> i) & 1, uint64_t{1});
        seen += n;
      }
    }
  }

  // Expand into an uncompressed BitVector with rank/select directories.
  BitVector ToBitVector() const;

  // Rebuild from raw encoded words + logical length (the codec's decode
  // path). The words must be canonical (as produced by WahEncoder).
  static WahBitmap FromWords(const std::vector<uint32_t>& words,
                             uint64_t logical_bits);

 private:
  struct VectorSink {
    std::vector<uint32_t> words;
    void Emit(uint32_t w) { words.push_back(w); }
  };
  WahBitmap(std::vector<uint32_t> words, uint64_t logical_bits)
      : encoder_(&sink_), logical_bits_(logical_bits), finished_(true) {
    sink_.words = std::move(words);
  }
  VectorSink sink_;
  WahEncoder<VectorSink> encoder_;
  uint64_t logical_bits_ = 0;
  bool finished_ = false;
};

// Counting twin: same encoder, no storage. Used by BitmapCodec::MeasurePage.
class WahSize {
 public:
  WahSize() : encoder_(&sink_) {}
  void AppendBit(bool bit) { encoder_.AppendBit(bit); }
  void AppendRun(bool bit, uint64_t count) { encoder_.AppendRun(bit, count); }
  size_t FinishWordCount() {
    encoder_.Finish();
    return sink_.count;
  }

 private:
  struct CountSink {
    size_t count = 0;
    void Emit(uint32_t) { ++count; }
  };
  CountSink sink_;
  WahEncoder<CountSink> encoder_;
};

}  // namespace capd

#endif  // CAPD_SUCCINCT_WAH_BITMAP_H_
