#include "succinct/bitmap_codec.h"

#include <cstring>
#include <utility>

#include "common/logging.h"
#include "compress/null_suppression.h"
#include "compress/varint.h"
#include "succinct/wah_bitmap.h"

namespace capd {
namespace {

constexpr uint8_t kModeNs = 0;
constexpr uint8_t kModeBitmap = 1;

// Run-length view of one flat column slice, with runs labeled by the
// first-appearance index of their value. Adjacent runs always differ, so no
// merging is needed. Collection stops (capped = true) the moment the
// distinct count would exceed the bitmap cap — the caller falls back to NS.
struct ColumnRuns {
  bool capped = false;
  std::vector<FieldView> distinct;                   // first-appearance order
  std::vector<std::pair<uint64_t, uint32_t>> runs;  // (length, distinct idx)
};

ColumnRuns CollectRuns(const char* base, uint32_t w, size_t n) {
  ColumnRuns out;
  size_t i = 0;
  while (i < n) {
    const char* head = base + i * w;
    size_t j = i + 1;
    while (j < n && std::memcmp(base + j * w, head, w) == 0) ++j;
    uint32_t idx = static_cast<uint32_t>(out.distinct.size());
    for (uint32_t k = 0; k < out.distinct.size(); ++k) {
      if (std::memcmp(out.distinct[k].data(), head, w) == 0) {
        idx = k;
        break;
      }
    }
    if (idx == out.distinct.size()) {
      if (out.distinct.size() == BitmapCodec::kMaxDistinctPerColumn) {
        out.capped = true;
        return out;
      }
      out.distinct.emplace_back(head, w);
    }
    out.runs.emplace_back(j - i, idx);
    i = j;
  }
  return out;
}

// Payload bytes of bitmap mode (everything after the mode byte), via the
// counting WAH twin — structurally the same encoder CompressPage drives.
uint64_t BitmapPayloadSize(const ColumnRuns& cr) {
  uint64_t total = VarintSize(cr.distinct.size());
  for (uint32_t k = 0; k < cr.distinct.size(); ++k) {
    total += NsFieldSize(cr.distinct[k]);
    WahSize sizer;
    for (const auto& [len, idx] : cr.runs) sizer.AppendRun(idx == k, len);
    const size_t words = sizer.FinishWordCount();
    total += VarintSize(words) + words * sizeof(uint32_t);
  }
  return total;
}

// Payload bytes of NS fallback mode, from runs (all cells in a run are
// equal, so one NsFieldSize per run suffices).
uint64_t NsPayloadFromRuns(const ColumnRuns& cr) {
  uint64_t total = 0;
  for (const auto& [len, idx] : cr.runs) {
    total += len * NsFieldSize(cr.distinct[idx]);
  }
  return total;
}

// NS payload for a capped column: direct cell sweep.
uint64_t NsPayloadFromCells(const char* base, uint32_t w, size_t n) {
  uint64_t total = 0;
  for (size_t r = 0; r < n; ++r) {
    total += NsFieldSize(FieldView(base + r * w, w));
  }
  return total;
}

void AppendLe32(uint32_t v, std::string* out) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

uint32_t ReadLe32(std::string_view data, size_t* offset) {
  CAPD_CHECK_LE(*offset + 4, data.size()) << "truncated WAH words";
  const auto* p = reinterpret_cast<const unsigned char*>(data.data() + *offset);
  *offset += 4;
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

}  // namespace

BitmapCodec::BitmapCodec(std::vector<uint32_t> widths)
    : Codec(std::move(widths)) {
  for (uint32_t w : widths_) {
    CAPD_CHECK_LE(w, 255u) << "BitmapCodec: NS-backed field width exceeds 255";
  }
}

uint64_t BitmapCodec::MeasurePage(const FlatSpan& span) const {
  ValidateSpan(span);
  const size_t n = span.num_rows();
  uint64_t total = VarintSize(n);
  for (size_t c = 0; c < num_columns(); ++c) {
    const char* base = span.column_data(c);
    const uint32_t w = widths_[c];
    total += 1;  // mode byte
    const ColumnRuns cr = CollectRuns(base, w, n);
    if (cr.capped) {
      total += NsPayloadFromCells(base, w, n);
      continue;
    }
    const uint64_t bitmap = BitmapPayloadSize(cr);
    const uint64_t ns = NsPayloadFromRuns(cr);
    total += bitmap <= ns ? bitmap : ns;
  }
  return total;
}

std::string BitmapCodec::CompressPage(const FlatSpan& span) const {
  ValidateSpan(span);
  std::string blob;
  const size_t n = span.num_rows();
  PutVarint(n, &blob);
  for (size_t c = 0; c < num_columns(); ++c) {
    const char* base = span.column_data(c);
    const uint32_t w = widths_[c];
    const ColumnRuns cr = CollectRuns(base, w, n);
    // Same decision arithmetic as MeasurePage, so blob size == measure.
    const bool use_bitmap =
        !cr.capped && BitmapPayloadSize(cr) <= NsPayloadFromRuns(cr);
    if (!use_bitmap) {
      blob.push_back(static_cast<char>(kModeNs));
      for (size_t r = 0; r < n; ++r) {
        NsCompressField(FieldView(base + r * w, w), &blob);
      }
      continue;
    }
    blob.push_back(static_cast<char>(kModeBitmap));
    PutVarint(cr.distinct.size(), &blob);
    for (uint32_t k = 0; k < cr.distinct.size(); ++k) {
      NsCompressField(cr.distinct[k], &blob);
      WahBitmap bm;
      for (const auto& [len, idx] : cr.runs) bm.AppendRun(idx == k, len);
      bm.Finish();
      PutVarint(bm.words().size(), &blob);
      for (uint32_t word : bm.words()) AppendLe32(word, &blob);
    }
  }
  return blob;
}

EncodedPage BitmapCodec::DecompressPage(std::string_view blob) const {
  size_t offset = 0;
  const uint64_t n = GetVarint(blob, &offset);
  EncodedPage page;
  page.rows.resize(n);
  for (auto& row : page.rows) row.resize(num_columns());
  std::string value;
  for (size_t c = 0; c < num_columns(); ++c) {
    CAPD_CHECK_LT(offset, blob.size()) << "truncated bitmap blob";
    const uint8_t mode = static_cast<uint8_t>(blob[offset++]);
    if (mode == kModeNs) {
      for (uint64_t r = 0; r < n; ++r) {
        value.clear();
        NsDecompressField(blob, &offset, widths_[c], &value);
        page.rows[r][c] = value;
      }
      continue;
    }
    CAPD_CHECK_EQ(mode, kModeBitmap) << "unknown bitmap column mode";
    const uint64_t d = GetVarint(blob, &offset);
    CAPD_CHECK_LE(d, kMaxDistinctPerColumn)
        << "bitmap blob exceeds distinct-count cap";
    uint64_t placed = 0;
    for (uint64_t k = 0; k < d; ++k) {
      value.clear();
      NsDecompressField(blob, &offset, widths_[c], &value);
      const uint64_t num_words = GetVarint(blob, &offset);
      std::vector<uint32_t> words;
      words.reserve(num_words);
      for (uint64_t i = 0; i < num_words; ++i) {
        words.push_back(ReadLe32(blob, &offset));
      }
      // Rank/select is the query path: expand the WAH runs into a BitVector
      // and place this value at every Select1 position.
      const WahBitmap bm = WahBitmap::FromWords(words, n);
      const BitVector bv = bm.ToBitVector();
      const size_t ones = bv.num_ones();
      for (size_t i = 0; i < ones; ++i) {
        page.rows[bv.Select1(i)][c] = value;
      }
      placed += ones;
    }
    CAPD_CHECK_EQ(placed, n) << "bitmap column does not cover every row";
  }
  return page;
}

}  // namespace capd
