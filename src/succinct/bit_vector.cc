#include "succinct/bit_vector.h"

#include <algorithm>

#include "common/logging.h"

namespace capd {

void BitVector::AppendBit(bool bit) {
  CAPD_CHECK(!finished_) << "AppendBit after Finish";
  const size_t word = bits_ / kBitsPerWord;
  const size_t off = bits_ % kBitsPerWord;
  if (word == words_.size()) words_.push_back(0);
  if (bit) words_[word] |= uint64_t{1} << off;
  ++bits_;
}

void BitVector::AppendRun(bool bit, uint64_t count) {
  CAPD_CHECK(!finished_) << "AppendRun after Finish";
  // Align to a word boundary bit-by-bit, then splat whole words.
  while (count > 0 && bits_ % kBitsPerWord != 0) {
    AppendBit(bit);
    --count;
  }
  const uint64_t fill = bit ? ~uint64_t{0} : 0;
  while (count >= kBitsPerWord) {
    words_.push_back(fill);
    bits_ += kBitsPerWord;
    count -= kBitsPerWord;
  }
  while (count > 0) {
    AppendBit(bit);
    --count;
  }
}

bool BitVector::Get(size_t i) const {
  CAPD_CHECK_LT(i, bits_);
  return (words_[i / kBitsPerWord] >> (i % kBitsPerWord)) & 1;
}

void BitVector::Finish() {
  if (finished_) return;
  finished_ = true;
  // Mask stray bits in the tail word so popcounts below stay exact.
  if (bits_ % kBitsPerWord != 0 && !words_.empty()) {
    words_.back() &= (uint64_t{1} << (bits_ % kBitsPerWord)) - 1;
  }
  const size_t num_words = words_.size();
  const size_t num_super =
      (num_words + kWordsPerSuperblock - 1) / kWordsPerSuperblock;
  super_.assign(num_super + 1, 0);
  block_.assign(num_words, 0);
  uint64_t total = 0;
  for (size_t s = 0; s < num_super; ++s) {
    super_[s] = total;
    uint16_t within = 0;
    const size_t end = std::min(num_words, (s + 1) * kWordsPerSuperblock);
    for (size_t w = s * kWordsPerSuperblock; w < end; ++w) {
      block_[w] = within;
      const int ones = __builtin_popcountll(words_[w]);
      within = static_cast<uint16_t>(within + ones);
      total += static_cast<uint64_t>(ones);
    }
  }
  super_[num_super] = total;
}

size_t BitVector::num_ones() const {
  CAPD_CHECK(finished_) << "num_ones before Finish";
  return static_cast<size_t>(super_.back());
}

size_t BitVector::Rank1(size_t i) const {
  CAPD_CHECK(finished_) << "Rank1 before Finish";
  CAPD_CHECK_LE(i, bits_);
  if (i == 0) return 0;
  const size_t word = i / kBitsPerWord;
  const size_t off = i % kBitsPerWord;
  size_t rank = static_cast<size_t>(super_[word / kWordsPerSuperblock]);
  if (word < words_.size()) {
    rank += block_[word];
    if (off != 0) {
      rank += static_cast<size_t>(
          __builtin_popcountll(words_[word] & ((uint64_t{1} << off) - 1)));
    }
  } else {
    // i == bits_ with a full tail word: count everything.
    rank = num_ones();
  }
  return rank;
}

size_t BitVector::Select1(size_t k) const {
  CAPD_CHECK(finished_) << "Select1 before Finish";
  CAPD_CHECK_LT(k, num_ones());
  // Superblock holding the (k+1)-th one: last s with super_[s] <= k.
  const size_t s =
      static_cast<size_t>(std::upper_bound(super_.begin(), super_.end() - 1,
                                           static_cast<uint64_t>(k)) -
                          super_.begin()) -
      1;
  size_t remaining = k - static_cast<size_t>(super_[s]);
  const size_t word_end =
      std::min(words_.size(), (s + 1) * kWordsPerSuperblock);
  for (size_t w = s * kWordsPerSuperblock; w < word_end; ++w) {
    const size_t ones = static_cast<size_t>(__builtin_popcountll(words_[w]));
    if (remaining < ones) {
      uint64_t bits = words_[w];
      for (size_t j = 0; j < remaining; ++j) bits &= bits - 1;  // clear lowest
      return w * kBitsPerWord +
             static_cast<size_t>(__builtin_ctzll(bits));
    }
    remaining -= ones;
  }
  CAPD_CHECK(false) << "Select1 directory corrupt";
  return 0;
}

size_t BitVector::DirectoryBytes() const {
  return super_.size() * sizeof(uint64_t) + block_.size() * sizeof(uint16_t);
}

}  // namespace capd
