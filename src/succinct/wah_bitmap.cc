#include "succinct/wah_bitmap.h"

namespace capd {

void WahBitmap::Finish() {
  if (finished_) return;
  finished_ = true;
  logical_bits_ = encoder_.logical_bits();
  encoder_.Finish();
}

BitVector WahBitmap::ToBitVector() const {
  CAPD_CHECK(finished_) << "ToBitVector before Finish";
  BitVector bv;
  ForEachRun([&bv](bool bit, uint64_t count) { bv.AppendRun(bit, count); });
  CAPD_CHECK_EQ(bv.size(), logical_bits_);
  bv.Finish();
  return bv;
}

WahBitmap WahBitmap::FromWords(const std::vector<uint32_t>& words,
                               uint64_t logical_bits) {
  return WahBitmap(words, logical_bits);
}

}  // namespace capd
