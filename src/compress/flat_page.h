// Flat columnar page representation: the zero-copy input format of the
// compression codecs. A FlatPage renders a batch of rows into ONE
// arena-backed byte buffer laid out column-major (all of column 0's
// fixed-width cells, then column 1's, ...), with a per-column offset array
// into the arena. Cells are addressed as string_view FieldViews straight
// into the arena — building a page costs a handful of allocations total
// (arena + offset vectors) instead of one std::string per field, and a
// FlatSpan lets the page packer probe any contiguous row range without
// copying or re-encoding anything.
#ifndef CAPD_COMPRESS_FLAT_PAGE_H_
#define CAPD_COMPRESS_FLAT_PAGE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "storage/block.h"
#include "storage/encoding.h"
#include "storage/schema.h"

namespace capd {

// A field rendered to its fixed column width, viewed in place inside a
// FlatPage arena. Never owns memory; valid while the FlatPage lives.
using FieldView = std::string_view;

class FlatPage;

// Cheap view of the contiguous row range [begin, begin+rows) of a FlatPage.
// This is what the codecs consume: slicing is O(1), so the page packer's
// exponential/binary size probes re-measure overlapping ranges without ever
// re-encoding a field.
class FlatSpan {
 public:
  FlatSpan() = default;
  FlatSpan(const FlatPage* page, size_t begin, size_t rows)
      : page_(page), begin_(begin), rows_(rows) {}

  size_t num_rows() const { return rows_; }
  size_t num_columns() const;
  uint32_t width(size_t c) const;
  const std::vector<uint32_t>& widths() const;

  // Cell (span-local row r, column c) as a view into the page arena.
  FieldView field(size_t r, size_t c) const;

  // First byte of column c's first cell within the span. Column cells are
  // contiguous: cell r lives at column_data(c) + r * width(c). This is the
  // entry point for the SWAR/memcmp kernels.
  const char* column_data(size_t c) const;

 private:
  const FlatPage* page_ = nullptr;
  size_t begin_ = 0;
  size_t rows_ = 0;
};

class FlatPage {
 public:
  // Encodes rows[begin, end) under `schema` straight into the arena,
  // column-major. The arena is reserved to its exact final size up front:
  // one allocation regardless of row count or column widths.
  static FlatPage FromRows(const std::vector<Row>& rows, const Schema& schema,
                           size_t begin, size_t end);

  // Converter from the blocked-storage scratch (PR 8's ColumnBlock): encodes
  // the block's rows without materializing Row vectors or per-field strings.
  static FlatPage FromBlock(const ColumnBlock& block, const Schema& schema);

  // Converter from the legacy row-major representation. Validates that every
  // field has exactly its column width (the old ValidatePage contract).
  static FlatPage FromEncodedPage(const EncodedPage& page,
                                  const std::vector<uint32_t>& widths);

  size_t num_rows() const { return rows_; }
  size_t num_columns() const { return widths_.size(); }
  uint32_t width(size_t c) const { return widths_[c]; }
  const std::vector<uint32_t>& widths() const { return widths_; }
  // Bytes per row across all columns (fields only, no row overhead).
  size_t row_width() const { return row_width_; }

  FieldView field(size_t r, size_t c) const {
    return FieldView(arena_.data() + col_offsets_[c] + r * widths_[c],
                     widths_[c]);
  }
  const char* column_data(size_t c) const {
    return arena_.data() + col_offsets_[c];
  }

  FlatSpan span() const { return FlatSpan(this, 0, rows_); }
  // View of rows [begin, end).
  FlatSpan span(size_t begin, size_t end) const;

  // Whole-page view; lets FlatPage be passed wherever a FlatSpan is taken.
  operator FlatSpan() const { return span(); }  // NOLINT(runtime/explicit)

  // Back-conversion for tests and decompress comparisons.
  EncodedPage ToEncodedPage() const;

 private:
  FlatPage(std::vector<uint32_t> widths, size_t rows);

  std::vector<uint32_t> widths_;
  std::vector<size_t> col_offsets_;  // arena byte offset of column c
  size_t rows_ = 0;
  size_t row_width_ = 0;
  std::string arena_;  // column-major cell bytes, one buffer for the page
};

// Widths vector for a schema (helper for page/codec construction).
std::vector<uint32_t> ColumnWidths(const Schema& schema);

inline size_t FlatSpan::num_columns() const { return page_->num_columns(); }
inline uint32_t FlatSpan::width(size_t c) const { return page_->width(c); }
inline const std::vector<uint32_t>& FlatSpan::widths() const {
  return page_->widths();
}
inline FieldView FlatSpan::field(size_t r, size_t c) const {
  return page_->field(begin_ + r, c);
}
inline const char* FlatSpan::column_data(size_t c) const {
  return page_->column_data(c) + begin_ * page_->width(c);
}

}  // namespace capd

#endif  // CAPD_COMPRESS_FLAT_PAGE_H_
