// Codec construction helper. Global dictionary needs the index's rows to
// build its dictionaries, so the factory takes them (ignored by the
// page-local codecs).
#ifndef CAPD_COMPRESS_CODEC_FACTORY_H_
#define CAPD_COMPRESS_CODEC_FACTORY_H_

#include <memory>
#include <vector>

#include "compress/codec.h"

namespace capd {

std::unique_ptr<Codec> MakeCodec(CompressionKind kind, const Schema& schema,
                                 const std::vector<Row>& rows);

}  // namespace capd

#endif  // CAPD_COMPRESS_CODEC_FACTORY_H_
