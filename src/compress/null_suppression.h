// Null-suppression primitives: a fixed-width field with k leading 0x00 bytes
// is stored as a one-byte count plus the remaining width-k bytes — the
// paper's "00000abc" -> "@5abc" transform. Shared by the ROW codec and as
// the innermost stage of the PAGE and RLE codecs. The one-byte count caps
// the supported field width at 255 bytes; every entry point CHECKs it.
#ifndef CAPD_COMPRESS_NULL_SUPPRESSION_H_
#define CAPD_COMPRESS_NULL_SUPPRESSION_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace capd {

// Number of leading 0x00 bytes. SWAR kernel: scans 8 bytes per step via
// unaligned 64-bit loads and finds the first nonzero byte with a single
// count-zeros instruction, with a scalar tail for the last <8 bytes.
size_t CountLeadingZeros(std::string_view field);

// Appends the NS form of `field` to *out. Field width must be <= 255.
void NsCompressField(std::string_view field, std::string* out);

// Size in bytes that NsCompressField would append (width <= 255 CHECKed).
size_t NsFieldSize(std::string_view field);

// Reads one NS field of original width `width` (<= 255) from data at
// *offset (advancing it) and appends the reconstructed fixed-width bytes
// to *out.
void NsDecompressField(std::string_view data, size_t* offset, uint32_t width,
                       std::string* out);

}  // namespace capd

#endif  // CAPD_COMPRESS_NULL_SUPPRESSION_H_
