#include "compress/null_suppression.h"

#include "common/logging.h"

namespace capd {

size_t CountLeadingZeros(std::string_view field) {
  size_t k = 0;
  while (k < field.size() && field[k] == '\0') ++k;
  return k;
}

void NsCompressField(std::string_view field, std::string* out) {
  CAPD_CHECK_LE(field.size(), 255u);
  const size_t k = CountLeadingZeros(field);
  out->push_back(static_cast<char>(k));
  out->append(field.data() + k, field.size() - k);
}

size_t NsFieldSize(std::string_view field) {
  return 1 + field.size() - CountLeadingZeros(field);
}

void NsDecompressField(std::string_view data, size_t* offset, uint32_t width,
                       std::string* out) {
  CAPD_CHECK_LT(*offset, data.size());
  const size_t k = static_cast<uint8_t>(data[(*offset)++]);
  CAPD_CHECK_LE(k, width);
  const size_t rest = width - k;
  CAPD_CHECK_LE(*offset + rest, data.size());
  out->append(k, '\0');
  out->append(data.data() + *offset, rest);
  *offset += rest;
}

}  // namespace capd
