#include "compress/null_suppression.h"

#include <cstring>

#include "common/logging.h"

namespace capd {

size_t CountLeadingZeros(std::string_view field) {
  const char* p = field.data();
  const size_t n = field.size();
  size_t k = 0;
#if defined(__GNUC__) || defined(__clang__)
  // 8 bytes per step: the first nonzero byte's position inside a word is
  // ctz/8 on little-endian (the front of the field is the word's low byte
  // after an unaligned load) and clz/8 on big-endian.
  while (k + 8 <= n) {
    uint64_t word;
    std::memcpy(&word, p + k, 8);
    if (word != 0) {
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
      return k + (static_cast<size_t>(__builtin_clzll(word)) >> 3);
#else
      return k + (static_cast<size_t>(__builtin_ctzll(word)) >> 3);
#endif
    }
    k += 8;
  }
#endif
  while (k < n && p[k] == '\0') ++k;
  return k;
}

void NsCompressField(std::string_view field, std::string* out) {
  CAPD_CHECK_LE(field.size(), 255u);
  const size_t k = CountLeadingZeros(field);
  out->push_back(static_cast<char>(k));
  out->append(field.data() + k, field.size() - k);
}

size_t NsFieldSize(std::string_view field) {
  CAPD_CHECK_LE(field.size(), 255u);
  return 1 + field.size() - CountLeadingZeros(field);
}

void NsDecompressField(std::string_view data, size_t* offset, uint32_t width,
                       std::string* out) {
  CAPD_CHECK_LE(width, 255u);
  CAPD_CHECK_LT(*offset, data.size());
  const size_t k = static_cast<uint8_t>(data[(*offset)++]);
  CAPD_CHECK_LE(k, width);
  const size_t rest = width - k;
  CAPD_CHECK_LE(*offset + rest, data.size());
  out->append(k, '\0');
  out->append(data.data() + *offset, rest);
  *offset += rest;
}

}  // namespace capd
