#include "compress/codec.h"

#include "common/logging.h"
#include "compress/null_suppression.h"
#include "compress/varint.h"

namespace capd {

void Codec::ValidateSpan(const FlatSpan& span) const {
  CAPD_CHECK_EQ(span.num_columns(), num_columns());
  for (size_t c = 0; c < num_columns(); ++c) {
    CAPD_CHECK_EQ(span.width(c), widths_[c]);
  }
}

std::string Codec::CompressPage(const EncodedPage& page) const {
  return CompressPage(FlatPage::FromEncodedPage(page, widths_).span());
}

std::string NoneCodec::CompressPage(const FlatSpan& span) const {
  ValidateSpan(span);
  const size_t n = span.num_rows();
  std::string blob;
  blob.reserve(MeasurePage(span));
  PutVarint(n, &blob);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < num_columns(); ++c) blob.append(span.field(r, c));
    blob.append(kRowOverhead, '\0');  // slot-array cost of the row format
  }
  return blob;
}

uint64_t NoneCodec::MeasurePage(const FlatSpan& span) const {
  ValidateSpan(span);
  const uint64_t n = span.num_rows();
  return VarintSize(n) + n * (row_width() + kRowOverhead);
}

EncodedPage NoneCodec::DecompressPage(std::string_view blob) const {
  size_t offset = 0;
  const uint64_t n = GetVarint(blob, &offset);
  EncodedPage page;
  page.rows.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    std::vector<std::string> fields;
    fields.reserve(num_columns());
    for (uint32_t w : widths_) {
      CAPD_CHECK_LE(offset + w, blob.size());
      fields.emplace_back(blob.substr(offset, w));
      offset += w;
    }
    offset += kRowOverhead;
    page.rows.push_back(std::move(fields));
  }
  return page;
}

std::string RowCodec::CompressPage(const FlatSpan& span) const {
  ValidateSpan(span);
  const size_t n = span.num_rows();
  std::string blob;
  blob.reserve(MeasurePage(span));
  PutVarint(n, &blob);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < num_columns(); ++c) {
      NsCompressField(span.field(r, c), &blob);
    }
  }
  return blob;
}

uint64_t RowCodec::MeasurePage(const FlatSpan& span) const {
  ValidateSpan(span);
  const uint64_t n = span.num_rows();
  uint64_t total = VarintSize(n);
  // Column-major: each column's cells are contiguous, so the SWAR
  // CountLeadingZeros kernel streams straight through the arena. Stored NS
  // bytes per cell are 1 + width - leading_zeros.
  for (size_t c = 0; c < num_columns(); ++c) {
    const uint32_t w = widths_[c];
    CAPD_CHECK_LE(w, 255u);
    const char* base = span.column_data(c);
    uint64_t zeros = 0;
    for (uint64_t r = 0; r < n; ++r) {
      zeros += CountLeadingZeros(FieldView(base + r * w, w));
    }
    total += n * (1 + static_cast<uint64_t>(w)) - zeros;
  }
  return total;
}

EncodedPage RowCodec::DecompressPage(std::string_view blob) const {
  size_t offset = 0;
  const uint64_t n = GetVarint(blob, &offset);
  EncodedPage page;
  page.rows.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    std::vector<std::string> fields;
    fields.reserve(num_columns());
    for (uint32_t w : widths_) {
      std::string field;
      field.reserve(w);
      NsDecompressField(blob, &offset, w, &field);
      fields.push_back(std::move(field));
    }
    page.rows.push_back(std::move(fields));
  }
  return page;
}

}  // namespace capd
