#include "compress/codec.h"

#include "common/logging.h"
#include "compress/null_suppression.h"
#include "compress/varint.h"

namespace capd {

void Codec::ValidatePage(const EncodedPage& page) const {
  for (const auto& row : page.rows) {
    CAPD_CHECK_EQ(row.size(), num_columns());
    for (size_t c = 0; c < row.size(); ++c) {
      CAPD_CHECK_EQ(row[c].size(), static_cast<size_t>(widths_[c]));
    }
  }
}

std::vector<uint32_t> ColumnWidths(const Schema& schema) {
  std::vector<uint32_t> widths;
  widths.reserve(schema.num_columns());
  for (const Column& c : schema.columns()) widths.push_back(c.width);
  return widths;
}

std::string NoneCodec::CompressPage(const EncodedPage& page) const {
  ValidatePage(page);
  std::string blob;
  PutVarint(page.rows.size(), &blob);
  for (const auto& row : page.rows) {
    for (const std::string& field : row) blob.append(field);
    blob.append(kRowOverhead, '\0');  // slot-array cost of the row format
  }
  return blob;
}

EncodedPage NoneCodec::DecompressPage(std::string_view blob) const {
  size_t offset = 0;
  const uint64_t n = GetVarint(blob, &offset);
  EncodedPage page;
  page.rows.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    std::vector<std::string> fields;
    fields.reserve(num_columns());
    for (uint32_t w : widths_) {
      CAPD_CHECK_LE(offset + w, blob.size());
      fields.emplace_back(blob.substr(offset, w));
      offset += w;
    }
    offset += kRowOverhead;
    page.rows.push_back(std::move(fields));
  }
  return page;
}

std::string RowCodec::CompressPage(const EncodedPage& page) const {
  ValidatePage(page);
  std::string blob;
  PutVarint(page.rows.size(), &blob);
  for (const auto& row : page.rows) {
    for (const std::string& field : row) NsCompressField(field, &blob);
  }
  return blob;
}

EncodedPage RowCodec::DecompressPage(std::string_view blob) const {
  size_t offset = 0;
  const uint64_t n = GetVarint(blob, &offset);
  EncodedPage page;
  page.rows.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    std::vector<std::string> fields;
    fields.reserve(num_columns());
    for (uint32_t w : widths_) {
      std::string field;
      NsDecompressField(blob, &offset, w, &field);
      fields.push_back(std::move(field));
    }
    page.rows.push_back(std::move(fields));
  }
  return page;
}

}  // namespace capd
