#include "compress/global_dict_codec.h"

#include "common/logging.h"
#include "compress/varint.h"
#include "storage/encoding.h"

namespace capd {
namespace {

uint32_t BytesFor(uint64_t distinct) {
  uint32_t w = 1;
  uint64_t cap = 256;
  while (cap < distinct) {
    cap <<= 8;
    ++w;
  }
  return w;
}

}  // namespace

std::unique_ptr<GlobalDictCodec> GlobalDictCodec::Build(
    const std::vector<Row>& rows, const Schema& schema) {
  auto codec = std::unique_ptr<GlobalDictCodec>(
      new GlobalDictCodec(ColumnWidths(schema)));
  const size_t ncols = schema.num_columns();
  codec->dicts_.resize(ncols);
  codec->rdicts_.resize(ncols);
  codec->ptr_widths_.resize(ncols);
  // One scratch encoding buffer: repeated values (the common case) probe
  // the dictionary without allocating; only first occurrences copy into a
  // map key, which rdicts_ then views (map keys are address-stable).
  std::string scratch;
  for (const Row& row : rows) {
    CAPD_CHECK_EQ(row.size(), ncols);
    for (size_t c = 0; c < ncols; ++c) {
      scratch.clear();
      EncodeField(row[c], schema.column(c), &scratch);
      auto& dict = codec->dicts_[c];
      if (dict.find(std::string_view(scratch)) == dict.end()) {
        const auto [it, inserted] = dict.emplace(
            scratch, static_cast<uint32_t>(codec->rdicts_[c].size()));
        CAPD_CHECK(inserted);
        codec->rdicts_[c].push_back(it->first);
      }
    }
  }
  for (size_t c = 0; c < ncols; ++c) {
    codec->ptr_widths_[c] =
        BytesFor(std::max<uint64_t>(1, codec->rdicts_[c].size()));
  }
  return codec;
}

// Blob layout: varint n_rows, then column-major pointer arrays of fixed
// per-column width.
std::string GlobalDictCodec::CompressPage(const FlatSpan& span) const {
  ValidateSpan(span);
  std::string blob;
  const size_t n = span.num_rows();
  blob.reserve(MeasurePage(span));
  PutVarint(n, &blob);
  for (size_t c = 0; c < num_columns(); ++c) {
    const uint32_t pw = ptr_widths_[c];
    for (size_t i = 0; i < n; ++i) {
      const auto it = dicts_[c].find(span.field(i, c));
      CAPD_CHECK(it != dicts_[c].end())
          << "value missing from global dictionary (column " << c << ")";
      const uint32_t id = it->second;
      for (uint32_t b = 0; b < pw; ++b) {
        blob.push_back(static_cast<char>((id >> (8 * (pw - 1 - b))) & 0xff));
      }
    }
  }
  return blob;
}

uint64_t GlobalDictCodec::MeasurePage(const FlatSpan& span) const {
  // Pointer arrays are fixed-width, so the size is a closed form; the
  // membership CHECK stays on the materializing path.
  ValidateSpan(span);
  const uint64_t n = span.num_rows();
  uint64_t total = VarintSize(n);
  for (size_t c = 0; c < num_columns(); ++c) total += n * ptr_widths_[c];
  return total;
}

EncodedPage GlobalDictCodec::DecompressPage(std::string_view blob) const {
  size_t offset = 0;
  const uint64_t n = GetVarint(blob, &offset);
  EncodedPage page;
  page.rows.resize(n);
  for (auto& row : page.rows) row.resize(num_columns());
  for (size_t c = 0; c < num_columns(); ++c) {
    const uint32_t pw = ptr_widths_[c];
    for (uint64_t i = 0; i < n; ++i) {
      CAPD_CHECK_LE(offset + pw, blob.size());
      uint32_t id = 0;
      for (uint32_t b = 0; b < pw; ++b) {
        id = (id << 8) | static_cast<uint8_t>(blob[offset++]);
      }
      CAPD_CHECK_LT(id, rdicts_[c].size());
      page.rows[i][c].assign(rdicts_[c][id]);
    }
  }
  return page;
}

uint64_t GlobalDictCodec::IndexOverheadBytes() const {
  uint64_t bytes = 0;
  for (size_t c = 0; c < rdicts_.size(); ++c) {
    for (const std::string_view entry : rdicts_[c]) {
      bytes += VarintSize(entry.size()) + entry.size();
    }
  }
  return bytes;
}

}  // namespace capd
