// Page codec interface plus the trivial (NONE) and ROW (null suppression)
// codecs. A codec turns one flat columnar span (FlatSpan: rows with fixed
// width fields in a single arena) into a self-describing byte blob and back;
// blob size is what the index builder packs against the 8 KiB page capacity.
//
// Two entry points per codec, with a pinned contract:
//   - CompressPage(span): materializes the blob (round-trips through
//     DecompressPage);
//   - MeasurePage(span):  the exact blob size in bytes WITHOUT building it.
//     MeasurePage(s) == CompressPage(s).size() for every codec and span —
//     the size-only path is what the page packer and SampleCF drive, so the
//     estimation hot loop never materializes compressed output at all.
#ifndef CAPD_COMPRESS_CODEC_H_
#define CAPD_COMPRESS_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "compress/compression_kind.h"
#include "compress/flat_page.h"
#include "storage/encoding.h"

namespace capd {

class Codec {
 public:
  explicit Codec(std::vector<uint32_t> widths) : widths_(std::move(widths)) {
    for (uint32_t w : widths_) row_width_ += w;
  }
  virtual ~Codec() = default;

  Codec(const Codec&) = delete;
  Codec& operator=(const Codec&) = delete;

  virtual CompressionKind kind() const = 0;

  // Serializes the span. The blob must round-trip through DecompressPage.
  virtual std::string CompressPage(const FlatSpan& span) const = 0;

  // Exact size in bytes of CompressPage(span), computed without
  // materializing the blob. Size-only kernels: no output buffer, no
  // per-field copies.
  virtual uint64_t MeasurePage(const FlatSpan& span) const = 0;

  virtual EncodedPage DecompressPage(std::string_view blob) const = 0;

  // Legacy row-major entry point: flattens and delegates. Byte-identical to
  // compressing the equivalent FlatSpan.
  std::string CompressPage(const EncodedPage& page) const;

  // Storage charged once per index regardless of page count (e.g. the
  // global dictionary). Zero for page-local codecs.
  virtual uint64_t IndexOverheadBytes() const { return 0; }

  bool order_dependent() const { return IsOrderDependent(kind()); }
  const std::vector<uint32_t>& widths() const { return widths_; }
  size_t num_columns() const { return widths_.size(); }
  // Bytes per row across all columns (fields only, no row overhead).
  size_t row_width() const { return row_width_; }

 protected:
  // Aborts unless the span's column widths match the codec's. O(columns):
  // field widths are structural in a FlatPage, so there is nothing
  // per-cell to validate.
  void ValidateSpan(const FlatSpan& span) const;

  std::vector<uint32_t> widths_;
  size_t row_width_ = 0;
};

// No compression: fields stored verbatim plus the per-row slot overhead.
class NoneCodec : public Codec {
 public:
  explicit NoneCodec(std::vector<uint32_t> widths) : Codec(std::move(widths)) {}

  using Codec::CompressPage;
  CompressionKind kind() const override { return CompressionKind::kNone; }
  std::string CompressPage(const FlatSpan& span) const override;
  uint64_t MeasurePage(const FlatSpan& span) const override;
  EncodedPage DecompressPage(std::string_view blob) const override;
};

// ROW compression: every field null-suppressed independently. Order
// independent: the page size depends only on the multiset of values.
class RowCodec : public Codec {
 public:
  explicit RowCodec(std::vector<uint32_t> widths) : Codec(std::move(widths)) {}

  using Codec::CompressPage;
  CompressionKind kind() const override { return CompressionKind::kRow; }
  std::string CompressPage(const FlatSpan& span) const override;
  uint64_t MeasurePage(const FlatSpan& span) const override;
  EncodedPage DecompressPage(std::string_view blob) const override;
};

}  // namespace capd

#endif  // CAPD_COMPRESS_CODEC_H_
