// Page codec interface plus the trivial (NONE) and ROW (null suppression)
// codecs. A codec turns one EncodedPage (rows with fixed-width fields) into
// a self-describing byte blob and back; blob size is what the index builder
// packs against the 8 KiB page capacity.
#ifndef CAPD_COMPRESS_CODEC_H_
#define CAPD_COMPRESS_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "compress/compression_kind.h"
#include "storage/encoding.h"

namespace capd {

class Codec {
 public:
  explicit Codec(std::vector<uint32_t> widths) : widths_(std::move(widths)) {}
  virtual ~Codec() = default;

  Codec(const Codec&) = delete;
  Codec& operator=(const Codec&) = delete;

  virtual CompressionKind kind() const = 0;

  // Serializes the page. The blob must round-trip through DecompressPage.
  virtual std::string CompressPage(const EncodedPage& page) const = 0;
  virtual EncodedPage DecompressPage(std::string_view blob) const = 0;

  // Storage charged once per index regardless of page count (e.g. the
  // global dictionary). Zero for page-local codecs.
  virtual uint64_t IndexOverheadBytes() const { return 0; }

  bool order_dependent() const { return IsOrderDependent(kind()); }
  const std::vector<uint32_t>& widths() const { return widths_; }
  size_t num_columns() const { return widths_.size(); }

 protected:
  // Aborts unless the page's rows all have num_columns() fields.
  void ValidatePage(const EncodedPage& page) const;

  std::vector<uint32_t> widths_;
};

// Widths vector for a schema (helper for codec construction).
std::vector<uint32_t> ColumnWidths(const Schema& schema);

// No compression: fields stored verbatim plus the per-row slot overhead.
class NoneCodec : public Codec {
 public:
  explicit NoneCodec(std::vector<uint32_t> widths) : Codec(std::move(widths)) {}

  CompressionKind kind() const override { return CompressionKind::kNone; }
  std::string CompressPage(const EncodedPage& page) const override;
  EncodedPage DecompressPage(std::string_view blob) const override;
};

// ROW compression: every field null-suppressed independently. Order
// independent: the page size depends only on the multiset of values.
class RowCodec : public Codec {
 public:
  explicit RowCodec(std::vector<uint32_t> widths) : Codec(std::move(widths)) {}

  CompressionKind kind() const override { return CompressionKind::kRow; }
  std::string CompressPage(const EncodedPage& page) const override;
  EncodedPage DecompressPage(std::string_view blob) const override;
};

}  // namespace capd

#endif  // CAPD_COMPRESS_CODEC_H_
