// PAGE compression: SQL Server's heavier package. Per page and per column it
// (1) extracts the byte-wise common prefix of all values as an anchor,
// (2) builds a local dictionary of repeated post-anchor remainders, and
// (3) null-suppresses whatever is stored literally. Order dependent: how
// many duplicates land in the same page depends on tuple order, which is
// exactly the fragmentation effect the paper's ORD-DEP deduction models.
// The dictionary is probed with interned slices (string_views into the flat
// arena) — neither counting nor sizing copies a single field.
#ifndef CAPD_COMPRESS_PAGE_CODEC_H_
#define CAPD_COMPRESS_PAGE_CODEC_H_

#include <string>
#include <vector>

#include "compress/codec.h"

namespace capd {

class PageCodec : public Codec {
 public:
  explicit PageCodec(std::vector<uint32_t> widths) : Codec(std::move(widths)) {}

  using Codec::CompressPage;
  CompressionKind kind() const override { return CompressionKind::kPage; }
  std::string CompressPage(const FlatSpan& span) const override;
  uint64_t MeasurePage(const FlatSpan& span) const override;
  EncodedPage DecompressPage(std::string_view blob) const override;
};

}  // namespace capd

#endif  // CAPD_COMPRESS_PAGE_CODEC_H_
