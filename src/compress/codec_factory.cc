#include "compress/codec_factory.h"

#include "common/logging.h"
#include "compress/global_dict_codec.h"
#include "compress/page_codec.h"
#include "compress/rle_codec.h"
#include "succinct/bitmap_codec.h"

namespace capd {

std::unique_ptr<Codec> MakeCodec(CompressionKind kind, const Schema& schema,
                                 const std::vector<Row>& rows) {
  switch (kind) {
    case CompressionKind::kNone:
      return std::make_unique<NoneCodec>(ColumnWidths(schema));
    case CompressionKind::kRow:
      return std::make_unique<RowCodec>(ColumnWidths(schema));
    case CompressionKind::kPage:
      return std::make_unique<PageCodec>(ColumnWidths(schema));
    case CompressionKind::kGlobalDict:
      return GlobalDictCodec::Build(rows, schema);
    case CompressionKind::kRle:
      return std::make_unique<RleCodec>(ColumnWidths(schema));
    case CompressionKind::kBitmap:
      return std::make_unique<BitmapCodec>(ColumnWidths(schema));
  }
  CAPD_CHECK(false) << "unknown compression kind";
  return nullptr;
}

}  // namespace capd
