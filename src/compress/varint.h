// LEB128 varint helpers shared by the page codecs' blob formats.
#ifndef CAPD_COMPRESS_VARINT_H_
#define CAPD_COMPRESS_VARINT_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace capd {

void PutVarint(uint64_t v, std::string* out);

// Reads a varint at *offset, advancing it. Aborts on truncated input.
uint64_t GetVarint(std::string_view data, size_t* offset);

// Encoded size in bytes.
size_t VarintSize(uint64_t v);

}  // namespace capd

#endif  // CAPD_COMPRESS_VARINT_H_
