// Run-length encoding, column-major within each page. Order dependent in the
// extreme: sorted leading columns collapse to a handful of runs while
// fragmented trailing columns do not — the L(I_X, Y) run-length quantity in
// Section 4.2 is precisely what governs this codec's size. Run detection
// works on flat column slices: one memcmp per candidate cell against the
// run head, no per-field string materialization.
#ifndef CAPD_COMPRESS_RLE_CODEC_H_
#define CAPD_COMPRESS_RLE_CODEC_H_

#include <string>
#include <vector>

#include "compress/codec.h"

namespace capd {

class RleCodec : public Codec {
 public:
  explicit RleCodec(std::vector<uint32_t> widths) : Codec(std::move(widths)) {}

  using Codec::CompressPage;
  CompressionKind kind() const override { return CompressionKind::kRle; }
  std::string CompressPage(const FlatSpan& span) const override;
  uint64_t MeasurePage(const FlatSpan& span) const override;
  EncodedPage DecompressPage(std::string_view blob) const override;
};

}  // namespace capd

#endif  // CAPD_COMPRESS_RLE_CODEC_H_
