// Run-length encoding, column-major within each page. Order dependent in the
// extreme: sorted leading columns collapse to a handful of runs while
// fragmented trailing columns do not — the L(I_X, Y) run-length quantity in
// Section 4.2 is precisely what governs this codec's size.
#ifndef CAPD_COMPRESS_RLE_CODEC_H_
#define CAPD_COMPRESS_RLE_CODEC_H_

#include <string>
#include <vector>

#include "compress/codec.h"

namespace capd {

class RleCodec : public Codec {
 public:
  explicit RleCodec(std::vector<uint32_t> widths) : Codec(std::move(widths)) {}

  CompressionKind kind() const override { return CompressionKind::kRle; }
  std::string CompressPage(const EncodedPage& page) const override;
  EncodedPage DecompressPage(std::string_view blob) const override;
};

}  // namespace capd

#endif  // CAPD_COMPRESS_RLE_CODEC_H_
