#include "compress/varint.h"

#include "common/logging.h"

namespace capd {

void PutVarint(uint64_t v, std::string* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

uint64_t GetVarint(std::string_view data, size_t* offset) {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    CAPD_CHECK_LT(*offset, data.size()) << "truncated varint";
    const uint8_t byte = static_cast<uint8_t>(data[(*offset)++]);
    v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
    CAPD_CHECK_LT(shift, 64) << "varint too long";
  }
  return v;
}

size_t VarintSize(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

}  // namespace capd
