#include "compress/compression_kind.h"

namespace capd {

const char* CompressionKindName(CompressionKind kind) {
  switch (kind) {
    case CompressionKind::kNone:
      return "NONE";
    case CompressionKind::kRow:
      return "ROW(NS)";
    case CompressionKind::kPage:
      return "PAGE(LD)";
    case CompressionKind::kGlobalDict:
      return "GLOBAL_DICT";
    case CompressionKind::kRle:
      return "RLE";
    case CompressionKind::kBitmap:
      return "BITMAP";
  }
  return "?";
}

bool IsOrderDependent(CompressionKind kind) {
  switch (kind) {
    case CompressionKind::kPage:
    case CompressionKind::kRle:
    case CompressionKind::kBitmap:
      return true;
    case CompressionKind::kNone:
    case CompressionKind::kRow:
    case CompressionKind::kGlobalDict:
      return false;
  }
  return false;
}

const std::vector<CompressionKind>& AllCompressedKinds() {
  static const std::vector<CompressionKind>* kinds =
      new std::vector<CompressionKind>{
          CompressionKind::kRow, CompressionKind::kPage,
          CompressionKind::kGlobalDict, CompressionKind::kRle,
          CompressionKind::kBitmap};
  return *kinds;
}

}  // namespace capd
