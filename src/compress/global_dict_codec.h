// Global dictionary encoding: one dictionary per column spanning the whole
// index (DB2 style). Pages store fixed-width pointers into the dictionary;
// the dictionary itself is charged once via IndexOverheadBytes(). Order
// independent: page contents do not change the dictionary or pointer sizes.
// Probing is heterogeneous (std::less<> on string_views into the flat
// arena), so neither building pointer arrays nor measuring them copies any
// field bytes.
#ifndef CAPD_COMPRESS_GLOBAL_DICT_CODEC_H_
#define CAPD_COMPRESS_GLOBAL_DICT_CODEC_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "compress/codec.h"
#include "storage/table.h"

namespace capd {

class GlobalDictCodec : public Codec {
 public:
  // Builds per-column dictionaries over the given rows (the rows the index
  // will contain, already projected to the index schema).
  static std::unique_ptr<GlobalDictCodec> Build(const std::vector<Row>& rows,
                                                const Schema& schema);

  using Codec::CompressPage;
  CompressionKind kind() const override { return CompressionKind::kGlobalDict; }
  std::string CompressPage(const FlatSpan& span) const override;
  uint64_t MeasurePage(const FlatSpan& span) const override;
  EncodedPage DecompressPage(std::string_view blob) const override;
  uint64_t IndexOverheadBytes() const override;

  // Pointer width (bytes) used for column c.
  uint32_t PointerWidth(size_t c) const { return ptr_widths_[c]; }
  size_t DictionarySize(size_t c) const { return dicts_[c].size(); }

 private:
  explicit GlobalDictCodec(std::vector<uint32_t> widths)
      : Codec(std::move(widths)) {}

  // dicts_[c]: encoded field -> id (std::less<> enables string_view probes);
  // rdicts_[c][id]: view of the owning map key.
  std::vector<std::map<std::string, uint32_t, std::less<>>> dicts_;
  std::vector<std::vector<std::string_view>> rdicts_;
  std::vector<uint32_t> ptr_widths_;
};

}  // namespace capd

#endif  // CAPD_COMPRESS_GLOBAL_DICT_CODEC_H_
