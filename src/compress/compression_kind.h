// Compression method taxonomy. Mirrors Microsoft SQL Server's packages
// (ROW = null suppression, PAGE = null suppression + prefix + local
// dictionary) plus global dictionary and RLE, which the paper discusses for
// the ORD-IND / ORD-DEP deduction analysis (Section 4.2).
#ifndef CAPD_COMPRESS_COMPRESSION_KIND_H_
#define CAPD_COMPRESS_COMPRESSION_KIND_H_

#include <cstdint>
#include <vector>

namespace capd {

enum class CompressionKind : uint8_t {
  kNone,        // plain fixed-width rows
  kRow,         // null suppression (ROW); order-independent
  kPage,        // NS + per-page column prefix + local dictionary; order-dependent
  kGlobalDict,  // one dictionary per column across the index; order-independent
  kRle,         // run-length encoding per column per page; order-dependent
  kBitmap,      // succinct per-value WAH bitmaps + rank/select; order-dependent
};

const char* CompressionKindName(CompressionKind kind);

// ORD-DEP methods (local dictionary, RLE) have page-order-sensitive sizes;
// ORD-IND methods do not (Section 4.2). kNone is trivially order-independent.
bool IsOrderDependent(CompressionKind kind);

// All kinds that actually compress (everything but kNone).
const std::vector<CompressionKind>& AllCompressedKinds();

}  // namespace capd

#endif  // CAPD_COMPRESS_COMPRESSION_KIND_H_
