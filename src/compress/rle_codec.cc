#include "compress/rle_codec.h"

#include <cstring>

#include "common/logging.h"
#include "compress/null_suppression.h"
#include "compress/varint.h"

namespace capd {
namespace {

// Walks one flat column slice (n cells of `w` bytes at `base`) and calls
// emit(run_length, value_view) once per run, in order. Equality against the
// run head is a single memcmp over the fixed-width cell — the compiler turns
// the common 8-byte widths into one load-compare pair.
template <typename EmitFn>
void ForEachRun(const char* base, uint32_t w, size_t n, EmitFn&& emit) {
  size_t i = 0;
  while (i < n) {
    const char* head = base + i * w;
    size_t j = i + 1;
    while (j < n && std::memcmp(base + j * w, head, w) == 0) ++j;
    emit(j - i, FieldView(head, w));
    i = j;
  }
}

}  // namespace

// Blob layout: varint n_rows; per column: runs of (varint run_len,
// NS(value)) until n_rows values are covered.
std::string RleCodec::CompressPage(const FlatSpan& span) const {
  ValidateSpan(span);
  std::string blob;
  const size_t n = span.num_rows();
  PutVarint(n, &blob);
  for (size_t c = 0; c < num_columns(); ++c) {
    ForEachRun(span.column_data(c), widths_[c], n,
               [&blob](size_t run, FieldView value) {
                 PutVarint(run, &blob);
                 NsCompressField(value, &blob);
               });
  }
  return blob;
}

uint64_t RleCodec::MeasurePage(const FlatSpan& span) const {
  ValidateSpan(span);
  const size_t n = span.num_rows();
  uint64_t total = VarintSize(n);
  for (size_t c = 0; c < num_columns(); ++c) {
    ForEachRun(span.column_data(c), widths_[c], n,
               [&total](size_t run, FieldView value) {
                 total += VarintSize(run) + NsFieldSize(value);
               });
  }
  return total;
}

EncodedPage RleCodec::DecompressPage(std::string_view blob) const {
  size_t offset = 0;
  const uint64_t n = GetVarint(blob, &offset);
  EncodedPage page;
  page.rows.resize(n);
  for (auto& row : page.rows) row.resize(num_columns());
  // One value scratch reused across runs: capacity sticks at the column
  // width, so steady state decodes without per-run allocation.
  std::string value;
  for (size_t c = 0; c < num_columns(); ++c) {
    value.reserve(widths_[c]);
    uint64_t filled = 0;
    while (filled < n) {
      const uint64_t run = GetVarint(blob, &offset);
      CAPD_CHECK_GT(run, 0u);
      CAPD_CHECK_LE(filled + run, n);
      value.clear();
      NsDecompressField(blob, &offset, widths_[c], &value);
      for (uint64_t k = 0; k < run; ++k) page.rows[filled++][c] = value;
    }
  }
  return page;
}

}  // namespace capd
