#include "compress/rle_codec.h"

#include "common/logging.h"
#include "compress/null_suppression.h"
#include "compress/varint.h"

namespace capd {

// Blob layout: varint n_rows; per column: runs of (varint run_len,
// NS(value)) until n_rows values are covered.
std::string RleCodec::CompressPage(const EncodedPage& page) const {
  ValidatePage(page);
  std::string blob;
  const size_t n = page.rows.size();
  PutVarint(n, &blob);
  for (size_t c = 0; c < num_columns(); ++c) {
    size_t i = 0;
    while (i < n) {
      size_t j = i + 1;
      while (j < n && page.rows[j][c] == page.rows[i][c]) ++j;
      PutVarint(j - i, &blob);
      NsCompressField(page.rows[i][c], &blob);
      i = j;
    }
  }
  return blob;
}

EncodedPage RleCodec::DecompressPage(std::string_view blob) const {
  size_t offset = 0;
  const uint64_t n = GetVarint(blob, &offset);
  EncodedPage page;
  page.rows.assign(n, std::vector<std::string>(num_columns()));
  for (size_t c = 0; c < num_columns(); ++c) {
    uint64_t filled = 0;
    while (filled < n) {
      const uint64_t run = GetVarint(blob, &offset);
      CAPD_CHECK_GT(run, 0u);
      CAPD_CHECK_LE(filled + run, n);
      std::string value;
      NsDecompressField(blob, &offset, widths_[c], &value);
      for (uint64_t k = 0; k < run; ++k) page.rows[filled++][c] = value;
    }
  }
  return page;
}

}  // namespace capd
