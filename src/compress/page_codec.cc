#include "compress/page_codec.h"

#include <cstring>
#include <map>
#include <string_view>
#include <utility>

#include "common/logging.h"
#include "compress/null_suppression.h"
#include "compress/varint.h"

namespace capd {
namespace {

// Longest common prefix (in bytes) of a column's values within the span.
size_t CommonPrefixLen(const FlatSpan& span, size_t col) {
  const size_t n = span.num_rows();
  if (n == 0) return 0;
  const FieldView anchor = span.field(0, col);
  size_t len = anchor.size();
  for (size_t i = 1; i < n && len > 0; ++i) {
    const FieldView v = span.field(i, col);
    size_t k = 0;
    while (k < len && v[k] == anchor[k]) ++k;
    len = k;
  }
  return len;
}

// Per-column compression plan, shared between CompressPage and MeasurePage
// so the two can never disagree on a byte. Keys are views into the span's
// arena: counting, id assignment and per-cell probing all run on interned
// slices without copying a field.
struct ColumnPlan {
  size_t anchor_len = 0;
  // remainder -> dictionary id + 1 for repeated values, 0 for literals.
  // std::map gives deterministic (lexicographic) entry order.
  std::map<FieldView, uint32_t> code;
  std::vector<FieldView> dict;  // dictionary entries in id order

  ColumnPlan(const FlatSpan& span, size_t col) {
    anchor_len = CommonPrefixLen(span, col);
    const size_t n = span.num_rows();
    for (size_t i = 0; i < n; ++i) {
      ++code[span.field(i, col).substr(anchor_len)];  // count occurrences
    }
    // Values occurring >= 2 times go to the local dictionary; the rest are
    // stored literally (code 0).
    for (auto& [rem, entry] : code) {
      if (entry >= 2) {
        dict.push_back(rem);
        entry = static_cast<uint32_t>(dict.size());  // id + 1
      } else {
        entry = 0;
      }
    }
  }
};

}  // namespace

// Blob layout:
//   varint n_rows
//   for each column:
//     varint anchor_len, anchor bytes
//     varint dict_count, dict entries (each: NS of the post-anchor remainder)
//     n_rows cells: varint code; code==0 -> literal NS remainder follows,
//                   code>=1  -> dictionary entry code-1.
std::string PageCodec::CompressPage(const FlatSpan& span) const {
  ValidateSpan(span);
  std::string blob;
  const size_t n = span.num_rows();
  PutVarint(n, &blob);
  for (size_t c = 0; c < num_columns(); ++c) {
    const ColumnPlan plan(span, c);
    PutVarint(plan.anchor_len, &blob);
    if (n > 0) blob.append(span.field(0, c).data(), plan.anchor_len);

    PutVarint(plan.dict.size(), &blob);
    for (const FieldView rem : plan.dict) NsCompressField(rem, &blob);

    for (size_t i = 0; i < n; ++i) {
      const FieldView rem = span.field(i, c).substr(plan.anchor_len);
      const uint32_t code = plan.code.find(rem)->second;
      PutVarint(code, &blob);
      if (code == 0) NsCompressField(rem, &blob);
    }
  }
  return blob;
}

uint64_t PageCodec::MeasurePage(const FlatSpan& span) const {
  ValidateSpan(span);
  const size_t n = span.num_rows();
  uint64_t total = VarintSize(n);
  for (size_t c = 0; c < num_columns(); ++c) {
    const ColumnPlan plan(span, c);
    total += VarintSize(plan.anchor_len) + plan.anchor_len;
    total += VarintSize(plan.dict.size());
    for (const FieldView rem : plan.dict) total += NsFieldSize(rem);

    for (size_t i = 0; i < n; ++i) {
      const FieldView rem = span.field(i, c).substr(plan.anchor_len);
      const uint32_t code = plan.code.find(rem)->second;
      total += VarintSize(code);
      if (code == 0) total += NsFieldSize(rem);
    }
  }
  return total;
}

EncodedPage PageCodec::DecompressPage(std::string_view blob) const {
  size_t offset = 0;
  const uint64_t n = GetVarint(blob, &offset);
  EncodedPage page;
  page.rows.resize(n);
  for (auto& row : page.rows) row.resize(num_columns());
  std::vector<std::string> dict;  // reused across columns
  for (size_t c = 0; c < num_columns(); ++c) {
    const uint64_t anchor_len = GetVarint(blob, &offset);
    CAPD_CHECK_LE(offset + anchor_len, blob.size());
    const std::string_view anchor = blob.substr(offset, anchor_len);
    offset += anchor_len;
    const uint32_t rem_width = widths_[c] - static_cast<uint32_t>(anchor_len);

    const uint64_t dict_count = GetVarint(blob, &offset);
    dict.clear();
    dict.reserve(dict_count);
    for (uint64_t d = 0; d < dict_count; ++d) {
      std::string rem;
      rem.reserve(rem_width);
      NsDecompressField(blob, &offset, rem_width, &rem);
      dict.push_back(std::move(rem));
    }

    for (uint64_t i = 0; i < n; ++i) {
      const uint64_t code = GetVarint(blob, &offset);
      std::string& field = page.rows[i][c];
      field.reserve(widths_[c]);
      field.assign(anchor);
      if (code == 0) {
        NsDecompressField(blob, &offset, rem_width, &field);
      } else {
        CAPD_CHECK_LE(code, dict.size());
        field.append(dict[code - 1]);
      }
    }
  }
  return page;
}

}  // namespace capd
