#include "compress/page_codec.h"

#include <map>
#include <string_view>

#include "common/logging.h"
#include "compress/null_suppression.h"
#include "compress/varint.h"

namespace capd {
namespace {

// Longest common prefix (in bytes) of a column's values within the page.
size_t CommonPrefixLen(const EncodedPage& page, size_t col) {
  if (page.rows.empty()) return 0;
  std::string_view anchor = page.rows[0][col];
  size_t len = anchor.size();
  for (size_t i = 1; i < page.rows.size() && len > 0; ++i) {
    std::string_view v = page.rows[i][col];
    size_t k = 0;
    while (k < len && v[k] == anchor[k]) ++k;
    len = k;
  }
  return len;
}

}  // namespace

// Blob layout:
//   varint n_rows
//   for each column:
//     varint anchor_len, anchor bytes
//     varint dict_count, dict entries (each: NS of the post-anchor remainder)
//     n_rows cells: varint code; code==0 -> literal NS remainder follows,
//                   code>=1  -> dictionary entry code-1.
std::string PageCodec::CompressPage(const EncodedPage& page) const {
  ValidatePage(page);
  std::string blob;
  const size_t n = page.rows.size();
  PutVarint(n, &blob);
  for (size_t c = 0; c < num_columns(); ++c) {
    const size_t anchor_len = CommonPrefixLen(page, c);
    PutVarint(anchor_len, &blob);
    if (n > 0) blob.append(page.rows[0][c].data(), anchor_len);

    // Count post-anchor remainders; values occurring >= 2 times go to the
    // local dictionary. std::map gives deterministic entry order.
    std::map<std::string_view, uint32_t> counts;
    for (size_t i = 0; i < n; ++i) {
      std::string_view rem =
          std::string_view(page.rows[i][c]).substr(anchor_len);
      ++counts[rem];
    }
    std::vector<std::string_view> dict;
    std::map<std::string_view, uint32_t> dict_id;
    for (const auto& [rem, cnt] : counts) {
      if (cnt >= 2) {
        dict_id[rem] = static_cast<uint32_t>(dict.size());
        dict.push_back(rem);
      }
    }
    PutVarint(dict.size(), &blob);
    for (std::string_view rem : dict) NsCompressField(rem, &blob);

    for (size_t i = 0; i < n; ++i) {
      std::string_view rem =
          std::string_view(page.rows[i][c]).substr(anchor_len);
      auto it = dict_id.find(rem);
      if (it == dict_id.end()) {
        PutVarint(0, &blob);
        NsCompressField(rem, &blob);
      } else {
        PutVarint(it->second + 1, &blob);
      }
    }
  }
  return blob;
}

EncodedPage PageCodec::DecompressPage(std::string_view blob) const {
  size_t offset = 0;
  const uint64_t n = GetVarint(blob, &offset);
  EncodedPage page;
  page.rows.assign(n, std::vector<std::string>(num_columns()));
  for (size_t c = 0; c < num_columns(); ++c) {
    const uint64_t anchor_len = GetVarint(blob, &offset);
    CAPD_CHECK_LE(offset + anchor_len, blob.size());
    const std::string anchor(blob.substr(offset, anchor_len));
    offset += anchor_len;
    const uint32_t rem_width = widths_[c] - static_cast<uint32_t>(anchor_len);

    const uint64_t dict_count = GetVarint(blob, &offset);
    std::vector<std::string> dict;
    dict.reserve(dict_count);
    for (uint64_t d = 0; d < dict_count; ++d) {
      std::string rem;
      NsDecompressField(blob, &offset, rem_width, &rem);
      dict.push_back(std::move(rem));
    }

    for (uint64_t i = 0; i < n; ++i) {
      const uint64_t code = GetVarint(blob, &offset);
      std::string field = anchor;
      if (code == 0) {
        NsDecompressField(blob, &offset, rem_width, &field);
      } else {
        CAPD_CHECK_LE(code, dict.size());
        field.append(dict[code - 1]);
      }
      page.rows[i][c] = std::move(field);
    }
  }
  return page;
}

}  // namespace capd
