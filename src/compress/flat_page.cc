#include "compress/flat_page.h"

#include "common/logging.h"

namespace capd {

FlatPage::FlatPage(std::vector<uint32_t> widths, size_t rows)
    : widths_(std::move(widths)), rows_(rows) {
  col_offsets_.reserve(widths_.size());
  for (uint32_t w : widths_) {
    col_offsets_.push_back(row_width_ * rows_);
    row_width_ += w;
  }
  // Exactly one arena allocation per page, regardless of cell count.
  arena_.reserve(row_width_ * rows_);
}

FlatSpan FlatPage::span(size_t begin, size_t end) const {
  CAPD_CHECK_LE(begin, end);
  CAPD_CHECK_LE(end, rows_);
  return FlatSpan(this, begin, end - begin);
}

FlatPage FlatPage::FromRows(const std::vector<Row>& rows, const Schema& schema,
                            size_t begin, size_t end) {
  CAPD_CHECK_LE(begin, end);
  CAPD_CHECK_LE(end, rows.size());
  FlatPage page(ColumnWidths(schema), end - begin);
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    const Column& col = schema.column(c);
    for (size_t i = begin; i < end; ++i) {
      const Row& row = rows[i];
      CAPD_CHECK_EQ(row.size(), schema.num_columns());
      // EncodeField appends exactly col.width bytes to the arena; the
      // column-major fill order matches col_offsets_.
      EncodeField(row[c], col, &page.arena_);
    }
  }
  CAPD_CHECK_EQ(page.arena_.size(), page.row_width_ * page.rows_);
  return page;
}

FlatPage FlatPage::FromBlock(const ColumnBlock& block, const Schema& schema) {
  CAPD_CHECK_EQ(block.num_columns(), schema.num_columns());
  const size_t n = static_cast<size_t>(block.num_rows());
  FlatPage page(ColumnWidths(schema), n);
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    const Column& col = schema.column(c);
    for (size_t r = 0; r < n; ++r) {
      EncodeField(block.value(c, r), col, &page.arena_);
    }
  }
  CAPD_CHECK_EQ(page.arena_.size(), page.row_width_ * page.rows_);
  return page;
}

FlatPage FlatPage::FromEncodedPage(const EncodedPage& encoded,
                                   const std::vector<uint32_t>& widths) {
  FlatPage page(widths, encoded.rows.size());
  for (size_t c = 0; c < widths.size(); ++c) {
    for (const auto& row : encoded.rows) {
      CAPD_CHECK_EQ(row.size(), widths.size());
      CAPD_CHECK_EQ(row[c].size(), static_cast<size_t>(widths[c]));
      page.arena_.append(row[c]);
    }
  }
  return page;
}

EncodedPage FlatPage::ToEncodedPage() const {
  EncodedPage out;
  out.rows.reserve(rows_);
  for (size_t r = 0; r < rows_; ++r) {
    std::vector<std::string> fields;
    fields.reserve(num_columns());
    for (size_t c = 0; c < num_columns(); ++c) {
      fields.emplace_back(field(r, c));
    }
    out.rows.push_back(std::move(fields));
  }
  return out;
}

std::vector<uint32_t> ColumnWidths(const Schema& schema) {
  std::vector<uint32_t> widths;
  widths.reserve(schema.num_columns());
  for (const Column& c : schema.columns()) widths.push_back(c.width);
  return widths;
}

}  // namespace capd
