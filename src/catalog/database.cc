#include "catalog/database.h"

#include "common/logging.h"

namespace capd {

Table* Database::AddTable(std::unique_ptr<Table> table) {
  CAPD_CHECK(!HasTable(table->name())) << "duplicate table " << table->name();
  Table* raw = table.get();
  tables_[table->name()] = std::move(table);
  return raw;
}

bool Database::HasTable(const std::string& name) const {
  return tables_.count(name) > 0;
}

const Table& Database::table(const std::string& name) const {
  const auto it = tables_.find(name);
  CAPD_CHECK(it != tables_.end()) << "no such table: " << name;
  return *it->second;
}

std::vector<const Table*> Database::tables() const {
  std::vector<const Table*> out;
  out.reserve(tables_.size());
  for (const auto& [name, t] : tables_) out.push_back(t.get());
  return out;
}

std::vector<ForeignKey> Database::ForeignKeysFrom(
    const std::string& fact) const {
  std::vector<ForeignKey> out;
  for (const ForeignKey& fk : fks_) {
    if (fk.fact_table == fact) out.push_back(fk);
  }
  return out;
}

const ForeignKey* Database::FindForeignKey(const std::string& fact,
                                           const std::string& fk_column) const {
  for (const ForeignKey& fk : fks_) {
    if (fk.fact_table == fact && fk.fk_column == fk_column) return &fk;
  }
  return nullptr;
}

const TableStats& Database::stats(const std::string& table_name) const {
  auto it = stats_cache_.find(table_name);
  if (it == stats_cache_.end()) {
    it = stats_cache_.emplace(table_name, TableStats::Compute(table(table_name)))
             .first;
  }
  return it->second;
}

void Database::AddExistingIndex(const IndexDef& def, uint64_t bytes) {
  existing_[def.Signature()] = bytes;
}

bool Database::IsExistingIndex(const IndexDef& def) const {
  return existing_.count(def.Signature()) > 0;
}

uint64_t Database::BaseDataBytes() const {
  uint64_t bytes = 0;
  for (const auto& [name, t] : tables_) bytes += t->HeapBytes();
  return bytes;
}

}  // namespace capd
