// The database catalog: tables (base tables and materialized MVs alike),
// foreign-key metadata, lazily-computed statistics, and any pre-existing
// indexes (which the size-estimation framework treats as free, perfectly
// accurate size sources — Section 5.1).
#ifndef CAPD_CATALOG_DATABASE_H_
#define CAPD_CATALOG_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "index/index_def.h"
#include "stats/column_stats.h"
#include "stats/join_synopsis.h"
#include "storage/table.h"

namespace capd {

class Database {
 public:
  Database() = default;

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  Table* AddTable(std::unique_ptr<Table> table);
  bool HasTable(const std::string& name) const;
  const Table& table(const std::string& name) const;
  std::vector<const Table*> tables() const;

  void AddForeignKey(ForeignKey fk) { fks_.push_back(std::move(fk)); }
  const std::vector<ForeignKey>& foreign_keys() const { return fks_; }
  // FK edges whose fact side is `fact`.
  std::vector<ForeignKey> ForeignKeysFrom(const std::string& fact) const;
  // The edge fact.fk_column -> some dimension, if declared.
  const ForeignKey* FindForeignKey(const std::string& fact,
                                   const std::string& fk_column) const;

  // Stats are computed on first use and cached per table.
  const TableStats& stats(const std::string& table_name) const;

  // Pre-existing physical indexes (size known exactly from the catalog).
  void AddExistingIndex(const IndexDef& def, uint64_t bytes);
  const std::map<std::string, uint64_t>& existing_index_bytes() const {
    return existing_;
  }
  bool IsExistingIndex(const IndexDef& def) const;

  // Total base-data size (heaps of all base tables); the experiments'
  // storage budgets are expressed as a fraction of this.
  uint64_t BaseDataBytes() const;

 private:
  std::map<std::string, std::unique_ptr<Table>> tables_;
  std::vector<ForeignKey> fks_;
  mutable std::map<std::string, TableStats> stats_cache_;
  std::map<std::string, uint64_t> existing_;  // IndexDef signature -> bytes
};

}  // namespace capd

#endif  // CAPD_CATALOG_DATABASE_H_
