// The what-if optimizer: Cost(statement, hypothetical configuration) — the
// API every physical design tool is built on (Section 3). Access paths:
// heap scan, (covering) index scan, index seek with optional RID lookups,
// partial-index use when the query's predicates subsume the index filter,
// and MV-index answering via a pluggable matcher (implemented in src/mv).
// The cost model is compression aware per Appendix A.
#ifndef CAPD_OPTIMIZER_WHAT_IF_H_
#define CAPD_OPTIMIZER_WHAT_IF_H_

#include <optional>
#include <string>
#include <vector>

#include "catalog/database.h"
#include "optimizer/configuration.h"
#include "optimizer/cost_model.h"
#include "query/query.h"

namespace capd {

// Lets the optimizer ask whether an index on a materialized view can answer
// a query (implemented by MVRegistry in src/mv to keep layering acyclic).
class MVMatcher {
 public:
  virtual ~MVMatcher() = default;

  struct MVAccess {
    double mv_tuples = 0.0;      // rows in the MV
    double selected_frac = 1.0;  // fraction the query reads from the MV
    size_t used_columns = 1;     // columns the query touches in the MV
    bool leading_key_seek = false;  // index key supports the residual filter
  };

  // Returns the access description if `idx` (an index on an MV) can answer
  // `query`; std::nullopt otherwise.
  virtual std::optional<MVAccess> Match(const IndexDef& idx,
                                        const SelectQuery& query) const = 0;

  // If `object` is a registered MV, the fact table it is defined over
  // (INSERTs into that table must maintain the MV's indexes).
  virtual std::optional<std::string> FactTableOf(
      const std::string& object) const {
    (void)object;
    return std::nullopt;
  }
};

// Breakdown of one costed plan (useful for tests and examples).
struct PlanCost {
  double io = 0.0;
  double cpu = 0.0;
  std::string access_path;  // human-readable description of the chosen plan

  double total() const { return io + cpu; }
};

class WhatIfOptimizer {
 public:
  WhatIfOptimizer(const Database& db, CostModelParams params)
      : db_(&db), params_(params) {}

  // `mv_matcher` may be null (MV indexes in the configuration are ignored).
  void set_mv_matcher(const MVMatcher* matcher) { mv_matcher_ = matcher; }
  const MVMatcher* mv_matcher() const { return mv_matcher_; }

  // Optimizer-estimated cost of the statement under the configuration
  // (unweighted; callers apply Statement::weight).
  double Cost(const Statement& stmt, const Configuration& config) const;
  PlanCost CostWithPlan(const Statement& stmt, const Configuration& config) const;

  // Sum of weight * Cost over the workload.
  double WorkloadCost(const Workload& workload,
                      const Configuration& config) const;

  // Estimated combined selectivity of `filters` on `table` (independence
  // across columns, histograms within a column). Exposed for candidate
  // generation and partial-index size estimation.
  double Selectivity(const std::string& table,
                     const std::vector<ColumnFilter>& filters) const;
  double FilterSelectivity(const std::string& table,
                           const ColumnFilter& filter) const;

  const CostModelParams& params() const { return params_; }

 private:
  PlanCost CostSelect(const SelectQuery& q, const Configuration& config) const;
  PlanCost CostInsert(const InsertStatement& ins,
                      const Configuration& config) const;

  // Best access path for the sub-query restricted to `table`: returns the
  // cost of producing `out_tuples` qualifying rows with `cols` available.
  PlanCost BestTableAccess(const SelectQuery& q, const std::string& table,
                           const Configuration& config) const;

  PlanCost HeapScanCost(const std::string& table,
                        const std::vector<ColumnFilter>& preds) const;
  // Cost of using `idx` for this table's portion, or nullopt if unusable.
  std::optional<PlanCost> IndexAccessCost(
      const SelectQuery& q, const std::string& table,
      const PhysicalIndexEstimate& idx,
      const std::vector<ColumnFilter>& preds,
      const std::vector<std::string>& cols_used) const;

  const Database* db_;
  CostModelParams params_;
  const MVMatcher* mv_matcher_ = nullptr;
};

// True if query predicates `preds` imply the partial-index filter `filter`
// (i.e. every row the query needs is inside the partial index).
bool PredicatesSubsumeFilter(const std::vector<ColumnFilter>& preds,
                             const ColumnFilter& filter);

}  // namespace capd

#endif  // CAPD_OPTIMIZER_WHAT_IF_H_
