#include "optimizer/configuration.h"

#include <sstream>

#include "common/logging.h"

namespace capd {

void Configuration::Add(PhysicalIndexEstimate idx) {
  CAPD_CHECK(!Contains(idx.def.Signature()))
      << "duplicate index in configuration: " << idx.def.ToString();
  indexes_.push_back(std::move(idx));
}

bool Configuration::Remove(const std::string& signature) {
  for (auto it = indexes_.begin(); it != indexes_.end(); ++it) {
    if (it->def.Signature() == signature) {
      indexes_.erase(it);
      return true;
    }
  }
  return false;
}

bool Configuration::Contains(const std::string& signature) const {
  for (const PhysicalIndexEstimate& idx : indexes_) {
    if (idx.def.Signature() == signature) return true;
  }
  return false;
}

std::vector<const PhysicalIndexEstimate*> Configuration::IndexesOn(
    const std::string& object) const {
  std::vector<const PhysicalIndexEstimate*> out;
  for (const PhysicalIndexEstimate& idx : indexes_) {
    if (idx.def.object == object) out.push_back(&idx);
  }
  return out;
}

bool Configuration::HasClusteredOn(const std::string& object) const {
  for (const PhysicalIndexEstimate& idx : indexes_) {
    if (idx.def.object == object && idx.def.clustered) return true;
  }
  return false;
}

double Configuration::TotalBytes() const {
  double bytes = 0.0;
  for (const PhysicalIndexEstimate& idx : indexes_) bytes += idx.bytes;
  return bytes;
}

std::string Configuration::ToString() const {
  std::ostringstream os;
  os << "{";
  for (size_t i = 0; i < indexes_.size(); ++i) {
    if (i > 0) os << "; ";
    os << indexes_[i].def.ToString() << " ~"
       << static_cast<uint64_t>(indexes_[i].bytes / 1024) << "KB";
  }
  os << "}";
  return os.str();
}

}  // namespace capd
