// Per-statement what-if cost cache: the advisor's greedy search costs the
// whole workload once per trial configuration, but adding one index only
// changes the cost of statements that can actually see it — every other
// statement's cost is unchanged from the previous trial. Memoizing
// Cost(statement, config) by (statement, the ordered subsequence of config
// indexes relevant to that statement) turns each greedy step from
// O(pool × workload) full costings into O(pool × affected statements),
// while staying bit-identical to the uncached optimizer: a hit returns a
// double produced by the exact computation a miss would run.
//
// Relevance mirrors the optimizer's own gates conservatively (an index
// marked relevant may still contribute nothing; an index marked irrelevant
// provably cannot change the plan): an index is relevant to a SELECT iff
// it sits on a touched table and is clustered (replaces the heap), usable
// as an access path (seekable prefix or covering, partial filter
// subsumed), or usable for an index-nested-loops join; it is relevant to
// an INSERT iff it must be maintained (same table, or an MV over it).
#ifndef CAPD_OPTIMIZER_COST_CACHE_H_
#define CAPD_OPTIMIZER_COST_CACHE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/database.h"
#include "optimizer/what_if.h"
#include "query/query.h"

namespace capd {

// Thread-safe: Enumerate's parallel trial evaluations share one cache.
// Concurrent misses on the same key both run the (pure, deterministic)
// optimizer and insert the same value, so results are independent of
// thread count and interleaving.
class StatementCostCache {
 public:
  // All three referents must outlive the cache.
  StatementCostCache(const Database& db, const WhatIfOptimizer& optimizer,
                     const Workload& workload);

  // Unweighted Cost(statement, config), served from the cache when the
  // relevant subsequence has been costed before.
  double Cost(size_t stmt_index, const Configuration& config);

  // Sum of weight * Cost over the workload — bit-identical to
  // WhatIfOptimizer::WorkloadCost (same per-statement terms, summed in the
  // same statement order).
  double WorkloadCost(const Configuration& config);

  // Statement costings served from the cache / computed by the optimizer.
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

  // True if `idx` can influence the cost of statement `stmt_index`
  // (exposed for tests; memoized by index signature).
  bool Relevant(size_t stmt_index, const IndexDef& idx);

 private:
  // Per touched table: the statement's predicates, used columns and join
  // keys there — everything the relevance gates need, precomputed once.
  struct TableScope {
    std::string table;
    std::vector<ColumnFilter> preds;
    std::vector<std::string> cols_used;
    std::vector<std::string> join_keys;  // dim keys when joined as dimension
  };
  struct StatementScope {
    std::vector<TableScope> tables;
    bool is_insert = false;
  };
  // Interned per distinct index signature: a compact id for key building
  // plus the per-statement relevance bitmap. Cache keys are byte strings of
  // ids, so building one costs no signature re-rendering.
  struct IndexInfo {
    uint32_t id = 0;
    std::vector<char> relevant;  // indexed by statement
  };

  bool ComputeRelevant(size_t stmt_index, const IndexDef& idx) const;
  const IndexInfo& InfoFor(const IndexDef& idx);
  double CostWithInfos(size_t stmt_index, const Configuration& config,
                       const std::vector<const IndexInfo*>& infos);

  const Database* db_;
  const WhatIfOptimizer* optimizer_;
  const Workload* workload_;
  std::vector<StatementScope> scopes_;

  // Cost entries are sharded per statement (the statement index is the
  // natural partition of every key), so the selection/enumeration fan-out
  // contends per statement instead of on one global mutex. The id/relevance
  // interner keeps its own lock; its traffic is one lookup per distinct
  // index per trial configuration.
  struct Shard {
    std::mutex mu;
    std::unordered_map<std::string, double> costs;  // byte key -> cost
  };
  std::vector<Shard> shards_;  // one per workload statement

  std::mutex mu_;
  std::unordered_map<std::string, IndexInfo> index_info_;  // by signature
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace capd

#endif  // CAPD_OPTIMIZER_COST_CACHE_H_
