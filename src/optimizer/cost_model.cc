#include "optimizer/cost_model.h"

namespace capd {

double CostModelParams::Alpha(CompressionKind kind) const {
  switch (kind) {
    case CompressionKind::kNone:
      return 0.0;
    case CompressionKind::kRow:
      return alpha_row;
    case CompressionKind::kPage:
      return alpha_page;
    case CompressionKind::kGlobalDict:
      return alpha_global_dict;
    case CompressionKind::kRle:
      return alpha_rle;
    case CompressionKind::kBitmap:
      return alpha_bitmap;
  }
  return 0.0;
}

double CostModelParams::Beta(CompressionKind kind) const {
  switch (kind) {
    case CompressionKind::kNone:
      return 0.0;
    case CompressionKind::kRow:
      return beta_row;
    case CompressionKind::kPage:
      return beta_page;
    case CompressionKind::kGlobalDict:
      return beta_global_dict;
    case CompressionKind::kRle:
      return beta_rle;
    case CompressionKind::kBitmap:
      return beta_bitmap;
  }
  return 0.0;
}

}  // namespace capd
