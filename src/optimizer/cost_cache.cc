#include "optimizer/cost_cache.h"

#include <algorithm>

namespace capd {
namespace {

bool Contains(const std::vector<std::string>& v, const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

void AppendU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

}  // namespace

StatementCostCache::StatementCostCache(const Database& db,
                                       const WhatIfOptimizer& optimizer,
                                       const Workload& workload)
    : db_(&db),
      optimizer_(&optimizer),
      workload_(&workload),
      shards_(workload.statements.size()) {
  scopes_.reserve(workload.statements.size());
  for (const Statement& stmt : workload.statements) {
    StatementScope scope;
    switch (stmt.type) {
      case StatementType::kSelect: {
        const SelectQuery& q = stmt.select;
        auto add_table = [&](const std::string& t) -> TableScope& {
          for (TableScope& ts : scope.tables) {
            if (ts.table == t) return ts;
          }
          TableScope ts;
          ts.table = t;
          ts.preds = q.PredicatesOn(t, db);
          ts.cols_used = q.ColumnsUsedOn(t, db);
          scope.tables.push_back(std::move(ts));
          return scope.tables.back();
        };
        add_table(q.table);
        for (const JoinClause& j : q.joins) {
          add_table(j.dim_table).join_keys.push_back(j.dim_key);
        }
        break;
      }
      case StatementType::kInsert: {
        scope.is_insert = true;
        TableScope ts;
        ts.table = stmt.insert.table;
        scope.tables.push_back(std::move(ts));
        break;
      }
    }
    scopes_.push_back(std::move(scope));
  }
}

bool StatementCostCache::ComputeRelevant(size_t stmt_index,
                                         const IndexDef& idx) const {
  const StatementScope& scope = scopes_[stmt_index];
  if (!db_->HasTable(idx.object)) {
    // Index on a materialized view: invisible to the optimizer without a
    // matcher; otherwise it may answer any SELECT, and an INSERT maintains
    // it only when the MV is defined over the inserted table (mirrors
    // CostSelect/CostInsert exactly).
    const MVMatcher* matcher = optimizer_->mv_matcher();
    if (matcher == nullptr) return false;
    if (!scope.is_insert) return true;
    return matcher->FactTableOf(idx.object) == scope.tables.front().table;
  }

  const TableScope* ts = nullptr;
  for (const TableScope& t : scope.tables) {
    if (t.table == idx.object) {
      ts = &t;
      break;
    }
  }
  if (ts == nullptr) return false;  // statement never touches the object
  // Every index on the loaded table is maintained by a bulk INSERT.
  if (scope.is_insert) return true;
  // A clustered index replaces the heap, changing the base access path
  // whether or not it is itself chosen.
  if (idx.clustered) return true;
  // Mirror IndexAccessCost's usability gates. A partial index whose filter
  // the statement's predicates do not subsume is unusable (and the
  // index-NL join skips filtered indexes too).
  if (idx.filter.has_value() &&
      !PredicatesSubsumeFilter(ts->preds, *idx.filter)) {
    return false;
  }
  // Index-nested-loops join probe: leading key equals a join's dim key.
  if (!idx.filter.has_value() && !idx.key_columns.empty() &&
      Contains(ts->join_keys, idx.key_columns.front())) {
    return true;
  }
  // Seekable: a predicate on the leading key column (equality-only for
  // BITMAP structures — mirrors IndexAccessCost's sargable-prefix gate).
  if (!idx.key_columns.empty()) {
    const bool bitmap = idx.compression == CompressionKind::kBitmap;
    for (const ColumnFilter& p : ts->preds) {
      if (p.column != idx.key_columns.front()) continue;
      if (bitmap && p.op != FilterOp::kEq) continue;
      return true;
    }
  }
  // Covering: every column the statement uses on this table is stored.
  const std::vector<std::string> stored =
      idx.StoredColumns(db_->table(idx.object).schema());
  return std::all_of(
      ts->cols_used.begin(), ts->cols_used.end(),
      [&stored](const std::string& c) { return Contains(stored, c); });
}

const StatementCostCache::IndexInfo& StatementCostCache::InfoFor(
    const IndexDef& idx) {
  const std::string signature = idx.Signature();
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = index_info_.find(signature);
    // References into the node-based map stay valid across later inserts.
    if (it != index_info_.end()) return it->second;
  }
  IndexInfo info;
  info.relevant.resize(workload_->statements.size());
  for (size_t i = 0; i < workload_->statements.size(); ++i) {
    info.relevant[i] = ComputeRelevant(i, idx) ? 1 : 0;
  }
  std::lock_guard<std::mutex> lock(mu_);
  // First inserter wins the id; a concurrent compute produced the same
  // bitmap, so either copy is fine. Ids are only unique labels within this
  // cache instance — cost values never depend on their numeric order.
  const auto [it, inserted] = index_info_.emplace(signature, std::move(info));
  if (inserted) it->second.id = static_cast<uint32_t>(index_info_.size());
  return it->second;
}

bool StatementCostCache::Relevant(size_t stmt_index, const IndexDef& idx) {
  return InfoFor(idx).relevant[stmt_index] != 0;
}

double StatementCostCache::CostWithInfos(
    size_t stmt_index, const Configuration& config,
    const std::vector<const IndexInfo*>& infos) {
  // The cost of a statement is a function of the *ordered subsequence* of
  // relevant indexes (best-path ties and floating-point sums follow
  // configuration order), so the key preserves that order — never sorts.
  // The statement index itself is the shard, so it never enters the key.
  std::string key;
  key.reserve(4 * infos.size());
  for (const IndexInfo* info : infos) {
    if (info->relevant[stmt_index]) AppendU32(&key, info->id);
  }
  Shard& shard = shards_[stmt_index];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.costs.find(key);
    if (it != shard.costs.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  const double cost =
      optimizer_->Cost(workload_->statements[stmt_index], config);
  misses_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.costs.emplace(std::move(key), cost);
  return cost;
}

double StatementCostCache::Cost(size_t stmt_index,
                                const Configuration& config) {
  std::vector<const IndexInfo*> infos;
  infos.reserve(config.indexes().size());
  for (const PhysicalIndexEstimate& idx : config.indexes()) {
    infos.push_back(&InfoFor(idx.def));
  }
  return CostWithInfos(stmt_index, config, infos);
}

double StatementCostCache::WorkloadCost(const Configuration& config) {
  // Signatures are rendered (and relevance computed) once per call, not
  // once per statement — the dominant key-building cost.
  std::vector<const IndexInfo*> infos;
  infos.reserve(config.indexes().size());
  for (const PhysicalIndexEstimate& idx : config.indexes()) {
    infos.push_back(&InfoFor(idx.def));
  }
  double total = 0.0;
  for (size_t i = 0; i < workload_->statements.size(); ++i) {
    total += workload_->statements[i].weight * CostWithInfos(i, config, infos);
  }
  return total;
}

}  // namespace capd
