// The compression-aware cost model (Appendix A). Costs are in abstract
// optimizer units where one sequential page read = 1. The paper's two
// extensions over the base model:
//   CPUCost_update = BaseCPUCost + alpha * #tuples_written        (A.1)
//   CPUCost_read   = BaseCPUCost + beta * #tuples_read * #columns_read (A.2)
// with alpha/beta per compression package (higher for PAGE than ROW), and
// I/O cost picked up implicitly through the smaller compressed index size.
// Defaults are calibrated against the micro-benchmarks in
// bench/bench_micro_codecs.cc (stand-in for the whitepaper [13]).
#ifndef CAPD_OPTIMIZER_COST_MODEL_H_
#define CAPD_OPTIMIZER_COST_MODEL_H_

#include "compress/compression_kind.h"

namespace capd {

struct CostModelParams {
  // I/O (the paper's testbed is a 10K RPM HDD: I/O dominates).
  double seq_page_io = 1.0;
  double random_page_io = 4.0;

  // Base CPU.
  double cpu_per_tuple_read = 0.003;   // scan/probe one tuple
  double cpu_per_tuple_write = 0.010;  // insert one tuple into one structure

  // Compression CPU per tuple written (alpha, by kind).
  double alpha_row = 0.010;
  double alpha_page = 0.030;
  double alpha_global_dict = 0.020;
  double alpha_rle = 0.012;
  double alpha_bitmap = 0.015;  // per-value bitmap maintenance on insert

  // Decompression CPU per tuple per used column (beta, by kind). SQL Server
  // decompresses only projected/predicated/aggregated columns (A.2).
  double beta_row = 0.0008;
  double beta_page = 0.0025;
  double beta_global_dict = 0.0010;
  double beta_rle = 0.0008;
  double beta_bitmap = 0.0006;  // fill-run decode amortizes below NS

  // Per-probe CPU of a bitmap equality selection: one WAH expansion plus a
  // rank/select lookup per sargable equality predicate. Charged by the
  // what-if seek path for BITMAP structures only.
  double bitmap_probe_cpu = 0.02;

  // Scattered B-tree leaf maintenance on inserts: fraction of touched
  // leaves that miss the buffer pool and cost a random I/O. The paper's
  // Appendix A models update CPU only; this term keeps index maintenance
  // from being free under bulk loads.
  double index_maintenance_io_factor = 0.05;

  double Alpha(CompressionKind kind) const;
  double Beta(CompressionKind kind) const;
};

}  // namespace capd

#endif  // CAPD_OPTIMIZER_COST_MODEL_H_
