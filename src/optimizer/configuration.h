// A hypothetical physical configuration: the set of indexes the what-if
// optimizer costs a statement against, each with its (estimated) size. The
// estimated size matters doubly — it drives I/O cost AND the storage-budget
// accounting in enumeration.
#ifndef CAPD_OPTIMIZER_CONFIGURATION_H_
#define CAPD_OPTIMIZER_CONFIGURATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "index/index_def.h"

namespace capd {

struct PhysicalIndexEstimate {
  IndexDef def;
  double bytes = 0.0;   // estimated total size
  double tuples = 0.0;  // estimated entry count

  double pages() const { return bytes / kPageSize; }
};

class Configuration {
 public:
  Configuration() = default;

  void Add(PhysicalIndexEstimate idx);
  // Removes the index with this signature; returns true if present.
  bool Remove(const std::string& signature);
  bool Contains(const std::string& signature) const;

  const std::vector<PhysicalIndexEstimate>& indexes() const { return indexes_; }
  std::vector<const PhysicalIndexEstimate*> IndexesOn(
      const std::string& object) const;
  // True if some clustered index on `object` is present.
  bool HasClusteredOn(const std::string& object) const;

  double TotalBytes() const;
  size_t size() const { return indexes_.size(); }

  std::string ToString() const;

 private:
  std::vector<PhysicalIndexEstimate> indexes_;
};

}  // namespace capd

#endif  // CAPD_OPTIMIZER_CONFIGURATION_H_
