#include "optimizer/what_if.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/logging.h"

namespace capd {
namespace {

// Numeric [lo, hi] range selected by a filter, given column stats.
void FilterRange(const ColumnFilter& f, const ColumnStats& cs, double* lo,
                 double* hi) {
  switch (f.op) {
    case FilterOp::kEq:
      *lo = *hi = f.lo.NumericKey();
      return;
    case FilterOp::kLt:
    case FilterOp::kLe:
      *lo = cs.min_key;
      *hi = f.lo.NumericKey();
      return;
    case FilterOp::kGt:
    case FilterOp::kGe:
      *lo = f.lo.NumericKey();
      *hi = cs.max_key;
      return;
    case FilterOp::kBetween:
      *lo = f.lo.NumericKey();
      *hi = f.hi.NumericKey();
      return;
  }
}

bool Contains(const std::vector<std::string>& v, const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

}  // namespace

bool PredicatesSubsumeFilter(const std::vector<ColumnFilter>& preds,
                             const ColumnFilter& filter) {
  // A predicate on the same column whose range is inside the filter's range
  // implies the filter. Ranges are compared on the numeric key; unbounded
  // sides are +-infinity.
  auto range_of = [](const ColumnFilter& f, double* lo, double* hi) {
    constexpr double kInf = std::numeric_limits<double>::infinity();
    switch (f.op) {
      case FilterOp::kEq:
        *lo = *hi = f.lo.NumericKey();
        return;
      case FilterOp::kLt:
      case FilterOp::kLe:
        *lo = -kInf;
        *hi = f.lo.NumericKey();
        return;
      case FilterOp::kGt:
      case FilterOp::kGe:
        *lo = f.lo.NumericKey();
        *hi = kInf;
        return;
      case FilterOp::kBetween:
        *lo = f.lo.NumericKey();
        *hi = f.hi.NumericKey();
        return;
    }
  };
  double flo = 0.0, fhi = 0.0;
  range_of(filter, &flo, &fhi);
  for (const ColumnFilter& p : preds) {
    if (p.column != filter.column) continue;
    double plo = 0.0, phi = 0.0;
    range_of(p, &plo, &phi);
    if (plo >= flo && phi <= fhi) return true;
  }
  return false;
}

double WhatIfOptimizer::FilterSelectivity(const std::string& table,
                                          const ColumnFilter& filter) const {
  const ColumnStats& cs = db_->stats(table).column(filter.column);
  if (cs.num_rows == 0) return 0.0;
  if (filter.op == FilterOp::kEq) {
    return 1.0 / static_cast<double>(std::max<uint64_t>(cs.distinct, 1));
  }
  double lo = 0.0, hi = 0.0;
  FilterRange(filter, cs, &lo, &hi);
  return cs.histogram.SelectivityBetween(lo, hi);
}

double WhatIfOptimizer::Selectivity(
    const std::string& table, const std::vector<ColumnFilter>& filters) const {
  double sel = 1.0;
  for (const ColumnFilter& f : filters) sel *= FilterSelectivity(table, f);
  return sel;
}

PlanCost WhatIfOptimizer::HeapScanCost(
    const std::string& table, const std::vector<ColumnFilter>& preds) const {
  (void)preds;  // a heap scan always reads everything
  const Table& t = db_->table(table);
  PlanCost cost;
  cost.io = params_.seq_page_io * static_cast<double>(t.HeapPages());
  cost.cpu = params_.cpu_per_tuple_read * static_cast<double>(t.num_rows());
  cost.access_path = "heap scan(" + table + ")";
  return cost;
}

std::optional<PlanCost> WhatIfOptimizer::IndexAccessCost(
    const SelectQuery& q, const std::string& table,
    const PhysicalIndexEstimate& idx, const std::vector<ColumnFilter>& preds,
    const std::vector<std::string>& cols_used) const {
  (void)q;
  if (idx.def.object != table) return std::nullopt;

  // Partial index: usable only when the query cannot need rows outside it.
  double filter_sel = 1.0;
  if (idx.def.filter.has_value()) {
    if (!PredicatesSubsumeFilter(preds, *idx.def.filter)) return std::nullopt;
    filter_sel = FilterSelectivity(table, *idx.def.filter);
  }

  const Schema& base = db_->table(table).schema();
  const std::vector<std::string> stored = idx.def.StoredColumns(base);
  const bool covering = std::all_of(
      cols_used.begin(), cols_used.end(),
      [&stored](const std::string& c) { return Contains(stored, c); });

  // Selectivity of a predicate *within the index's population*: for the
  // partial-index filter column the filter is already applied, so condition
  // on it; other columns are treated as independent of the filter.
  auto sel_in_index = [&](const ColumnFilter& p) {
    double s = FilterSelectivity(table, p);
    if (idx.def.filter.has_value() && p.column == idx.def.filter->column &&
        filter_sel > 0.0) {
      s = std::min(1.0, s / filter_sel);
    }
    return s;
  };

  // Fraction of index entries reached through the sargable key prefix. A
  // BITMAP structure keys per-value bitmaps, so only equality predicates
  // seek it — range predicates fall through to the covering-scan path.
  const bool bitmap = idx.def.compression == CompressionKind::kBitmap;
  double prefix_frac = 1.0;
  size_t sargable = 0;
  for (const std::string& key_col : idx.def.key_columns) {
    bool found = false;
    for (const ColumnFilter& p : preds) {
      if (p.column != key_col) continue;
      if (bitmap && p.op != FilterOp::kEq) continue;
      prefix_frac *= sel_in_index(p);
      found = true;
      break;
    }
    if (!found) break;
    ++sargable;
  }
  const bool seekable = sargable > 0;
  if (!seekable && !covering) return std::nullopt;

  // Fraction of index entries satisfying every predicate resolvable inside
  // the index (these survive to the RID-lookup stage).
  double stored_frac = 1.0;
  for (const ColumnFilter& p : preds) {
    if (Contains(stored, p.column)) stored_frac *= sel_in_index(p);
  }

  const double tuples = std::max(idx.tuples, 1.0);
  const double pages = std::max(idx.pages(), 1.0);
  const size_t used_in_index =
      static_cast<size_t>(std::count_if(cols_used.begin(), cols_used.end(),
                                        [&stored](const std::string& c) {
                                          return Contains(stored, c);
                                        }));
  const double beta = params_.Beta(idx.def.compression);

  PlanCost best;
  best.io = std::numeric_limits<double>::infinity();

  if (covering) {
    PlanCost scan;
    scan.io = params_.seq_page_io * pages;
    scan.cpu = tuples * (params_.cpu_per_tuple_read +
                         static_cast<double>(used_in_index) * beta);
    scan.access_path = "index scan(" + idx.def.ToString() + ")";
    if (scan.total() < best.total()) best = scan;
  }

  if (seekable) {
    const double entries = tuples * prefix_frac;
    PlanCost seek;
    seek.io = params_.random_page_io * 2.0 +
              params_.seq_page_io * std::max(1.0, pages * prefix_frac);
    seek.cpu = entries * (params_.cpu_per_tuple_read +
                          static_cast<double>(used_in_index) * beta);
    if (bitmap) {
      // One WAH expansion + rank/select AND per sargable equality key.
      seek.cpu += params_.bitmap_probe_cpu * static_cast<double>(sargable);
    }
    if (!covering) {
      const double lookups = tuples * std::min(1.0, stored_frac);
      seek.io += params_.random_page_io * lookups;
      seek.cpu += params_.cpu_per_tuple_read * lookups;
      seek.access_path = "index seek+lookup(" + idx.def.ToString() + ")";
    } else {
      seek.access_path = "index seek(" + idx.def.ToString() + ")";
    }
    if (seek.total() < best.total()) best = seek;
  }

  if (best.io == std::numeric_limits<double>::infinity()) return std::nullopt;
  return best;
}

PlanCost WhatIfOptimizer::BestTableAccess(const SelectQuery& q,
                                          const std::string& table,
                                          const Configuration& config) const {
  const std::vector<ColumnFilter> preds = q.PredicatesOn(table, *db_);
  const std::vector<std::string> cols_used = q.ColumnsUsedOn(table, *db_);

  PlanCost best;
  bool have = false;
  // The heap exists unless a clustered index replaced it.
  if (!config.HasClusteredOn(table)) {
    best = HeapScanCost(table, preds);
    have = true;
  }
  for (const PhysicalIndexEstimate* idx : config.IndexesOn(table)) {
    std::optional<PlanCost> c = IndexAccessCost(q, table, *idx, preds, cols_used);
    if (c.has_value() && (!have || c->total() < best.total())) {
      best = *c;
      have = true;
    }
  }
  CAPD_CHECK(have) << "no access path for table " << table
                   << " (clustered index removed the heap but is unusable?)";
  return best;
}

PlanCost WhatIfOptimizer::CostSelect(const SelectQuery& q,
                                     const Configuration& config) const {
  // Base relational plan: root access + one join at a time.
  PlanCost plan = BestTableAccess(q, q.table, config);
  const double root_sel = Selectivity(q.table, q.PredicatesOn(q.table, *db_));
  const double root_rows =
      static_cast<double>(db_->table(q.table).num_rows()) * root_sel;

  for (const JoinClause& j : q.joins) {
    const PlanCost dim_scan = BestTableAccess(q, j.dim_table, config);
    const double dim_rows = static_cast<double>(db_->table(j.dim_table).num_rows());
    // Hash join: build on the dimension side, probe with root rows.
    PlanCost hash = dim_scan;
    hash.cpu += params_.cpu_per_tuple_read * (dim_rows + root_rows);

    // Index nested loops: per-row seek into a dimension index keyed on the
    // join key, if the configuration has one.
    PlanCost nl;
    nl.io = std::numeric_limits<double>::infinity();
    for (const PhysicalIndexEstimate* idx : config.IndexesOn(j.dim_table)) {
      if (idx->def.key_columns.empty() || idx->def.key_columns[0] != j.dim_key)
        continue;
      if (idx->def.filter.has_value()) continue;
      PlanCost c;
      c.io = root_rows * params_.random_page_io;
      const double beta = params_.Beta(idx->def.compression);
      const std::vector<std::string> dim_cols = q.ColumnsUsedOn(j.dim_table, *db_);
      c.cpu = root_rows * (params_.cpu_per_tuple_read +
                           static_cast<double>(dim_cols.size()) * beta);
      c.access_path = "index NL(" + idx->def.ToString() + ")";
      if (c.total() < nl.total()) nl = c;
    }

    const PlanCost& join = nl.total() < hash.total() ? nl : hash;
    plan.io += join.io;
    plan.cpu += join.cpu;
  }

  // Grouping/aggregation/output CPU.
  if (!q.group_by.empty() || !q.aggregates.empty()) {
    plan.cpu += params_.cpu_per_tuple_read * root_rows;
  }

  // Alternative: answer the whole query from an MV index.
  if (mv_matcher_ != nullptr) {
    for (const PhysicalIndexEstimate& idx : config.indexes()) {
      std::optional<MVMatcher::MVAccess> access = mv_matcher_->Match(idx.def, q);
      if (!access.has_value()) continue;
      PlanCost mv_plan;
      const double mv_pages = std::max(idx.pages(), 1.0);
      const double frac = access->selected_frac;
      if (access->leading_key_seek && frac < 1.0) {
        mv_plan.io = params_.random_page_io * 2.0 +
                     params_.seq_page_io * std::max(1.0, mv_pages * frac);
      } else {
        mv_plan.io = params_.seq_page_io * mv_pages;
      }
      const double beta = params_.Beta(idx.def.compression);
      mv_plan.cpu = access->mv_tuples * frac *
                    (params_.cpu_per_tuple_read +
                     static_cast<double>(access->used_columns) * beta);
      mv_plan.access_path = "MV " + idx.def.ToString();
      if (mv_plan.total() < plan.total()) plan = mv_plan;
    }
  }
  return plan;
}

PlanCost WhatIfOptimizer::CostInsert(const InsertStatement& ins,
                                     const Configuration& config) const {
  const Table& t = db_->table(ins.table);
  const double rows = static_cast<double>(ins.num_rows);
  PlanCost plan;
  plan.access_path = "bulk insert(" + ins.table + ")";

  // Heap (or clustered index) append.
  const double heap_row_bytes = t.schema().RowWidth() + kRowOverhead;
  plan.io = params_.seq_page_io * rows * heap_row_bytes / kPageCapacity;
  plan.cpu = params_.cpu_per_tuple_write * rows;

  for (const PhysicalIndexEstimate& idx : config.indexes()) {
    if (idx.def.object != ins.table) {
      // Indexes on MVs over this fact table must be maintained too: each
      // inserted row updates one group (count/sums) in the MV.
      if (mv_matcher_ != nullptr &&
          mv_matcher_->FactTableOf(idx.def.object) == ins.table) {
        const double alpha = params_.Alpha(idx.def.compression);
        plan.cpu += rows * (params_.cpu_per_tuple_write + alpha);
        const double pages = std::max(idx.pages(), 1.0);
        const double touched = pages * (1.0 - std::exp(-rows / pages));
        plan.io += params_.random_page_io * touched * params_.index_maintenance_io_factor;
      }
      continue;
    }
    double enter_frac = 1.0;
    if (idx.def.filter.has_value()) {
      enter_frac = FilterSelectivity(ins.table, *idx.def.filter);
    }
    const double rows_idx = rows * enter_frac;
    const double alpha = params_.Alpha(idx.def.compression);
    // CPUCost_update = BaseCPUCost + alpha * #tuples_written (Appendix A.1).
    plan.cpu += rows_idx * (params_.cpu_per_tuple_write + alpha);
    // Sequential write volume of the new entries...
    const double bytes_per_tuple = idx.bytes / std::max(idx.tuples, 1.0);
    plan.io += params_.seq_page_io * rows_idx * bytes_per_tuple / kPageCapacity;
    // ...plus scattered B-tree leaf maintenance, damped by buffer-pool hits.
    const double pages = std::max(idx.pages(), 1.0);
    const double touched = pages * (1.0 - std::exp(-rows_idx / pages));
    plan.io += params_.random_page_io * touched * params_.index_maintenance_io_factor;
  }
  return plan;
}

PlanCost WhatIfOptimizer::CostWithPlan(const Statement& stmt,
                                       const Configuration& config) const {
  switch (stmt.type) {
    case StatementType::kSelect:
      return CostSelect(stmt.select, config);
    case StatementType::kInsert:
      return CostInsert(stmt.insert, config);
  }
  return PlanCost{};
}

double WhatIfOptimizer::Cost(const Statement& stmt,
                             const Configuration& config) const {
  return CostWithPlan(stmt, config).total();
}

double WhatIfOptimizer::WorkloadCost(const Workload& workload,
                                     const Configuration& config) const {
  double total = 0.0;
  for (const Statement& s : workload.statements) {
    total += s.weight * Cost(s, config);
  }
  return total;
}

}  // namespace capd
