// Workload representation: a SELECT statement is a star query over a root
// (fact) table with optional FK joins, conjunctive filters, projections and
// grouping — the query class DTA's candidate generation reasons about. An
// INSERT statement is a bulk load of N rows into a table (the paper's
// "bulk load statements" whose weight makes a workload INSERT intensive).
#ifndef CAPD_QUERY_QUERY_H_
#define CAPD_QUERY_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "index/index_def.h"

namespace capd {

// FK join from the root table to a dimension table.
struct JoinClause {
  std::string dim_table;
  std::string fk_column;  // column of the root table
  std::string dim_key;    // PK column of the dimension table
};

struct AggExpr {
  std::string column;  // aggregated input column (SUM/AVG/MIN/MAX over it)
  std::string func = "SUM";
};

struct SelectQuery {
  std::string table;  // root table
  std::vector<JoinClause> joins;
  std::vector<ColumnFilter> predicates;  // conjunctive; any joined column
  std::vector<std::string> projected;    // plain output columns
  std::vector<AggExpr> aggregates;
  std::vector<std::string> group_by;
  std::vector<std::string> order_by;

  // All columns the query touches on table `t` (given the join metadata):
  // predicates + projections + aggregates + group/order keys + join keys.
  std::vector<std::string> ColumnsUsedOn(const std::string& t,
                                         const class Database& db) const;

  // Predicates whose column belongs to table `t`.
  std::vector<ColumnFilter> PredicatesOn(const std::string& t,
                                         const class Database& db) const;

  std::string ToString() const;
};

struct InsertStatement {
  std::string table;
  uint64_t num_rows = 0;
};

enum class StatementType { kSelect, kInsert };

struct Statement {
  StatementType type = StatementType::kSelect;
  std::string id;      // e.g. "Q5", "BULK_LINEITEM"
  double weight = 1.0;  // execution frequency in the workload
  SelectQuery select;
  InsertStatement insert;

  static Statement Select(std::string id, SelectQuery q, double weight = 1.0);
  static Statement Insert(std::string id, InsertStatement ins,
                          double weight = 1.0);
};

struct Workload {
  std::vector<Statement> statements;

  // Multiplies the weight of every INSERT by `factor` (used to derive the
  // SELECT-intensive vs INSERT-intensive variants of Section 7).
  Workload WithInsertWeight(double factor) const;
};

}  // namespace capd

#endif  // CAPD_QUERY_QUERY_H_
