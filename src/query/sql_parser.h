// A small SQL-subset parser so the examples can express workloads as text.
// Grammar (case-insensitive keywords):
//   SELECT item {, item} FROM ident {JOIN ident ON ident = ident}
//     [WHERE cond {AND cond}] [GROUP BY ident {, ident}]
//     [ORDER BY ident {, ident}]
//   item  := ident | (SUM|AVG|MIN|MAX|COUNT) '(' ident ')'
//   cond  := ident (= | < | <= | > | >=) literal
//          | ident BETWEEN literal AND literal
//   INSERT INTO ident VALUES <n> ROWS
// Literals: integers, doubles, 'strings', DATE 'YYYY-MM-DD'.
#ifndef CAPD_QUERY_SQL_PARSER_H_
#define CAPD_QUERY_SQL_PARSER_H_

#include <optional>
#include <string>

#include "catalog/database.h"
#include "query/query.h"

namespace capd {

// Parses one statement. Returns std::nullopt and fills *error on failure.
// `db` resolves column types for literals and join directions.
std::optional<Statement> ParseSql(const std::string& sql, const Database& db,
                                  std::string* error);

// Converts 'YYYY-MM-DD' to days since 1970-01-01 (proleptic Gregorian).
int64_t ParseDateLiteral(const std::string& ymd);
std::string FormatDate(int64_t days);

}  // namespace capd

#endif  // CAPD_QUERY_SQL_PARSER_H_
