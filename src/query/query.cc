#include "query/query.h"

#include <algorithm>
#include <sstream>

#include "catalog/database.h"
#include "common/logging.h"

namespace capd {
namespace {

// Which joined table owns column `col`? Root table wins ties (names are
// globally unique in our generators, so ties do not occur in practice).
std::string OwnerTable(const std::string& col, const SelectQuery& q,
                       const Database& db) {
  if (db.table(q.table).schema().HasColumn(col)) return q.table;
  for (const JoinClause& j : q.joins) {
    if (db.table(j.dim_table).schema().HasColumn(col)) return j.dim_table;
  }
  CAPD_CHECK(false) << "column " << col << " not found in query tables";
  return "";
}

void AddUnique(std::vector<std::string>* v, const std::string& s) {
  if (std::find(v->begin(), v->end(), s) == v->end()) v->push_back(s);
}

}  // namespace

std::vector<std::string> SelectQuery::ColumnsUsedOn(const std::string& t,
                                                    const Database& db) const {
  std::vector<std::string> cols;
  auto consider = [&](const std::string& c) {
    if (OwnerTable(c, *this, db) == t) AddUnique(&cols, c);
  };
  for (const ColumnFilter& p : predicates) consider(p.column);
  for (const std::string& c : projected) consider(c);
  for (const AggExpr& a : aggregates) consider(a.column);
  for (const std::string& c : group_by) consider(c);
  for (const std::string& c : order_by) consider(c);
  for (const JoinClause& j : joins) {
    if (t == table) AddUnique(&cols, j.fk_column);
    if (t == j.dim_table) AddUnique(&cols, j.dim_key);
  }
  return cols;
}

std::vector<ColumnFilter> SelectQuery::PredicatesOn(const std::string& t,
                                                    const Database& db) const {
  std::vector<ColumnFilter> out;
  for (const ColumnFilter& p : predicates) {
    if (OwnerTable(p.column, *this, db) == t) out.push_back(p);
  }
  return out;
}

std::string SelectQuery::ToString() const {
  std::ostringstream os;
  os << "SELECT ";
  for (size_t i = 0; i < projected.size(); ++i) {
    if (i > 0) os << ",";
    os << projected[i];
  }
  for (size_t i = 0; i < aggregates.size(); ++i) {
    if (i > 0 || !projected.empty()) os << ",";
    os << aggregates[i].func << "(" << aggregates[i].column << ")";
  }
  os << " FROM " << table;
  for (const JoinClause& j : joins) {
    os << " JOIN " << j.dim_table << " ON " << j.fk_column << "=" << j.dim_key;
  }
  if (!predicates.empty()) {
    os << " WHERE ";
    for (size_t i = 0; i < predicates.size(); ++i) {
      if (i > 0) os << " AND ";
      os << predicates[i].ToString();
    }
  }
  if (!group_by.empty()) {
    os << " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) os << ",";
      os << group_by[i];
    }
  }
  return os.str();
}

Statement Statement::Select(std::string id, SelectQuery q, double weight) {
  Statement s;
  s.type = StatementType::kSelect;
  s.id = std::move(id);
  s.select = std::move(q);
  s.weight = weight;
  return s;
}

Statement Statement::Insert(std::string id, InsertStatement ins, double weight) {
  Statement s;
  s.type = StatementType::kInsert;
  s.id = std::move(id);
  s.insert = std::move(ins);
  s.weight = weight;
  return s;
}

Workload Workload::WithInsertWeight(double factor) const {
  Workload out = *this;
  for (Statement& s : out.statements) {
    if (s.type == StatementType::kInsert) s.weight *= factor;
  }
  return out;
}

}  // namespace capd
