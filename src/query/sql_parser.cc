#include "query/sql_parser.h"

#include <cctype>
#include <cstdlib>
#include <vector>

#include "common/logging.h"

namespace capd {
namespace {

struct Token {
  enum Kind { kIdent, kNumber, kString, kPunct, kEnd } kind = kEnd;
  std::string text;  // identifiers upper-cased keywords preserved as written
};

class Lexer {
 public:
  explicit Lexer(const std::string& sql) : sql_(sql) {}

  Token Next() {
    while (pos_ < sql_.size() && std::isspace(static_cast<unsigned char>(sql_[pos_]))) {
      ++pos_;
    }
    Token t;
    if (pos_ >= sql_.size()) return t;
    const char c = sql_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      t.kind = Token::kIdent;
      while (pos_ < sql_.size() &&
             (std::isalnum(static_cast<unsigned char>(sql_[pos_])) ||
              sql_[pos_] == '_')) {
        t.text.push_back(sql_[pos_++]);
      }
      return t;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && pos_ + 1 < sql_.size() &&
         std::isdigit(static_cast<unsigned char>(sql_[pos_ + 1])))) {
      t.kind = Token::kNumber;
      t.text.push_back(sql_[pos_++]);
      while (pos_ < sql_.size() &&
             (std::isdigit(static_cast<unsigned char>(sql_[pos_])) ||
              sql_[pos_] == '.')) {
        t.text.push_back(sql_[pos_++]);
      }
      return t;
    }
    if (c == '\'') {
      t.kind = Token::kString;
      ++pos_;
      while (pos_ < sql_.size() && sql_[pos_] != '\'') t.text.push_back(sql_[pos_++]);
      if (pos_ < sql_.size()) ++pos_;  // closing quote
      return t;
    }
    t.kind = Token::kPunct;
    t.text.push_back(sql_[pos_++]);
    // two-char operators
    if ((t.text == "<" || t.text == ">") && pos_ < sql_.size() &&
        sql_[pos_] == '=') {
      t.text.push_back(sql_[pos_++]);
    }
    return t;
  }

 private:
  const std::string& sql_;
  size_t pos_ = 0;
};

std::string Upper(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

class Parser {
 public:
  Parser(const std::string& sql, const Database& db) : lexer_(sql), db_(&db) {
    Advance();
  }

  std::optional<Statement> Parse(std::string* error) {
    const std::string kw = Upper(cur_.text);
    std::optional<Statement> result;
    if (kw == "SELECT") {
      result = ParseSelect();
    } else if (kw == "INSERT") {
      result = ParseInsert();
    } else {
      error_ = "expected SELECT or INSERT";
    }
    if (!error_.empty()) {
      *error = error_;
      return std::nullopt;
    }
    return result;
  }

 private:
  void Advance() { cur_ = lexer_.Next(); }

  bool AcceptKeyword(const std::string& kw) {
    if (cur_.kind == Token::kIdent && Upper(cur_.text) == kw) {
      Advance();
      return true;
    }
    return false;
  }

  bool ExpectKeyword(const std::string& kw) {
    if (AcceptKeyword(kw)) return true;
    error_ = "expected " + kw + " near '" + cur_.text + "'";
    return false;
  }

  bool ExpectPunct(const std::string& p) {
    if (cur_.kind == Token::kPunct && cur_.text == p) {
      Advance();
      return true;
    }
    error_ = "expected '" + p + "' near '" + cur_.text + "'";
    return false;
  }

  std::string ExpectIdent() {
    if (cur_.kind == Token::kIdent) {
      std::string s = cur_.text;
      Advance();
      return s;
    }
    error_ = "expected identifier near '" + cur_.text + "'";
    return "";
  }

  // Resolves the type of `column` across the query's tables.
  ValueType ColumnType(const SelectQuery& q, const std::string& column) {
    if (db_->table(q.table).schema().HasColumn(column)) {
      const Schema& s = db_->table(q.table).schema();
      return s.column(s.ColumnIndex(column)).type;
    }
    for (const JoinClause& j : q.joins) {
      const Schema& s = db_->table(j.dim_table).schema();
      if (s.HasColumn(column)) return s.column(s.ColumnIndex(column)).type;
    }
    error_ = "unknown column " + column;
    return ValueType::kInt64;
  }

  Value ParseLiteral(ValueType type) {
    if (AcceptKeyword("DATE")) {
      if (cur_.kind != Token::kString) {
        error_ = "expected date string";
        return Value();
      }
      const int64_t days = ParseDateLiteral(cur_.text);
      Advance();
      return Value::Date(days);
    }
    if (cur_.kind == Token::kNumber) {
      const std::string text = cur_.text;
      Advance();
      switch (type) {
        case ValueType::kDouble:
          return Value::Double(std::strtod(text.c_str(), nullptr));
        case ValueType::kDate:
          return Value::Date(std::strtoll(text.c_str(), nullptr, 10));
        default:
          return Value::Int64(std::strtoll(text.c_str(), nullptr, 10));
      }
    }
    if (cur_.kind == Token::kString) {
      std::string text = cur_.text;
      Advance();
      if (type == ValueType::kDate) return Value::Date(ParseDateLiteral(text));
      return Value::String(std::move(text));
    }
    error_ = "expected literal near '" + cur_.text + "'";
    return Value();
  }

  std::optional<Statement> ParseSelect() {
    ExpectKeyword("SELECT");
    SelectQuery q;
    // Projections / aggregates. Table not yet known, so buffer the items.
    struct Item {
      std::string func;  // empty for plain columns
      std::string column;
    };
    std::vector<Item> items;
    while (error_.empty()) {
      std::string first = ExpectIdent();
      if (!error_.empty()) break;
      const std::string up = Upper(first);
      if ((up == "SUM" || up == "AVG" || up == "MIN" || up == "MAX" ||
           up == "COUNT") &&
          cur_.kind == Token::kPunct && cur_.text == "(") {
        Advance();
        std::string col = cur_.kind == Token::kPunct && cur_.text == "*"
                              ? (Advance(), std::string("*"))
                              : ExpectIdent();
        if (!ExpectPunct(")")) break;
        items.push_back({up, std::move(col)});
      } else {
        items.push_back({"", std::move(first)});
      }
      if (cur_.kind == Token::kPunct && cur_.text == ",") {
        Advance();
        continue;
      }
      break;
    }
    if (!ExpectKeyword("FROM")) return std::nullopt;
    q.table = ExpectIdent();
    while (error_.empty() && AcceptKeyword("JOIN")) {
      JoinClause j;
      j.dim_table = ExpectIdent();
      if (!ExpectKeyword("ON")) return std::nullopt;
      std::string a = ExpectIdent();
      if (!ExpectPunct("=")) return std::nullopt;
      std::string b = ExpectIdent();
      // Figure out which side is the root's FK column.
      if (db_->table(q.table).schema().HasColumn(a)) {
        j.fk_column = a;
        j.dim_key = b;
      } else {
        j.fk_column = b;
        j.dim_key = a;
      }
      q.joins.push_back(std::move(j));
    }
    if (error_.empty() && AcceptKeyword("WHERE")) {
      do {
        ColumnFilter p;
        p.column = ExpectIdent();
        if (!error_.empty()) break;
        const ValueType type = ColumnType(q, p.column);
        if (!error_.empty()) break;
        if (AcceptKeyword("BETWEEN")) {
          p.op = FilterOp::kBetween;
          p.lo = ParseLiteral(type);
          if (!ExpectKeyword("AND")) break;
          p.hi = ParseLiteral(type);
        } else if (cur_.kind == Token::kPunct) {
          const std::string op = cur_.text;
          Advance();
          if (op == "=") {
            p.op = FilterOp::kEq;
          } else if (op == "<") {
            p.op = FilterOp::kLt;
          } else if (op == "<=") {
            p.op = FilterOp::kLe;
          } else if (op == ">") {
            p.op = FilterOp::kGt;
          } else if (op == ">=") {
            p.op = FilterOp::kGe;
          } else {
            error_ = "unknown operator " + op;
            break;
          }
          p.lo = ParseLiteral(type);
        } else {
          error_ = "expected operator near '" + cur_.text + "'";
          break;
        }
        q.predicates.push_back(std::move(p));
      } while (error_.empty() && AcceptKeyword("AND"));
    }
    if (error_.empty() && AcceptKeyword("GROUP")) {
      if (!ExpectKeyword("BY")) return std::nullopt;
      do {
        q.group_by.push_back(ExpectIdent());
      } while (error_.empty() && cur_.kind == Token::kPunct &&
               cur_.text == "," && (Advance(), true));
    }
    if (error_.empty() && AcceptKeyword("ORDER")) {
      if (!ExpectKeyword("BY")) return std::nullopt;
      do {
        q.order_by.push_back(ExpectIdent());
      } while (error_.empty() && cur_.kind == Token::kPunct &&
               cur_.text == "," && (Advance(), true));
    }
    if (!error_.empty()) return std::nullopt;
    for (Item& item : items) {
      if (item.func.empty()) {
        q.projected.push_back(std::move(item.column));
      } else if (item.column != "*") {
        q.aggregates.push_back(AggExpr{std::move(item.column), item.func});
      }
    }
    return Statement::Select("", std::move(q));
  }

  std::optional<Statement> ParseInsert() {
    ExpectKeyword("INSERT");
    if (!ExpectKeyword("INTO")) return std::nullopt;
    InsertStatement ins;
    ins.table = ExpectIdent();
    if (!ExpectKeyword("VALUES")) return std::nullopt;
    if (cur_.kind != Token::kNumber) {
      error_ = "expected row count";
      return std::nullopt;
    }
    ins.num_rows = std::strtoull(cur_.text.c_str(), nullptr, 10);
    Advance();
    if (!ExpectKeyword("ROWS")) return std::nullopt;
    return Statement::Insert("", std::move(ins));
  }

  Lexer lexer_;
  const Database* db_;
  Token cur_;
  std::string error_;
};

}  // namespace

std::optional<Statement> ParseSql(const std::string& sql, const Database& db,
                                  std::string* error) {
  Parser parser(sql, db);
  return parser.Parse(error);
}

int64_t ParseDateLiteral(const std::string& ymd) {
  CAPD_CHECK_EQ(ymd.size(), 10u) << "date literal must be YYYY-MM-DD: " << ymd;
  const int64_t y = std::strtoll(ymd.substr(0, 4).c_str(), nullptr, 10);
  const int64_t m = std::strtoll(ymd.substr(5, 2).c_str(), nullptr, 10);
  const int64_t d = std::strtoll(ymd.substr(8, 2).c_str(), nullptr, 10);
  // Days from civil (Howard Hinnant's algorithm).
  const int64_t yy = y - (m <= 2 ? 1 : 0);
  const int64_t era = (yy >= 0 ? yy : yy - 399) / 400;
  const int64_t yoe = yy - era * 400;
  const int64_t doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const int64_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + doe - 719468;
}

std::string FormatDate(int64_t days) {
  int64_t z = days + 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const int64_t doe = z - era * 146097;
  const int64_t yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t yy = yoe + era * 400;
  const int64_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const int64_t mp = (5 * doy + 2) / 153;
  const int64_t d = doy - (153 * mp + 2) / 5 + 1;
  const int64_t m = mp + (mp < 10 ? 3 : -9);
  const int64_t y = yy + (m <= 2 ? 1 : 0);
  // Worst-case width of three full int64 fields plus separators.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%04lld-%02lld-%02lld",
                static_cast<long long>(y), static_cast<long long>(m),
                static_cast<long long>(d));
  return buf;
}

}  // namespace capd
