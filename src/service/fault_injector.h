// Deterministic fault injection for the TuningService. The injector is
// STATELESS: the decision for a given (request id, attempt, phase) is a
// pure hash of those coordinates and the seed, so the fault schedule is
// independent of thread interleaving, queue order, and wall time — the
// property that makes a fault-injected service run byte-reproducible
// (same seed -> same faults -> same response stream).
//
// Faults fire at advisor phase boundaries (AdvisorOptions::fault_hook):
//   kTransient      — throw TransientTuningError; the engine reports a
//                     retryable kError and the service retries with backoff.
//   kForcedTimeout  — fire the attempt's cancellation flag attributed as a
//                     deadline: the run winds down with its best-so-far
//                     design and the service resolves kDeadlineExceeded.
//   kSpuriousCancel — fire the flag attributed as noise: the run winds
//                     down, and the service retries on a fresh token.
#ifndef CAPD_SERVICE_FAULT_INJECTOR_H_
#define CAPD_SERVICE_FAULT_INJECTOR_H_

#include <cstdint>
#include <string>

namespace capd {

enum class FaultKind { kNone, kTransient, kForcedTimeout, kSpuriousCancel };

const char* FaultKindName(FaultKind kind);

struct FaultInjectorOptions {
  uint64_t seed = 0;
  // Per-phase-boundary probabilities, evaluated in this order from one
  // uniform draw (so they partition [0, 1) and at most one fault fires per
  // boundary). All zero (the default) disables injection entirely.
  double transient_rate = 0.0;
  double forced_timeout_rate = 0.0;
  double spurious_cancel_rate = 0.0;

  bool enabled() const {
    return transient_rate > 0.0 || forced_timeout_rate > 0.0 ||
           spurious_cancel_rate > 0.0;
  }
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultInjectorOptions options) : options_(options) {}

  // The fault (if any) for this phase boundary of this attempt. Pure:
  // identical arguments always yield the identical decision, and distinct
  // attempts of one request draw independently (so retries are not doomed
  // to repeat their predecessor's fault).
  FaultKind Decide(uint64_t request_id, int attempt,
                   const std::string& phase) const;

  const FaultInjectorOptions& options() const { return options_; }

 private:
  FaultInjectorOptions options_;
};

}  // namespace capd

#endif  // CAPD_SERVICE_FAULT_INJECTOR_H_
