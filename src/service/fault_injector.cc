#include "service/fault_injector.h"

namespace capd {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kTransient:
      return "transient";
    case FaultKind::kForcedTimeout:
      return "forced-timeout";
    case FaultKind::kSpuriousCancel:
      return "spurious-cancel";
  }
  return "unknown";
}

namespace {

// SplitMix64 finalizer: a fixed, platform-independent bit mixer, so the
// fault schedule is stable across standard libraries and architectures
// (std::hash would not be).
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashString(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

FaultKind FaultInjector::Decide(uint64_t request_id, int attempt,
                                const std::string& phase) const {
  if (!options_.enabled()) return FaultKind::kNone;
  uint64_t h = Mix(options_.seed);
  h = Mix(h ^ request_id);
  h = Mix(h ^ static_cast<uint64_t>(attempt));
  h = Mix(h ^ HashString(phase));
  // Top 53 bits -> uniform double in [0, 1).
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  double threshold = options_.transient_rate;
  if (u < threshold) return FaultKind::kTransient;
  threshold += options_.forced_timeout_rate;
  if (u < threshold) return FaultKind::kForcedTimeout;
  threshold += options_.spurious_cancel_rate;
  if (u < threshold) return FaultKind::kSpuriousCancel;
  return FaultKind::kNone;
}

}  // namespace capd
