// TuningService: a fault-tolerant front-end on one AdvisorEngine — the
// layer that turns the engine's "one call, one answer" contract into a
// long-lived service that hundreds of clients can hammer without taking
// the advisor down.
//
//   AdvisorEngine engine(db);
//   TuningService service(&engine, ServiceOptions{});
//   ServiceRequest req;
//   req.tuning.workload = workload;
//   req.priority = 5;
//   req.timeout_ms = 2000;
//   ServiceResponse resp = service.Tune(req);   // blocking
//   // or: auto ticket = service.Submit(req);  ...  ticket->Wait();
//
// What it adds over calling AdvisorEngine::Tune directly:
//   Admission control — a bounded priority queue; submissions beyond
//     max_queue are rejected immediately with kOverloaded instead of
//     piling up unboundedly.
//   Deadlines — per-request timeout_ms enforced by a watchdog thread that
//     fires the attempt's CancellationToken, so an expired run winds down
//     cooperatively and still returns its best-so-far design, flagged
//     kDeadlineExceeded. The deadline covers queue wait + every attempt.
//   Priorities — higher priority dequeues first; ties in submission order.
//   Graceful degradation — while the queue sits above the high watermark
//     (sticky until it drains below the low watermark), incoming work is
//     downgraded to a cheaper strategy (default "staged:page") at an
//     optionally reduced budget; the response records the downgrade.
//   Retries — retryable failures (TransientTuningError, spurious cancels)
//     are retried on a fresh cancellation token with capped exponential
//     backoff, bounded by the remaining deadline.
//   Fault injection — a seed-driven deterministic FaultInjector for tests
//     and load benches: same seed, same faults, same response bytes.
//
// Every submitted request resolves with a definite status — accepted or
// rejected, and if accepted then exactly one of kOk / kCancelled /
// kDeadlineExceeded / kError, even through service shutdown.
#ifndef CAPD_SERVICE_TUNING_SERVICE_H_
#define CAPD_SERVICE_TUNING_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "engine/advisor_engine.h"
#include "service/fault_injector.h"

namespace capd {

struct ServiceOptions {
  // Worker threads executing tuning runs. The engine's determinism
  // contract makes concurrent Tune calls safe and bit-identical.
  int num_workers = 2;
  // Bounded queue: submissions arriving when `queued >= max_queue` are
  // rejected with kOverloaded (admission control).
  int max_queue = 64;

  // Degradation watermarks on the queued-request count. Crossing
  // high_watermark turns degraded mode on; draining to low_watermark turns
  // it off (sticky in between, so the mode does not flap). Degraded mode
  // is decided per request at dequeue time. high_watermark <= 0 disables
  // degradation.
  int high_watermark = 48;
  int low_watermark = 16;
  // The cheaper plan a degraded request runs: strategy override plus a
  // budget scale (1.0 = keep the requested budget). The response records
  // what actually ran.
  std::string degraded_strategy = "staged:page";
  double degraded_budget_scale = 1.0;

  // Retry policy for retryable failures. Backoff for attempt k (1-based)
  // is min(backoff_base_ms * 2^(k-1), backoff_cap_ms), additionally capped
  // by the request's remaining deadline.
  int max_attempts = 3;
  double backoff_base_ms = 5.0;
  double backoff_cap_ms = 80.0;

  // Deterministic fault injection (off by default; see fault_injector.h).
  FaultInjectorOptions faults;
};

struct ServiceRequest {
  // The underlying engine request. Its `cancel` token stays live: the
  // client may keep a copy and RequestCancel() at any time, queued or
  // running, and the service resolves the request kCancelled.
  TuningRequest tuning;
  // Higher dequeues first; ties resolve in submission order.
  int priority = 0;
  // Wall-clock deadline in milliseconds from submission, covering queue
  // wait and every attempt. 0 = no deadline.
  double timeout_ms = 0.0;
};

enum class ServiceStatus {
  kOk,
  kCancelled,         // the client's own token fired
  kDeadlineExceeded,  // deadline (or injected forced timeout); best-so-far
  kOverloaded,        // rejected at admission, never ran
  kError,             // terminal failure (or retries exhausted)
};

const char* ServiceStatusName(ServiceStatus status);

struct ServiceResponse {
  ServiceStatus status = ServiceStatus::kError;
  // The last attempt's engine response. Empty for kOverloaded and for
  // requests resolved before any attempt ran (e.g. cancelled in queue);
  // holds the best-so-far design for kDeadlineExceeded / kCancelled runs
  // that got far enough to have one.
  TuningResponse tuning;
  std::string error;  // set for kError and never-ran resolutions

  uint64_t request_id = 0;       // submission order, 1-based
  int attempts = 0;              // tuning attempts actually started
  bool degraded = false;         // ran the cheaper degraded plan
  std::string executed_strategy; // what actually ran (after degradation)

  // Informational wall times (never part of any determinism contract).
  double queue_ms = 0.0;
  double run_ms = 0.0;

  bool ok() const { return status == ServiceStatus::kOk; }
};

// Monotonic counters, readable while the service runs.
struct ServiceStats {
  uint64_t submitted = 0;
  uint64_t accepted = 0;
  uint64_t rejected = 0;   // kOverloaded at admission
  uint64_t completed = 0;  // resolved after acceptance, any status
  uint64_t ok = 0;
  uint64_t cancelled = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t errors = 0;
  uint64_t degraded = 0;
  uint64_t retries = 0;          // attempts beyond the first
  uint64_t faults_injected = 0;  // fault-hook firings that did something
};

class TuningService {
 public:
  // A pending submission. Wait() blocks until the request resolves;
  // rejected submissions are resolved before Submit returns.
  class Ticket {
   public:
    const ServiceResponse& Wait();
    bool done() const;

   private:
    friend class TuningService;
    mutable std::mutex mu_;
    std::condition_variable cv_;
    bool done_ = false;
    ServiceResponse response_;
  };

  // `engine` must outlive the service.
  TuningService(AdvisorEngine* engine, ServiceOptions options);
  // Stops admission, resolves still-queued requests as kCancelled
  // ("service shutting down"), and joins the workers — in-flight runs
  // finish normally.
  ~TuningService();

  TuningService(const TuningService&) = delete;
  TuningService& operator=(const TuningService&) = delete;

  // Non-blocking submission; the admission decision is made before it
  // returns. Never returns null.
  std::shared_ptr<Ticket> Submit(const ServiceRequest& request);

  // Blocking convenience: Submit + Wait.
  ServiceResponse Tune(const ServiceRequest& request);

  ServiceStats stats() const;
  // Current queued-request count and degraded-mode flag (diagnostics).
  int queue_depth() const;
  bool degraded_mode() const;

  const ServiceOptions& options() const { return options_; }

 private:
  // Why an attempt's cancellation flag fired — first cause wins (CAS), so
  // a deadline racing a user cancel attributes deterministically per run.
  enum class CancelCause : int {
    kNone = 0,
    kUser,          // the client's token
    kDeadline,      // watchdog-enforced timeout_ms
    kForcedTimeout, // injected FaultKind::kForcedTimeout
    kSpurious,      // injected FaultKind::kSpuriousCancel
  };

  struct Job {
    uint64_t id = 0;
    ServiceRequest request;
    std::chrono::steady_clock::time_point submitted_at;
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline;
    std::shared_ptr<Ticket> ticket;
  };

  // An in-flight attempt registered with the watchdog.
  struct ActiveRun {
    std::shared_ptr<const std::atomic<bool>> user_flag;
    CancellationToken run_token;
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline;
    std::shared_ptr<std::atomic<int>> cause;  // CancelCause
  };

  void WorkerLoop();
  void WatchdogLoop();
  void Execute(const std::shared_ptr<Job>& job, bool degraded);
  void Resolve(const std::shared_ptr<Job>& job, ServiceResponse response);
  static void ResolveTicket(const std::shared_ptr<Ticket>& ticket,
                            ServiceResponse response);
  // Interruptible sleep for retry backoff; returns early on shutdown.
  void SleepFor(double ms);

  AdvisorEngine* engine_;
  const ServiceOptions options_;
  FaultInjector injector_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;
  // Priority queue keyed (-priority, submission seq): begin() is the
  // highest priority, oldest first.
  std::map<std::pair<int64_t, uint64_t>, std::shared_ptr<Job>> queue_;
  bool degraded_mode_ = false;
  bool stopping_ = false;
  uint64_t next_id_ = 1;

  mutable std::mutex active_mu_;
  std::map<uint64_t, ActiveRun> active_;  // keyed by a per-attempt token id
  uint64_t next_active_id_ = 1;

  mutable std::mutex stats_mu_;
  ServiceStats stats_;

  std::vector<std::thread> workers_;
  std::thread watchdog_;
};

}  // namespace capd

#endif  // CAPD_SERVICE_TUNING_SERVICE_H_
