#include "service/tuning_service.h"

#include <algorithm>
#include <limits>

namespace capd {

namespace {

using Clock = std::chrono::steady_clock;

double MillisBetween(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

}  // namespace

const char* ServiceStatusName(ServiceStatus status) {
  switch (status) {
    case ServiceStatus::kOk:
      return "ok";
    case ServiceStatus::kCancelled:
      return "cancelled";
    case ServiceStatus::kDeadlineExceeded:
      return "deadline-exceeded";
    case ServiceStatus::kOverloaded:
      return "overloaded";
    case ServiceStatus::kError:
      return "error";
  }
  return "unknown";
}

const ServiceResponse& TuningService::Ticket::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return done_; });
  return response_;
}

bool TuningService::Ticket::done() const {
  std::lock_guard<std::mutex> lock(mu_);
  return done_;
}

TuningService::TuningService(AdvisorEngine* engine, ServiceOptions options)
    : engine_(engine),
      options_(std::move(options)),
      injector_(options_.faults) {
  const int workers = std::max(1, options_.num_workers);
  workers_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  watchdog_ = std::thread([this] { WatchdogLoop(); });
}

TuningService::~TuningService() {
  std::vector<std::shared_ptr<Job>> orphans;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    orphans.reserve(queue_.size());
    for (auto& [key, job] : queue_) orphans.push_back(job);
    queue_.clear();
  }
  queue_cv_.notify_all();
  // Still-queued requests resolve with a definite status even through
  // shutdown; in-flight runs finish normally below.
  for (const std::shared_ptr<Job>& job : orphans) {
    ServiceResponse response;
    response.status = ServiceStatus::kCancelled;
    response.error = "service shutting down";
    response.request_id = job->id;
    response.queue_ms = MillisBetween(job->submitted_at, Clock::now());
    Resolve(job, std::move(response));
  }
  for (std::thread& worker : workers_) worker.join();
  watchdog_.join();
}

std::shared_ptr<TuningService::Ticket> TuningService::Submit(
    const ServiceRequest& request) {
  auto ticket = std::make_shared<Ticket>();
  const Clock::time_point now = Clock::now();
  std::shared_ptr<Job> job;
  bool rejected = false;
  ServiceResponse rejection;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ || static_cast<int>(queue_.size()) >= options_.max_queue) {
      rejected = true;
      rejection.status = ServiceStatus::kOverloaded;
      rejection.error = stopping_ ? "service shutting down" : "queue full";
      rejection.request_id = next_id_++;
    } else {
      job = std::make_shared<Job>();
      job->id = next_id_++;
      job->request = request;
      job->submitted_at = now;
      if (request.timeout_ms > 0.0) {
        job->has_deadline = true;
        job->deadline =
            now + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double, std::milli>(
                          request.timeout_ms));
      }
      job->ticket = ticket;
      queue_[{-static_cast<int64_t>(request.priority), job->id}] = job;
      const int depth = static_cast<int>(queue_.size());
      if (options_.high_watermark > 0 && depth >= options_.high_watermark) {
        degraded_mode_ = true;
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.submitted;
    if (rejected) {
      ++stats_.rejected;
    } else {
      ++stats_.accepted;
    }
  }
  if (rejected) {
    ResolveTicket(ticket, std::move(rejection));
  } else {
    queue_cv_.notify_one();
  }
  return ticket;
}

ServiceResponse TuningService::Tune(const ServiceRequest& request) {
  return Submit(request)->Wait();
}

void TuningService::WorkerLoop() {
  while (true) {
    std::shared_ptr<Job> job;
    bool degraded = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      job = queue_.begin()->second;
      queue_.erase(queue_.begin());
      const int depth = static_cast<int>(queue_.size());
      if (options_.high_watermark > 0) {
        if (depth >= options_.high_watermark) {
          degraded_mode_ = true;
        } else if (depth <= options_.low_watermark) {
          degraded_mode_ = false;
        }
        degraded = degraded_mode_;
      }
    }
    Execute(job, degraded);
  }
}

void TuningService::WatchdogLoop() {
  while (true) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
    }
    {
      std::lock_guard<std::mutex> lock(active_mu_);
      const Clock::time_point now = Clock::now();
      for (auto& [id, run] : active_) {
        if (run.cause->load(std::memory_order_relaxed) !=
            static_cast<int>(CancelCause::kNone)) {
          continue;
        }
        int expected = static_cast<int>(CancelCause::kNone);
        if (run.user_flag != nullptr &&
            run.user_flag->load(std::memory_order_relaxed)) {
          if (run.cause->compare_exchange_strong(
                  expected, static_cast<int>(CancelCause::kUser))) {
            run.run_token.RequestCancel();
          }
        } else if (run.has_deadline && now >= run.deadline) {
          if (run.cause->compare_exchange_strong(
                  expected, static_cast<int>(CancelCause::kDeadline))) {
            run.run_token.RequestCancel();
          }
        }
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

void TuningService::Execute(const std::shared_ptr<Job>& job, bool degraded) {
  const Clock::time_point started = Clock::now();

  ServiceResponse response;
  response.request_id = job->id;
  response.queue_ms = MillisBetween(job->submitted_at, started);
  response.degraded = degraded;

  // The plan this request actually runs: the caller's, or — in degraded
  // mode — the cheap one, recorded in the response either way.
  TuningRequest base = job->request.tuning;
  if (degraded) {
    base.strategy = options_.degraded_strategy;
    base.budget.value *= options_.degraded_budget_scale;
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.degraded;
  }
  response.executed_strategy = base.strategy;

  const std::shared_ptr<const std::atomic<bool>> user_flag =
      job->request.tuning.cancel.flag();
  auto user_cancelled = [&] {
    return user_flag != nullptr && user_flag->load(std::memory_order_relaxed);
  };
  auto remaining_ms = [&]() -> double {
    if (!job->has_deadline) return std::numeric_limits<double>::infinity();
    return MillisBetween(Clock::now(), job->deadline);
  };
  auto finish = [&](ServiceResponse r) {
    r.run_ms = MillisBetween(started, Clock::now());
    Resolve(job, std::move(r));
  };

  // Best-so-far of the latest attempt, used when the deadline or the retry
  // budget expires between attempts.
  TuningResponse last;
  bool has_last = false;

  for (int attempt = 1; attempt <= options_.max_attempts; ++attempt) {
    if (user_cancelled()) {
      response.status = ServiceStatus::kCancelled;
      if (has_last) response.tuning = std::move(last);
      if (response.attempts == 0) response.error = "cancelled before execution";
      finish(std::move(response));
      return;
    }
    if (remaining_ms() <= 0.0) {
      response.status = ServiceStatus::kDeadlineExceeded;
      if (has_last) response.tuning = std::move(last);
      if (response.attempts == 0) response.error = "deadline expired in queue";
      finish(std::move(response));
      return;
    }

    response.attempts = attempt;
    if (attempt > 1) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.retries;
    }

    // Fresh token per attempt: tokens never reset, so a retry after an
    // injected cancellation must not inherit the fired flag. `cause`
    // attributes the first firing (user / deadline / injected) via CAS.
    auto cause = std::make_shared<std::atomic<int>>(
        static_cast<int>(CancelCause::kNone));
    CancellationToken run_token;

    TuningRequest attempt_request = base;
    attempt_request.cancel = run_token;
    if (injector_.options().enabled()) {
      const uint64_t id = job->id;
      attempt_request.fault_hook = [this, id, attempt, cause, run_token](
                                       const std::string& phase) mutable {
        const FaultKind kind = injector_.Decide(id, attempt, phase);
        if (kind == FaultKind::kNone) return;
        {
          std::lock_guard<std::mutex> lock(stats_mu_);
          ++stats_.faults_injected;
        }
        if (kind == FaultKind::kTransient) {
          throw TransientTuningError(std::string("injected fault at '") +
                                     phase + "'");
        }
        int expected = static_cast<int>(CancelCause::kNone);
        const CancelCause as_cause = kind == FaultKind::kForcedTimeout
                                         ? CancelCause::kForcedTimeout
                                         : CancelCause::kSpurious;
        cause->compare_exchange_strong(expected, static_cast<int>(as_cause));
        run_token.RequestCancel();
      };
    }

    uint64_t active_id = 0;
    {
      std::lock_guard<std::mutex> lock(active_mu_);
      active_id = next_active_id_++;
      ActiveRun run;
      run.user_flag = user_flag;
      run.run_token = run_token;
      run.has_deadline = job->has_deadline;
      run.deadline = job->deadline;
      run.cause = cause;
      active_[active_id] = std::move(run);
    }
    TuningResponse tuning = engine_->Tune(attempt_request);
    {
      std::lock_guard<std::mutex> lock(active_mu_);
      active_.erase(active_id);
    }

    if (tuning.status == TuningResponse::Status::kOk) {
      response.status = ServiceStatus::kOk;
      response.tuning = std::move(tuning);
      finish(std::move(response));
      return;
    }

    if (tuning.status == TuningResponse::Status::kCancelled) {
      const auto why = static_cast<CancelCause>(cause->load());
      if (why == CancelCause::kDeadline || why == CancelCause::kForcedTimeout) {
        // Cooperative wind-down delivered the best-so-far design.
        response.status = ServiceStatus::kDeadlineExceeded;
        response.tuning = std::move(tuning);
        finish(std::move(response));
        return;
      }
      if (why == CancelCause::kSpurious) {
        // Not a real stop request: retry on a fresh token.
        last = std::move(tuning);
        has_last = true;
        if (attempt == options_.max_attempts) {
          response.status = ServiceStatus::kError;
          response.error = "spurious cancellations exhausted the retry budget";
          response.tuning = std::move(last);
          finish(std::move(response));
          return;
        }
      } else {
        // kUser — or, defensively, an unattributed firing.
        response.status = ServiceStatus::kCancelled;
        response.tuning = std::move(tuning);
        finish(std::move(response));
        return;
      }
    } else {  // kError
      if (!tuning.retryable || attempt == options_.max_attempts) {
        response.status = ServiceStatus::kError;
        response.error = tuning.error;
        response.tuning = std::move(tuning);
        finish(std::move(response));
        return;
      }
      last = std::move(tuning);
      has_last = true;
    }

    // Capped exponential backoff before the next attempt, bounded by the
    // remaining deadline (the top of the loop then resolves expiry).
    double backoff = options_.backoff_base_ms;
    for (int k = 1; k < attempt; ++k) backoff *= 2.0;
    backoff = std::min(backoff, options_.backoff_cap_ms);
    backoff = std::min(backoff, std::max(0.0, remaining_ms()));
    if (backoff > 0.0) SleepFor(backoff);
  }

  // Unreachable: every exit above resolves. Kept as a terminal safety net
  // so no job can ever leave Execute unresolved.
  response.status = ServiceStatus::kError;
  response.error = "internal: retry loop exited without resolution";
  finish(std::move(response));
}

void TuningService::Resolve(const std::shared_ptr<Job>& job,
                            ServiceResponse response) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.completed;
    switch (response.status) {
      case ServiceStatus::kOk:
        ++stats_.ok;
        break;
      case ServiceStatus::kCancelled:
        ++stats_.cancelled;
        break;
      case ServiceStatus::kDeadlineExceeded:
        ++stats_.deadline_exceeded;
        break;
      case ServiceStatus::kError:
        ++stats_.errors;
        break;
      case ServiceStatus::kOverloaded:
        break;  // counted at admission, never reaches Resolve
    }
  }
  ResolveTicket(job->ticket, std::move(response));
}

void TuningService::ResolveTicket(const std::shared_ptr<Ticket>& ticket,
                                  ServiceResponse response) {
  {
    std::lock_guard<std::mutex> lock(ticket->mu_);
    ticket->response_ = std::move(response);
    ticket->done_ = true;
  }
  ticket->cv_.notify_all();
}

void TuningService::SleepFor(double ms) {
  std::unique_lock<std::mutex> lock(mu_);
  queue_cv_.wait_for(
      lock,
      std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double, std::milli>(ms)),
      [this] { return stopping_; });
}

ServiceStats TuningService::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

int TuningService::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(queue_.size());
}

bool TuningService::degraded_mode() const {
  std::lock_guard<std::mutex> lock(mu_);
  return degraded_mode_;
}

}  // namespace capd
