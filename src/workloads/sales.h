// The "Sales" workload: a synthetic stand-in for the paper's real customer
// database — a star-schema sales-tracking DB with 50 analytic queries and
// two fact-table bulk loads. Heavily denormalized, low-cardinality string
// columns on the fact table make compression attractive, matching the
// paper's description of the dataset's behaviour.
#ifndef CAPD_WORKLOADS_SALES_H_
#define CAPD_WORKLOADS_SALES_H_

#include <cstdint>

#include "catalog/database.h"
#include "query/query.h"

namespace capd {
namespace sales {

struct Options {
  uint64_t fact_rows = 10000;
  uint64_t seed = 424242;
  uint64_t bulk_rows = 1200;
};

void Build(Database* db, const Options& options);

// 50 analytic queries + 2 bulk loads.
Workload MakeWorkload(const Database& db, const Options& options);

}  // namespace sales
}  // namespace capd

#endif  // CAPD_WORKLOADS_SALES_H_
