#include "workloads/sales.h"

#include <string>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "common/zipf.h"
#include "query/sql_parser.h"

namespace capd {
namespace sales {
namespace {

const char* kStates[] = {"CA", "NY", "TX", "WA", "FL", "IL", "MA", "OR", "NV", "AZ"};
const char* kChannels[] = {"ONLINE", "STORE", "PHONE", "PARTNER"};
const char* kPayments[] = {"CARD", "CASH", "WIRE", "CHECK"};
const char* kCategories[] = {"ELECTRONICS", "GROCERY", "APPAREL", "HOME", "TOYS", "SPORTS"};

constexpr int64_t kDateLo = 13149;  // 2006-01-01
constexpr int64_t kDateHi = 14610;  // 2010-01-01

template <size_t N>
std::string Pick(const char* const (&pool)[N], Random* rng) {
  return pool[rng->Next(N)];
}

}  // namespace

void Build(Database* db, const Options& options) {
  Random rng(options.seed);
  const uint64_t n_fact = options.fact_rows;
  const uint64_t n_products = std::max<uint64_t>(n_fact / 50, 8);
  const uint64_t n_stores = std::max<uint64_t>(n_fact / 400, 4);

  auto products = std::make_unique<Table>(
      "products", Schema({{"product_key", ValueType::kInt64, 8},
                          {"product_name", ValueType::kString, 20},
                          {"category", ValueType::kString, 12},
                          {"list_price", ValueType::kDouble, 8}}));
  for (uint64_t i = 1; i <= n_products; ++i) {
    products->AddRow({Value::Int64(static_cast<int64_t>(i)),
                      Value::String("product_" + std::to_string(i)),
                      Value::String(Pick(kCategories, &rng)),
                      Value::Double(rng.Uniform(2, 900))});
  }
  db->AddTable(std::move(products));

  auto stores = std::make_unique<Table>(
      "stores", Schema({{"store_key", ValueType::kInt64, 8},
                        {"store_state", ValueType::kString, 2},
                        {"store_size", ValueType::kInt64, 8}}));
  for (uint64_t i = 1; i <= n_stores; ++i) {
    stores->AddRow({Value::Int64(static_cast<int64_t>(i)),
                    Value::String(Pick(kStates, &rng)),
                    Value::Int64(rng.Uniform(500, 20000))});
  }
  db->AddTable(std::move(stores));

  // Fact table: wide, partly denormalized; skewed product popularity.
  ZipfGenerator product_zipf(n_products, 1.0);
  auto sales_tbl = std::make_unique<Table>(
      "sales", Schema({{"sale_id", ValueType::kInt64, 8},
                       {"sale_date", ValueType::kDate, 8},
                       {"product_key_fk", ValueType::kInt64, 8},
                       {"store_key_fk", ValueType::kInt64, 8},
                       {"state", ValueType::kString, 2},
                       {"channel", ValueType::kString, 8},
                       {"payment", ValueType::kString, 6},
                       {"quantity", ValueType::kInt64, 8},
                       {"price", ValueType::kDouble, 8},
                       {"discount", ValueType::kDouble, 8},
                       {"total", ValueType::kDouble, 8}}));
  sales_tbl->Reserve(n_fact);
  for (uint64_t i = 1; i <= n_fact; ++i) {
    const double price = static_cast<double>(rng.Uniform(2, 900));
    const int64_t qty = rng.Uniform(1, 12);
    const double discount = static_cast<double>(rng.Uniform(0, 30)) / 100.0;
    sales_tbl->AddRow({Value::Int64(static_cast<int64_t>(i)),
                       Value::Date(rng.Uniform(kDateLo, kDateHi - 1)),
                       Value::Int64(static_cast<int64_t>(product_zipf.Next(&rng)) + 1),
                       Value::Int64(rng.Uniform(1, static_cast<int64_t>(n_stores))),
                       Value::String(Pick(kStates, &rng)),
                       Value::String(Pick(kChannels, &rng)),
                       Value::String(Pick(kPayments, &rng)),
                       Value::Int64(qty),
                       Value::Double(price),
                       Value::Double(discount),
                       Value::Double(price * static_cast<double>(qty) * (1 - discount))});
  }
  db->AddTable(std::move(sales_tbl));

  db->AddForeignKey({"sales", "product_key_fk", "products", "product_key"});
  db->AddForeignKey({"sales", "store_key_fk", "stores", "store_key"});
}

Workload MakeWorkload(const Database& db, const Options& options) {
  Random rng(options.seed ^ 0x51A1E5);
  std::vector<std::string> sql;

  // A spread of query shapes over the star schema; parameters jittered so
  // the 50 statements are distinct but realistic (a reporting dashboard).
  const char* kYears[] = {"2006", "2007", "2008", "2009"};
  for (int i = 0; i < 12; ++i) {
    const std::string year = kYears[i % 4];
    const std::string month = std::to_string(1 + (i * 7) % 12);
    const std::string mm = month.size() == 1 ? "0" + month : month;
    sql.push_back("SELECT state, SUM(total) FROM sales WHERE sale_date BETWEEN DATE '" +
                  year + "-" + mm + "-01' AND DATE '" + year + "-12-31' GROUP BY state");
  }
  for (int i = 0; i < 8; ++i) {
    sql.push_back(std::string("SELECT channel, SUM(total), COUNT(*) FROM sales WHERE state = '") +
                  kStates[i % 10] + "' GROUP BY channel");
  }
  for (int i = 0; i < 8; ++i) {
    sql.push_back("SELECT category, SUM(total) FROM sales JOIN products ON "
                  "product_key_fk = product_key WHERE sale_date >= DATE '" +
                  std::string(kYears[i % 4]) + "-06-01' GROUP BY category");
  }
  for (int i = 0; i < 6; ++i) {
    sql.push_back("SELECT store_state, SUM(total) FROM sales JOIN stores ON "
                  "store_key_fk = store_key WHERE quantity >= " +
                  std::to_string(2 + i) + " GROUP BY store_state");
  }
  for (int i = 0; i < 6; ++i) {
    sql.push_back(std::string("SELECT payment, COUNT(*) FROM sales WHERE channel = '") +
                  kChannels[i % 4] + "' GROUP BY payment");
  }
  for (int i = 0; i < 5; ++i) {
    sql.push_back("SELECT sale_date, SUM(quantity) FROM sales WHERE discount >= 0." +
                  std::to_string(1 + i) + " GROUP BY sale_date");
  }
  for (int i = 0; i < 5; ++i) {
    sql.push_back("SELECT product_key_fk, SUM(total) FROM sales WHERE sale_date "
                  "BETWEEN DATE '" + std::string(kYears[i % 4]) +
                  "-01-01' AND DATE '" + kYears[i % 4] +
                  "-03-31' GROUP BY product_key_fk");
  }
  CAPD_CHECK_EQ(sql.size(), 50u);

  Workload w;
  for (size_t i = 0; i < sql.size(); ++i) {
    std::string error;
    std::optional<Statement> stmt = ParseSql(sql[i], db, &error);
    CAPD_CHECK(stmt.has_value()) << "S" << (i + 1) << ": " << error;
    stmt->id = "S" + std::to_string(i + 1);
    w.statements.push_back(std::move(*stmt));
  }
  w.statements.push_back(Statement::Insert(
      "BULK_SALES_1", InsertStatement{"sales", options.bulk_rows}));
  w.statements.push_back(Statement::Insert(
      "BULK_SALES_2", InsertStatement{"sales", options.bulk_rows / 2}));
  return w;
}

}  // namespace sales
}  // namespace capd
