// A slim TPC-DS-flavoured schema (store_sales + item + store). Originally
// only the Appendix-C error-model stability analysis (Table 2) used the
// schema; MakeWorkload adds a small analytic workload so the advisor (and
// its golden-report regression tests) can tune a third dataset with a
// distribution different from TPC-H and Sales.
#ifndef CAPD_WORKLOADS_TPCDS_LITE_H_
#define CAPD_WORKLOADS_TPCDS_LITE_H_

#include <cstdint>

#include "catalog/database.h"
#include "query/query.h"

namespace capd {
namespace tpcds {

struct Options {
  uint64_t store_sales_rows = 10000;
  uint64_t seed = 777;
  uint64_t bulk_rows = 1000;  // rows per bulk-load statement
};

void Build(Database* db, const Options& options);

// 12 analytic queries over the star schema + 1 fact-table bulk load.
Workload MakeWorkload(const Database& db, const Options& options);

}  // namespace tpcds
}  // namespace capd

#endif  // CAPD_WORKLOADS_TPCDS_LITE_H_
