// A slim TPC-DS-flavoured schema (store_sales + item + store). Used only by
// the Appendix-C error-model stability analysis (Table 2), which needs a
// schema/distribution different from TPC-H, not the full benchmark.
#ifndef CAPD_WORKLOADS_TPCDS_LITE_H_
#define CAPD_WORKLOADS_TPCDS_LITE_H_

#include <cstdint>

#include "catalog/database.h"

namespace capd {
namespace tpcds {

struct Options {
  uint64_t store_sales_rows = 10000;
  uint64_t seed = 777;
};

void Build(Database* db, const Options& options);

}  // namespace tpcds
}  // namespace capd

#endif  // CAPD_WORKLOADS_TPCDS_LITE_H_
