// TPC-H-like dataset and workload generator (scaled to laptop-sized row
// counts; deterministic under a seed). Column names follow TPC-H so the
// 22 analytic query templates read naturally; value distributions carry a
// Zipf skew knob (the paper's Z=0/1/3 variants, Appendix C).
#ifndef CAPD_WORKLOADS_TPCH_H_
#define CAPD_WORKLOADS_TPCH_H_

#include <cstdint>

#include "catalog/database.h"
#include "query/query.h"

namespace capd {
namespace tpch {

struct Options {
  uint64_t lineitem_rows = 12000;
  double skew_z = 0.0;  // Zipf theta for FK/value choices (0 = uniform)
  uint64_t seed = 20110829;  // VLDB'11 week
  uint64_t bulk_rows = 1500;  // rows per bulk-load statement
};

// Populates `db` with lineitem/orders/customer/part/supplier/nation and
// declares the FK edges.
void Build(Database* db, const Options& options);

// The 22 analytic queries + 2 bulk loads (weights 1.0). Use
// Workload::WithInsertWeight to derive SELECT/INSERT intensive variants.
Workload MakeWorkload(const Database& db, const Options& options);

// Subset helper: only the queries, or only queries touching lineitem.
Workload SelectOnly(const Workload& w);

}  // namespace tpch
}  // namespace capd

#endif  // CAPD_WORKLOADS_TPCH_H_
