#include "workloads/tpcds_lite.h"

#include <optional>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "common/zipf.h"
#include "query/sql_parser.h"

namespace capd {
namespace tpcds {

void Build(Database* db, const Options& options) {
  Random rng(options.seed);
  const uint64_t n_fact = options.store_sales_rows;
  const uint64_t n_item = std::max<uint64_t>(n_fact / 20, 10);
  const uint64_t n_store = std::max<uint64_t>(n_fact / 500, 3);

  auto item = std::make_unique<Table>(
      "item", Schema({{"i_item_sk", ValueType::kInt64, 8},
                      {"i_brand", ValueType::kString, 12},
                      {"i_class", ValueType::kString, 10},
                      {"i_current_price", ValueType::kDouble, 8}}));
  const char* kClasses[] = {"shirts", "pants", "dresses", "shoes", "hats"};
  for (uint64_t i = 1; i <= n_item; ++i) {
    item->AddRow({Value::Int64(static_cast<int64_t>(i)),
                  Value::String("brand_" + std::to_string(i % 40)),
                  Value::String(kClasses[i % 5]),
                  Value::Double(rng.Uniform(1, 300))});
  }
  db->AddTable(std::move(item));

  auto store = std::make_unique<Table>(
      "store", Schema({{"st_store_sk", ValueType::kInt64, 8},
                       {"st_state", ValueType::kString, 2},
                       {"st_tax", ValueType::kDouble, 8}}));
  const char* kStates[] = {"TN", "GA", "SC", "AL", "KY"};
  for (uint64_t i = 1; i <= n_store; ++i) {
    store->AddRow({Value::Int64(static_cast<int64_t>(i)),
                   Value::String(kStates[i % 5]),
                   Value::Double(0.01 * static_cast<double>(rng.Uniform(0, 9)))});
  }
  db->AddTable(std::move(store));

  // TPC-DS item popularity is strongly skewed: Zipf 0.8.
  ZipfGenerator item_zipf(n_item, 0.8);
  auto ss = std::make_unique<Table>(
      "store_sales", Schema({{"ss_sold_date_sk", ValueType::kInt64, 8},
                             {"ss_item_sk_fk", ValueType::kInt64, 8},
                             {"ss_store_sk_fk", ValueType::kInt64, 8},
                             {"ss_quantity", ValueType::kInt64, 8},
                             {"ss_sales_price", ValueType::kDouble, 8},
                             {"ss_ext_discount", ValueType::kDouble, 8},
                             {"ss_promo", ValueType::kString, 8}}));
  const char* kPromos[] = {"NONE", "EMAIL", "TV", "RADIO"};
  ss->Reserve(n_fact);
  for (uint64_t i = 1; i <= n_fact; ++i) {
    ss->AddRow({Value::Int64(2450000 + rng.Uniform(0, 1800)),
                Value::Int64(static_cast<int64_t>(item_zipf.Next(&rng)) + 1),
                Value::Int64(rng.Uniform(1, static_cast<int64_t>(n_store))),
                Value::Int64(rng.Uniform(1, 99)),
                Value::Double(rng.Uniform(1, 300)),
                Value::Double(0.01 * static_cast<double>(rng.Uniform(0, 40))),
                Value::String(kPromos[rng.Next(4)])});
  }
  db->AddTable(std::move(ss));

  db->AddForeignKey({"store_sales", "ss_item_sk_fk", "item", "i_item_sk"});
  db->AddForeignKey({"store_sales", "ss_store_sk_fk", "store", "st_store_sk"});
}

Workload MakeWorkload(const Database& db, const Options& options) {
  // A reporting-dashboard mix over the star schema: date-range rollups,
  // promo/brand/state breakdowns, and two dimension joins. Deterministic —
  // the statements are fixed; only the data under them follows the seed.
  const std::vector<std::string> sql = {
      "SELECT ss_item_sk_fk, SUM(ss_sales_price) FROM store_sales "
      "WHERE ss_sold_date_sk BETWEEN 2450100 AND 2450400 "
      "GROUP BY ss_item_sk_fk",
      "SELECT ss_promo, SUM(ss_sales_price), COUNT(ss_quantity) "
      "FROM store_sales WHERE ss_quantity >= 50 GROUP BY ss_promo",
      "SELECT i_brand, SUM(ss_sales_price) FROM store_sales "
      "JOIN item ON ss_item_sk_fk = i_item_sk "
      "WHERE ss_sold_date_sk >= 2451000 GROUP BY i_brand",
      "SELECT i_class, SUM(ss_quantity) FROM store_sales "
      "JOIN item ON ss_item_sk_fk = i_item_sk "
      "WHERE ss_promo = 'EMAIL' GROUP BY i_class",
      "SELECT st_state, SUM(ss_sales_price) FROM store_sales "
      "JOIN store ON ss_store_sk_fk = st_store_sk "
      "WHERE ss_quantity >= 25 GROUP BY st_state",
      "SELECT ss_sold_date_sk, SUM(ss_quantity) FROM store_sales "
      "WHERE ss_ext_discount >= 0.2 GROUP BY ss_sold_date_sk",
      "SELECT ss_store_sk_fk, COUNT(ss_item_sk_fk) FROM store_sales "
      "WHERE ss_promo = 'TV' GROUP BY ss_store_sk_fk",
      "SELECT ss_item_sk_fk, ss_quantity, ss_sales_price FROM store_sales "
      "WHERE ss_sold_date_sk BETWEEN 2450000 AND 2450090",
      "SELECT i_brand, i_class, SUM(ss_sales_price) FROM store_sales "
      "JOIN item ON ss_item_sk_fk = i_item_sk "
      "WHERE ss_sales_price >= 250.0 GROUP BY i_brand, i_class",
      "SELECT st_state, COUNT(ss_quantity) FROM store_sales "
      "JOIN store ON ss_store_sk_fk = st_store_sk "
      "WHERE ss_sold_date_sk >= 2451500 GROUP BY st_state",
      "SELECT ss_promo, SUM(ss_ext_discount) FROM store_sales "
      "WHERE ss_item_sk_fk <= 20 GROUP BY ss_promo",
      "SELECT ss_quantity, COUNT(ss_promo) FROM store_sales "
      "WHERE ss_sales_price BETWEEN 10.0 AND 60.0 GROUP BY ss_quantity",
  };

  Workload w;
  for (size_t i = 0; i < sql.size(); ++i) {
    std::string error;
    std::optional<Statement> stmt = ParseSql(sql[i], db, &error);
    CAPD_CHECK(stmt.has_value()) << "DS" << (i + 1) << ": " << error;
    stmt->id = "DS" + std::to_string(i + 1);
    w.statements.push_back(std::move(*stmt));
  }
  w.statements.push_back(Statement::Insert(
      "BULK_STORE_SALES", InsertStatement{"store_sales", options.bulk_rows}));
  return w;
}

}  // namespace tpcds
}  // namespace capd
