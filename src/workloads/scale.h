// The "scale" workload: an events/telemetry star schema whose fact table is
// *generated* (blocked BlockSource-backed Table) instead of materialized, so
// the data axis can be swept to 10^7-10^8 rows without ever holding the
// table in memory. This is the workload bench_scale_sweep drives to show
// estimation cost stays sublinear in table size.
#ifndef CAPD_WORKLOADS_SCALE_H_
#define CAPD_WORKLOADS_SCALE_H_

#include <cstdint>

#include "catalog/database.h"
#include "query/query.h"

namespace capd {
namespace scale {

struct Options {
  // Fact ("events") rows. Any value works; 10^7-10^8 is the intended range.
  uint64_t fact_rows = 100000;
  uint64_t seed = 20110829;
  uint64_t bulk_rows = 5000;
};

// Builds the materialized `devices` dimension plus the generated `events`
// fact table. The fact table costs O(block) memory regardless of fact_rows.
void Build(Database* db, const Options& options);

// 8 analytic queries + 1 bulk load over the star schema.
Workload MakeWorkload(const Database& db, const Options& options);

// Fact-table schema geometry, exposed for tests.
uint64_t NumDevices(uint64_t fact_rows);
uint64_t SensorDomain(uint64_t fact_rows);

}  // namespace scale
}  // namespace capd

#endif  // CAPD_WORKLOADS_SCALE_H_
