#include "workloads/registry.h"

#include <map>

#include "workloads/sales.h"
#include "workloads/scale.h"
#include "workloads/tpcds_lite.h"
#include "workloads/tpch.h"

namespace capd {
namespace workloads {
namespace {

using Builder = void (*)(const WorkloadSpec&, BuiltWorkload*);

void BuildTpch(const WorkloadSpec& spec, BuiltWorkload* out) {
  tpch::Options opt;
  if (spec.rows > 0) opt.lineitem_rows = spec.rows;
  if (spec.seed > 0) opt.seed = spec.seed;
  opt.skew_z = spec.skew_z;
  tpch::Build(out->db.get(), opt);
  out->workload = tpch::MakeWorkload(*out->db, opt);
  out->seed = opt.seed;
}

void BuildSales(const WorkloadSpec& spec, BuiltWorkload* out) {
  sales::Options opt;
  if (spec.rows > 0) opt.fact_rows = spec.rows;
  if (spec.seed > 0) opt.seed = spec.seed;
  sales::Build(out->db.get(), opt);
  out->workload = sales::MakeWorkload(*out->db, opt);
  out->seed = opt.seed;
}

void BuildScale(const WorkloadSpec& spec, BuiltWorkload* out) {
  scale::Options opt;
  if (spec.rows > 0) opt.fact_rows = spec.rows;
  if (spec.seed > 0) opt.seed = spec.seed;
  scale::Build(out->db.get(), opt);
  out->workload = scale::MakeWorkload(*out->db, opt);
  out->seed = opt.seed;
}

void BuildTpcds(const WorkloadSpec& spec, BuiltWorkload* out) {
  tpcds::Options opt;
  if (spec.rows > 0) opt.store_sales_rows = spec.rows;
  if (spec.seed > 0) opt.seed = spec.seed;
  tpcds::Build(out->db.get(), opt);
  out->workload = tpcds::MakeWorkload(*out->db, opt);
  out->seed = opt.seed;
}

// Primary names first; aliases map to the same builder but stay out of
// Names().
const std::map<std::string, Builder>& Builders() {
  static const std::map<std::string, Builder> kBuilders = {
      {"tpch", &BuildTpch},
      {"sales", &BuildSales},
      {"scale", &BuildScale},
      {"tpcds-lite", &BuildTpcds},
  };
  return kBuilders;
}

const std::map<std::string, std::string>& Aliases() {
  static const std::map<std::string, std::string> kAliases = {
      {"tpcds", "tpcds-lite"},
  };
  return kAliases;
}

}  // namespace

bool Build(const WorkloadSpec& spec, BuiltWorkload* out, std::string* error) {
  std::string name = spec.name;
  const auto alias = Aliases().find(name);
  if (alias != Aliases().end()) name = alias->second;
  const auto it = Builders().find(name);
  if (it == Builders().end()) {
    *error = "unknown workload '" + spec.name + "' (known:";
    for (const std::string& known : Names()) *error += " " + known;
    *error += ")";
    return false;
  }
  out->db = std::make_unique<Database>();
  it->second(spec, out);
  return true;
}

std::vector<std::string> Names() {
  std::vector<std::string> names;
  names.reserve(Builders().size());
  for (const auto& [name, builder] : Builders()) names.push_back(name);
  return names;  // std::map iteration is already sorted
}

}  // namespace workloads
}  // namespace capd
