#include "workloads/scale.h"

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "common/zipf.h"
#include "query/sql_parser.h"
#include "storage/block.h"

namespace capd {
namespace scale {
namespace {

const char* kDeviceTypes[] = {"SENSOR", "GATEWAY", "METER", "CAMERA",
                              "TRACKER"};
const char* kStatuses[] = {"E", "W", "C"};  // non-OK statuses

constexpr int64_t kDateLo = 18262;  // 2020-01-01
constexpr int64_t kDateHi = 18993;  // 2022-01-01
constexpr size_t kNumRegions = 20;

std::string RegionName(uint64_t i) {
  std::string suffix = std::to_string(i);
  if (suffix.size() == 1) suffix = "0" + suffix;
  return "region_" + suffix;
}

// Per-block row generator for the `events` fact table. Each block draws
// from a fresh Random seeded by BlockSeed(seed, block), so any block can be
// produced independently (and concurrently) and always yields the same
// bytes. The Zipf generators are shared: Next() is const and thread-safe.
class EventsSource : public BlockSource {
 public:
  EventsSource(uint64_t seed, uint64_t n_devices, uint64_t sensor_domain)
      : seed_(seed),
        n_devices_(n_devices),
        device_zipf_(n_devices, 1.0),
        sensor_zipf_(sensor_domain, 1.0) {}

  void FillBlock(uint64_t block_index, uint64_t first_row, uint64_t count,
                 ColumnBlock* out) const override {
    Random rng(BlockSeed(seed_, block_index));
    Row row;
    row.reserve(8);
    for (uint64_t r = 0; r < count; ++r) {
      const uint64_t global = first_row + r;
      row.clear();
      row.push_back(Value::Int64(static_cast<int64_t>(global) + 1));
      row.push_back(Value::Int64(
          static_cast<int64_t>(device_zipf_.Next(&rng)) + 1));
      row.push_back(Value::Int64(
          static_cast<int64_t>(sensor_zipf_.Next(&rng)) + 1));
      row.push_back(Value::Date(rng.Uniform(kDateLo, kDateHi - 1)));
      row.push_back(Value::Double(static_cast<double>(rng.Uniform(0, 1000))));
      // ~90% healthy readings, the rest error/warn/critical.
      row.push_back(Value::String(
          rng.Next(10) < 9 ? "O" : kStatuses[rng.Next(3)]));
      row.push_back(Value::String(RegionName(rng.Next(kNumRegions))));
      row.push_back(Value::Int64(rng.Uniform(0, 99)));
      out->AppendRow(row);
    }
  }

 private:
  uint64_t seed_;
  uint64_t n_devices_;
  ZipfGenerator device_zipf_;
  ZipfGenerator sensor_zipf_;
};

}  // namespace

uint64_t NumDevices(uint64_t fact_rows) {
  return std::clamp<uint64_t>(fact_rows / 1000, 16, 20000);
}

uint64_t SensorDomain(uint64_t fact_rows) {
  // >= n/4 so at 10^7+ rows the domain exceeds ZipfGenerator::kCdfCap and
  // the analytic tail actually runs in the sweep.
  return std::max<uint64_t>(fact_rows / 4, 4096);
}

void Build(Database* db, const Options& options) {
  const uint64_t n_fact = options.fact_rows;
  const uint64_t n_devices = NumDevices(n_fact);

  // Dimension: small, materialized as usual.
  Random rng(options.seed ^ 0xD1CEull);
  auto devices = std::make_unique<Table>(
      "devices", Schema({{"device_key", ValueType::kInt64, 8},
                         {"device_type", ValueType::kString, 8},
                         {"device_region", ValueType::kString, 10}}));
  for (uint64_t i = 1; i <= n_devices; ++i) {
    devices->AddRow({Value::Int64(static_cast<int64_t>(i)),
                     Value::String(kDeviceTypes[rng.Next(5)]),
                     Value::String(RegionName(rng.Next(kNumRegions)))});
  }
  db->AddTable(std::move(devices));

  // Fact: generated block-by-block, never resident.
  auto source = std::make_shared<EventsSource>(options.seed, n_devices,
                                               SensorDomain(n_fact));
  auto events = std::make_unique<Table>(
      "events",
      Schema({{"e_id", ValueType::kInt64, 8},
              {"e_device", ValueType::kInt64, 8},
              {"e_sensor", ValueType::kInt64, 8},
              {"e_ts", ValueType::kDate, 8},
              {"e_value", ValueType::kDouble, 8},
              {"e_status", ValueType::kString, 1},
              {"e_region", ValueType::kString, 10},
              {"e_payload", ValueType::kInt64, 8}}),
      n_fact, std::move(source));
  db->AddTable(std::move(events));

  db->AddForeignKey({"events", "e_device", "devices", "device_key"});
}

Workload MakeWorkload(const Database& db, const Options& options) {
  const std::vector<std::string> sql = {
      "SELECT e_region, SUM(e_value) FROM events WHERE e_ts BETWEEN "
      "DATE '2020-01-01' AND DATE '2020-12-31' GROUP BY e_region",
      "SELECT e_status, COUNT(*) FROM events WHERE e_region = 'region_03' "
      "GROUP BY e_status",
      "SELECT e_device, SUM(e_value) FROM events WHERE e_status = 'E' "
      "GROUP BY e_device",
      "SELECT device_type, SUM(e_value) FROM events JOIN devices ON "
      "e_device = device_key WHERE e_ts >= DATE '2021-01-01' "
      "GROUP BY device_type",
      "SELECT e_ts, COUNT(*) FROM events WHERE e_value >= 750 GROUP BY e_ts",
      "SELECT e_sensor, SUM(e_value) FROM events WHERE e_ts BETWEEN "
      "DATE '2021-03-01' AND DATE '2021-03-31' GROUP BY e_sensor",
      "SELECT e_status, SUM(e_payload) FROM events WHERE e_device <= 50 "
      "GROUP BY e_status",
      "SELECT e_region, COUNT(*) FROM events WHERE e_payload BETWEEN 10 AND "
      "40 GROUP BY e_region",
  };

  Workload w;
  for (size_t i = 0; i < sql.size(); ++i) {
    std::string error;
    std::optional<Statement> stmt = ParseSql(sql[i], db, &error);
    CAPD_CHECK(stmt.has_value()) << "E" << (i + 1) << ": " << error;
    stmt->id = "E" + std::to_string(i + 1);
    w.statements.push_back(std::move(*stmt));
  }
  w.statements.push_back(Statement::Insert(
      "BULK_EVENTS", InsertStatement{"events", options.bulk_rows}));
  return w;
}

}  // namespace scale
}  // namespace capd
