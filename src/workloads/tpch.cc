#include "workloads/tpch.h"

#include <string>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "common/zipf.h"
#include "query/sql_parser.h"

namespace capd {
namespace tpch {
namespace {

constexpr int64_t kDateLo = 8766;   // 1994-01-01
constexpr int64_t kDateHi = 10957;  // 2000-01-01 (exclusive-ish)

const char* kShipModes[] = {"AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB", "REG_AIR"};
const char* kInstructs[] = {"DELIVER", "COLLECT", "RETURN", "NONE"};
const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM", "4-LOW", "5-NONE"};
const char* kSegments[] = {"AUTO", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"};
const char* kBrands[] = {"Brand#11", "Brand#12", "Brand#23", "Brand#34", "Brand#45"};
const char* kTypes[] = {"ECONOMY", "STANDARD", "PROMO", "MEDIUM", "LARGE", "SMALL"};
const char* kContainers[] = {"SM CASE", "LG BOX", "MED BAG", "JUMBO JAR", "WRAP PKG"};
const char* kNations[] = {"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT",
                          "ETHIOPIA", "FRANCE", "GERMANY", "INDIA", "INDONESIA",
                          "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA", "MOROCCO",
                          "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "RUSSIA",
                          "UK", "US", "VIETNAM", "SAUDI"};

template <size_t N>
std::string Pick(const char* const (&pool)[N], Random* rng) {
  return pool[rng->Next(N)];
}

// Skew-aware pick in [1, n].
int64_t PickKey(uint64_t n, const ZipfGenerator* zipf, Random* rng) {
  if (zipf != nullptr) return static_cast<int64_t>(zipf->Next(rng)) + 1;
  return rng->Uniform(1, static_cast<int64_t>(n));
}

}  // namespace

void Build(Database* db, const Options& options) {
  Random rng(options.seed);
  const uint64_t n_lineitem = options.lineitem_rows;
  const uint64_t n_orders = std::max<uint64_t>(n_lineitem / 4, 16);
  const uint64_t n_customer = std::max<uint64_t>(n_orders / 10, 8);
  const uint64_t n_part = std::max<uint64_t>(n_lineitem / 30, 8);
  const uint64_t n_supplier = std::max<uint64_t>(n_part / 8, 4);
  const uint64_t n_nation = 25;

  std::unique_ptr<ZipfGenerator> part_zipf;
  std::unique_ptr<ZipfGenerator> supp_zipf;
  std::unique_ptr<ZipfGenerator> date_zipf;
  if (options.skew_z > 0) {
    part_zipf = std::make_unique<ZipfGenerator>(n_part, options.skew_z);
    supp_zipf = std::make_unique<ZipfGenerator>(n_supplier, options.skew_z);
    date_zipf = std::make_unique<ZipfGenerator>(
        static_cast<uint64_t>(kDateHi - kDateLo), options.skew_z);
  }

  // --- nation ---
  auto nation = std::make_unique<Table>(
      "nation", Schema({{"n_nationkey", ValueType::kInt64, 8},
                        {"n_name", ValueType::kString, 12},
                        {"n_regionkey", ValueType::kInt64, 8}}));
  for (uint64_t i = 1; i <= n_nation; ++i) {
    nation->AddRow({Value::Int64(static_cast<int64_t>(i)),
                    Value::String(kNations[(i - 1) % 25]),
                    Value::Int64(static_cast<int64_t>(i % 5))});
  }
  db->AddTable(std::move(nation));

  // --- supplier ---
  auto supplier = std::make_unique<Table>(
      "supplier", Schema({{"s_suppkey", ValueType::kInt64, 8},
                          {"s_name", ValueType::kString, 14},
                          {"s_nationkey", ValueType::kInt64, 8},
                          {"s_acctbal", ValueType::kDouble, 8}}));
  for (uint64_t i = 1; i <= n_supplier; ++i) {
    supplier->AddRow({Value::Int64(static_cast<int64_t>(i)),
                      Value::String("Supplier#" + std::to_string(i)),
                      Value::Int64(rng.Uniform(1, 25)),
                      Value::Double(rng.Uniform(-999, 9999))});
  }
  db->AddTable(std::move(supplier));

  // --- part ---
  auto part = std::make_unique<Table>(
      "part", Schema({{"p_partkey", ValueType::kInt64, 8},
                      {"p_name", ValueType::kString, 20},
                      {"p_brand", ValueType::kString, 10},
                      {"p_type", ValueType::kString, 16},
                      {"p_size", ValueType::kInt64, 8},
                      {"p_container", ValueType::kString, 10},
                      {"p_retailprice", ValueType::kDouble, 8}}));
  for (uint64_t i = 1; i <= n_part; ++i) {
    part->AddRow({Value::Int64(static_cast<int64_t>(i)),
                  Value::String("part_" + std::to_string(i % 500)),
                  Value::String(Pick(kBrands, &rng)),
                  Value::String(Pick(kTypes, &rng)),
                  Value::Int64(rng.Uniform(1, 50)),
                  Value::String(Pick(kContainers, &rng)),
                  Value::Double(900 + static_cast<double>(i % 1000))});
  }
  db->AddTable(std::move(part));

  // --- customer ---
  auto customer = std::make_unique<Table>(
      "customer", Schema({{"c_custkey", ValueType::kInt64, 8},
                          {"c_name", ValueType::kString, 18},
                          {"c_nationkey", ValueType::kInt64, 8},
                          {"c_acctbal", ValueType::kDouble, 8},
                          {"c_mktsegment", ValueType::kString, 10}}));
  for (uint64_t i = 1; i <= n_customer; ++i) {
    customer->AddRow({Value::Int64(static_cast<int64_t>(i)),
                      Value::String("Customer#" + std::to_string(i)),
                      Value::Int64(rng.Uniform(1, 25)),
                      Value::Double(rng.Uniform(-999, 9999)),
                      Value::String(Pick(kSegments, &rng))});
  }
  db->AddTable(std::move(customer));

  // --- orders ---
  auto orders = std::make_unique<Table>(
      "orders", Schema({{"o_orderkey", ValueType::kInt64, 8},
                        {"o_custkey", ValueType::kInt64, 8},
                        {"o_orderstatus", ValueType::kString, 1},
                        {"o_totalprice", ValueType::kDouble, 8},
                        {"o_orderdate", ValueType::kDate, 8},
                        {"o_orderpriority", ValueType::kString, 8},
                        {"o_shippriority", ValueType::kInt64, 8}}));
  for (uint64_t i = 1; i <= n_orders; ++i) {
    const int64_t date =
        date_zipf ? kDateLo + PickKey(kDateHi - kDateLo, date_zipf.get(), &rng) - 1
                  : rng.Uniform(kDateLo, kDateHi - 1);
    orders->AddRow({Value::Int64(static_cast<int64_t>(i)),
                    Value::Int64(PickKey(n_customer, nullptr, &rng)),
                    Value::String(rng.Bernoulli(0.5) ? "F" : "O"),
                    Value::Double(rng.Uniform(1000, 400000)),
                    Value::Date(date),
                    Value::String(Pick(kPriorities, &rng)),
                    Value::Int64(0)});
  }
  db->AddTable(std::move(orders));

  // --- lineitem ---
  auto lineitem = std::make_unique<Table>(
      "lineitem", Schema({{"l_orderkey", ValueType::kInt64, 8},
                          {"l_partkey", ValueType::kInt64, 8},
                          {"l_suppkey", ValueType::kInt64, 8},
                          {"l_linenumber", ValueType::kInt64, 8},
                          {"l_quantity", ValueType::kInt64, 8},
                          {"l_extendedprice", ValueType::kDouble, 8},
                          {"l_discount", ValueType::kDouble, 8},
                          {"l_tax", ValueType::kDouble, 8},
                          {"l_returnflag", ValueType::kString, 1},
                          {"l_linestatus", ValueType::kString, 1},
                          {"l_shipdate", ValueType::kDate, 8},
                          {"l_commitdate", ValueType::kDate, 8},
                          {"l_receiptdate", ValueType::kDate, 8},
                          {"l_shipinstruct", ValueType::kString, 12},
                          {"l_shipmode", ValueType::kString, 10}}));
  lineitem->Reserve(n_lineitem);
  for (uint64_t i = 1; i <= n_lineitem; ++i) {
    const int64_t orderkey = 1 + static_cast<int64_t>((i - 1) / 4) %
                                     static_cast<int64_t>(n_orders);
    const uint64_t mode = rng.Next(7);
    const int64_t ship =
        date_zipf ? kDateLo + PickKey(kDateHi - kDateLo, date_zipf.get(), &rng) - 1
                  : rng.Uniform(kDateLo, kDateHi - 1);
    const double price = 900.0 + static_cast<double>(rng.Uniform(0, 99000)) / 1.0;
    lineitem->AddRow(
        {Value::Int64(orderkey),
         Value::Int64(PickKey(n_part, part_zipf.get(), &rng)),
         Value::Int64(PickKey(n_supplier, supp_zipf.get(), &rng)),
         Value::Int64(static_cast<int64_t>(i % 7) + 1),
         Value::Int64(rng.Uniform(1, 50)),
         Value::Double(price),
         Value::Double(static_cast<double>(rng.Uniform(0, 10)) / 100.0),
         Value::Double(static_cast<double>(rng.Uniform(0, 8)) / 100.0),
         Value::String(rng.Bernoulli(0.25) ? "R" : (rng.Bernoulli(0.5) ? "A" : "N")),
         Value::String(rng.Bernoulli(0.5) ? "F" : "O"),
         Value::Date(ship), Value::Date(ship + rng.Uniform(1, 30)),
         Value::Date(ship + rng.Uniform(1, 45)),
         // shipinstruct is functionally tied to shipmode with rare
         // exceptions (like country<->currency in real data): defeats the
         // optimizer's column-independence assumption without saturating
         // the combination space.
         Value::String(rng.Bernoulli(0.998) ? kInstructs[mode % 4]
                                            : Pick(kInstructs, &rng)),
         Value::String(kShipModes[mode])});
  }
  db->AddTable(std::move(lineitem));

  db->AddForeignKey({"lineitem", "l_orderkey", "orders", "o_orderkey"});
  db->AddForeignKey({"lineitem", "l_partkey", "part", "p_partkey"});
  db->AddForeignKey({"lineitem", "l_suppkey", "supplier", "s_suppkey"});
  db->AddForeignKey({"orders", "o_custkey", "customer", "c_custkey"});
  db->AddForeignKey({"customer", "c_nationkey", "nation", "n_nationkey"});
  db->AddForeignKey({"supplier", "s_nationkey", "nation", "n_nationkey"});
}

Workload MakeWorkload(const Database& db, const Options& options) {
  // 22 analytic queries in the SQL subset; parsed so the text doubles as
  // documentation and as a parser exercise.
  const std::vector<std::string> sql = {
      // Q1: pricing summary
      "SELECT l_returnflag, l_linestatus, SUM(l_quantity), SUM(l_extendedprice) "
      "FROM lineitem WHERE l_shipdate <= DATE '1998-09-02' "
      "GROUP BY l_returnflag, l_linestatus",
      // Q2-ish: supplier account scan
      "SELECT s_name, s_acctbal FROM supplier WHERE s_acctbal >= 5000",
      // Q3: shipping priority
      "SELECT l_orderkey, SUM(l_extendedprice) FROM lineitem "
      "WHERE l_shipdate > DATE '1995-03-15' GROUP BY l_orderkey",
      // Q4: order priority checking
      "SELECT o_orderpriority, COUNT(*) FROM orders "
      "WHERE o_orderdate BETWEEN DATE '1995-01-01' AND DATE '1995-03-31' "
      "GROUP BY o_orderpriority",
      // Q5: local supplier volume
      "SELECT SUM(l_extendedprice) FROM lineitem "
      "JOIN supplier ON l_suppkey = s_suppkey "
      "WHERE l_shipdate BETWEEN DATE '1996-01-01' AND DATE '1996-12-31'",
      // Q6: forecasting revenue change
      "SELECT SUM(l_extendedprice) FROM lineitem "
      "WHERE l_shipdate BETWEEN DATE '1995-01-01' AND DATE '1995-12-31' "
      "AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24",
      // Q7: volume shipping by mode over two years
      "SELECT l_shipmode, SUM(l_extendedprice) FROM lineitem "
      "WHERE l_shipdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31' "
      "GROUP BY l_shipmode",
      // Q8: brand share
      "SELECT p_brand, SUM(l_extendedprice) FROM lineitem "
      "JOIN part ON l_partkey = p_partkey GROUP BY p_brand",
      // Q9: product type profit
      "SELECT p_type, SUM(l_extendedprice) FROM lineitem "
      "JOIN part ON l_partkey = p_partkey "
      "WHERE l_shipdate >= DATE '1997-01-01' GROUP BY p_type",
      // Q10: returned items
      "SELECT l_orderkey, SUM(l_extendedprice) FROM lineitem "
      "WHERE l_returnflag = 'R' AND l_shipdate >= DATE '1997-06-01' "
      "GROUP BY l_orderkey",
      // Q11-ish: supplier stock value by nation
      "SELECT s_nationkey, SUM(s_acctbal) FROM supplier GROUP BY s_nationkey",
      // Q12: shipping modes and order priority
      "SELECT l_shipmode, COUNT(*) FROM lineitem "
      "WHERE l_shipmode = 'SHIP' AND l_receiptdate >= DATE '1996-01-01' "
      "GROUP BY l_shipmode",
      // Q13-ish: customer distribution
      "SELECT c_mktsegment, COUNT(*) FROM customer GROUP BY c_mktsegment",
      // Q14: promotion effect
      "SELECT SUM(l_extendedprice) FROM lineitem JOIN part ON l_partkey = p_partkey "
      "WHERE l_shipdate BETWEEN DATE '1995-09-01' AND DATE '1995-09-30'",
      // Q15: top supplier (revenue by supplier over a quarter)
      "SELECT l_suppkey, SUM(l_extendedprice) FROM lineitem "
      "WHERE l_shipdate BETWEEN DATE '1996-01-01' AND DATE '1996-03-31' "
      "GROUP BY l_suppkey",
      // Q16-ish: part brands by size
      "SELECT p_brand, COUNT(*) FROM part WHERE p_size >= 20 GROUP BY p_brand",
      // Q17: small-quantity-order revenue for one brand
      "SELECT SUM(l_extendedprice) FROM lineitem JOIN part ON l_partkey = p_partkey "
      "WHERE p_brand = 'Brand#23' AND l_quantity < 10",
      // Q18: large volume customers
      "SELECT l_orderkey, SUM(l_quantity) FROM lineitem GROUP BY l_orderkey",
      // Q19: discounted revenue, brand + quantity band
      "SELECT SUM(l_extendedprice) FROM lineitem JOIN part ON l_partkey = p_partkey "
      "WHERE p_brand = 'Brand#12' AND l_quantity BETWEEN 1 AND 11",
      // Q20-ish: suppliers with recent shipments
      "SELECT l_suppkey, COUNT(*) FROM lineitem "
      "WHERE l_shipdate >= DATE '1997-01-01' GROUP BY l_suppkey",
      // Q21-ish: late deliveries per supplier
      "SELECT l_suppkey, COUNT(*) FROM lineitem "
      "WHERE l_receiptdate > DATE '1997-06-30' AND l_linestatus = 'F' "
      "GROUP BY l_suppkey",
      // Q22-ish: wealthy customers by nation
      "SELECT c_nationkey, SUM(c_acctbal) FROM customer "
      "WHERE c_acctbal > 7000 GROUP BY c_nationkey",
  };

  Workload w;
  for (size_t i = 0; i < sql.size(); ++i) {
    std::string error;
    std::optional<Statement> stmt = ParseSql(sql[i], db, &error);
    CAPD_CHECK(stmt.has_value()) << "Q" << (i + 1) << ": " << error;
    stmt->id = "Q" + std::to_string(i + 1);
    w.statements.push_back(std::move(*stmt));
  }
  w.statements.push_back(Statement::Insert(
      "BULK_LINEITEM", InsertStatement{"lineitem", options.bulk_rows}));
  w.statements.push_back(Statement::Insert(
      "BULK_ORDERS", InsertStatement{"orders", options.bulk_rows / 4}));
  return w;
}

Workload SelectOnly(const Workload& w) {
  Workload out;
  for (const Statement& s : w.statements) {
    if (s.type == StatementType::kSelect) out.statements.push_back(s);
  }
  return out;
}

}  // namespace tpch
}  // namespace capd
