// Workload registry: one code path from a (name, rows, seed, skew) spec to
// a built Database + Workload. Collapses the per-workload stack builders
// that benches, goldens, the engine tests and the capd_tune CLI used to
// copy-paste, and gives string-keyed lookup ("tpch", "sales", "scale",
// "tpcds-lite") with a clean error for unknown names.
#ifndef CAPD_WORKLOADS_REGISTRY_H_
#define CAPD_WORKLOADS_REGISTRY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "catalog/database.h"
#include "query/query.h"

namespace capd {
namespace workloads {

struct WorkloadSpec {
  std::string name;  // "tpch" | "sales" | "scale" | "tpcds-lite" ("tpcds")
  uint64_t rows = 0;    // fact-table rows; 0 = the workload's default scale
  uint64_t seed = 0;    // 0 = the workload's default seed
  double skew_z = 0.0;  // Zipf skew knob (tpch only; others ignore it)
};

struct BuiltWorkload {
  std::unique_ptr<Database> db;
  Workload workload;
  uint64_t seed = 0;  // the seed actually used (spec default resolved)
};

// Builds the named dataset + workload. Returns false and sets *error
// (never null) when spec.name is not registered; *error lists the known
// names.
bool Build(const WorkloadSpec& spec, BuiltWorkload* out, std::string* error);

// Registered workload names, sorted (aliases excluded).
std::vector<std::string> Names();

}  // namespace workloads
}  // namespace capd

#endif  // CAPD_WORKLOADS_REGISTRY_H_
